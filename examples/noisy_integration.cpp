// Integration scenario: schema discovery on a heterogeneous, noisy graph
// with partially missing labels — the case where label-dependent baselines
// stop working (paper §5.1).

#include <cstdio>
#include <iostream>

#include "datagen/datasets.h"
#include "datagen/generator.h"
#include "datagen/noise.h"
#include "eval/experiment.h"

int main() {
  using namespace pghive;

  DatasetSpec spec = MakeIcijSpec();
  ExperimentConfig config;
  config.size_scale = 0.5;
  auto clean = GenerateForExperiment(spec, config);
  if (!clean.ok()) {
    std::cerr << clean.status() << "\n";
    return 1;
  }

  const double noise_levels[] = {0.0, 0.2, 0.4};
  const double label_avail[] = {1.0, 0.5, 0.0};

  std::printf("ICIJ-style offshore-leaks graph (%zu nodes, %zu edges)\n\n",
              clean->num_nodes(), clean->num_edges());
  std::printf("%-6s %-7s | %-18s %8s %8s | %s\n", "noise", "labels", "method",
              "nodeF1*", "edgeF1*", "notes");

  for (double noise : noise_levels) {
    for (double avail : label_avail) {
      NoiseOptions nopt;
      nopt.property_removal = noise;
      nopt.label_availability = avail;
      auto noisy = InjectNoise(*clean, nopt);
      if (!noisy.ok()) {
        std::cerr << noisy.status() << "\n";
        return 1;
      }
      for (Method m : AllMethods()) {
        ExperimentResult r = RunMethod(*noisy, m, config);
        if (!r.ran) {
          std::printf("%-6.0f%% %-6.0f%% | %-18s %8s %8s | refused: %s\n",
                      noise * 100, avail * 100, MethodName(m), "-", "-",
                      r.failure.substr(0, 60).c_str());
          continue;
        }
        char edge_buf[16] = "-";
        if (r.has_edge_types) {
          std::snprintf(edge_buf, sizeof(edge_buf), "%8.3f", r.edge_f1.f1);
        }
        std::printf("%-6.0f%% %-6.0f%% | %-18s %8.3f %8s |\n", noise * 100,
                    avail * 100, MethodName(m), r.node_f1.f1, edge_buf);
      }
    }
  }
  return 0;
}
