// Incremental scenario: stream a graph in batches and watch the schema grow
// monotonically (S_1 ⊑ S_2 ⊑ ... ⊑ S_n, paper §4.6).

#include <cstdio>
#include <iostream>

#include "core/incremental.h"
#include "datagen/datasets.h"
#include "datagen/generator.h"
#include "eval/f1.h"

int main(int argc, char** argv) {
  using namespace pghive;

  size_t num_batches = 10;
  if (argc > 1) num_batches = static_cast<size_t>(std::atol(argv[1]));

  DatasetSpec spec = MakePoleSpec();
  auto graph = GenerateGraph(spec, {});
  if (!graph.ok()) {
    std::cerr << graph.status() << "\n";
    return 1;
  }
  std::printf("POLE graph: %zu nodes, %zu edges, streamed in %zu batches\n\n",
              graph->num_nodes(), graph->num_edges(), num_batches);

  IncrementalDiscoverer discoverer;
  SchemaGraph previous;
  for (const auto& batch : SplitIntoBatches(*graph, num_batches)) {
    if (auto s = discoverer.Feed(batch); !s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
    const SchemaGraph& current = discoverer.schema();
    bool monotone = SchemaCovers(current, previous);
    std::printf(
        "batch %2zu: %-38s  %.1f ms  monotone=%s\n",
        discoverer.batches_processed(), SchemaSummary(current).c_str(),
        discoverer.batch_seconds().back() * 1000.0, monotone ? "yes" : "NO");
    previous = current;
  }

  const SchemaGraph& final_schema = discoverer.Finish(*graph);
  F1Result node_f1 = MajorityF1Nodes(*graph, final_schema);
  F1Result edge_f1 = MajorityF1Edges(*graph, final_schema);
  std::printf("\nfinal schema: %s\n", SchemaSummary(final_schema).c_str());
  std::printf("node F1*=%.3f  edge F1*=%.3f\n", node_f1.f1, edge_f1.f1);
  return 0;
}
