// Storage round-trip: export a generated property graph to Neo4j-style CSV,
// load it back, and verify the discovered schema is unchanged — the path a
// downstream user takes to feed their own data into PG-HIVE.

#include <cstdio>
#include <iostream>

#include "core/pipeline.h"
#include "datagen/datasets.h"
#include "datagen/generator.h"
#include "graph/csv_io.h"

int main() {
  using namespace pghive;

  DatasetSpec spec = MakeHetioSpec();
  GenerateOptions gen;
  gen.num_nodes = 1500;
  gen.num_edges = 8000;
  auto graph = GenerateGraph(spec, gen);
  if (!graph.ok()) {
    std::cerr << graph.status() << "\n";
    return 1;
  }

  if (auto s = SaveGraphCsv(*graph, "hetio_export"); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  std::printf("exported hetio_export.nodes.csv / hetio_export.edges.csv\n");

  auto reloaded = LoadGraphCsv("hetio_export");
  if (!reloaded.ok()) {
    std::cerr << reloaded.status() << "\n";
    return 1;
  }
  std::printf("reloaded: %zu nodes, %zu edges\n", reloaded->num_nodes(),
              reloaded->num_edges());

  PgHivePipeline pipeline;
  auto schema_a = pipeline.DiscoverSchema(*graph);
  auto schema_b = pipeline.DiscoverSchema(*reloaded);
  if (!schema_a.ok() || !schema_b.ok()) {
    std::cerr << "discovery failed\n";
    return 1;
  }
  std::printf("schema on original: %s\n", SchemaSummary(*schema_a).c_str());
  std::printf("schema on reloaded: %s\n", SchemaSummary(*schema_b).c_str());
  bool same = schema_a->node_types.size() == schema_b->node_types.size() &&
              schema_a->edge_types.size() == schema_b->edge_types.size();
  std::printf("round-trip schema identical in size: %s\n",
              same ? "yes" : "NO");
  return same ? 0 : 1;
}
