// Data-steward scenario: watch a growing graph for schema drift.
//
// Day 0: discover a schema, save it. Each following "day" new data arrives
// (with drifting structure); the steward validates the new batch against
// yesterday's schema, inspects the violations, re-discovers, and diffs the
// schemas to see exactly what changed. Exercises validation, diffing and
// JSON persistence end to end.

#include <cstdio>
#include <iostream>

#include "core/pipeline.h"
#include "core/schema_diff.h"
#include "core/schema_json.h"
#include "core/validation.h"
#include "datagen/generator.h"
#include "graph/graph_builder.h"

using namespace pghive;

namespace {

// Day 0: a small product catalog.
PropertyGraph Day0() {
  GraphBuilder b;
  Rng rng(1);
  std::vector<NodeId> products, customers;
  for (int i = 0; i < 40; ++i) {
    products.push_back(b.Node(
        {"Product"},
        {{"sku", Value::String("sku_" + std::to_string(i))},
         {"price", Value::Double(10.0 + i)}},
        "Product"));
  }
  for (int i = 0; i < 30; ++i) {
    customers.push_back(b.Node(
        {"Customer"},
        {{"name", Value::String("c" + std::to_string(i))},
         {"joined", Value::Date("2024-01-15")}},
        "Customer"));
  }
  PropertyGraph g = std::move(b).Build();
  for (int i = 0; i < 80; ++i) {
    NodeId c = customers[rng.UniformU32(customers.size())];
    NodeId p = products[rng.UniformU32(products.size())];
    (void)g.AddEdge(c, p, {"BOUGHT"},
                    {{"at", Value::Timestamp("2024-02-01T10:00:00")}},
                    "BOUGHT");
  }
  return g;
}

// Day 1: new data drifts — products gain a "discount" property, a new
// Review node type appears, and one price arrives as a string.
PropertyGraph Day1() {
  GraphBuilder b;
  Rng rng(2);
  std::vector<NodeId> products, customers, reviews;
  for (int i = 0; i < 20; ++i) {
    products.push_back(b.Node(
        {"Product"},
        {{"sku", Value::String("sku_n" + std::to_string(i))},
         {"price", i == 0 ? Value::String("call us")   // dirty record
                          : Value::Double(20.0 + i)},
         {"discount", Value::Double(0.1)}},
        "Product"));
  }
  for (int i = 0; i < 10; ++i) {
    customers.push_back(b.Node(
        {"Customer"},
        {{"name", Value::String("n" + std::to_string(i))},
         {"joined", Value::Date("2024-03-01")}},
        "Customer"));
  }
  for (int i = 0; i < 15; ++i) {
    reviews.push_back(b.Node(
        {"Review"},
        {{"stars", Value::Int(1 + static_cast<int>(rng.UniformU32(5)))},
         {"text", Value::String("...")}},
        "Review"));
  }
  PropertyGraph g = std::move(b).Build();
  for (int i = 0; i < 30; ++i) {
    NodeId c = customers[rng.UniformU32(customers.size())];
    NodeId p = products[rng.UniformU32(products.size())];
    (void)g.AddEdge(c, p, {"BOUGHT"}, {}, "BOUGHT");
  }
  for (size_t i = 0; i < reviews.size(); ++i) {
    (void)g.AddEdge(reviews[i], products[rng.UniformU32(products.size())],
                    {"REVIEWS"}, {}, "REVIEWS");
  }
  return g;
}

}  // namespace

int main() {
  // Day 0: discover and persist the baseline schema.
  PropertyGraph day0 = Day0();
  PgHivePipeline pipeline;
  auto baseline = pipeline.DiscoverSchema(day0);
  if (!baseline.ok()) {
    std::cerr << baseline.status() << "\n";
    return 1;
  }
  std::printf("day 0: %s\n", SchemaSummary(*baseline).c_str());
  if (auto s = SaveSchemaJson(*baseline, "catalog_schema.json"); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  std::printf("saved baseline to catalog_schema.json\n\n");

  // Day 1: screen the incoming batch against the baseline (STRICT).
  PropertyGraph day1 = Day1();
  ValidationOptions strict;
  strict.mode = ValidationMode::kStrict;
  strict.max_violations = 8;
  ValidationReport report = ValidateGraph(day1, *baseline, strict);
  std::printf("day 1 batch screened against baseline:\n%s\n\n",
              report.Summary().c_str());

  // Accept the drift: re-discover on the new batch and diff.
  auto evolved = pipeline.DiscoverSchema(day1);
  if (!evolved.ok()) {
    std::cerr << evolved.status() << "\n";
    return 1;
  }
  SchemaDiff diff = DiffSchemas(*baseline, *evolved);
  std::printf("schema drift day0 -> day1:\n%s", diff.ToString().c_str());
  return 0;
}
