// Social-network scenario: discover the schema of an LDBC-style graph and
// export it in both PG-Schema modes and XSD.
//
// This mirrors the workload the paper's introduction motivates: a large,
// multi-labeled social graph (Post/Comment share the Message label) whose
// schema must be recovered without prior information.

#include <cstdio>
#include <iostream>

#include "common/csv.h"
#include "core/pipeline.h"
#include "core/serialization.h"
#include "datagen/datasets.h"
#include "datagen/generator.h"
#include "eval/f1.h"

int main(int argc, char** argv) {
  using namespace pghive;

  size_t nodes = 6000, edges = 24000;
  if (argc > 1) nodes = static_cast<size_t>(std::atol(argv[1]));
  if (argc > 2) edges = static_cast<size_t>(std::atol(argv[2]));

  DatasetSpec spec = MakeLdbcSpec();
  GenerateOptions gen;
  gen.num_nodes = nodes;
  gen.num_edges = edges;
  gen.seed = 7;
  auto graph = GenerateGraph(spec, gen);
  if (!graph.ok()) {
    std::cerr << "generation failed: " << graph.status() << "\n";
    return 1;
  }
  std::printf("LDBC-style graph: %zu nodes, %zu edges\n", graph->num_nodes(),
              graph->num_edges());

  PgHivePipeline pipeline;  // defaults: ELSH, adaptive parameters, Word2Vec
  auto schema = pipeline.DiscoverSchema(*graph);
  if (!schema.ok()) {
    std::cerr << "discovery failed: " << schema.status() << "\n";
    return 1;
  }

  F1Result nodes_f1 = MajorityF1Nodes(*graph, *schema);
  F1Result edges_f1 = MajorityF1Edges(*graph, *schema);
  std::printf("Discovered %s\n", SchemaSummary(*schema).c_str());
  std::printf("node F1*=%.3f  edge F1*=%.3f\n", nodes_f1.f1, edges_f1.f1);

  // Edge types with their endpoint structure and cardinalities.
  std::printf("\nEdge connectivity (rho_s):\n");
  for (const auto& t : schema->edge_types) {
    std::string src, tgt;
    for (const auto& l : t.source_labels) src += l + "|";
    for (const auto& l : t.target_labels) tgt += l + "|";
    if (!src.empty()) src.pop_back();
    if (!tgt.empty()) tgt.pop_back();
    std::printf("  (%s)-[%s]->(%s)  %s\n", src.c_str(), t.name.c_str(),
                tgt.c_str(), SchemaCardinalityName(t.cardinality));
  }

  // Serialize to files next to the binary.
  auto strict = ToPgSchema(*schema, "LdbcSocialNetwork", PgSchemaMode::kStrict);
  auto xsd = ToXsd(*schema);
  if (auto s = WriteFile("ldbc_schema.pgs", strict); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  if (auto s = WriteFile("ldbc_schema.xsd", xsd); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  std::printf("\nWrote ldbc_schema.pgs and ldbc_schema.xsd\n");
  return 0;
}
