// Quickstart: discover the schema of the paper's Figure-1 example graph.
//
// Builds the small social graph from the paper (Person / Organization /
// Post / Place, one unlabeled "Alice" node), runs the full PG-HIVE pipeline
// and prints the discovered types, constraints, cardinalities and the
// PG-Schema serializations.

#include <cstdio>
#include <iostream>

#include "core/pipeline.h"
#include "core/serialization.h"
#include "graph/graph_builder.h"

int main() {
  using namespace pghive;

  PropertyGraph g = MakeFigure1Graph();
  std::printf("Input: %zu nodes, %zu edges, %zu node patterns\n",
              g.num_nodes(), g.num_edges(), g.CountNodePatterns());

  PipelineOptions options;
  options.method = ClusteringMethod::kElsh;
  PgHivePipeline pipeline(options);
  auto schema = pipeline.DiscoverSchema(g);
  if (!schema.ok()) {
    std::cerr << "discovery failed: " << schema.status() << "\n";
    return 1;
  }

  std::printf("\nDiscovered: %s\n\n", SchemaSummary(*schema).c_str());
  for (const auto& t : schema->node_types) {
    std::printf("node type %-16s labels={", t.name.c_str());
    for (const auto& l : t.labels) std::printf("%s ", l.c_str());
    std::printf("} instances=%zu\n", t.instances.size());
    for (const auto& [key, c] : t.constraints) {
      std::printf("    %-10s %-9s %s\n", key.c_str(), DataTypeName(c.type),
                  c.mandatory ? "MANDATORY" : "OPTIONAL");
    }
  }
  std::printf("\n");
  for (const auto& t : schema->edge_types) {
    std::printf("edge type %-16s cardinality=%s instances=%zu\n",
                t.name.c_str(), SchemaCardinalityName(t.cardinality),
                t.instances.size());
  }

  std::printf("\n--- PG-Schema (STRICT) ---\n%s",
              ToPgSchema(*schema, "Figure1", PgSchemaMode::kStrict).c_str());
  std::printf("\n--- PG-Schema (LOOSE) ---\n%s",
              ToPgSchema(*schema, "Figure1", PgSchemaMode::kLoose).c_str());
  return 0;
}
