file(REMOVE_RECURSE
  "CMakeFiles/micro_lsh.dir/micro_lsh.cpp.o"
  "CMakeFiles/micro_lsh.dir/micro_lsh.cpp.o.d"
  "micro_lsh"
  "micro_lsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_lsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
