# Empty compiler generated dependencies file for micro_lsh.
# This may be replaced when dependencies are built.
