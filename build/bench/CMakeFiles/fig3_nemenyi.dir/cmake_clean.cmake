file(REMOVE_RECURSE
  "CMakeFiles/fig3_nemenyi.dir/fig3_nemenyi.cpp.o"
  "CMakeFiles/fig3_nemenyi.dir/fig3_nemenyi.cpp.o.d"
  "fig3_nemenyi"
  "fig3_nemenyi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_nemenyi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
