# Empty compiler generated dependencies file for fig3_nemenyi.
# This may be replaced when dependencies are built.
