# Empty compiler generated dependencies file for fig4_noise_quality.
# This may be replaced when dependencies are built.
