# Empty compiler generated dependencies file for fig8_dtype_sampling.
# This may be replaced when dependencies are built.
