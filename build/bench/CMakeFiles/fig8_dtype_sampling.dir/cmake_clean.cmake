file(REMOVE_RECURSE
  "CMakeFiles/fig8_dtype_sampling.dir/fig8_dtype_sampling.cpp.o"
  "CMakeFiles/fig8_dtype_sampling.dir/fig8_dtype_sampling.cpp.o.d"
  "fig8_dtype_sampling"
  "fig8_dtype_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_dtype_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
