file(REMOVE_RECURSE
  "CMakeFiles/fig7_incremental.dir/fig7_incremental.cpp.o"
  "CMakeFiles/fig7_incremental.dir/fig7_incremental.cpp.o.d"
  "fig7_incremental"
  "fig7_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
