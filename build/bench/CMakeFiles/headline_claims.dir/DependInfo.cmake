
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/headline_claims.cpp" "bench/CMakeFiles/headline_claims.dir/headline_claims.cpp.o" "gcc" "bench/CMakeFiles/headline_claims.dir/headline_claims.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pghive_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pghive_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pghive_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pghive_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pghive_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pghive_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pghive_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pghive_lsh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pghive_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pghive_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pghive_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
