# Empty compiler generated dependencies file for fig6_param_heatmap.
# This may be replaced when dependencies are built.
