file(REMOVE_RECURSE
  "CMakeFiles/fig6_param_heatmap.dir/fig6_param_heatmap.cpp.o"
  "CMakeFiles/fig6_param_heatmap.dir/fig6_param_heatmap.cpp.o.d"
  "fig6_param_heatmap"
  "fig6_param_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_param_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
