file(REMOVE_RECURSE
  "CMakeFiles/pgschema_parser_test.dir/pgschema_parser_test.cpp.o"
  "CMakeFiles/pgschema_parser_test.dir/pgschema_parser_test.cpp.o.d"
  "pgschema_parser_test"
  "pgschema_parser_test.pdb"
  "pgschema_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pgschema_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
