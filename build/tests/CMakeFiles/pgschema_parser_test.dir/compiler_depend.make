# Empty compiler generated dependencies file for pgschema_parser_test.
# This may be replaced when dependencies are built.
