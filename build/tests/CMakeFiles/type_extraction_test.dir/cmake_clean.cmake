file(REMOVE_RECURSE
  "CMakeFiles/type_extraction_test.dir/type_extraction_test.cpp.o"
  "CMakeFiles/type_extraction_test.dir/type_extraction_test.cpp.o.d"
  "type_extraction_test"
  "type_extraction_test.pdb"
  "type_extraction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/type_extraction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
