# Empty dependencies file for type_extraction_test.
# This may be replaced when dependencies are built.
