file(REMOVE_RECURSE
  "CMakeFiles/schema_diff_test.dir/schema_diff_test.cpp.o"
  "CMakeFiles/schema_diff_test.dir/schema_diff_test.cpp.o.d"
  "schema_diff_test"
  "schema_diff_test.pdb"
  "schema_diff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_diff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
