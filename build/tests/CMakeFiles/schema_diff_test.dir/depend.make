# Empty dependencies file for schema_diff_test.
# This may be replaced when dependencies are built.
