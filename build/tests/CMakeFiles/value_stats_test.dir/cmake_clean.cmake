file(REMOVE_RECURSE
  "CMakeFiles/value_stats_test.dir/value_stats_test.cpp.o"
  "CMakeFiles/value_stats_test.dir/value_stats_test.cpp.o.d"
  "value_stats_test"
  "value_stats_test.pdb"
  "value_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
