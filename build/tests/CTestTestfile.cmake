# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/lsh_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/core_schema_test[1]_include.cmake")
include("/root/repo/build/tests/type_extraction_test[1]_include.cmake")
include("/root/repo/build/tests/postprocess_test[1]_include.cmake")
include("/root/repo/build/tests/serialization_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/incremental_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/properties_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/validation_test[1]_include.cmake")
include("/root/repo/build/tests/schema_diff_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/pgschema_parser_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/value_stats_test[1]_include.cmake")
