file(REMOVE_RECURSE
  "CMakeFiles/pghive_app.dir/pghive.cpp.o"
  "CMakeFiles/pghive_app.dir/pghive.cpp.o.d"
  "pghive"
  "pghive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pghive_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
