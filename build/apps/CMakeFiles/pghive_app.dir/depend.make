# Empty dependencies file for pghive_app.
# This may be replaced when dependencies are built.
