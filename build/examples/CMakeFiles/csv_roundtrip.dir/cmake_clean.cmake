file(REMOVE_RECURSE
  "CMakeFiles/csv_roundtrip.dir/csv_roundtrip.cpp.o"
  "CMakeFiles/csv_roundtrip.dir/csv_roundtrip.cpp.o.d"
  "csv_roundtrip"
  "csv_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
