# Empty compiler generated dependencies file for noisy_integration.
# This may be replaced when dependencies are built.
