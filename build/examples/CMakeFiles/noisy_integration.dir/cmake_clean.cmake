file(REMOVE_RECURSE
  "CMakeFiles/noisy_integration.dir/noisy_integration.cpp.o"
  "CMakeFiles/noisy_integration.dir/noisy_integration.cpp.o.d"
  "noisy_integration"
  "noisy_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noisy_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
