# Empty compiler generated dependencies file for schema_watch.
# This may be replaced when dependencies are built.
