file(REMOVE_RECURSE
  "CMakeFiles/schema_watch.dir/schema_watch.cpp.o"
  "CMakeFiles/schema_watch.dir/schema_watch.cpp.o.d"
  "schema_watch"
  "schema_watch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_watch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
