# Empty dependencies file for pghive_cluster.
# This may be replaced when dependencies are built.
