file(REMOVE_RECURSE
  "CMakeFiles/pghive_cluster.dir/cluster/cluster.cc.o"
  "CMakeFiles/pghive_cluster.dir/cluster/cluster.cc.o.d"
  "CMakeFiles/pghive_cluster.dir/cluster/lsh_clusterer.cc.o"
  "CMakeFiles/pghive_cluster.dir/cluster/lsh_clusterer.cc.o.d"
  "libpghive_cluster.a"
  "libpghive_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pghive_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
