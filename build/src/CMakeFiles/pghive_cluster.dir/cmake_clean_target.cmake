file(REMOVE_RECURSE
  "libpghive_cluster.a"
)
