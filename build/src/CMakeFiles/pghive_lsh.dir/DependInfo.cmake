
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lsh/adaptive_params.cc" "src/CMakeFiles/pghive_lsh.dir/lsh/adaptive_params.cc.o" "gcc" "src/CMakeFiles/pghive_lsh.dir/lsh/adaptive_params.cc.o.d"
  "/root/repo/src/lsh/collision_model.cc" "src/CMakeFiles/pghive_lsh.dir/lsh/collision_model.cc.o" "gcc" "src/CMakeFiles/pghive_lsh.dir/lsh/collision_model.cc.o.d"
  "/root/repo/src/lsh/euclidean_lsh.cc" "src/CMakeFiles/pghive_lsh.dir/lsh/euclidean_lsh.cc.o" "gcc" "src/CMakeFiles/pghive_lsh.dir/lsh/euclidean_lsh.cc.o.d"
  "/root/repo/src/lsh/minhash_lsh.cc" "src/CMakeFiles/pghive_lsh.dir/lsh/minhash_lsh.cc.o" "gcc" "src/CMakeFiles/pghive_lsh.dir/lsh/minhash_lsh.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pghive_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
