file(REMOVE_RECURSE
  "libpghive_lsh.a"
)
