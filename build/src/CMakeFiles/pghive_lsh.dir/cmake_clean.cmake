file(REMOVE_RECURSE
  "CMakeFiles/pghive_lsh.dir/lsh/adaptive_params.cc.o"
  "CMakeFiles/pghive_lsh.dir/lsh/adaptive_params.cc.o.d"
  "CMakeFiles/pghive_lsh.dir/lsh/collision_model.cc.o"
  "CMakeFiles/pghive_lsh.dir/lsh/collision_model.cc.o.d"
  "CMakeFiles/pghive_lsh.dir/lsh/euclidean_lsh.cc.o"
  "CMakeFiles/pghive_lsh.dir/lsh/euclidean_lsh.cc.o.d"
  "CMakeFiles/pghive_lsh.dir/lsh/minhash_lsh.cc.o"
  "CMakeFiles/pghive_lsh.dir/lsh/minhash_lsh.cc.o.d"
  "libpghive_lsh.a"
  "libpghive_lsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pghive_lsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
