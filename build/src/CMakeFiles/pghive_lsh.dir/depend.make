# Empty dependencies file for pghive_lsh.
# This may be replaced when dependencies are built.
