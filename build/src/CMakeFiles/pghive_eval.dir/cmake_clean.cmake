file(REMOVE_RECURSE
  "CMakeFiles/pghive_eval.dir/eval/experiment.cc.o"
  "CMakeFiles/pghive_eval.dir/eval/experiment.cc.o.d"
  "CMakeFiles/pghive_eval.dir/eval/f1.cc.o"
  "CMakeFiles/pghive_eval.dir/eval/f1.cc.o.d"
  "CMakeFiles/pghive_eval.dir/eval/ground_truth.cc.o"
  "CMakeFiles/pghive_eval.dir/eval/ground_truth.cc.o.d"
  "CMakeFiles/pghive_eval.dir/eval/ranking.cc.o"
  "CMakeFiles/pghive_eval.dir/eval/ranking.cc.o.d"
  "CMakeFiles/pghive_eval.dir/eval/report.cc.o"
  "CMakeFiles/pghive_eval.dir/eval/report.cc.o.d"
  "libpghive_eval.a"
  "libpghive_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pghive_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
