# Empty compiler generated dependencies file for pghive_eval.
# This may be replaced when dependencies are built.
