file(REMOVE_RECURSE
  "libpghive_eval.a"
)
