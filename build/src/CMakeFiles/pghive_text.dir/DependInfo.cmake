
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/hash_embedder.cc" "src/CMakeFiles/pghive_text.dir/text/hash_embedder.cc.o" "gcc" "src/CMakeFiles/pghive_text.dir/text/hash_embedder.cc.o.d"
  "/root/repo/src/text/label_embedder.cc" "src/CMakeFiles/pghive_text.dir/text/label_embedder.cc.o" "gcc" "src/CMakeFiles/pghive_text.dir/text/label_embedder.cc.o.d"
  "/root/repo/src/text/vocabulary.cc" "src/CMakeFiles/pghive_text.dir/text/vocabulary.cc.o" "gcc" "src/CMakeFiles/pghive_text.dir/text/vocabulary.cc.o.d"
  "/root/repo/src/text/word2vec.cc" "src/CMakeFiles/pghive_text.dir/text/word2vec.cc.o" "gcc" "src/CMakeFiles/pghive_text.dir/text/word2vec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pghive_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
