# Empty dependencies file for pghive_text.
# This may be replaced when dependencies are built.
