file(REMOVE_RECURSE
  "libpghive_text.a"
)
