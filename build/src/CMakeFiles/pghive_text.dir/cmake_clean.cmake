file(REMOVE_RECURSE
  "CMakeFiles/pghive_text.dir/text/hash_embedder.cc.o"
  "CMakeFiles/pghive_text.dir/text/hash_embedder.cc.o.d"
  "CMakeFiles/pghive_text.dir/text/label_embedder.cc.o"
  "CMakeFiles/pghive_text.dir/text/label_embedder.cc.o.d"
  "CMakeFiles/pghive_text.dir/text/vocabulary.cc.o"
  "CMakeFiles/pghive_text.dir/text/vocabulary.cc.o.d"
  "CMakeFiles/pghive_text.dir/text/word2vec.cc.o"
  "CMakeFiles/pghive_text.dir/text/word2vec.cc.o.d"
  "libpghive_text.a"
  "libpghive_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pghive_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
