# Empty compiler generated dependencies file for pghive_baselines.
# This may be replaced when dependencies are built.
