file(REMOVE_RECURSE
  "CMakeFiles/pghive_baselines.dir/baselines/gmm_schema.cc.o"
  "CMakeFiles/pghive_baselines.dir/baselines/gmm_schema.cc.o.d"
  "CMakeFiles/pghive_baselines.dir/baselines/schemi.cc.o"
  "CMakeFiles/pghive_baselines.dir/baselines/schemi.cc.o.d"
  "libpghive_baselines.a"
  "libpghive_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pghive_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
