file(REMOVE_RECURSE
  "libpghive_baselines.a"
)
