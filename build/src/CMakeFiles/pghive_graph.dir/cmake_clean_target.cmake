file(REMOVE_RECURSE
  "libpghive_graph.a"
)
