file(REMOVE_RECURSE
  "CMakeFiles/pghive_graph.dir/graph/csv_io.cc.o"
  "CMakeFiles/pghive_graph.dir/graph/csv_io.cc.o.d"
  "CMakeFiles/pghive_graph.dir/graph/graph_builder.cc.o"
  "CMakeFiles/pghive_graph.dir/graph/graph_builder.cc.o.d"
  "CMakeFiles/pghive_graph.dir/graph/graph_stats.cc.o"
  "CMakeFiles/pghive_graph.dir/graph/graph_stats.cc.o.d"
  "CMakeFiles/pghive_graph.dir/graph/property_graph.cc.o"
  "CMakeFiles/pghive_graph.dir/graph/property_graph.cc.o.d"
  "CMakeFiles/pghive_graph.dir/graph/value.cc.o"
  "CMakeFiles/pghive_graph.dir/graph/value.cc.o.d"
  "libpghive_graph.a"
  "libpghive_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pghive_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
