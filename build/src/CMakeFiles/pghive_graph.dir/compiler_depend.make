# Empty compiler generated dependencies file for pghive_graph.
# This may be replaced when dependencies are built.
