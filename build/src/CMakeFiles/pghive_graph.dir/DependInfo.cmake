
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/csv_io.cc" "src/CMakeFiles/pghive_graph.dir/graph/csv_io.cc.o" "gcc" "src/CMakeFiles/pghive_graph.dir/graph/csv_io.cc.o.d"
  "/root/repo/src/graph/graph_builder.cc" "src/CMakeFiles/pghive_graph.dir/graph/graph_builder.cc.o" "gcc" "src/CMakeFiles/pghive_graph.dir/graph/graph_builder.cc.o.d"
  "/root/repo/src/graph/graph_stats.cc" "src/CMakeFiles/pghive_graph.dir/graph/graph_stats.cc.o" "gcc" "src/CMakeFiles/pghive_graph.dir/graph/graph_stats.cc.o.d"
  "/root/repo/src/graph/property_graph.cc" "src/CMakeFiles/pghive_graph.dir/graph/property_graph.cc.o" "gcc" "src/CMakeFiles/pghive_graph.dir/graph/property_graph.cc.o.d"
  "/root/repo/src/graph/value.cc" "src/CMakeFiles/pghive_graph.dir/graph/value.cc.o" "gcc" "src/CMakeFiles/pghive_graph.dir/graph/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pghive_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
