file(REMOVE_RECURSE
  "CMakeFiles/pghive_datagen.dir/datagen/dataset_spec.cc.o"
  "CMakeFiles/pghive_datagen.dir/datagen/dataset_spec.cc.o.d"
  "CMakeFiles/pghive_datagen.dir/datagen/datasets.cc.o"
  "CMakeFiles/pghive_datagen.dir/datagen/datasets.cc.o.d"
  "CMakeFiles/pghive_datagen.dir/datagen/generator.cc.o"
  "CMakeFiles/pghive_datagen.dir/datagen/generator.cc.o.d"
  "CMakeFiles/pghive_datagen.dir/datagen/noise.cc.o"
  "CMakeFiles/pghive_datagen.dir/datagen/noise.cc.o.d"
  "libpghive_datagen.a"
  "libpghive_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pghive_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
