
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/dataset_spec.cc" "src/CMakeFiles/pghive_datagen.dir/datagen/dataset_spec.cc.o" "gcc" "src/CMakeFiles/pghive_datagen.dir/datagen/dataset_spec.cc.o.d"
  "/root/repo/src/datagen/datasets.cc" "src/CMakeFiles/pghive_datagen.dir/datagen/datasets.cc.o" "gcc" "src/CMakeFiles/pghive_datagen.dir/datagen/datasets.cc.o.d"
  "/root/repo/src/datagen/generator.cc" "src/CMakeFiles/pghive_datagen.dir/datagen/generator.cc.o" "gcc" "src/CMakeFiles/pghive_datagen.dir/datagen/generator.cc.o.d"
  "/root/repo/src/datagen/noise.cc" "src/CMakeFiles/pghive_datagen.dir/datagen/noise.cc.o" "gcc" "src/CMakeFiles/pghive_datagen.dir/datagen/noise.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pghive_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pghive_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
