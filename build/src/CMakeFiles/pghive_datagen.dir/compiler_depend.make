# Empty compiler generated dependencies file for pghive_datagen.
# This may be replaced when dependencies are built.
