file(REMOVE_RECURSE
  "libpghive_datagen.a"
)
