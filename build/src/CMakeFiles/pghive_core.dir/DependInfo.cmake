
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cardinality.cc" "src/CMakeFiles/pghive_core.dir/core/cardinality.cc.o" "gcc" "src/CMakeFiles/pghive_core.dir/core/cardinality.cc.o.d"
  "/root/repo/src/core/constraints.cc" "src/CMakeFiles/pghive_core.dir/core/constraints.cc.o" "gcc" "src/CMakeFiles/pghive_core.dir/core/constraints.cc.o.d"
  "/root/repo/src/core/datatype_inference.cc" "src/CMakeFiles/pghive_core.dir/core/datatype_inference.cc.o" "gcc" "src/CMakeFiles/pghive_core.dir/core/datatype_inference.cc.o.d"
  "/root/repo/src/core/deletions.cc" "src/CMakeFiles/pghive_core.dir/core/deletions.cc.o" "gcc" "src/CMakeFiles/pghive_core.dir/core/deletions.cc.o.d"
  "/root/repo/src/core/feature_encoder.cc" "src/CMakeFiles/pghive_core.dir/core/feature_encoder.cc.o" "gcc" "src/CMakeFiles/pghive_core.dir/core/feature_encoder.cc.o.d"
  "/root/repo/src/core/incremental.cc" "src/CMakeFiles/pghive_core.dir/core/incremental.cc.o" "gcc" "src/CMakeFiles/pghive_core.dir/core/incremental.cc.o.d"
  "/root/repo/src/core/label_alias.cc" "src/CMakeFiles/pghive_core.dir/core/label_alias.cc.o" "gcc" "src/CMakeFiles/pghive_core.dir/core/label_alias.cc.o.d"
  "/root/repo/src/core/pattern.cc" "src/CMakeFiles/pghive_core.dir/core/pattern.cc.o" "gcc" "src/CMakeFiles/pghive_core.dir/core/pattern.cc.o.d"
  "/root/repo/src/core/pgschema_parser.cc" "src/CMakeFiles/pghive_core.dir/core/pgschema_parser.cc.o" "gcc" "src/CMakeFiles/pghive_core.dir/core/pgschema_parser.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/CMakeFiles/pghive_core.dir/core/pipeline.cc.o" "gcc" "src/CMakeFiles/pghive_core.dir/core/pipeline.cc.o.d"
  "/root/repo/src/core/schema.cc" "src/CMakeFiles/pghive_core.dir/core/schema.cc.o" "gcc" "src/CMakeFiles/pghive_core.dir/core/schema.cc.o.d"
  "/root/repo/src/core/schema_diff.cc" "src/CMakeFiles/pghive_core.dir/core/schema_diff.cc.o" "gcc" "src/CMakeFiles/pghive_core.dir/core/schema_diff.cc.o.d"
  "/root/repo/src/core/schema_json.cc" "src/CMakeFiles/pghive_core.dir/core/schema_json.cc.o" "gcc" "src/CMakeFiles/pghive_core.dir/core/schema_json.cc.o.d"
  "/root/repo/src/core/serialization.cc" "src/CMakeFiles/pghive_core.dir/core/serialization.cc.o" "gcc" "src/CMakeFiles/pghive_core.dir/core/serialization.cc.o.d"
  "/root/repo/src/core/type_extraction.cc" "src/CMakeFiles/pghive_core.dir/core/type_extraction.cc.o" "gcc" "src/CMakeFiles/pghive_core.dir/core/type_extraction.cc.o.d"
  "/root/repo/src/core/validation.cc" "src/CMakeFiles/pghive_core.dir/core/validation.cc.o" "gcc" "src/CMakeFiles/pghive_core.dir/core/validation.cc.o.d"
  "/root/repo/src/core/value_stats.cc" "src/CMakeFiles/pghive_core.dir/core/value_stats.cc.o" "gcc" "src/CMakeFiles/pghive_core.dir/core/value_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pghive_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pghive_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pghive_lsh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pghive_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pghive_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
