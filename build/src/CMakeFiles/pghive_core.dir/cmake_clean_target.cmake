file(REMOVE_RECURSE
  "libpghive_core.a"
)
