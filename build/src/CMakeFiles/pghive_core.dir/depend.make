# Empty dependencies file for pghive_core.
# This may be replaced when dependencies are built.
