file(REMOVE_RECURSE
  "CMakeFiles/pghive_common.dir/common/csv.cc.o"
  "CMakeFiles/pghive_common.dir/common/csv.cc.o.d"
  "CMakeFiles/pghive_common.dir/common/json.cc.o"
  "CMakeFiles/pghive_common.dir/common/json.cc.o.d"
  "CMakeFiles/pghive_common.dir/common/logging.cc.o"
  "CMakeFiles/pghive_common.dir/common/logging.cc.o.d"
  "CMakeFiles/pghive_common.dir/common/random.cc.o"
  "CMakeFiles/pghive_common.dir/common/random.cc.o.d"
  "CMakeFiles/pghive_common.dir/common/status.cc.o"
  "CMakeFiles/pghive_common.dir/common/status.cc.o.d"
  "CMakeFiles/pghive_common.dir/common/string_util.cc.o"
  "CMakeFiles/pghive_common.dir/common/string_util.cc.o.d"
  "CMakeFiles/pghive_common.dir/common/union_find.cc.o"
  "CMakeFiles/pghive_common.dir/common/union_find.cc.o.d"
  "libpghive_common.a"
  "libpghive_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pghive_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
