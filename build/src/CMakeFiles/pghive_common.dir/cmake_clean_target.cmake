file(REMOVE_RECURSE
  "libpghive_common.a"
)
