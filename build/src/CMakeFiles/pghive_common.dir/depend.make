# Empty dependencies file for pghive_common.
# This may be replaced when dependencies are built.
