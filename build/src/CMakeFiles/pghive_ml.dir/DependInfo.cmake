
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/gmm.cc" "src/CMakeFiles/pghive_ml.dir/ml/gmm.cc.o" "gcc" "src/CMakeFiles/pghive_ml.dir/ml/gmm.cc.o.d"
  "/root/repo/src/ml/kmeans.cc" "src/CMakeFiles/pghive_ml.dir/ml/kmeans.cc.o" "gcc" "src/CMakeFiles/pghive_ml.dir/ml/kmeans.cc.o.d"
  "/root/repo/src/ml/stats.cc" "src/CMakeFiles/pghive_ml.dir/ml/stats.cc.o" "gcc" "src/CMakeFiles/pghive_ml.dir/ml/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pghive_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
