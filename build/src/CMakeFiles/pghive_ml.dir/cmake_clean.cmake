file(REMOVE_RECURSE
  "CMakeFiles/pghive_ml.dir/ml/gmm.cc.o"
  "CMakeFiles/pghive_ml.dir/ml/gmm.cc.o.d"
  "CMakeFiles/pghive_ml.dir/ml/kmeans.cc.o"
  "CMakeFiles/pghive_ml.dir/ml/kmeans.cc.o.d"
  "CMakeFiles/pghive_ml.dir/ml/stats.cc.o"
  "CMakeFiles/pghive_ml.dir/ml/stats.cc.o.d"
  "libpghive_ml.a"
  "libpghive_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pghive_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
