# Empty compiler generated dependencies file for pghive_ml.
# This may be replaced when dependencies are built.
