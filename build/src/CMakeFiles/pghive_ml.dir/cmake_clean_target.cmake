file(REMOVE_RECURSE
  "libpghive_ml.a"
)
