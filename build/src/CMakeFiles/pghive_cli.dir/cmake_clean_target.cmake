file(REMOVE_RECURSE
  "libpghive_cli.a"
)
