file(REMOVE_RECURSE
  "CMakeFiles/pghive_cli.dir/cli/args.cc.o"
  "CMakeFiles/pghive_cli.dir/cli/args.cc.o.d"
  "CMakeFiles/pghive_cli.dir/cli/commands.cc.o"
  "CMakeFiles/pghive_cli.dir/cli/commands.cc.o.d"
  "libpghive_cli.a"
  "libpghive_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pghive_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
