# Empty compiler generated dependencies file for pghive_cli.
# This may be replaced when dependencies are built.
