// Shared helpers for the figure/table reproduction harnesses.
//
// Every bench binary prints the rows/series its paper counterpart plots.
// The dataset scale (relative to the specs' laptop-scale defaults) can be
// adjusted with the PGHIVE_SCALE environment variable (default 0.3 for the
// sweep-heavy figures; each binary documents its own default).

#ifndef PGHIVE_BENCH_BENCH_UTIL_H_
#define PGHIVE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "eval/experiment.h"
#include "eval/report.h"

namespace pghive {
namespace bench {

inline double ScaleFromEnv(double default_scale) {
  const char* env = std::getenv("PGHIVE_SCALE");
  if (!env) return default_scale;
  double v = std::atof(env);
  return v > 0 ? v : default_scale;
}

/// The paper's evaluation grid.
inline const std::vector<double>& NoiseLevels() {
  static const std::vector<double> kLevels = {0.0, 0.1, 0.2, 0.3, 0.4};
  return kLevels;
}

inline const std::vector<double>& LabelAvailabilities() {
  static const std::vector<double> kLevels = {1.0, 0.5, 0.0};
  return kLevels;
}

inline std::string Pct(double v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.0f%%", v * 100);
  return buf;
}

inline std::string F3(double v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

inline std::string Secs(double v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%.3fs", v);
  return buf;
}

}  // namespace bench
}  // namespace pghive

#endif  // PGHIVE_BENCH_BENCH_UTIL_H_
