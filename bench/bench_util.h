// Shared helpers for the figure/table reproduction harnesses.
//
// Every bench binary prints the rows/series its paper counterpart plots.
// The dataset scale (relative to the specs' laptop-scale defaults) can be
// adjusted with the PGHIVE_SCALE environment variable (default 0.3 for the
// sweep-heavy figures; each binary documents its own default).

#ifndef PGHIVE_BENCH_BENCH_UTIL_H_
#define PGHIVE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pghive {
namespace bench {

inline double ScaleFromEnv(double default_scale) {
  const char* env = std::getenv("PGHIVE_SCALE");
  if (!env) return default_scale;
  double v = std::atof(env);
  return v > 0 ? v : default_scale;
}

/// The paper's evaluation grid.
inline const std::vector<double>& NoiseLevels() {
  static const std::vector<double> kLevels = {0.0, 0.1, 0.2, 0.3, 0.4};
  return kLevels;
}

inline const std::vector<double>& LabelAvailabilities() {
  static const std::vector<double> kLevels = {1.0, 0.5, 0.0};
  return kLevels;
}

inline std::string Pct(double v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.0f%%", v * 100);
  return buf;
}

inline std::string F3(double v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

inline std::string Secs(double v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%.3fs", v);
  return buf;
}

// --- Observability plumbing shared by the bench binaries. ---

/// One bench result rendered in the shared observability JSONL schema
/// (obs/export.h): {"type":"bench","name":<name>, ...fields}. Using the
/// same line shape as --metrics-out means one parser handles CLI exports,
/// bench outputs and test fixtures alike.
inline std::string BenchJsonl(const std::string& name, JsonObject fields) {
  return obs::JsonlLine("bench", name, std::move(fields));
}

/// Turns full metric + span collection on (benches that derive timings
/// from the registry/tracer call this before their measured section).
inline void EnableObservability() {
  obs::SetMetricsEnabled(true);
  obs::Tracer::Global().SetEnabled(true);
}

/// Turns collection back off and drops buffered spans, so code measured
/// afterwards (the google-benchmark loops) pays only the disabled-path
/// branch per span.
inline void DisableObservability() {
  obs::SetMetricsEnabled(false);
  obs::Tracer::Global().SetEnabled(false);
  obs::Tracer::Global().Clear();
}

/// Honors the same PGHIVE_METRICS / PGHIVE_TRACE environment variables as
/// the CLI: when set, exports the global registry / tracer there. Benches
/// call this once at exit; failures are reported but never fatal.
inline void ExportObsFromEnv() {
  if (const char* path = std::getenv("PGHIVE_METRICS")) {
    Status s = obs::WriteMetricsJsonl(path);
    if (!s.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", path,
                   s.ToString().c_str());
    }
  }
  if (const char* path = std::getenv("PGHIVE_TRACE")) {
    Status s = obs::WriteChromeTrace(path);
    if (!s.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", path,
                   s.ToString().c_str());
    }
  }
}

}  // namespace bench
}  // namespace pghive

#endif  // PGHIVE_BENCH_BENCH_UTIL_H_
