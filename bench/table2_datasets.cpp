// Table 2: dataset statistics. Generates the eight benchmark graphs at the
// configured scale and reports the measured structural statistics next to
// the paper's published counts (which describe the full-size originals).

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "datagen/datasets.h"
#include "datagen/generator.h"
#include "graph/graph_stats.h"

using namespace pghive;
using namespace pghive::bench;

int main() {
  double scale = ScaleFromEnv(1.0);
  std::printf("%s", Banner("Table 2: dataset statistics (scale " +
                           FormatDouble(scale, 2) + ")")
                        .c_str());

  TextTable table({"Dataset", "Nodes", "Edges", "NTyp", "ETyp", "NLab",
                   "ELab", "NPat", "EPat", "R/S", "paper N", "paper E"});
  for (const auto& spec : AllDatasetSpecs()) {
    GenerateOptions gen;
    gen.num_nodes = static_cast<size_t>(spec.default_nodes * scale);
    gen.num_edges = static_cast<size_t>(spec.default_edges * scale);
    auto g = GenerateGraph(spec, gen);
    if (!g.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   g.status().ToString().c_str());
      return 1;
    }
    GraphStats s = ComputeGraphStats(*g, spec.name);
    table.AddRow({s.name, WithThousands(s.nodes), WithThousands(s.edges),
                  std::to_string(s.node_types), std::to_string(s.edge_types),
                  std::to_string(s.node_labels),
                  std::to_string(s.edge_labels),
                  std::to_string(s.node_patterns),
                  std::to_string(s.edge_patterns), spec.real ? "R" : "S",
                  WithThousands(spec.paper_nodes),
                  WithThousands(spec.paper_edges)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nPaper reference (Table 2): type/label counts match the originals by\n"
      "construction; instance counts are scaled down (DESIGN.md §1); pattern\n"
      "counts grow with instance count and land in the same order of\n"
      "magnitude as the originals at full scale.\n");
  return 0;
}
