// Figure 5: execution time until type discovery on each dataset across
// noise percentages (0-40%), 100% label availability. Post-processing is
// excluded, matching the paper's timing boundary.

#include <cstdio>

#include "bench_util.h"
#include "datagen/noise.h"

using namespace pghive;
using namespace pghive::bench;

int main() {
  double scale = ScaleFromEnv(1.0);
  ExperimentConfig config;
  config.size_scale = scale;
  std::printf("%s", Banner("Figure 5: time until type discovery (scale " +
                           FormatDouble(scale, 2) + ")")
                        .c_str());

  TextTable table({"dataset", "noise", "ELSH", "MinHash", "GMMSchema",
                   "SchemI"});
  for (const auto& spec : AllDatasetSpecs()) {
    auto clean = GenerateForExperiment(spec, config);
    if (!clean.ok()) {
      std::fprintf(stderr, "%s\n", clean.status().ToString().c_str());
      return 1;
    }
    for (double noise : NoiseLevels()) {
      NoiseOptions nopt;
      nopt.property_removal = noise;
      auto g = InjectNoise(*clean, nopt).value();
      std::vector<std::string> row = {spec.name, Pct(noise)};
      for (Method m : AllMethods()) {
        ExperimentResult r = RunMethod(g, m, config);
        row.push_back(r.ran ? Secs(r.seconds) : "refused");
      }
      table.AddRow(std::move(row));
      std::fprintf(stderr, ".");
    }
  }
  std::fprintf(stderr, "\n");
  std::printf("%s", table.ToString().c_str());

  std::printf(
      "\nPaper reference (Figure 5): PG-HIVE's runtime is flat across noise\n"
      "levels (O(N T D) hashing, §4.7); GMMSchema's cost grows with noise as\n"
      "property distributions spread and EM works harder. NOTE: the paper's\n"
      "1.95x PG-HIVE-vs-SchemI speedup compared a Spark implementation with\n"
      "SchemI's research prototype; re-implemented on one substrate, SchemI's\n"
      "simpler per-element work is cheaper at these scales (see\n"
      "EXPERIMENTS.md).\n");
  return 0;
}
