// Figure 5: execution time until type discovery on each dataset across
// noise percentages (0-40%), 100% label availability. Post-processing is
// excluded, matching the paper's timing boundary.
//
// A second table sweeps the execution runtime's thread count for the two
// PG-HIVE backends (the paper ran these stages data-parallel on a 4-node
// Spark cluster; src/runtime/ is the in-process substrate standing in for
// it). The discovered schema is identical at every thread count.

#include <cstdio>

#include "bench_util.h"
#include "datagen/noise.h"
#include "runtime/thread_pool.h"

using namespace pghive;
using namespace pghive::bench;

int main() {
  double scale = ScaleFromEnv(1.0);
  ExperimentConfig config;
  config.size_scale = scale;
  std::printf("%s", Banner("Figure 5: time until type discovery (scale " +
                           FormatDouble(scale, 2) + ")")
                        .c_str());

  TextTable table({"dataset", "noise", "ELSH", "MinHash", "GMMSchema",
                   "SchemI"});
  for (const auto& spec : AllDatasetSpecs()) {
    auto clean = GenerateForExperiment(spec, config);
    if (!clean.ok()) {
      std::fprintf(stderr, "%s\n", clean.status().ToString().c_str());
      return 1;
    }
    for (double noise : NoiseLevels()) {
      NoiseOptions nopt;
      nopt.property_removal = noise;
      auto g = InjectNoise(*clean, nopt).value();
      std::vector<std::string> row = {spec.name, Pct(noise)};
      for (Method m : AllMethods()) {
        ExperimentResult r = RunMethod(g, m, config);
        row.push_back(r.ran ? Secs(r.seconds) : "refused");
      }
      table.AddRow(std::move(row));
      std::fprintf(stderr, ".");
    }
  }
  std::fprintf(stderr, "\n");
  std::printf("%s", table.ToString().c_str());

  // Thread sweep (0% noise): PG-HIVE methods only — the baselines have no
  // parallel substrate.
  const int hw = ThreadPool::HardwareConcurrency();
  std::vector<int> thread_counts = {1, 2, 4};
  if (hw > 4) thread_counts.push_back(hw);
  std::vector<std::string> header = {"dataset"};
  for (int t : thread_counts) {
    header.push_back("ELSH t=" + std::to_string(t));
  }
  for (int t : thread_counts) {
    header.push_back("MinHash t=" + std::to_string(t));
  }
  TextTable threads_table(std::move(header));
  for (const auto& spec : AllDatasetSpecs()) {
    auto g = GenerateForExperiment(spec, config);
    if (!g.ok()) continue;
    std::vector<std::string> row = {spec.name};
    for (Method m : {Method::kPgHiveElsh, Method::kPgHiveMinHash}) {
      for (int t : thread_counts) {
        ExperimentConfig threaded = config;
        threaded.pipeline.num_threads = t;
        ExperimentResult r = RunMethod(*g, m, threaded);
        row.push_back(r.ran ? Secs(r.seconds) : "refused");
      }
    }
    threads_table.AddRow(std::move(row));
    std::fprintf(stderr, ".");
  }
  std::fprintf(stderr, "\n");
  std::printf("\n%s", Banner("Thread sweep, 0% noise (hardware threads: " +
                             std::to_string(hw) + ")")
                          .c_str());
  std::printf("%s", threads_table.ToString().c_str());

  std::printf(
      "\nPaper reference (Figure 5): PG-HIVE's runtime is flat across noise\n"
      "levels (O(N T D) hashing, §4.7); GMMSchema's cost grows with noise as\n"
      "property distributions spread and EM works harder. NOTE: the paper's\n"
      "1.95x PG-HIVE-vs-SchemI speedup compared a Spark implementation with\n"
      "SchemI's research prototype; re-implemented on one substrate, SchemI's\n"
      "simpler per-element work is cheaper at these scales (see\n"
      "EXPERIMENTS.md).\n");
  return 0;
}
