// Table 1: schema discovery approaches on property graphs — the qualitative
// capability matrix, with each claim about OUR implementations verified
// behaviourally (the baselines really do refuse unlabeled input, GMMSchema
// really produces no edge types, PG-HIVE really emits constraints).

#include <cstdio>

#include "bench_util.h"
#include "core/pipeline.h"
#include "datagen/datasets.h"
#include "datagen/generator.h"
#include "datagen/noise.h"

using namespace pghive;

int main() {
  std::printf("%s", Banner("Table 1: capability matrix (verified)").c_str());

  // Probe graph: small POLE with half the labels stripped.
  GenerateOptions gen;
  gen.num_nodes = 400;
  gen.num_edges = 700;
  auto labeled = GenerateGraph(MakePoleSpec(), gen).value();
  NoiseOptions strip;
  strip.label_availability = 0.5;
  auto semi = InjectNoise(labeled, strip).value();

  ExperimentConfig config;

  // Label independence: does the method run on 50%-labeled data?
  auto runs_on = [&](Method m, const PropertyGraph& g) {
    return RunMethod(g, m, config).ran;
  };
  bool schemi_semi = runs_on(Method::kSchemI, semi);
  bool gmm_semi = runs_on(Method::kGmmSchema, semi);
  bool hive_semi = runs_on(Method::kPgHiveElsh, semi);

  // Schema elements: node/edge types discovered on labeled data.
  auto schemi_r = RunMethod(labeled, Method::kSchemI, config);
  auto gmm_r = RunMethod(labeled, Method::kGmmSchema, config);
  PgHivePipeline pipeline;
  auto hive_schema = pipeline.DiscoverSchema(labeled).value();
  bool hive_constraints = false;
  for (const auto& t : hive_schema.node_types) {
    hive_constraints |= !t.constraints.empty();
  }
  bool hive_cardinalities = false;
  for (const auto& t : hive_schema.edge_types) {
    hive_cardinalities |= t.cardinality != SchemaCardinality::kUnknown;
  }

  auto yn = [](bool b) { return std::string(b ? "yes" : "no"); };
  TextTable table({"Capability", "SchemI", "GMMSchema", "PG-HIVE"});
  table.AddRow({"Label independent", yn(schemi_semi), yn(gmm_semi),
                yn(hive_semi)});
  table.AddRow({"Multilabeled elements", "no (flattens)", "yes", "yes"});
  table.AddRow({"Node types", yn(schemi_r.node_types > 0),
                yn(gmm_r.node_types > 0),
                yn(!hive_schema.node_types.empty())});
  table.AddRow({"Edge types", yn(schemi_r.edge_types > 0),
                yn(gmm_r.edge_types > 0),
                yn(!hive_schema.edge_types.empty())});
  table.AddRow({"Constraints (datatype/opt)", "no", "no",
                yn(hive_constraints)});
  table.AddRow({"Cardinalities", "no", "no", yn(hive_cardinalities)});
  table.AddRow({"Incremental", "no", "no", "yes (IncrementalDiscoverer)"});
  table.AddRow({"Automation", "yes", "yes", "yes (adaptive b, T)"});
  std::printf("%s", table.ToString().c_str());

  std::printf(
      "\nPaper reference (Table 1): PG-HIVE is the only approach that is\n"
      "label independent, covers nodes+edges+constraints, and is "
      "incremental.\n");
  return 0;
}
