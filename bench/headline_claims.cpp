// Headline claims: the paper's abstract quantifies PG-HIVE's advantage as
// "up to 65% higher accuracy for nodes, 40% for edges, and 1.95x faster
// execution". This harness computes the same aggregates over the full
// evaluation grid of this reproduction: per test case, the margin of the
// best PG-HIVE variant over the best runnable baseline, maximized (and
// averaged) across cases.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "datagen/noise.h"

using namespace pghive;
using namespace pghive::bench;

int main() {
  double scale = ScaleFromEnv(0.3);
  ExperimentConfig config;
  config.size_scale = scale;
  std::printf("%s", Banner("Headline claims over the full grid (scale " +
                           FormatDouble(scale, 2) + ")")
                        .c_str());

  double max_node_gain = 0, max_edge_gain = 0, max_speedup = 0;
  double sum_node_gain = 0, sum_edge_gain = 0, sum_speedup = 0;
  size_t comparable_cases = 0, exclusive_cases = 0;
  std::string max_node_case, max_edge_case, max_speed_case;

  for (const auto& spec : AllDatasetSpecs()) {
    auto clean = GenerateForExperiment(spec, config);
    if (!clean.ok()) {
      std::fprintf(stderr, "%s\n", clean.status().ToString().c_str());
      return 1;
    }
    for (double avail : LabelAvailabilities()) {
      for (double noise : NoiseLevels()) {
        NoiseOptions nopt;
        nopt.property_removal = noise;
        nopt.label_availability = avail;
        auto g = InjectNoise(*clean, nopt).value();

        double hive_node = 0, hive_edge = 0, hive_time = 1e9;
        for (Method m : {Method::kPgHiveElsh, Method::kPgHiveMinHash}) {
          ExperimentResult r = RunMethod(g, m, config);
          if (!r.ran) continue;
          hive_node = std::max(hive_node, r.node_f1.f1);
          hive_edge = std::max(hive_edge, r.edge_f1.f1);
          hive_time = std::min(hive_time, r.seconds);
        }
        double base_node = -1, base_edge = -1, base_time = 1e9;
        bool any_baseline = false;
        for (Method m : {Method::kGmmSchema, Method::kSchemI}) {
          if (!MethodSupportsLabelAvailability(m, avail)) continue;
          ExperimentResult r = RunMethod(g, m, config);
          if (!r.ran) continue;
          any_baseline = true;
          base_node = std::max(base_node, r.node_f1.f1);
          if (r.has_edge_types) {
            base_edge = std::max(base_edge, r.edge_f1.f1);
          }
          base_time = std::min(base_time, r.seconds);
        }
        std::fprintf(stderr, ".");
        if (!any_baseline) {
          ++exclusive_cases;  // only PG-HIVE produced a schema at all
          continue;
        }
        ++comparable_cases;
        std::string case_name = spec.name + " " + Pct(noise) + "noise/" +
                                Pct(avail) + "lab";
        double node_gain = (hive_node - base_node) * 100.0;
        double edge_gain = base_edge >= 0 ? (hive_edge - base_edge) * 100.0
                                          : 0.0;
        double speedup = base_time / std::max(hive_time, 1e-9);
        sum_node_gain += node_gain;
        sum_edge_gain += edge_gain;
        sum_speedup += speedup;
        if (node_gain > max_node_gain) {
          max_node_gain = node_gain;
          max_node_case = case_name;
        }
        if (edge_gain > max_edge_gain) {
          max_edge_gain = edge_gain;
          max_edge_case = case_name;
        }
        if (speedup > max_speedup) {
          max_speedup = speedup;
          max_speed_case = case_name;
        }
      }
    }
  }
  std::fprintf(stderr, "\n");

  TextTable table({"claim", "paper", "measured", "at case"});
  table.AddRow({"max node F1* gain vs best baseline", "up to +65 pts",
                "+" + FormatDouble(max_node_gain, 1) + " pts",
                max_node_case});
  table.AddRow({"max edge F1* gain vs best baseline", "up to +40 pts",
                "+" + FormatDouble(max_edge_gain, 1) + " pts",
                max_edge_case});
  table.AddRow({"max speedup vs slowest baseline", "up to 1.95x",
                FormatDouble(max_speedup, 2) + "x", max_speed_case});
  table.AddRow({"mean node F1* gain (comparable cases)", "-",
                "+" + FormatDouble(sum_node_gain / comparable_cases, 1) +
                    " pts",
                std::to_string(comparable_cases) + " cases"});
  table.AddRow({"mean edge F1* gain (comparable cases)", "-",
                "+" + FormatDouble(sum_edge_gain / comparable_cases, 1) +
                    " pts",
                ""});
  table.AddRow({"cases only PG-HIVE can process", "-",
                std::to_string(exclusive_cases) + " of " +
                    std::to_string(exclusive_cases + comparable_cases),
                "50%/0% label availability"});
  std::printf("%s", table.ToString().c_str());

  std::printf(
      "\nNotes: gains are measured only where a baseline runs (100%% label\n"
      "availability); at 50%%/0%% labels the baselines refuse, which is the\n"
      "paper's strongest claim. The runtime ratio reflects GMMSchema (see\n"
      "EXPERIMENTS.md: the SchemI prototype ratio does not transfer across\n"
      "substrates).\n");
  return 0;
}
