// Figure 7: incremental execution time per iteration. Each dataset is split
// into 10 batches (as in the paper) and streamed through the incremental
// pipeline; we report the per-batch wall-clock for both PG-HIVE variants
// plus the final schema quality, demonstrating that batch cost stays flat
// (O(B + C_b * C_n), §4.7).

#include <cstdio>

#include "bench_util.h"
#include "core/incremental.h"
#include "eval/f1.h"

using namespace pghive;
using namespace pghive::bench;

int main() {
  double scale = ScaleFromEnv(1.0);
  ExperimentConfig config;
  config.size_scale = scale;
  const size_t kBatches = 10;
  std::printf("%s",
              Banner("Figure 7: incremental time per batch (10 batches, "
                     "scale " +
                     FormatDouble(scale, 2) + ")")
                  .c_str());

  for (ClusteringMethod method :
       {ClusteringMethod::kElsh, ClusteringMethod::kMinHash}) {
    std::printf("\n--- PG-HIVE-%s ---\n", ClusteringMethodName(method));
    TextTable table({"dataset", "b1", "b2", "b3", "b4", "b5", "b6", "b7",
                     "b8", "b9", "b10", "total", "final node F1*"});
    for (const auto& spec : AllDatasetSpecs()) {
      auto g = GenerateForExperiment(spec, config);
      if (!g.ok()) {
        std::fprintf(stderr, "%s\n", g.status().ToString().c_str());
        return 1;
      }
      IncrementalOptions opt;
      opt.pipeline.method = method;
      IncrementalDiscoverer discoverer(opt);
      for (const auto& batch : SplitIntoBatches(*g, kBatches)) {
        if (auto s = discoverer.Feed(batch); !s.ok()) {
          std::fprintf(stderr, "%s\n", s.ToString().c_str());
          return 1;
        }
      }
      const SchemaGraph& schema = discoverer.Finish(*g);
      std::vector<std::string> row = {spec.name};
      double total = 0;
      for (double s : discoverer.batch_seconds()) {
        row.push_back(FormatDouble(s * 1000.0, 0) + "ms");
        total += s;
      }
      row.resize(11, "-");
      row.push_back(Secs(total));
      row.push_back(F3(MajorityF1Nodes(*g, schema).f1));
      table.AddRow(std::move(row));
      std::fprintf(stderr, ".");
    }
    std::printf("%s", table.ToString().c_str());
  }
  std::fprintf(stderr, "\n");

  std::printf(
      "\nPaper reference (Figure 7): per-batch times are consistent across\n"
      "iterations — the incremental design processes only new data and\n"
      "merges against the existing schema, avoiding full recomputation.\n");
  return 0;
}
