// Figure 4: F1*-scores across all noise levels (0-40%) and label
// availabilities (100/50/0%), for all eight datasets and all four methods.
// GMMSchema and SchemI only run at 100% label availability (they refuse
// otherwise), exactly like in the paper's plots where their lines are
// absent for 50% and 0%.

#include <cstdio>

#include "bench_util.h"
#include "datagen/noise.h"

using namespace pghive;
using namespace pghive::bench;

int main() {
  double scale = ScaleFromEnv(0.3);
  ExperimentConfig config;
  config.size_scale = scale;
  std::printf("%s",
              Banner("Figure 4: F1* vs noise x label availability (scale " +
                     FormatDouble(scale, 2) + ")")
                  .c_str());

  for (const auto& spec : AllDatasetSpecs()) {
    auto clean = GenerateForExperiment(spec, config);
    if (!clean.ok()) {
      std::fprintf(stderr, "%s\n", clean.status().ToString().c_str());
      return 1;
    }
    std::printf("\n### %s (%zu nodes, %zu edges)\n", spec.name.c_str(),
                clean->num_nodes(), clean->num_edges());
    TextTable table({"labels", "noise", "method", "node F1*", "edge F1*",
                     "node F1* bar"});
    for (double avail : LabelAvailabilities()) {
      for (double noise : NoiseLevels()) {
        NoiseOptions nopt;
        nopt.property_removal = noise;
        nopt.label_availability = avail;
        auto g = InjectNoise(*clean, nopt).value();
        for (Method m : AllMethods()) {
          if (!MethodSupportsLabelAvailability(m, avail)) continue;
          ExperimentResult r = RunMethod(g, m, config);
          if (!r.ran) {
            table.AddRow({Pct(avail), Pct(noise), MethodName(m), "refused",
                          "refused", ""});
            continue;
          }
          table.AddRow({Pct(avail), Pct(noise), MethodName(m),
                        F3(r.node_f1.f1),
                        r.has_edge_types ? F3(r.edge_f1.f1) : "-",
                        AsciiBar(r.node_f1.f1)});
        }
        std::fprintf(stderr, ".");
      }
    }
    std::printf("%s", table.ToString().c_str());
  }
  std::fprintf(stderr, "\n");

  std::printf(
      "\nPaper reference (Figure 4): PG-HIVE stays above ~0.9 under noise\n"
      "with labels available and remains usable even at 0%% labels, where\n"
      "GMMSchema and SchemI cannot run at all; GMMSchema degrades as noise\n"
      "exceeds 20%%; SchemI trails on multi-label datasets (MB6, FIB25,\n"
      "HET.IO, IYP).\n");
  return 0;
}
