// Microbenchmarks (google-benchmark) for the pipeline and its design
// ablations called out in DESIGN.md: encoding cost vs embedding dimension,
// adaptive vs fixed parameters, Word2Vec vs hash embeddings, sampled vs
// full datatype scans, and the label_weight knob.

#include <benchmark/benchmark.h>

#include "core/feature_encoder.h"
#include "core/pipeline.h"
#include "datagen/datasets.h"
#include "datagen/generator.h"

namespace pghive {
namespace {

const PropertyGraph& PoleGraph() {
  static const PropertyGraph* g = [] {
    GenerateOptions gen;
    gen.num_nodes = 3000;
    gen.num_edges = 5200;
    return new PropertyGraph(GenerateGraph(MakePoleSpec(), gen).value());
  }();
  return *g;
}

void BM_EncodeNodes(benchmark::State& state) {
  int dim = static_cast<int>(state.range(0));
  const PropertyGraph& g = PoleGraph();
  LabelEmbedderOptions opt;
  opt.dimension = dim;
  LabelEmbedder embedder(opt);
  (void)embedder.Train(BuildBatchLabelCorpus(FullBatch(g)));
  FeatureEncoder encoder(&embedder);
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.EncodeNodes(FullBatch(g)));
  }
  state.SetItemsProcessed(state.iterations() * g.num_nodes());
}
BENCHMARK(BM_EncodeNodes)->Arg(8)->Arg(24)->Arg(64);

void BM_FullPipeline(benchmark::State& state) {
  // method: 0 = ELSH, 1 = MinHash
  const PropertyGraph& g = PoleGraph();
  PipelineOptions opt;
  opt.method = state.range(0) == 0 ? ClusteringMethod::kElsh
                                   : ClusteringMethod::kMinHash;
  opt.post_process = false;
  for (auto _ : state) {
    PgHivePipeline pipeline(opt);
    benchmark::DoNotOptimize(pipeline.DiscoverSchema(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_nodes());
}
BENCHMARK(BM_FullPipeline)->Arg(0)->Arg(1);

void BM_AdaptiveVsFixed(benchmark::State& state) {
  // arg 0: adaptive (pays the mu-sampling pass), 1: fixed parameters.
  const PropertyGraph& g = PoleGraph();
  PipelineOptions opt;
  opt.post_process = false;
  if (state.range(0) == 1) {
    opt.adaptive_parameters = false;
    opt.elsh.bucket_length = 2.4;
    opt.elsh.num_tables = 12;
  }
  for (auto _ : state) {
    PgHivePipeline pipeline(opt);
    benchmark::DoNotOptimize(pipeline.DiscoverSchema(g));
  }
}
BENCHMARK(BM_AdaptiveVsFixed)->Arg(0)->Arg(1);

void BM_EmbeddingBackend(benchmark::State& state) {
  // arg 0: Word2Vec (training pass per batch), 1: hash projections.
  const PropertyGraph& g = PoleGraph();
  PipelineOptions opt;
  opt.post_process = false;
  opt.embedding.backend = state.range(0) == 0 ? EmbeddingBackend::kWord2Vec
                                              : EmbeddingBackend::kHash;
  for (auto _ : state) {
    PgHivePipeline pipeline(opt);
    benchmark::DoNotOptimize(pipeline.DiscoverSchema(g));
  }
}
BENCHMARK(BM_EmbeddingBackend)->Arg(0)->Arg(1);

void BM_DatatypeScan(benchmark::State& state) {
  // arg 0: full scan, 1: sampled (10%, >= 1000).
  const PropertyGraph& g = PoleGraph();
  PipelineOptions discover_opt;
  discover_opt.post_process = false;
  PgHivePipeline discover(discover_opt);
  SchemaGraph schema = discover.DiscoverSchema(g).value();
  DataTypeInferenceOptions opt;
  opt.sample = state.range(0) == 1;
  for (auto _ : state) {
    SchemaGraph copy = schema;
    InferDataTypes(g, opt, &copy);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_DatatypeScan)->Arg(0)->Arg(1);

void BM_LabelWeight(benchmark::State& state) {
  // Ablation: label_weight 1.0 vs 2.0 vs 4.0 (quality measured elsewhere;
  // this confirms the cost is unchanged).
  const PropertyGraph& g = PoleGraph();
  PipelineOptions opt;
  opt.post_process = false;
  opt.encoder.label_weight = static_cast<double>(state.range(0));
  for (auto _ : state) {
    PgHivePipeline pipeline(opt);
    benchmark::DoNotOptimize(pipeline.DiscoverSchema(g));
  }
}
BENCHMARK(BM_LabelWeight)->Arg(1)->Arg(2)->Arg(4);

}  // namespace
}  // namespace pghive

BENCHMARK_MAIN();
