// Microbenchmarks (google-benchmark) for the pipeline and its design
// ablations called out in DESIGN.md: encoding cost vs embedding dimension,
// adaptive vs fixed parameters, Word2Vec vs hash embeddings, sampled vs
// full datatype scans, the label_weight knob, and the execution-runtime
// thread sweep.
//
// Before the google-benchmark suite runs, main() records a per-stage
// wall-clock baseline of the largest synthetic dataset at 1 thread and at
// hardware concurrency, written to BENCH_pipeline.json (override the path
// with PGHIVE_BENCH_OUT) so successive PRs accumulate a perf trajectory.
// The baseline timings are read back from the observability layer (the
// pipeline.* spans) rather than hand-rolled timers; tracing is switched
// off again before the google-benchmark loops run, so they measure the
// disabled-path overhead the acceptance criteria bound.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/csv.h"
#include "common/json.h"
#include "common/timer.h"
#include "core/feature_encoder.h"
#include "core/incremental.h"
#include "core/pipeline.h"
#include "datagen/datasets.h"
#include "datagen/generator.h"
#include "obs/trace.h"
#include "runtime/thread_pool.h"
#include "simd/simd.h"

namespace pghive {
namespace {

const PropertyGraph& PoleGraph() {
  static const PropertyGraph* g = [] {
    GenerateOptions gen;
    gen.num_nodes = 3000;
    gen.num_edges = 5200;
    return new PropertyGraph(GenerateGraph(MakePoleSpec(), gen).value());
  }();
  return *g;
}

void BM_EncodeNodes(benchmark::State& state) {
  int dim = static_cast<int>(state.range(0));
  const PropertyGraph& g = PoleGraph();
  LabelEmbedderOptions opt;
  opt.dimension = dim;
  LabelEmbedder embedder(opt);
  (void)embedder.Train(BuildBatchLabelCorpus(FullBatch(g)));
  FeatureEncoder encoder(&embedder);
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.EncodeNodes(FullBatch(g)));
  }
  state.SetItemsProcessed(state.iterations() * g.num_nodes());
}
BENCHMARK(BM_EncodeNodes)->Arg(8)->Arg(24)->Arg(64);

void BM_FullPipeline(benchmark::State& state) {
  // method: 0 = ELSH, 1 = MinHash
  const PropertyGraph& g = PoleGraph();
  PipelineOptions opt;
  opt.method = state.range(0) == 0 ? ClusteringMethod::kElsh
                                   : ClusteringMethod::kMinHash;
  opt.post_process = false;
  for (auto _ : state) {
    PgHivePipeline pipeline(opt);
    benchmark::DoNotOptimize(pipeline.DiscoverSchema(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_nodes());
}
BENCHMARK(BM_FullPipeline)->Arg(0)->Arg(1);

void BM_FullPipelineThreads(benchmark::State& state) {
  // args: {method (0 = ELSH, 1 = MinHash), threads}
  const PropertyGraph& g = PoleGraph();
  PipelineOptions opt;
  opt.method = state.range(0) == 0 ? ClusteringMethod::kElsh
                                   : ClusteringMethod::kMinHash;
  opt.num_threads = static_cast<int>(state.range(1));
  opt.post_process = false;
  for (auto _ : state) {
    PgHivePipeline pipeline(opt);
    benchmark::DoNotOptimize(pipeline.DiscoverSchema(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_nodes());
}
BENCHMARK(BM_FullPipelineThreads)
    ->Args({0, 1})
    ->Args({0, 2})
    ->Args({0, 4})
    ->Args({0, 8})
    ->Args({1, 1})
    ->Args({1, 2})
    ->Args({1, 4})
    ->Args({1, 8});

void BM_AdaptiveVsFixed(benchmark::State& state) {
  // arg 0: adaptive (pays the mu-sampling pass), 1: fixed parameters.
  const PropertyGraph& g = PoleGraph();
  PipelineOptions opt;
  opt.post_process = false;
  if (state.range(0) == 1) {
    opt.adaptive_parameters = false;
    opt.elsh.bucket_length = 2.4;
    opt.elsh.num_tables = 12;
  }
  for (auto _ : state) {
    PgHivePipeline pipeline(opt);
    benchmark::DoNotOptimize(pipeline.DiscoverSchema(g));
  }
}
BENCHMARK(BM_AdaptiveVsFixed)->Arg(0)->Arg(1);

void BM_EmbeddingBackend(benchmark::State& state) {
  // arg 0: Word2Vec (training pass per batch), 1: hash projections.
  const PropertyGraph& g = PoleGraph();
  PipelineOptions opt;
  opt.post_process = false;
  opt.embedding.backend = state.range(0) == 0 ? EmbeddingBackend::kWord2Vec
                                              : EmbeddingBackend::kHash;
  for (auto _ : state) {
    PgHivePipeline pipeline(opt);
    benchmark::DoNotOptimize(pipeline.DiscoverSchema(g));
  }
}
BENCHMARK(BM_EmbeddingBackend)->Arg(0)->Arg(1);

void BM_DatatypeScan(benchmark::State& state) {
  // arg 0: full scan, 1: sampled (10%, >= 1000).
  const PropertyGraph& g = PoleGraph();
  PipelineOptions discover_opt;
  discover_opt.post_process = false;
  PgHivePipeline discover(discover_opt);
  SchemaGraph schema = discover.DiscoverSchema(g).value();
  DataTypeInferenceOptions opt;
  opt.sample = state.range(0) == 1;
  for (auto _ : state) {
    SchemaGraph copy = schema;
    InferDataTypes(g, opt, &copy);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_DatatypeScan)->Arg(0)->Arg(1);

void BM_LabelWeight(benchmark::State& state) {
  // Ablation: label_weight 1.0 vs 2.0 vs 4.0 (quality measured elsewhere;
  // this confirms the cost is unchanged).
  const PropertyGraph& g = PoleGraph();
  PipelineOptions opt;
  opt.post_process = false;
  opt.encoder.label_weight = static_cast<double>(state.range(0));
  for (auto _ : state) {
    PgHivePipeline pipeline(opt);
    benchmark::DoNotOptimize(pipeline.DiscoverSchema(g));
  }
}
BENCHMARK(BM_LabelWeight)->Arg(1)->Arg(2)->Arg(4);

// --- Per-stage baseline recorder (BENCH_pipeline.json). ---

JsonObject StagesToJson(const StageTimings& t) {
  JsonObject stages;
  stages.emplace("embed_train", t.embed_train);
  stages.emplace("encode_nodes", t.encode_nodes);
  stages.emplace("cluster_nodes", t.cluster_nodes);
  stages.emplace("extract_nodes", t.extract_nodes);
  stages.emplace("encode_edges", t.encode_edges);
  stages.emplace("cluster_edges", t.cluster_edges);
  stages.emplace("extract_edges", t.extract_edges);
  // Hot-path sub-kernels (see StageTimings): the embed loop inside each
  // encode stage, and the LSH key computation (project) vs bucket-union
  // merge (hash) split inside each cluster stage. Zero on the sharded Feed
  // path, where shard workers interleave the two.
  stages.emplace("encode_nodes_embed", t.encode_nodes_embed);
  stages.emplace("encode_edges_embed", t.encode_edges_embed);
  stages.emplace("cluster_nodes_project", t.cluster_nodes_project);
  stages.emplace("cluster_nodes_hash", t.cluster_nodes_hash);
  stages.emplace("cluster_edges_project", t.cluster_edges_project);
  stages.emplace("cluster_edges_hash", t.cluster_edges_hash);
  stages.emplace("post_process", t.post_process);
  // post_process sub-timings: aggregate build/fold + the three per-pass
  // finalizations (they sum to ~post_process; the rest is dispatch).
  stages.emplace("post_fold", t.post_fold);
  stages.emplace("post_constraints", t.post_constraints);
  stages.emplace("post_datatypes", t.post_datatypes);
  stages.emplace("post_cardinalities", t.post_cardinalities);
  return stages;
}

/// Total seconds across all spans named `name`.
double SpanSeconds(const std::vector<obs::SpanEvent>& spans,
                   const char* name) {
  double seconds = 0.0;
  for (const auto& e : spans) {
    if (e.name == name) seconds += static_cast<double>(e.dur_ns) * 1e-9;
  }
  return seconds;
}

StageTimings StagesFromSpans(const std::vector<obs::SpanEvent>& spans) {
  StageTimings t;
  t.embed_train = SpanSeconds(spans, "pipeline.embed_train");
  t.encode_nodes = SpanSeconds(spans, "pipeline.encode_nodes");
  t.cluster_nodes = SpanSeconds(spans, "pipeline.cluster_nodes");
  t.extract_nodes = SpanSeconds(spans, "pipeline.extract_nodes");
  t.encode_edges = SpanSeconds(spans, "pipeline.encode_edges");
  t.cluster_edges = SpanSeconds(spans, "pipeline.cluster_edges");
  t.extract_edges = SpanSeconds(spans, "pipeline.extract_edges");
  t.encode_nodes_embed = SpanSeconds(spans, "pipeline.encode_nodes.embed");
  t.encode_edges_embed = SpanSeconds(spans, "pipeline.encode_edges.embed");
  t.cluster_nodes_project =
      SpanSeconds(spans, "pipeline.cluster_nodes.project");
  t.cluster_nodes_hash = SpanSeconds(spans, "pipeline.cluster_nodes.hash");
  t.cluster_edges_project =
      SpanSeconds(spans, "pipeline.cluster_edges.project");
  t.cluster_edges_hash = SpanSeconds(spans, "pipeline.cluster_edges.hash");
  t.post_process = SpanSeconds(spans, "pipeline.post_process");
  t.post_fold = SpanSeconds(spans, "pipeline.post_fold");
  t.post_constraints = SpanSeconds(spans, "pipeline.post_constraints");
  t.post_datatypes = SpanSeconds(spans, "pipeline.post_datatypes");
  t.post_cardinalities = SpanSeconds(spans, "pipeline.post_cardinalities");
  return t;
}

/// One timed DiscoverSchema (with post-processing) at `threads`; best of
/// `reps` total wall-clocks, stages taken from the best run. Both the
/// total and the per-stage breakdown come from the pipeline.* spans the
/// run recorded (the caller must have tracing enabled).
JsonObject TimedRun(const PropertyGraph& g, int threads, int reps,
                    int hardware_threads) {
  double best = -1.0;
  StageTimings best_stages;
  for (int r = 0; r < reps; ++r) {
    obs::Tracer::Global().Clear();
    PipelineOptions opt;
    opt.num_threads = threads;
    PgHivePipeline pipeline(opt);
    auto schema = pipeline.DiscoverSchema(g);
    if (!schema.ok()) {
      std::fprintf(stderr, "baseline run failed: %s\n",
                   schema.status().ToString().c_str());
      break;
    }
    const std::vector<obs::SpanEvent> spans =
        obs::Tracer::Global().CollectSpans();
    double seconds = SpanSeconds(spans, "pipeline.discover");
    if (best < 0.0 || seconds < best) {
      best = seconds;
      best_stages = StagesFromSpans(spans);
    }
  }
  JsonObject run;
  run.emplace("threads", threads);
  run.emplace("total_seconds", best);
  // A multi-thread entry recorded on a host with one hardware thread
  // measures pure runtime overhead, not speedup: flag it so consumers
  // (tools/check.sh, trend dashboards) never read it as a scaling point.
  if (threads > 1 && hardware_threads <= 1) run.emplace("degraded", true);
  run.emplace("stages", StagesToJson(best_stages));
  return run;
}

/// Streams `g` as `num_batches` batches with per-batch post-processing and
/// returns the per-batch post-process seconds (delta aggregates on or off).
std::vector<double> IncrementalPostSeconds(const PropertyGraph& g,
                                           size_t num_batches,
                                           bool delta_aggregates) {
  IncrementalOptions opt;
  opt.post_process_each_batch = true;
  opt.pipeline.aggregate_post_process = delta_aggregates;
  IncrementalDiscoverer disc(opt);
  for (const GraphBatch& batch : SplitIntoBatches(g, num_batches)) {
    Status s = disc.Feed(batch);
    if (!s.ok()) {
      std::fprintf(stderr, "incremental feed failed: %s\n",
                   s.ToString().c_str());
      return {};
    }
  }
  return disc.post_process_seconds();
}

double Sum(const std::vector<double>& v) {
  double total = 0.0;
  for (double x : v) total += x;
  return total;
}

/// Incremental-scaling record: per-batch post-processing cost of a 32-batch
/// stream of the largest dataset, delta aggregates vs the O(accumulated)
/// rescan. The delta series must stay flat (tools/check.sh gates last-batch
/// vs first-batch growth on this data).
JsonObject IncrementalScalingToJson(const PropertyGraph& g,
                                    const std::string& dataset) {
  constexpr size_t kBatches = 32;
  const std::vector<double> delta =
      IncrementalPostSeconds(g, kBatches, /*delta_aggregates=*/true);
  const std::vector<double> rescan =
      IncrementalPostSeconds(g, kBatches, /*delta_aggregates=*/false);

  JsonObject doc;
  doc.emplace("dataset", dataset);
  doc.emplace("batches", static_cast<uint64_t>(kBatches));
  JsonArray delta_arr, rescan_arr;
  for (double s : delta) delta_arr.push_back(s);
  for (double s : rescan) rescan_arr.push_back(s);
  doc.emplace("post_seconds_delta", std::move(delta_arr));
  doc.emplace("post_seconds_rescan", std::move(rescan_arr));
  const double delta_total = Sum(delta);
  const double rescan_total = Sum(rescan);
  doc.emplace("total_delta_seconds", delta_total);
  doc.emplace("total_rescan_seconds", rescan_total);
  if (delta_total > 0.0) {
    doc.emplace("speedup_vs_rescan", rescan_total / delta_total);
  }

  // JSONL mirror for the CI artifact: one line per batch and mode, plus a
  // summary line, all in the shared bench metric schema.
  for (const auto& [mode, series] :
       {std::pair<const char*, const std::vector<double>&>{"delta", delta},
        {"rescan", rescan}}) {
    for (size_t i = 0; i < series.size(); ++i) {
      JsonObject fields;
      fields.emplace("dataset", dataset);
      fields.emplace("mode", mode);
      fields.emplace("batch", static_cast<uint64_t>(i));
      fields.emplace("post_seconds", series[i]);
      std::fprintf(
          stderr, "%s\n",
          bench::BenchJsonl("micro_pipeline.incremental", fields).c_str());
    }
  }
  JsonObject summary;
  summary.emplace("dataset", dataset);
  summary.emplace("total_delta_seconds", delta_total);
  summary.emplace("total_rescan_seconds", rescan_total);
  std::fprintf(stderr, "%s\n",
               bench::BenchJsonl("micro_pipeline.incremental_total", summary)
                   .c_str());
  return doc;
}

/// Min-of-`reps` wall-clock seconds of feeding `g` as a 16-batch stream
/// through the incremental engine under the given shard/thread layout
/// (delta aggregates on, per-batch post-processing — the serve-path
/// ingest workload). Returns a negative value when a feed fails.
double TimedShardedFeedSeconds(const PropertyGraph& g, int threads,
                               int feed_shards, int reps) {
  constexpr size_t kBatches = 16;
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    IncrementalOptions opt;
    opt.pipeline.num_threads = threads;
    opt.pipeline.feed_shards = feed_shards;
    opt.post_process_each_batch = true;
    IncrementalDiscoverer disc(opt);
    Timer timer;
    for (const GraphBatch& batch : SplitIntoBatches(g, kBatches)) {
      Status s = disc.Feed(batch);
      if (!s.ok()) {
        std::fprintf(stderr, "sharded feed failed: %s\n",
                     s.ToString().c_str());
        return -1.0;
      }
    }
    const double seconds = timer.ElapsedSeconds();
    if (best < 0.0 || seconds < best) best = seconds;
  }
  return best;
}

/// Sharded-Feed thread sweep: the tentpole workload (signature-sharded
/// per-batch folds, shard-order merge) at a fixed 16-shard layout across
/// thread counts. tools/check.sh gates speedup_8t_vs_1t on multicore
/// hosts; single-core entries carry "degraded": true and are not gated.
JsonObject ShardedFeedSweepToJson(const PropertyGraph& g,
                                  const std::string& dataset, int hw) {
  constexpr int kShards = 16;
  JsonObject doc;
  doc.emplace("dataset", dataset);
  doc.emplace("feed_shards", kShards);
  doc.emplace("batches", static_cast<uint64_t>(16));
  JsonArray runs;
  double t1 = -1.0, t8 = -1.0;
  for (int threads : {1, 2, 8}) {
    const double seconds =
        TimedShardedFeedSeconds(g, threads, kShards, /*reps=*/3);
    JsonObject run;
    run.emplace("threads", threads);
    run.emplace("feed_seconds", seconds);
    const bool degraded = threads > 1 && hw <= 1;
    if (degraded) run.emplace("degraded", true);
    if (threads == 1) t1 = seconds;
    if (threads == 8) t8 = seconds;

    JsonObject fields;
    fields.emplace("dataset", dataset);
    fields.emplace("threads", threads);
    fields.emplace("feed_shards", kShards);
    fields.emplace("feed_seconds", seconds);
    if (degraded) fields.emplace("degraded", true);
    std::fprintf(
        stderr, "%s\n",
        bench::BenchJsonl("micro_pipeline.sharded_feed", fields).c_str());
    runs.push_back(std::move(run));
  }
  doc.emplace("runs", std::move(runs));
  if (t1 > 0.0 && t8 > 0.0) {
    doc.emplace("speedup_8t_vs_1t", t1 / t8);
  }
  return doc;
}

void WritePipelineBaseline() {
  // Largest synthetic dataset by default size (the acceptance workload).
  const std::vector<DatasetSpec> specs = AllDatasetSpecs();
  const DatasetSpec* largest = nullptr;
  for (const auto& spec : specs) {
    if (!largest || spec.default_nodes > largest->default_nodes) {
      largest = &spec;
    }
  }
  auto g = GenerateGraph(*largest, {});
  if (!g.ok()) {
    std::fprintf(stderr, "baseline generation failed: %s\n",
                 g.status().ToString().c_str());
    return;
  }
  const int hw = ThreadPool::HardwareConcurrency();
  if (hw <= 1) {
    std::fprintf(stderr,
                 "WARNING: hardware_concurrency() <= 1 — the multi-thread "
                 "runs below measure pure runtime overhead, not speedup; "
                 "treat speedup_vs_1thread in this baseline accordingly\n");
  }

  JsonObject doc;
  doc.emplace("bench", "micro_pipeline.baseline");
  doc.emplace("dataset", largest->name);
  doc.emplace("nodes", g->num_nodes());
  doc.emplace("edges", g->num_edges());
  doc.emplace("hardware_threads", hw);
  // Which kernel flavour the PGHIVE_SIMD dispatch resolved to for this
  // recording (the flavours are bit-identical; only the timings differ).
  doc.emplace("simd", simd::ModeName());
  // threads = 1 and hardware concurrency, plus 8 (the acceptance-criteria
  // point) when the hardware count differs. On a single-core host the
  // multi-thread runs measure pure runtime overhead, not speedup — the
  // recorded hardware_threads field says which situation this file holds.
  JsonArray runs;
  runs.push_back(TimedRun(*g, 1, /*reps=*/3, hw));
  if (hw > 1) runs.push_back(TimedRun(*g, hw, /*reps=*/3, hw));
  if (hw != 8) runs.push_back(TimedRun(*g, 8, /*reps=*/3, hw));
  double t1 = runs[0].AsObject().at("total_seconds").AsDouble();
  double tn = runs.back().AsObject().at("total_seconds").AsDouble();
  doc.emplace("runs", std::move(runs));
  if (t1 > 0.0 && tn > 0.0) {
    doc.emplace("speedup_vs_1thread", t1 / tn);
  }
  doc.emplace("incremental", IncrementalScalingToJson(*g, largest->name));
  doc.emplace("sharded_feed", ShardedFeedSweepToJson(*g, largest->name, hw));

  // The same runs once more in the shared JSONL metric schema, so the
  // perf trajectory can be tailed/joined with --metrics-out exports.
  for (const JsonValue& run : doc.at("runs").AsArray()) {
    const JsonObject& r = run.AsObject();
    JsonObject fields;
    fields.emplace("dataset", largest->name);
    fields.emplace("threads", r.at("threads"));
    fields.emplace("total_seconds", r.at("total_seconds"));
    std::fprintf(stderr, "%s\n",
                 bench::BenchJsonl("micro_pipeline.baseline", fields).c_str());
  }

  const char* out = std::getenv("PGHIVE_BENCH_OUT");
  const std::string path = out && *out ? out : "BENCH_pipeline.json";
  Status s = WriteFile(path, JsonValue(std::move(doc)).Pretty() + "\n");
  if (!s.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                 s.ToString().c_str());
    return;
  }
  std::fprintf(stderr, "wrote per-stage baseline to %s\n", path.c_str());
}

}  // namespace
}  // namespace pghive

int main(int argc, char** argv) {
  // The baseline reads its timings from spans; the google-benchmark loops
  // below run with tracing off so they measure the disabled-path overhead.
  pghive::bench::EnableObservability();
  pghive::WritePipelineBaseline();
  pghive::bench::DisableObservability();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  pghive::bench::ExportObsFromEnv();
  return 0;
}
