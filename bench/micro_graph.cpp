// Microbenchmarks for the interned graph core (graph/symbols.h +
// graph/property_graph.h): build throughput through the string-based and
// interned insert paths, full property-scan iteration, signature-index
// lookup, and graph copies (which share the symbol context and value rows).
//
// Before the google-benchmark loops, main() publishes the pghive.graph.*
// gauges for the workload graph and prints one JSONL line per headline
// statistic (distinct signatures, interned symbols, approximate heap bytes,
// peak RSS) in the shared bench/metrics schema, so CI can archive them next
// to the micro_pipeline baseline.

#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/json.h"
#include "datagen/datasets.h"
#include "datagen/generator.h"
#include "graph/graph_stats.h"
#include "graph/property_graph.h"

namespace pghive {
namespace {

/// The acceptance workload: the largest synthetic dataset at default scale.
const PropertyGraph& WorkloadGraph() {
  static const PropertyGraph* g = [] {
    const std::vector<DatasetSpec> specs = AllDatasetSpecs();
    const DatasetSpec* largest = nullptr;
    for (const auto& spec : specs) {
      if (!largest || spec.default_nodes > largest->default_nodes) {
        largest = &spec;
      }
    }
    return new PropertyGraph(GenerateGraph(*largest, {}).value());
  }();
  return *g;
}

/// Element data extracted once, so the build benchmarks measure insertion
/// (interning + row construction), not dataset generation.
struct WorkloadData {
  std::vector<NodeData> nodes;
  std::vector<EdgeData> edges;
};

const WorkloadData& ExtractedData() {
  static const WorkloadData* data = [] {
    auto* d = new WorkloadData();
    const PropertyGraph& g = WorkloadGraph();
    d->nodes.reserve(g.num_nodes());
    for (const auto& n : g.nodes()) d->nodes.push_back(ToData(n));
    d->edges.reserve(g.num_edges());
    for (const auto& e : g.edges()) d->edges.push_back(ToData(e));
    return d;
  }();
  return *data;
}

/// String-based insert path: every AddNode/AddEdge interns label/key strings
/// against the growing symbol context.
void BM_BuildFromStrings(benchmark::State& state) {
  const WorkloadData& data = ExtractedData();
  for (auto _ : state) {
    PropertyGraph g;
    for (const auto& n : data.nodes) {
      g.AddNode(n.labels, n.properties, n.truth_type);
    }
    for (const auto& e : data.edges) {
      benchmark::DoNotOptimize(
          g.AddEdge(e.source, e.target, e.labels, e.properties, e.truth_type));
    }
    benchmark::DoNotOptimize(g.num_nodes());
  }
  state.SetItemsProcessed(state.iterations() *
                          (data.nodes.size() + data.edges.size()));
}
BENCHMARK(BM_BuildFromStrings);

/// Interned insert path (the snapshot/journal decode fast path): label and
/// key sets intern to pooled ids (a hash hit after first sight), element
/// insertion is id validation + row append.
void BM_BuildInterned(benchmark::State& state) {
  const PropertyGraph& src = WorkloadGraph();
  // Canonical sets and value rows extracted once; the timed loop measures
  // interning + insertion against a fresh symbol context.
  struct Prepared {
    const std::set<std::string>* labels;
    std::set<std::string> keys;
    std::vector<Value> row;
  };
  std::vector<Prepared> prepared;
  prepared.reserve(src.num_nodes());
  for (const auto& n : src.nodes()) {
    Prepared p;
    p.labels = &n.labels.get();
    p.row.reserve(n.properties.size());
    for (size_t i = 0; i < n.properties.size(); ++i) {
      p.keys.insert(n.properties.key_at(i));
      p.row.push_back(n.properties.value_at(i));
    }
    prepared.push_back(std::move(p));
  }
  for (auto _ : state) {
    auto symbols = std::make_shared<GraphSymbols>();
    PropertyGraph g(symbols);
    for (const auto& p : prepared) {
      LabelSetId ls = symbols->label_sets.Intern(*p.labels);
      KeySetId ks = symbols->key_sets.Intern(p.keys);
      benchmark::DoNotOptimize(g.AddNodeInterned(ls, ks, p.row));
    }
    benchmark::DoNotOptimize(g.num_nodes());
  }
  state.SetItemsProcessed(state.iterations() * src.num_nodes());
}
BENCHMARK(BM_BuildInterned);

/// Full property scan through the views — the shape every pipeline stage
/// (corpus build, encoding, datatype inference) reads the graph in.
void BM_IterateProperties(benchmark::State& state) {
  const PropertyGraph& g = WorkloadGraph();
  for (auto _ : state) {
    size_t labels = 0, values = 0;
    for (const auto& n : g.nodes()) {
      labels += n.labels.size();
      for (const auto& [key, value] : n.properties) {
        values += key.size();
        benchmark::DoNotOptimize(value);
      }
    }
    for (const auto& e : g.edges()) {
      labels += e.labels.size();
      for (const auto& [key, value] : e.properties) {
        values += key.size();
        benchmark::DoNotOptimize(value);
      }
    }
    benchmark::DoNotOptimize(labels);
    benchmark::DoNotOptimize(values);
  }
  state.SetItemsProcessed(state.iterations() *
                          (g.num_nodes() + g.num_edges()));
}
BENCHMARK(BM_IterateProperties);

/// Signature-index lookup: distinct (label-set, key-set) groups with their
/// members — the unit the deduplicated encoder and LSH fan-out work on.
void BM_SignatureLookup(benchmark::State& state) {
  const PropertyGraph& g = WorkloadGraph();
  (void)g.NodeSignatureGroups();  // build outside the timed loop
  for (auto _ : state) {
    size_t members = 0;
    for (const auto& group : g.NodeSignatureGroups()) {
      members += group.members.size();
    }
    for (const auto& group : g.EdgeSignatureGroups()) {
      members += group.members.size();
    }
    benchmark::DoNotOptimize(members);
  }
  state.SetItemsProcessed(state.iterations() * (g.num_nodes() + g.num_edges()));
}
BENCHMARK(BM_SignatureLookup);

/// Graph copy: shares the symbol context and value rows, so the cost is the
/// element spines, not the strings.
void BM_CopyGraph(benchmark::State& state) {
  const PropertyGraph& g = WorkloadGraph();
  for (auto _ : state) {
    PropertyGraph copy = g;
    benchmark::DoNotOptimize(copy.num_nodes());
  }
  state.SetItemsProcessed(state.iterations() *
                          (g.num_nodes() + g.num_edges()));
}
BENCHMARK(BM_CopyGraph);

long PeakRssKb() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return -1;
  return ru.ru_maxrss;  // kilobytes on Linux
}

/// Publishes pghive.graph.* gauges for the workload and prints the headline
/// statistics as shared-schema JSONL lines (stderr, like the other benches).
void ReportGraphStats() {
  bench::EnableObservability();
  const PropertyGraph& g = WorkloadGraph();
  PublishGraphGauges(g);

  JsonObject fields;
  fields.emplace("nodes", g.num_nodes());
  fields.emplace("edges", g.num_edges());
  fields.emplace("node_signatures", g.NodeSignatureGroups().size());
  fields.emplace("edge_signatures", g.EdgeSignatureGroups().size());
  fields.emplace("interned_labels", g.symbols().labels.size());
  fields.emplace("interned_keys", g.symbols().keys.size());
  fields.emplace("label_sets", g.symbols().label_sets.size());
  fields.emplace("key_sets", g.symbols().key_sets.size());
  fields.emplace("approx_bytes", g.ApproxBytes());
  fields.emplace("peak_rss_kb", PeakRssKb());
  std::fprintf(stderr, "%s\n",
               bench::BenchJsonl("micro_graph.stats", fields).c_str());
  bench::DisableObservability();
}

}  // namespace
}  // namespace pghive

int main(int argc, char** argv) {
  pghive::ReportGraphStats();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  pghive::bench::ExportObsFromEnv();
  return 0;
}
