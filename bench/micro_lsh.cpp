// Microbenchmarks (google-benchmark) for the LSH substrate: hashing
// throughput and its scaling in dimension / table count / set size, plus
// the union-find clustering pass. These are the ablation measurements
// behind the O(N T D) efficiency analysis of §4.7.

#include <benchmark/benchmark.h>

#include <vector>

#include "cluster/lsh_clusterer.h"
#include "common/random.h"
#include "lsh/euclidean_lsh.h"
#include "lsh/minhash_lsh.h"

namespace pghive {
namespace {

std::vector<std::vector<float>> RandomVectors(size_t n, size_t dim,
                                              uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> out(n, std::vector<float>(dim));
  for (auto& v : out) {
    for (auto& x : v) x = static_cast<float>(rng.Normal());
  }
  return out;
}

void BM_ElshHash(benchmark::State& state) {
  size_t dim = static_cast<size_t>(state.range(0));
  int tables = static_cast<int>(state.range(1));
  EuclideanLshOptions opt;
  opt.num_tables = tables;
  auto lsh = EuclideanLsh::Create(dim, opt).value();
  auto vectors = RandomVectors(256, dim, 1);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lsh.Hash(vectors[i++ & 255]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ElshHash)
    ->Args({16, 10})
    ->Args({64, 10})
    ->Args({256, 10})
    ->Args({64, 5})
    ->Args({64, 20})
    ->Args({64, 35});

void BM_MinHashSignature(benchmark::State& state) {
  size_t set_size = static_cast<size_t>(state.range(0));
  int hashes = static_cast<int>(state.range(1));
  MinHashLshOptions opt;
  opt.num_hashes = hashes;
  opt.rows_per_band = 4;
  auto lsh = MinHashLsh::Create(opt).value();
  std::vector<std::string> tokens;
  for (size_t i = 0; i < set_size; ++i) {
    tokens.push_back("prop:key_" + std::to_string(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(lsh.Signature(tokens));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MinHashSignature)
    ->Args({4, 32})
    ->Args({16, 32})
    ->Args({64, 32})
    ->Args({16, 8})
    ->Args({16, 128});

void BM_ClusterByBucketKeys(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  // ~32 distinct bucket populations, 12 tables each.
  Rng rng(7);
  std::vector<std::vector<uint64_t>> keys(n);
  for (auto& k : keys) {
    uint64_t base = rng.UniformU32(32);
    for (int t = 0; t < 12; ++t) {
      k.push_back(base * 1000 + static_cast<uint64_t>(t));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ClusterByBucketKeys(keys));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ClusterByBucketKeys)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_ElshEndToEndLinear(benchmark::State& state) {
  // Demonstrates the O(N) scaling of hash-then-cluster (§4.7).
  size_t n = static_cast<size_t>(state.range(0));
  auto vectors = RandomVectors(n, 48, 3);
  EuclideanLshOptions opt;
  opt.bucket_length = 2.0;
  auto lsh = EuclideanLsh::Create(48, opt).value();
  for (auto _ : state) {
    std::vector<std::vector<uint64_t>> keys;
    keys.reserve(n);
    for (const auto& v : vectors) keys.push_back(lsh.Hash(v));
    benchmark::DoNotOptimize(ClusterByBucketKeys(keys));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ElshEndToEndLinear)->Arg(1000)->Arg(4000)->Arg(16000);

}  // namespace
}  // namespace pghive

BENCHMARK_MAIN();
