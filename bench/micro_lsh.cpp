// Microbenchmarks for the LSH substrate, in two layers:
//
//  1. A per-kernel recorder that times each hot-path kernel in isolation —
//     ELSH dot-product projection (HashRow over aligned SoA rows), MinHash
//     permutation min-fold + signature bucketing, and the union-find
//     candidate merge — and emits one JSONL row per kernel x mode on
//     stderr ({"type":"bench","name":"micro_lsh.kernel",...}). The two
//     SIMD-dispatched kernels are swept scalar-vs-AVX2 (via
//     simd::ForceMode) and their outputs are required to be byte-identical;
//     the merge kernel is swept rep-level-union-find vs the seed's fanned
//     per-element pass. This replaces the old single end-to-end aggregate,
//     which could not attribute a regression to a kernel.
//
//  2. google-benchmark loops for scaling in dimension / table count / set
//     size (the ablation measurements behind the O(N T D) efficiency
//     analysis of §4.7).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cluster/lsh_clusterer.h"
#include "common/json.h"
#include "common/random.h"
#include "common/timer.h"
#include "lsh/euclidean_lsh.h"
#include "lsh/minhash_lsh.h"
#include "simd/aligned.h"
#include "simd/simd.h"

namespace pghive {
namespace {

std::vector<std::vector<float>> RandomVectors(size_t n, size_t dim,
                                              uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> out(n, std::vector<float>(dim));
  for (auto& v : out) {
    for (auto& x : v) x = static_cast<float>(rng.Normal());
  }
  return out;
}

// --- Per-kernel JSONL recorder (scalar-vs-SIMD A/B sweep). ---

// Roughly IYP-scale signature-group counts: the pipeline hashes one row
// per distinct signature, not per element.
constexpr size_t kSweepReps = 8192;
constexpr size_t kSweepElems = kSweepReps * 6;
constexpr size_t kSweepDim = 64;
constexpr size_t kSweepTokens = 24;  // tokens per signature group
constexpr int kSweepTrials = 3;      // best-of wall clocks

void EmitKernelRow(const char* kernel, const char* mode, double seconds,
                   double items, const char* item_unit) {
  JsonObject fields;
  fields.emplace("kernel", kernel);
  fields.emplace("mode", mode);
  fields.emplace("seconds", seconds);
  fields.emplace("items", items);
  fields.emplace("item_unit", item_unit);
  fields.emplace("items_per_sec", seconds > 0 ? items / seconds : 0.0);
  std::fprintf(stderr, "%s\n",
               bench::BenchJsonl("micro_lsh.kernel", fields).c_str());
}

/// Times the ELSH projection and MinHash fold kernels under `mode` over a
/// fixed random fixture, appending the resulting keys/signatures to *out
/// so the caller can cross-check flavours bytewise.
struct KernelSweepOutput {
  std::vector<uint64_t> elsh_keys;  // kSweepReps * num_tables
  std::vector<uint64_t> minhash_sigs;  // kSweepReps * num_hashes
};

KernelSweepOutput RunSimdKernels(const char* mode_name,
                                 const simd::AlignedRowMatrix& features,
                                 const EuclideanLsh& elsh,
                                 const std::vector<uint64_t>& token_hashes,
                                 const MinHashLsh& minhash) {
  KernelSweepOutput out;
  const size_t tables = static_cast<size_t>(elsh.num_tables());
  out.elsh_keys.resize(kSweepReps * tables);
  double best = -1.0;
  for (int trial = 0; trial < kSweepTrials; ++trial) {
    Timer timer;
    for (size_t r = 0; r < kSweepReps; ++r) {
      elsh.HashRow(features.row(r), out.elsh_keys.data() + r * tables);
    }
    const double s = timer.ElapsedSeconds();
    if (best < 0 || s < best) best = s;
  }
  // One "item" is one dot-product projection (T tables x k projections).
  EmitKernelRow("elsh_projection", mode_name, best,
                static_cast<double>(kSweepReps * tables *
                                    elsh.options().hashes_per_table),
                "projections");

  const size_t hashes = static_cast<size_t>(minhash.options().num_hashes);
  out.minhash_sigs.resize(kSweepReps * hashes);
  best = -1.0;
  for (int trial = 0; trial < kSweepTrials; ++trial) {
    Timer timer;
    for (size_t r = 0; r < kSweepReps; ++r) {
      minhash.SignatureFromHashes(token_hashes.data() + r * kSweepTokens,
                                  kSweepTokens,
                                  out.minhash_sigs.data() + r * hashes);
    }
    const double s = timer.ElapsedSeconds();
    if (best < 0 || s < best) best = s;
  }
  // One "item" is one salt x token min-update.
  EmitKernelRow("minhash_bucketing", mode_name, best,
                static_cast<double>(kSweepReps * hashes * kSweepTokens),
                "min_folds");
  return out;
}

/// Per-kernel timing rows + scalar-vs-SIMD byte-identity check. Returns
/// false (and reports on stderr) if the AVX2 flavour ever diverges from
/// scalar — the bit-identity contract of src/simd/kernels.h.
bool RunKernelSweep() {
  Rng rng(17);
  simd::AlignedRowMatrix features;
  features.Reset(kSweepReps, kSweepDim);
  for (size_t r = 0; r < kSweepReps; ++r) {
    float* row = features.row(r);
    for (size_t d = 0; d < kSweepDim; ++d) {
      row[d] = static_cast<float>(rng.Normal());
    }
  }
  std::vector<uint64_t> token_hashes(kSweepReps * kSweepTokens);
  for (auto& h : token_hashes) h = rng.NextU64();

  EuclideanLshOptions eopt;
  eopt.bucket_length = 4.0;
  auto elsh = EuclideanLsh::Create(kSweepDim, eopt).value();
  auto minhash = MinHashLsh::Create({}).value();

  simd::ForceMode(simd::Mode::kScalar);
  const KernelSweepOutput scalar =
      RunSimdKernels("scalar", features, elsh, token_hashes, minhash);

  bool identical = true;
  if (simd::Avx2Available()) {
    simd::ForceMode(simd::Mode::kAvx2);
    const KernelSweepOutput avx2 =
        RunSimdKernels("avx2", features, elsh, token_hashes, minhash);
    identical = scalar.elsh_keys == avx2.elsh_keys &&
                scalar.minhash_sigs == avx2.minhash_sigs;
    if (!identical) {
      std::fprintf(stderr,
                   "FAIL: avx2 kernel output diverges from scalar "
                   "(bit-identity contract of src/simd/kernels.h)\n");
    }
  } else {
    std::fprintf(stderr,
                 "micro_lsh: host lacks AVX2 — kernel sweep records the "
                 "scalar flavour only\n");
  }
  simd::ForceMode(simd::Mode::kAuto);

  // Candidate-union merge: rank-compressed union-find over signature-group
  // representatives vs the seed's pairwise pass over fanned per-element
  // keys. Integer-only — no SIMD axis; the mode field carries the A/B.
  std::vector<size_t> sig_of(kSweepElems);
  for (size_t i = 0; i < kSweepElems; ++i) sig_of[i] = i % kSweepReps;
  const size_t tables = static_cast<size_t>(elsh.num_tables());
  std::vector<std::vector<uint64_t>> rep_keys(kSweepReps);
  for (size_t r = 0; r < kSweepReps; ++r) {
    rep_keys[r].assign(scalar.elsh_keys.begin() + r * tables,
                       scalar.elsh_keys.begin() + (r + 1) * tables);
  }
  double best = -1.0;
  std::vector<std::vector<size_t>> rep_groups;
  for (int trial = 0; trial < kSweepTrials; ++trial) {
    Timer timer;
    auto groups = ClusterGroupsByRepKeys(rep_keys, sig_of);
    const double s = timer.ElapsedSeconds();
    if (best < 0 || s < best) best = s;
    rep_groups = std::move(groups);
  }
  EmitKernelRow("candidate_union", "rep_union_find", best,
                static_cast<double>(kSweepElems), "elements");

  std::vector<std::vector<uint64_t>> fanned(kSweepElems);
  for (size_t i = 0; i < kSweepElems; ++i) fanned[i] = rep_keys[sig_of[i]];
  best = -1.0;
  std::vector<std::vector<size_t>> fanned_groups;
  for (int trial = 0; trial < kSweepTrials; ++trial) {
    Timer timer;
    auto groups = ClusterByBucketKeys(fanned);
    const double s = timer.ElapsedSeconds();
    if (best < 0 || s < best) best = s;
    fanned_groups = std::move(groups);
  }
  EmitKernelRow("candidate_union", "fanned_pairwise", best,
                static_cast<double>(kSweepElems), "elements");
  if (rep_groups != fanned_groups) {
    std::fprintf(stderr,
                 "FAIL: rep-level union-find groups diverge from the "
                 "fanned per-element pass\n");
    identical = false;
  }
  return identical;
}

// --- google-benchmark scaling loops. ---

void BM_ElshHash(benchmark::State& state) {
  size_t dim = static_cast<size_t>(state.range(0));
  int tables = static_cast<int>(state.range(1));
  EuclideanLshOptions opt;
  opt.num_tables = tables;
  auto lsh = EuclideanLsh::Create(dim, opt).value();
  auto vectors = RandomVectors(256, dim, 1);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lsh.Hash(vectors[i++ & 255]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ElshHash)
    ->Args({16, 10})
    ->Args({64, 10})
    ->Args({256, 10})
    ->Args({64, 5})
    ->Args({64, 20})
    ->Args({64, 35});

// The zero-copy hot path the pipeline actually runs: aligned SoA rows, no
// per-call scratch copy (contrast with BM_ElshHash's vector<float> API).
void BM_ElshHashRow(benchmark::State& state) {
  size_t dim = static_cast<size_t>(state.range(0));
  EuclideanLshOptions opt;
  auto lsh = EuclideanLsh::Create(dim, opt).value();
  Rng rng(1);
  simd::AlignedRowMatrix rows;
  rows.Reset(256, dim);
  for (size_t r = 0; r < 256; ++r) {
    for (size_t d = 0; d < dim; ++d) {
      rows.row(r)[d] = static_cast<float>(rng.Normal());
    }
  }
  std::vector<uint64_t> keys(static_cast<size_t>(lsh.num_tables()));
  size_t i = 0;
  for (auto _ : state) {
    lsh.HashRow(rows.row(i++ & 255), keys.data());
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ElshHashRow)->Arg(16)->Arg(64)->Arg(256);

void BM_MinHashSignature(benchmark::State& state) {
  size_t set_size = static_cast<size_t>(state.range(0));
  int hashes = static_cast<int>(state.range(1));
  MinHashLshOptions opt;
  opt.num_hashes = hashes;
  opt.rows_per_band = 4;
  auto lsh = MinHashLsh::Create(opt).value();
  std::vector<std::string> tokens;
  for (size_t i = 0; i < set_size; ++i) {
    tokens.push_back("prop:key_" + std::to_string(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(lsh.Signature(tokens));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MinHashSignature)
    ->Args({4, 32})
    ->Args({16, 32})
    ->Args({64, 32})
    ->Args({16, 8})
    ->Args({16, 128});

void BM_ClusterByBucketKeys(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  // ~32 distinct bucket populations, 12 tables each.
  Rng rng(7);
  std::vector<std::vector<uint64_t>> keys(n);
  for (auto& k : keys) {
    uint64_t base = rng.UniformU32(32);
    for (int t = 0; t < 12; ++t) {
      k.push_back(base * 1000 + static_cast<uint64_t>(t));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ClusterByBucketKeys(keys));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ClusterByBucketKeys)->Arg(1000)->Arg(10000)->Arg(50000);

// Rep-level merge on the same population shape, with each bucket
// population collapsed to one signature group of ~6 members — the
// dedup ratio the pipeline typically sees.
void BM_ClusterGroupsByRepKeys(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t reps = n / 6 + 1;
  Rng rng(7);
  std::vector<std::vector<uint64_t>> rep_keys(reps);
  for (auto& k : rep_keys) {
    uint64_t base = rng.UniformU32(32);
    for (int t = 0; t < 12; ++t) {
      k.push_back(base * 1000 + static_cast<uint64_t>(t));
    }
  }
  std::vector<size_t> sig_of(n);
  for (size_t i = 0; i < n; ++i) sig_of[i] = i % reps;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ClusterGroupsByRepKeys(rep_keys, sig_of));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ClusterGroupsByRepKeys)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_ElshEndToEndLinear(benchmark::State& state) {
  // Demonstrates the O(N) scaling of hash-then-cluster (§4.7).
  size_t n = static_cast<size_t>(state.range(0));
  auto vectors = RandomVectors(n, 48, 3);
  EuclideanLshOptions opt;
  opt.bucket_length = 2.0;
  auto lsh = EuclideanLsh::Create(48, opt).value();
  for (auto _ : state) {
    std::vector<std::vector<uint64_t>> keys;
    keys.reserve(n);
    for (const auto& v : vectors) keys.push_back(lsh.Hash(v));
    benchmark::DoNotOptimize(ClusterByBucketKeys(keys));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ElshEndToEndLinear)->Arg(1000)->Arg(4000)->Arg(16000);

}  // namespace
}  // namespace pghive

int main(int argc, char** argv) {
  const bool kernels_ok = pghive::RunKernelSweep();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return kernels_ok ? 0 : 1;
}
