// Microbenchmarks for the durable state store (src/store/): snapshot
// encode/decode (sequential vs through the execution runtime's pool),
// journal append throughput with and without fsync, and full
// OpenOrRecover recovery cost.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "bench_util.h"
#include "common/binary_io.h"
#include "datagen/datasets.h"
#include "datagen/generator.h"
#include "runtime/thread_pool.h"
#include "store/journal.h"
#include "store/snapshot.h"
#include "store/state_store.h"

namespace pghive {
namespace store {
namespace {

const PropertyGraph& BenchGraph() {
  static const PropertyGraph* g = [] {
    GenerateOptions gen;
    gen.num_nodes = 4000;
    gen.num_edges = 8000;
    return new PropertyGraph(
        GenerateGraph(DatasetSpecByName("POLE").value(), gen).value());
  }();
  return *g;
}

StoreSnapshot BenchSnapshot() {
  StoreSnapshot snap;
  snap.applied_batches = 10;
  snap.options_summary = "bench";
  snap.graph = BenchGraph();
  snap.batch_seconds.assign(10, 0.25);
  return snap;
}

std::string BenchDir(const std::string& name) {
  std::string dir =
      std::filesystem::temp_directory_path().string() + "/pghive_bench_" +
      name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void BM_SnapshotEncode(benchmark::State& state) {
  // arg: worker threads for the per-section fan-out (0 = sequential).
  const StoreSnapshot snap = BenchSnapshot();
  std::unique_ptr<ThreadPool> pool;
  if (state.range(0) > 0) {
    pool = std::make_unique<ThreadPool>(static_cast<int>(state.range(0)));
  }
  size_t bytes = 0;
  for (auto _ : state) {
    std::string encoded = EncodeSnapshot(snap, pool.get());
    bytes = encoded.size();
    benchmark::DoNotOptimize(encoded);
  }
  state.SetBytesProcessed(state.iterations() * bytes);
}
BENCHMARK(BM_SnapshotEncode)->Arg(0)->Arg(2)->Arg(4);

void BM_SnapshotDecode(benchmark::State& state) {
  const std::string bytes = EncodeSnapshot(BenchSnapshot());
  for (auto _ : state) {
    auto snap = DecodeSnapshot(bytes);
    benchmark::DoNotOptimize(snap);
  }
  state.SetBytesProcessed(state.iterations() * bytes.size());
}
BENCHMARK(BM_SnapshotDecode);

void BM_Crc32(benchmark::State& state) {
  const std::string bytes = EncodeSnapshot(BenchSnapshot());
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32(bytes));
  }
  state.SetBytesProcessed(state.iterations() * bytes.size());
}
BENCHMARK(BM_Crc32);

void BM_JournalAppend(benchmark::State& state) {
  // arg: fsync per append (the durability the recovery guarantee rests on)
  // vs buffered appends.
  const bool fsync = state.range(0) == 1;
  std::vector<BatchPayload> batches = MakeStreamBatches(BenchGraph(), 10);
  BinaryWriter payload;
  EncodeBatchPayload(batches[0].nodes, batches[0].edges, &payload);
  std::string dir = BenchDir("journal");

  uint64_t id = 0;
  JournalWriter writer;
  if (!writer.Open(dir + "/journal-0.wal", fsync).ok()) {
    state.SkipWithError("cannot open journal");
    return;
  }
  for (auto _ : state) {
    Status s = writer.Append(id++, payload.buffer());
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
  }
  state.SetBytesProcessed(state.iterations() * payload.size());
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_JournalAppend)->Arg(0)->Arg(1);

void BM_OpenOrRecover(benchmark::State& state) {
  // Recovery of a state directory holding one snapshot plus `range`
  // journaled-but-unapplied batches to replay through the pipeline.
  const size_t replay = static_cast<size_t>(state.range(0));
  StoreOptions opt;
  opt.incremental.pipeline.embedding.backend = EmbeddingBackend::kHash;
  opt.fsync = false;
  opt.checkpoint_every_batches = 0;
  opt.checkpoint_every_bytes = 0;
  opt.snapshot_value_stats = false;
  std::vector<BatchPayload> batches = MakeStreamBatches(BenchGraph(), 8);
  std::string dir = BenchDir("recover_" + std::to_string(replay));
  {
    auto store = DurableDiscoverer::OpenOrRecover(dir, opt).value();
    size_t applied = batches.size() - replay;
    for (size_t i = 0; i < applied; ++i) {
      if (!store->Feed(batches[i]).ok()) {
        state.SkipWithError("feed failed");
        return;
      }
    }
    if (!store->Checkpoint().ok()) {
      state.SkipWithError("checkpoint failed");
      return;
    }
    for (size_t i = applied; i < batches.size(); ++i) {
      if (!store->FeedJournalOnly(batches[i]).ok()) {
        state.SkipWithError("journal failed");
        return;
      }
      break;  // FeedJournalOnly only stages one batch; replay >= 1 suffices
    }
  }
  for (auto _ : state) {
    auto store = DurableDiscoverer::OpenOrRecover(dir, opt);
    if (!store.ok()) {
      state.SkipWithError(store.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(store);
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_OpenOrRecover)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace store
}  // namespace pghive

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // The store counters (journal_records/bytes, fsync latency when metrics
  // are on) accumulate during the runs; honor the CLI's env vars on exit.
  pghive::bench::ExportObsFromEnv();
  return 0;
}
