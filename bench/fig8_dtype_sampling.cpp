// Figure 8: distribution of datatype-inference errors using sampling,
// across datasets, for both clustering variants. For each discovered
// (type, property), the sampling error is
//     error(p) = (1/|S_p|) * sum_{v in S_p} 1( f(v) != f(D_p) )
// where f(D_p) is the datatype inferred from a full scan and S_p a random
// sample (10%, at least 1000 values). Errors are reported in the paper's
// bins, normalized by the property count of the dataset.

#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "core/datatype_inference.h"
#include "core/pipeline.h"

using namespace pghive;
using namespace pghive::bench;

namespace {

struct Bins {
  // [0, 0.05), [0.05, 0.10), [0.10, 0.20), [0.20, 1.0]
  size_t counts[4] = {0, 0, 0, 0};
  size_t total = 0;

  void Add(double error) {
    ++total;
    if (error < 0.05) ++counts[0];
    else if (error < 0.10) ++counts[1];
    else if (error < 0.20) ++counts[2];
    else ++counts[3];
  }
};

template <typename TypeVec, typename GetElem>
void AccumulateErrors(const TypeVec& types, GetElem get, Rng* rng,
                      Bins* bins) {
  for (const auto& t : types) {
    for (const auto& key : t.property_keys) {
      std::vector<const Value*> values;
      for (auto id : t.instances) {
        const auto& props = get(id).properties;
        auto it = props.find(key);
        if (it != props.end()) values.push_back(&it->second);
      }
      if (values.empty()) continue;
      DataType full = FoldValueTypes(values);
      size_t want = std::max<size_t>(
          std::min<size_t>(1000, values.size()),
          static_cast<size_t>(0.10 * static_cast<double>(values.size())));
      auto pick = rng->SampleWithoutReplacement(values.size(), want);
      size_t mismatches = 0;
      for (size_t idx : pick) {
        if (values[idx]->type() != full) ++mismatches;
      }
      bins->Add(static_cast<double>(mismatches) /
                static_cast<double>(pick.size()));
    }
  }
}

}  // namespace

int main() {
  double scale = ScaleFromEnv(1.0);
  ExperimentConfig config;
  config.size_scale = scale;
  std::printf("%s",
              Banner("Figure 8: datatype sampling-error distribution "
                     "(scale " +
                     FormatDouble(scale, 2) + ")")
                  .c_str());

  for (ClusteringMethod method :
       {ClusteringMethod::kElsh, ClusteringMethod::kMinHash}) {
    std::printf("\n--- PG-HIVE-%s ---\n", ClusteringMethodName(method));
    TextTable table({"dataset", "props", "[0,.05)", "[.05,.10)", "[.10,.20)",
                     ">=.20"});
    for (const auto& spec : AllDatasetSpecs()) {
      auto g = GenerateForExperiment(spec, config);
      if (!g.ok()) {
        std::fprintf(stderr, "%s\n", g.status().ToString().c_str());
        return 1;
      }
      PipelineOptions opt;
      opt.method = method;
      opt.post_process = false;
      PgHivePipeline pipeline(opt);
      auto schema = pipeline.DiscoverSchema(*g).value();

      Rng rng(777);
      Bins bins;
      AccumulateErrors(schema.node_types,
                       [&](NodeId id) -> const Node& { return g->node(id); },
                       &rng, &bins);
      AccumulateErrors(schema.edge_types,
                       [&](EdgeId id) -> const Edge& { return g->edge(id); },
                       &rng, &bins);

      std::vector<std::string> row = {spec.name, std::to_string(bins.total)};
      for (size_t b = 0; b < 4; ++b) {
        double frac = bins.total ? static_cast<double>(bins.counts[b]) /
                                       static_cast<double>(bins.total)
                                 : 0.0;
        row.push_back(F3(frac));
      }
      table.AddRow(std::move(row));
      std::fprintf(stderr, ".");
    }
    std::printf("%s", table.ToString().c_str());
  }
  std::fprintf(stderr, "\n");

  std::printf(
      "\nPaper reference (Figure 8): most properties fall into the lowest\n"
      "error bin; the outliers occur on the heterogeneous datasets (ICIJ,\n"
      "CORD19, IYP) whose mixed value populations (INT with DOUBLE/STRING\n"
      "outliers, DATE vs STRING) a small sample cannot fully reflect.\n");
  return 0;
}
