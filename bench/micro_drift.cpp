// Mutation-batch cost trajectory (the drift subsystem's O(batch) claim).
//
// Before the google-benchmark loops, main() feeds the 32-batch steady-state
// mutation stream (datagen/evolution.h) through the engine's retraction
// path and records every batch's wall-clock cost, plus the cost of the
// rescan alternative (one-shot rediscovery of the accumulated graph) at the
// end of the stream. Per-batch work is constant by construction, so the
// mean cost of the last four batches must stay within 2x the first four —
// the check.sh gate over the emitted document. Written to BENCH_drift.json
// (override with PGHIVE_BENCH_OUT) in the same JSON shape as the
// micro_pipeline baseline, one JSONL summary line on stderr.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "bench_util.h"
#include "common/csv.h"
#include "common/json.h"
#include "core/incremental.h"
#include "datagen/evolution.h"
#include "drift/replay.h"
#include "graph/mutations.h"
#include "store/state_store.h"

namespace pghive {
namespace {

constexpr size_t kNumBatches = 32;

size_t PerBatchFromEnv() {
  const double scale = bench::ScaleFromEnv(1.0);
  const size_t per_batch = static_cast<size_t>(48 * scale);
  return per_batch < 4 ? 4 : per_batch;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Feeds `stream` through ApplyMutationBatch + Feed/FeedMutations and
/// returns the per-batch wall-clock seconds (apply + engine).
std::vector<double> TimeMutationStream(const std::vector<MutationBatch>& stream,
                                       PropertyGraph* g,
                                       IncrementalDiscoverer* engine) {
  std::vector<double> seconds;
  seconds.reserve(stream.size());
  for (const MutationBatch& mb : stream) {
    const auto start = std::chrono::steady_clock::now();
    auto applied = drift::ApplyMutationBatch(g, mb);
    if (!applied.ok()) {
      std::fprintf(stderr, "apply failed: %s\n",
                   applied.status().ToString().c_str());
      break;
    }
    Status s;
    if (applied->deleted_nodes.empty() && applied->deleted_edges.empty()) {
      s = engine->Feed(applied->batch);
    } else {
      s = engine->FeedMutations(applied->batch, applied->deleted_nodes,
                                applied->deleted_edges);
    }
    if (!s.ok()) {
      std::fprintf(stderr, "feed failed: %s\n", s.ToString().c_str());
      break;
    }
    seconds.push_back(SecondsSince(start));
  }
  return seconds;
}

double MeanOf(const std::vector<double>& v, size_t begin, size_t end) {
  if (begin >= end || end > v.size()) return 0.0;
  return std::accumulate(v.begin() + begin, v.begin() + end, 0.0) /
         static_cast<double>(end - begin);
}

void WriteDriftBaseline() {
  const size_t per_batch = PerBatchFromEnv();
  const std::vector<MutationBatch> stream =
      MakeSteadyMutationStream(kNumBatches, per_batch);

  // Engine path: the O(batch) retraction series the gate bounds.
  PropertyGraph g;
  IncrementalDiscoverer engine;
  const std::vector<double> batch_seconds =
      TimeMutationStream(stream, &g, &engine);
  if (batch_seconds.size() != stream.size()) return;

  // The rescan alternative: rediscovering the accumulated graph from
  // scratch, what every mutation batch would cost without retractable
  // aggregates.
  const auto rescan_start = std::chrono::steady_clock::now();
  PgHivePipeline rescan_pipeline;
  auto rescanned = rescan_pipeline.DiscoverSchema(g);
  const double rescan_seconds = SecondsSince(rescan_start);
  if (!rescanned.ok()) {
    std::fprintf(stderr, "rescan failed: %s\n",
                 rescanned.status().ToString().c_str());
    return;
  }

  // Durable path for context: journal + apply + per-epoch drift tracking.
  const std::string dir = "/tmp/pghive_bench_micro_drift";
  (void)std::system(("rm -rf " + dir).c_str());
  std::vector<double> durable_seconds;
  {
    store::StoreOptions opt;
    opt.fsync = false;
    auto opened = store::DurableDiscoverer::OpenOrRecover(dir, opt);
    if (opened.ok()) {
      durable_seconds.reserve(stream.size());
      for (const MutationBatch& mb : stream) {
        const auto start = std::chrono::steady_clock::now();
        Status s = (*opened)->Feed(mb);
        if (!s.ok()) {
          std::fprintf(stderr, "durable feed failed: %s\n",
                       s.ToString().c_str());
          break;
        }
        durable_seconds.push_back(SecondsSince(start));
      }
    } else {
      std::fprintf(stderr, "durable open failed: %s\n",
                   opened.status().ToString().c_str());
    }
  }
  (void)std::system(("rm -rf " + dir).c_str());

  const double first4 = MeanOf(batch_seconds, 0, 4);
  const double last4 =
      MeanOf(batch_seconds, batch_seconds.size() - 4, batch_seconds.size());

  JsonObject doc;
  doc.emplace("bench", "micro_drift");
  doc.emplace("num_batches", kNumBatches);
  doc.emplace("per_batch", per_batch);
  doc.emplace("final_nodes", g.num_nodes());
  doc.emplace("final_edges", g.num_edges());
  JsonArray series;
  for (double s : batch_seconds) series.emplace_back(s);
  doc.emplace("batch_seconds", std::move(series));
  JsonArray durable;
  for (double s : durable_seconds) durable.emplace_back(s);
  doc.emplace("durable_batch_seconds", std::move(durable));
  doc.emplace("first4_mean_seconds", first4);
  doc.emplace("last4_mean_seconds", last4);
  doc.emplace("last4_over_first4", first4 > 0 ? last4 / first4 : 0.0);
  doc.emplace("rescan_seconds", rescan_seconds);

  JsonObject fields;
  fields.emplace("first4_mean_seconds", first4);
  fields.emplace("last4_mean_seconds", last4);
  fields.emplace("rescan_seconds", rescan_seconds);
  std::fprintf(stderr, "%s\n",
               bench::BenchJsonl("micro_drift.steady_stream", fields).c_str());

  const char* out = std::getenv("PGHIVE_BENCH_OUT");
  const std::string path = out && *out ? out : "BENCH_drift.json";
  Status s = WriteFile(path, JsonValue(std::move(doc)).Pretty() + "\n");
  if (!s.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                 s.ToString().c_str());
    return;
  }
  std::fprintf(stderr, "wrote mutation-batch cost series to %s\n",
               path.c_str());
}

// --- google-benchmark loops. ---

void BM_SteadyMutationStream(benchmark::State& state) {
  const size_t per_batch = static_cast<size_t>(state.range(0));
  const std::vector<MutationBatch> stream =
      MakeSteadyMutationStream(8, per_batch);
  for (auto _ : state) {
    PropertyGraph g;
    IncrementalDiscoverer engine;
    for (const MutationBatch& mb : stream) {
      auto applied = drift::ApplyMutationBatch(&g, mb);
      if (!applied.ok()) state.SkipWithError("apply failed");
      Status s;
      if (applied->deleted_nodes.empty() && applied->deleted_edges.empty()) {
        s = engine.Feed(applied->batch);
      } else {
        s = engine.FeedMutations(applied->batch, applied->deleted_nodes,
                                 applied->deleted_edges);
      }
      if (!s.ok()) state.SkipWithError("feed failed");
    }
    benchmark::DoNotOptimize(engine.schema());
  }
  state.SetItemsProcessed(state.iterations() * 8 * per_batch);
}
BENCHMARK(BM_SteadyMutationStream)->Arg(8)->Arg(32);

void BM_NetSurvivingStream(benchmark::State& state) {
  const std::vector<MutationBatch> stream =
      MakeSteadyMutationStream(16, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(drift::NetSurvivingStream(stream));
  }
}
BENCHMARK(BM_NetSurvivingStream)->Arg(32);

}  // namespace
}  // namespace pghive

int main(int argc, char** argv) {
  pghive::WriteDriftBaseline();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  pghive::bench::ExportObsFromEnv();
  return 0;
}
