// Figure 3: statistical significance analysis of F1*-scores across all
// 40 test cases (8 datasets x 5 noise levels) under 100% label
// availability. Prints average Nemenyi ranks and pairwise significance for
// nodes (4 methods) and edges (3 methods — GMMSchema yields no edge types).

#include <cstdio>

#include "bench_util.h"
#include "datagen/noise.h"
#include "eval/ranking.h"

using namespace pghive;
using namespace pghive::bench;

int main() {
  double scale = ScaleFromEnv(0.3);
  ExperimentConfig config;
  config.size_scale = scale;
  std::printf("%s", Banner("Figure 3: Nemenyi analysis, 40 cases (scale " +
                           FormatDouble(scale, 2) + ")")
                        .c_str());

  const std::vector<Method> node_methods = {
      Method::kPgHiveElsh, Method::kPgHiveMinHash, Method::kGmmSchema,
      Method::kSchemI};
  const std::vector<Method> edge_methods = {
      Method::kPgHiveElsh, Method::kPgHiveMinHash, Method::kSchemI};

  std::vector<std::vector<double>> node_scores;
  std::vector<std::vector<double>> edge_scores;

  for (const auto& spec : AllDatasetSpecs()) {
    auto clean = GenerateForExperiment(spec, config);
    if (!clean.ok()) {
      std::fprintf(stderr, "%s\n", clean.status().ToString().c_str());
      return 1;
    }
    for (double noise : NoiseLevels()) {
      NoiseOptions nopt;
      nopt.property_removal = noise;
      auto g = InjectNoise(*clean, nopt).value();
      std::vector<double> node_row, edge_row;
      for (Method m : node_methods) {
        ExperimentResult r = RunMethod(g, m, config);
        node_row.push_back(r.ran ? r.node_f1.f1 : 0.0);
        if (m != Method::kGmmSchema) {
          edge_row.push_back(r.ran && r.has_edge_types ? r.edge_f1.f1 : 0.0);
        }
      }
      node_scores.push_back(std::move(node_row));
      edge_scores.push_back(std::move(edge_row));
      std::fprintf(stderr, ".");
    }
  }
  std::fprintf(stderr, "\n");

  auto report = [&](const char* what, const std::vector<Method>& methods,
                    const std::vector<std::vector<double>>& scores) {
    std::vector<std::string> names;
    for (Method m : methods) names.push_back(MethodName(m));
    auto analysis = NemenyiAnalysis(names, scores).value();
    std::printf("\n--- %s (N=%zu cases, CD=%.3f, Friedman chi2=%.1f) ---\n",
                what, analysis.num_cases, analysis.critical_difference,
                analysis.friedman_chi2);
    TextTable table({"Method", "avg rank", "rank bar (1=best)"});
    for (size_t i = 0; i < names.size(); ++i) {
      double r = analysis.average_ranks[i];
      table.AddRow({names[i], FormatDouble(r, 2),
                    AsciiBar(1.0 - (r - 1.0) /
                                       static_cast<double>(names.size() - 1),
                             24)});
    }
    std::printf("%s", table.ToString().c_str());
    std::printf("Significant pairwise differences (|rank gap| >= CD):\n");
    for (size_t i = 0; i < names.size(); ++i) {
      for (size_t j = i + 1; j < names.size(); ++j) {
        if (analysis.SignificantlyDifferent(i, j)) {
          bool i_better = analysis.average_ranks[i] < analysis.average_ranks[j];
          std::printf("  %s > %s\n",
                      names[i_better ? i : j].c_str(),
                      names[i_better ? j : i].c_str());
        }
      }
    }
  };

  report("Nodes", node_methods, node_scores);
  report("Edges (GMMSchema produces no edge types)", edge_methods,
         edge_scores);

  std::printf(
      "\nPaper reference (Figure 3): PG-HIVE-ELSH and PG-HIVE-MinHash form a\n"
      "group with no significant difference between them; both significantly\n"
      "outrank GMMSchema and SchemI for nodes, and SchemI for edges.\n");
  return 0;
}
