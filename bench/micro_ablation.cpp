// Quality ablations for the design decisions recorded in DESIGN.md §4b:
// each knob is varied in isolation and the resulting F1* measured on a
// labeled-clean, a noisy, and a label-free scenario. Unlike micro_lsh /
// micro_pipeline (which measure cost), this harness measures *accuracy*,
// substantiating why the defaults are what they are.

#include <cstdio>

#include "bench_util.h"
#include "core/pipeline.h"
#include "datagen/noise.h"
#include "eval/f1.h"

using namespace pghive;
using namespace pghive::bench;

namespace {

struct Scenario {
  const char* name;
  double noise;
  double labels;
};

const Scenario kScenarios[] = {
    {"clean/100%lab", 0.0, 1.0},
    {"40%noise/100%lab", 0.4, 1.0},
    {"40%noise/0%lab", 0.4, 0.0},
};

struct ScenarioGraphs {
  std::vector<PropertyGraph> graphs;  // parallel to kScenarios
};

ScenarioGraphs MakeScenarios(const DatasetSpec& spec, double scale) {
  ExperimentConfig config;
  config.size_scale = scale;
  auto clean = GenerateForExperiment(spec, config).value();
  ScenarioGraphs out;
  for (const Scenario& s : kScenarios) {
    NoiseOptions nopt;
    nopt.property_removal = s.noise;
    nopt.label_availability = s.labels;
    out.graphs.push_back(InjectNoise(clean, nopt).value());
  }
  return out;
}

void RunAblation(const char* title, const ScenarioGraphs& data,
                 const std::vector<std::pair<std::string, PipelineOptions>>&
                     configurations) {
  std::printf("\n--- %s ---\n", title);
  std::vector<std::string> header = {"configuration"};
  for (const Scenario& s : kScenarios) {
    header.push_back(std::string(s.name) + " nF1");
    header.push_back(std::string(s.name) + " eF1");
  }
  TextTable table(header);
  for (const auto& [label, options] : configurations) {
    std::vector<std::string> row = {label};
    for (size_t i = 0; i < std::size(kScenarios); ++i) {
      PgHivePipeline pipeline(options);
      auto schema = pipeline.DiscoverSchema(data.graphs[i]);
      if (!schema.ok()) {
        row.push_back("err");
        row.push_back("err");
        continue;
      }
      row.push_back(F3(MajorityF1Nodes(data.graphs[i], *schema).f1));
      row.push_back(F3(MajorityF1Edges(data.graphs[i], *schema).f1));
      std::fprintf(stderr, ".");
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s", table.ToString().c_str());
}

}  // namespace

int main() {
  double scale = ScaleFromEnv(0.3);
  std::printf("%s", Banner("Design ablations on ICIJ (scale " +
                           FormatDouble(scale, 2) + ")")
                        .c_str());
  ScenarioGraphs data = MakeScenarios(MakeIcijSpec(), scale);

  // 1. label_weight: how strongly the embedding block separates types.
  {
    std::vector<std::pair<std::string, PipelineOptions>> configs;
    for (double w : {0.5, 1.0, 2.0, 4.0}) {
      PipelineOptions opt;
      opt.post_process = false;
      opt.encoder.label_weight = w;
      configs.emplace_back("label_weight=" + FormatDouble(w, 1), opt);
    }
    RunAblation("label_weight (default 2.0)", data, configs);
  }

  // 2. ELSH AND-amplification: projections per table.
  {
    std::vector<std::pair<std::string, PipelineOptions>> configs;
    for (int k : {1, 4, 10, 16}) {
      PipelineOptions opt;
      opt.post_process = false;
      opt.elsh.hashes_per_table = k;
      configs.emplace_back("hashes_per_table=" + std::to_string(k), opt);
    }
    RunAblation("ELSH hashes per table (default 10; k=1 is Spark MLlib's "
                "single-projection table)",
                data, configs);
  }

  // 3. Adaptive bucket factor relative to mu.
  {
    std::vector<std::pair<std::string, PipelineOptions>> configs;
    for (double f : {0.35, 0.7, 1.2, 2.0}) {
      PipelineOptions opt;
      opt.post_process = false;
      opt.adaptive_tuning.bucket_factor = f;
      configs.emplace_back("bucket_factor=" + FormatDouble(f, 2), opt);
    }
    RunAblation("bucket factor x mu (default 0.7; 1.2 is the paper's "
                "b_base constant)",
                data, configs);
  }

  // 4. theta: the Algorithm-2 merge threshold.
  {
    std::vector<std::pair<std::string, PipelineOptions>> configs;
    for (double theta : {0.5, 0.7, 0.9, 1.0}) {
      PipelineOptions opt;
      opt.post_process = false;
      opt.extraction.jaccard_threshold = theta;
      configs.emplace_back("theta=" + FormatDouble(theta, 1), opt);
    }
    RunAblation("Jaccard merge threshold theta (paper default 0.9)", data,
                configs);
  }

  // 5. MinHash label weighting (duplicated label tokens).
  {
    std::vector<std::pair<std::string, PipelineOptions>> configs;
    for (int copies : {1, 3, 6}) {
      PipelineOptions opt;
      opt.post_process = false;
      opt.method = ClusteringMethod::kMinHash;
      opt.encoder.minhash_label_copies = copies;
      configs.emplace_back("minhash_label_copies=" + std::to_string(copies),
                           opt);
    }
    RunAblation("MinHash label-token copies (default 3)", data, configs);
  }

  // 6. Embedding backend.
  {
    std::vector<std::pair<std::string, PipelineOptions>> configs;
    PipelineOptions w2v;
    w2v.post_process = false;
    configs.emplace_back("word2vec", w2v);
    PipelineOptions hash = w2v;
    hash.embedding.backend = EmbeddingBackend::kHash;
    configs.emplace_back("hash-projection", hash);
    RunAblation("embedding backend (default word2vec)", data, configs);
  }
  std::fprintf(stderr, "\n");

  std::printf(
      "\nReading: the defaults sit at or near the best cell of each knob in\n"
      "every scenario; k=1 per table (single-projection tables) and the\n"
      "paper's literal 1.2*mu bucket collapse quality under our vector\n"
      "scaling, which is why DESIGN.md §4b documents the calibrated values.\n");
  return 0;
}
