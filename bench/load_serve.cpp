// Closed-loop load bench for the schema-serving daemon (src/serve/).
//
// Measures reader-path latency isolation: N closed-loop readers hammer
// GET /v1/graphs/g/schema over persistent keep-alive connections against an
// in-process SchemaServer, first while the daemon is idle, then while an
// ingest client streams the full batch sequence through
// POST /v1/graphs/g/batches (honouring 429 backpressure). Because readers
// only ever copy the published epoch-snapshot pointer, ingestion must not
// meaningfully move read tail latency: the run FAILS when the ingest-phase
// p99 exceeds PGHIVE_SERVE_P99_FACTOR (default 2.0) times the idle p99
// (with a 1 ms floor on the baseline, so micro-jitter on sub-millisecond
// p99s cannot flake the gate).
//
// A second gate covers the tracing overhead claim: the same idle read loop
// re-runs with request tracing enabled (serve.request spans + per-route
// histograms), and the traced p99 must stay within
// PGHIVE_SERVE_TRACE_FACTOR (default 1.10, i.e. 10%) of the untraced idle
// p99 (same 1 ms baseline floor).
//
// Output: shared-schema JSONL lines on stdout —
//   {"type":"bench","name":"load_serve.read_idle",  count/p50/p95/p99 ...}
//   {"type":"bench","name":"load_serve.read_traced", ...}
//   {"type":"bench","name":"load_serve.read_ingest", ...}
//   {"type":"bench","name":"load_serve.ingest", batches/seconds/throughput}
//
// Knobs (environment): PGHIVE_SERVE_READERS (default 4),
// PGHIVE_SERVE_IDLE_SECONDS (default 2), PGHIVE_SERVE_BATCHES (default 48),
// PGHIVE_SERVE_P99_FACTOR (default 2.0), PGHIVE_SERVE_TRACE_FACTOR
// (default 1.10), PGHIVE_SCALE (graph size).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "obs/trace.h"
#include "datagen/datasets.h"
#include "datagen/generator.h"
#include "serve/http.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "store/state_store.h"

namespace pghive {
namespace {

int EnvInt(const char* name, int fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  const int v = std::atoi(env);
  return v > 0 ? v : fallback;
}

double EnvDouble(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  const double v = std::atof(env);
  return v > 0 ? v : fallback;
}

double Quantile(std::vector<double>* sorted, double q) {
  if (sorted->empty()) return 0.0;
  std::sort(sorted->begin(), sorted->end());
  const size_t idx = static_cast<size_t>(q * (sorted->size() - 1));
  return (*sorted)[idx];
}

/// One closed-loop reader: a persistent connection issuing GET schema
/// requests back to back until `stop`, recording each round trip.
void ReaderLoop(uint16_t port, std::atomic<bool>* stop,
                std::vector<double>* latencies) {
  std::unique_ptr<serve::HttpConnection> conn;
  while (!stop->load(std::memory_order_relaxed)) {
    if (conn == nullptr) {
      auto fd = serve::DialTcp("127.0.0.1", port);
      if (!fd.ok()) break;
      conn = std::make_unique<serve::HttpConnection>(*fd);
      conn->SetTimeouts(10000);
    }
    const Timer timer;
    if (!conn->WriteRequest("GET", "/v1/graphs/g/schema", "", "").ok()) {
      conn.reset();  // server restarted the connection; redial
      continue;
    }
    auto resp = conn->ReadResponse(64ull << 20);
    if (!resp.ok() || resp->status != 200) {
      conn.reset();
      continue;
    }
    latencies->push_back(timer.ElapsedSeconds());
  }
}

struct PhaseStats {
  size_t count = 0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

PhaseStats Collect(std::vector<std::vector<double>>* per_reader) {
  std::vector<double> all;
  for (auto& v : *per_reader) {
    all.insert(all.end(), v.begin(), v.end());
    v.clear();
  }
  PhaseStats stats;
  stats.count = all.size();
  stats.p50 = Quantile(&all, 0.50);
  stats.p95 = Quantile(&all, 0.95);
  stats.p99 = Quantile(&all, 0.99);
  return stats;
}

void PrintPhase(const std::string& name, const PhaseStats& s) {
  JsonObject fields;
  fields["count"] = s.count;
  fields["p50_seconds"] = s.p50;
  fields["p95_seconds"] = s.p95;
  fields["p99_seconds"] = s.p99;
  std::printf("%s\n", bench::BenchJsonl(name, std::move(fields)).c_str());
}

int Run() {
  const int readers = EnvInt("PGHIVE_SERVE_READERS", 4);
  const double idle_seconds = EnvDouble("PGHIVE_SERVE_IDLE_SECONDS", 2.0);
  const size_t num_batches =
      static_cast<size_t>(EnvInt("PGHIVE_SERVE_BATCHES", 48));
  const double factor = EnvDouble("PGHIVE_SERVE_P99_FACTOR", 2.0);
  const double scale = bench::ScaleFromEnv(1.0);

  auto spec = DatasetSpecByName("POLE").value();
  GenerateOptions gen;
  gen.num_nodes = static_cast<size_t>(1500 * scale);
  gen.num_edges = static_cast<size_t>(2600 * scale);
  gen.seed = 7;
  const PropertyGraph g = GenerateGraph(spec, gen).value();
  const auto payloads = store::MakeStreamBatches(g, num_batches);

  const std::string state_dir =
      std::filesystem::temp_directory_path() / "pghive_load_serve_state";
  std::filesystem::remove_all(state_dir);

  serve::ServeOptions options;
  options.port = 0;
  options.num_workers = readers + 2;  // readers + ingest + slack
  options.graph.store.incremental.pipeline.embedding.backend =
      EmbeddingBackend::kHash;
  options.graph.store.fsync = false;
  options.graph.queue_capacity = 8;  // small queue: backpressure is exercised
  serve::SchemaServer server(options);
  if (Status s = server.AddGraph("g", state_dir); !s.ok()) {
    std::fprintf(stderr, "AddGraph: %s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "Start: %s\n", s.ToString().c_str());
    return 1;
  }
  const uint16_t port = server.port();

  std::atomic<bool> stop{false};
  std::vector<std::vector<double>> latencies(readers);
  std::vector<std::thread> reader_threads;
  reader_threads.reserve(readers);
  for (int r = 0; r < readers; ++r) {
    reader_threads.emplace_back(
        [&, r] { ReaderLoop(port, &stop, &latencies[r]); });
  }

  // Phase 1: idle daemon (epoch 0 snapshot only).
  std::this_thread::sleep_for(std::chrono::duration<double>(idle_seconds));
  stop.store(true);
  for (auto& t : reader_threads) t.join();
  const PhaseStats idle = Collect(&latencies);
  PrintPhase("load_serve.read_idle", idle);

  // Phase 1b: the identical idle loop with request tracing on, for the
  // tracing-overhead gate. Spans are dropped afterwards — this measures the
  // recording cost on the serve path, not export.
  obs::Tracer::Global().SetEnabled(true);
  stop.store(false);
  reader_threads.clear();
  for (int r = 0; r < readers; ++r) {
    reader_threads.emplace_back(
        [&, r] { ReaderLoop(port, &stop, &latencies[r]); });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(idle_seconds));
  stop.store(true);
  for (auto& t : reader_threads) t.join();
  obs::Tracer::Global().SetEnabled(false);
  obs::Tracer::Global().Clear();
  const PhaseStats traced = Collect(&latencies);
  PrintPhase("load_serve.read_traced", traced);

  // Phase 2: the same closed loops while the full stream is ingested.
  stop.store(false);
  reader_threads.clear();
  for (int r = 0; r < readers; ++r) {
    reader_threads.emplace_back(
        [&, r] { ReaderLoop(port, &stop, &latencies[r]); });
  }
  const Timer ingest_timer;
  size_t rejected = 0;
  for (const auto& payload : payloads) {
    const std::string body = serve::BatchToJson(payload).Dump();
    for (;;) {
      auto resp = serve::HttpCall("127.0.0.1", port, "POST",
                                  "/v1/graphs/g/batches", body,
                                  "application/json");
      if (!resp.ok()) {
        std::fprintf(stderr, "ingest: %s\n", resp.status().ToString().c_str());
        return 1;
      }
      if (resp->status == 202) break;
      if (resp->status == 429) {
        ++rejected;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        continue;
      }
      std::fprintf(stderr, "ingest: HTTP %d %s\n", resp->status,
                   resp->body.c_str());
      return 1;
    }
  }
  // Readers keep running until the writer has applied everything.
  while (server.FindGraph("g")->Current()->epoch < payloads.size()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const double ingest_seconds = ingest_timer.ElapsedSeconds();
  stop.store(true);
  for (auto& t : reader_threads) t.join();
  const PhaseStats ingest = Collect(&latencies);
  PrintPhase("load_serve.read_ingest", ingest);

  JsonObject fields;
  fields["batches"] = payloads.size();
  fields["rejected_429"] = rejected;
  fields["seconds"] = ingest_seconds;
  fields["batches_per_second"] =
      ingest_seconds > 0 ? payloads.size() / ingest_seconds : 0.0;
  std::printf("%s\n",
              bench::BenchJsonl("load_serve.ingest", std::move(fields)).c_str());

  if (Status s = server.Stop(); !s.ok()) {
    std::fprintf(stderr, "Stop: %s\n", s.ToString().c_str());
    return 1;
  }
  std::filesystem::remove_all(state_dir);

  // The gate: epoch-snapshot reads must stay isolated from ingestion.
  const double baseline = std::max(idle.p99, 0.001);
  if (ingest.p99 > baseline * factor) {
    std::fprintf(stderr,
                 "READER LATENCY REGRESSION: ingest-phase p99 %.6fs exceeds "
                 "%.1fx the idle p99 %.6fs (floor 1ms)\n",
                 ingest.p99, factor, idle.p99);
    return 1;
  }
  std::printf("reader p99 isolation ok: idle %.6fs -> ingest %.6fs "
              "(factor %.2f, limit %.1fx)\n",
              idle.p99, ingest.p99,
              baseline > 0 ? ingest.p99 / baseline : 0.0, factor);

  // The tracing-overhead gate: request spans must be cheap enough that the
  // traced read p99 stays within PGHIVE_SERVE_TRACE_FACTOR of untraced.
  const double trace_factor = EnvDouble("PGHIVE_SERVE_TRACE_FACTOR", 1.10);
  if (traced.p99 > baseline * trace_factor) {
    std::fprintf(stderr,
                 "TRACING OVERHEAD REGRESSION: traced read p99 %.6fs exceeds "
                 "%.2fx the untraced idle p99 %.6fs (floor 1ms)\n",
                 traced.p99, trace_factor, idle.p99);
    return 1;
  }
  std::printf("tracing overhead ok: untraced %.6fs -> traced %.6fs "
              "(factor %.2f, limit %.2fx)\n",
              idle.p99, traced.p99,
              baseline > 0 ? traced.p99 / baseline : 0.0, trace_factor);
  return 0;
}

}  // namespace
}  // namespace pghive

int main() { return pghive::Run(); }
