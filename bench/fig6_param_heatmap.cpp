// Figure 6: heatmaps of F1*-scores across datasets (100% labels, 0% noise)
// for nodes and edges, sweeping the ELSH table count T and the alpha bucket
// multiplier; the adaptive choice is marked with 'X'. Cells are rendered as
// F1 deciles (0-9, '9' ~ [0.9, 1.0]).

#include <cstdio>

#include "bench_util.h"
#include "core/pipeline.h"
#include "eval/f1.h"

using namespace pghive;
using namespace pghive::bench;

namespace {

char Decile(double f1) {
  int d = static_cast<int>(f1 * 10.0);
  if (d > 9) d = 9;
  if (d < 0) d = 0;
  return static_cast<char>('0' + d);
}

}  // namespace

int main() {
  double scale = ScaleFromEnv(0.3);
  ExperimentConfig config;
  config.size_scale = scale;
  std::printf("%s", Banner("Figure 6: F1* over (T, alpha) for ELSH (scale " +
                           FormatDouble(scale, 2) + ")")
                        .c_str());

  const std::vector<int> tables = {5, 10, 15, 20, 25, 30, 35};
  const std::vector<double> alphas = {0.5, 0.8, 1.0, 1.2, 1.5, 2.0};

  for (const auto& spec : AllDatasetSpecs()) {
    auto g = GenerateForExperiment(spec, config);
    if (!g.ok()) {
      std::fprintf(stderr, "%s\n", g.status().ToString().c_str());
      return 1;
    }

    // Adaptive run first: its (T, alpha) is the red X of the figure.
    PipelineOptions adaptive_opt;
    PgHivePipeline adaptive(adaptive_opt);
    auto adaptive_schema = adaptive.DiscoverSchema(*g).value();
    double adaptive_node_f1 = MajorityF1Nodes(*g, adaptive_schema).f1;
    double adaptive_edge_f1 = MajorityF1Edges(*g, adaptive_schema).f1;
    int ad_t = adaptive.last_diagnostics().node_params.num_tables;
    double ad_a = adaptive.last_diagnostics().node_params.alpha;

    std::printf("\n### %s  adaptive: T=%d alpha=%.1f  nodeF1=%.3f edgeF1=%.3f\n",
                spec.name.c_str(), ad_t, ad_a, adaptive_node_f1,
                adaptive_edge_f1);
    std::printf("rows = alpha, cols = T %s; cell = F1 decile, X = adaptive\n",
                "(5..35)");

    // Sweep: override alpha and T while keeping the data-driven mu.
    std::vector<std::string> node_rows, edge_rows;
    for (double a : alphas) {
      std::string node_row, edge_row;
      for (int t : tables) {
        PipelineOptions opt;
        opt.adaptive_tuning.alpha_override = a;
        opt.adaptive_tuning.tables_override = t;
        PgHivePipeline pipeline(opt);
        auto schema = pipeline.DiscoverSchema(*g).value();
        double nf = MajorityF1Nodes(*g, schema).f1;
        double ef = MajorityF1Edges(*g, schema).f1;
        bool is_adaptive_cell =
            t == ((ad_t + 2) / 5) * 5 && std::abs(a - ad_a) < 0.11;
        node_row += is_adaptive_cell ? 'X' : Decile(nf);
        edge_row += is_adaptive_cell ? 'X' : Decile(ef);
        node_row += ' ';
        edge_row += ' ';
        std::fprintf(stderr, ".");
      }
      node_rows.push_back(node_row);
      edge_rows.push_back(edge_row);
    }
    std::printf("%-8s %-16s %-16s\n", "alpha", "nodes (T ->)", "edges (T ->)");
    for (size_t i = 0; i < alphas.size(); ++i) {
      std::printf("%-8.1f %-16s %-16s\n", alphas[i], node_rows[i].c_str(),
                  edge_rows[i].c_str());
    }
  }
  std::fprintf(stderr, "\n");

  std::printf(
      "\nPaper reference (Figure 6): the adaptive choice lands in or near\n"
      "the high-F1 region on most datasets; smaller alpha (narrower buckets)\n"
      "over-separates patterns, which the merge step repairs (high F1),\n"
      "while large alpha and T merge distinct patterns and lower F1. IYP is\n"
      "the case where adaptive is not optimal but remains accurate.\n");
  return 0;
}
