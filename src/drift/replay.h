// Mutation-batch application and net-surviving replay.
//
// ApplyMutationBatch is the ONE implementation of the canonical apply order
// for a mutation batch (graph/mutations.h): every consumer — the durable
// store, the serving daemon, tests and benches — routes batches through it,
// so "what a mutation stream means" has a single definition.
//
// The PropertyGraph itself stays append-only (ids are dense insertion
// indices; value rows are shared between copies). Deletion is therefore a
// SCHEMA-membership fact, not a storage fact: ApplyMutationBatch appends
// the batch's new elements and returns the deletion lists for the engine's
// retraction path (IncrementalDiscoverer::FeedMutations); the deleted
// elements' bytes stay in the graph as tombstones that no type references.
// Under a sharded feed plan (core/shard_plan.h) FeedMutations routes those
// deletion lists to per-signature-shard retraction sub-calls, applied in
// ascending shard order — equivalent to one sequential call.
//
// NetSurvivingStream is the drift subsystem's ground truth: it converts a
// mutation stream into the insert-only stream of the elements that SURVIVE
// to the end (same batch boundaries, original relative order, edge
// endpoints remapped to the compacted id space). The bit-identity invariant
// tested by drift_equivalence_test is
//
//   discover(mutation stream)  ==  discover(NetSurvivingStream(stream))
//
// for the final post-processed schema.

#ifndef PGHIVE_DRIFT_REPLAY_H_
#define PGHIVE_DRIFT_REPLAY_H_

#include <vector>

#include "common/result.h"
#include "graph/mutations.h"
#include "graph/property_graph.h"

namespace pghive {
namespace drift {

/// What applying one mutation batch to a graph produced.
struct AppliedBatch {
  /// Slice of the graph covering exactly this batch's appended elements
  /// (update replacements first, then plain inserts — the canonical order).
  GraphBatch batch;
  /// Ids to retract: delete_nodes/delete_edges plus the OLD ids of updates.
  std::vector<NodeId> deleted_nodes;
  std::vector<EdgeId> deleted_edges;
  /// Appended ids in append order (replay bookkeeping).
  std::vector<NodeId> appended_nodes;
  std::vector<EdgeId> appended_edges;
};

/// Appends `payload`'s new elements to `g` in the canonical order
/// (update_nodes' replacement data, payload nodes, update_edges' replacement
/// data, payload edges) and collects the deletion lists. Fails with
/// InvalidArgument when a deleted/updated id does not exist in `g`, or when
/// an appended edge's endpoint is a node deleted in this same batch.
Result<AppliedBatch> ApplyMutationBatch(PropertyGraph* g,
                                        const MutationBatch& payload);

/// The insert-only stream of the elements surviving `stream`: one output
/// batch per input batch (possibly empty, boundaries preserved), containing
/// the batch's appended elements that are never deleted later, in append
/// order, with edge endpoints remapped into the survivors' compacted id
/// space. Fails with InvalidArgument on a malformed stream — including a
/// surviving edge whose endpoint node was deleted (the endpoint-closure
/// contract of graph/mutations.h).
Result<std::vector<MutationBatch>> NetSurvivingStream(
    const std::vector<MutationBatch>& stream);

}  // namespace drift
}  // namespace pghive

#endif  // PGHIVE_DRIFT_REPLAY_H_
