#include "drift/drift_tracker.h"

#include <utility>

#include "common/binary_io.h"
#include "obs/metrics.h"

namespace pghive {
namespace drift {

namespace {

void CountChange(const TypeChange& c, DriftCounters* counters) {
  counters->properties_added += c.added_properties.size();
  counters->properties_removed += c.removed_properties.size();
  counters->properties_became_optional += c.became_optional.size();
  counters->properties_became_mandatory += c.became_mandatory.size();
  counters->datatypes_changed += c.datatype_changes.size();
  if (!c.cardinality_change.empty()) ++counters->cardinality_changes;
}

}  // namespace

void DriftTracker::Observe(uint64_t epoch, const SchemaGraph& schema) {
  SchemaDiff diff = DiffSchemas(baseline_, schema);
  ++counters_.epochs_observed;
  if (!diff.Empty()) {
    ++counters_.epochs_changed;
    counters_.node_types_added += diff.added_node_types.size();
    counters_.node_types_retired += diff.removed_node_types.size();
    counters_.edge_types_added += diff.added_edge_types.size();
    counters_.edge_types_retired += diff.removed_edge_types.size();
    for (const TypeChange& c : diff.changed_types) {
      CountChange(c, &counters_);
    }
    history_.push_back({epoch, std::move(diff)});
    while (history_.size() > max_history_) history_.pop_front();
  }
  baseline_ = schema;
  last_epoch_ = epoch;
}

void DriftTracker::ResetBaseline(uint64_t epoch, const SchemaGraph& schema) {
  baseline_ = schema;
  last_epoch_ = epoch;
}

void DriftTracker::PublishGauges() const {
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetGauge("pghive.drift.epoch")->Set(static_cast<int64_t>(last_epoch_));
  reg.GetGauge("pghive.drift.history_size")
      ->Set(static_cast<int64_t>(history_.size()));
  reg.GetGauge("pghive.drift.epochs_changed")
      ->Set(static_cast<int64_t>(counters_.epochs_changed));
  reg.GetGauge("pghive.drift.node_types_added")
      ->Set(static_cast<int64_t>(counters_.node_types_added));
  reg.GetGauge("pghive.drift.node_types_retired")
      ->Set(static_cast<int64_t>(counters_.node_types_retired));
  reg.GetGauge("pghive.drift.edge_types_added")
      ->Set(static_cast<int64_t>(counters_.edge_types_added));
  reg.GetGauge("pghive.drift.edge_types_retired")
      ->Set(static_cast<int64_t>(counters_.edge_types_retired));
  reg.GetGauge("pghive.drift.properties_added")
      ->Set(static_cast<int64_t>(counters_.properties_added));
  reg.GetGauge("pghive.drift.properties_removed")
      ->Set(static_cast<int64_t>(counters_.properties_removed));
  reg.GetGauge("pghive.drift.became_mandatory")
      ->Set(static_cast<int64_t>(counters_.properties_became_mandatory));
  reg.GetGauge("pghive.drift.became_optional")
      ->Set(static_cast<int64_t>(counters_.properties_became_optional));
  reg.GetGauge("pghive.drift.datatypes_changed")
      ->Set(static_cast<int64_t>(counters_.datatypes_changed));
  reg.GetGauge("pghive.drift.cardinality_changes")
      ->Set(static_cast<int64_t>(counters_.cardinality_changes));
}

// --- Binary serde -----------------------------------------------------------

namespace {

constexpr uint32_t kDriftSerdeVersion = 1;

void WriteStringVec(const std::vector<std::string>& v, BinaryWriter* w) {
  w->WriteU32(static_cast<uint32_t>(v.size()));
  for (const std::string& s : v) w->WriteString(s);
}

void WriteStringSet(const std::set<std::string>& v, BinaryWriter* w) {
  w->WriteU32(static_cast<uint32_t>(v.size()));
  for (const std::string& s : v) w->WriteString(s);
}

Result<std::vector<std::string>> ReadStringVec(BinaryReader* r) {
  PGHIVE_ASSIGN_OR_RETURN(uint32_t n, r->ReadU32());
  std::vector<std::string> v;
  v.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    PGHIVE_ASSIGN_OR_RETURN(std::string s, r->ReadString());
    v.push_back(std::move(s));
  }
  return v;
}

Result<std::set<std::string>> ReadStringSet(BinaryReader* r) {
  PGHIVE_ASSIGN_OR_RETURN(uint32_t n, r->ReadU32());
  std::set<std::string> v;
  for (uint32_t i = 0; i < n; ++i) {
    PGHIVE_ASSIGN_OR_RETURN(std::string s, r->ReadString());
    v.insert(std::move(s));
  }
  return v;
}

void WriteTypeChange(const TypeChange& c, BinaryWriter* w) {
  w->WriteString(c.name);
  w->WriteU8(c.is_edge ? 1 : 0);
  WriteStringSet(c.added_labels, w);
  WriteStringSet(c.removed_labels, w);
  WriteStringSet(c.added_properties, w);
  WriteStringSet(c.removed_properties, w);
  WriteStringVec(c.became_optional, w);
  WriteStringVec(c.became_mandatory, w);
  WriteStringVec(c.datatype_changes, w);
  w->WriteString(c.cardinality_change);
  WriteStringSet(c.added_source_labels, w);
  WriteStringSet(c.added_target_labels, w);
}

Result<TypeChange> ReadTypeChange(BinaryReader* r) {
  TypeChange c;
  PGHIVE_ASSIGN_OR_RETURN(c.name, r->ReadString());
  PGHIVE_ASSIGN_OR_RETURN(uint8_t is_edge, r->ReadU8());
  c.is_edge = is_edge != 0;
  PGHIVE_ASSIGN_OR_RETURN(c.added_labels, ReadStringSet(r));
  PGHIVE_ASSIGN_OR_RETURN(c.removed_labels, ReadStringSet(r));
  PGHIVE_ASSIGN_OR_RETURN(c.added_properties, ReadStringSet(r));
  PGHIVE_ASSIGN_OR_RETURN(c.removed_properties, ReadStringSet(r));
  PGHIVE_ASSIGN_OR_RETURN(c.became_optional, ReadStringVec(r));
  PGHIVE_ASSIGN_OR_RETURN(c.became_mandatory, ReadStringVec(r));
  PGHIVE_ASSIGN_OR_RETURN(c.datatype_changes, ReadStringVec(r));
  PGHIVE_ASSIGN_OR_RETURN(c.cardinality_change, r->ReadString());
  PGHIVE_ASSIGN_OR_RETURN(c.added_source_labels, ReadStringSet(r));
  PGHIVE_ASSIGN_OR_RETURN(c.added_target_labels, ReadStringSet(r));
  return c;
}

}  // namespace

std::string DriftTracker::Serialize() const {
  BinaryWriter w;
  w.WriteU32(kDriftSerdeVersion);
  w.WriteU64(last_epoch_);
  w.WriteU64(counters_.epochs_observed);
  w.WriteU64(counters_.epochs_changed);
  w.WriteU64(counters_.node_types_added);
  w.WriteU64(counters_.node_types_retired);
  w.WriteU64(counters_.edge_types_added);
  w.WriteU64(counters_.edge_types_retired);
  w.WriteU64(counters_.properties_added);
  w.WriteU64(counters_.properties_removed);
  w.WriteU64(counters_.properties_became_optional);
  w.WriteU64(counters_.properties_became_mandatory);
  w.WriteU64(counters_.datatypes_changed);
  w.WriteU64(counters_.cardinality_changes);
  w.WriteU32(static_cast<uint32_t>(history_.size()));
  for (const DriftRecord& rec : history_) {
    w.WriteU64(rec.epoch);
    WriteStringVec(rec.diff.added_node_types, &w);
    WriteStringVec(rec.diff.removed_node_types, &w);
    WriteStringVec(rec.diff.added_edge_types, &w);
    WriteStringVec(rec.diff.removed_edge_types, &w);
    w.WriteU32(static_cast<uint32_t>(rec.diff.changed_types.size()));
    for (const TypeChange& c : rec.diff.changed_types) WriteTypeChange(c, &w);
  }
  return std::move(w).Take();
}

Status DriftTracker::Restore(std::string_view bytes) {
  BinaryReader r(bytes);
  PGHIVE_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != kDriftSerdeVersion) {
    return Status::ParseError("unsupported drift-history version " +
                              std::to_string(version));
  }
  DriftCounters c;
  uint64_t last_epoch = 0;
  PGHIVE_ASSIGN_OR_RETURN(last_epoch, r.ReadU64());
  PGHIVE_ASSIGN_OR_RETURN(c.epochs_observed, r.ReadU64());
  PGHIVE_ASSIGN_OR_RETURN(c.epochs_changed, r.ReadU64());
  PGHIVE_ASSIGN_OR_RETURN(c.node_types_added, r.ReadU64());
  PGHIVE_ASSIGN_OR_RETURN(c.node_types_retired, r.ReadU64());
  PGHIVE_ASSIGN_OR_RETURN(c.edge_types_added, r.ReadU64());
  PGHIVE_ASSIGN_OR_RETURN(c.edge_types_retired, r.ReadU64());
  PGHIVE_ASSIGN_OR_RETURN(c.properties_added, r.ReadU64());
  PGHIVE_ASSIGN_OR_RETURN(c.properties_removed, r.ReadU64());
  PGHIVE_ASSIGN_OR_RETURN(c.properties_became_optional, r.ReadU64());
  PGHIVE_ASSIGN_OR_RETURN(c.properties_became_mandatory, r.ReadU64());
  PGHIVE_ASSIGN_OR_RETURN(c.datatypes_changed, r.ReadU64());
  PGHIVE_ASSIGN_OR_RETURN(c.cardinality_changes, r.ReadU64());
  PGHIVE_ASSIGN_OR_RETURN(uint32_t n, r.ReadU32());
  std::deque<DriftRecord> history;
  for (uint32_t i = 0; i < n; ++i) {
    DriftRecord rec;
    PGHIVE_ASSIGN_OR_RETURN(rec.epoch, r.ReadU64());
    PGHIVE_ASSIGN_OR_RETURN(rec.diff.added_node_types, ReadStringVec(&r));
    PGHIVE_ASSIGN_OR_RETURN(rec.diff.removed_node_types, ReadStringVec(&r));
    PGHIVE_ASSIGN_OR_RETURN(rec.diff.added_edge_types, ReadStringVec(&r));
    PGHIVE_ASSIGN_OR_RETURN(rec.diff.removed_edge_types, ReadStringVec(&r));
    PGHIVE_ASSIGN_OR_RETURN(uint32_t num_changed, r.ReadU32());
    for (uint32_t j = 0; j < num_changed; ++j) {
      PGHIVE_ASSIGN_OR_RETURN(TypeChange tc, ReadTypeChange(&r));
      rec.diff.changed_types.push_back(std::move(tc));
    }
    history.push_back(std::move(rec));
  }
  if (!r.AtEnd()) {
    return Status::ParseError("trailing bytes after drift history");
  }
  counters_ = c;
  history_ = std::move(history);
  last_epoch_ = last_epoch;
  return Status::OK();
}

// --- JSON -------------------------------------------------------------------

namespace {

JsonValue StringsJson(const std::vector<std::string>& v) {
  JsonArray a;
  a.reserve(v.size());
  for (const std::string& s : v) a.emplace_back(s);
  return JsonValue(std::move(a));
}

JsonValue StringsJson(const std::set<std::string>& v) {
  JsonArray a;
  a.reserve(v.size());
  for (const std::string& s : v) a.emplace_back(s);
  return JsonValue(std::move(a));
}

}  // namespace

JsonValue CountersToJson(const DriftCounters& c) {
  JsonObject o;
  o["epochs_observed"] = JsonValue(static_cast<int64_t>(c.epochs_observed));
  o["epochs_changed"] = JsonValue(static_cast<int64_t>(c.epochs_changed));
  o["node_types_added"] =
      JsonValue(static_cast<int64_t>(c.node_types_added));
  o["node_types_retired"] =
      JsonValue(static_cast<int64_t>(c.node_types_retired));
  o["edge_types_added"] =
      JsonValue(static_cast<int64_t>(c.edge_types_added));
  o["edge_types_retired"] =
      JsonValue(static_cast<int64_t>(c.edge_types_retired));
  o["properties_added"] =
      JsonValue(static_cast<int64_t>(c.properties_added));
  o["properties_removed"] =
      JsonValue(static_cast<int64_t>(c.properties_removed));
  o["became_optional"] =
      JsonValue(static_cast<int64_t>(c.properties_became_optional));
  o["became_mandatory"] =
      JsonValue(static_cast<int64_t>(c.properties_became_mandatory));
  o["datatypes_changed"] =
      JsonValue(static_cast<int64_t>(c.datatypes_changed));
  o["cardinality_changes"] =
      JsonValue(static_cast<int64_t>(c.cardinality_changes));
  return JsonValue(std::move(o));
}

JsonValue DiffToJson(const SchemaDiff& diff) {
  JsonObject o;
  if (!diff.added_node_types.empty()) {
    o["added_node_types"] = StringsJson(diff.added_node_types);
  }
  if (!diff.removed_node_types.empty()) {
    o["removed_node_types"] = StringsJson(diff.removed_node_types);
  }
  if (!diff.added_edge_types.empty()) {
    o["added_edge_types"] = StringsJson(diff.added_edge_types);
  }
  if (!diff.removed_edge_types.empty()) {
    o["removed_edge_types"] = StringsJson(diff.removed_edge_types);
  }
  if (!diff.changed_types.empty()) {
    JsonArray changed;
    changed.reserve(diff.changed_types.size());
    for (const TypeChange& c : diff.changed_types) {
      JsonObject t;
      t["name"] = JsonValue(c.name);
      t["is_edge"] = JsonValue(c.is_edge);
      if (!c.added_labels.empty()) {
        t["added_labels"] = StringsJson(c.added_labels);
      }
      if (!c.removed_labels.empty()) {
        t["removed_labels"] = StringsJson(c.removed_labels);
      }
      if (!c.added_properties.empty()) {
        t["added_properties"] = StringsJson(c.added_properties);
      }
      if (!c.removed_properties.empty()) {
        t["removed_properties"] = StringsJson(c.removed_properties);
      }
      if (!c.became_optional.empty()) {
        t["became_optional"] = StringsJson(c.became_optional);
      }
      if (!c.became_mandatory.empty()) {
        t["became_mandatory"] = StringsJson(c.became_mandatory);
      }
      if (!c.datatype_changes.empty()) {
        t["datatype_changes"] = StringsJson(c.datatype_changes);
      }
      if (!c.cardinality_change.empty()) {
        t["cardinality_change"] = JsonValue(c.cardinality_change);
      }
      if (!c.added_source_labels.empty()) {
        t["added_source_labels"] = StringsJson(c.added_source_labels);
      }
      if (!c.added_target_labels.empty()) {
        t["added_target_labels"] = StringsJson(c.added_target_labels);
      }
      changed.emplace_back(std::move(t));
    }
    o["changed_types"] = JsonValue(std::move(changed));
  }
  return JsonValue(std::move(o));
}

JsonValue DriftToJson(const DriftTracker& tracker, uint64_t since) {
  JsonObject o;
  o["epoch"] = JsonValue(static_cast<int64_t>(tracker.last_epoch()));
  o["since"] = JsonValue(static_cast<int64_t>(since));
  o["max_history"] = JsonValue(static_cast<int64_t>(tracker.max_history()));
  o["counters"] = CountersToJson(tracker.counters());
  JsonArray history;
  for (const DriftRecord& rec : tracker.history()) {
    if (rec.epoch <= since) continue;
    JsonObject h;
    h["epoch"] = JsonValue(static_cast<int64_t>(rec.epoch));
    h["diff"] = DiffToJson(rec.diff);
    history.emplace_back(std::move(h));
  }
  o["history"] = JsonValue(std::move(history));
  return JsonValue(std::move(o));
}

}  // namespace drift
}  // namespace pghive
