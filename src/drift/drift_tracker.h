// Versioned schema-drift history (the mutation-stream observability layer).
//
// A DriftTracker watches the post-processed schema at every batch boundary
// ("epoch" = number of batches applied) and maintains:
//
//   * a bounded, versioned HISTORY of per-epoch SchemaDiff records — only
//     epochs whose diff is non-empty are recorded, oldest records fall off
//     once the bound is reached (the cumulative counters never forget);
//   * cumulative DRIFT COUNTERS over the whole stream — types added and
//     retired, properties added/removed, constraints that tightened or
//     relaxed, datatype and cardinality changes — mirrored into the
//     pghive.drift.* gauges;
//   * the BASELINE schema the next observation diffs against.
//
// Unlike the monotone incremental chain (S_i ⊑ S_{i+1}), mutation streams
// drift in BOTH directions: DiffSchemas already reports removals,
// became_mandatory and cardinality downgrades, and this layer is where they
// become visible end-to-end (CLI `pghive drift`, serve
// GET /v1/graphs/{g}/drift).
//
// Persistence: Serialize() captures history + counters + last epoch (NOT
// the baseline schema — recovery re-derives the baseline from the restored
// store's post-processed schema BEFORE journal replay, so replayed batches
// re-observe against exactly the state they originally diffed from).

#ifndef PGHIVE_DRIFT_DRIFT_TRACKER_H_
#define PGHIVE_DRIFT_DRIFT_TRACKER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

#include "common/json.h"
#include "common/status.h"
#include "core/schema.h"
#include "core/schema_diff.h"

namespace pghive {
namespace drift {

/// Cumulative drift totals since the stream began (never truncated, unlike
/// the bounded history).
struct DriftCounters {
  /// Epochs observed / epochs whose diff was non-empty.
  uint64_t epochs_observed = 0;
  uint64_t epochs_changed = 0;
  uint64_t node_types_added = 0;
  uint64_t node_types_retired = 0;
  uint64_t edge_types_added = 0;
  uint64_t edge_types_retired = 0;
  uint64_t properties_added = 0;
  uint64_t properties_removed = 0;
  uint64_t properties_became_optional = 0;
  uint64_t properties_became_mandatory = 0;
  /// Datatype transitions (widened or narrowed).
  uint64_t datatypes_changed = 0;
  /// Cardinality transitions (upgrades and downgrades).
  uint64_t cardinality_changes = 0;

  bool operator==(const DriftCounters&) const = default;
};

/// One recorded drift event: the diff from the previous observation to
/// `epoch`'s schema.
struct DriftRecord {
  uint64_t epoch = 0;
  SchemaDiff diff;
};

class DriftTracker {
 public:
  static constexpr size_t kDefaultMaxHistory = 256;

  explicit DriftTracker(size_t max_history = kDefaultMaxHistory)
      : max_history_(max_history == 0 ? 1 : max_history) {}

  /// Diffs `schema` against the baseline, records the result when
  /// non-empty, updates counters and advances the baseline. Epochs must be
  /// observed in increasing order.
  void Observe(uint64_t epoch, const SchemaGraph& schema);

  /// Sets the baseline without recording anything (recovery: the restored
  /// schema at `epoch`, before journal replay re-observes newer batches).
  void ResetBaseline(uint64_t epoch, const SchemaGraph& schema);

  const std::deque<DriftRecord>& history() const { return history_; }
  const DriftCounters& counters() const { return counters_; }
  uint64_t last_epoch() const { return last_epoch_; }
  size_t max_history() const { return max_history_; }

  /// Mirrors the cumulative counters + history size + last epoch into the
  /// pghive.drift.* gauges.
  void PublishGauges() const;

  /// Binary round-trip of history + counters + last epoch (the snapshot
  /// "drift-history" section payload). Restore REPLACES history/counters;
  /// the baseline must be supplied separately via ResetBaseline.
  std::string Serialize() const;
  Status Restore(std::string_view bytes);

 private:
  size_t max_history_;
  SchemaGraph baseline_;
  std::deque<DriftRecord> history_;
  DriftCounters counters_;
  uint64_t last_epoch_ = 0;
};

/// JSON renderings shared by the CLI and the serve endpoint.
JsonValue CountersToJson(const DriftCounters& c);
JsonValue DiffToJson(const SchemaDiff& diff);
/// {"epoch":E,"counters":{...},"history":[{"epoch":N,"diff":{...}},...]}
/// with history filtered to records with epoch > `since`.
JsonValue DriftToJson(const DriftTracker& tracker, uint64_t since);

}  // namespace drift
}  // namespace pghive

#endif  // PGHIVE_DRIFT_DRIFT_TRACKER_H_
