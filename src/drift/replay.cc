#include "drift/replay.h"

#include <unordered_map>
#include <unordered_set>

namespace pghive {
namespace drift {

Result<AppliedBatch> ApplyMutationBatch(PropertyGraph* g,
                                        const MutationBatch& payload) {
  const GraphMutations& m = payload.mutations;
  AppliedBatch out;
  out.batch.graph = g;
  out.batch.node_begin = g->num_nodes();
  out.batch.edge_begin = g->num_edges();

  std::unordered_set<NodeId> deleted_here;
  deleted_here.reserve(m.delete_nodes.size() + m.update_nodes.size());
  auto check_node = [&](NodeId id, const char* what) -> Status {
    if (id >= g->num_nodes()) {
      return Status::InvalidArgument(std::string(what) + " " +
                                     std::to_string(id) + " does not exist");
    }
    if (!deleted_here.insert(id).second) {
      return Status::InvalidArgument(std::string(what) + " " +
                                     std::to_string(id) +
                                     " deleted twice in one batch");
    }
    return Status::OK();
  };
  for (NodeId id : m.delete_nodes) {
    PGHIVE_RETURN_NOT_OK(check_node(id, "deleted node"));
    out.deleted_nodes.push_back(id);
  }
  for (const NodeUpdate& u : m.update_nodes) {
    PGHIVE_RETURN_NOT_OK(check_node(u.id, "updated node"));
    out.deleted_nodes.push_back(u.id);
  }
  std::unordered_set<EdgeId> edge_dupes;
  auto check_edge = [&](EdgeId id, const char* what) -> Status {
    if (id >= g->num_edges()) {
      return Status::InvalidArgument(std::string(what) + " " +
                                     std::to_string(id) + " does not exist");
    }
    if (!edge_dupes.insert(id).second) {
      return Status::InvalidArgument(std::string(what) + " " +
                                     std::to_string(id) +
                                     " deleted twice in one batch");
    }
    return Status::OK();
  };
  for (EdgeId id : m.delete_edges) {
    PGHIVE_RETURN_NOT_OK(check_edge(id, "deleted edge"));
    out.deleted_edges.push_back(id);
  }
  for (const EdgeUpdate& u : m.update_edges) {
    PGHIVE_RETURN_NOT_OK(check_edge(u.id, "updated edge"));
    out.deleted_edges.push_back(u.id);
  }

  // Appends, canonical order. Updates are delete-then-reinsert: the
  // replacement gets a FRESH id (never in-place — in-place mutation would
  // desynchronize signature indices and break replay equivalence).
  auto add_node = [&](const NodeData& d) {
    out.appended_nodes.push_back(
        g->AddNode(d.labels, d.properties, d.truth_type));
  };
  auto add_edge = [&](const EdgeData& d, const char* what) -> Status {
    if (deleted_here.count(d.source) || deleted_here.count(d.target)) {
      return Status::InvalidArgument(
          std::string(what) + " references node deleted in the same batch");
    }
    PGHIVE_ASSIGN_OR_RETURN(
        EdgeId id, g->AddEdge(d.source, d.target, d.labels, d.properties,
                              d.truth_type));
    out.appended_edges.push_back(id);
    return Status::OK();
  };
  for (const NodeUpdate& u : m.update_nodes) add_node(u.data);
  for (const NodeData& d : payload.nodes) add_node(d);
  for (const EdgeUpdate& u : m.update_edges) {
    PGHIVE_RETURN_NOT_OK(add_edge(u.data, "updated edge replacement"));
  }
  for (const EdgeData& d : payload.edges) {
    PGHIVE_RETURN_NOT_OK(add_edge(d, "appended edge"));
  }

  out.batch.node_end = g->num_nodes();
  out.batch.edge_end = g->num_edges();
  return out;
}

Result<std::vector<MutationBatch>> NetSurvivingStream(
    const std::vector<MutationBatch>& stream) {
  // Pass 1: apply the whole stream to a scratch graph, recording each
  // batch's appended ids and the stream-wide death sets.
  PropertyGraph g;
  std::vector<AppliedBatch> applied;
  applied.reserve(stream.size());
  std::unordered_set<NodeId> dead_nodes;
  std::unordered_set<EdgeId> dead_edges;
  for (const MutationBatch& b : stream) {
    PGHIVE_ASSIGN_OR_RETURN(AppliedBatch a, ApplyMutationBatch(&g, b));
    dead_nodes.insert(a.deleted_nodes.begin(), a.deleted_nodes.end());
    dead_edges.insert(a.deleted_edges.begin(), a.deleted_edges.end());
    applied.push_back(std::move(a));
  }

  // Pass 2: emit survivors per batch, remapping node ids into the
  // compacted space (survivor order == original append order).
  std::unordered_map<NodeId, NodeId> remap;
  remap.reserve(g.num_nodes() - dead_nodes.size());
  NodeId next_id = 0;
  std::vector<MutationBatch> out(stream.size());
  for (size_t i = 0; i < applied.size(); ++i) {
    for (NodeId id : applied[i].appended_nodes) {
      if (dead_nodes.count(id)) continue;
      remap[id] = next_id++;
      out[i].nodes.push_back(ToData(g.node(id)));
    }
    for (EdgeId id : applied[i].appended_edges) {
      if (dead_edges.count(id)) continue;
      EdgeData d = ToData(g.edge(id));
      auto s = remap.find(d.source);
      auto t = remap.find(d.target);
      if (s == remap.end() || t == remap.end()) {
        return Status::InvalidArgument(
            "surviving edge " + std::to_string(id) +
            " references a deleted node (endpoint-closure violation)");
      }
      d.source = s->second;
      d.target = t->second;
      out[i].edges.push_back(std::move(d));
    }
  }
  return out;
}

}  // namespace drift
}  // namespace pghive
