#include "serve/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

#include "common/string_util.h"

namespace pghive {
namespace serve {

namespace {

constexpr size_t kMaxHeaderBytes = 64 * 1024;
constexpr size_t kReadChunk = 16 * 1024;

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

std::string ToUpperAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(c));
  return out;
}

std::string PercentDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%' && i + 2 < s.size() && std::isxdigit(s[i + 1]) &&
               std::isxdigit(s[i + 2])) {
      auto hex = [](char c) {
        return c <= '9' ? c - '0' : (std::tolower(c) - 'a' + 10);
      };
      out.push_back(static_cast<char>(hex(s[i + 1]) * 16 + hex(s[i + 2])));
      i += 2;
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

/// Parses "Key: Value" header lines into a lowercased-key map.
Status ParseHeaderBlock(const std::string& block,
                        std::map<std::string, std::string>* headers) {
  size_t start = 0;
  while (start < block.size()) {
    size_t end = block.find("\r\n", start);
    if (end == std::string::npos) end = block.size();
    std::string_view line(block.data() + start, end - start);
    start = end + (end < block.size() ? 2 : 0);
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::ParseError("malformed header line");
    }
    std::string key = ToLower(Trim(line.substr(0, colon)));
    std::string value(Trim(line.substr(colon + 1)));
    (*headers)[std::move(key)] = std::move(value);
  }
  return Status::OK();
}

}  // namespace

const char* HttpStatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default:  return "Unknown";
  }
}

void SplitTarget(const std::string& target, std::string* path,
                 std::map<std::string, std::string>* query) {
  const size_t q = target.find('?');
  *path = PercentDecode(target.substr(0, q));
  query->clear();
  if (q == std::string::npos) return;
  std::string_view rest(target.data() + q + 1, target.size() - q - 1);
  while (!rest.empty()) {
    const size_t amp = rest.find('&');
    std::string_view pair = rest.substr(0, amp);
    rest = amp == std::string_view::npos ? std::string_view()
                                         : rest.substr(amp + 1);
    if (pair.empty()) continue;
    const size_t eq = pair.find('=');
    std::string key = PercentDecode(pair.substr(0, eq));
    std::string value =
        eq == std::string_view::npos ? "" : PercentDecode(pair.substr(eq + 1));
    (*query)[std::move(key)] = std::move(value);
  }
}

HttpConnection::~HttpConnection() {
  if (fd_ >= 0) ::close(fd_);
}

Status HttpConnection::SetTimeouts(int timeout_ms) {
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
      ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(SO_RCVTIMEO)");
  }
  return Status::OK();
}

Result<size_t> HttpConnection::Fill() {
  // Compact the consumed prefix before growing the buffer.
  if (pos_ > 0) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  char chunk[kReadChunk];
  for (;;) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buf_.append(chunk, static_cast<size_t>(n));
      return static_cast<size_t>(n);
    }
    if (n == 0) return size_t{0};
    if (errno == EINTR) continue;
    return Errno("recv");
  }
}

Result<std::string> HttpConnection::ReadUntil(const std::string& delim,
                                              size_t max_bytes, bool eof_ok) {
  for (;;) {
    const size_t found = buf_.find(delim, pos_);
    if (found != std::string::npos) {
      std::string out = buf_.substr(pos_, found - pos_);
      pos_ = found + delim.size();
      return out;
    }
    if (buf_.size() - pos_ > max_bytes) {
      return Status::ParseError("header block exceeds " +
                                std::to_string(max_bytes) + " bytes");
    }
    PGHIVE_ASSIGN_OR_RETURN(size_t n, Fill());
    if (n == 0) {
      if (eof_ok && pos_ == buf_.size()) {
        return Status::NotFound("connection closed");
      }
      return Status::ParseError("connection closed mid-message");
    }
  }
}

Result<std::string> HttpConnection::ReadExactly(size_t n) {
  while (buf_.size() - pos_ < n) {
    PGHIVE_ASSIGN_OR_RETURN(size_t got, Fill());
    if (got == 0) return Status::ParseError("connection closed mid-body");
  }
  std::string out = buf_.substr(pos_, n);
  pos_ += n;
  return out;
}

Status HttpConnection::WriteAll(const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<HttpRequest> HttpConnection::ReadRequest(size_t max_body_bytes) {
  PGHIVE_ASSIGN_OR_RETURN(
      std::string head,
      ReadUntil("\r\n\r\n", kMaxHeaderBytes, /*eof_ok=*/true));
  const size_t line_end = head.find("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);

  HttpRequest req;
  {
    const size_t sp1 = request_line.find(' ');
    const size_t sp2 =
        sp1 == std::string::npos ? sp1 : request_line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      return Status::ParseError("malformed request line '" + request_line +
                                "'");
    }
    req.method = ToUpperAscii(request_line.substr(0, sp1));
    req.target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string version = request_line.substr(sp2 + 1);
    if (version.rfind("HTTP/1.", 0) != 0) {
      return Status::ParseError("unsupported protocol '" + version + "'");
    }
  }
  SplitTarget(req.target, &req.path, &req.query);
  PGHIVE_RETURN_NOT_OK(ParseHeaderBlock(
      line_end == std::string::npos ? "" : head.substr(line_end + 2),
      &req.headers));

  auto it = req.headers.find("content-length");
  if (it != req.headers.end()) {
    char* end = nullptr;
    const unsigned long long len = std::strtoull(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0') {
      return Status::ParseError("bad Content-Length '" + it->second + "'");
    }
    if (len > max_body_bytes) {
      return Status::OutOfRange("request body of " + it->second +
                                " bytes exceeds the " +
                                std::to_string(max_body_bytes) +
                                "-byte limit");
    }
    PGHIVE_ASSIGN_OR_RETURN(req.body, ReadExactly(static_cast<size_t>(len)));
  }
  return req;
}

Status HttpConnection::WriteResponse(const HttpResponse& response,
                                     bool close_connection) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    HttpStatusReason(response.status) + "\r\n";
  for (const auto& [key, value] : response.headers) {
    out += key + ": " + value + "\r\n";
  }
  out += "content-length: " + std::to_string(response.body.size()) + "\r\n";
  out += close_connection ? "connection: close\r\n"
                          : "connection: keep-alive\r\n";
  out += "\r\n";
  out += response.body;
  return WriteAll(out);
}

Status HttpConnection::WriteRequest(const std::string& method,
                                    const std::string& target,
                                    const std::string& body,
                                    const std::string& content_type) {
  std::string out = method + " " + target + " HTTP/1.1\r\n";
  out += "host: pghive\r\n";
  if (!content_type.empty()) out += "content-type: " + content_type + "\r\n";
  out += "content-length: " + std::to_string(body.size()) + "\r\n\r\n";
  out += body;
  return WriteAll(out);
}

Result<HttpResponse> HttpConnection::ReadResponse(size_t max_body_bytes) {
  PGHIVE_ASSIGN_OR_RETURN(
      std::string head,
      ReadUntil("\r\n\r\n", kMaxHeaderBytes, /*eof_ok=*/false));
  const size_t line_end = head.find("\r\n");
  const std::string status_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);

  HttpResponse resp;
  {
    const size_t sp1 = status_line.find(' ');
    if (sp1 == std::string::npos ||
        status_line.rfind("HTTP/1.", 0) != 0) {
      return Status::ParseError("malformed status line '" + status_line +
                                "'");
    }
    resp.status = std::atoi(status_line.c_str() + sp1 + 1);
    if (resp.status < 100 || resp.status > 599) {
      return Status::ParseError("bad status in '" + status_line + "'");
    }
  }
  PGHIVE_RETURN_NOT_OK(ParseHeaderBlock(
      line_end == std::string::npos ? "" : head.substr(line_end + 2),
      &resp.headers));
  auto it = resp.headers.find("content-length");
  if (it != resp.headers.end()) {
    const unsigned long long len = std::strtoull(it->second.c_str(), nullptr,
                                                 10);
    if (len > max_body_bytes) {
      return Status::OutOfRange("response body exceeds limit");
    }
    PGHIVE_ASSIGN_OR_RETURN(resp.body, ReadExactly(static_cast<size_t>(len)));
  }
  return resp;
}

Result<int> ListenTcp(const std::string& host, uint16_t port,
                      uint16_t* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("not an IPv4 address: '" + host + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Errno("bind " + host + ":" + std::to_string(port));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 128) != 0) {
    Status s = Errno("listen");
    ::close(fd);
    return s;
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      Status s = Errno("getsockname");
      ::close(fd);
      return s;
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

Result<int> DialTcp(const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("not an IPv4 address: '" + host + "'");
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    Status s = Errno("connect " + host + ":" + std::to_string(port));
    ::close(fd);
    return s;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Result<HttpResponse> HttpCall(const std::string& host, uint16_t port,
                              const std::string& method,
                              const std::string& target,
                              const std::string& body,
                              const std::string& content_type) {
  PGHIVE_ASSIGN_OR_RETURN(int fd, DialTcp(host, port));
  HttpConnection conn(fd);
  PGHIVE_RETURN_NOT_OK(conn.SetTimeouts(30000));
  PGHIVE_RETURN_NOT_OK(conn.WriteRequest(method, target, body, content_type));
  return conn.ReadResponse(/*max_body_bytes=*/256 * 1024 * 1024);
}

}  // namespace serve
}  // namespace pghive
