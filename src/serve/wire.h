// JSON wire forms for the serving daemon's ingest path: BatchPayload (the
// journal's batch unit, store/codec.h) <-> the request body of
// POST /v1/graphs/{g}/batches.
//
// Two value spellings are accepted, so the wire is both curl-friendly and
// exact:
//
//  * plain JSON scalars — a string is typed by the same lexical inference
//    the CSV loader applies (graph/value.h::ParseValue, so "123" ingests as
//    INT exactly like a CSV cell would); a number is INT when integral else
//    DOUBLE; booleans map to BOOL.
//  * the typed object form {"type":"DOUBLE","text":"1.5"} — type tag plus
//    lexical form, round-tripping any Value bit-exactly (doubles print as
//    %.17g). BatchToJson always emits this form, so a batch sliced from a
//    CSV graph and pushed over HTTP reproduces the CSV ingest byte-for-byte.
//
// Batch shape:
//   {"nodes":[{"labels":["A"],"properties":{"k":v},"truth":"T"?}, ...],
//    "edges":[{"source":0,"target":1,"labels":[...],"properties":{...}},..],
//    "delete_nodes":[id,...]?, "delete_edges":[id,...]?,
//    "update_nodes":[{"id":N,"labels":[...],"properties":{...}},...]?,
//    "update_edges":[{"id":N,"source":0,"target":1,...},...]?}
// Node ids are assigned by the server in feed order; edge endpoints are
// global node ids into the accumulated graph (the same endpoint-closed
// contract MakeStreamBatches satisfies). The optional mutation arrays carry
// the graph/mutations.h vocabulary: deletions name server-assigned ids,
// updates are delete-then-reinsert (the replacement gets a fresh id).

#ifndef PGHIVE_SERVE_WIRE_H_
#define PGHIVE_SERVE_WIRE_H_

#include "common/json.h"
#include "common/result.h"
#include "graph/value.h"
#include "store/codec.h"

namespace pghive {
namespace serve {

/// Typed object form, exact round-trip.
JsonValue ValueToJson(const Value& v);

/// Accepts both spellings (see file comment).
Result<Value> ValueFromJson(const JsonValue& j);

JsonValue BatchToJson(const store::BatchPayload& batch);
Result<store::BatchPayload> BatchFromJson(const JsonValue& doc);

}  // namespace serve
}  // namespace pghive

#endif  // PGHIVE_SERVE_WIRE_H_
