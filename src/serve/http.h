// Minimal blocking HTTP/1.1 over POSIX sockets for the schema-serving
// daemon (serve/server.h) and its clients (bench/load_serve, pghive
// ingest). Hand-rolled on purpose: the repo takes no network dependencies,
// and the daemon's needs are small — request/response framing with
// Content-Length bodies, keep-alive connections, and loopback TCP.
//
// Scope (deliberate non-goals): no TLS, no chunked transfer encoding, no
// pipelining, no HTTP/2. Requests without a Content-Length have an empty
// body. Header keys are case-insensitive (stored lowercased).

#ifndef PGHIVE_SERVE_HTTP_H_
#define PGHIVE_SERVE_HTTP_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace pghive {
namespace serve {

struct HttpRequest {
  std::string method;  // uppercased: GET, POST, ...
  std::string target;  // raw request target, e.g. /v1/graphs/g/schema?epoch=3
  std::string path;    // target up to '?'
  std::map<std::string, std::string> query;    // decoded query parameters
  std::map<std::string, std::string> headers;  // keys lowercased
  std::string body;
};

struct HttpResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  // keys lowercased
  std::string body;
};

/// Canonical reason phrase ("OK", "Too Many Requests", ...).
const char* HttpStatusReason(int status);

/// Splits a request target into path + decoded query map (exposed for
/// tests). Percent-decoding covers %XX and '+' in query values.
void SplitTarget(const std::string& target, std::string* path,
                 std::map<std::string, std::string>* query);

/// One connected socket with a read buffer that carries leftover bytes
/// across keep-alive requests. Owns the fd (closed on destruction). Used on
/// both sides: the server reads requests and writes responses, the client
/// writes requests and reads responses.
class HttpConnection {
 public:
  /// Takes ownership of a connected socket.
  explicit HttpConnection(int fd) : fd_(fd) {}
  ~HttpConnection();
  HttpConnection(const HttpConnection&) = delete;
  HttpConnection& operator=(const HttpConnection&) = delete;

  int fd() const { return fd_; }
  bool ok() const { return fd_ >= 0; }

  /// Reads one full request. A connection closed cleanly before the first
  /// byte of a request returns NotFound (the keep-alive loop's normal exit);
  /// malformed framing returns ParseError (answer 400), an over-limit body
  /// returns OutOfRange (answer 413), socket errors return IoError.
  Result<HttpRequest> ReadRequest(size_t max_body_bytes);

  /// Writes a response. Content-Length and the reason phrase are filled in;
  /// `close_connection` adds "Connection: close" (else keep-alive).
  Status WriteResponse(const HttpResponse& response, bool close_connection);

  /// Client side: writes one request (Content-Length filled in)...
  Status WriteRequest(const std::string& method, const std::string& target,
                      const std::string& body,
                      const std::string& content_type);

  /// ...and reads the matching response.
  Result<HttpResponse> ReadResponse(size_t max_body_bytes);

  /// SO_RCVTIMEO/SO_SNDTIMEO, so a dead peer cannot wedge a worker forever.
  Status SetTimeouts(int timeout_ms);

 private:
  /// recv()s more bytes into buf_. Returns the byte count, 0 on orderly
  /// shutdown, or IoError.
  Result<size_t> Fill();
  /// Reads until `delim` is buffered; returns the bytes before it and
  /// consumes through it. `eof_ok` controls the empty-at-EOF result.
  Result<std::string> ReadUntil(const std::string& delim, size_t max_bytes,
                                bool eof_ok);
  Result<std::string> ReadExactly(size_t n);
  Status WriteAll(const std::string& bytes);

  int fd_ = -1;
  std::string buf_;   // bytes received but not yet consumed
  size_t pos_ = 0;    // consumed prefix of buf_
};

/// Binds and listens on host:port (port 0 = ephemeral). Returns the
/// listening fd and stores the actually bound port in `bound_port`.
Result<int> ListenTcp(const std::string& host, uint16_t port,
                      uint16_t* bound_port);

/// Connects to host:port.
Result<int> DialTcp(const std::string& host, uint16_t port);

/// One-shot convenience: dial, send one request, read the response, close.
Result<HttpResponse> HttpCall(const std::string& host, uint16_t port,
                              const std::string& method,
                              const std::string& target,
                              const std::string& body = "",
                              const std::string& content_type = "");

}  // namespace serve
}  // namespace pghive

#endif  // PGHIVE_SERVE_HTTP_H_
