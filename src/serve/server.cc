#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <utility>
#include <vector>

#include <chrono>

#include "common/json.h"
#include "common/logging.h"
#include "common/timer.h"
#include "drift/drift_tracker.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/wire.h"

namespace pghive {
namespace serve {

namespace {

constexpr const char* kJsonType = "application/json";

HttpResponse JsonResponse(int status, const JsonValue& doc) {
  HttpResponse resp;
  resp.status = status;
  resp.headers["content-type"] = kJsonType;
  resp.body = doc.Dump();
  resp.body.push_back('\n');
  return resp;
}

HttpResponse ErrorResponse(int status, const std::string& message) {
  JsonObject doc;
  doc["error"] = message;
  return JsonResponse(status, JsonValue(std::move(doc)));
}

/// Splits "/v1/graphs/g/schema" into {"v1", "graphs", "g", "schema"}.
std::vector<std::string> PathSegments(const std::string& path) {
  std::vector<std::string> segments;
  size_t pos = 0;
  while (pos < path.size()) {
    if (path[pos] == '/') {
      ++pos;
      continue;
    }
    const size_t next = path.find('/', pos);
    const size_t end = next == std::string::npos ? path.size() : next;
    segments.push_back(path.substr(pos, end - pos));
    pos = end;
  }
  return segments;
}

obs::Histogram* ReadLatency() {
  static obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "pghive.serve.read_seconds");
  return h;
}

obs::Histogram* IngestLatency() {
  static obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "pghive.serve.ingest_seconds");
  return h;
}

obs::Counter* RequestsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "pghive.serve.requests");
  return c;
}

/// Static route label for the per-route latency histogram: bounded
/// cardinality (no graph names, no raw paths).
const char* RouteLabel(const HttpRequest& request,
                       const std::vector<std::string>& seg) {
  if (request.path == "/healthz") return "healthz";
  if (request.path == "/readyz") return "readyz";
  if (request.path == "/metrics") return "metrics";
  if (seg.size() >= 2 && seg[0] == "v1" && seg[1] == "graphs") {
    if (seg.size() == 2) return "graphs_list";
    if (seg.size() == 3) return "graph_detail";
    if (seg.size() == 4 && seg[3] == "schema") return "schema";
    if (seg.size() == 4 && seg[3] == "drift") return "drift";
    if (seg.size() == 4 && seg[3] == "alerts") return "alerts";
    if (seg.size() == 4 && seg[3] == "batches") return "batches";
  }
  return "other";
}

obs::Histogram* RouteLatency(const char* route) {
  return obs::MetricsRegistry::Global().GetHistogram(
      std::string("pghive.serve.route_seconds.") + route);
}

/// 16-hex-digit trace id: process-startup entropy mixed with a sequence
/// counter — unique within and across daemon restarts, no clock reads.
std::string NextTraceId() {
  static const uint64_t seed = [] {
    std::random_device rd;
    return (static_cast<uint64_t>(rd()) << 32) ^ rd();
  }();
  static std::atomic<uint64_t> sequence{1};
  const uint64_t id =
      seed ^ (sequence.fetch_add(1, std::memory_order_relaxed) *
              0x9e3779b97f4a7c15ull);
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

/// Microseconds since the Unix epoch (access-log timestamps).
int64_t WallClockMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

SchemaServer::SchemaServer(ServeOptions options)
    : options_(std::move(options)) {}

SchemaServer::~SchemaServer() { Stop(); }

Status SchemaServer::AddGraph(const std::string& name,
                              const std::string& state_dir) {
  if (started_) {
    return Status::FailedPrecondition(
        "AddGraph must be called before Start()");
  }
  if (name.empty() || name.find('/') != std::string::npos) {
    return Status::InvalidArgument("graph name '" + name +
                                   "' must be non-empty and '/'-free");
  }
  if (hosts_.count(name) != 0) {
    return Status::AlreadyExists("graph '" + name + "' is already hosted");
  }
  PGHIVE_ASSIGN_OR_RETURN(std::unique_ptr<GraphHost> host,
                          GraphHost::Open(name, state_dir, options_.graph));
  hosts_.emplace(name, std::move(host));
  return Status::OK();
}

Status SchemaServer::Start() {
  if (started_) return Status::FailedPrecondition("server already started");
  if (!options_.access_log_path.empty()) {
    access_log_.open(options_.access_log_path,
                     std::ios::out | std::ios::app);
    if (!access_log_.is_open()) {
      return Status::IoError("cannot open access log '" +
                             options_.access_log_path + "'");
    }
  }
  if (::pipe(stop_pipe_) != 0) {
    return Status::IoError("cannot create stop pipe");
  }
  PGHIVE_ASSIGN_OR_RETURN(listen_fd_,
                          ListenTcp(options_.host, options_.port, &port_));
  workers_ = std::make_unique<ThreadPool>(
      ResolveThreadCount(options_.num_workers));
  started_ = true;
  acceptor_ = std::thread([this] { AcceptorLoop(); });
  return Status::OK();
}

void SchemaServer::RequestStop() {
  // Only a single write(2) — safe from signal handlers.
  if (stop_pipe_[1] >= 0) {
    const char byte = 's';
    [[maybe_unused]] ssize_t n = ::write(stop_pipe_[1], &byte, 1);
  }
}

Status SchemaServer::Wait() {
  if (acceptor_.joinable()) acceptor_.join();
  return Stop();
}

Status SchemaServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (!started_ || stopped_) return Status::OK();
    stopped_ = true;
    stopping_ = true;
  }
  RequestStop();
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    // Wake every worker blocked in recv(2); their keep-alive loops exit on
    // the resulting EOF/error and the pool can join.
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  workers_.reset();
  Status first_error;
  for (auto& [name, host] : hosts_) {
    const Status drained = host->Drain();
    if (!drained.ok() && first_error.ok()) first_error = drained;
  }
  for (int i = 0; i < 2; ++i) {
    if (stop_pipe_[i] >= 0) {
      ::close(stop_pipe_[i]);
      stop_pipe_[i] = -1;
    }
  }
  return first_error;
}

GraphHost* SchemaServer::FindGraph(const std::string& name) {
  auto it = hosts_.find(name);
  return it == hosts_.end() ? nullptr : it->second.get();
}

void SchemaServer::AcceptorLoop() {
  for (;;) {
    struct pollfd fds[2];
    fds[0].fd = listen_fd_;
    fds[0].events = POLLIN;
    fds[1].fd = stop_pipe_[0];
    fds[1].events = POLLIN;
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // RequestStop
    if (fds[0].revents == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;
    }
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      if (stopping_) {
        ::close(fd);
        continue;
      }
      active_fds_.insert(fd);
    }
    workers_->Submit([this, fd] { ServeConnection(fd); });
  }
}

void SchemaServer::ServeConnection(int fd) {
  {
    HttpConnection conn(fd);
    conn.SetTimeouts(options_.connection_timeout_ms);
    for (;;) {
      Result<HttpRequest> request = conn.ReadRequest(options_.max_body_bytes);
      if (!request.ok()) {
        const StatusCode code = request.status().code();
        if (code == StatusCode::kParseError) {
          conn.WriteResponse(ErrorResponse(400, request.status().message()),
                             /*close_connection=*/true);
        } else if (code == StatusCode::kOutOfRange) {
          conn.WriteResponse(ErrorResponse(413, request.status().message()),
                             /*close_connection=*/true);
        }
        break;  // NotFound = clean peer close; IoError = broken socket
      }
      RequestsCounter()->Add(1);
      const HttpResponse response = Route(*request);
      bool close = false;
      {
        std::lock_guard<std::mutex> lock(conn_mu_);
        close = stopping_;
      }
      auto it = request->headers.find("connection");
      if (it != request->headers.end() && it->second == "close") close = true;
      if (!conn.WriteResponse(response, close).ok() || close) break;
    }
  }  // fd closed here
  std::lock_guard<std::mutex> lock(conn_mu_);
  active_fds_.erase(fd);
}

HttpResponse SchemaServer::Route(const HttpRequest& request) {
  const Timer timer;
  const bool is_ingest = request.method == "POST";
  const std::vector<std::string> seg = PathSegments(request.path);
  const char* route = RouteLabel(request, seg);
  const std::string graph =
      seg.size() >= 3 && seg[0] == "v1" && seg[1] == "graphs" ? seg[2] : "";

  // Honor an inbound trace id; mint one only when something will use it
  // (tracing or the access log), so the plain read path stays untouched.
  std::string trace_id;
  const auto inbound = request.headers.find("x-pghive-trace-id");
  if (inbound != request.headers.end()) {
    trace_id = inbound->second;
  } else if (obs::TraceEnabled() || access_log_.is_open()) {
    trace_id = NextTraceId();
  }

  HttpResponse response;
  {
    obs::ScopedSpan span("serve.request");
    if (span.recording()) {
      span.AddAttr("method", request.method);
      span.AddAttr("route", std::string(route));
      span.AddAttr("trace", trace_id);
    }
    if (request.path == "/healthz") {
      if (request.method != "GET") {
        response = ErrorResponse(405, "method not allowed");
      } else {
        JsonObject doc;
        doc["status"] = "ok";
        response = JsonResponse(200, JsonValue(std::move(doc)));
      }
    } else if (request.path == "/readyz") {
      response = request.method == "GET"
                     ? HandleReady()
                     : ErrorResponse(405, "method not allowed");
    } else if (request.path == "/metrics") {
      response = request.method == "GET"
                     ? HandleMetrics(request.query)
                     : ErrorResponse(405, "method not allowed");
    } else if (seg.size() >= 2 && seg[0] == "v1" && seg[1] == "graphs") {
      if (seg.size() == 2) {
        response = request.method == "GET"
                       ? HandleListGraphs()
                       : ErrorResponse(405, "method not allowed");
      } else {
        GraphHost* host = FindGraph(seg[2]);
        if (host == nullptr) {
          response = ErrorResponse(404, "unknown graph '" + seg[2] + "'");
        } else if (seg.size() == 3) {
          response = request.method == "GET"
                         ? HandleGraphDetail(*host)
                         : ErrorResponse(405, "method not allowed");
        } else if (seg.size() == 4 && seg[3] == "schema") {
          response = request.method == "GET"
                         ? HandleSchema(*host, request.query)
                         : ErrorResponse(405, "method not allowed");
        } else if (seg.size() == 4 && seg[3] == "drift") {
          response = request.method == "GET"
                         ? HandleDrift(*host, request.query)
                         : ErrorResponse(405, "method not allowed");
        } else if (seg.size() == 4 && seg[3] == "alerts") {
          response = request.method == "GET"
                         ? HandleAlerts(*host)
                         : ErrorResponse(405, "method not allowed");
        } else if (seg.size() == 4 && seg[3] == "batches") {
          response = request.method == "POST"
                         ? HandleIngest(host, request, trace_id)
                         : ErrorResponse(405, "method not allowed");
        } else {
          response = ErrorResponse(404, "no route for " + request.path);
        }
      }
    } else {
      response = ErrorResponse(404, "no route for " + request.path);
    }
    if (span.recording()) {
      span.AddAttr("status", static_cast<uint64_t>(response.status));
    }
  }
  const double seconds = timer.ElapsedSeconds();
  (is_ingest ? IngestLatency() : ReadLatency())->Observe(seconds);
  RouteLatency(route)->Observe(seconds);
  if (!is_ingest && !graph.empty() && FindGraph(graph) != nullptr) {
    obs::MetricsRegistry::Global()
        .GetHistogram("pghive.serve.graph_read_seconds." + graph)
        ->Observe(seconds);
  }
  if (!trace_id.empty()) {
    response.headers["x-pghive-trace-id"] = trace_id;
  }
  if (access_log_.is_open() || GetLogLevel() <= LogLevel::kDebug) {
    LogAccess(request, response, trace_id, graph, seconds);
  }
  return response;
}

HttpResponse SchemaServer::HandleReady() const {
  JsonArray graphs;
  bool ready = true;
  for (const auto& [name, host] : hosts_) {
    const std::shared_ptr<const EpochSnapshot> snap = host->Current();
    const Status writer = host->writer_status();
    const size_t depth = host->queue_depth();
    const size_t capacity = options_.graph.queue_capacity;
    const bool saturated = depth >= capacity;
    if (!writer.ok() || saturated) ready = false;
    JsonObject g;
    g["name"] = name;
    g["epoch"] = static_cast<int64_t>(snap->epoch);
    g["writer_ok"] = writer.ok();
    if (!writer.ok()) g["writer_error"] = writer.ToString();
    g["queue_depth"] = depth;
    g["queue_capacity"] = capacity;
    g["saturated"] = saturated;
    g["batches_since_checkpoint"] =
        static_cast<int64_t>(snap->batches_since_checkpoint);
    graphs.emplace_back(std::move(g));
  }
  JsonObject doc;
  doc["status"] = ready ? "ready" : "unready";
  doc["graphs"] = std::move(graphs);
  return JsonResponse(ready ? 200 : 503, JsonValue(std::move(doc)));
}

HttpResponse SchemaServer::HandleAlerts(const GraphHost& host) const {
  const obs::AlertEngine* alerts = host.alerts();
  if (alerts == nullptr) {
    return ErrorResponse(404, "graph '" + host.graph_name() +
                                  "' runs without --alert-rules");
  }
  HttpResponse resp = JsonResponse(200, alerts->ToJson());
  resp.headers["x-pghive-epoch"] =
      std::to_string(host.Current()->epoch);
  return resp;
}

void SchemaServer::LogAccess(const HttpRequest& request,
                             const HttpResponse& response,
                             const std::string& trace_id,
                             const std::string& graph, double seconds) {
  JsonObject record;
  record["ts_us"] = WallClockMicros();
  record["method"] = request.method;
  record["path"] = request.path;
  record["status"] = response.status;
  record["seconds"] = seconds;
  if (!trace_id.empty()) record["trace"] = trace_id;
  if (!graph.empty()) record["graph"] = graph;
  const std::string line = JsonValue(std::move(record)).Dump();
  PGHIVE_LOG(kDebug) << "access " << line;
  if (access_log_.is_open()) {
    std::lock_guard<std::mutex> lock(access_log_mu_);
    access_log_ << line << '\n';
    access_log_.flush();
  }
}

HttpResponse SchemaServer::HandleListGraphs() const {
  JsonArray graphs;
  for (const auto& [name, host] : hosts_) {
    const std::shared_ptr<const EpochSnapshot> snap = host->Current();
    JsonObject g;
    g["name"] = name;
    g["epoch"] = static_cast<int64_t>(snap->epoch);
    g["node_types"] = snap->node_types;
    g["edge_types"] = snap->edge_types;
    graphs.emplace_back(std::move(g));
  }
  JsonObject doc;
  doc["graphs"] = std::move(graphs);
  return JsonResponse(200, JsonValue(std::move(doc)));
}

HttpResponse SchemaServer::HandleGraphDetail(const GraphHost& host) const {
  const std::shared_ptr<const EpochSnapshot> snap = host.Current();
  JsonObject doc;
  doc["name"] = host.graph_name();
  doc["state_dir"] = host.state_dir();
  doc["epoch"] = static_cast<int64_t>(snap->epoch);
  doc["node_types"] = snap->node_types;
  doc["edge_types"] = snap->edge_types;
  doc["graph_nodes"] = snap->graph_nodes;
  doc["graph_edges"] = snap->graph_edges;
  doc["queue_depth"] = host.queue_depth();
  const Status writer = host.writer_status();
  doc["writer_ok"] = writer.ok();
  if (!writer.ok()) doc["writer_error"] = writer.ToString();
  Result<JsonValue> diag = ParseJson(snap->diagnostics_json);
  doc["diagnostics"] = diag.ok() ? std::move(*diag) : JsonValue();
  return JsonResponse(200, JsonValue(std::move(doc)));
}

HttpResponse SchemaServer::HandleSchema(
    const GraphHost& host, const std::map<std::string, std::string>& query) {
  std::shared_ptr<const EpochSnapshot> snap;
  const auto it = query.find("epoch");
  if (it != query.end()) {
    char* end = nullptr;
    const unsigned long long epoch = std::strtoull(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0') {
      return ErrorResponse(400, "epoch must be a non-negative integer");
    }
    snap = host.AtEpoch(epoch);
    if (snap == nullptr) {
      return ErrorResponse(404, "epoch " + it->second +
                                    " is not retained (current is " +
                                    std::to_string(host.Current()->epoch) +
                                    ")");
    }
  } else {
    snap = host.Current();
  }
  HttpResponse resp;
  resp.status = 200;
  resp.headers["content-type"] = kJsonType;
  resp.headers["x-pghive-epoch"] = std::to_string(snap->epoch);
  resp.body = snap->schema_json;  // verbatim: the discover --format json bytes
  return resp;
}

HttpResponse SchemaServer::HandleDrift(
    const GraphHost& host, const std::map<std::string, std::string>& query) {
  uint64_t since = 0;
  const auto since_it = query.find("since");
  if (since_it != query.end()) {
    char* end = nullptr;
    since = std::strtoull(since_it->second.c_str(), &end, 10);
    if (end == since_it->second.c_str() || *end != '\0') {
      return ErrorResponse(400, "since must be a non-negative integer");
    }
  }
  std::shared_ptr<const EpochSnapshot> snap;
  const auto wait_it = query.find("wait");
  if (wait_it != query.end() && wait_it->second != "0") {
    // Long-poll: block until an epoch above `since` publishes, capped so a
    // quiet graph answers (unchanged) instead of tying the worker up.
    snap = host.WaitForEpochAbove(
        since, std::chrono::milliseconds(options_.long_poll_timeout_ms));
  } else {
    snap = host.Current();
  }
  if (snap->drift == nullptr) {
    return ErrorResponse(404, "graph '" + host.graph_name() +
                                  "' runs with drift tracking off");
  }
  JsonValue body = drift::DriftToJson(*snap->drift, since);
  if (host.alerts() != nullptr) {
    // Only with an alert engine configured: the rule-free body stays
    // byte-identical to `pghive drift` output.
    JsonArray firing;
    for (const std::string& rule : snap->alerts_firing) {
      firing.emplace_back(rule);
    }
    body.MutableObject()["alerts_firing"] = std::move(firing);
  }
  HttpResponse resp = JsonResponse(200, body);
  resp.headers["x-pghive-epoch"] = std::to_string(snap->epoch);
  return resp;
}

HttpResponse SchemaServer::HandleIngest(GraphHost* host,
                                        const HttpRequest& request,
                                        const std::string& trace_id) {
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_) return ErrorResponse(503, "server is draining");
  }
  Result<store::BatchPayload> batch = [&]() -> Result<store::BatchPayload> {
    obs::ScopedSpan parse_span("serve.parse");
    if (parse_span.recording()) {
      parse_span.AddAttr("bytes", static_cast<uint64_t>(request.body.size()));
    }
    Result<JsonValue> doc = ParseJson(request.body);
    if (!doc.ok()) {
      return Status::ParseError("invalid JSON body: " +
                                doc.status().message());
    }
    return BatchFromJson(*doc);
  }();
  if (!batch.ok()) {
    return ErrorResponse(400, batch.status().message());
  }
  const GraphHost::SubmitResult submitted =
      host->Submit(std::move(*batch), trace_id);
  switch (submitted.admission) {
    case GraphHost::Admission::kAccepted: {
      JsonObject out;
      out["graph"] = host->graph_name();
      out["batch_id"] = static_cast<int64_t>(submitted.batch_id);
      out["queue_depth"] = submitted.queue_depth;
      return JsonResponse(202, JsonValue(std::move(out)));
    }
    case GraphHost::Admission::kQueueFull: {
      HttpResponse resp = ErrorResponse(
          429, "ingest queue full (depth " +
                   std::to_string(submitted.queue_depth) + "); retry later");
      resp.headers["retry-after"] =
          std::to_string(options_.retry_after_seconds);
      return resp;
    }
    case GraphHost::Admission::kStopping:
      return ErrorResponse(503, "graph is draining");
    case GraphHost::Admission::kWriterFailed:
      return ErrorResponse(500,
                           "writer failed: " + host->writer_status().ToString());
  }
  return ErrorResponse(500, "unreachable");
}

HttpResponse SchemaServer::HandleMetrics(
    const std::map<std::string, std::string>& query) const {
  obs::MetricsFormat format = options_.metrics_format;
  const auto it = query.find("format");
  if (it != query.end()) {
    Result<obs::MetricsFormat> parsed = obs::ParseMetricsFormat(it->second);
    if (!parsed.ok()) return ErrorResponse(400, parsed.status().message());
    format = *parsed;
  }
  // Scrape-time pass over metric alert rules, so thresholds on gauges that
  // only move between batches (queue depth under a stalled writer) fire
  // without waiting for the next epoch; the freshest gauges land in the
  // same scrape.
  for (const auto& [name, host] : hosts_) {
    obs::AlertEngine* alerts = host->alerts();
    if (alerts == nullptr) continue;
    alerts->EvaluateMetricRules(host->current_epoch(),
                                obs::MetricsRegistry::Global().Snapshot());
    alerts->PublishGauges(name);
  }
  HttpResponse resp;
  resp.status = 200;
  resp.headers["content-type"] = obs::MetricsFormatContentType(format);
  resp.body =
      format == obs::MetricsFormat::kPrometheus
          ? obs::MetricsToPrometheus(obs::MetricsRegistry::Global().Snapshot())
          : obs::MetricsToJsonl(obs::MetricsRegistry::Global().Snapshot(), {});
  return resp;
}

}  // namespace serve
}  // namespace pghive
