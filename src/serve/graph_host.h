// One served graph: a DurableDiscoverer behind a bounded ingest queue and a
// single writer thread, publishing immutable epoch snapshots after every
// applied batch.
//
// Threading model (RCU-flavored):
//
//   * Exactly one writer thread per host pops batches off the queue, feeds
//     them through the durable store (journal-then-apply), renders the
//     post-processed schema of the new state, and publishes it as an
//     EpochSnapshot by swapping a shared_ptr under a mutex held only for
//     the pointer assignment.
//   * Any number of reader threads call Current()/AtEpoch(); they copy the
//     shared_ptr under that same tiny mutex and then read the immutable
//     snapshot without any lock. Readers never wait on ingestion — the
//     snapshot mutex is never held across Feed, journal I/O or
//     post-processing.
//   * Producers call Submit(); admission is O(1) against the bounded queue
//     and never blocks: a full queue is reported as kQueueFull so the HTTP
//     layer can answer 429 + Retry-After (backpressure by rejection, not by
//     holding connections hostage).
//
// Epochs are the store's applied-batch count, so they are monotone and every
// published snapshot equals the schema a one-shot run over the same batch
// prefix would produce (IncrementalDiscoverer::FinishedCopy — the engine
// itself is never post-processed in place, keeping the durable state on the
// exact uninterrupted-run path).

#ifndef PGHIVE_SERVE_GRAPH_HOST_H_
#define PGHIVE_SERVE_GRAPH_HOST_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "drift/drift_tracker.h"
#include "obs/alerts.h"
#include "obs/metrics.h"
#include "store/state_store.h"

namespace pghive {
namespace serve {

/// Immutable view of one graph's discovery state at a batch boundary.
/// Published once, never mutated — safe to read from any thread without
/// synchronization once obtained.
struct EpochSnapshot {
  uint64_t epoch = 0;        // durable store's applied-batch count
  std::string schema_json;   // SchemaToJson of the post-processed schema
  size_t node_types = 0;
  size_t edge_types = 0;
  size_t graph_nodes = 0;    // accumulated graph size at this epoch
  size_t graph_edges = 0;
  std::string diagnostics_json;  // compact JSON: last-batch pipeline stats
  /// Batches applied since the store's last checkpoint (the "checkpoint
  /// age" /readyz reports).
  uint64_t batches_since_checkpoint = 0;
  /// Names of alert rules firing as of this epoch, sorted; empty when the
  /// host runs without an alert-rule file. Snapshotting them here lets
  /// /drift?wait=1 long-pollers learn about fired rules from the same
  /// publish that woke them.
  std::vector<std::string> alerts_firing;
  /// Drift state frozen at this epoch (copy of the store's tracker; null
  /// when the store runs with drift tracking off). Immutable like the rest
  /// of the snapshot — the /drift endpoint renders it with any `since`.
  std::shared_ptr<const drift::DriftTracker> drift;
};

struct GraphHostOptions {
  store::StoreOptions store;
  /// Submitted-but-not-applied batches the queue admits before rejecting.
  size_t queue_capacity = 64;
  /// Recent epochs kept addressable via AtEpoch() beyond the current one.
  size_t retain_epochs = 8;
  /// Alert-rule file (obs/alerts.h grammar); empty = no alert engine.
  /// Rules are evaluated on the writer thread at every batch boundary, and
  /// firing state is persisted in `<state_dir>/alerts-state.json` so a
  /// restart resumes mid-incident instead of silently resolving.
  std::string alert_rules_path;
};

class GraphHost {
 public:
  enum class Admission {
    kAccepted,      // queued; will be applied in submission order
    kQueueFull,     // backpressure: retry after the writer catches up
    kStopping,      // host is draining, no new work
    kWriterFailed,  // writer thread hit a persistent store error
  };

  struct SubmitResult {
    Admission admission = Admission::kAccepted;
    uint64_t batch_id = 0;    // epoch this batch will publish once applied
    size_t queue_depth = 0;   // depth after this submission attempt
  };

  /// Opens (or recovers) the state directory and starts the writer thread.
  /// The initial epoch — whatever recovery restored, possibly 0 — is
  /// published before this returns, so readers never observe "no snapshot".
  static Result<std::unique_ptr<GraphHost>> Open(const std::string& name,
                                                 const std::string& state_dir,
                                                 GraphHostOptions options);

  /// Drains and joins the writer (see Drain()).
  ~GraphHost();
  GraphHost(const GraphHost&) = delete;
  GraphHost& operator=(const GraphHost&) = delete;

  const std::string& graph_name() const { return name_; }
  const std::string& state_dir() const { return state_dir_; }

  /// Non-blocking admission into the writer queue. `trace_id` (optional)
  /// travels with the batch so the writer thread's queue-wait/apply spans
  /// can be joined to the HTTP request that enqueued it.
  SubmitResult Submit(store::BatchPayload batch, std::string trace_id = {});

  /// The alert engine, or null when no rule file is configured.
  obs::AlertEngine* alerts() const { return alerts_.get(); }

  /// The newest published snapshot. Never null after Open().
  std::shared_ptr<const EpochSnapshot> Current() const;

  /// A retained snapshot by exact epoch; null when that epoch has been
  /// evicted from the retention ring (or never existed yet).
  std::shared_ptr<const EpochSnapshot> AtEpoch(uint64_t epoch) const;

  /// Long-poll primitive: blocks until a snapshot with epoch > `epoch` is
  /// published or `timeout` elapses, then returns the newest snapshot
  /// (which may still be at `epoch` on timeout). Never returns null after
  /// Open().
  std::shared_ptr<const EpochSnapshot> WaitForEpochAbove(
      uint64_t epoch, std::chrono::milliseconds timeout) const;

  /// Stops admission, lets the writer apply everything already queued,
  /// joins it, and checkpoints the store so restart recovers instantly.
  /// Idempotent; returns the writer's terminal status.
  Status Drain();

  size_t queue_depth() const;

  /// OK while the writer is healthy; the store error that stopped it
  /// otherwise (subsequent Submits return kWriterFailed).
  Status writer_status() const;

  /// Epoch of the newest published snapshot.
  uint64_t current_epoch() const { return Current()->epoch; }

  /// Test hook: freezes the writer between batches so tests can fill the
  /// queue deterministically and observe 429s.
  void PauseWriterForTest(bool paused);

 private:
  GraphHost(std::string name, std::string state_dir, GraphHostOptions options);

  /// A queued batch plus the request context that submitted it: the trace
  /// id for cross-thread span stitching and the enqueue timestamp the
  /// writer turns into a serve.queue_wait span.
  struct QueuedBatch {
    store::BatchPayload payload;
    std::string trace_id;
    uint64_t enqueue_ns = 0;
  };

  void WriterLoop();
  /// Renders and publishes the store's current state as a new snapshot.
  void PublishSnapshot();
  /// Writer-thread-only: runs drift + metric alert rules against the epoch
  /// just applied and persists state on any transition.
  void EvaluateAlerts(uint64_t epoch);

  const std::string name_;
  const std::string state_dir_;
  const GraphHostOptions options_;
  std::unique_ptr<store::DurableDiscoverer> store_;  // writer thread only
                                                     // (after Open publishes
                                                     // the initial epoch)
  std::unique_ptr<obs::AlertEngine> alerts_;  // engine itself is thread-safe

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<QueuedBatch> queue_;
  bool stopping_ = false;
  bool paused_ = false;
  Status writer_status_;          // guarded by queue_mu_
  uint64_t next_batch_id_ = 0;    // store epoch the next admitted batch gets

  mutable std::mutex snapshot_mu_;  // held only for shared_ptr copy/swap
  mutable std::condition_variable snapshot_cv_;  // signaled per publish
  std::shared_ptr<const EpochSnapshot> current_;
  std::deque<std::shared_ptr<const EpochSnapshot>> recent_;

  std::thread writer_;
  bool drained_ = false;  // guarded by queue_mu_

  obs::Gauge* queue_depth_gauge_;  // pghive.serve.queue_depth.<name>
};

}  // namespace serve
}  // namespace pghive

#endif  // PGHIVE_SERVE_GRAPH_HOST_H_
