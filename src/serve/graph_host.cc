#include "serve/graph_host.h"

#include <utility>

#include "common/csv.h"
#include "common/json.h"
#include "common/logging.h"
#include "core/schema_json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/fs_util.h"

namespace pghive {
namespace serve {

namespace {

obs::Counter* AdmittedCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "pghive.serve.batches_admitted");
  return c;
}

obs::Counter* RejectedCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "pghive.serve.batches_rejected");
  return c;
}

obs::Counter* EpochsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "pghive.serve.epochs_published");
  return c;
}

std::string AlertStatePath(const std::string& state_dir) {
  return state_dir + "/alerts-state.json";
}

}  // namespace

GraphHost::GraphHost(std::string name, std::string state_dir,
                     GraphHostOptions options)
    : name_(std::move(name)),
      state_dir_(std::move(state_dir)),
      options_(std::move(options)),
      queue_depth_gauge_(obs::MetricsRegistry::Global().GetGauge(
          "pghive.serve.queue_depth." + name_)) {}

Result<std::unique_ptr<GraphHost>> GraphHost::Open(const std::string& name,
                                                   const std::string& state_dir,
                                                   GraphHostOptions options) {
  std::unique_ptr<GraphHost> host(
      new GraphHost(name, state_dir, std::move(options)));
  PGHIVE_ASSIGN_OR_RETURN(
      host->store_,
      store::DurableDiscoverer::OpenOrRecover(state_dir, host->options_.store));
  host->next_batch_id_ = host->store_->batches_applied() + 1;
  if (!host->options_.alert_rules_path.empty()) {
    PGHIVE_ASSIGN_OR_RETURN(
        std::vector<obs::AlertRule> rules,
        obs::LoadAlertRules(host->options_.alert_rules_path));
    host->alerts_ = std::make_unique<obs::AlertEngine>(std::move(rules));
    // A missing state file is a fresh start, not an error; a corrupt one is.
    Result<std::string> state = ReadFile(AlertStatePath(state_dir));
    if (state.ok()) {
      PGHIVE_RETURN_NOT_OK(host->alerts_->RestoreState(*state));
    }
    host->alerts_->PublishGauges(host->name_);
  }
  // Publish the recovered (or empty) state before any reader or writer can
  // run: Current() is total from the first instant.
  host->PublishSnapshot();
  host->writer_ = std::thread([h = host.get()] { h->WriterLoop(); });
  return host;
}

GraphHost::~GraphHost() { Drain(); }

GraphHost::SubmitResult GraphHost::Submit(store::BatchPayload batch,
                                          std::string trace_id) {
  SubmitResult result;
  QueuedBatch entry;
  entry.payload = std::move(batch);
  entry.trace_id = std::move(trace_id);
  // Stamped before admission so the queue-wait span includes lock time.
  // Clock read only when tracing — the enqueue path stays free otherwise.
  entry.enqueue_ns = obs::TraceEnabled() ? obs::TraceNowNs() : 0;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    result.queue_depth = queue_.size();
    if (stopping_) {
      result.admission = Admission::kStopping;
    } else if (!writer_status_.ok()) {
      result.admission = Admission::kWriterFailed;
    } else if (queue_.size() >= options_.queue_capacity) {
      result.admission = Admission::kQueueFull;
    } else {
      queue_.push_back(std::move(entry));
      result.admission = Admission::kAccepted;
      result.batch_id = next_batch_id_++;
      result.queue_depth = queue_.size();
    }
  }
  if (result.admission == Admission::kAccepted) {
    AdmittedCounter()->Add(1);
    queue_depth_gauge_->Set(static_cast<int64_t>(result.queue_depth));
    queue_cv_.notify_all();
  } else {
    RejectedCounter()->Add(1);
  }
  return result;
}

std::shared_ptr<const EpochSnapshot> GraphHost::Current() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return current_;
}

std::shared_ptr<const EpochSnapshot> GraphHost::AtEpoch(uint64_t epoch) const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  for (const auto& snap : recent_) {
    if (snap->epoch == epoch) return snap;
  }
  return nullptr;
}

std::shared_ptr<const EpochSnapshot> GraphHost::WaitForEpochAbove(
    uint64_t epoch, std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(snapshot_mu_);
  snapshot_cv_.wait_for(lock, timeout, [&] {
    return current_ != nullptr && current_->epoch > epoch;
  });
  return current_;
}

size_t GraphHost::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return queue_.size();
}

Status GraphHost::writer_status() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return writer_status_;
}

void GraphHost::PauseWriterForTest(bool paused) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    paused_ = paused;
  }
  queue_cv_.notify_all();
}

Status GraphHost::Drain() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (drained_) return writer_status_;
    drained_ = true;
    stopping_ = true;
    paused_ = false;  // a paused writer must still finish its queue
  }
  queue_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
  Status status;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    status = writer_status_;
  }
  if (status.ok() && store_ != nullptr) {
    status = store_->Checkpoint();
    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(queue_mu_);
      writer_status_ = status;
    }
  }
  return status;
}

void GraphHost::WriterLoop() {
  for (;;) {
    QueuedBatch batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return (!queue_.empty() && !paused_) || (stopping_ && queue_.empty());
      });
      if (queue_.empty()) return;  // stopping_ && drained queue
      if (!writer_status_.ok()) {
        // A failed store must not see further batches; drop the backlog so
        // Drain() can join without applying on top of an error.
        queue_.clear();
        queue_depth_gauge_->Set(0);
        return;
      }
      batch = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_gauge_->Set(static_cast<int64_t>(queue_.size()));
    }
    if (obs::TraceEnabled() && batch.enqueue_ns != 0) {
      // The cross-thread leg of the request: enqueue stamped by the HTTP
      // worker, dequeue on this thread. EmitSpan lands it in this thread's
      // buffer, joined back to the request by the trace attribute.
      const uint64_t now = obs::TraceNowNs();
      obs::EmitSpan(
          "serve.queue_wait", batch.enqueue_ns,
          now > batch.enqueue_ns ? now - batch.enqueue_ns : 0,
          {{"graph", name_}, {"trace", batch.trace_id}});
    }
    Status status;
    {
      obs::ScopedSpan apply_span("serve.apply");
      if (apply_span.recording()) {
        apply_span.AddAttr("graph", name_);
        apply_span.AddAttr("trace", batch.trace_id);
      }
      // store.feed (journal + apply children) nests under serve.apply via
      // the writer thread's span stack.
      status = store_->Feed(batch.payload);
    }
    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(queue_mu_);
      writer_status_ = status;
      queue_.clear();
      queue_depth_gauge_->Set(0);
      return;
    }
    EvaluateAlerts(store_->batches_applied());
    PublishSnapshot();
  }
}

void GraphHost::EvaluateAlerts(uint64_t epoch) {
  if (alerts_ == nullptr) return;
  // The tracker records an entry for `epoch` only when its diff was
  // non-empty; a clean epoch still advances drift-rule resolve counters.
  const SchemaDiff* diff = nullptr;
  if (options_.store.track_drift) {
    const auto& history = store_->drift_tracker().history();
    if (!history.empty() && history.back().epoch == epoch) {
      diff = &history.back().diff;
    }
  }
  const bool changed = alerts_->ObserveEpoch(
      epoch, diff, obs::MetricsRegistry::Global().Snapshot());
  alerts_->PublishGauges(name_);
  if (changed) {
    const Status persisted = store::AtomicWriteFile(
        AlertStatePath(state_dir_), alerts_->SerializeState());
    if (!persisted.ok()) {
      PGHIVE_LOG(kWarning) << "graph " << name_
                        << ": alert state not persisted: "
                        << persisted.ToString();
    }
    for (const std::string& rule : alerts_->FiringNames()) {
      PGHIVE_LOG(kInfo) << "graph " << name_ << " epoch " << epoch
                        << ": alert firing: " << rule;
    }
  }
}

void GraphHost::PublishSnapshot() {
  obs::ScopedSpan span("serve.snapshot_publish");
  if (span.recording()) span.AddAttr("graph", name_);
  auto snap = std::make_shared<EpochSnapshot>();
  snap->epoch = store_->batches_applied();
  snap->schema_json = SchemaToJson(store_->PostProcessedSchema());
  const SchemaGraph& schema = store_->schema();
  snap->node_types = schema.node_types.size();
  snap->edge_types = schema.edge_types.size();
  snap->graph_nodes = store_->graph().num_nodes();
  snap->graph_edges = store_->graph().num_edges();
  snap->batches_since_checkpoint = store_->batches_since_checkpoint();
  if (alerts_ != nullptr) snap->alerts_firing = alerts_->FiringNames();
  if (options_.store.track_drift) {
    snap->drift =
        std::make_shared<const drift::DriftTracker>(store_->drift_tracker());
  }
  {
    const BatchDiagnostics& d = store_->engine().last_diagnostics();
    JsonObject diag;
    diag["epoch"] = static_cast<int64_t>(snap->epoch);
    diag["graph_nodes"] = snap->graph_nodes;
    diag["graph_edges"] = snap->graph_edges;
    diag["node_clusters"] = d.node_clusters;
    diag["edge_clusters"] = d.edge_clusters;
    const std::vector<double>& seconds = store_->batch_seconds();
    diag["last_batch_seconds"] = seconds.empty() ? 0.0 : seconds.back();
    snap->diagnostics_json = JsonValue(std::move(diag)).Dump();
  }
  std::shared_ptr<const EpochSnapshot> published = std::move(snap);
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    current_ = published;
    recent_.push_back(published);
    while (recent_.size() > options_.retain_epochs + 1) {
      recent_.pop_front();
    }
  }
  snapshot_cv_.notify_all();
  EpochsCounter()->Add(1);
}

}  // namespace serve
}  // namespace pghive
