#include "serve/graph_host.h"

#include <utility>

#include "common/json.h"
#include "core/schema_json.h"
#include "obs/metrics.h"

namespace pghive {
namespace serve {

namespace {

obs::Counter* AdmittedCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "pghive.serve.batches_admitted");
  return c;
}

obs::Counter* RejectedCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "pghive.serve.batches_rejected");
  return c;
}

obs::Counter* EpochsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "pghive.serve.epochs_published");
  return c;
}

}  // namespace

GraphHost::GraphHost(std::string name, std::string state_dir,
                     GraphHostOptions options)
    : name_(std::move(name)),
      state_dir_(std::move(state_dir)),
      options_(std::move(options)),
      queue_depth_gauge_(obs::MetricsRegistry::Global().GetGauge(
          "pghive.serve.queue_depth." + name_)) {}

Result<std::unique_ptr<GraphHost>> GraphHost::Open(const std::string& name,
                                                   const std::string& state_dir,
                                                   GraphHostOptions options) {
  std::unique_ptr<GraphHost> host(
      new GraphHost(name, state_dir, std::move(options)));
  PGHIVE_ASSIGN_OR_RETURN(
      host->store_,
      store::DurableDiscoverer::OpenOrRecover(state_dir, host->options_.store));
  host->next_batch_id_ = host->store_->batches_applied() + 1;
  // Publish the recovered (or empty) state before any reader or writer can
  // run: Current() is total from the first instant.
  host->PublishSnapshot();
  host->writer_ = std::thread([h = host.get()] { h->WriterLoop(); });
  return host;
}

GraphHost::~GraphHost() { Drain(); }

GraphHost::SubmitResult GraphHost::Submit(store::BatchPayload batch) {
  SubmitResult result;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    result.queue_depth = queue_.size();
    if (stopping_) {
      result.admission = Admission::kStopping;
    } else if (!writer_status_.ok()) {
      result.admission = Admission::kWriterFailed;
    } else if (queue_.size() >= options_.queue_capacity) {
      result.admission = Admission::kQueueFull;
    } else {
      queue_.push_back(std::move(batch));
      result.admission = Admission::kAccepted;
      result.batch_id = next_batch_id_++;
      result.queue_depth = queue_.size();
    }
  }
  if (result.admission == Admission::kAccepted) {
    AdmittedCounter()->Add(1);
    queue_depth_gauge_->Set(static_cast<int64_t>(result.queue_depth));
    queue_cv_.notify_all();
  } else {
    RejectedCounter()->Add(1);
  }
  return result;
}

std::shared_ptr<const EpochSnapshot> GraphHost::Current() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return current_;
}

std::shared_ptr<const EpochSnapshot> GraphHost::AtEpoch(uint64_t epoch) const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  for (const auto& snap : recent_) {
    if (snap->epoch == epoch) return snap;
  }
  return nullptr;
}

std::shared_ptr<const EpochSnapshot> GraphHost::WaitForEpochAbove(
    uint64_t epoch, std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(snapshot_mu_);
  snapshot_cv_.wait_for(lock, timeout, [&] {
    return current_ != nullptr && current_->epoch > epoch;
  });
  return current_;
}

size_t GraphHost::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return queue_.size();
}

Status GraphHost::writer_status() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return writer_status_;
}

void GraphHost::PauseWriterForTest(bool paused) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    paused_ = paused;
  }
  queue_cv_.notify_all();
}

Status GraphHost::Drain() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (drained_) return writer_status_;
    drained_ = true;
    stopping_ = true;
    paused_ = false;  // a paused writer must still finish its queue
  }
  queue_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
  Status status;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    status = writer_status_;
  }
  if (status.ok() && store_ != nullptr) {
    status = store_->Checkpoint();
    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(queue_mu_);
      writer_status_ = status;
    }
  }
  return status;
}

void GraphHost::WriterLoop() {
  for (;;) {
    store::BatchPayload batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return (!queue_.empty() && !paused_) || (stopping_ && queue_.empty());
      });
      if (queue_.empty()) return;  // stopping_ && drained queue
      if (!writer_status_.ok()) {
        // A failed store must not see further batches; drop the backlog so
        // Drain() can join without applying on top of an error.
        queue_.clear();
        queue_depth_gauge_->Set(0);
        return;
      }
      batch = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_gauge_->Set(static_cast<int64_t>(queue_.size()));
    }
    const Status status = store_->Feed(batch);
    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(queue_mu_);
      writer_status_ = status;
      queue_.clear();
      queue_depth_gauge_->Set(0);
      return;
    }
    PublishSnapshot();
  }
}

void GraphHost::PublishSnapshot() {
  auto snap = std::make_shared<EpochSnapshot>();
  snap->epoch = store_->batches_applied();
  snap->schema_json = SchemaToJson(store_->PostProcessedSchema());
  const SchemaGraph& schema = store_->schema();
  snap->node_types = schema.node_types.size();
  snap->edge_types = schema.edge_types.size();
  snap->graph_nodes = store_->graph().num_nodes();
  snap->graph_edges = store_->graph().num_edges();
  if (options_.store.track_drift) {
    snap->drift =
        std::make_shared<const drift::DriftTracker>(store_->drift_tracker());
  }
  {
    const BatchDiagnostics& d = store_->engine().last_diagnostics();
    JsonObject diag;
    diag["epoch"] = static_cast<int64_t>(snap->epoch);
    diag["graph_nodes"] = snap->graph_nodes;
    diag["graph_edges"] = snap->graph_edges;
    diag["node_clusters"] = d.node_clusters;
    diag["edge_clusters"] = d.edge_clusters;
    const std::vector<double>& seconds = store_->batch_seconds();
    diag["last_batch_seconds"] = seconds.empty() ? 0.0 : seconds.back();
    snap->diagnostics_json = JsonValue(std::move(diag)).Dump();
  }
  std::shared_ptr<const EpochSnapshot> published = std::move(snap);
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    current_ = published;
    recent_.push_back(published);
    while (recent_.size() > options_.retain_epochs + 1) {
      recent_.pop_front();
    }
  }
  snapshot_cv_.notify_all();
  EpochsCounter()->Add(1);
}

}  // namespace serve
}  // namespace pghive
