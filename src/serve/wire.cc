#include "serve/wire.h"

#include <cmath>
#include <cstdlib>

namespace pghive {
namespace serve {

namespace {

Result<Value> TypedValueFromJson(const JsonValue& j) {
  PGHIVE_ASSIGN_OR_RETURN(std::string type, j.GetString("type"));
  PGHIVE_ASSIGN_OR_RETURN(std::string text, j.GetString("text"));
  if (type == DataTypeGqlName(DataType::kInt)) {
    return Value::Int(std::strtoll(text.c_str(), nullptr, 10));
  }
  if (type == DataTypeGqlName(DataType::kDouble)) {
    return Value::Double(std::strtod(text.c_str(), nullptr));
  }
  if (type == DataTypeGqlName(DataType::kBool)) {
    return Value::Bool(text == "true");
  }
  if (type == DataTypeGqlName(DataType::kDate)) {
    return Value::Date(std::move(text));
  }
  if (type == DataTypeGqlName(DataType::kTimestamp)) {
    return Value::Timestamp(std::move(text));
  }
  if (type == DataTypeGqlName(DataType::kString)) {
    return Value::String(std::move(text));
  }
  return Status::InvalidArgument("unknown value type '" + type + "'");
}

Result<std::set<std::string>> LabelsFromJson(const JsonValue& element) {
  std::set<std::string> labels;
  const JsonValue& arr = element["labels"];
  if (arr.is_null()) return labels;  // unlabeled elements are legal
  if (!arr.is_array()) {
    return Status::InvalidArgument("'labels' must be an array of strings");
  }
  for (const JsonValue& l : arr.AsArray()) {
    if (!l.is_string()) {
      return Status::InvalidArgument("'labels' must be an array of strings");
    }
    labels.insert(l.AsString());
  }
  return labels;
}

Result<std::map<std::string, Value>> PropertiesFromJson(
    const JsonValue& element) {
  std::map<std::string, Value> properties;
  const JsonValue& obj = element["properties"];
  if (obj.is_null()) return properties;
  if (!obj.is_object()) {
    return Status::InvalidArgument("'properties' must be an object");
  }
  for (const auto& [key, value] : obj.AsObject()) {
    PGHIVE_ASSIGN_OR_RETURN(Value v, ValueFromJson(value));
    properties.emplace(key, std::move(v));
  }
  return properties;
}

JsonObject ElementToJson(const std::set<std::string>& labels,
                         const std::map<std::string, Value>& properties,
                         const std::string& truth_type) {
  JsonObject out;
  JsonArray label_arr;
  for (const std::string& l : labels) label_arr.emplace_back(l);
  out["labels"] = std::move(label_arr);
  JsonObject props;
  for (const auto& [key, value] : properties) {
    props[key] = ValueToJson(value);
  }
  out["properties"] = std::move(props);
  if (!truth_type.empty()) out["truth"] = truth_type;
  return out;
}

}  // namespace

JsonValue ValueToJson(const Value& v) {
  JsonObject out;
  out["type"] = DataTypeGqlName(v.type());
  out["text"] = v.ToText();
  return JsonValue(std::move(out));
}

Result<Value> ValueFromJson(const JsonValue& j) {
  switch (j.kind()) {
    case JsonValue::Kind::kObject:
      return TypedValueFromJson(j);
    case JsonValue::Kind::kString:
      // Same lexical typing as a CSV cell.
      return ParseValue(j.AsString());
    case JsonValue::Kind::kNumber: {
      const double d = j.AsDouble();
      if (std::nearbyint(d) == d && std::abs(d) < 9.0e15) {
        return Value::Int(static_cast<int64_t>(d));
      }
      return Value::Double(d);
    }
    case JsonValue::Kind::kBool:
      return Value::Bool(j.AsBool());
    case JsonValue::Kind::kNull:
      return Value();
    case JsonValue::Kind::kArray:
      break;
  }
  return Status::InvalidArgument("property values must be scalars or the "
                                 "typed {\"type\":..,\"text\":..} form");
}

JsonValue BatchToJson(const store::BatchPayload& batch) {
  JsonObject doc;
  JsonArray nodes;
  nodes.reserve(batch.nodes.size());
  for (const NodeData& n : batch.nodes) {
    nodes.emplace_back(ElementToJson(n.labels, n.properties, n.truth_type));
  }
  doc["nodes"] = std::move(nodes);
  JsonArray edges;
  edges.reserve(batch.edges.size());
  for (const EdgeData& e : batch.edges) {
    JsonObject obj = ElementToJson(e.labels, e.properties, e.truth_type);
    obj["source"] = static_cast<int64_t>(e.source);
    obj["target"] = static_cast<int64_t>(e.target);
    edges.emplace_back(std::move(obj));
  }
  doc["edges"] = std::move(edges);
  const GraphMutations& m = batch.mutations;
  if (!m.delete_nodes.empty()) {
    JsonArray ids;
    ids.reserve(m.delete_nodes.size());
    for (NodeId id : m.delete_nodes) ids.emplace_back(static_cast<int64_t>(id));
    doc["delete_nodes"] = std::move(ids);
  }
  if (!m.delete_edges.empty()) {
    JsonArray ids;
    ids.reserve(m.delete_edges.size());
    for (EdgeId id : m.delete_edges) ids.emplace_back(static_cast<int64_t>(id));
    doc["delete_edges"] = std::move(ids);
  }
  if (!m.update_nodes.empty()) {
    JsonArray updates;
    updates.reserve(m.update_nodes.size());
    for (const NodeUpdate& u : m.update_nodes) {
      JsonObject obj = ElementToJson(u.data.labels, u.data.properties,
                                     u.data.truth_type);
      obj["id"] = static_cast<int64_t>(u.id);
      updates.emplace_back(std::move(obj));
    }
    doc["update_nodes"] = std::move(updates);
  }
  if (!m.update_edges.empty()) {
    JsonArray updates;
    updates.reserve(m.update_edges.size());
    for (const EdgeUpdate& u : m.update_edges) {
      JsonObject obj = ElementToJson(u.data.labels, u.data.properties,
                                     u.data.truth_type);
      obj["id"] = static_cast<int64_t>(u.id);
      obj["source"] = static_cast<int64_t>(u.data.source);
      obj["target"] = static_cast<int64_t>(u.data.target);
      updates.emplace_back(std::move(obj));
    }
    doc["update_edges"] = std::move(updates);
  }
  return JsonValue(std::move(doc));
}

Result<store::BatchPayload> BatchFromJson(const JsonValue& doc) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("batch body must be a JSON object");
  }
  store::BatchPayload batch;
  const JsonValue& nodes = doc["nodes"];
  if (!nodes.is_null()) {
    if (!nodes.is_array()) {
      return Status::InvalidArgument("'nodes' must be an array");
    }
    batch.nodes.reserve(nodes.AsArray().size());
    for (const JsonValue& n : nodes.AsArray()) {
      NodeData node;
      PGHIVE_ASSIGN_OR_RETURN(node.labels, LabelsFromJson(n));
      PGHIVE_ASSIGN_OR_RETURN(node.properties, PropertiesFromJson(n));
      if (n["truth"].is_string()) node.truth_type = n["truth"].AsString();
      batch.nodes.push_back(std::move(node));
    }
  }
  const JsonValue& edges = doc["edges"];
  if (!edges.is_null()) {
    if (!edges.is_array()) {
      return Status::InvalidArgument("'edges' must be an array");
    }
    batch.edges.reserve(edges.AsArray().size());
    for (const JsonValue& e : edges.AsArray()) {
      EdgeData edge;
      PGHIVE_ASSIGN_OR_RETURN(int64_t source, e.GetInt("source"));
      PGHIVE_ASSIGN_OR_RETURN(int64_t target, e.GetInt("target"));
      if (source < 0 || target < 0) {
        return Status::InvalidArgument("edge endpoints must be >= 0");
      }
      edge.source = static_cast<NodeId>(source);
      edge.target = static_cast<NodeId>(target);
      PGHIVE_ASSIGN_OR_RETURN(edge.labels, LabelsFromJson(e));
      PGHIVE_ASSIGN_OR_RETURN(edge.properties, PropertiesFromJson(e));
      if (e["truth"].is_string()) edge.truth_type = e["truth"].AsString();
      batch.edges.push_back(std::move(edge));
    }
  }
  auto parse_ids = [&doc](const char* field,
                          std::vector<uint64_t>* out) -> Status {
    const JsonValue& arr = doc[field];
    if (arr.is_null()) return Status::OK();
    if (!arr.is_array()) {
      return Status::InvalidArgument(std::string("'") + field +
                                     "' must be an array of ids");
    }
    out->reserve(arr.AsArray().size());
    for (const JsonValue& v : arr.AsArray()) {
      if (!v.is_number() || v.AsDouble() < 0 ||
          std::nearbyint(v.AsDouble()) != v.AsDouble()) {
        return Status::InvalidArgument(std::string("'") + field +
                                       "' entries must be non-negative ids");
      }
      out->push_back(static_cast<uint64_t>(v.AsDouble()));
    }
    return Status::OK();
  };
  PGHIVE_RETURN_NOT_OK(
      parse_ids("delete_nodes", &batch.mutations.delete_nodes));
  PGHIVE_RETURN_NOT_OK(
      parse_ids("delete_edges", &batch.mutations.delete_edges));
  const JsonValue& node_updates = doc["update_nodes"];
  if (!node_updates.is_null()) {
    if (!node_updates.is_array()) {
      return Status::InvalidArgument("'update_nodes' must be an array");
    }
    batch.mutations.update_nodes.reserve(node_updates.AsArray().size());
    for (const JsonValue& n : node_updates.AsArray()) {
      NodeUpdate u;
      PGHIVE_ASSIGN_OR_RETURN(int64_t id, n.GetInt("id"));
      if (id < 0) {
        return Status::InvalidArgument("'update_nodes' ids must be >= 0");
      }
      u.id = static_cast<NodeId>(id);
      PGHIVE_ASSIGN_OR_RETURN(u.data.labels, LabelsFromJson(n));
      PGHIVE_ASSIGN_OR_RETURN(u.data.properties, PropertiesFromJson(n));
      if (n["truth"].is_string()) u.data.truth_type = n["truth"].AsString();
      batch.mutations.update_nodes.push_back(std::move(u));
    }
  }
  const JsonValue& edge_updates = doc["update_edges"];
  if (!edge_updates.is_null()) {
    if (!edge_updates.is_array()) {
      return Status::InvalidArgument("'update_edges' must be an array");
    }
    batch.mutations.update_edges.reserve(edge_updates.AsArray().size());
    for (const JsonValue& e : edge_updates.AsArray()) {
      EdgeUpdate u;
      PGHIVE_ASSIGN_OR_RETURN(int64_t id, e.GetInt("id"));
      PGHIVE_ASSIGN_OR_RETURN(int64_t source, e.GetInt("source"));
      PGHIVE_ASSIGN_OR_RETURN(int64_t target, e.GetInt("target"));
      if (id < 0 || source < 0 || target < 0) {
        return Status::InvalidArgument(
            "'update_edges' ids and endpoints must be >= 0");
      }
      u.id = static_cast<EdgeId>(id);
      u.data.source = static_cast<NodeId>(source);
      u.data.target = static_cast<NodeId>(target);
      PGHIVE_ASSIGN_OR_RETURN(u.data.labels, LabelsFromJson(e));
      PGHIVE_ASSIGN_OR_RETURN(u.data.properties, PropertiesFromJson(e));
      if (e["truth"].is_string()) u.data.truth_type = e["truth"].AsString();
      batch.mutations.update_edges.push_back(std::move(u));
    }
  }
  return batch;
}

}  // namespace serve
}  // namespace pghive
