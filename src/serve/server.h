// Multi-tenant schema-serving daemon: many named GraphHosts behind one
// HTTP/1.1 listener.
//
// Endpoints (JSON unless noted):
//
//   GET  /healthz                      liveness: {"status":"ok"}
//   GET  /readyz                       readiness: 200 when every graph's
//                                      writer is healthy and its ingest
//                                      queue below capacity, 503 otherwise;
//                                      body lists per-graph writer_ok /
//                                      queue depth + capacity / saturation /
//                                      batches_since_checkpoint
//   GET  /metrics                      registry snapshot. ?format=jsonl
//                                      (default; application/x-ndjson, the
//                                      --metrics-out schema) or
//                                      ?format=prometheus (text/plain;
//                                      version=0.0.4 exposition). The
//                                      default is settable per daemon via
//                                      --metrics-format. Metric alert rules
//                                      are re-evaluated at scrape time.
//   GET  /v1/graphs                    every graph's name + current epoch
//   GET  /v1/graphs/{g}                one graph: epoch, type/graph counts,
//                                      queue depth, last-batch diagnostics
//   GET  /v1/graphs/{g}/schema         current epoch's schema JSON, byte-for-
//                                      byte what `pghive discover --format
//                                      json` prints for the same batches;
//                                      ?epoch=N serves a retained epoch
//                                      (404 once evicted). The served epoch
//                                      is echoed in `x-pghive-epoch`.
//   GET  /v1/graphs/{g}/drift          versioned schema-drift history at the
//                                      current epoch: cumulative counters +
//                                      per-epoch diff records. ?since=N
//                                      filters the history to epochs > N;
//                                      ?wait=1 long-polls until an epoch
//                                      above `since` publishes (or a capped
//                                      timeout elapses — poll again). The
//                                      served epoch is echoed in
//                                      `x-pghive-epoch`; 404 when the store
//                                      runs with drift tracking off. With
//                                      alert rules configured the body
//                                      gains "alerts_firing" (rule names at
//                                      the served epoch), so a woken
//                                      long-poller learns about fired rules
//   GET  /v1/graphs/{g}/alerts         alert-rule engine state: every rule's
//                                      spec + firing/resolved state and
//                                      fire counts; 404 when the graph runs
//                                      without --alert-rules
//   POST /v1/graphs/{g}/batches        ingest one batch (serve/wire.h shape,
//                                      including delete_nodes/delete_edges/
//                                      update_nodes/update_edges mutations)
//                                      202 {"batch_id","queue_depth"} on
//                                      admission; 429 + Retry-After when the
//                                      bounded queue is full; 503 while
//                                      draining; 500 after a writer failure
//
// Request tracing: every request runs under a serve.request root span
// (method/route/status/trace attributes) when tracing is on. The trace id
// is taken from an inbound `x-pghive-trace-id` header when present,
// generated otherwise, and always echoed back in the response's
// `x-pghive-trace-id` (when tracing or access logging is active). Ingest
// forwards the id with the queued batch so the writer thread's
// serve.queue_wait / serve.apply / serve.snapshot_publish spans join the
// request across threads. Per-route latency lands in
// pghive.serve.route_seconds.<route>, per-graph reads additionally in
// pghive.serve.graph_read_seconds.<graph>. With --access-log, one JSONL
// record per request (ts_us/method/path/status/seconds/trace/graph) is
// appended to the file; the same line goes to common/logging at DEBUG.
// Concurrency: one acceptor thread multiplexes accept(2) with a self-pipe
// (RequestStop writes one byte — a single async-signal-safe write(2), so
// SIGINT/SIGTERM handlers may call it directly). Each accepted connection
// becomes a keep-alive loop task on a runtime ThreadPool worker. Reads hit
// only GraphHost epoch snapshots (shared_ptr copy under a mutex held for
// nanoseconds); ingest only enqueues — neither ever waits on the writer
// threads, so reader latency is isolated from ingestion by construction.
//
// Shutdown (Stop, also run by Wait after RequestStop): stop accepting, wake
// workers by shutting down their sockets, join the pool, then Drain every
// host — each applies its queued batches and checkpoints, so a restart
// recovers without journal replay.

#ifndef PGHIVE_SERVE_SERVER_H_
#define PGHIVE_SERVE_SERVER_H_

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "runtime/thread_pool.h"
#include "serve/graph_host.h"
#include "serve/http.h"

namespace pghive {
namespace serve {

struct ServeOptions {
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port (the bound one is readable via port()).
  uint16_t port = 8090;
  /// HTTP worker threads; 0 = hardware concurrency.
  int num_workers = 0;
  /// Request bodies above this are answered 413.
  size_t max_body_bytes = 64ull << 20;
  /// Per-connection socket timeout; a dead peer frees its worker after this.
  int connection_timeout_ms = 30000;
  /// Seconds clients are told to wait after a 429.
  int retry_after_seconds = 1;
  /// Cap on a /drift?wait=1 long-poll; on expiry the current (unchanged)
  /// state is served and the client polls again. Kept well under the
  /// connection timeout so a waiting request never looks like a dead peer.
  int long_poll_timeout_ms = 10000;
  /// Default wire format of GET /metrics (a request's ?format= overrides).
  obs::MetricsFormat metrics_format = obs::MetricsFormat::kJsonl;
  /// JSONL access-log file, appended per request; empty = no access log.
  std::string access_log_path;
  /// Template for every hosted graph's queue/retention/store settings.
  GraphHostOptions graph;
};

class SchemaServer {
 public:
  explicit SchemaServer(ServeOptions options);
  /// Stops and drains if still running.
  ~SchemaServer();
  SchemaServer(const SchemaServer&) = delete;
  SchemaServer& operator=(const SchemaServer&) = delete;

  /// Opens (or recovers) `state_dir` and hosts it as /v1/graphs/{name}.
  /// Callable only before Start(). Fails with AlreadyExists on a duplicate
  /// name or a LOCK held by another live process.
  Status AddGraph(const std::string& name, const std::string& state_dir);

  /// Binds, starts the acceptor and the worker pool. Fails with IoError
  /// when the address is unavailable.
  Status Start();

  /// The bound port (after Start); useful with options.port == 0.
  uint16_t port() const { return port_; }

  /// Async-signal-safe stop trigger: one write(2) to the self-pipe. The
  /// actual teardown happens in Wait()/Stop() on a normal thread.
  void RequestStop();

  /// Blocks until RequestStop (or a fatal acceptor error), then runs the
  /// full Stop() sequence. Returns the first error seen during drain.
  Status Wait();

  /// Idempotent full shutdown: acceptor joined, connections shut down,
  /// workers joined, every host drained + checkpointed.
  Status Stop();

  /// Host lookup for tests and the in-process bench (null if unknown).
  GraphHost* FindGraph(const std::string& name);

  const ServeOptions& options() const { return options_; }

 private:
  void AcceptorLoop();
  void ServeConnection(int fd);
  HttpResponse Route(const HttpRequest& request);

  HttpResponse HandleListGraphs() const;
  HttpResponse HandleGraphDetail(const GraphHost& host) const;
  HttpResponse HandleSchema(const GraphHost& host,
                            const std::map<std::string, std::string>& query);
  HttpResponse HandleDrift(const GraphHost& host,
                           const std::map<std::string, std::string>& query);
  HttpResponse HandleAlerts(const GraphHost& host) const;
  HttpResponse HandleIngest(GraphHost* host, const HttpRequest& request,
                            const std::string& trace_id);
  HttpResponse HandleMetrics(
      const std::map<std::string, std::string>& query) const;
  HttpResponse HandleReady() const;

  /// Appends one JSONL record to the access log (mutex-serialized) and
  /// mirrors it to common/logging at DEBUG.
  void LogAccess(const HttpRequest& request, const HttpResponse& response,
                 const std::string& trace_id, const std::string& graph,
                 double seconds);

  ServeOptions options_;
  std::map<std::string, std::unique_ptr<GraphHost>> hosts_;  // name-sorted

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  int stop_pipe_[2] = {-1, -1};  // [0] polled by acceptor, [1] RequestStop
  std::thread acceptor_;
  std::unique_ptr<ThreadPool> workers_;

  std::mutex access_log_mu_;  // serializes appends to the access-log file
  std::ofstream access_log_;  // opened in Start() when a path is configured

  std::mutex conn_mu_;
  std::set<int> active_fds_;  // connections workers are currently serving
  bool started_ = false;
  bool stopped_ = false;
  bool stopping_ = false;  // set before sockets are shut down (guarded by
                           // conn_mu_; workers answer 503 past this point)
};

}  // namespace serve
}  // namespace pghive

#endif  // PGHIVE_SERVE_SERVER_H_
