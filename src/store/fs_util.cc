#include "store/fs_util.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace pghive {
namespace store {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::IoError(what + " '" + path + "': " + std::strerror(errno));
}

std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

Status AtomicWriteFile(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("cannot create", tmp);
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("write failed on", tmp);
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Errno("fsync failed on", tmp);
  }
  if (::close(fd) != 0) return Errno("close failed on", tmp);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Errno("rename failed onto", path);
  }
  return SyncDir(ParentDir(path));
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("cannot open directory", dir);
  Status status = Status::OK();
  if (::fsync(fd) != 0) status = Errno("fsync failed on directory", dir);
  ::close(fd);
  return status;
}

Status TruncateFile(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Errno("truncate failed on", path);
  }
  return Status::OK();
}

}  // namespace store
}  // namespace pghive
