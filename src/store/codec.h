// Binary codecs for the durable-state snapshot and journal (src/store/).
//
// Each Encode*/Decode* pair round-trips one state component exactly:
// re-encoding a decoded component yields byte-identical output (doubles are
// stored as raw bit patterns, containers in their deterministic iteration
// order). Decoders are bounds-checked and return ParseError on truncated or
// malformed bytes — they never crash on corrupt input.

#ifndef PGHIVE_STORE_CODEC_H_
#define PGHIVE_STORE_CODEC_H_

#include <string>
#include <utility>
#include <vector>

#include "common/binary_io.h"
#include "common/result.h"
#include "core/schema.h"
#include "core/value_stats.h"
#include "graph/property_graph.h"
#include "lsh/adaptive_params.h"

namespace pghive {
namespace store {

// --- Property values and graph elements. ---

void EncodeValue(const Value& v, BinaryWriter* w);
Result<Value> DecodeValue(BinaryReader* r);

void EncodeNode(const Node& n, BinaryWriter* w);
Result<Node> DecodeNode(BinaryReader* r);

void EncodeEdge(const Edge& e, BinaryWriter* w);
Result<Edge> DecodeEdge(BinaryReader* r);

/// Whole graph: node count + nodes, edge count + edges. Decoded elements are
/// re-inserted through AddNode/AddEdge, so dense insertion-order ids are
/// preserved (decode fails if the encoded ids were not dense).
void EncodeGraph(const PropertyGraph& g, BinaryWriter* w);
Result<PropertyGraph> DecodeGraph(BinaryReader* r);

/// One journal batch payload: the node and edge rows of a single
/// incremental batch, in insertion order. Edge endpoints are global NodeIds
/// into the accumulated graph.
void EncodeBatchPayload(const std::vector<Node>& nodes,
                        const std::vector<Edge>& edges, BinaryWriter* w);
struct BatchPayload {
  std::vector<Node> nodes;
  std::vector<Edge> edges;
};
Result<BatchPayload> DecodeBatchPayload(BinaryReader* r);

// --- Discovered schema. ---

void EncodeSchema(const SchemaGraph& schema, BinaryWriter* w);
Result<SchemaGraph> DecodeSchema(BinaryReader* r);

// --- Post-processing statistics and LSH diagnostics. ---

void EncodeValueStats(const SchemaValueStats& stats, BinaryWriter* w);
Result<SchemaValueStats> DecodeValueStats(BinaryReader* r);

void EncodeAdaptiveParams(const AdaptiveLshParams& p, BinaryWriter* w);
Result<AdaptiveLshParams> DecodeAdaptiveParams(BinaryReader* r);

// --- Small shared helpers (exposed for tests). ---

void EncodeStringSet(const std::set<std::string>& s, BinaryWriter* w);
Result<std::set<std::string>> DecodeStringSet(BinaryReader* r);

void EncodeDoubleVector(const std::vector<double>& v, BinaryWriter* w);
Result<std::vector<double>> DecodeDoubleVector(BinaryReader* r);

}  // namespace store
}  // namespace pghive

#endif  // PGHIVE_STORE_CODEC_H_
