// Binary codecs for the durable-state snapshot and journal (src/store/).
//
// Each Encode*/Decode* pair round-trips one state component exactly:
// re-encoding a decoded component yields byte-identical output (doubles are
// stored as raw bit patterns, containers in their deterministic iteration
// order). Decoders are bounds-checked and return ParseError on truncated or
// malformed bytes — they never crash on corrupt input.

#ifndef PGHIVE_STORE_CODEC_H_
#define PGHIVE_STORE_CODEC_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/binary_io.h"
#include "common/result.h"
#include "core/aggregates.h"
#include "core/schema.h"
#include "core/value_stats.h"
#include "graph/mutations.h"
#include "graph/property_graph.h"
#include "lsh/adaptive_params.h"

namespace pghive {
namespace store {

// --- Property values and graph elements. ---

void EncodeValue(const Value& v, BinaryWriter* w);
Result<Value> DecodeValue(BinaryReader* r);

// Elements encode from either the graph's interned Node/Edge or the owning
// NodeData/EdgeData transit structs (identical wire bytes); decode always
// produces the transit structs, which are re-interned on insertion.
void EncodeNode(const Node& n, BinaryWriter* w);
void EncodeNode(const NodeData& n, BinaryWriter* w);
Result<NodeData> DecodeNode(BinaryReader* r);

void EncodeEdge(const Edge& e, BinaryWriter* w);
void EncodeEdge(const EdgeData& e, BinaryWriter* w);
Result<EdgeData> DecodeEdge(BinaryReader* r);

/// Whole graph, v1 layout: node count + nodes, edge count + edges, every
/// element spelling its strings out. Decoded elements are re-inserted
/// through AddNode/AddEdge, so dense insertion-order ids are preserved
/// (decode fails if the encoded ids were not dense). Kept for reading v1
/// snapshots; v2 writes the symbols + columnar pair below.
void EncodeGraph(const PropertyGraph& g, BinaryWriter* w);
Result<PropertyGraph> DecodeGraph(BinaryReader* r);

/// v2 symbol-table section: label/key string tables + canonical set pools,
/// in interning order. Decoding re-interns everything into a fresh context,
/// reproducing the exact same dense ids (fails if the encoded tables are
/// not canonical: duplicate strings, unsorted or duplicate sets).
void EncodeSymbols(const GraphSymbols& sym, BinaryWriter* w);
Result<std::shared_ptr<GraphSymbols>> DecodeSymbols(BinaryReader* r);

/// v2 columnar graph section: per element only the interned label-set /
/// key-set ids, the value row (aligned with the key set's canonical key
/// order) and the truth tag — each distinct string and set is stored once,
/// in the symbols section. `symbols` must be the context decoded from the
/// same snapshot.
void EncodeGraphColumnar(const PropertyGraph& g, BinaryWriter* w);
Result<PropertyGraph> DecodeGraphColumnar(
    BinaryReader* r, std::shared_ptr<GraphSymbols> symbols);

/// One journal batch payload: the node and edge rows of a single
/// incremental batch, in insertion order, plus (v3 segments onward) the
/// batch's mutation half. Edge endpoints are global NodeIds into the
/// accumulated graph. v1/v2 codecs only carry the insert half — a payload
/// with mutations forces a v3 segment (state_store rotates).
using BatchPayload = MutationBatch;
void EncodeBatchPayload(const std::vector<NodeData>& nodes,
                        const std::vector<EdgeData>& edges, BinaryWriter* w);
Result<BatchPayload> DecodeBatchPayload(BinaryReader* r);

/// Journal-v2 batch payload: a batch-local string dictionary + set table,
/// then per-element set references — each distinct label/key string is
/// written once per batch instead of once per element. Decodes to the same
/// BatchPayload as v1 (replay re-interns through AddNode/AddEdge).
void EncodeBatchPayloadV2(const std::vector<NodeData>& nodes,
                          const std::vector<EdgeData>& edges,
                          BinaryWriter* w);
Result<BatchPayload> DecodeBatchPayloadV2(BinaryReader* r);

/// Journal-v3 batch payload: the v2 dictionary body for the insert half,
/// followed by delete-node / delete-edge id vectors and update records
/// (old id + replacement element). Round-trips the full MutationBatch.
void EncodeBatchPayloadV3(const BatchPayload& payload, BinaryWriter* w);
Result<BatchPayload> DecodeBatchPayloadV3(BinaryReader* r);

// --- Discovered schema. ---

void EncodeSchema(const SchemaGraph& schema, BinaryWriter* w);
Result<SchemaGraph> DecodeSchema(BinaryReader* r);

// --- Post-processing statistics and LSH diagnostics. ---

void EncodeValueStats(const SchemaValueStats& stats, BinaryWriter* w);
Result<SchemaValueStats> DecodeValueStats(BinaryReader* r);

/// Delta-maintained post-processing aggregates (snapshot v4 layout: counted
/// label-set / endpoint-set histograms and counted degree maps, so the
/// retraction-capable accumulators round-trip). The unordered degree maps
/// serialize with sorted endpoint / neighbour ids, so equal aggregate
/// content always yields identical bytes. Derived members (degree
/// histograms, running maxima) are not stored — the decoder rebuilds them.
/// The v3 layout is not decodable; snapshot.cc discards pre-v4 aggregate
/// sections and recovery rebuilds from the graph.
void EncodeAggregates(const SchemaAggregates& agg, BinaryWriter* w);
Result<SchemaAggregates> DecodeAggregates(BinaryReader* r);

void EncodeAdaptiveParams(const AdaptiveLshParams& p, BinaryWriter* w);
Result<AdaptiveLshParams> DecodeAdaptiveParams(BinaryReader* r);

// --- Small shared helpers (exposed for tests). ---

void EncodeStringSet(const std::set<std::string>& s, BinaryWriter* w);
Result<std::set<std::string>> DecodeStringSet(BinaryReader* r);

void EncodeDoubleVector(const std::vector<double>& v, BinaryWriter* w);
Result<std::vector<double>> DecodeDoubleVector(BinaryReader* r);

}  // namespace store
}  // namespace pghive

#endif  // PGHIVE_STORE_CODEC_H_
