#include "store/state_store.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "common/binary_io.h"
#include "common/csv.h"
#include "common/hash.h"
#include "common/logging.h"
#include "core/shard_plan.h"
#include "core/value_stats.h"
#include "drift/replay.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/fs_util.h"

namespace pghive {
namespace store {

namespace {

constexpr char kSnapshotPrefix[] = "snapshot-";
constexpr char kSnapshotSuffix[] = ".pghs";
constexpr char kJournalPrefix[] = "journal-";
constexpr char kJournalSuffix[] = ".wal";

std::string NumberedFileName(const char* prefix, uint64_t n,
                             const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%020llu%s", prefix,
                static_cast<unsigned long long>(n), suffix);
  return buf;
}

/// Parses "<prefix><digits><suffix>" names; returns false for anything else.
bool ParseNumberedFileName(const std::string& name, const char* prefix,
                           const char* suffix, uint64_t* number) {
  const size_t prefix_len = std::string_view(prefix).size();
  const size_t suffix_len = std::string_view(suffix).size();
  if (name.size() <= prefix_len + suffix_len) return false;
  if (name.compare(0, prefix_len, prefix) != 0) return false;
  if (name.compare(name.size() - suffix_len, suffix_len, suffix) != 0) {
    return false;
  }
  const std::string digits =
      name.substr(prefix_len, name.size() - prefix_len - suffix_len);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  *number = std::strtoull(digits.c_str(), nullptr, 10);
  return true;
}

std::vector<std::string> ListNumberedFiles(const std::string& dir,
                                           const char* prefix,
                                           const char* suffix,
                                           bool newest_first) {
  std::vector<std::pair<uint64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    uint64_t n = 0;
    if (ParseNumberedFileName(entry.path().filename().string(), prefix,
                              suffix, &n)) {
      found.emplace_back(n, entry.path().string());
    }
  }
  std::sort(found.begin(), found.end());
  if (newest_first) std::reverse(found.begin(), found.end());
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [n, path] : found) paths.push_back(std::move(path));
  return paths;
}

}  // namespace

std::vector<std::string> ListSnapshotFiles(const std::string& dir) {
  return ListNumberedFiles(dir, kSnapshotPrefix, kSnapshotSuffix,
                           /*newest_first=*/true);
}

std::vector<std::string> ListJournalFiles(const std::string& dir) {
  return ListNumberedFiles(dir, kJournalPrefix, kJournalSuffix,
                           /*newest_first=*/false);
}

uint64_t OptionsFingerprint(const IncrementalOptions& options) {
  const PipelineOptions& p = options.pipeline;
  // Serialize every option that changes discovery output — NOT num_threads
  // (the runtime guarantees thread-count-independent results), so a machine
  // with a different core count can resume the same state directory. Nor
  // feed_shards: the sharded Feed path is likewise output-neutral (shard
  // merge order is fixed by the shard count, and the schema is bit-identical
  // at any shard count), so resuming under a different shard layout is
  // allowed — Recover only WARNS on a layout change via the persisted
  // shard-plan fingerprint.
  BinaryWriter w;
  w.WriteU8(static_cast<uint8_t>(p.method));
  w.WriteU8(static_cast<uint8_t>(p.embedding.backend));
  w.WriteU32(static_cast<uint32_t>(p.embedding.dimension));
  w.WriteU64(p.embedding.seed);
  w.WriteU32(static_cast<uint32_t>(p.embedding.word2vec.window));
  w.WriteU32(static_cast<uint32_t>(p.embedding.word2vec.negative_samples));
  w.WriteDouble(p.embedding.word2vec.learning_rate);
  w.WriteU32(static_cast<uint32_t>(p.embedding.word2vec.epochs));
  w.WriteDouble(p.encoder.label_weight);
  w.WriteU32(static_cast<uint32_t>(p.encoder.minhash_label_copies));
  w.WriteDouble(p.extraction.jaccard_threshold);
  w.WriteU8(p.adaptive_parameters ? 1 : 0);
  w.WriteDouble(p.adaptive_tuning.bucket_factor);
  w.WriteDouble(p.adaptive_tuning.node_alpha_cap);
  w.WriteDouble(p.adaptive_tuning.edge_alpha_cap);
  w.WriteDouble(p.adaptive_tuning.alpha_override);
  w.WriteU32(static_cast<uint32_t>(p.adaptive_tuning.tables_override));
  w.WriteDouble(p.elsh.bucket_length);
  w.WriteU32(static_cast<uint32_t>(p.elsh.num_tables));
  w.WriteU32(static_cast<uint32_t>(p.elsh.hashes_per_table));
  w.WriteU64(p.elsh.seed);
  w.WriteU32(static_cast<uint32_t>(p.minhash.num_hashes));
  w.WriteU32(static_cast<uint32_t>(p.minhash.rows_per_band));
  w.WriteU64(p.minhash.seed);
  w.WriteU8(p.post_process ? 1 : 0);
  w.WriteU8(p.datatypes.sample ? 1 : 0);
  w.WriteDouble(p.datatypes.sample_fraction);
  w.WriteU64(p.datatypes.min_sample);
  w.WriteU64(p.datatypes.seed);
  w.WriteU64(p.seed);
  w.WriteU8(options.post_process_each_batch ? 1 : 0);
  return Fnv1a64(w.buffer().data(), w.buffer().size());
}

std::string OptionsSummary(const IncrementalOptions& options) {
  const PipelineOptions& p = options.pipeline;
  char buf[160];
  std::snprintf(
      buf, sizeof(buf),
      "method=%s theta=%.3f seed=%llu adaptive=%d backend=%s dim=%d "
      "post_each_batch=%d",
      ClusteringMethodName(p.method), p.extraction.jaccard_threshold,
      static_cast<unsigned long long>(p.seed), p.adaptive_parameters ? 1 : 0,
      p.embedding.backend == EmbeddingBackend::kWord2Vec ? "word2vec"
                                                         : "hash",
      p.embedding.dimension, options.post_process_each_batch ? 1 : 0);
  return buf;
}

std::vector<BatchPayload> MakeStreamBatches(const PropertyGraph& g,
                                            size_t num_batches) {
  std::vector<GraphBatch> splits = SplitIntoBatches(g, num_batches);
  std::vector<size_t> node_batch(g.num_nodes(), 0);
  for (size_t b = 0; b < splits.size(); ++b) {
    for (size_t i = splits[b].node_begin; i < splits[b].node_end; ++i) {
      node_batch[i] = b;
    }
  }
  std::vector<BatchPayload> out(splits.size());
  for (size_t b = 0; b < splits.size(); ++b) {
    out[b].nodes.reserve(splits[b].num_nodes());
    for (size_t i = splits[b].node_begin; i < splits[b].node_end; ++i) {
      out[b].nodes.push_back(ToData(g.node(i)));
    }
  }
  // An edge becomes streamable once both endpoints have been delivered, so
  // it rides with the later of its endpoints' batches. Iterating edges in id
  // order keeps the within-batch order ascending.
  for (const Edge& e : g.edges()) {
    out[std::max(node_batch[e.source], node_batch[e.target])]
        .edges.push_back(ToData(e));
  }
  return out;
}

std::string RecoveryReport::ToString() const {
  if (fresh) return "fresh state directory (no prior state)";
  std::string s = "recovered";
  if (!snapshot_path.empty()) {
    s += " from snapshot '" + snapshot_path + "' (" +
         std::to_string(snapshot_batches) + " batches)";
  } else {
    s += " without a snapshot";
  }
  s += ", replayed " + std::to_string(replayed_batches) +
       " journal record(s)";
  if (skipped_records > 0) {
    s += ", skipped " + std::to_string(skipped_records) +
         " already-applied record(s)";
  }
  if (truncated_torn_tail) {
    s += ", truncated torn journal tail (" + torn_tail_error + ")";
  }
  if (!corrupt_snapshots.empty()) {
    s += ", skipped " + std::to_string(corrupt_snapshots.size()) +
         " corrupt snapshot(s)";
  }
  return s;
}

DurableDiscoverer::DurableDiscoverer(std::string dir, StoreOptions options)
    : dir_(std::move(dir)),
      options_(std::move(options)),
      engine_(options_.incremental),
      drift_(options_.drift_max_history) {}

DurableDiscoverer::~DurableDiscoverer() { ReleaseLock(); }

Status DurableDiscoverer::AcquireLock() {
  const std::string path = dir_ + "/LOCK";
  // Two attempts: the second one races for the lock after breaking a stale
  // file. If another opener wins that race, the verdict is AlreadyExists —
  // exactly as if it had held the lock all along.
  for (int attempt = 0; attempt < 2; ++attempt) {
    const int fd = ::open(path.c_str(),
                          O_CREAT | O_EXCL | O_WRONLY | O_CLOEXEC, 0644);
    if (fd >= 0) {
      const std::string pid = std::to_string(::getpid()) + "\n";
      if (::write(fd, pid.data(), pid.size()) !=
          static_cast<ssize_t>(pid.size())) {
        const int err = errno;
        ::close(fd);
        ::unlink(path.c_str());
        return Status::IoError("cannot write lock file '" + path +
                               "': " + std::strerror(err));
      }
      lock_fd_ = fd;
      return Status::OK();
    }
    if (errno != EEXIST) {
      return Status::IoError("cannot create lock file '" + path +
                             "': " + std::strerror(errno));
    }
    // Held by someone. Stale (holder dead) => break it and retry; a live
    // holder — including another instance in this very process — wins.
    long holder = 0;
    {
      std::FILE* f = std::fopen(path.c_str(), "r");
      if (f != nullptr) {
        if (std::fscanf(f, "%ld", &holder) != 1) holder = 0;
        std::fclose(f);
      }
    }
    if (holder > 0 && holder != ::getpid() &&
        ::kill(static_cast<pid_t>(holder), 0) != 0 && errno == ESRCH) {
      ::unlink(path.c_str());
      continue;  // stale: the recorded process no longer exists
    }
    return Status::AlreadyExists(
        "state directory '" + dir_ + "' is locked by process " +
        (holder > 0 ? std::to_string(holder) : "?") +
        " (another daemon or CLI run; remove '" + path +
        "' only if that process is gone)");
  }
  return Status::AlreadyExists("state directory '" + dir_ +
                               "' was locked by a concurrent opener");
}

void DurableDiscoverer::ReleaseLock() {
  if (lock_fd_ < 0) return;
  ::close(lock_fd_);
  lock_fd_ = -1;
  ::unlink((dir_ + "/LOCK").c_str());
}

Result<std::unique_ptr<DurableDiscoverer>> DurableDiscoverer::OpenOrRecover(
    const std::string& dir, StoreOptions options, RecoveryReport* report) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create state directory '" + dir +
                           "': " + ec.message());
  }
  RecoveryReport local;
  std::unique_ptr<DurableDiscoverer> store(
      new DurableDiscoverer(dir, std::move(options)));
  PGHIVE_RETURN_NOT_OK(store->AcquireLock());
  PGHIVE_RETURN_NOT_OK(store->Recover(&local));
  if (report != nullptr) *report = std::move(local);
  return store;
}

Status DurableDiscoverer::Recover(RecoveryReport* report) {
  obs::ScopedSpan span("store.recover");
  fingerprint_ = OptionsFingerprint(options_.incremental);

  for (const std::string& path : ListSnapshotFiles(dir_)) {
    Result<StoreSnapshot> snap = ReadSnapshotFile(path);
    if (!snap.ok()) {
      report->corrupt_snapshots.push_back(path + ": " +
                                          snap.status().message());
      continue;
    }
    if (snap->options_fingerprint != fingerprint_ &&
        !options_.allow_options_mismatch) {
      return Status::FailedPrecondition(
          "state in '" + dir_ +
          "' was produced under different discovery options (" +
          snap->options_summary +
          "); replaying it under the current options would diverge from "
          "the original run");
    }
    // Shard-plan changes are output-neutral (the shard-order merge is
    // byte-identical at any layout), so a mismatch only warrants a warning:
    // operators who keep the layout stable get comparable per-shard stats
    // across restarts.
    const ShardPlan current_plan(options_.incremental.pipeline.feed_shards);
    if (snap->shard_plan_fingerprint != 0 &&
        snap->shard_plan_fingerprint != current_plan.Fingerprint()) {
      PGHIVE_LOG(kWarning)
          << "shard plan changed across restart (snapshot had "
          << snap->feed_shards << " feed shards, now "
          << current_plan.num_shards()
          << "); output is unaffected but per-shard stats reset";
    }
    report->snapshot_path = path;
    report->snapshot_batches = snap->applied_batches;
    applied_batches_ = snap->applied_batches;
    graph_ = std::move(snap->graph);
    // Aggregates travel with v3 snapshots; an older file (or one written
    // with aggregate post-processing off) gets them rebuilt here, once, so
    // journal replay and future batches fold O(batch) deltas again.
    SchemaAggregates aggregates;
    if (snap->has_aggregates) {
      aggregates = std::move(snap->aggregates);
    } else if (options_.incremental.pipeline.aggregate_post_process) {
      aggregates = BuildAggregates(graph_, snap->schema,
                                   engine_.thread_pool());
    }
    engine_.RestoreState(std::move(snap->schema),
                         std::move(snap->batch_seconds),
                         std::move(aggregates));
    if (snap->has_drift) {
      PGHIVE_RETURN_NOT_OK(drift_.Restore(snap->drift_history));
    }
    break;
  }
  if (options_.track_drift) {
    // The baseline is not serialized: re-derive it from the restored state
    // BEFORE journal replay, so replayed batches re-observe against exactly
    // the schema they originally diffed from.
    drift_.ResetBaseline(applied_batches_, PostProcessedSchema());
  }

  const std::vector<std::string> segments = ListJournalFiles(dir_);
  for (size_t i = 0; i < segments.size(); ++i) {
    PGHIVE_ASSIGN_OR_RETURN(JournalReadResult read,
                            ReadJournalSegment(segments[i]));
    if (read.torn_tail) {
      if (i + 1 != segments.size()) {
        // A bad record followed by a newer segment is not a crash signature
        // (the writer only ever appends to the newest file) — refuse rather
        // than silently drop acknowledged batches.
        return Status::IoError("corrupt journal record mid-stream in '" +
                               segments[i] + "': " + read.tail_error);
      }
      PGHIVE_RETURN_NOT_OK(TruncateFile(segments[i], read.valid_bytes));
      report->truncated_torn_tail = true;
      report->torn_tail_error = read.tail_error;
    }
    for (const JournalRecord& record : read.records) {
      if (record.batch_id < applied_batches_) {
        ++report->skipped_records;
        continue;
      }
      if (record.batch_id > applied_batches_) {
        return Status::IoError(
            "journal gap in '" + segments[i] + "': expected batch " +
            std::to_string(applied_batches_) + ", found batch " +
            std::to_string(record.batch_id));
      }
      {
        obs::ScopedSpan replay_span("store.replay_batch");
        if (replay_span.recording()) {
          replay_span.AddAttr("batch", record.batch_id);
        }
        PGHIVE_RETURN_NOT_OK(ApplyPayload(record.payload));
      }
      ++report->replayed_batches;
    }
  }
  journaled_batches_ = applied_batches_;
  if (span.recording()) {
    span.AddAttr("replayed", report->replayed_batches);
    span.AddAttr("snapshot_batches", report->snapshot_batches);
  }

  report->fresh = report->snapshot_path.empty() &&
                  report->corrupt_snapshots.empty() && segments.empty();
  return Status::OK();
}

Status DurableDiscoverer::Feed(const BatchPayload& batch) {
  if (journaled_batches_ != applied_batches_) {
    return Status::FailedPrecondition(
        "journaled-but-unapplied batches pending; reopen the store to "
        "recover them");
  }
  obs::ScopedSpan span("store.feed");
  if (span.recording()) span.AddAttr("batch", journaled_batches_);
  PGHIVE_RETURN_NOT_OK(AppendToJournal(batch));
  // Crash window: the batch is durable but not applied. A kill here is what
  // the recovery path (and FeedJournalOnly-based tests) exercise.
  PGHIVE_RETURN_NOT_OK(ApplyPayload(batch));
  return MaybeCheckpoint();
}

Status DurableDiscoverer::FeedJournalOnly(const BatchPayload& batch) {
  if (journaled_batches_ != applied_batches_) {
    return Status::FailedPrecondition(
        "journaled-but-unapplied batches pending; reopen the store to "
        "recover them");
  }
  return AppendToJournal(batch);
}

Status DurableDiscoverer::AppendToJournal(const BatchPayload& batch) {
  PGHIVE_RETURN_NOT_OK(EnsureJournalOpen());
  if (!batch.mutations.empty() && journal_.format_version() < 3) {
    // Mutations only encode as v3 records. An inherited pre-v3 segment is
    // rotated out: close it and start a fresh segment at the current
    // version. The stale name can only collide when the old segment held
    // zero records — removing an empty segment loses nothing.
    PGHIVE_RETURN_NOT_OK(journal_.Close());
    const std::string next =
        dir_ + "/" +
        NumberedFileName(kJournalPrefix, journaled_batches_, kJournalSuffix);
    std::error_code ec;
    std::filesystem::remove(next, ec);
    PGHIVE_RETURN_NOT_OK(EnsureJournalOpen());
  }
  BinaryWriter payload;
  // Records match the segment's header version (a reopened v1 segment keeps
  // receiving v1 records; fresh segments are v3/mutation-capable).
  if (journal_.format_version() >= 3) {
    EncodeBatchPayloadV3(batch, &payload);
  } else if (journal_.format_version() >= 2) {
    EncodeBatchPayloadV2(batch.nodes, batch.edges, &payload);
  } else {
    EncodeBatchPayload(batch.nodes, batch.edges, &payload);
  }
  PGHIVE_RETURN_NOT_OK(
      journal_.Append(journaled_batches_, payload.buffer()));
  journal_bytes_since_checkpoint_ += payload.size();
  ++journaled_batches_;
  return Status::OK();
}

Status DurableDiscoverer::EnsureJournalOpen() {
  if (journal_.is_open()) return Status::OK();
  const std::string path =
      dir_ + "/" +
      NumberedFileName(kJournalPrefix, journaled_batches_, kJournalSuffix);
  return journal_.Open(path, options_.fsync);
}

Status DurableDiscoverer::ApplyPayload(const BatchPayload& batch) {
  PGHIVE_ASSIGN_OR_RETURN(drift::AppliedBatch applied,
                          drift::ApplyMutationBatch(&graph_, batch));
  if (applied.deleted_nodes.empty() && applied.deleted_edges.empty()) {
    PGHIVE_RETURN_NOT_OK(engine_.Feed(applied.batch));
  } else {
    PGHIVE_RETURN_NOT_OK(engine_.FeedMutations(
        applied.batch, applied.deleted_nodes, applied.deleted_edges));
  }
  ++applied_batches_;
  ++batches_since_checkpoint_;
  if (options_.track_drift) {
    post_schema_cache_ = engine_.FinishedCopy(graph_);
    post_schema_epoch_ = applied_batches_;
    post_schema_valid_ = true;
    drift_.Observe(applied_batches_, post_schema_cache_);
  }
  return Status::OK();
}

SchemaGraph DurableDiscoverer::PostProcessedSchema() const {
  if (post_schema_valid_ && post_schema_epoch_ == applied_batches_) {
    return post_schema_cache_;
  }
  return engine_.FinishedCopy(graph_);
}

StoreSnapshot DurableDiscoverer::BuildSnapshot() const {
  StoreSnapshot snap;
  snap.applied_batches = applied_batches_;
  snap.options_fingerprint = fingerprint_;
  snap.options_summary = OptionsSummary(options_.incremental);
  const ShardPlan plan(options_.incremental.pipeline.feed_shards);
  snap.feed_shards = static_cast<uint32_t>(plan.num_shards());
  snap.shard_plan_fingerprint = plan.Fingerprint();
  snap.graph = graph_;
  snap.schema = engine_.schema();
  snap.batch_seconds = engine_.batch_seconds();
  snap.aliases = options_.aliases;
  const BatchDiagnostics& diag = engine_.last_diagnostics();
  snap.node_lsh = diag.node_params;
  snap.edge_lsh = diag.edge_params;
  snap.node_clusters = diag.node_clusters;
  snap.edge_clusters = diag.edge_clusters;
  if (options_.snapshot_value_stats && applied_batches_ > 0) {
    snap.value_stats = ComputeValueStats(graph_, snap.schema, {},
                                         engine_.thread_pool());
  }
  if (options_.incremental.pipeline.aggregate_post_process &&
      engine_.aggregates_valid() &&
      engine_.aggregates().ConsistentWith(snap.schema)) {
    snap.aggregates = engine_.aggregates();
    snap.has_aggregates = true;
  }
  if (options_.track_drift) {
    snap.drift_history = drift_.Serialize();
    snap.has_drift = true;
  }
  return snap;
}

Status DurableDiscoverer::MaybeCheckpoint() {
  const bool batches_due =
      options_.checkpoint_every_batches > 0 &&
      batches_since_checkpoint_ >= options_.checkpoint_every_batches;
  const bool bytes_due =
      options_.checkpoint_every_bytes > 0 &&
      journal_bytes_since_checkpoint_ >= options_.checkpoint_every_bytes;
  if (!batches_due && !bytes_due) return Status::OK();
  return Checkpoint();
}

Status DurableDiscoverer::Checkpoint() {
  if (journaled_batches_ != applied_batches_) {
    return Status::FailedPrecondition(
        "cannot checkpoint with journaled-but-unapplied batches pending");
  }
  static obs::Counter* snapshots_written = obs::MetricsRegistry::Global()
      .GetCounter("pghive.store.snapshots_written");
  static obs::Counter* snapshot_bytes = obs::MetricsRegistry::Global()
      .GetCounter("pghive.store.snapshot_bytes");
  obs::ScopedSpan span("store.checkpoint");
  if (span.recording()) span.AddAttr("applied_batches", applied_batches_);
  const StoreSnapshot snap = BuildSnapshot();
  const std::string bytes = EncodeSnapshot(snap, engine_.thread_pool());
  const std::string path =
      dir_ + "/" +
      NumberedFileName(kSnapshotPrefix, applied_batches_, kSnapshotSuffix);
  PGHIVE_RETURN_NOT_OK(WriteSnapshotFile(path, bytes));
  snapshots_written->Add(1);
  snapshot_bytes->Add(bytes.size());
  return PruneAfterCheckpoint();
}

Status DurableDiscoverer::PruneAfterCheckpoint() {
  // The snapshot just written covers every journaled batch, so all segments
  // (including the open one) are dead weight; the next Feed starts a fresh
  // segment named after the next batch id.
  PGHIVE_RETURN_NOT_OK(journal_.Close());
  std::error_code ec;
  for (const std::string& path : ListJournalFiles(dir_)) {
    std::filesystem::remove(path, ec);
    if (ec) {
      return Status::IoError("cannot remove applied journal segment '" +
                             path + "': " + ec.message());
    }
  }
  const std::vector<std::string> snapshots = ListSnapshotFiles(dir_);
  for (size_t i = 1 + options_.keep_extra_snapshots; i < snapshots.size();
       ++i) {
    std::filesystem::remove(snapshots[i], ec);
    if (ec) {
      return Status::IoError("cannot remove stale snapshot '" +
                             snapshots[i] + "': " + ec.message());
    }
  }
  PGHIVE_RETURN_NOT_OK(SyncDir(dir_));
  batches_since_checkpoint_ = 0;
  journal_bytes_since_checkpoint_ = 0;
  return Status::OK();
}

Result<SchemaGraph> DurableDiscoverer::Finish() {
  SchemaGraph schema = engine_.Finish(graph_);
  PGHIVE_RETURN_NOT_OK(Checkpoint());
  return schema;
}

std::string StateDirMetrics::ToString() const {
  std::string s;
  s += "snapshots:        " + std::to_string(snapshot_count) + " (" +
       std::to_string(snapshot_bytes) + " bytes)\n";
  s += "newest snapshot:  " + std::to_string(newest_snapshot_batches) +
       " batches applied\n";
  s += "journal segments: " + std::to_string(journal_segments) + " (" +
       std::to_string(journal_bytes) + " bytes, " +
       std::to_string(journal_records) + " records)\n";
  s += "journal ops:      " + std::to_string(journal_insert_ops) +
       " insert / " + std::to_string(journal_delete_ops) + " delete / " +
       std::to_string(journal_update_ops) + " update\n";
  s += "drift history:    " +
       (drift_history_bytes > 0
            ? std::to_string(drift_history_bytes) + " bytes (newest snapshot)"
            : std::string("none")) +
       "\n";
  if (torn_tail) s += "journal tail:     TORN (truncated on next recovery)\n";
  return s;
}

StateDirMetrics CollectStateDirMetrics(const std::string& dir) {
  StateDirMetrics m;
  std::error_code ec;
  const std::vector<std::string> snapshots = ListSnapshotFiles(dir);
  m.snapshot_count = snapshots.size();
  for (const std::string& path : snapshots) {
    const uint64_t size = std::filesystem::file_size(path, ec);
    if (!ec) m.snapshot_bytes += size;
  }
  if (!snapshots.empty()) {
    // The applied count is encoded in the name (snapshot-<applied>.pghs);
    // reading it from there avoids decoding the whole snapshot.
    uint64_t applied = 0;
    if (ParseNumberedFileName(
            std::filesystem::path(snapshots.front()).filename().string(),
            kSnapshotPrefix, kSnapshotSuffix, &applied)) {
      m.newest_snapshot_batches = applied;
    }
  }
  for (const std::string& path : ListJournalFiles(dir)) {
    ++m.journal_segments;
    const uint64_t size = std::filesystem::file_size(path, ec);
    if (!ec) m.journal_bytes += size;
    Result<JournalReadResult> read = ReadJournalSegment(path);
    if (!read.ok()) continue;  // unreadable: bytes counted, no records
    m.journal_records += read->records.size();
    for (const JournalRecord& rec : read->records) {
      m.journal_insert_ops +=
          rec.payload.nodes.size() + rec.payload.edges.size();
      m.journal_delete_ops += rec.payload.mutations.delete_nodes.size() +
                              rec.payload.mutations.delete_edges.size();
      m.journal_update_ops += rec.payload.mutations.update_nodes.size() +
                              rec.payload.mutations.update_edges.size();
    }
    if (read->torn_tail) m.torn_tail = true;
  }
  if (!snapshots.empty()) {
    // Probe (don't fully decode) the newest snapshot for its drift-history
    // section size.
    Result<std::string> bytes = ReadFile(snapshots.front());
    if (bytes.ok()) {
      Result<SnapshotInfo> info = InspectSnapshot(*bytes);
      if (info.ok()) {
        for (const SnapshotSectionInfo& sec : info->sections) {
          if (sec.id == static_cast<uint32_t>(SnapshotSection::kDriftHistory)) {
            m.drift_history_bytes = sec.size;
          }
        }
      }
    }
  }
  return m;
}

void PublishStateDirMetrics(const StateDirMetrics& m) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetGauge("pghive.store.state_snapshot_count")
      ->Set(static_cast<int64_t>(m.snapshot_count));
  reg.GetGauge("pghive.store.state_snapshot_bytes")
      ->Set(static_cast<int64_t>(m.snapshot_bytes));
  reg.GetGauge("pghive.store.state_newest_snapshot_batches")
      ->Set(static_cast<int64_t>(m.newest_snapshot_batches));
  reg.GetGauge("pghive.store.state_journal_segments")
      ->Set(static_cast<int64_t>(m.journal_segments));
  reg.GetGauge("pghive.store.state_journal_bytes")
      ->Set(static_cast<int64_t>(m.journal_bytes));
  reg.GetGauge("pghive.store.state_journal_records")
      ->Set(static_cast<int64_t>(m.journal_records));
  reg.GetGauge("pghive.store.state_journal_insert_ops")
      ->Set(static_cast<int64_t>(m.journal_insert_ops));
  reg.GetGauge("pghive.store.state_journal_delete_ops")
      ->Set(static_cast<int64_t>(m.journal_delete_ops));
  reg.GetGauge("pghive.store.state_journal_update_ops")
      ->Set(static_cast<int64_t>(m.journal_update_ops));
  reg.GetGauge("pghive.store.state_drift_history_bytes")
      ->Set(static_cast<int64_t>(m.drift_history_bytes));
  reg.GetGauge("pghive.store.state_torn_tail")->Set(m.torn_tail ? 1 : 0);
}

}  // namespace store
}  // namespace pghive
