// Write-ahead batch journal for incremental discovery.
//
// Before a batch is applied to the in-memory engine, its full node/edge
// payload is appended to the current journal segment and fsync'd, so a
// crash between append and apply loses nothing: recovery replays the
// journal through the engine and converges to the exact state an
// uninterrupted run produces.
//
// Segment file layout:
//
//   "PGHJ" magic | u32 format_version            (segment header)
//   then per record:
//     u32 payload_size | u32 payload_crc | payload
//   payload := u64 batch_id | EncodeBatchPayload bytes
//
// A record is valid only when fully present with a matching CRC. Readers
// stop at the first invalid record and report the byte offset of the last
// valid one ("torn tail"): for the newest segment that is the expected
// signature of a crash mid-append and the tail is discarded by truncation;
// for an older segment it means real corruption and recovery refuses to
// proceed.

#ifndef PGHIVE_STORE_JOURNAL_H_
#define PGHIVE_STORE_JOURNAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "store/codec.h"

namespace pghive {
namespace store {

inline constexpr char kJournalMagic[4] = {'P', 'G', 'H', 'J'};
/// v1 payloads spell every element's strings out (EncodeBatchPayload); v2
/// payloads carry a batch-local dictionary (EncodeBatchPayloadV2); v3
/// payloads extend v2 with the batch's mutation half — delete-node /
/// delete-edge id vectors and update records (EncodeBatchPayloadV3). The
/// segment header version decides the payload codec for the whole segment:
/// new segments are written v3, existing v1/v2 segments keep receiving
/// records in their own format and still replay. A mutation-carrying batch
/// cannot be appended to a pre-v3 segment — the store rotates to a fresh
/// segment first.
inline constexpr uint32_t kJournalFormatVersion = 3;

/// Appends length-prefixed, CRC-guarded batch records to one segment file.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Creates (or opens for append) the segment at `path`, writing the
  /// segment header when the file is new. `fsync` = false trades crash
  /// durability for speed (tests, benchmarks).
  Status Open(const std::string& path, bool fsync = true);

  /// Appends one record (framing + payload) and fsyncs. The record is
  /// durable once this returns OK.
  Status Append(uint64_t batch_id, const std::string& batch_payload);

  Status Close();

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }
  /// Bytes appended through this writer (excluding the segment header).
  uint64_t bytes_written() const { return bytes_written_; }
  /// The open segment's header version — appended record payloads must be
  /// encoded in this version's batch-payload format (readers decode the
  /// whole segment uniformly).
  uint32_t format_version() const { return format_version_; }

 private:
  int fd_ = -1;
  bool fsync_ = true;
  std::string path_;
  uint64_t bytes_written_ = 0;
  uint32_t format_version_ = kJournalFormatVersion;
};

/// One decoded journal record.
struct JournalRecord {
  uint64_t batch_id = 0;
  BatchPayload payload;
};

struct JournalReadResult {
  std::vector<JournalRecord> records;
  /// True when trailing bytes after the last valid record were invalid
  /// (incomplete frame, CRC mismatch, or undecodable payload).
  bool torn_tail = false;
  /// File offset just past the last valid record — the size to truncate the
  /// segment to when discarding a torn tail.
  uint64_t valid_bytes = 0;
  /// Diagnostic for the torn tail (empty when !torn_tail).
  std::string tail_error;
};

/// Reads every valid record of a segment. Fails only when the file cannot
/// be read or its header is not a journal header; record-level problems are
/// reported via torn_tail, never by crashing.
Result<JournalReadResult> ReadJournalSegment(const std::string& path);

}  // namespace store
}  // namespace pghive

#endif  // PGHIVE_STORE_JOURNAL_H_
