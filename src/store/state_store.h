// Durable incremental schema discovery: snapshot + write-ahead journal +
// checkpoint/resume over a state directory.
//
// Directory layout:
//
//   <dir>/snapshot-<applied>.pghs   versioned binary snapshot (snapshot.h)
//   <dir>/journal-<first>.wal       WAL segments (journal.h)
//
// Write path per batch (DurableDiscoverer::Feed):
//   1. append the batch payload to the journal, fsync   (durable intent)
//   2. apply: extend the accumulated graph, run the incremental engine
//   3. checkpoint when the policy fires (every N batches or M journal
//      bytes): write snapshot-<applied>.pghs atomically, then delete the
//      applied journal segments and older snapshots
//
// Recovery (OpenOrRecover): load the newest snapshot that validates
// (corrupt ones are skipped and reported), restore the engine through
// IncrementalDiscoverer::RestoreState, then replay journal records with
// batch_id >= the snapshot's applied count, truncating a torn tail on the
// newest segment. Because the pipeline is deterministic in its options and
// seed, a recovered process converges to the exact schema an uninterrupted
// run produces.

#ifndef PGHIVE_STORE_STATE_STORE_H_
#define PGHIVE_STORE_STATE_STORE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/incremental.h"
#include "drift/drift_tracker.h"
#include "store/journal.h"
#include "store/snapshot.h"

namespace pghive {
namespace store {

struct StoreOptions {
  IncrementalOptions incremental;

  /// Checkpointer policy: snapshot + journal truncation after this many
  /// applied batches since the last checkpoint (0 disables this trigger)...
  uint64_t checkpoint_every_batches = 16;
  /// ...or after this many journal bytes since the last checkpoint,
  /// whichever fires first. 0 disables the byte trigger.
  uint64_t checkpoint_every_bytes = 8ull << 20;

  /// fsync journal appends (snapshots are always written durably: tmp +
  /// fsync + rename + dir sync). Disable only where durability does not
  /// matter (benchmarks).
  bool fsync = true;

  /// Older snapshots kept after a checkpoint, beyond the newest one (a
  /// paranoia margin against a latent bad write).
  size_t keep_extra_snapshots = 1;

  /// Recompute value/datatype statistics into each snapshot (one extra scan
  /// per checkpoint).
  bool snapshot_value_stats = true;

  /// Open even when the stored options fingerprint differs from
  /// `incremental` (replay may then diverge from the original run).
  bool allow_options_mismatch = false;

  /// Maintain a schema-drift history (drift/drift_tracker.h): after every
  /// applied batch the post-processed schema is diffed against the previous
  /// epoch's and the result recorded. The history rides in snapshots
  /// (kDriftHistory) and is served via `pghive drift` and the daemon's
  /// /drift endpoint. Costs one FinishedCopy per batch — O(schema) with
  /// aggregate post-processing on, a full post-process scan otherwise.
  bool track_drift = true;
  /// Bound on retained per-epoch diff records (cumulative counters are
  /// never truncated).
  size_t drift_max_history = drift::DriftTracker::kDefaultMaxHistory;

  /// Label aliases recorded in snapshots for provenance (the discovery
  /// input was rewritten through these before feeding).
  std::vector<std::pair<std::string, std::string>> aliases;
};

/// What OpenOrRecover found and did.
struct RecoveryReport {
  bool fresh = false;               // no prior state in the directory
  std::string snapshot_path;        // snapshot loaded (empty if none)
  uint64_t snapshot_batches = 0;    // batches contained in that snapshot
  uint64_t replayed_batches = 0;    // journal records re-applied
  uint64_t skipped_records = 0;     // records already covered by the snapshot
  bool truncated_torn_tail = false;
  std::string torn_tail_error;
  std::vector<std::string> corrupt_snapshots;  // skipped as invalid

  std::string ToString() const;
};

/// Fingerprint of every option that affects discovery output (method,
/// thresholds, seeds, embedding and LSH parameters — not thread counts).
/// Stored in snapshots; recovery under a different fingerprint is refused.
uint64_t OptionsFingerprint(const IncrementalOptions& options);

/// One-line human-readable options summary stored alongside.
std::string OptionsSummary(const IncrementalOptions& options);

/// Splits a static graph into `num_batches` streamable payloads: nodes are
/// cut contiguously exactly like SplitIntoBatches; each edge is assigned to
/// the first batch where both endpoints exist (ascending id order within a
/// batch). A durable feed never references a node from a later batch.
std::vector<BatchPayload> MakeStreamBatches(const PropertyGraph& g,
                                            size_t num_batches);

/// Incremental discovery with crash-consistent persistence.
///
/// Single-writer: opening takes an exclusive `<dir>/LOCK` pidfile
/// (O_CREAT|O_EXCL), so a daemon and a one-shot CLI run can never interleave
/// appends into the same journal. A lock left behind by a dead process
/// (crash) is detected via kill(pid, 0) and broken automatically; a live
/// holder makes OpenOrRecover fail with AlreadyExists, which the CLI maps
/// to its own exit code (4).
class DurableDiscoverer {
 public:
  /// Opens `dir` (created if missing), recovering any prior state found
  /// there. Fails with AlreadyExists when another live process (or another
  /// instance in this process) holds the directory's LOCK, with
  /// FailedPrecondition when the stored options fingerprint differs from
  /// `options.incremental` (unless allow_options_mismatch), and with
  /// IoError on unrecoverable corruption.
  static Result<std::unique_ptr<DurableDiscoverer>> OpenOrRecover(
      const std::string& dir, StoreOptions options,
      RecoveryReport* report = nullptr);

  ~DurableDiscoverer();
  DurableDiscoverer(const DurableDiscoverer&) = delete;
  DurableDiscoverer& operator=(const DurableDiscoverer&) = delete;

  /// Journals, then applies one batch. Node ids are reassigned densely in
  /// feed order; edge endpoints are global node ids and must already exist
  /// (MakeStreamBatches produces payloads satisfying this). The payload may
  /// carry mutations (graph/mutations.h): deletions/updates are journaled
  /// as v3 records (an inherited pre-v3 segment is rotated first) and
  /// applied through the engine's retraction path in O(batch).
  Status Feed(const BatchPayload& batch);

  /// Test hook for the crash window between journal append and apply: the
  /// batch becomes durable in the journal but is NOT applied — exactly the
  /// state a process killed mid-Feed leaves behind. Recovery replays it.
  Status FeedJournalOnly(const BatchPayload& batch);

  /// Forces a checkpoint now: snapshot written, applied journal segments
  /// and stale snapshots deleted.
  Status Checkpoint();

  /// Final post-processing over everything applied (constraints, datatypes,
  /// cardinalities), then a checkpoint so the completed schema is durable.
  Result<SchemaGraph> Finish();

  const SchemaGraph& schema() const { return engine_.schema(); }

  /// The schema Finish() would produce right now, computed on a copy: the
  /// engine keeps feeding on the exact uninterrupted-run path. The serving
  /// daemon renders one of these per applied batch into an epoch snapshot.
  /// With drift tracking on, the copy computed for the current epoch's
  /// drift observation is reused instead of recomputed.
  SchemaGraph PostProcessedSchema() const;

  /// The drift history maintained across applied batches (empty when
  /// options.track_drift is off).
  const drift::DriftTracker& drift_tracker() const { return drift_; }
  const PropertyGraph& graph() const { return graph_; }
  const std::vector<double>& batch_seconds() const {
    return engine_.batch_seconds();
  }
  uint64_t batches_applied() const { return applied_batches_; }
  /// Batches applied since the last checkpoint — the "checkpoint age" the
  /// serving daemon's /readyz reports per graph.
  uint64_t batches_since_checkpoint() const {
    return batches_since_checkpoint_;
  }
  const std::string& dir() const { return dir_; }

  /// The wrapped incremental engine (read-only: aggregate state, timings,
  /// diagnostics — exposed for the compat tests and `inspect-state`).
  const IncrementalDiscoverer& engine() const { return engine_; }

 private:
  DurableDiscoverer(std::string dir, StoreOptions options);

  Status AcquireLock();
  void ReleaseLock();
  Status Recover(RecoveryReport* report);
  Status ApplyPayload(const BatchPayload& batch);
  Status AppendToJournal(const BatchPayload& batch);
  Status EnsureJournalOpen();
  StoreSnapshot BuildSnapshot() const;
  Status MaybeCheckpoint();
  Status PruneAfterCheckpoint();

  std::string dir_;
  StoreOptions options_;
  uint64_t fingerprint_ = 0;
  int lock_fd_ = -1;  // exclusive LOCK pidfile (released in the destructor)

  IncrementalDiscoverer engine_;
  PropertyGraph graph_;

  drift::DriftTracker drift_;
  SchemaGraph post_schema_cache_;
  uint64_t post_schema_epoch_ = 0;
  bool post_schema_valid_ = false;

  JournalWriter journal_;
  uint64_t applied_batches_ = 0;
  uint64_t journaled_batches_ = 0;  // >= applied when a crash test is staged
  uint64_t batches_since_checkpoint_ = 0;
  uint64_t journal_bytes_since_checkpoint_ = 0;
};

/// Lists the snapshot files of a state directory, newest first.
std::vector<std::string> ListSnapshotFiles(const std::string& dir);

/// Lists the journal segment files of a state directory, oldest first.
std::vector<std::string> ListJournalFiles(const std::string& dir);

/// Size/record accounting of a state directory. The single definition both
/// `pghive inspect-state` prints and PublishStateDirMetrics feeds into the
/// metrics registry, so the CLI and --metrics-out can never disagree.
struct StateDirMetrics {
  uint64_t snapshot_count = 0;
  uint64_t snapshot_bytes = 0;          // all snapshot files on disk
  uint64_t newest_snapshot_batches = 0; // applied count of the newest one
  uint64_t journal_segments = 0;
  uint64_t journal_bytes = 0;           // all segment files on disk
  uint64_t journal_records = 0;         // valid records across segments
  bool torn_tail = false;               // any segment ends in a torn tail

  // Per-operation accounting across the journal's valid records: inserted
  // node/edge rows, delete-by-id operations and update (delete-then-
  // reinsert) operations. Inserts count the replacement rows of updates
  // only under journal_update_ops.
  uint64_t journal_insert_ops = 0;
  uint64_t journal_delete_ops = 0;
  uint64_t journal_update_ops = 0;
  /// Size of the newest snapshot's drift-history section (0 when absent).
  uint64_t drift_history_bytes = 0;

  std::string ToString() const;
};

/// Scans `dir` without modifying it. Unreadable files count toward sizes
/// but contribute no records.
StateDirMetrics CollectStateDirMetrics(const std::string& dir);

/// Mirrors the struct into pghive.store.state_* registry gauges.
void PublishStateDirMetrics(const StateDirMetrics& m);

}  // namespace store
}  // namespace pghive

#endif  // PGHIVE_STORE_STATE_STORE_H_
