#include "store/codec.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace pghive {
namespace store {

namespace {

// Value wire tags. Stable on-disk numbers — append, never renumber.
enum ValueTag : uint8_t {
  kValNull = 0,
  kValInt = 1,
  kValDouble = 2,
  kValBool = 3,
  kValString = 4,
  kValDate = 5,
  kValTimestamp = 6,
};

Status BadTag(const char* what, unsigned tag) {
  return Status::ParseError(std::string("unknown ") + what + " tag " +
                            std::to_string(tag));
}

template <typename Elem>
void EncodeElementCommon(const Elem& e, BinaryWriter* w) {
  EncodeStringSet(e.labels, w);
  w->WriteU32(static_cast<uint32_t>(e.properties.size()));
  for (const auto& [key, value] : e.properties) {
    w->WriteString(key);
    EncodeValue(value, w);
  }
  w->WriteString(e.truth_type);
}

template <typename Elem>
Status DecodeElementCommon(BinaryReader* r, Elem* e) {
  PGHIVE_ASSIGN_OR_RETURN(e->labels, DecodeStringSet(r));
  PGHIVE_ASSIGN_OR_RETURN(uint32_t num_props, r->ReadU32());
  for (uint32_t i = 0; i < num_props; ++i) {
    PGHIVE_ASSIGN_OR_RETURN(std::string key, r->ReadString());
    PGHIVE_ASSIGN_OR_RETURN(Value value, DecodeValue(r));
    e->properties.emplace(std::move(key), std::move(value));
  }
  PGHIVE_ASSIGN_OR_RETURN(e->truth_type, r->ReadString());
  return Status::OK();
}

void EncodeIdVector(const std::vector<uint64_t>& ids, BinaryWriter* w) {
  w->WriteU64(ids.size());
  for (uint64_t id : ids) w->WriteU64(id);
}

Result<std::vector<uint64_t>> DecodeIdVector(BinaryReader* r) {
  PGHIVE_ASSIGN_OR_RETURN(uint64_t n, r->ReadU64());
  if (n > r->remaining() / sizeof(uint64_t)) {
    return Status::ParseError("id vector length exceeds input size");
  }
  std::vector<uint64_t> ids;
  ids.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    PGHIVE_ASSIGN_OR_RETURN(uint64_t id, r->ReadU64());
    ids.push_back(id);
  }
  return ids;
}

void EncodeConstraints(const std::map<std::string, PropertyConstraint>& cs,
                       BinaryWriter* w) {
  w->WriteU32(static_cast<uint32_t>(cs.size()));
  for (const auto& [key, c] : cs) {
    w->WriteString(key);
    w->WriteU8(static_cast<uint8_t>(c.type));
    w->WriteU8(c.mandatory ? 1 : 0);
  }
}

Result<std::map<std::string, PropertyConstraint>> DecodeConstraints(
    BinaryReader* r) {
  PGHIVE_ASSIGN_OR_RETURN(uint32_t n, r->ReadU32());
  std::map<std::string, PropertyConstraint> cs;
  for (uint32_t i = 0; i < n; ++i) {
    PGHIVE_ASSIGN_OR_RETURN(std::string key, r->ReadString());
    PGHIVE_ASSIGN_OR_RETURN(uint8_t type, r->ReadU8());
    PGHIVE_ASSIGN_OR_RETURN(uint8_t mandatory, r->ReadU8());
    if (type > static_cast<uint8_t>(DataType::kString)) {
      return BadTag("datatype", type);
    }
    PropertyConstraint c;
    c.type = static_cast<DataType>(type);
    c.mandatory = mandatory != 0;
    cs.emplace(std::move(key), c);
  }
  return cs;
}

}  // namespace

void EncodeStringSet(const std::set<std::string>& s, BinaryWriter* w) {
  w->WriteU32(static_cast<uint32_t>(s.size()));
  for (const auto& item : s) w->WriteString(item);
}

Result<std::set<std::string>> DecodeStringSet(BinaryReader* r) {
  PGHIVE_ASSIGN_OR_RETURN(uint32_t n, r->ReadU32());
  std::set<std::string> s;
  for (uint32_t i = 0; i < n; ++i) {
    PGHIVE_ASSIGN_OR_RETURN(std::string item, r->ReadString());
    s.insert(std::move(item));
  }
  return s;
}

void EncodeDoubleVector(const std::vector<double>& v, BinaryWriter* w) {
  w->WriteU64(v.size());
  for (double d : v) w->WriteDouble(d);
}

Result<std::vector<double>> DecodeDoubleVector(BinaryReader* r) {
  PGHIVE_ASSIGN_OR_RETURN(uint64_t n, r->ReadU64());
  if (n > r->remaining() / sizeof(double)) {
    return Status::ParseError("double vector length exceeds input size");
  }
  std::vector<double> v;
  v.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    PGHIVE_ASSIGN_OR_RETURN(double d, r->ReadDouble());
    v.push_back(d);
  }
  return v;
}

void EncodeValue(const Value& v, BinaryWriter* w) {
  if (v.is_null()) {
    w->WriteU8(kValNull);
    return;
  }
  switch (v.type()) {
    case DataType::kInt:
      w->WriteU8(kValInt);
      w->WriteU64(static_cast<uint64_t>(v.AsInt()));
      return;
    case DataType::kDouble:
      w->WriteU8(kValDouble);
      w->WriteDouble(v.AsDouble());
      return;
    case DataType::kBool:
      w->WriteU8(kValBool);
      w->WriteU8(v.AsBool() ? 1 : 0);
      return;
    case DataType::kDate:
      w->WriteU8(kValDate);
      w->WriteString(v.AsString());
      return;
    case DataType::kTimestamp:
      w->WriteU8(kValTimestamp);
      w->WriteString(v.AsString());
      return;
    case DataType::kString:
      w->WriteU8(kValString);
      w->WriteString(v.AsString());
      return;
  }
}

Result<Value> DecodeValue(BinaryReader* r) {
  PGHIVE_ASSIGN_OR_RETURN(uint8_t tag, r->ReadU8());
  switch (tag) {
    case kValNull:
      return Value();
    case kValInt: {
      PGHIVE_ASSIGN_OR_RETURN(uint64_t bits, r->ReadU64());
      return Value::Int(static_cast<int64_t>(bits));
    }
    case kValDouble: {
      PGHIVE_ASSIGN_OR_RETURN(double d, r->ReadDouble());
      return Value::Double(d);
    }
    case kValBool: {
      PGHIVE_ASSIGN_OR_RETURN(uint8_t b, r->ReadU8());
      return Value::Bool(b != 0);
    }
    case kValString: {
      PGHIVE_ASSIGN_OR_RETURN(std::string s, r->ReadString());
      return Value::String(std::move(s));
    }
    case kValDate: {
      PGHIVE_ASSIGN_OR_RETURN(std::string s, r->ReadString());
      return Value::Date(std::move(s));
    }
    case kValTimestamp: {
      PGHIVE_ASSIGN_OR_RETURN(std::string s, r->ReadString());
      return Value::Timestamp(std::move(s));
    }
    default:
      return BadTag("value", tag);
  }
}

void EncodeNode(const Node& n, BinaryWriter* w) {
  w->WriteU64(n.id);
  EncodeElementCommon(n, w);
}

void EncodeNode(const NodeData& n, BinaryWriter* w) {
  w->WriteU64(n.id);
  EncodeElementCommon(n, w);
}

Result<NodeData> DecodeNode(BinaryReader* r) {
  NodeData n;
  PGHIVE_ASSIGN_OR_RETURN(n.id, r->ReadU64());
  PGHIVE_RETURN_NOT_OK(DecodeElementCommon(r, &n));
  return n;
}

void EncodeEdge(const Edge& e, BinaryWriter* w) {
  w->WriteU64(e.id);
  w->WriteU64(e.source);
  w->WriteU64(e.target);
  EncodeElementCommon(e, w);
}

void EncodeEdge(const EdgeData& e, BinaryWriter* w) {
  w->WriteU64(e.id);
  w->WriteU64(e.source);
  w->WriteU64(e.target);
  EncodeElementCommon(e, w);
}

Result<EdgeData> DecodeEdge(BinaryReader* r) {
  EdgeData e;
  PGHIVE_ASSIGN_OR_RETURN(e.id, r->ReadU64());
  PGHIVE_ASSIGN_OR_RETURN(e.source, r->ReadU64());
  PGHIVE_ASSIGN_OR_RETURN(e.target, r->ReadU64());
  PGHIVE_RETURN_NOT_OK(DecodeElementCommon(r, &e));
  return e;
}

void EncodeGraph(const PropertyGraph& g, BinaryWriter* w) {
  w->WriteU64(g.num_nodes());
  for (const auto& n : g.nodes()) EncodeNode(n, w);
  w->WriteU64(g.num_edges());
  for (const auto& e : g.edges()) EncodeEdge(e, w);
}

Result<PropertyGraph> DecodeGraph(BinaryReader* r) {
  PropertyGraph g;
  PGHIVE_ASSIGN_OR_RETURN(uint64_t num_nodes, r->ReadU64());
  for (uint64_t i = 0; i < num_nodes; ++i) {
    PGHIVE_ASSIGN_OR_RETURN(NodeData n, DecodeNode(r));
    if (n.id != i) {
      return Status::ParseError("graph node ids must be dense 0..n-1");
    }
    g.AddNode(std::move(n.labels), std::move(n.properties),
              std::move(n.truth_type));
  }
  PGHIVE_ASSIGN_OR_RETURN(uint64_t num_edges, r->ReadU64());
  for (uint64_t i = 0; i < num_edges; ++i) {
    PGHIVE_ASSIGN_OR_RETURN(EdgeData e, DecodeEdge(r));
    if (e.id != i) {
      return Status::ParseError("graph edge ids must be dense 0..m-1");
    }
    auto added = g.AddEdge(e.source, e.target, std::move(e.labels),
                           std::move(e.properties), std::move(e.truth_type));
    if (!added.ok()) {
      return Status::ParseError("graph edge references missing endpoint: " +
                                added.status().message());
    }
  }
  return g;
}

namespace {

void EncodeStringTable(const SymbolTable& table, BinaryWriter* w) {
  w->WriteU32(static_cast<uint32_t>(table.size()));
  for (size_t i = 0; i < table.size(); ++i) {
    w->WriteString(table.name(static_cast<SymbolId>(i)));
  }
}

Status DecodeStringTable(BinaryReader* r, SymbolTable* table) {
  PGHIVE_ASSIGN_OR_RETURN(uint32_t n, r->ReadU32());
  for (uint32_t i = 0; i < n; ++i) {
    PGHIVE_ASSIGN_OR_RETURN(std::string name, r->ReadString());
    if (table->Intern(name) != i) {
      return Status::ParseError("symbol table contains a duplicate string");
    }
  }
  return Status::OK();
}

void EncodeSetPool(const SymbolSetPool& pool, BinaryWriter* w) {
  w->WriteU32(static_cast<uint32_t>(pool.size()));
  for (size_t s = 0; s < pool.size(); ++s) {
    const auto& ids = pool.ids(static_cast<SymbolSetId>(s));
    w->WriteU32(static_cast<uint32_t>(ids.size()));
    for (SymbolId id : ids) w->WriteU32(id);
  }
}

Status DecodeSetPool(BinaryReader* r, const SymbolTable& table,
                     SymbolSetPool* pool) {
  PGHIVE_ASSIGN_OR_RETURN(uint32_t num_sets, r->ReadU32());
  std::vector<std::string_view> members;
  for (uint32_t s = 0; s < num_sets; ++s) {
    PGHIVE_ASSIGN_OR_RETURN(uint32_t n, r->ReadU32());
    members.clear();
    members.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      PGHIVE_ASSIGN_OR_RETURN(uint32_t id, r->ReadU32());
      if (id >= table.size()) {
        return Status::ParseError("symbol set references an unknown symbol");
      }
      std::string_view name = table.name(id);
      if (!members.empty() && members.back() >= name) {
        return Status::ParseError("symbol set is not in canonical order");
      }
      members.push_back(name);
    }
    // Re-interning in file order must reproduce the dense id sequence; the
    // pre-interned empty set at id 0 lines up because every writer context
    // starts with it too.
    if (pool->InternSorted(members) != s) {
      return Status::ParseError("symbol set pool is not canonical");
    }
  }
  return Status::OK();
}

}  // namespace

void EncodeSymbols(const GraphSymbols& sym, BinaryWriter* w) {
  EncodeStringTable(sym.labels, w);
  EncodeStringTable(sym.keys, w);
  EncodeSetPool(sym.label_sets, w);
  EncodeSetPool(sym.key_sets, w);
}

Result<std::shared_ptr<GraphSymbols>> DecodeSymbols(BinaryReader* r) {
  auto sym = std::make_shared<GraphSymbols>();
  PGHIVE_RETURN_NOT_OK(DecodeStringTable(r, &sym->labels));
  PGHIVE_RETURN_NOT_OK(DecodeStringTable(r, &sym->keys));
  PGHIVE_RETURN_NOT_OK(DecodeSetPool(r, sym->labels, &sym->label_sets));
  PGHIVE_RETURN_NOT_OK(DecodeSetPool(r, sym->keys, &sym->key_sets));
  return sym;
}

void EncodeGraphColumnar(const PropertyGraph& g, BinaryWriter* w) {
  w->WriteU64(g.num_nodes());
  for (const Node& n : g.nodes()) {
    w->WriteU32(n.label_set);
    w->WriteU32(n.key_set);
    for (size_t i = 0; i < n.properties.size(); ++i) {
      EncodeValue(n.properties.value_at(i), w);
    }
    w->WriteString(n.truth_type);
  }
  w->WriteU64(g.num_edges());
  for (const Edge& e : g.edges()) {
    w->WriteU64(e.source);
    w->WriteU64(e.target);
    w->WriteU32(e.label_set);
    w->WriteU32(e.key_set);
    for (size_t i = 0; i < e.properties.size(); ++i) {
      EncodeValue(e.properties.value_at(i), w);
    }
    w->WriteString(e.truth_type);
  }
}

Result<PropertyGraph> DecodeGraphColumnar(
    BinaryReader* r, std::shared_ptr<GraphSymbols> symbols) {
  const GraphSymbols& sym = *symbols;
  PropertyGraph g(std::move(symbols));
  PGHIVE_ASSIGN_OR_RETURN(uint64_t num_nodes, r->ReadU64());
  for (uint64_t i = 0; i < num_nodes; ++i) {
    PGHIVE_ASSIGN_OR_RETURN(uint32_t label_set, r->ReadU32());
    PGHIVE_ASSIGN_OR_RETURN(uint32_t key_set, r->ReadU32());
    if (key_set >= sym.key_sets.size()) {
      return Status::ParseError("node references an unknown key set");
    }
    std::vector<Value> values;
    values.reserve(sym.key_sets.set_size(key_set));
    for (size_t v = 0; v < sym.key_sets.set_size(key_set); ++v) {
      PGHIVE_ASSIGN_OR_RETURN(Value value, DecodeValue(r));
      values.push_back(std::move(value));
    }
    PGHIVE_ASSIGN_OR_RETURN(std::string truth, r->ReadString());
    Result<NodeId> added = g.AddNodeInterned(label_set, key_set,
                                             std::move(values),
                                             std::move(truth));
    if (!added.ok()) {
      return Status::ParseError("columnar node invalid: " +
                                added.status().message());
    }
  }
  PGHIVE_ASSIGN_OR_RETURN(uint64_t num_edges, r->ReadU64());
  for (uint64_t i = 0; i < num_edges; ++i) {
    PGHIVE_ASSIGN_OR_RETURN(uint64_t source, r->ReadU64());
    PGHIVE_ASSIGN_OR_RETURN(uint64_t target, r->ReadU64());
    PGHIVE_ASSIGN_OR_RETURN(uint32_t label_set, r->ReadU32());
    PGHIVE_ASSIGN_OR_RETURN(uint32_t key_set, r->ReadU32());
    if (key_set >= sym.key_sets.size()) {
      return Status::ParseError("edge references an unknown key set");
    }
    std::vector<Value> values;
    values.reserve(sym.key_sets.set_size(key_set));
    for (size_t v = 0; v < sym.key_sets.set_size(key_set); ++v) {
      PGHIVE_ASSIGN_OR_RETURN(Value value, DecodeValue(r));
      values.push_back(std::move(value));
    }
    PGHIVE_ASSIGN_OR_RETURN(std::string truth, r->ReadString());
    Result<EdgeId> added =
        g.AddEdgeInterned(source, target, label_set, key_set,
                          std::move(values), std::move(truth));
    if (!added.ok()) {
      return Status::ParseError("columnar edge invalid: " +
                                added.status().message());
    }
  }
  return g;
}

void EncodeBatchPayload(const std::vector<NodeData>& nodes,
                        const std::vector<EdgeData>& edges, BinaryWriter* w) {
  w->WriteU64(nodes.size());
  for (const auto& n : nodes) EncodeNode(n, w);
  w->WriteU64(edges.size());
  for (const auto& e : edges) EncodeEdge(e, w);
}

Result<BatchPayload> DecodeBatchPayload(BinaryReader* r) {
  BatchPayload p;
  PGHIVE_ASSIGN_OR_RETURN(uint64_t num_nodes, r->ReadU64());
  p.nodes.reserve(num_nodes < 4096 ? num_nodes : 4096);
  for (uint64_t i = 0; i < num_nodes; ++i) {
    PGHIVE_ASSIGN_OR_RETURN(NodeData n, DecodeNode(r));
    p.nodes.push_back(std::move(n));
  }
  PGHIVE_ASSIGN_OR_RETURN(uint64_t num_edges, r->ReadU64());
  p.edges.reserve(num_edges < 4096 ? num_edges : 4096);
  for (uint64_t i = 0; i < num_edges; ++i) {
    PGHIVE_ASSIGN_OR_RETURN(EdgeData e, DecodeEdge(r));
    p.edges.push_back(std::move(e));
  }
  if (!r->AtEnd()) {
    return Status::ParseError("trailing bytes after batch payload");
  }
  return p;
}

namespace {

/// Batch-local dictionary for the v2 journal payload: distinct strings and
/// distinct (sorted) string sets in first-seen order.
class BatchDict {
 public:
  uint32_t StringRef(const std::string& s) {
    auto [it, fresh] =
        string_ids_.emplace(s, static_cast<uint32_t>(strings_.size()));
    if (fresh) strings_.push_back(&it->first);
    return it->second;
  }

  /// `strings` iterates in canonical (sorted) order; member refs are stored
  /// in that order so decoded sets/maps rebuild positionally.
  template <typename Strings>
  uint32_t SetRef(const Strings& strings) {
    std::vector<uint32_t> refs;
    for (const auto& s : strings) refs.push_back(StringRef(s));
    auto [it, fresh] =
        set_ids_.emplace(std::move(refs), static_cast<uint32_t>(sets_.size()));
    if (fresh) sets_.push_back(&it->first);
    return it->second;
  }

  void Encode(BinaryWriter* w) const {
    w->WriteU32(static_cast<uint32_t>(strings_.size()));
    for (const std::string* s : strings_) w->WriteString(*s);
    w->WriteU32(static_cast<uint32_t>(sets_.size()));
    for (const std::vector<uint32_t>* set : sets_) {
      w->WriteU32(static_cast<uint32_t>(set->size()));
      for (uint32_t ref : *set) w->WriteU32(ref);
    }
  }

 private:
  // Pointers into the maps' own keys (node-based containers: stable).
  std::vector<const std::string*> strings_;
  std::unordered_map<std::string, uint32_t> string_ids_;
  std::vector<const std::vector<uint32_t>*> sets_;
  std::map<std::vector<uint32_t>, uint32_t> set_ids_;
};

struct BatchDictDecoded {
  std::vector<std::string> strings;
  std::vector<std::vector<uint32_t>> sets;
};

Result<BatchDictDecoded> DecodeBatchDict(BinaryReader* r) {
  BatchDictDecoded d;
  PGHIVE_ASSIGN_OR_RETURN(uint32_t num_strings, r->ReadU32());
  d.strings.reserve(num_strings < 65536 ? num_strings : 65536);
  for (uint32_t i = 0; i < num_strings; ++i) {
    PGHIVE_ASSIGN_OR_RETURN(std::string s, r->ReadString());
    d.strings.push_back(std::move(s));
  }
  PGHIVE_ASSIGN_OR_RETURN(uint32_t num_sets, r->ReadU32());
  d.sets.reserve(num_sets < 65536 ? num_sets : 65536);
  for (uint32_t i = 0; i < num_sets; ++i) {
    PGHIVE_ASSIGN_OR_RETURN(uint32_t n, r->ReadU32());
    std::vector<uint32_t> refs;
    refs.reserve(n < 65536 ? n : 65536);
    for (uint32_t j = 0; j < n; ++j) {
      PGHIVE_ASSIGN_OR_RETURN(uint32_t ref, r->ReadU32());
      if (ref >= d.strings.size()) {
        return Status::ParseError("batch set references an unknown string");
      }
      refs.push_back(ref);
    }
    d.sets.push_back(std::move(refs));
  }
  return d;
}

Status RebuildLabels(const BatchDictDecoded& d, uint32_t set_ref,
                     std::set<std::string>* labels) {
  if (set_ref >= d.sets.size()) {
    return Status::ParseError("batch element references an unknown set");
  }
  for (uint32_t ref : d.sets[set_ref]) labels->insert(d.strings[ref]);
  return Status::OK();
}

Status RebuildProperties(const BatchDictDecoded& d, uint32_t set_ref,
                         BinaryReader* r,
                         std::map<std::string, Value>* props) {
  if (set_ref >= d.sets.size()) {
    return Status::ParseError("batch element references an unknown set");
  }
  for (uint32_t ref : d.sets[set_ref]) {
    PGHIVE_ASSIGN_OR_RETURN(Value v, DecodeValue(r));
    props->emplace(d.strings[ref], std::move(v));
  }
  return Status::OK();
}

struct PropertyKeysOf {
  const std::map<std::string, Value>& props;
  struct iterator {
    std::map<std::string, Value>::const_iterator it;
    const std::string& operator*() const { return it->first; }
    iterator& operator++() { ++it; return *this; }
    bool operator!=(const iterator& o) const { return it != o.it; }
  };
  iterator begin() const { return {props.begin()}; }
  iterator end() const { return {props.end()}; }
};

}  // namespace

void EncodeBatchPayloadV2(const std::vector<NodeData>& nodes,
                          const std::vector<EdgeData>& edges,
                          BinaryWriter* w) {
  // Pass 1: build the batch-local dictionary and each element's set refs.
  BatchDict dict;
  std::vector<std::pair<uint32_t, uint32_t>> node_refs, edge_refs;
  node_refs.reserve(nodes.size());
  for (const NodeData& n : nodes) {
    node_refs.emplace_back(dict.SetRef(n.labels),
                           dict.SetRef(PropertyKeysOf{n.properties}));
  }
  edge_refs.reserve(edges.size());
  for (const EdgeData& e : edges) {
    edge_refs.emplace_back(dict.SetRef(e.labels),
                           dict.SetRef(PropertyKeysOf{e.properties}));
  }
  // Pass 2: dictionary, then the interned element rows.
  dict.Encode(w);
  w->WriteU64(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    const NodeData& n = nodes[i];
    w->WriteU64(n.id);
    w->WriteU32(node_refs[i].first);
    w->WriteU32(node_refs[i].second);
    for (const auto& [k, v] : n.properties) EncodeValue(v, w);
    w->WriteString(n.truth_type);
  }
  w->WriteU64(edges.size());
  for (size_t i = 0; i < edges.size(); ++i) {
    const EdgeData& e = edges[i];
    w->WriteU64(e.id);
    w->WriteU64(e.source);
    w->WriteU64(e.target);
    w->WriteU32(edge_refs[i].first);
    w->WriteU32(edge_refs[i].second);
    for (const auto& [k, v] : e.properties) EncodeValue(v, w);
    w->WriteString(e.truth_type);
  }
}

namespace {

/// The v2 insert half without the trailing-bytes check — v2 payloads end
/// here, v3 payloads continue with the mutation arrays.
Result<BatchPayload> DecodeBatchPayloadV2Body(BinaryReader* r) {
  PGHIVE_ASSIGN_OR_RETURN(BatchDictDecoded dict, DecodeBatchDict(r));
  BatchPayload p;
  PGHIVE_ASSIGN_OR_RETURN(uint64_t num_nodes, r->ReadU64());
  p.nodes.reserve(num_nodes < 4096 ? num_nodes : 4096);
  for (uint64_t i = 0; i < num_nodes; ++i) {
    NodeData n;
    PGHIVE_ASSIGN_OR_RETURN(n.id, r->ReadU64());
    PGHIVE_ASSIGN_OR_RETURN(uint32_t labels_ref, r->ReadU32());
    PGHIVE_ASSIGN_OR_RETURN(uint32_t keys_ref, r->ReadU32());
    PGHIVE_RETURN_NOT_OK(RebuildLabels(dict, labels_ref, &n.labels));
    PGHIVE_RETURN_NOT_OK(RebuildProperties(dict, keys_ref, r, &n.properties));
    PGHIVE_ASSIGN_OR_RETURN(n.truth_type, r->ReadString());
    p.nodes.push_back(std::move(n));
  }
  PGHIVE_ASSIGN_OR_RETURN(uint64_t num_edges, r->ReadU64());
  p.edges.reserve(num_edges < 4096 ? num_edges : 4096);
  for (uint64_t i = 0; i < num_edges; ++i) {
    EdgeData e;
    PGHIVE_ASSIGN_OR_RETURN(e.id, r->ReadU64());
    PGHIVE_ASSIGN_OR_RETURN(e.source, r->ReadU64());
    PGHIVE_ASSIGN_OR_RETURN(e.target, r->ReadU64());
    PGHIVE_ASSIGN_OR_RETURN(uint32_t labels_ref, r->ReadU32());
    PGHIVE_ASSIGN_OR_RETURN(uint32_t keys_ref, r->ReadU32());
    PGHIVE_RETURN_NOT_OK(RebuildLabels(dict, labels_ref, &e.labels));
    PGHIVE_RETURN_NOT_OK(RebuildProperties(dict, keys_ref, r, &e.properties));
    PGHIVE_ASSIGN_OR_RETURN(e.truth_type, r->ReadString());
    p.edges.push_back(std::move(e));
  }
  return p;
}

}  // namespace

Result<BatchPayload> DecodeBatchPayloadV2(BinaryReader* r) {
  PGHIVE_ASSIGN_OR_RETURN(BatchPayload p, DecodeBatchPayloadV2Body(r));
  if (!r->AtEnd()) {
    return Status::ParseError("trailing bytes after batch payload");
  }
  return p;
}

void EncodeBatchPayloadV3(const BatchPayload& payload, BinaryWriter* w) {
  EncodeBatchPayloadV2(payload.nodes, payload.edges, w);
  const GraphMutations& m = payload.mutations;
  EncodeIdVector(m.delete_nodes, w);
  EncodeIdVector(m.delete_edges, w);
  w->WriteU32(static_cast<uint32_t>(m.update_nodes.size()));
  for (const NodeUpdate& u : m.update_nodes) {
    w->WriteU64(u.id);
    EncodeNode(u.data, w);
  }
  w->WriteU32(static_cast<uint32_t>(m.update_edges.size()));
  for (const EdgeUpdate& u : m.update_edges) {
    w->WriteU64(u.id);
    EncodeEdge(u.data, w);
  }
}

Result<BatchPayload> DecodeBatchPayloadV3(BinaryReader* r) {
  PGHIVE_ASSIGN_OR_RETURN(BatchPayload p, DecodeBatchPayloadV2Body(r));
  GraphMutations& m = p.mutations;
  PGHIVE_ASSIGN_OR_RETURN(m.delete_nodes, DecodeIdVector(r));
  PGHIVE_ASSIGN_OR_RETURN(m.delete_edges, DecodeIdVector(r));
  PGHIVE_ASSIGN_OR_RETURN(uint32_t num_node_updates, r->ReadU32());
  m.update_nodes.reserve(num_node_updates < 4096 ? num_node_updates : 4096);
  for (uint32_t i = 0; i < num_node_updates; ++i) {
    NodeUpdate u;
    PGHIVE_ASSIGN_OR_RETURN(u.id, r->ReadU64());
    PGHIVE_ASSIGN_OR_RETURN(u.data, DecodeNode(r));
    m.update_nodes.push_back(std::move(u));
  }
  PGHIVE_ASSIGN_OR_RETURN(uint32_t num_edge_updates, r->ReadU32());
  m.update_edges.reserve(num_edge_updates < 4096 ? num_edge_updates : 4096);
  for (uint32_t i = 0; i < num_edge_updates; ++i) {
    EdgeUpdate u;
    PGHIVE_ASSIGN_OR_RETURN(u.id, r->ReadU64());
    PGHIVE_ASSIGN_OR_RETURN(u.data, DecodeEdge(r));
    m.update_edges.push_back(std::move(u));
  }
  if (!r->AtEnd()) {
    return Status::ParseError("trailing bytes after batch payload");
  }
  return p;
}

void EncodeSchema(const SchemaGraph& schema, BinaryWriter* w) {
  w->WriteU32(static_cast<uint32_t>(schema.node_types.size()));
  for (const auto& t : schema.node_types) {
    w->WriteString(t.name);
    EncodeStringSet(t.labels, w);
    EncodeStringSet(t.property_keys, w);
    EncodeConstraints(t.constraints, w);
    w->WriteU8(t.is_abstract ? 1 : 0);
    EncodeIdVector(t.instances, w);
  }
  w->WriteU32(static_cast<uint32_t>(schema.edge_types.size()));
  for (const auto& t : schema.edge_types) {
    w->WriteString(t.name);
    EncodeStringSet(t.labels, w);
    EncodeStringSet(t.property_keys, w);
    EncodeConstraints(t.constraints, w);
    EncodeStringSet(t.source_labels, w);
    EncodeStringSet(t.target_labels, w);
    w->WriteU8(static_cast<uint8_t>(t.cardinality));
    w->WriteU64(t.max_out_degree);
    w->WriteU64(t.max_in_degree);
    w->WriteU8(t.is_abstract ? 1 : 0);
    EncodeIdVector(t.instances, w);
  }
}

Result<SchemaGraph> DecodeSchema(BinaryReader* r) {
  SchemaGraph schema;
  PGHIVE_ASSIGN_OR_RETURN(uint32_t num_node_types, r->ReadU32());
  schema.node_types.reserve(num_node_types < 4096 ? num_node_types : 4096);
  for (uint32_t i = 0; i < num_node_types; ++i) {
    SchemaNodeType t;
    PGHIVE_ASSIGN_OR_RETURN(t.name, r->ReadString());
    PGHIVE_ASSIGN_OR_RETURN(t.labels, DecodeStringSet(r));
    PGHIVE_ASSIGN_OR_RETURN(t.property_keys, DecodeStringSet(r));
    PGHIVE_ASSIGN_OR_RETURN(t.constraints, DecodeConstraints(r));
    PGHIVE_ASSIGN_OR_RETURN(uint8_t is_abstract, r->ReadU8());
    t.is_abstract = is_abstract != 0;
    PGHIVE_ASSIGN_OR_RETURN(t.instances, DecodeIdVector(r));
    schema.node_types.push_back(std::move(t));
  }
  PGHIVE_ASSIGN_OR_RETURN(uint32_t num_edge_types, r->ReadU32());
  schema.edge_types.reserve(num_edge_types < 4096 ? num_edge_types : 4096);
  for (uint32_t i = 0; i < num_edge_types; ++i) {
    SchemaEdgeType t;
    PGHIVE_ASSIGN_OR_RETURN(t.name, r->ReadString());
    PGHIVE_ASSIGN_OR_RETURN(t.labels, DecodeStringSet(r));
    PGHIVE_ASSIGN_OR_RETURN(t.property_keys, DecodeStringSet(r));
    PGHIVE_ASSIGN_OR_RETURN(t.constraints, DecodeConstraints(r));
    PGHIVE_ASSIGN_OR_RETURN(t.source_labels, DecodeStringSet(r));
    PGHIVE_ASSIGN_OR_RETURN(t.target_labels, DecodeStringSet(r));
    PGHIVE_ASSIGN_OR_RETURN(uint8_t cardinality, r->ReadU8());
    if (cardinality > static_cast<uint8_t>(SchemaCardinality::kManyToMany)) {
      return BadTag("cardinality", cardinality);
    }
    t.cardinality = static_cast<SchemaCardinality>(cardinality);
    PGHIVE_ASSIGN_OR_RETURN(t.max_out_degree, r->ReadU64());
    PGHIVE_ASSIGN_OR_RETURN(t.max_in_degree, r->ReadU64());
    PGHIVE_ASSIGN_OR_RETURN(uint8_t is_abstract, r->ReadU8());
    t.is_abstract = is_abstract != 0;
    PGHIVE_ASSIGN_OR_RETURN(t.instances, DecodeIdVector(r));
    schema.edge_types.push_back(std::move(t));
  }
  return schema;
}

namespace {

void EncodePropertyStats(const PropertyStats& s, BinaryWriter* w) {
  w->WriteU64(s.observed);
  w->WriteU64(s.absent);
  w->WriteU64(s.distinct);
  w->WriteU64(s.numeric_count);
  w->WriteDouble(s.numeric_min);
  w->WriteDouble(s.numeric_max);
  w->WriteString(s.lexical_min);
  w->WriteString(s.lexical_max);
  w->WriteU32(static_cast<uint32_t>(s.top_values.size()));
  for (const auto& [value, count] : s.top_values) {
    w->WriteString(value);
    w->WriteU64(count);
  }
  w->WriteU8(s.enum_candidate ? 1 : 0);
  w->WriteU32(static_cast<uint32_t>(s.enum_domain.size()));
  for (const auto& v : s.enum_domain) w->WriteString(v);
}

Result<PropertyStats> DecodePropertyStats(BinaryReader* r) {
  PropertyStats s;
  PGHIVE_ASSIGN_OR_RETURN(s.observed, r->ReadU64());
  PGHIVE_ASSIGN_OR_RETURN(s.absent, r->ReadU64());
  PGHIVE_ASSIGN_OR_RETURN(s.distinct, r->ReadU64());
  PGHIVE_ASSIGN_OR_RETURN(s.numeric_count, r->ReadU64());
  PGHIVE_ASSIGN_OR_RETURN(s.numeric_min, r->ReadDouble());
  PGHIVE_ASSIGN_OR_RETURN(s.numeric_max, r->ReadDouble());
  PGHIVE_ASSIGN_OR_RETURN(s.lexical_min, r->ReadString());
  PGHIVE_ASSIGN_OR_RETURN(s.lexical_max, r->ReadString());
  PGHIVE_ASSIGN_OR_RETURN(uint32_t num_top, r->ReadU32());
  for (uint32_t i = 0; i < num_top; ++i) {
    PGHIVE_ASSIGN_OR_RETURN(std::string value, r->ReadString());
    PGHIVE_ASSIGN_OR_RETURN(uint64_t count, r->ReadU64());
    s.top_values.emplace_back(std::move(value), count);
  }
  PGHIVE_ASSIGN_OR_RETURN(uint8_t enum_candidate, r->ReadU8());
  s.enum_candidate = enum_candidate != 0;
  PGHIVE_ASSIGN_OR_RETURN(uint32_t num_domain, r->ReadU32());
  for (uint32_t i = 0; i < num_domain; ++i) {
    PGHIVE_ASSIGN_OR_RETURN(std::string v, r->ReadString());
    s.enum_domain.push_back(std::move(v));
  }
  return s;
}

void EncodeTypeStats(const std::vector<TypeValueStats>& types,
                     BinaryWriter* w) {
  w->WriteU32(static_cast<uint32_t>(types.size()));
  for (const auto& type : types) {
    w->WriteU32(static_cast<uint32_t>(type.size()));
    for (const auto& [key, stats] : type) {
      w->WriteString(key);
      EncodePropertyStats(stats, w);
    }
  }
}

Result<std::vector<TypeValueStats>> DecodeTypeStats(BinaryReader* r) {
  PGHIVE_ASSIGN_OR_RETURN(uint32_t num_types, r->ReadU32());
  std::vector<TypeValueStats> types;
  types.reserve(num_types < 4096 ? num_types : 4096);
  for (uint32_t i = 0; i < num_types; ++i) {
    PGHIVE_ASSIGN_OR_RETURN(uint32_t num_props, r->ReadU32());
    TypeValueStats type;
    for (uint32_t j = 0; j < num_props; ++j) {
      PGHIVE_ASSIGN_OR_RETURN(std::string key, r->ReadString());
      PGHIVE_ASSIGN_OR_RETURN(PropertyStats stats, DecodePropertyStats(r));
      type.emplace(std::move(key), std::move(stats));
    }
    types.push_back(std::move(type));
  }
  return types;
}

}  // namespace

void EncodeValueStats(const SchemaValueStats& stats, BinaryWriter* w) {
  EncodeTypeStats(stats.node_types, w);
  EncodeTypeStats(stats.edge_types, w);
}

Result<SchemaValueStats> DecodeValueStats(BinaryReader* r) {
  SchemaValueStats stats;
  PGHIVE_ASSIGN_OR_RETURN(stats.node_types, DecodeTypeStats(r));
  PGHIVE_ASSIGN_OR_RETURN(stats.edge_types, DecodeTypeStats(r));
  return stats;
}

namespace {

/// Counted degree map (snapshot v4): sorted endpoints, per endpoint the
/// sorted (neighbour, multiplicity) pairs. The degree histograms are a pure
/// function of this map, so they are rebuilt on decode rather than stored.
void EncodeCountedDegreeMap(
    const std::unordered_map<NodeId, std::unordered_map<NodeId, uint64_t>>& m,
    BinaryWriter* w) {
  std::vector<NodeId> endpoints;
  endpoints.reserve(m.size());
  for (const auto& [endpoint, others] : m) endpoints.push_back(endpoint);
  std::sort(endpoints.begin(), endpoints.end());
  w->WriteU32(static_cast<uint32_t>(endpoints.size()));
  for (NodeId endpoint : endpoints) {
    const auto& others = m.at(endpoint);
    std::vector<std::pair<NodeId, uint64_t>> sorted(others.begin(),
                                                    others.end());
    std::sort(sorted.begin(), sorted.end());
    w->WriteU64(endpoint);
    w->WriteU32(static_cast<uint32_t>(sorted.size()));
    for (const auto& [other, count] : sorted) {
      w->WriteU64(other);
      w->WriteU64(count);
    }
  }
}

Result<std::unordered_map<NodeId, std::unordered_map<NodeId, uint64_t>>>
DecodeCountedDegreeMap(BinaryReader* r,
                       std::map<uint64_t, uint64_t>* degree_hist) {
  std::unordered_map<NodeId, std::unordered_map<NodeId, uint64_t>> m;
  PGHIVE_ASSIGN_OR_RETURN(uint32_t num_endpoints, r->ReadU32());
  for (uint32_t i = 0; i < num_endpoints; ++i) {
    PGHIVE_ASSIGN_OR_RETURN(uint64_t endpoint, r->ReadU64());
    PGHIVE_ASSIGN_OR_RETURN(uint32_t num_others, r->ReadU32());
    auto& others = m[static_cast<NodeId>(endpoint)];
    for (uint32_t j = 0; j < num_others; ++j) {
      PGHIVE_ASSIGN_OR_RETURN(uint64_t other, r->ReadU64());
      PGHIVE_ASSIGN_OR_RETURN(uint64_t count, r->ReadU64());
      if (count == 0) return Status::ParseError("zero-count degree entry");
      others[static_cast<NodeId>(other)] = count;
    }
    if (num_others > 0) ++(*degree_hist)[num_others];
  }
  return m;
}

template <typename Id>
void EncodeCountMap(const std::map<Id, uint64_t>& m, BinaryWriter* w) {
  w->WriteU32(static_cast<uint32_t>(m.size()));
  for (const auto& [id, n] : m) {
    w->WriteU32(static_cast<uint32_t>(id));
    w->WriteU64(n);
  }
}

template <typename Id>
Status DecodeCountMap(BinaryReader* r, std::map<Id, uint64_t>* m) {
  PGHIVE_ASSIGN_OR_RETURN(uint32_t entries, r->ReadU32());
  for (uint32_t i = 0; i < entries; ++i) {
    PGHIVE_ASSIGN_OR_RETURN(uint32_t id, r->ReadU32());
    PGHIVE_ASSIGN_OR_RETURN(uint64_t n, r->ReadU64());
    (*m)[static_cast<Id>(id)] = n;
  }
  return Status::OK();
}

void EncodeTypeAggregate(const TypeAggregate& a, BinaryWriter* w) {
  w->WriteU64(a.folded);
  EncodeCountMap(a.key_set_counts, w);
  EncodeCountMap(a.label_set_counts, w);
  w->WriteU32(static_cast<uint32_t>(a.keys.size()));
  for (const auto& [sid, pa] : a.keys) {
    w->WriteU32(sid);
    w->WriteU64(pa.present);
    for (uint64_t c : pa.type_counts) w->WriteU64(c);
    w->WriteU64(pa.numeric_count);
    w->WriteDouble(pa.numeric_min);
    w->WriteDouble(pa.numeric_max);
  }
  EncodeCountMap(a.src_set_counts, w);
  EncodeCountMap(a.tgt_set_counts, w);
  EncodeCountedDegreeMap(a.out_counts, w);
  EncodeCountedDegreeMap(a.in_counts, w);
}

Result<TypeAggregate> DecodeTypeAggregate(BinaryReader* r) {
  TypeAggregate a;
  PGHIVE_ASSIGN_OR_RETURN(a.folded, r->ReadU64());
  PGHIVE_RETURN_NOT_OK(DecodeCountMap(r, &a.key_set_counts));
  PGHIVE_RETURN_NOT_OK(DecodeCountMap(r, &a.label_set_counts));
  PGHIVE_ASSIGN_OR_RETURN(uint32_t num_keys, r->ReadU32());
  for (uint32_t i = 0; i < num_keys; ++i) {
    PGHIVE_ASSIGN_OR_RETURN(uint32_t sid, r->ReadU32());
    PropertyAggregate pa;
    PGHIVE_ASSIGN_OR_RETURN(pa.present, r->ReadU64());
    for (size_t d = 0; d < kNumDataTypes; ++d) {
      PGHIVE_ASSIGN_OR_RETURN(pa.type_counts[d], r->ReadU64());
    }
    PGHIVE_ASSIGN_OR_RETURN(pa.numeric_count, r->ReadU64());
    PGHIVE_ASSIGN_OR_RETURN(pa.numeric_min, r->ReadDouble());
    PGHIVE_ASSIGN_OR_RETURN(pa.numeric_max, r->ReadDouble());
    a.keys[static_cast<SymbolId>(sid)] = pa;
  }
  PGHIVE_RETURN_NOT_OK(DecodeCountMap(r, &a.src_set_counts));
  PGHIVE_RETURN_NOT_OK(DecodeCountMap(r, &a.tgt_set_counts));
  PGHIVE_ASSIGN_OR_RETURN(a.out_counts,
                          DecodeCountedDegreeMap(r, &a.out_degree_hist));
  PGHIVE_ASSIGN_OR_RETURN(a.in_counts,
                          DecodeCountedDegreeMap(r, &a.in_degree_hist));
  return a;
}

}  // namespace

void EncodeAggregates(const SchemaAggregates& agg, BinaryWriter* w) {
  w->WriteU32(static_cast<uint32_t>(agg.node_types.size()));
  for (const auto& a : agg.node_types) EncodeTypeAggregate(a, w);
  w->WriteU32(static_cast<uint32_t>(agg.edge_types.size()));
  for (const auto& a : agg.edge_types) EncodeTypeAggregate(a, w);
}

Result<SchemaAggregates> DecodeAggregates(BinaryReader* r) {
  SchemaAggregates agg;
  PGHIVE_ASSIGN_OR_RETURN(uint32_t num_node_types, r->ReadU32());
  agg.node_types.reserve(num_node_types < 4096 ? num_node_types : 4096);
  for (uint32_t i = 0; i < num_node_types; ++i) {
    PGHIVE_ASSIGN_OR_RETURN(TypeAggregate a, DecodeTypeAggregate(r));
    agg.node_types.push_back(std::move(a));
  }
  PGHIVE_ASSIGN_OR_RETURN(uint32_t num_edge_types, r->ReadU32());
  agg.edge_types.reserve(num_edge_types < 4096 ? num_edge_types : 4096);
  for (uint32_t i = 0; i < num_edge_types; ++i) {
    PGHIVE_ASSIGN_OR_RETURN(TypeAggregate a, DecodeTypeAggregate(r));
    agg.edge_types.push_back(std::move(a));
  }
  return agg;
}

void EncodeAdaptiveParams(const AdaptiveLshParams& p, BinaryWriter* w) {
  w->WriteDouble(p.mu);
  w->WriteDouble(p.b_base);
  w->WriteDouble(p.alpha);
  w->WriteDouble(p.bucket_length);
  w->WriteU32(static_cast<uint32_t>(p.num_tables));
}

Result<AdaptiveLshParams> DecodeAdaptiveParams(BinaryReader* r) {
  AdaptiveLshParams p;
  PGHIVE_ASSIGN_OR_RETURN(p.mu, r->ReadDouble());
  PGHIVE_ASSIGN_OR_RETURN(p.b_base, r->ReadDouble());
  PGHIVE_ASSIGN_OR_RETURN(p.alpha, r->ReadDouble());
  PGHIVE_ASSIGN_OR_RETURN(p.bucket_length, r->ReadDouble());
  PGHIVE_ASSIGN_OR_RETURN(uint32_t tables, r->ReadU32());
  p.num_tables = static_cast<int>(tables);
  return p;
}

}  // namespace store
}  // namespace pghive
