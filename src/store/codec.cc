#include "store/codec.h"

namespace pghive {
namespace store {

namespace {

// Value wire tags. Stable on-disk numbers — append, never renumber.
enum ValueTag : uint8_t {
  kValNull = 0,
  kValInt = 1,
  kValDouble = 2,
  kValBool = 3,
  kValString = 4,
  kValDate = 5,
  kValTimestamp = 6,
};

Status BadTag(const char* what, unsigned tag) {
  return Status::ParseError(std::string("unknown ") + what + " tag " +
                            std::to_string(tag));
}

template <typename Elem>
void EncodeElementCommon(const Elem& e, BinaryWriter* w) {
  EncodeStringSet(e.labels, w);
  w->WriteU32(static_cast<uint32_t>(e.properties.size()));
  for (const auto& [key, value] : e.properties) {
    w->WriteString(key);
    EncodeValue(value, w);
  }
  w->WriteString(e.truth_type);
}

template <typename Elem>
Status DecodeElementCommon(BinaryReader* r, Elem* e) {
  PGHIVE_ASSIGN_OR_RETURN(e->labels, DecodeStringSet(r));
  PGHIVE_ASSIGN_OR_RETURN(uint32_t num_props, r->ReadU32());
  for (uint32_t i = 0; i < num_props; ++i) {
    PGHIVE_ASSIGN_OR_RETURN(std::string key, r->ReadString());
    PGHIVE_ASSIGN_OR_RETURN(Value value, DecodeValue(r));
    e->properties.emplace(std::move(key), std::move(value));
  }
  PGHIVE_ASSIGN_OR_RETURN(e->truth_type, r->ReadString());
  return Status::OK();
}

void EncodeIdVector(const std::vector<uint64_t>& ids, BinaryWriter* w) {
  w->WriteU64(ids.size());
  for (uint64_t id : ids) w->WriteU64(id);
}

Result<std::vector<uint64_t>> DecodeIdVector(BinaryReader* r) {
  PGHIVE_ASSIGN_OR_RETURN(uint64_t n, r->ReadU64());
  if (n > r->remaining() / sizeof(uint64_t)) {
    return Status::ParseError("id vector length exceeds input size");
  }
  std::vector<uint64_t> ids;
  ids.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    PGHIVE_ASSIGN_OR_RETURN(uint64_t id, r->ReadU64());
    ids.push_back(id);
  }
  return ids;
}

void EncodeConstraints(const std::map<std::string, PropertyConstraint>& cs,
                       BinaryWriter* w) {
  w->WriteU32(static_cast<uint32_t>(cs.size()));
  for (const auto& [key, c] : cs) {
    w->WriteString(key);
    w->WriteU8(static_cast<uint8_t>(c.type));
    w->WriteU8(c.mandatory ? 1 : 0);
  }
}

Result<std::map<std::string, PropertyConstraint>> DecodeConstraints(
    BinaryReader* r) {
  PGHIVE_ASSIGN_OR_RETURN(uint32_t n, r->ReadU32());
  std::map<std::string, PropertyConstraint> cs;
  for (uint32_t i = 0; i < n; ++i) {
    PGHIVE_ASSIGN_OR_RETURN(std::string key, r->ReadString());
    PGHIVE_ASSIGN_OR_RETURN(uint8_t type, r->ReadU8());
    PGHIVE_ASSIGN_OR_RETURN(uint8_t mandatory, r->ReadU8());
    if (type > static_cast<uint8_t>(DataType::kString)) {
      return BadTag("datatype", type);
    }
    PropertyConstraint c;
    c.type = static_cast<DataType>(type);
    c.mandatory = mandatory != 0;
    cs.emplace(std::move(key), c);
  }
  return cs;
}

}  // namespace

void EncodeStringSet(const std::set<std::string>& s, BinaryWriter* w) {
  w->WriteU32(static_cast<uint32_t>(s.size()));
  for (const auto& item : s) w->WriteString(item);
}

Result<std::set<std::string>> DecodeStringSet(BinaryReader* r) {
  PGHIVE_ASSIGN_OR_RETURN(uint32_t n, r->ReadU32());
  std::set<std::string> s;
  for (uint32_t i = 0; i < n; ++i) {
    PGHIVE_ASSIGN_OR_RETURN(std::string item, r->ReadString());
    s.insert(std::move(item));
  }
  return s;
}

void EncodeDoubleVector(const std::vector<double>& v, BinaryWriter* w) {
  w->WriteU64(v.size());
  for (double d : v) w->WriteDouble(d);
}

Result<std::vector<double>> DecodeDoubleVector(BinaryReader* r) {
  PGHIVE_ASSIGN_OR_RETURN(uint64_t n, r->ReadU64());
  if (n > r->remaining() / sizeof(double)) {
    return Status::ParseError("double vector length exceeds input size");
  }
  std::vector<double> v;
  v.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    PGHIVE_ASSIGN_OR_RETURN(double d, r->ReadDouble());
    v.push_back(d);
  }
  return v;
}

void EncodeValue(const Value& v, BinaryWriter* w) {
  if (v.is_null()) {
    w->WriteU8(kValNull);
    return;
  }
  switch (v.type()) {
    case DataType::kInt:
      w->WriteU8(kValInt);
      w->WriteU64(static_cast<uint64_t>(v.AsInt()));
      return;
    case DataType::kDouble:
      w->WriteU8(kValDouble);
      w->WriteDouble(v.AsDouble());
      return;
    case DataType::kBool:
      w->WriteU8(kValBool);
      w->WriteU8(v.AsBool() ? 1 : 0);
      return;
    case DataType::kDate:
      w->WriteU8(kValDate);
      w->WriteString(v.AsString());
      return;
    case DataType::kTimestamp:
      w->WriteU8(kValTimestamp);
      w->WriteString(v.AsString());
      return;
    case DataType::kString:
      w->WriteU8(kValString);
      w->WriteString(v.AsString());
      return;
  }
}

Result<Value> DecodeValue(BinaryReader* r) {
  PGHIVE_ASSIGN_OR_RETURN(uint8_t tag, r->ReadU8());
  switch (tag) {
    case kValNull:
      return Value();
    case kValInt: {
      PGHIVE_ASSIGN_OR_RETURN(uint64_t bits, r->ReadU64());
      return Value::Int(static_cast<int64_t>(bits));
    }
    case kValDouble: {
      PGHIVE_ASSIGN_OR_RETURN(double d, r->ReadDouble());
      return Value::Double(d);
    }
    case kValBool: {
      PGHIVE_ASSIGN_OR_RETURN(uint8_t b, r->ReadU8());
      return Value::Bool(b != 0);
    }
    case kValString: {
      PGHIVE_ASSIGN_OR_RETURN(std::string s, r->ReadString());
      return Value::String(std::move(s));
    }
    case kValDate: {
      PGHIVE_ASSIGN_OR_RETURN(std::string s, r->ReadString());
      return Value::Date(std::move(s));
    }
    case kValTimestamp: {
      PGHIVE_ASSIGN_OR_RETURN(std::string s, r->ReadString());
      return Value::Timestamp(std::move(s));
    }
    default:
      return BadTag("value", tag);
  }
}

void EncodeNode(const Node& n, BinaryWriter* w) {
  w->WriteU64(n.id);
  EncodeElementCommon(n, w);
}

Result<Node> DecodeNode(BinaryReader* r) {
  Node n;
  PGHIVE_ASSIGN_OR_RETURN(n.id, r->ReadU64());
  PGHIVE_RETURN_NOT_OK(DecodeElementCommon(r, &n));
  return n;
}

void EncodeEdge(const Edge& e, BinaryWriter* w) {
  w->WriteU64(e.id);
  w->WriteU64(e.source);
  w->WriteU64(e.target);
  EncodeElementCommon(e, w);
}

Result<Edge> DecodeEdge(BinaryReader* r) {
  Edge e;
  PGHIVE_ASSIGN_OR_RETURN(e.id, r->ReadU64());
  PGHIVE_ASSIGN_OR_RETURN(e.source, r->ReadU64());
  PGHIVE_ASSIGN_OR_RETURN(e.target, r->ReadU64());
  PGHIVE_RETURN_NOT_OK(DecodeElementCommon(r, &e));
  return e;
}

void EncodeGraph(const PropertyGraph& g, BinaryWriter* w) {
  w->WriteU64(g.num_nodes());
  for (const auto& n : g.nodes()) EncodeNode(n, w);
  w->WriteU64(g.num_edges());
  for (const auto& e : g.edges()) EncodeEdge(e, w);
}

Result<PropertyGraph> DecodeGraph(BinaryReader* r) {
  PropertyGraph g;
  PGHIVE_ASSIGN_OR_RETURN(uint64_t num_nodes, r->ReadU64());
  for (uint64_t i = 0; i < num_nodes; ++i) {
    PGHIVE_ASSIGN_OR_RETURN(Node n, DecodeNode(r));
    if (n.id != i) {
      return Status::ParseError("graph node ids must be dense 0..n-1");
    }
    g.AddNode(std::move(n.labels), std::move(n.properties),
              std::move(n.truth_type));
  }
  PGHIVE_ASSIGN_OR_RETURN(uint64_t num_edges, r->ReadU64());
  for (uint64_t i = 0; i < num_edges; ++i) {
    PGHIVE_ASSIGN_OR_RETURN(Edge e, DecodeEdge(r));
    if (e.id != i) {
      return Status::ParseError("graph edge ids must be dense 0..m-1");
    }
    auto added = g.AddEdge(e.source, e.target, std::move(e.labels),
                           std::move(e.properties), std::move(e.truth_type));
    if (!added.ok()) {
      return Status::ParseError("graph edge references missing endpoint: " +
                                added.status().message());
    }
  }
  return g;
}

void EncodeBatchPayload(const std::vector<Node>& nodes,
                        const std::vector<Edge>& edges, BinaryWriter* w) {
  w->WriteU64(nodes.size());
  for (const auto& n : nodes) EncodeNode(n, w);
  w->WriteU64(edges.size());
  for (const auto& e : edges) EncodeEdge(e, w);
}

Result<BatchPayload> DecodeBatchPayload(BinaryReader* r) {
  BatchPayload p;
  PGHIVE_ASSIGN_OR_RETURN(uint64_t num_nodes, r->ReadU64());
  p.nodes.reserve(num_nodes < 4096 ? num_nodes : 4096);
  for (uint64_t i = 0; i < num_nodes; ++i) {
    PGHIVE_ASSIGN_OR_RETURN(Node n, DecodeNode(r));
    p.nodes.push_back(std::move(n));
  }
  PGHIVE_ASSIGN_OR_RETURN(uint64_t num_edges, r->ReadU64());
  p.edges.reserve(num_edges < 4096 ? num_edges : 4096);
  for (uint64_t i = 0; i < num_edges; ++i) {
    PGHIVE_ASSIGN_OR_RETURN(Edge e, DecodeEdge(r));
    p.edges.push_back(std::move(e));
  }
  if (!r->AtEnd()) {
    return Status::ParseError("trailing bytes after batch payload");
  }
  return p;
}

void EncodeSchema(const SchemaGraph& schema, BinaryWriter* w) {
  w->WriteU32(static_cast<uint32_t>(schema.node_types.size()));
  for (const auto& t : schema.node_types) {
    w->WriteString(t.name);
    EncodeStringSet(t.labels, w);
    EncodeStringSet(t.property_keys, w);
    EncodeConstraints(t.constraints, w);
    w->WriteU8(t.is_abstract ? 1 : 0);
    EncodeIdVector(t.instances, w);
  }
  w->WriteU32(static_cast<uint32_t>(schema.edge_types.size()));
  for (const auto& t : schema.edge_types) {
    w->WriteString(t.name);
    EncodeStringSet(t.labels, w);
    EncodeStringSet(t.property_keys, w);
    EncodeConstraints(t.constraints, w);
    EncodeStringSet(t.source_labels, w);
    EncodeStringSet(t.target_labels, w);
    w->WriteU8(static_cast<uint8_t>(t.cardinality));
    w->WriteU64(t.max_out_degree);
    w->WriteU64(t.max_in_degree);
    w->WriteU8(t.is_abstract ? 1 : 0);
    EncodeIdVector(t.instances, w);
  }
}

Result<SchemaGraph> DecodeSchema(BinaryReader* r) {
  SchemaGraph schema;
  PGHIVE_ASSIGN_OR_RETURN(uint32_t num_node_types, r->ReadU32());
  schema.node_types.reserve(num_node_types < 4096 ? num_node_types : 4096);
  for (uint32_t i = 0; i < num_node_types; ++i) {
    SchemaNodeType t;
    PGHIVE_ASSIGN_OR_RETURN(t.name, r->ReadString());
    PGHIVE_ASSIGN_OR_RETURN(t.labels, DecodeStringSet(r));
    PGHIVE_ASSIGN_OR_RETURN(t.property_keys, DecodeStringSet(r));
    PGHIVE_ASSIGN_OR_RETURN(t.constraints, DecodeConstraints(r));
    PGHIVE_ASSIGN_OR_RETURN(uint8_t is_abstract, r->ReadU8());
    t.is_abstract = is_abstract != 0;
    PGHIVE_ASSIGN_OR_RETURN(t.instances, DecodeIdVector(r));
    schema.node_types.push_back(std::move(t));
  }
  PGHIVE_ASSIGN_OR_RETURN(uint32_t num_edge_types, r->ReadU32());
  schema.edge_types.reserve(num_edge_types < 4096 ? num_edge_types : 4096);
  for (uint32_t i = 0; i < num_edge_types; ++i) {
    SchemaEdgeType t;
    PGHIVE_ASSIGN_OR_RETURN(t.name, r->ReadString());
    PGHIVE_ASSIGN_OR_RETURN(t.labels, DecodeStringSet(r));
    PGHIVE_ASSIGN_OR_RETURN(t.property_keys, DecodeStringSet(r));
    PGHIVE_ASSIGN_OR_RETURN(t.constraints, DecodeConstraints(r));
    PGHIVE_ASSIGN_OR_RETURN(t.source_labels, DecodeStringSet(r));
    PGHIVE_ASSIGN_OR_RETURN(t.target_labels, DecodeStringSet(r));
    PGHIVE_ASSIGN_OR_RETURN(uint8_t cardinality, r->ReadU8());
    if (cardinality > static_cast<uint8_t>(SchemaCardinality::kManyToMany)) {
      return BadTag("cardinality", cardinality);
    }
    t.cardinality = static_cast<SchemaCardinality>(cardinality);
    PGHIVE_ASSIGN_OR_RETURN(t.max_out_degree, r->ReadU64());
    PGHIVE_ASSIGN_OR_RETURN(t.max_in_degree, r->ReadU64());
    PGHIVE_ASSIGN_OR_RETURN(uint8_t is_abstract, r->ReadU8());
    t.is_abstract = is_abstract != 0;
    PGHIVE_ASSIGN_OR_RETURN(t.instances, DecodeIdVector(r));
    schema.edge_types.push_back(std::move(t));
  }
  return schema;
}

namespace {

void EncodePropertyStats(const PropertyStats& s, BinaryWriter* w) {
  w->WriteU64(s.observed);
  w->WriteU64(s.absent);
  w->WriteU64(s.distinct);
  w->WriteU64(s.numeric_count);
  w->WriteDouble(s.numeric_min);
  w->WriteDouble(s.numeric_max);
  w->WriteString(s.lexical_min);
  w->WriteString(s.lexical_max);
  w->WriteU32(static_cast<uint32_t>(s.top_values.size()));
  for (const auto& [value, count] : s.top_values) {
    w->WriteString(value);
    w->WriteU64(count);
  }
  w->WriteU8(s.enum_candidate ? 1 : 0);
  w->WriteU32(static_cast<uint32_t>(s.enum_domain.size()));
  for (const auto& v : s.enum_domain) w->WriteString(v);
}

Result<PropertyStats> DecodePropertyStats(BinaryReader* r) {
  PropertyStats s;
  PGHIVE_ASSIGN_OR_RETURN(s.observed, r->ReadU64());
  PGHIVE_ASSIGN_OR_RETURN(s.absent, r->ReadU64());
  PGHIVE_ASSIGN_OR_RETURN(s.distinct, r->ReadU64());
  PGHIVE_ASSIGN_OR_RETURN(s.numeric_count, r->ReadU64());
  PGHIVE_ASSIGN_OR_RETURN(s.numeric_min, r->ReadDouble());
  PGHIVE_ASSIGN_OR_RETURN(s.numeric_max, r->ReadDouble());
  PGHIVE_ASSIGN_OR_RETURN(s.lexical_min, r->ReadString());
  PGHIVE_ASSIGN_OR_RETURN(s.lexical_max, r->ReadString());
  PGHIVE_ASSIGN_OR_RETURN(uint32_t num_top, r->ReadU32());
  for (uint32_t i = 0; i < num_top; ++i) {
    PGHIVE_ASSIGN_OR_RETURN(std::string value, r->ReadString());
    PGHIVE_ASSIGN_OR_RETURN(uint64_t count, r->ReadU64());
    s.top_values.emplace_back(std::move(value), count);
  }
  PGHIVE_ASSIGN_OR_RETURN(uint8_t enum_candidate, r->ReadU8());
  s.enum_candidate = enum_candidate != 0;
  PGHIVE_ASSIGN_OR_RETURN(uint32_t num_domain, r->ReadU32());
  for (uint32_t i = 0; i < num_domain; ++i) {
    PGHIVE_ASSIGN_OR_RETURN(std::string v, r->ReadString());
    s.enum_domain.push_back(std::move(v));
  }
  return s;
}

void EncodeTypeStats(const std::vector<TypeValueStats>& types,
                     BinaryWriter* w) {
  w->WriteU32(static_cast<uint32_t>(types.size()));
  for (const auto& type : types) {
    w->WriteU32(static_cast<uint32_t>(type.size()));
    for (const auto& [key, stats] : type) {
      w->WriteString(key);
      EncodePropertyStats(stats, w);
    }
  }
}

Result<std::vector<TypeValueStats>> DecodeTypeStats(BinaryReader* r) {
  PGHIVE_ASSIGN_OR_RETURN(uint32_t num_types, r->ReadU32());
  std::vector<TypeValueStats> types;
  types.reserve(num_types < 4096 ? num_types : 4096);
  for (uint32_t i = 0; i < num_types; ++i) {
    PGHIVE_ASSIGN_OR_RETURN(uint32_t num_props, r->ReadU32());
    TypeValueStats type;
    for (uint32_t j = 0; j < num_props; ++j) {
      PGHIVE_ASSIGN_OR_RETURN(std::string key, r->ReadString());
      PGHIVE_ASSIGN_OR_RETURN(PropertyStats stats, DecodePropertyStats(r));
      type.emplace(std::move(key), std::move(stats));
    }
    types.push_back(std::move(type));
  }
  return types;
}

}  // namespace

void EncodeValueStats(const SchemaValueStats& stats, BinaryWriter* w) {
  EncodeTypeStats(stats.node_types, w);
  EncodeTypeStats(stats.edge_types, w);
}

Result<SchemaValueStats> DecodeValueStats(BinaryReader* r) {
  SchemaValueStats stats;
  PGHIVE_ASSIGN_OR_RETURN(stats.node_types, DecodeTypeStats(r));
  PGHIVE_ASSIGN_OR_RETURN(stats.edge_types, DecodeTypeStats(r));
  return stats;
}

void EncodeAdaptiveParams(const AdaptiveLshParams& p, BinaryWriter* w) {
  w->WriteDouble(p.mu);
  w->WriteDouble(p.b_base);
  w->WriteDouble(p.alpha);
  w->WriteDouble(p.bucket_length);
  w->WriteU32(static_cast<uint32_t>(p.num_tables));
}

Result<AdaptiveLshParams> DecodeAdaptiveParams(BinaryReader* r) {
  AdaptiveLshParams p;
  PGHIVE_ASSIGN_OR_RETURN(p.mu, r->ReadDouble());
  PGHIVE_ASSIGN_OR_RETURN(p.b_base, r->ReadDouble());
  PGHIVE_ASSIGN_OR_RETURN(p.alpha, r->ReadDouble());
  PGHIVE_ASSIGN_OR_RETURN(p.bucket_length, r->ReadDouble());
  PGHIVE_ASSIGN_OR_RETURN(uint32_t tables, r->ReadU32());
  p.num_tables = static_cast<int>(tables);
  return p;
}

}  // namespace store
}  // namespace pghive
