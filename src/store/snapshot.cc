#include "store/snapshot.h"

#include <functional>
#include <utility>

#include "common/binary_io.h"
#include "common/csv.h"
#include "runtime/parallel.h"
#include "store/codec.h"
#include "store/fs_util.h"

namespace pghive {
namespace store {

namespace {

constexpr size_t kHeaderSize = 4 + 4 + 4 + 4;  // magic, version, count, crc
constexpr size_t kSectionHeaderSize = 4 + 8 + 4;  // id, size, crc

std::string EncodeMeta(const StoreSnapshot& s) {
  BinaryWriter w;
  w.WriteU64(s.applied_batches);
  w.WriteU64(s.options_fingerprint);
  w.WriteString(s.options_summary);
  // Shard-plan layout (appended in PR 9): readers that predate it ignore
  // trailing meta bytes, and DecodeMeta below tolerates their absence, so
  // the extension is compatible in both directions.
  w.WriteU32(s.feed_shards);
  w.WriteU64(s.shard_plan_fingerprint);
  return std::move(w).Take();
}

Status DecodeMeta(const std::string& payload, StoreSnapshot* s) {
  BinaryReader r(payload);
  PGHIVE_ASSIGN_OR_RETURN(s->applied_batches, r.ReadU64());
  PGHIVE_ASSIGN_OR_RETURN(s->options_fingerprint, r.ReadU64());
  PGHIVE_ASSIGN_OR_RETURN(s->options_summary, r.ReadString());
  if (r.remaining() > 0) {
    PGHIVE_ASSIGN_OR_RETURN(s->feed_shards, r.ReadU32());
    PGHIVE_ASSIGN_OR_RETURN(s->shard_plan_fingerprint, r.ReadU64());
  }
  return Status::OK();
}

std::string EncodeAliases(const StoreSnapshot& s) {
  BinaryWriter w;
  w.WriteU32(static_cast<uint32_t>(s.aliases.size()));
  for (const auto& [alias, canonical] : s.aliases) {
    w.WriteString(alias);
    w.WriteString(canonical);
  }
  return std::move(w).Take();
}

Status DecodeAliases(const std::string& payload, StoreSnapshot* s) {
  BinaryReader r(payload);
  PGHIVE_ASSIGN_OR_RETURN(uint32_t n, r.ReadU32());
  for (uint32_t i = 0; i < n; ++i) {
    PGHIVE_ASSIGN_OR_RETURN(std::string alias, r.ReadString());
    PGHIVE_ASSIGN_OR_RETURN(std::string canonical, r.ReadString());
    s->aliases.emplace_back(std::move(alias), std::move(canonical));
  }
  return Status::OK();
}

std::string EncodeLshDiag(const StoreSnapshot& s) {
  BinaryWriter w;
  EncodeAdaptiveParams(s.node_lsh, &w);
  EncodeAdaptiveParams(s.edge_lsh, &w);
  w.WriteU64(s.node_clusters);
  w.WriteU64(s.edge_clusters);
  return std::move(w).Take();
}

Status DecodeLshDiag(const std::string& payload, StoreSnapshot* s) {
  BinaryReader r(payload);
  PGHIVE_ASSIGN_OR_RETURN(s->node_lsh, DecodeAdaptiveParams(&r));
  PGHIVE_ASSIGN_OR_RETURN(s->edge_lsh, DecodeAdaptiveParams(&r));
  PGHIVE_ASSIGN_OR_RETURN(s->node_clusters, r.ReadU64());
  PGHIVE_ASSIGN_OR_RETURN(s->edge_clusters, r.ReadU64());
  return Status::OK();
}

template <typename EncodeFn>
std::string EncodeWith(EncodeFn fn) {
  BinaryWriter w;
  fn(&w);
  return std::move(w).Take();
}

}  // namespace

const char* SnapshotSectionName(SnapshotSection s) {
  switch (s) {
    case SnapshotSection::kMeta:
      return "meta";
    case SnapshotSection::kGraph:
      return "graph";
    case SnapshotSection::kSchema:
      return "schema";
    case SnapshotSection::kTimings:
      return "timings";
    case SnapshotSection::kAliases:
      return "aliases";
    case SnapshotSection::kLshDiag:
      return "lsh-diag";
    case SnapshotSection::kValueStats:
      return "value-stats";
    case SnapshotSection::kSymbols:
      return "symbols";
    case SnapshotSection::kGraphColumnar:
      return "graph-columnar";
    case SnapshotSection::kAggregates:
      return "aggregates";
    case SnapshotSection::kDriftHistory:
      return "drift-history";
  }
  return "unknown";
}

std::string EncodeSnapshot(const StoreSnapshot& snapshot, ThreadPool* pool) {
  struct SectionSpec {
    SnapshotSection id;
    std::function<std::string()> encode;
  };
  const StoreSnapshot& s = snapshot;
  std::vector<SectionSpec> specs = {
      {SnapshotSection::kMeta, [&s] { return EncodeMeta(s); }},
      // v2 graph layout: the symbol context once, then columnar elements.
      {SnapshotSection::kSymbols,
       [&s] {
         return EncodeWith(
             [&s](BinaryWriter* w) { EncodeSymbols(s.graph.symbols(), w); });
       }},
      {SnapshotSection::kGraphColumnar,
       [&s] {
         return EncodeWith(
             [&s](BinaryWriter* w) { EncodeGraphColumnar(s.graph, w); });
       }},
      {SnapshotSection::kSchema,
       [&s] { return EncodeWith([&s](BinaryWriter* w) { EncodeSchema(s.schema, w); }); }},
      {SnapshotSection::kTimings,
       [&s] {
         return EncodeWith(
             [&s](BinaryWriter* w) { EncodeDoubleVector(s.batch_seconds, w); });
       }},
      {SnapshotSection::kAliases, [&s] { return EncodeAliases(s); }},
      {SnapshotSection::kLshDiag, [&s] { return EncodeLshDiag(s); }},
      {SnapshotSection::kValueStats,
       [&s] {
         return EncodeWith(
             [&s](BinaryWriter* w) { EncodeValueStats(s.value_stats, w); });
       }},
  };
  // v3: the aggregates section is optional — written only when the engine
  // had usable aggregates, so a snapshot without them stays byte-identical
  // to one that never carried any.
  if (s.has_aggregates) {
    specs.push_back({SnapshotSection::kAggregates, [&s] {
                       return EncodeWith([&s](BinaryWriter* w) {
                         EncodeAggregates(s.aggregates, w);
                       });
                     }});
  }
  // v4: the drift-history section is opaque tracker bytes, present only for
  // drift-tracking stores.
  if (s.has_drift) {
    specs.push_back(
        {SnapshotSection::kDriftHistory, [&s] { return s.drift_history; }});
  }

  // Per-section payload + CRC in parallel; assembly below is sequential, so
  // the emitted bytes are identical at any thread count.
  struct EncodedSection {
    std::string payload;
    uint32_t crc = 0;
  };
  std::vector<EncodedSection> sections =
      ParallelMap(pool, specs.size(), [&specs](size_t i) {
        EncodedSection enc;
        enc.payload = specs[i].encode();
        enc.crc = Crc32(enc.payload);
        return enc;
      }, /*grain=*/1);

  BinaryWriter out;
  out.WriteBytes(std::string_view(kSnapshotMagic, 4));
  out.WriteU32(kSnapshotFormatVersion);
  out.WriteU32(static_cast<uint32_t>(sections.size()));
  out.WriteU32(Crc32(out.buffer()));
  for (size_t i = 0; i < sections.size(); ++i) {
    out.WriteU32(static_cast<uint32_t>(specs[i].id));
    out.WriteU64(sections[i].payload.size());
    out.WriteU32(sections[i].crc);
    out.WriteBytes(sections[i].payload);
  }
  return std::move(out).Take();
}

namespace {

struct RawSection {
  uint32_t id = 0;
  uint32_t crc = 0;
  std::string_view payload;
};

/// Parses the header + section table without CRC-validating payloads.
Result<std::vector<RawSection>> ParseSections(const std::string& bytes,
                                              uint32_t* format_version) {
  BinaryReader r(bytes);
  PGHIVE_ASSIGN_OR_RETURN(std::string_view magic, r.ReadBytes(4));
  if (magic != std::string_view(kSnapshotMagic, 4)) {
    return Status::ParseError("not a PG-HIVE snapshot (bad magic)");
  }
  PGHIVE_ASSIGN_OR_RETURN(*format_version, r.ReadU32());
  if (*format_version == 0 || *format_version > kSnapshotFormatVersion) {
    return Status::ParseError("unsupported snapshot format version " +
                              std::to_string(*format_version));
  }
  PGHIVE_ASSIGN_OR_RETURN(uint32_t section_count, r.ReadU32());
  PGHIVE_ASSIGN_OR_RETURN(uint32_t header_crc, r.ReadU32());
  if (header_crc != Crc32(std::string_view(bytes).substr(0, 12))) {
    return Status::IoError("snapshot header CRC mismatch");
  }
  if (section_count >
      (bytes.size() - kHeaderSize) / kSectionHeaderSize + 1) {
    return Status::ParseError("snapshot section count exceeds file size");
  }
  std::vector<RawSection> sections;
  sections.reserve(section_count);
  for (uint32_t i = 0; i < section_count; ++i) {
    RawSection sec;
    PGHIVE_ASSIGN_OR_RETURN(sec.id, r.ReadU32());
    PGHIVE_ASSIGN_OR_RETURN(uint64_t size, r.ReadU64());
    PGHIVE_ASSIGN_OR_RETURN(sec.crc, r.ReadU32());
    if (size > r.remaining()) {
      return Status::ParseError("snapshot section " + std::to_string(sec.id) +
                                " size exceeds file size");
    }
    PGHIVE_ASSIGN_OR_RETURN(sec.payload, r.ReadBytes(size));
    sections.push_back(sec);
  }
  if (!r.AtEnd()) {
    return Status::ParseError("trailing bytes after snapshot sections");
  }
  return sections;
}

}  // namespace

Result<StoreSnapshot> DecodeSnapshot(const std::string& bytes) {
  uint32_t version = 0;
  PGHIVE_ASSIGN_OR_RETURN(std::vector<RawSection> sections,
                          ParseSections(bytes, &version));
  StoreSnapshot snapshot;
  bool have_meta = false, have_graph = false, have_schema = false;
  // v2 graph sections: decoded together after the loop (the columnar
  // section needs the symbol context, whatever the file order).
  std::string symbols_payload, columnar_payload;
  bool have_symbols = false, have_columnar = false;
  for (const RawSection& sec : sections) {
    if (Crc32(sec.payload) != sec.crc) {
      return Status::IoError(
          std::string("snapshot section '") +
          SnapshotSectionName(static_cast<SnapshotSection>(sec.id)) +
          "' CRC mismatch — refusing to load corrupt state");
    }
    const std::string payload(sec.payload);
    switch (static_cast<SnapshotSection>(sec.id)) {
      case SnapshotSection::kMeta:
        PGHIVE_RETURN_NOT_OK(DecodeMeta(payload, &snapshot));
        have_meta = true;
        break;
      case SnapshotSection::kGraph: {
        BinaryReader r(payload);
        PGHIVE_ASSIGN_OR_RETURN(snapshot.graph, DecodeGraph(&r));
        have_graph = true;
        break;
      }
      case SnapshotSection::kSchema: {
        BinaryReader r(payload);
        PGHIVE_ASSIGN_OR_RETURN(snapshot.schema, DecodeSchema(&r));
        have_schema = true;
        break;
      }
      case SnapshotSection::kTimings: {
        BinaryReader r(payload);
        PGHIVE_ASSIGN_OR_RETURN(snapshot.batch_seconds, DecodeDoubleVector(&r));
        break;
      }
      case SnapshotSection::kAliases:
        PGHIVE_RETURN_NOT_OK(DecodeAliases(payload, &snapshot));
        break;
      case SnapshotSection::kLshDiag:
        PGHIVE_RETURN_NOT_OK(DecodeLshDiag(payload, &snapshot));
        break;
      case SnapshotSection::kValueStats: {
        BinaryReader r(payload);
        PGHIVE_ASSIGN_OR_RETURN(snapshot.value_stats, DecodeValueStats(&r));
        break;
      }
      case SnapshotSection::kSymbols:
        symbols_payload = payload;
        have_symbols = true;
        break;
      case SnapshotSection::kGraphColumnar:
        columnar_payload = payload;
        have_columnar = true;
        break;
      case SnapshotSection::kAggregates: {
        // The v3 aggregates layout predates retraction and is not decodable
        // here; discard it so recovery's first fold rebuilds the aggregates
        // from the schema's instance lists (slower, never wrong).
        if (version < 4) break;
        BinaryReader r(payload);
        PGHIVE_ASSIGN_OR_RETURN(snapshot.aggregates, DecodeAggregates(&r));
        if (!r.AtEnd()) {
          return Status::ParseError("trailing bytes after aggregates section");
        }
        snapshot.has_aggregates = true;
        break;
      }
      case SnapshotSection::kDriftHistory:
        snapshot.drift_history = payload;
        snapshot.has_drift = true;
        break;
      default:
        // Forward compatibility: an unknown (guarded, length-prefixed)
        // section from a newer writer is skipped.
        break;
    }
  }
  if (have_columnar != have_symbols) {
    return Status::ParseError(
        "snapshot has only one of the symbols/graph-columnar section pair");
  }
  if (have_columnar && !have_graph) {
    std::shared_ptr<GraphSymbols> symbols;
    {
      BinaryReader r(symbols_payload);
      PGHIVE_ASSIGN_OR_RETURN(symbols, DecodeSymbols(&r));
      if (!r.AtEnd()) {
        return Status::ParseError("trailing bytes after symbols section");
      }
    }
    BinaryReader r(columnar_payload);
    PGHIVE_ASSIGN_OR_RETURN(snapshot.graph,
                            DecodeGraphColumnar(&r, std::move(symbols)));
    if (!r.AtEnd()) {
      return Status::ParseError(
          "trailing bytes after graph-columnar section");
    }
    have_graph = true;
  }
  if (!have_meta || !have_graph || !have_schema) {
    return Status::ParseError(
        "snapshot is missing a required section (meta/graph/schema)");
  }
  return snapshot;
}

Status WriteSnapshotFile(const std::string& path, const std::string& bytes) {
  return AtomicWriteFile(path, bytes);
}

Result<StoreSnapshot> ReadSnapshotFile(const std::string& path) {
  PGHIVE_ASSIGN_OR_RETURN(std::string bytes, ReadFile(path));
  auto snapshot = DecodeSnapshot(bytes);
  if (!snapshot.ok()) {
    return Status(snapshot.status().code(),
                  path + ": " + snapshot.status().message());
  }
  return snapshot;
}

Result<SnapshotInfo> InspectSnapshot(const std::string& bytes) {
  SnapshotInfo info;
  std::vector<RawSection> sections;
  {
    auto parsed = ParseSections(bytes, &info.format_version);
    if (!parsed.ok()) return parsed.status();
    sections = std::move(parsed).value();
  }
  info.header_ok = true;
  for (const RawSection& sec : sections) {
    SnapshotSectionInfo si;
    si.id = sec.id;
    si.name = SnapshotSectionName(static_cast<SnapshotSection>(sec.id));
    si.size = sec.payload.size();
    si.crc_ok = Crc32(sec.payload) == sec.crc;
    info.sections.push_back(std::move(si));
  }
  return info;
}

}  // namespace store
}  // namespace pghive
