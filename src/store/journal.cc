#include "store/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/binary_io.h"
#include "common/csv.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pghive {
namespace store {

namespace {

constexpr size_t kSegmentHeaderSize = 4 + 4;   // magic + version
constexpr size_t kRecordHeaderSize = 4 + 4;    // size + crc

Status Errno(const std::string& what, const std::string& path) {
  return Status::IoError(what + " '" + path + "': " + std::strerror(errno));
}

Status WriteAll(int fd, const std::string& path, std::string_view bytes) {
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("journal write failed on", path);
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status JournalWriter::Open(const std::string& path, bool fsync) {
  if (fd_ >= 0) return Status::FailedPrecondition("journal already open");
  fsync_ = fsync;
  path_ = path;
  // O_RDWR (not O_WRONLY): reopening an existing segment reads its header
  // version back, so appended records stay in the segment's own format.
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) return Errno("cannot open journal", path);
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    Status s = Errno("cannot stat journal", path);
    (void)Close();
    return s;
  }
  if (st.st_size == 0) {
    format_version_ = kJournalFormatVersion;
    BinaryWriter header;
    header.WriteBytes(std::string_view(kJournalMagic, 4));
    header.WriteU32(format_version_);
    PGHIVE_RETURN_NOT_OK(WriteAll(fd_, path_, header.buffer()));
    if (fsync_ && ::fsync(fd_) != 0) return Errno("fsync failed on", path_);
  } else {
    char header[kSegmentHeaderSize];
    ssize_t n = ::pread(fd_, header, sizeof(header), 0);
    if (n != static_cast<ssize_t>(sizeof(header)) ||
        std::string_view(header, 4) != std::string_view(kJournalMagic, 4)) {
      (void)Close();
      return Status::ParseError("'" + path +
                                "' is not a PG-HIVE journal (bad magic)");
    }
    uint32_t version = 0;
    std::memcpy(&version, header + 4, sizeof(version));
    if (version == 0 || version > kJournalFormatVersion) {
      (void)Close();
      return Status::ParseError("unsupported journal format version " +
                                std::to_string(version) + " in '" + path +
                                "'");
    }
    format_version_ = version;
  }
  return Status::OK();
}

Status JournalWriter::Append(uint64_t batch_id,
                             const std::string& batch_payload) {
  if (fd_ < 0) return Status::FailedPrecondition("journal not open");
  BinaryWriter record;
  {
    BinaryWriter payload;
    payload.WriteU64(batch_id);
    payload.WriteBytes(batch_payload);
    const std::string& body = payload.buffer();
    record.WriteU32(static_cast<uint32_t>(body.size()));
    record.WriteU32(Crc32(body));
    record.WriteBytes(body);
  }
  PGHIVE_RETURN_NOT_OK(WriteAll(fd_, path_, record.buffer()));
  static obs::Counter* journal_records = obs::MetricsRegistry::Global()
      .GetCounter("pghive.store.journal_records");
  static obs::Counter* journal_bytes = obs::MetricsRegistry::Global()
      .GetCounter("pghive.store.journal_bytes");
  static obs::Histogram* fsync_seconds = obs::MetricsRegistry::Global()
      .GetHistogram("pghive.store.fsync_seconds");
  if (fsync_) {
    const bool timed = obs::MetricsEnabled();
    const uint64_t start_ns = timed ? obs::TraceNowNs() : 0;
    if (::fdatasync(fd_) != 0) return Errno("fdatasync failed on", path_);
    if (timed) {
      fsync_seconds->Observe(
          static_cast<double>(obs::TraceNowNs() - start_ns) * 1e-9);
    }
  }
  journal_records->Add(1);
  journal_bytes->Add(record.size());
  bytes_written_ += record.size();
  return Status::OK();
}

Status JournalWriter::Close() {
  if (fd_ < 0) return Status::OK();
  int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) return Errno("close failed on", path_);
  return Status::OK();
}

Result<JournalReadResult> ReadJournalSegment(const std::string& path) {
  PGHIVE_ASSIGN_OR_RETURN(std::string bytes, ReadFile(path));
  BinaryReader r(bytes);
  uint32_t version = 0;
  {
    auto magic = r.ReadBytes(4);
    if (!magic.ok() || *magic != std::string_view(kJournalMagic, 4)) {
      return Status::ParseError("'" + path +
                                "' is not a PG-HIVE journal (bad magic)");
    }
    PGHIVE_ASSIGN_OR_RETURN(version, r.ReadU32());
    if (version == 0 || version > kJournalFormatVersion) {
      return Status::ParseError("unsupported journal format version " +
                                std::to_string(version) + " in '" + path +
                                "'");
    }
  }

  JournalReadResult result;
  result.valid_bytes = kSegmentHeaderSize;
  while (!r.AtEnd()) {
    // Any failure from here to the end of the loop body invalidates only
    // the tail: framing cannot be resynchronized past a bad length prefix.
    if (r.remaining() < kRecordHeaderSize) {
      result.torn_tail = true;
      result.tail_error = "incomplete record header (" +
                          std::to_string(r.remaining()) + " trailing bytes)";
      break;
    }
    uint32_t size = r.ReadU32().value();
    uint32_t crc = r.ReadU32().value();
    if (size > r.remaining()) {
      result.torn_tail = true;
      result.tail_error = "record body truncated (declared " +
                          std::to_string(size) + " bytes, " +
                          std::to_string(r.remaining()) + " present)";
      break;
    }
    std::string_view body = r.ReadBytes(size).value();
    if (Crc32(body) != crc) {
      result.torn_tail = true;
      result.tail_error = "record CRC mismatch";
      break;
    }
    BinaryReader body_reader(body);
    JournalRecord record;
    auto batch_id = body_reader.ReadU64();
    if (!batch_id.ok()) {
      result.torn_tail = true;
      result.tail_error = "record payload undecodable: " +
                          batch_id.status().message();
      break;
    }
    record.batch_id = *batch_id;
    auto payload = version >= 3   ? DecodeBatchPayloadV3(&body_reader)
                   : version >= 2 ? DecodeBatchPayloadV2(&body_reader)
                                  : DecodeBatchPayload(&body_reader);
    if (!payload.ok()) {
      result.torn_tail = true;
      result.tail_error = "record payload undecodable: " +
                          payload.status().message();
      break;
    }
    record.payload = std::move(payload).value();
    result.records.push_back(std::move(record));
    result.valid_bytes = r.position();
  }
  return result;
}

}  // namespace store
}  // namespace pghive
