// Versioned binary snapshot of the full incremental-discovery state.
//
// File layout (all integers little-endian):
//
//   "PGHS" magic | u32 format_version | u32 section_count | u32 header_crc
//   then section_count times:
//     u32 section_id | u64 payload_size | u32 payload_crc | payload bytes
//
// Every section payload is CRC32-guarded independently, so corruption is
// detected per section and reported with the section name. Unknown section
// ids are skipped on read (older binaries open newer snapshots as long as
// the sections they need are intact). Encoding a decoded snapshot yields the
// byte-identical file: doubles round-trip as raw bit patterns and all
// containers serialize in deterministic order.
//
// Section encoding (and CRC computation) fans out across the PR-1 execution
// runtime when a ThreadPool is supplied; the assembled bytes are identical
// at any thread count.

#ifndef PGHIVE_STORE_SNAPSHOT_H_
#define PGHIVE_STORE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/aggregates.h"
#include "core/schema.h"
#include "core/value_stats.h"
#include "graph/property_graph.h"
#include "lsh/adaptive_params.h"
#include "runtime/thread_pool.h"

namespace pghive {
namespace store {

inline constexpr char kSnapshotMagic[4] = {'P', 'G', 'H', 'S'};
/// v1 stored the graph as one string-heavy section (kGraph); v2 splits it
/// into the interned symbol tables (kSymbols) + a columnar element section
/// (kGraphColumnar) — each distinct string and set written once; v3 adds
/// the optional kAggregates section carrying the delta-maintained
/// post-processing aggregates so recovery resumes without rebuilding them;
/// v4 re-encodes the aggregates in the RETRACTABLE counted layout (mutation
/// streams) and adds the optional kDriftHistory section. A v3 file's
/// aggregates section uses the old layout and is DISCARDED on load (the
/// next fold rebuilds the aggregates — correctness is unaffected). v1-v3
/// files still load; the writer always emits v4.
inline constexpr uint32_t kSnapshotFormatVersion = 4;

/// Stable on-disk section identifiers — append, never renumber.
enum class SnapshotSection : uint32_t {
  kMeta = 1,        // counters, options fingerprint + summary
  kGraph = 2,       // v1 only: string-heavy accumulated property graph
  kSchema = 3,      // discovered SchemaGraph incl. instance assignments
  kTimings = 4,     // per-batch wall-clock seconds (Figure 7 series)
  kAliases = 5,     // label-alias map in effect during discovery
  kLshDiag = 6,     // adaptive LSH parameters + bucket/cluster counts
  kValueStats = 7,  // value/datatype statistics of the discovered types
  kSymbols = 8,     // v2: interned symbol tables + canonical set pools
  kGraphColumnar = 9,  // v2: columnar elements over kSymbols ids
  kAggregates = 10,    // v3+: delta-maintained post-processing aggregates
                       // (layout changed in v4; pre-v4 payloads discarded)
  kDriftHistory = 11,  // v4: serialized drift tracker (history + counters)
};

const char* SnapshotSectionName(SnapshotSection s);

/// Everything the incremental engine needs to resume exactly where a
/// stopped or crashed process left off.
struct StoreSnapshot {
  /// Number of batches whose effects this snapshot contains (also the id of
  /// the next expected batch; journal records below this id are skipped on
  /// recovery).
  uint64_t applied_batches = 0;
  /// Fingerprint of the discovery options that produced this state. Replay
  /// under different options would diverge from the uninterrupted run, so
  /// recovery refuses a mismatch.
  uint64_t options_fingerprint = 0;
  /// Human-readable options summary for `pghive inspect-state`.
  std::string options_summary;

  /// Shard-plan layout in effect when the snapshot was written (see
  /// core/shard_plan.h): the configured feed-shard count and the plan's
  /// stable fingerprint. Output-neutral — resume under a different layout
  /// still converges to byte-identical schemas — but recovery warns on a
  /// change so operators can keep the layout stable across restarts.
  /// Fingerprint 0 marks a file from before the sharded Feed path existed.
  uint32_t feed_shards = 1;
  uint64_t shard_plan_fingerprint = 0;

  PropertyGraph graph;
  SchemaGraph schema;
  std::vector<double> batch_seconds;
  std::vector<std::pair<std::string, std::string>> aliases;

  // Last batch's LSH table state (adaptive parameters + raw bucket-cluster
  // counts), persisted for diagnostics continuity across restarts.
  AdaptiveLshParams node_lsh;
  AdaptiveLshParams edge_lsh;
  uint64_t node_clusters = 0;
  uint64_t edge_clusters = 0;

  SchemaValueStats value_stats;

  /// Delta-maintained post-processing aggregates (core/aggregates.h),
  /// present (has_aggregates) when the engine had usable aggregates at
  /// checkpoint time. Absent in v1/v2 files and when the engine ran with
  /// aggregate post-processing off — recovery then rebuilds them.
  SchemaAggregates aggregates;
  bool has_aggregates = false;

  /// Serialized drift tracker (drift::DriftTracker::Serialize bytes),
  /// present (has_drift) when the store tracks schema drift. The snapshot
  /// layer treats it as opaque — the store layer owns the tracker.
  std::string drift_history;
  bool has_drift = false;
};

/// Serializes the snapshot; per-section encode + CRC runs through `pool`
/// (null = sequential, identical bytes either way).
std::string EncodeSnapshot(const StoreSnapshot& snapshot,
                           ThreadPool* pool = nullptr);

/// Parses and validates a snapshot. Fails with ParseError on structural
/// corruption and IoError on a CRC mismatch (naming the bad section);
/// required sections (meta, graph, schema) must be present.
Result<StoreSnapshot> DecodeSnapshot(const std::string& bytes);

/// Durable write: <path>.tmp + fsync + rename + directory fsync, so a crash
/// mid-write never leaves a half-written snapshot under the final name.
Status WriteSnapshotFile(const std::string& path, const std::string& bytes);

Result<StoreSnapshot> ReadSnapshotFile(const std::string& path);

/// Non-validating structural probe for `pghive inspect-state`: reports each
/// section's id, name, size and CRC verdict instead of failing on the first
/// bad byte.
struct SnapshotSectionInfo {
  uint32_t id = 0;
  std::string name;
  uint64_t size = 0;
  bool crc_ok = false;
};
struct SnapshotInfo {
  uint32_t format_version = 0;
  bool header_ok = false;
  std::vector<SnapshotSectionInfo> sections;
};
Result<SnapshotInfo> InspectSnapshot(const std::string& bytes);

}  // namespace store
}  // namespace pghive

#endif  // PGHIVE_STORE_SNAPSHOT_H_
