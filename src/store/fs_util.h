// POSIX durability helpers for the state store: fsync'd writes, atomic
// renames and directory syncs. Thin wrappers that turn errno into Status.

#ifndef PGHIVE_STORE_FS_UTIL_H_
#define PGHIVE_STORE_FS_UTIL_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace pghive {
namespace store {

/// Writes `bytes` to `path`.tmp, fsyncs it, renames over `path` and fsyncs
/// the containing directory — after a crash either the old or the complete
/// new file is visible, never a torn one.
Status AtomicWriteFile(const std::string& path, std::string_view bytes);

/// fsync(2) on the directory itself, making renames/creations durable.
Status SyncDir(const std::string& dir);

/// Shrinks a file to `size` bytes (used to discard a torn journal tail).
Status TruncateFile(const std::string& path, uint64_t size);

}  // namespace store
}  // namespace pghive

#endif  // PGHIVE_STORE_FS_UTIL_H_
