// Closed-form LSH collision probabilities (paper §4.2).
//
// Used by the property tests (monotonicity in d, b, T) and the parameter
// ablation bench to relate observed clustering behaviour to theory.

#ifndef PGHIVE_LSH_COLLISION_MODEL_H_
#define PGHIVE_LSH_COLLISION_MODEL_H_

namespace pghive {

/// Single-projection ELSH collision probability p_b(d) for two points at
/// Euclidean distance d with bucket length b (Datar et al. 2004):
///   p_b(d) = 1 - 2*Phi(-b/d) - (2 / (sqrt(2*pi) * b/d)) * (1 - e^{-b^2/(2d^2)})
/// For d == 0 the probability is 1.
double ElshCollisionProbability(double distance, double bucket_length);

/// AND-OR amplified probability: k projections per table, T tables,
/// P = 1 - (1 - p^k)^T. This is the paper's P_{b,T}(d) when k = 1.
double AmplifiedProbability(double p_single, int hashes_per_table,
                            int num_tables);

/// MinHash banded collision probability for Jaccard similarity j with
/// r rows per band and `bands` bands: 1 - (1 - j^r)^bands.
double MinHashBandProbability(double jaccard, int rows_per_band, int bands);

/// Standard normal CDF.
double NormalCdf(double x);

}  // namespace pghive

#endif  // PGHIVE_LSH_COLLISION_MODEL_H_
