#include "lsh/collision_model.h"

#include <cmath>

namespace pghive {

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double ElshCollisionProbability(double distance, double bucket_length) {
  if (distance <= 0.0) return 1.0;
  if (bucket_length <= 0.0) return 0.0;
  double c = bucket_length / distance;
  double term1 = 1.0 - 2.0 * NormalCdf(-c);
  double term2 = (2.0 / (std::sqrt(2.0 * M_PI) * c)) *
                 (1.0 - std::exp(-c * c / 2.0));
  double p = term1 - term2;
  if (p < 0.0) return 0.0;
  if (p > 1.0) return 1.0;
  return p;
}

double AmplifiedProbability(double p_single, int hashes_per_table,
                            int num_tables) {
  if (p_single <= 0.0) return 0.0;
  if (p_single >= 1.0) return 1.0;
  double p_table = std::pow(p_single, hashes_per_table);
  return 1.0 - std::pow(1.0 - p_table, num_tables);
}

double MinHashBandProbability(double jaccard, int rows_per_band, int bands) {
  if (jaccard <= 0.0) return 0.0;
  if (jaccard >= 1.0) return 1.0;
  double p_band = std::pow(jaccard, rows_per_band);
  return 1.0 - std::pow(1.0 - p_band, bands);
}

}  // namespace pghive
