// Euclidean LSH (ELSH): p-stable / bucketed random projections.
//
// Datar et al. (2004). Each of the T hash tables hashes a vector x with k
// independent projections h_i(x) = floor((a_i . x + o_i) / b), where a_i has
// i.i.d. standard-normal entries, o_i ~ U[0, b), and b is the bucket length.
// A table's bucket key is the k-tuple of projection values (AND-
// amplification within a table); across tables the OR rule applies: two
// vectors are LSH-neighbours if they share a bucket in at least one table,
// giving the paper's collision probability P_{b,T}(d) = 1-(1-p_b(d)^k)^T.
//
// Spark MLlib's BucketedRandomProjectionLSH is the k=1 special case.

#ifndef PGHIVE_LSH_EUCLIDEAN_LSH_H_
#define PGHIVE_LSH_EUCLIDEAN_LSH_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "simd/aligned.h"

namespace pghive {

struct EuclideanLshOptions {
  /// Bucket length b > 0: wider buckets -> more collisions, higher recall.
  double bucket_length = 1.0;
  /// Number of hash tables T (OR rule across tables).
  int num_tables = 20;
  /// Projections per table (AND rule within a table). The adaptive bucket
  /// length is on the order of the mean pairwise distance, so a single
  /// projection collides dissimilar vectors roughly half the time; ~10
  /// AND-ed projections push the inter-type collision probability per table
  /// below 1e-3 while identical vectors still always collide.
  int hashes_per_table = 10;
  uint64_t seed = 7;
};

/// Hashes fixed-dimension real vectors into per-table bucket keys.
class EuclideanLsh {
 public:
  /// Fails with InvalidArgument on non-positive parameters.
  static Result<EuclideanLsh> Create(size_t dimension,
                                     const EuclideanLshOptions& options);

  size_t dimension() const { return dimension_; }
  int num_tables() const { return options_.num_tables; }
  const EuclideanLshOptions& options() const { return options_; }

  /// Bucket keys of `x` (size num_tables). x.size() must equal dimension().
  /// Each key already encodes the table index, so keys from different tables
  /// never collide with each other. Convenience wrapper over HashRow (copies
  /// x into an aligned scratch row).
  std::vector<uint64_t> Hash(const std::vector<float>& x) const;

  /// Hot path: bucket keys of one 32-byte-aligned feature row (an
  /// AlignedRowMatrix row whose cols == dimension(), zero-padded — exactly
  /// what FeatureEncoder produces). Writes num_tables() keys to keys_out.
  /// The dot products run through the simd kernels (scalar or AVX2 per the
  /// PGHIVE_SIMD dispatch), which are bit-identical to each other.
  void HashRow(const float* x, uint64_t* keys_out) const;

 private:
  EuclideanLsh(size_t dimension, const EuclideanLshOptions& options);

  size_t dimension_;
  EuclideanLshOptions options_;
  /// T * k rows of `dimension` Gaussian entries, one aligned zero-padded
  /// row per projection (SoA column block for the dot-product kernel).
  simd::AlignedRowMatrix projections_;
  /// T * k offsets in [0, b).
  std::vector<double> offsets_;
};

}  // namespace pghive

#endif  // PGHIVE_LSH_EUCLIDEAN_LSH_H_
