#include "lsh/sharded_candidates.h"

#include <limits>
#include <unordered_map>
#include <utility>

#include "common/union_find.h"
#include "runtime/parallel.h"

namespace pghive {

namespace {

/// One shard's local candidate set, in local discovery order.
struct ShardCandidates {
  /// (key, first local group with that key) — merge seeds.
  std::vector<std::pair<uint64_t, size_t>> anchors;
  /// Intra-shard collisions: (group, earlier anchor group).
  std::vector<std::pair<size_t, size_t>> unions;
};

}  // namespace

std::vector<std::vector<size_t>> ShardedClusterGroups(
    ThreadPool* pool, size_t num_shards,
    const std::vector<size_t>& shard_of_rep,
    const std::function<std::vector<uint64_t>(size_t)>& rep_keys_fn,
    const std::vector<size_t>& sig_of) {
  const size_t num_reps = shard_of_rep.size();
  std::vector<std::vector<size_t>> shard_reps(num_shards);
  for (size_t r = 0; r < num_reps; ++r) {
    shard_reps[shard_of_rep[r]].push_back(r);  // ascending within a shard
  }

  UnionFind uf(num_reps);
  std::unordered_map<uint64_t, size_t> global_first_seen;
  global_first_seen.reserve(num_reps);
  ParallelShardFold(
      pool, num_shards, /*init=*/0,
      [&](size_t shard) {
        ShardCandidates out;
        std::unordered_map<uint64_t, size_t> first_seen;
        first_seen.reserve(shard_reps[shard].size());
        for (size_t r : shard_reps[shard]) {
          for (uint64_t key : rep_keys_fn(r)) {
            auto [it, inserted] = first_seen.emplace(key, r);
            if (inserted) {
              out.anchors.emplace_back(key, r);
            } else {
              out.unions.emplace_back(r, it->second);
            }
          }
        }
        return out;
      },
      [&](int* /*acc*/, size_t /*shard*/, ShardCandidates&& part) {
        for (const auto& [a, b] : part.unions) uf.Union(a, b);
        for (const auto& [key, r] : part.anchors) {
          auto [it, inserted] = global_first_seen.emplace(key, r);
          if (!inserted) uf.Union(r, it->second);
        }
      });

  // Number components by minimal group index (ascending scan), then emit
  // element slots in ascending order — byte-identical to the sequential
  // path's UnionFind::Components() over per-element keys.
  constexpr size_t kUnset = std::numeric_limits<size_t>::max();
  std::vector<size_t> comp_of_root(num_reps, kUnset);
  std::vector<size_t> comp_of_rep(num_reps, 0);
  size_t num_components = 0;
  for (size_t r = 0; r < num_reps; ++r) {
    const size_t root = uf.Find(r);
    if (comp_of_root[root] == kUnset) comp_of_root[root] = num_components++;
    comp_of_rep[r] = comp_of_root[root];
  }
  std::vector<std::vector<size_t>> groups(num_components);
  for (size_t i = 0; i < sig_of.size(); ++i) {
    groups[comp_of_rep[sig_of[i]]].push_back(i);
  }
  return groups;
}

}  // namespace pghive
