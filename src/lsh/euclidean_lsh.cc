#include "lsh/euclidean_lsh.h"

#include <cmath>

#include "common/hash.h"
#include "common/random.h"

namespace pghive {

Result<EuclideanLsh> EuclideanLsh::Create(size_t dimension,
                                          const EuclideanLshOptions& options) {
  if (dimension == 0) {
    return Status::InvalidArgument("ELSH dimension must be positive");
  }
  if (options.bucket_length <= 0.0) {
    return Status::InvalidArgument("ELSH bucket_length must be > 0");
  }
  if (options.num_tables <= 0 || options.hashes_per_table <= 0) {
    return Status::InvalidArgument(
        "ELSH num_tables and hashes_per_table must be > 0");
  }
  return EuclideanLsh(dimension, options);
}

EuclideanLsh::EuclideanLsh(size_t dimension,
                           const EuclideanLshOptions& options)
    : dimension_(dimension), options_(options) {
  Rng rng(options.seed, 0xe15b);
  size_t rows = static_cast<size_t>(options.num_tables) *
                static_cast<size_t>(options.hashes_per_table);
  projections_.resize(rows * dimension);
  offsets_.resize(rows);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t d = 0; d < dimension; ++d) {
      projections_[r * dimension + d] = static_cast<float>(rng.Normal());
    }
    offsets_[r] = rng.UniformDouble(0.0, options.bucket_length);
  }
}

std::vector<uint64_t> EuclideanLsh::Hash(const std::vector<float>& x) const {
  const int T = options_.num_tables;
  const int k = options_.hashes_per_table;
  std::vector<uint64_t> keys(T);
  for (int t = 0; t < T; ++t) {
    uint64_t key = Mix64(0xb0c4e7 + static_cast<uint64_t>(t));
    for (int i = 0; i < k; ++i) {
      size_t row = static_cast<size_t>(t) * k + i;
      const float* a = &projections_[row * dimension_];
      double dot = 0.0;
      for (size_t d = 0; d < dimension_; ++d) dot += a[d] * x[d];
      int64_t bucket = static_cast<int64_t>(
          std::floor((dot + offsets_[row]) / options_.bucket_length));
      key = HashCombine(key, static_cast<uint64_t>(bucket));
    }
    keys[t] = key;
  }
  return keys;
}

}  // namespace pghive
