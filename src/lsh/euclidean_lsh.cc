#include "lsh/euclidean_lsh.h"

#include <cmath>

#include "common/hash.h"
#include "common/random.h"
#include "simd/kernels.h"

namespace pghive {

Result<EuclideanLsh> EuclideanLsh::Create(size_t dimension,
                                          const EuclideanLshOptions& options) {
  if (dimension == 0) {
    return Status::InvalidArgument("ELSH dimension must be positive");
  }
  if (options.bucket_length <= 0.0) {
    return Status::InvalidArgument("ELSH bucket_length must be > 0");
  }
  if (options.num_tables <= 0 || options.hashes_per_table <= 0) {
    return Status::InvalidArgument(
        "ELSH num_tables and hashes_per_table must be > 0");
  }
  return EuclideanLsh(dimension, options);
}

EuclideanLsh::EuclideanLsh(size_t dimension,
                           const EuclideanLshOptions& options)
    : dimension_(dimension), options_(options) {
  Rng rng(options.seed, 0xe15b);
  size_t rows = static_cast<size_t>(options.num_tables) *
                static_cast<size_t>(options.hashes_per_table);
  // Same RNG draw order as the pre-SoA flat layout; the padded tail of each
  // row stays zero so padded input lanes contribute exact +0.0 terms.
  projections_.Reset(rows, dimension);
  offsets_.resize(rows);
  for (size_t r = 0; r < rows; ++r) {
    float* row = projections_.row(r);
    for (size_t d = 0; d < dimension; ++d) {
      row[d] = static_cast<float>(rng.Normal());
    }
    offsets_[r] = rng.UniformDouble(0.0, options.bucket_length);
  }
}

void EuclideanLsh::HashRow(const float* x, uint64_t* keys_out) const {
  const int T = options_.num_tables;
  const int k = options_.hashes_per_table;
  const size_t width = projections_.stride();
  for (int t = 0; t < T; ++t) {
    uint64_t key = Mix64(0xb0c4e7 + static_cast<uint64_t>(t));
    for (int i = 0; i < k; ++i) {
      const size_t row = static_cast<size_t>(t) * k + i;
      const double dot = simd::DotProduct(projections_.row(row), x, width);
      int64_t bucket = static_cast<int64_t>(
          std::floor((dot + offsets_[row]) / options_.bucket_length));
      key = HashCombine(key, static_cast<uint64_t>(bucket));
    }
    keys_out[t] = key;
  }
}

std::vector<uint64_t> EuclideanLsh::Hash(const std::vector<float>& x) const {
  simd::AlignedRowMatrix scratch(1, dimension_);
  float* row = scratch.row(0);
  for (size_t d = 0; d < dimension_; ++d) row[d] = x[d];
  std::vector<uint64_t> keys(options_.num_tables);
  HashRow(row, keys.data());
  return keys;
}

}  // namespace pghive
