// Shard-local LSH candidate generation with a deterministic shard-order
// union — the sharded-Feed equivalent of ClusterByBucketKeys.
//
// The sequential clusterer fans each signature group's bucket keys out to
// every member slot and unions slots that share a key. Here each shard
// worker hashes only ITS signature groups (assigned by ShardPlan over the
// signature's content key), collects a local candidate set — (key → first
// local group) anchors plus intra-shard union edges — and the calling
// thread merges the per-shard candidates in ascending shard order into one
// group-level union-find.
//
// Determinism/equivalence argument (pinned by golden_equivalence_test's
// sharded matrix):
//  * Bucket keys are a pure function of the group's representative
//    (read-only LSH state), so WHERE a key is computed cannot change it.
//  * Connectivity closure is order-independent: within a shard every local
//    group with key k is unioned to the shard's first local holder of k,
//    and the merge unions each shard's anchor to the globally first
//    anchor, so all holders of k end up in one component — exactly the
//    sequential outcome. Union order can only change internal
//    representatives, never the partition.
//  * Output ordering is reconstructed from the partition alone: components
//    are numbered by their minimal group index (== minimal element slot,
//    since groups are ordered by first-member slot), and members are
//    emitted in ascending slot order — the documented UnionFind::
//    Components() order of the sequential path.

#ifndef PGHIVE_LSH_SHARDED_CANDIDATES_H_
#define PGHIVE_LSH_SHARDED_CANDIDATES_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace pghive {

class ThreadPool;

/// Clusters element slots [0, sig_of.size()) into candidate groups.
///  shard_of_rep[r] — shard owning signature group r (from ShardPlan).
///  num_shards     — total shards; shard indices must be < num_shards.
///  rep_keys_fn    — bucket keys for group r's representative (called from
///                   shard workers; must be thread-safe and pure).
///  sig_of[i]      — signature group of element slot i (EncodedElements).
/// Returns the same groups, in the same order, as the sequential
/// ClusterByBucketKeys over the fanned-out per-element keys.
std::vector<std::vector<size_t>> ShardedClusterGroups(
    ThreadPool* pool, size_t num_shards,
    const std::vector<size_t>& shard_of_rep,
    const std::function<std::vector<uint64_t>(size_t)>& rep_keys_fn,
    const std::vector<size_t>& sig_of);

}  // namespace pghive

#endif  // PGHIVE_LSH_SHARDED_CANDIDATES_H_
