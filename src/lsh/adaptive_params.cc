#include "lsh/adaptive_params.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace pghive {

namespace {
constexpr int kMinTables = 5;
constexpr int kMaxTables = 35;
}  // namespace

double SampleMeanDistance(const std::vector<std::vector<float>>& vectors,
                          uint64_t seed, size_t max_pairs) {
  if (vectors.size() < 2) return 0.0;
  // Sample max(1%, 10k) vectors as the paper prescribes, then estimate the
  // mean over random pairs within the sample.
  size_t sample_size =
      std::min(vectors.size(),
               std::max<size_t>(vectors.size() / 100, 10000));
  Rng rng(seed, 0xada);
  std::vector<size_t> sample =
      rng.SampleWithoutReplacement(vectors.size(), sample_size);

  size_t pairs = std::min(max_pairs, sample.size() * (sample.size() - 1) / 2);
  if (pairs == 0) return 0.0;
  double sum = 0.0;
  for (size_t p = 0; p < pairs; ++p) {
    size_t i = sample[rng.UniformU32(static_cast<uint32_t>(sample.size()))];
    size_t j = sample[rng.UniformU32(static_cast<uint32_t>(sample.size()))];
    if (i == j) {
      j = sample[(p + 1) % sample.size()];
      if (i == j) continue;
    }
    const auto& a = vectors[i];
    const auto& b = vectors[j];
    double sq = 0.0;
    for (size_t d = 0; d < a.size(); ++d) {
      double diff = a[d] - b[d];
      sq += diff * diff;
    }
    sum += std::sqrt(sq);
  }
  return sum / static_cast<double>(pairs);
}

double SampleMeanDistance(const simd::AlignedRowMatrix& rep_features,
                          const std::vector<size_t>& sig_of, uint64_t seed,
                          size_t max_pairs) {
  // Mirrors the fanned-out overload exactly — same sample-size rule over
  // ELEMENT count, same Rng stream, same sequential accumulation — with the
  // vector lookup indirected through sig_of.
  const size_t n = sig_of.size();
  if (n < 2) return 0.0;
  size_t sample_size = std::min(n, std::max<size_t>(n / 100, 10000));
  Rng rng(seed, 0xada);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(n, sample_size);

  size_t pairs = std::min(max_pairs, sample.size() * (sample.size() - 1) / 2);
  if (pairs == 0) return 0.0;
  const size_t dim = rep_features.cols();
  double sum = 0.0;
  for (size_t p = 0; p < pairs; ++p) {
    size_t i = sample[rng.UniformU32(static_cast<uint32_t>(sample.size()))];
    size_t j = sample[rng.UniformU32(static_cast<uint32_t>(sample.size()))];
    if (i == j) {
      j = sample[(p + 1) % sample.size()];
      if (i == j) continue;
    }
    const float* a = rep_features.row(sig_of[i]);
    const float* b = rep_features.row(sig_of[j]);
    double sq = 0.0;
    for (size_t d = 0; d < dim; ++d) {
      double diff = a[d] - b[d];
      sq += diff * diff;
    }
    sum += std::sqrt(sq);
  }
  return sum / static_cast<double>(pairs);
}

double AlphaForLabelCount(size_t num_distinct_labels) {
  if (num_distinct_labels <= 3) return 0.8;
  if (num_distinct_labels <= 10) return 1.0;
  return 1.5;
}

AdaptiveLshParams ComputeAdaptiveParams(const DataProfile& profile,
                                        ElementKind kind,
                                        const AdaptiveTuning& tuning) {
  AdaptiveLshParams out;
  out.mu = profile.mean_pairwise_distance;
  // Degenerate samples (all-identical vectors) would give b = 0; fall back
  // to a unit bucket so hashing stays well-defined.
  if (out.mu <= 1e-9) out.mu = 1.0;
  out.b_base = tuning.bucket_factor * out.mu;
  out.alpha = AlphaForLabelCount(profile.num_distinct_labels);
  out.alpha = std::min(out.alpha, kind == ElementKind::kEdge
                                      ? tuning.edge_alpha_cap
                                      : tuning.node_alpha_cap);
  if (tuning.alpha_override > 0.0) out.alpha = tuning.alpha_override;
  out.bucket_length = out.b_base * out.alpha;

  double log_n =
      std::log10(std::max<double>(10.0, static_cast<double>(
                                            profile.num_elements)));
  double t_raw;
  if (kind == ElementKind::kNode) {
    t_raw = out.b_base * std::max(5.0, out.alpha * std::min(25.0, log_n));
  } else {
    t_raw = out.b_base * std::max(3.0, out.alpha * std::min(20.0, log_n));
  }
  out.num_tables =
      std::clamp(static_cast<int>(std::lround(t_raw)), kMinTables, kMaxTables);
  if (tuning.tables_override > 0) out.num_tables = tuning.tables_override;
  return out;
}

EuclideanLshOptions ToElshOptions(const AdaptiveLshParams& params,
                                  uint64_t seed) {
  EuclideanLshOptions opt;
  opt.bucket_length = params.bucket_length;
  opt.num_tables = params.num_tables;
  opt.hashes_per_table = 10;
  opt.seed = seed;
  return opt;
}

MinHashLshOptions ToMinHashOptions(const AdaptiveLshParams& params,
                                   uint64_t seed) {
  MinHashLshOptions opt;
  opt.rows_per_band = 4;
  opt.num_hashes = params.num_tables * opt.rows_per_band;
  opt.seed = seed;
  return opt;
}

}  // namespace pghive
