#include "lsh/minhash_lsh.h"

#include <limits>

#include "common/hash.h"
#include "common/random.h"
#include "simd/kernels.h"

namespace pghive {

Result<MinHashLsh> MinHashLsh::Create(const MinHashLshOptions& options) {
  if (options.num_hashes <= 0 || options.rows_per_band <= 0) {
    return Status::InvalidArgument(
        "MinHash num_hashes and rows_per_band must be > 0");
  }
  if (options.num_hashes % options.rows_per_band != 0) {
    return Status::InvalidArgument(
        "MinHash num_hashes must be divisible by rows_per_band");
  }
  return MinHashLsh(options);
}

MinHashLsh::MinHashLsh(const MinHashLshOptions& options) : options_(options) {
  Rng rng(options.seed, 0x3141);
  salts_.resize(options.num_hashes);
  for (auto& s : salts_) s = rng.NextU64();
}

std::vector<uint64_t> MinHashLsh::Signature(
    const std::vector<std::string>& tokens) const {
  // Hash each token once, then min-fold over the per-function salts:
  // O(|S| * T) with only |S| string hashes.
  std::vector<uint64_t> hashes;
  hashes.reserve(tokens.size());
  for (const auto& tok : tokens) hashes.push_back(HashString(tok));
  std::vector<uint64_t> sig(options_.num_hashes);
  SignatureFromHashes(hashes.data(), hashes.size(), sig.data());
  return sig;
}

void MinHashLsh::SignatureFromHashes(const uint64_t* token_hashes,
                                     size_t num_tokens,
                                     uint64_t* sig_out) const {
  simd::MinHashFold(token_hashes, num_tokens, salts_.data(), salts_.size(),
                    sig_out);
}

std::vector<uint64_t> MinHashLsh::BandKeys(
    const std::vector<uint64_t>& signature) const {
  const int r = options_.rows_per_band;
  const int bands = num_bands();
  std::vector<uint64_t> keys(bands);
  for (int b = 0; b < bands; ++b) {
    uint64_t key = Mix64(0xbad5eedULL + static_cast<uint64_t>(b));
    for (int i = 0; i < r; ++i) {
      key = HashCombine(key, signature[b * r + i]);
    }
    keys[b] = key;
  }
  return keys;
}

uint64_t MinHashLsh::SignatureKey(
    const std::vector<uint64_t>& signature) const {
  uint64_t key = 0x517e5eedULL;
  for (uint64_t v : signature) key = HashCombine(key, v);
  return key;
}

double MinHashLsh::SignatureAgreement(const std::vector<uint64_t>& a,
                                      const std::vector<uint64_t>& b) {
  if (a.empty() || a.size() != b.size()) return 0.0;
  size_t agree = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(a.size());
}

}  // namespace pghive
