// Adaptive LSH parameterization (paper §4.2).
//
// Before clustering, PG-HIVE samples a small portion of the data to infer
// the distance scale mu and combines it with the label-diversity factor
// alpha(L) and dataset size to pick the bucket length b and table count T:
//
//   sample  = max(1% of N, 10k) elements (capped at N)
//   mu      = mean pairwise Euclidean distance over the sample
//   b_base  = 1.2 * mu
//   alpha   = 0.8 (L <= 3), 1.0 (4 <= L <= 10), 1.5 (L > 10)
//   b       = b_base * alpha
//   T_nodes = b_base * max(5, alpha * min(25, log10 N))
//   T_edges = b_base * max(3, alpha * min(20, log10 E))
//
// T is rounded and clamped to the paper's empirically practical range
// [5, 35]. Users can always bypass this and provide their own parameters.

#ifndef PGHIVE_LSH_ADAPTIVE_PARAMS_H_
#define PGHIVE_LSH_ADAPTIVE_PARAMS_H_

#include <cstdint>
#include <vector>

#include "lsh/euclidean_lsh.h"
#include "lsh/minhash_lsh.h"
#include "simd/aligned.h"

namespace pghive {

/// Which element population the parameters are tuned for.
enum class ElementKind { kNode, kEdge };

/// Inputs to the heuristic, all cheaply measurable from the data.
struct DataProfile {
  size_t num_elements = 0;       // N (nodes) or E (edges)
  size_t num_distinct_labels = 0;  // L
  double mean_pairwise_distance = 0.0;  // mu, from SampleMeanDistance
};

/// The resolved parameters, with the intermediate quantities exposed for
/// diagnostics (Figure 6 marks the adaptive (T, alpha) on the heatmap).
struct AdaptiveLshParams {
  double mu = 0.0;
  double b_base = 0.0;
  double alpha = 1.0;
  double bucket_length = 0.0;
  int num_tables = 0;
};

/// Estimates mu: mean Euclidean distance over up to `max_pairs` random pairs
/// drawn from a sample of max(1% of the data, 10k) vectors. Returns 0 for
/// fewer than 2 vectors.
double SampleMeanDistance(const std::vector<std::vector<float>>& vectors,
                          uint64_t seed, size_t max_pairs = 2000);

/// SoA overload over the encoder's representative matrix: element i's
/// vector is rep_features.row(sig_of[i]). Sampling stays over ELEMENT
/// indices with the identical RNG consumption and accumulation order as the
/// fanned-out overload, so the estimate is bit-identical to pre-SoA runs.
double SampleMeanDistance(const simd::AlignedRowMatrix& rep_features,
                          const std::vector<size_t>& sig_of, uint64_t seed,
                          size_t max_pairs = 2000);

/// alpha(L) label-diversity factor from the paper.
double AlphaForLabelCount(size_t num_distinct_labels);

/// Calibration constants of the heuristic. The paper uses 1.2 * mu for the
/// base bucket; the right constant depends on the vector scaling (label
/// weight, embedding dimension), so it is exposed here and explored by the
/// micro_pipeline ablation bench. The edge alpha cap implements the paper's
/// observation that "edges benefit from slightly smaller alpha".
struct AdaptiveTuning {
  double bucket_factor = 0.7;
  /// Upper bounds on alpha(L). Wider buckets only reduce fragmentation —
  /// which Algorithm 2's merging already repairs — while they directly risk
  /// mixing types, so both populations are capped at 1.0 by default
  /// (the paper notes edges prefer smaller alpha; the Figure-6 sweep
  /// explores larger values explicitly).
  double node_alpha_cap = 1.0;
  double edge_alpha_cap = 1.0;
  /// Figure-6 sweep knobs: when positive, force alpha and/or T instead of
  /// deriving them, while the data-driven distance scale mu still applies.
  double alpha_override = 0.0;
  int tables_override = 0;
};

/// Resolves the full heuristic for one element population.
AdaptiveLshParams ComputeAdaptiveParams(const DataProfile& profile,
                                        ElementKind kind,
                                        const AdaptiveTuning& tuning = {});

/// Convenience: materializes EuclideanLshOptions from the heuristic result.
EuclideanLshOptions ToElshOptions(const AdaptiveLshParams& params,
                                  uint64_t seed);

/// Convenience: materializes MinHashLshOptions; the table count T maps to
/// the number of bands (rows_per_band = 2).
MinHashLshOptions ToMinHashOptions(const AdaptiveLshParams& params,
                                   uint64_t seed);

}  // namespace pghive

#endif  // PGHIVE_LSH_ADAPTIVE_PARAMS_H_
