// MinHash LSH over sets (Broder 1997; MMDS ch. 3).
//
// Each element is a set of string tokens (property keys, label tokens,
// endpoint tokens). A signature of `num_hashes` minima is computed with
// universal hashing; signatures are split into bands of `rows_per_band`
// rows. Two sets are LSH-neighbours iff some band matches exactly, giving
// collision probability 1-(1-J^r)^(T/r) for Jaccard similarity J.

#ifndef PGHIVE_LSH_MINHASH_LSH_H_
#define PGHIVE_LSH_MINHASH_LSH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace pghive {

struct MinHashLshOptions {
  /// Signature length T (the paper's "number of hash tables").
  int num_hashes = 64;
  /// Rows per band r; num_hashes must be divisible by r. r = 4 keeps the
  /// banded collision probability steep enough that token sets with Jaccard
  /// <= 0.5 rarely collide while near-identical sets always do.
  int rows_per_band = 4;
  uint64_t seed = 11;
};

class MinHashLsh {
 public:
  /// Fails with InvalidArgument on non-positive or non-divisible parameters.
  static Result<MinHashLsh> Create(const MinHashLshOptions& options);

  const MinHashLshOptions& options() const { return options_; }
  int num_bands() const {
    return options_.num_hashes / options_.rows_per_band;
  }

  /// MinHash signature of a token set (size num_hashes). The empty set gets
  /// a sentinel signature (all-max) that never collides with non-empty sets
  /// but always collides with other empty sets.
  std::vector<uint64_t> Signature(
      const std::vector<std::string>& tokens) const;

  /// Hot path: signature from pre-hashed tokens (HashString of each token —
  /// what FeatureEncoder stores in its flat token pool). Writes num_hashes
  /// minima to sig_out via the simd MinHashFold kernel (scalar or AVX2 per
  /// the PGHIVE_SIMD dispatch; exact integer ops, so both flavours and the
  /// pre-SoA loop agree bitwise). num_hashes == 0 yields the all-max
  /// empty-set sentinel.
  void SignatureFromHashes(const uint64_t* token_hashes, size_t num_tokens,
                           uint64_t* sig_out) const;

  /// Banded bucket keys (size num_bands) derived from a signature; each key
  /// encodes the band index.
  std::vector<uint64_t> BandKeys(const std::vector<uint64_t>& signature) const;

  /// Single bucket key over the WHOLE signature: two sets share it with
  /// probability J^T. This is the clustering rule the paper describes for
  /// MinHash ("the probability of two sets to collide in a hash function is
  /// equal to their Jaccard similarity" — with T functions the estimate
  /// sharpens, so similar sets collide often and dissimilar ones rarely).
  uint64_t SignatureKey(const std::vector<uint64_t>& signature) const;

  /// Fraction of positions where the signatures agree — an unbiased
  /// estimator of the Jaccard similarity of the underlying sets.
  static double SignatureAgreement(const std::vector<uint64_t>& a,
                                   const std::vector<uint64_t>& b);

 private:
  explicit MinHashLsh(const MinHashLshOptions& options);

  MinHashLshOptions options_;
  /// Per-hash-function salts.
  std::vector<uint64_t> salts_;
};

}  // namespace pghive

#endif  // PGHIVE_LSH_MINHASH_LSH_H_
