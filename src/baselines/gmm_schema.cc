#include "baselines/gmm_schema.h"

#include <algorithm>
#include <limits>
#include <set>
#include <unordered_map>

#include "common/random.h"
#include "common/string_util.h"
#include "ml/gmm.h"
#include "text/hash_embedder.h"

namespace pghive {

namespace {

// Builds the GMMSchema node vectors: label-token embedding followed by the
// property-presence indicators over the global node key space.
std::vector<std::vector<double>> BuildVectors(
    const PropertyGraph& g, const GmmSchemaOptions& options) {
  std::vector<std::string> keys = g.NodePropertyKeys();
  std::unordered_map<std::string, size_t> key_index;
  for (size_t i = 0; i < keys.size(); ++i) key_index.emplace(keys[i], i);

  const size_t d =
      options.label_dimension > 0 ? static_cast<size_t>(options.label_dimension)
                                  : 0;
  HashEmbedder embedder(std::max(options.label_dimension, 1), options.seed);
  std::vector<std::vector<double>> vectors;
  vectors.reserve(g.num_nodes());
  for (const auto& n : g.nodes()) {
    std::vector<double> v(d + keys.size(), 0.0);
    if (d > 0) {
      auto emb = embedder.Embed(CanonicalLabelToken(n.labels));
      for (size_t i = 0; i < d; ++i) v[i] = emb[i];
    }
    for (const auto& [k, val] : n.properties) {
      v[d + key_index.at(k)] = 1.0;
    }
    vectors.push_back(std::move(v));
  }
  return vectors;
}

}  // namespace

Result<SchemaGraph> RunGmmSchema(const PropertyGraph& g,
                                 const GmmSchemaOptions& options) {
  if (g.num_nodes() == 0) {
    return Status::InvalidArgument("GMMSchema: empty graph");
  }
  // GMMSchema assumes fully labeled datasets (paper §2, limitation (ii)).
  std::set<std::string> label_tokens;
  for (const auto& n : g.nodes()) {
    if (n.labels.empty()) {
      return Status::FailedPrecondition(
          "GMMSchema requires a fully labeled dataset (found an unlabeled "
          "node)");
    }
    label_tokens.insert(CanonicalLabelToken(n.labels));
  }

  std::vector<std::vector<double>> vectors = BuildVectors(g, options);

  // Optional sampling for large graphs (limitation (iv)).
  Rng rng(options.seed, 0x6d6d);
  std::vector<size_t> fit_indices;
  if (options.sample_size > 0 && vectors.size() > options.sample_size) {
    fit_indices =
        rng.SampleWithoutReplacement(vectors.size(), options.sample_size);
  } else {
    fit_indices.resize(vectors.size());
    for (size_t i = 0; i < vectors.size(); ++i) fit_indices[i] = i;
  }
  std::vector<std::vector<double>> fit_points;
  fit_points.reserve(fit_indices.size());
  for (size_t i : fit_indices) fit_points.push_back(vectors[i]);

  // Level 1: BIC-selected GMM around the label-token count.
  int k_hint = static_cast<int>(label_tokens.size());
  int k_max = std::min(options.k_max_cap,
                       std::max(2, static_cast<int>(options.k_factor *
                                                    k_hint)));
  int k_min = std::max(1, k_hint / 2);
  if (k_min > k_max) k_min = k_max;
  GmmOptions gmm_opt;
  gmm_opt.seed = options.seed;
  // Coarse BIC grid: at most bic_candidates model orders over [k_min,
  // k_max], always including both endpoints.
  GmmModel level1;
  {
    double best_bic = std::numeric_limits<double>::infinity();
    int candidates = std::max(1, options.bic_candidates);
    int span = k_max - k_min;
    int step = std::max(1, (span + candidates - 1) / std::max(1, candidates - 1));
    bool have = false;
    for (int k = k_min; k <= k_max; k += step) {
      int kk = std::min(k, k_max);
      PGHIVE_ASSIGN_OR_RETURN(GmmModel model, FitGmm(fit_points, kk, gmm_opt));
      double bic = model.Bic(fit_points.size());
      if (!have || bic < best_bic) {
        level1 = std::move(model);
        best_bic = bic;
        have = true;
      }
      if (kk == k_max) break;
    }
    if (k_min != k_max && (k_max - k_min) % step != 0) {
      PGHIVE_ASSIGN_OR_RETURN(GmmModel model,
                              FitGmm(fit_points, k_max, gmm_opt));
      if (model.Bic(fit_points.size()) < best_bic) level1 = std::move(model);
    }
  }

  // Assign all nodes (not just the fitted sample).
  std::vector<int> assignment(vectors.size());
  for (size_t i = 0; i < vectors.size(); ++i) {
    assignment[i] = level1.Predict(vectors[i]);
  }

  // Level 2: hierarchical refinement of each component when BIC improves.
  std::vector<std::vector<size_t>> components(level1.num_components());
  for (size_t i = 0; i < vectors.size(); ++i) {
    components[assignment[i]].push_back(i);
  }
  std::vector<std::vector<size_t>> final_clusters;
  for (auto& comp : components) {
    if (comp.empty()) continue;
    if (comp.size() < 40 || options.refine_k_max < 2) {
      final_clusters.push_back(std::move(comp));
      continue;
    }
    std::vector<std::vector<double>> pts;
    pts.reserve(comp.size());
    for (size_t i : comp) pts.push_back(vectors[i]);
    auto one = FitGmm(pts, 1, gmm_opt);
    auto multi = FitGmmBic(pts, 2, options.refine_k_max, gmm_opt);
    if (one.ok() && multi.ok() &&
        multi->Bic(pts.size()) + 1e-9 < one->Bic(pts.size())) {
      std::vector<std::vector<size_t>> subs(multi->num_components());
      for (size_t j = 0; j < comp.size(); ++j) {
        subs[multi->Predict(pts[j])].push_back(comp[j]);
      }
      for (auto& sub : subs) {
        if (!sub.empty()) final_clusters.push_back(std::move(sub));
      }
    } else {
      final_clusters.push_back(std::move(comp));
    }
  }

  // Materialize node types (union representatives, as in PG-HIVE's
  // evaluation protocol). GMMSchema yields no edge types.
  SchemaGraph schema;
  for (const auto& cluster : final_clusters) {
    SchemaNodeType t;
    for (size_t i : cluster) {
      const Node& n = g.node(i);
      t.labels.insert(n.labels.begin(), n.labels.end());
      for (const auto& [k, v] : n.properties) t.property_keys.insert(k);
      t.instances.push_back(i);
    }
    t.name = "GMM_" + std::to_string(schema.node_types.size()) + "_" +
             CanonicalLabelToken(t.labels);
    schema.node_types.push_back(std::move(t));
  }
  return schema;
}

}  // namespace pghive
