// SchemI baseline (Lbath, Bonifati & Harmer, EDBT 2021), re-implemented
// from its published description.
//
// SchemI assumes completely labeled data and derives types from labels: each
// distinct individual label is a type (PG-HIVE paper §2: "approaches like
// [SchemI] treat each distinct label as a separate type, while several
// datasets define types by sets of co-occurring labels"). A multi-labeled
// node is flattened onto one of its labels (deterministically, the
// alphabetically first), which is exactly where the method loses accuracy on
// multi-label datasets. Edge types are keyed by the edge label alone, so
// same-label edges with different endpoint types collapse. A saturation
// phase aggregates the per-instance patterns of every type (property unions,
// endpoint sets, pairwise pattern comparisons) to build the type hierarchy,
// which dominates its runtime.

#ifndef PGHIVE_BASELINES_SCHEMI_H_
#define PGHIVE_BASELINES_SCHEMI_H_

#include "common/result.h"
#include "core/schema.h"
#include "graph/property_graph.h"

namespace pghive {

struct SchemIOptions {
  /// Pattern-similarity threshold used during the saturation phase when
  /// relating patterns of the same type (hierarchy construction).
  double pattern_similarity = 0.5;
};

/// Runs SchemI. Fails with FailedPrecondition when any node or edge is
/// unlabeled. Returns node and edge types (no constraints/cardinalities —
/// SchemI does not model them, Table 1).
Result<SchemaGraph> RunSchemI(const PropertyGraph& g,
                              const SchemIOptions& options = {});

}  // namespace pghive

#endif  // PGHIVE_BASELINES_SCHEMI_H_
