// GMMSchema baseline (Bonifati, Dumbrava & Mir, EDBT 2022), re-implemented
// from its published description.
//
// Hierarchical clustering of NODES ONLY using Gaussian Mixture Models over
// combined label/property-distribution vectors:
//   level 1: a GMM (model order by BIC) over [label embedding || property
//            presence bits] partitions the node population,
//   level 2: each component is refined with a further BIC-selected GMM when
//            that lowers the information criterion.
// Limitations faithfully reproduced (paper §2): requires a fully labeled
// dataset (fails otherwise), discovers no edge types or constraints, and
// optionally fits on a sample for large graphs (predicting the rest), which
// trades precision for speed.

#ifndef PGHIVE_BASELINES_GMM_SCHEMA_H_
#define PGHIVE_BASELINES_GMM_SCHEMA_H_

#include <cstdint>

#include "common/result.h"
#include "core/schema.h"
#include "graph/property_graph.h"

namespace pghive {

struct GmmSchemaOptions {
  /// Maximum model order explored by BIC at level 1, as a multiple of the
  /// number of distinct label tokens.
  double k_factor = 1.5;
  int k_max_cap = 96;
  /// BIC sweeps at most this many candidate model orders (coarse grid over
  /// [k_min, k_max]); EM is expensive, and GMMSchema trades precision for
  /// speed on large/label-rich graphs.
  int bic_candidates = 6;
  /// Level-2 refinement: max sub-components per level-1 component.
  int refine_k_max = 3;
  /// Fit on at most this many nodes (0 = no sampling); remaining nodes are
  /// assigned by posterior prediction.
  size_t sample_size = 3000;
  /// Dimension of an optional label-embedding block prepended to the
  /// property-distribution vector. The published method clusters on the
  /// property distributions (its documented noise sensitivity: "the variety
  /// in property distributions causes misclustering"), with labels informing
  /// the model order and the type naming — so the default is 0. A positive
  /// value adds label geometry to the metric space (ablation).
  int label_dimension = 0;
  uint64_t seed = 23;
};

/// Runs GMMSchema on a graph. Fails with FailedPrecondition when any node is
/// unlabeled (the method assumes complete labeling). The returned schema has
/// node types only.
Result<SchemaGraph> RunGmmSchema(const PropertyGraph& g,
                                 const GmmSchemaOptions& options = {});

}  // namespace pghive

#endif  // PGHIVE_BASELINES_GMM_SCHEMA_H_
