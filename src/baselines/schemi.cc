#include "baselines/schemi.h"

#include <map>
#include <set>

#include "cluster/cluster.h"
#include "core/pattern.h"

namespace pghive {

namespace {

// The label SchemI flattens a multi-label element onto: the alphabetically
// first label (std::set iterates in sorted order).
const std::string& PrimaryLabel(const std::set<std::string>& labels) {
  return *labels.begin();
}

// One saturated pattern of the evolving type graph.
struct SaturatedNodePattern {
  NodePattern pattern;
  std::vector<NodeId> instances;
};

struct SaturatedEdgePattern {
  EdgePattern pattern;
  std::vector<EdgeId> instances;
};

bool IsSubset(const std::set<std::string>& sub,
              const std::set<std::string>& super) {
  if (sub.size() > super.size()) return false;
  for (const auto& x : sub) {
    if (!super.count(x)) return false;
  }
  return true;
}

}  // namespace

Result<SchemaGraph> RunSchemI(const PropertyGraph& g,
                              const SchemIOptions& options) {
  if (g.num_nodes() == 0) {
    return Status::InvalidArgument("SchemI: empty graph");
  }
  for (const auto& n : g.nodes()) {
    if (n.labels.empty()) {
      return Status::FailedPrecondition(
          "SchemI requires complete type label declarations (found an "
          "unlabeled node)");
    }
  }
  for (const auto& e : g.edges()) {
    if (e.labels.empty()) {
      return Status::FailedPrecondition(
          "SchemI requires complete type label declarations (found an "
          "unlabeled edge)");
    }
  }

  // --- Saturation: fold every instance into the type graph one at a time.
  // Following the published algorithm's structure, each instance's pattern
  // is compared against the already-materialized patterns by walking the
  // label/property sets (graph-morphism style folding; no hashing or
  // vectorization — this linear probe is what dominates SchemI's runtime
  // and why it grows with the pattern count, i.e. with noise).
  std::vector<SaturatedNodePattern> node_patterns;
  for (const auto& n : g.nodes()) {
    NodePattern p = PatternOf(n);
    bool folded = false;
    for (auto& existing : node_patterns) {
      if (existing.pattern.labels == p.labels &&
          existing.pattern.property_keys == p.property_keys) {
        existing.instances.push_back(n.id);
        folded = true;
        break;
      }
    }
    if (!folded) {
      node_patterns.push_back({std::move(p), {n.id}});
    }
  }
  std::vector<SaturatedEdgePattern> edge_patterns;
  for (const auto& e : g.edges()) {
    EdgePattern p = PatternOf(g, e);
    bool folded = false;
    for (auto& existing : edge_patterns) {
      if (existing.pattern == p) {
        existing.instances.push_back(e.id);
        folded = true;
        break;
      }
    }
    if (!folded) {
      edge_patterns.push_back({std::move(p), {e.id}});
    }
  }

  // --- Subtype relations: SchemI also infers a type hierarchy, relating
  // every pair of patterns by label-set and property-set inclusion (the
  // O(P^2) pass the original performs during saturation).
  size_t subtype_relations = 0;
  for (size_t i = 0; i < node_patterns.size(); ++i) {
    for (size_t j = 0; j < node_patterns.size(); ++j) {
      if (i == j) continue;
      const auto& a = node_patterns[i].pattern;
      const auto& b = node_patterns[j].pattern;
      if (IsSubset(a.labels, b.labels) &&
          JaccardSimilarity(a.property_keys, b.property_keys) >=
              options.pattern_similarity) {
        ++subtype_relations;
      }
    }
  }
  for (size_t i = 0; i < edge_patterns.size(); ++i) {
    for (size_t j = 0; j < edge_patterns.size(); ++j) {
      if (i == j) continue;
      const auto& a = edge_patterns[i].pattern;
      const auto& b = edge_patterns[j].pattern;
      if (IsSubset(a.labels, b.labels) &&
          JaccardSimilarity(a.property_keys, b.property_keys) >=
              options.pattern_similarity) {
        ++subtype_relations;
      }
    }
  }
  (void)subtype_relations;  // hierarchy metadata; membership is below

  // --- Type formation: one type per distinct individual (primary) label;
  // multi-labeled patterns flatten onto one label, which is exactly where
  // the method loses accuracy on multi-label datasets (PG-HIVE paper §2).
  SchemaGraph schema;
  std::map<std::string, size_t> node_type_index;
  for (const auto& sp : node_patterns) {
    const std::string& label = PrimaryLabel(sp.pattern.labels);
    auto [it, inserted] =
        node_type_index.emplace(label, schema.node_types.size());
    if (inserted) {
      SchemaNodeType t;
      t.name = label;
      schema.node_types.push_back(std::move(t));
    }
    SchemaNodeType& t = schema.node_types[it->second];
    t.labels.insert(sp.pattern.labels.begin(), sp.pattern.labels.end());
    t.property_keys.insert(sp.pattern.property_keys.begin(),
                           sp.pattern.property_keys.end());
    t.instances.insert(t.instances.end(), sp.instances.begin(),
                       sp.instances.end());
  }

  std::map<std::string, size_t> edge_type_index;
  for (const auto& sp : edge_patterns) {
    const std::string& label = PrimaryLabel(sp.pattern.labels);
    auto [it, inserted] =
        edge_type_index.emplace(label, schema.edge_types.size());
    if (inserted) {
      SchemaEdgeType t;
      t.name = label;
      schema.edge_types.push_back(std::move(t));
    }
    SchemaEdgeType& t = schema.edge_types[it->second];
    t.labels.insert(sp.pattern.labels.begin(), sp.pattern.labels.end());
    t.property_keys.insert(sp.pattern.property_keys.begin(),
                           sp.pattern.property_keys.end());
    t.source_labels.insert(sp.pattern.source_labels.begin(),
                           sp.pattern.source_labels.end());
    t.target_labels.insert(sp.pattern.target_labels.begin(),
                           sp.pattern.target_labels.end());
    t.instances.insert(t.instances.end(), sp.instances.begin(),
                       sp.instances.end());
  }
  return schema;
}

}  // namespace pghive
