#include "common/random.h"

#include <cmath>
#include <unordered_set>

namespace pghive {

Rng::Rng(uint64_t seed, uint64_t stream) : state_(0), inc_((stream << 1u) | 1u) {
  NextU32();
  state_ += seed;
  NextU32();
}

uint32_t Rng::NextU32() {
  uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

uint64_t Rng::NextU64() {
  return (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
}

uint32_t Rng::UniformU32(uint32_t bound) {
  if (bound == 0) return 0;
  // Lemire-style rejection to avoid modulo bias.
  uint32_t threshold = (0u - bound) % bound;
  for (;;) {
    uint32_t r = NextU32();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  if (hi <= lo) return lo;
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range <= UINT32_MAX) {
    return lo + static_cast<int64_t>(UniformU32(static_cast<uint32_t>(range)));
  }
  return lo + static_cast<int64_t>(NextU64() % range);
}

double Rng::UniformDouble() {
  // 53 random bits -> [0, 1).
  return (NextU64() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  // Guard against log(0).
  if (u1 < 1e-300) u1 = 1e-300;
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  if (k >= n) {
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  // Floyd's algorithm: k iterations, O(k) expected set operations.
  std::unordered_set<size_t> chosen;
  std::vector<size_t> result;
  result.reserve(k);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(j)));
    if (chosen.count(t)) t = j;
    chosen.insert(t);
    result.push_back(t);
  }
  return result;
}

Rng Rng::Fork(uint64_t salt) {
  uint64_t seed = NextU64() ^ (salt * 0x9e3779b97f4a7c15ULL);
  return Rng(seed, salt | 1);
}

}  // namespace pghive
