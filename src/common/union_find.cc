#include "common/union_find.h"

namespace pghive {

UnionFind::UnionFind(size_t n)
    : parent_(n), rank_(n, 0), num_components_(n) {
  for (size_t i = 0; i < n; ++i) parent_[i] = i;
}

size_t UnionFind::Find(size_t x) {
  // Iterative two-pass path compression.
  size_t root = x;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[x] != root) {
    size_t next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

bool UnionFind::Union(size_t a, size_t b) {
  size_t ra = Find(a);
  size_t rb = Find(b);
  if (ra == rb) return false;
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  --num_components_;
  return true;
}

bool UnionFind::Connected(size_t a, size_t b) { return Find(a) == Find(b); }

std::vector<std::vector<size_t>> UnionFind::Components() {
  std::unordered_map<size_t, size_t> root_to_slot;
  root_to_slot.reserve(num_components_);
  std::vector<std::vector<size_t>> out;
  out.reserve(num_components_);
  for (size_t i = 0; i < parent_.size(); ++i) {
    size_t r = Find(i);
    auto [it, inserted] = root_to_slot.emplace(r, out.size());
    if (inserted) out.emplace_back();
    out[it->second].push_back(i);
  }
  return out;
}

}  // namespace pghive
