// Minimal JSON document model, writer and parser.
//
// Supports the full JSON value grammar (null, bool, number, string with
// escapes, array, object) — enough to persist schemas (core/schema_json.h)
// and exchange results with external tooling. Numbers are stored as double
// with an exact-integer fast path. No external dependencies.

#ifndef PGHIVE_COMMON_JSON_H_
#define PGHIVE_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace pghive {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
/// std::map keeps keys sorted -> deterministic serialization.
using JsonObject = std::map<std::string, JsonValue>;

/// A JSON value (tagged union).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}            // NOLINT
  JsonValue(double d) : kind_(Kind::kNumber), number_(d) {}      // NOLINT
  JsonValue(int64_t i)                                           // NOLINT
      : kind_(Kind::kNumber), number_(static_cast<double>(i)) {}
  JsonValue(int i) : JsonValue(static_cast<int64_t>(i)) {}       // NOLINT
  JsonValue(size_t u) : JsonValue(static_cast<int64_t>(u)) {}    // NOLINT
  JsonValue(std::string s)                                       // NOLINT
      : kind_(Kind::kString), string_(std::move(s)) {}
  JsonValue(const char* s) : JsonValue(std::string(s)) {}        // NOLINT
  JsonValue(JsonArray a)                                         // NOLINT
      : kind_(Kind::kArray), array_(std::move(a)) {}
  JsonValue(JsonObject o)                                        // NOLINT
      : kind_(Kind::kObject), object_(std::move(o)) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return number_; }
  int64_t AsInt() const { return static_cast<int64_t>(number_); }
  const std::string& AsString() const { return string_; }
  const JsonArray& AsArray() const { return array_; }
  JsonArray& MutableArray() { return array_; }
  const JsonObject& AsObject() const { return object_; }
  JsonObject& MutableObject() { return object_; }

  /// Object member access; null reference semantics are avoided by
  /// returning a shared null sentinel for missing keys.
  const JsonValue& operator[](const std::string& key) const;

  /// Typed member lookups with Status on absence/kind-mismatch.
  Result<bool> GetBool(const std::string& key) const;
  Result<int64_t> GetInt(const std::string& key) const;
  Result<double> GetDouble(const std::string& key) const;
  Result<std::string> GetString(const std::string& key) const;

  bool operator==(const JsonValue& other) const;

  /// Compact serialization ({"a":1,...}).
  std::string Dump() const;
  /// Pretty serialization with 2-space indentation.
  std::string Pretty() const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  JsonArray array_;
  JsonObject object_;
};

/// Parses a complete JSON document; trailing non-whitespace is an error.
Result<JsonValue> ParseJson(std::string_view text);

/// Escapes a string for inclusion in JSON output (without quotes).
std::string JsonEscape(std::string_view s);

}  // namespace pghive

#endif  // PGHIVE_COMMON_JSON_H_
