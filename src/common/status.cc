#include "common/status.h"

namespace pghive {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  result += ": ";
  result += message_;
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace pghive
