// Status: lightweight error propagation without exceptions.
//
// Public PG-HIVE APIs return Status (or Result<T>, see common/result.h) in
// the style of Apache Arrow / RocksDB. A Status is cheap to copy in the OK
// case (single enum) and carries a message only on error.

#ifndef PGHIVE_COMMON_STATUS_H_
#define PGHIVE_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace pghive {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kParseError,
  kInternal,
  kNotImplemented,
};

/// Returns a human-readable name for a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Result of an operation: either OK or an error code with a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

}  // namespace pghive

/// Propagates a non-OK Status to the caller.
#define PGHIVE_RETURN_NOT_OK(expr)                  \
  do {                                              \
    ::pghive::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                      \
  } while (false)

#endif  // PGHIVE_COMMON_STATUS_H_
