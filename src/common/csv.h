// Minimal RFC-4180-ish CSV reading and writing.
//
// Supports quoted fields with embedded commas, quotes ("" escaping) and
// newlines. Used by graph/csv_io to import/export property graphs and by the
// benchmark harnesses to dump result tables.

#ifndef PGHIVE_COMMON_CSV_H_
#define PGHIVE_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace pghive {

/// Parses one CSV record (no trailing newline) into fields.
/// Fails with ParseError on an unterminated quoted field.
Result<std::vector<std::string>> ParseCsvLine(std::string_view line);

/// Parses a whole CSV document; handles quoted fields spanning lines.
Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text);

/// Quotes a field if it contains a comma, quote, or newline.
std::string CsvQuote(std::string_view field);

/// Serializes one row (with trailing newline).
std::string FormatCsvRow(const std::vector<std::string>& fields);

/// Reads an entire file into a string.
Result<std::string> ReadFile(const std::string& path);

/// Writes a string to a file (overwrite).
Status WriteFile(const std::string& path, std::string_view content);

}  // namespace pghive

#endif  // PGHIVE_COMMON_CSV_H_
