// Hashing utilities shared by LSH, clustering and container keys.

#ifndef PGHIVE_COMMON_HASH_H_
#define PGHIVE_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pghive {

/// 64-bit FNV-1a over arbitrary bytes; stable across platforms.
inline uint64_t Fnv1a64(const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

inline uint64_t HashString(std::string_view s) {
  return Fnv1a64(s.data(), s.size());
}

/// SplitMix64 finalizer: cheap high-quality mixing of a 64-bit value.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines two hashes (boost::hash_combine style, 64-bit).
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return seed ^ (Mix64(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Order-sensitive hash of a sequence of 64-bit values.
inline uint64_t HashSequence(const std::vector<uint64_t>& values) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint64_t v : values) h = HashCombine(h, v);
  return h;
}

/// Hash functor for std::pair keys in unordered containers.
struct PairHash {
  template <typename A, typename B>
  size_t operator()(const std::pair<A, B>& p) const {
    return static_cast<size_t>(
        HashCombine(std::hash<A>()(p.first), std::hash<B>()(p.second)));
  }
};

}  // namespace pghive

#endif  // PGHIVE_COMMON_HASH_H_
