#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace pghive {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string Join(const std::set<std::string>& parts, std::string_view sep) {
  std::string out;
  bool first = true;
  for (const auto& p : parts) {
    if (!first) out += sep;
    out += p;
    first = false;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string CanonicalLabelToken(const std::set<std::string>& labels) {
  // std::set iterates in sorted order already.
  return Join(labels, "&");
}

std::string XmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string FormatDouble(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string WithThousands(uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace pghive
