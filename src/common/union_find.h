// Disjoint-set forest with path compression and union by rank.
//
// Used by the LSH clusterer: elements that collide in at least one hash
// table / band are unioned, and the resulting components are the candidate
// clusters.

#ifndef PGHIVE_COMMON_UNION_FIND_H_
#define PGHIVE_COMMON_UNION_FIND_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace pghive {

class UnionFind {
 public:
  /// Creates a forest of n singleton sets {0}, {1}, ..., {n-1}.
  explicit UnionFind(size_t n);

  /// Representative of the set containing x (with path compression).
  size_t Find(size_t x);

  /// Merges the sets of a and b; returns true if they were distinct.
  bool Union(size_t a, size_t b);

  /// True if a and b are in the same set.
  bool Connected(size_t a, size_t b);

  /// Number of disjoint sets.
  size_t NumComponents() const { return num_components_; }

  size_t size() const { return parent_.size(); }

  /// Groups element indices by component. Component order follows the first
  /// occurrence of each representative; within a component, elements are in
  /// increasing index order.
  std::vector<std::vector<size_t>> Components();

 private:
  std::vector<size_t> parent_;
  std::vector<uint8_t> rank_;
  size_t num_components_;
};

}  // namespace pghive

#endif  // PGHIVE_COMMON_UNION_FIND_H_
