// Result<T>: a value or an error Status (Arrow-style).

#ifndef PGHIVE_COMMON_RESULT_H_
#define PGHIVE_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace pghive {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent. Accessing the value of an errored Result is a programming
/// error (asserted in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error Status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Moves the value out, or returns `fallback` on error.
  T value_or(T fallback) && {
    if (ok()) return std::move(*value_);
    return fallback;
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

}  // namespace pghive

/// Assigns the value of a Result expression to `lhs`, or propagates the error.
#define PGHIVE_ASSIGN_OR_RETURN(lhs, expr)            \
  auto PGHIVE_CONCAT_(_res_, __LINE__) = (expr);      \
  if (!PGHIVE_CONCAT_(_res_, __LINE__).ok())          \
    return PGHIVE_CONCAT_(_res_, __LINE__).status();  \
  lhs = std::move(PGHIVE_CONCAT_(_res_, __LINE__)).value()

#define PGHIVE_CONCAT_IMPL_(a, b) a##b
#define PGHIVE_CONCAT_(a, b) PGHIVE_CONCAT_IMPL_(a, b)

#endif  // PGHIVE_COMMON_RESULT_H_
