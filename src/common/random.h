// Deterministic pseudo-random number generation (PCG32).
//
// Every stochastic component in PG-HIVE (dataset generation, LSH projection
// sampling, Word2Vec initialization, GMM initialization, sampling-based
// datatype inference) draws from an explicitly seeded Rng so that all
// experiments are reproducible bit-for-bit.

#ifndef PGHIVE_COMMON_RANDOM_H_
#define PGHIVE_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pghive {

/// PCG32 generator (O'Neill, 2014): small state, good statistical quality,
/// fully deterministic across platforms (unlike std::mt19937 distributions).
class Rng {
 public:
  /// Seeds the generator. Two Rngs with the same (seed, stream) produce
  /// identical output sequences.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL, uint64_t stream = 1);

  /// Uniform 32-bit value.
  uint32_t NextU32();

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint32_t UniformU32(uint32_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal via Box-Muller (cached pair for efficiency).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Samples k distinct indices from [0, n) (Floyd's algorithm); returns
  /// min(k, n) indices in unspecified order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = UniformU32(static_cast<uint32_t>(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Derives a child Rng with a distinct stream; used to give each component
  /// an independent deterministic sequence.
  Rng Fork(uint64_t salt);

 private:
  uint64_t state_;
  uint64_t inc_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace pghive

#endif  // PGHIVE_COMMON_RANDOM_H_
