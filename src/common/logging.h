// Minimal leveled logging to stderr.
//
// PG-HIVE library code logs sparingly (pipeline phase boundaries at INFO,
// diagnostics at DEBUG). The level is process-global and defaults to WARNING
// so library consumers see nothing unless they opt in.
//
// Output is either human-readable text (default) or one JSON object per
// line (SetLogFormat(LogFormat::kJson), CLI --log-json) with keys
// level/file/line/msg — the same line-oriented shape as the observability
// JSONL export, so both can be tailed by the same tooling. Embedders can
// divert records entirely with SetLogSink.

#ifndef PGHIVE_COMMON_LOGGING_H_
#define PGHIVE_COMMON_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace pghive {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the process-global minimum level that is emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses "debug"/"info"/"warning"/"warn"/"error" (case-insensitive);
/// returns false and leaves `*level` untouched on anything else.
bool ParseLogLevel(const std::string& name, LogLevel* level);

const char* LogLevelName(LogLevel level);

enum class LogFormat { kText = 0, kJson = 1 };

/// Sets the process-global record format used by the default stderr sink.
void SetLogFormat(LogFormat format);
LogFormat GetLogFormat();

/// Receives every emitted record (already level-filtered). `file` is the
/// basename of the source file. Installing an empty function restores the
/// default stderr sink.
using LogSink =
    std::function<void(LogLevel level, const char* file, int line,
                       const std::string& message)>;
void SetLogSink(LogSink sink);

/// Renders one record in the given format, without a trailing newline
/// (what the default sink prints; exposed so custom sinks and tests can
/// reuse the exact formatting).
std::string FormatLogRecord(LogFormat format, LogLevel level,
                            const char* file, int line,
                            const std::string& message);

namespace internal {

/// Accumulates one log line and routes it to the active sink on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;  // basename
  int line_;
  std::ostringstream stream_;
};

/// No-op sink for disabled levels (avoids formatting cost via short-circuit).
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace pghive

#define PGHIVE_LOG(level)                                               \
  if (::pghive::LogLevel::level < ::pghive::GetLogLevel()) {            \
  } else                                                                \
    ::pghive::internal::LogMessage(::pghive::LogLevel::level, __FILE__, \
                                   __LINE__)

#endif  // PGHIVE_COMMON_LOGGING_H_
