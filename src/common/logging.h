// Minimal leveled logging to stderr.
//
// PG-HIVE library code logs sparingly (pipeline phase boundaries at INFO,
// diagnostics at DEBUG). The level is process-global and defaults to WARNING
// so library consumers see nothing unless they opt in.

#ifndef PGHIVE_COMMON_LOGGING_H_
#define PGHIVE_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace pghive {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the process-global minimum level that is emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// No-op sink for disabled levels (avoids formatting cost via short-circuit).
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace pghive

#define PGHIVE_LOG(level)                                               \
  if (::pghive::LogLevel::level < ::pghive::GetLogLevel()) {            \
  } else                                                                \
    ::pghive::internal::LogMessage(::pghive::LogLevel::level, __FILE__, \
                                   __LINE__)

#endif  // PGHIVE_COMMON_LOGGING_H_
