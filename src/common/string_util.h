// Small string helpers used across loaders, serializers and report printers.

#ifndef PGHIVE_COMMON_STRING_UTIL_H_
#define PGHIVE_COMMON_STRING_UTIL_H_

#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace pghive {

/// Splits `s` on `delim`; empty fields are preserved.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);
std::string Join(const std::set<std::string>& parts, std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// The canonical token for a label set: labels sorted alphabetically and
/// joined with "&" (paper §4.1: multi-label instances use the sorted
/// concatenation as one unique label).
std::string CanonicalLabelToken(const std::set<std::string>& labels);

/// Escapes a string for embedding in XML text/attributes.
std::string XmlEscape(std::string_view s);

/// Formats a double with a fixed number of decimals (locale-independent).
std::string FormatDouble(double v, int decimals);

/// Renders n with thousands separators, e.g. 1234567 -> "1,234,567".
std::string WithThousands(uint64_t n);

}  // namespace pghive

#endif  // PGHIVE_COMMON_STRING_UTIL_H_
