// Wall-clock timing for the benchmark harnesses.

#ifndef PGHIVE_COMMON_TIMER_H_
#define PGHIVE_COMMON_TIMER_H_

#include <chrono>

namespace pghive {

/// Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pghive

#endif  // PGHIVE_COMMON_TIMER_H_
