#include "common/csv.h"

#include <fstream>
#include <sstream>

namespace pghive {

namespace {

// Shared scanning core: parses CSV starting at *pos in text, consuming one
// record (up to an unquoted newline or end of text). Returns the fields and
// advances *pos past the record's newline.
Result<std::vector<std::string>> ParseRecord(std::string_view text,
                                             size_t* pos) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  size_t i = *pos;
  for (; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else {
      if (c == '"') {
        in_quotes = true;
      } else if (c == ',') {
        fields.push_back(std::move(field));
        field.clear();
      } else if (c == '\n') {
        ++i;
        break;
      } else if (c == '\r') {
        // Swallow CR in CRLF; a bare CR also terminates the record.
        if (i + 1 < text.size() && text[i + 1] == '\n') ++i;
        ++i;
        break;
      } else {
        field += c;
      }
    }
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted CSV field");
  }
  fields.push_back(std::move(field));
  *pos = i;
  return fields;
}

}  // namespace

Result<std::vector<std::string>> ParseCsvLine(std::string_view line) {
  size_t pos = 0;
  PGHIVE_ASSIGN_OR_RETURN(auto fields, ParseRecord(line, &pos));
  if (pos < line.size()) {
    return Status::ParseError("unexpected newline inside CSV line");
  }
  return fields;
}

Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  size_t pos = 0;
  while (pos < text.size()) {
    PGHIVE_ASSIGN_OR_RETURN(auto fields, ParseRecord(text, &pos));
    rows.push_back(std::move(fields));
  }
  return rows;
}

std::string CsvQuote(std::string_view field) {
  bool needs_quote = field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string FormatCsvRow(const std::vector<std::string>& fields) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += ',';
    out += CsvQuote(fields[i]);
  }
  out += '\n';
  return out;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

Status WriteFile(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open file for writing: " + path);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace pghive
