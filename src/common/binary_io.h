// Little-endian binary encoding primitives and CRC32 for the durable state
// store (src/store/).
//
// BinaryWriter appends fixed-width scalars and length-prefixed strings to a
// growing byte buffer; BinaryReader performs the bounds-checked inverse,
// reporting malformed input as Status instead of crashing. Doubles are
// stored as their raw IEEE-754 bit pattern, so every round-trip is
// bit-identical — the property the snapshot format's "reload equals the
// in-memory state exactly" guarantee rests on.

#ifndef PGHIVE_COMMON_BINARY_IO_H_
#define PGHIVE_COMMON_BINARY_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/result.h"

namespace pghive {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `len` bytes.
/// Pass a previous result as `seed` to checksum data incrementally.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view s, uint32_t seed = 0) {
  return Crc32(s.data(), s.size(), seed);
}

/// Appends little-endian scalars and length-prefixed byte strings to an
/// owned buffer.
class BinaryWriter {
 public:
  void WriteU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void WriteU32(uint32_t v) { WriteLittleEndian(v); }
  void WriteU64(uint64_t v) { WriteLittleEndian(v); }

  /// Raw IEEE-754 bit pattern; bit-identical on read-back.
  void WriteDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    WriteU64(bits);
  }

  /// u32 byte count + raw bytes.
  void WriteString(std::string_view s) {
    WriteU32(static_cast<uint32_t>(s.size()));
    buffer_.append(s.data(), s.size());
  }

  /// Raw bytes with no length prefix (for magics and nested payloads).
  void WriteBytes(std::string_view s) { buffer_.append(s.data(), s.size()); }

  const std::string& buffer() const { return buffer_; }
  std::string Take() && { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  template <typename T>
  void WriteLittleEndian(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  std::string buffer_;
};

/// Bounds-checked sequential reader over a byte view. Every accessor
/// returns ParseError instead of reading past the end, so truncated or
/// corrupt input degrades to a Status, never undefined behaviour.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  Result<uint8_t> ReadU8() {
    if (remaining() < 1) return Truncated("u8");
    return static_cast<uint8_t>(data_[pos_++]);
  }

  Result<uint32_t> ReadU32() { return ReadLittleEndian<uint32_t>("u32"); }
  Result<uint64_t> ReadU64() { return ReadLittleEndian<uint64_t>("u64"); }

  Result<double> ReadDouble() {
    PGHIVE_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  Result<std::string> ReadString() {
    PGHIVE_ASSIGN_OR_RETURN(uint32_t n, ReadU32());
    if (remaining() < n) return Truncated("string body");
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  /// A view of the next `n` raw bytes (no copy); valid while the underlying
  /// buffer lives.
  Result<std::string_view> ReadBytes(size_t n) {
    if (remaining() < n) return Truncated("bytes");
    std::string_view v = data_.substr(pos_, n);
    pos_ += n;
    return v;
  }

 private:
  template <typename T>
  Result<T> ReadLittleEndian(const char* what) {
    if (remaining() < sizeof(T)) return Truncated(what);
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  Status Truncated(const char* what) const {
    return Status::ParseError(std::string("binary input truncated reading ") +
                              what + " at offset " + std::to_string(pos_));
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace pghive

#endif  // PGHIVE_COMMON_BINARY_IO_H_
