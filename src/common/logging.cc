#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "common/json.h"

namespace pghive {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::atomic<LogFormat> g_format{LogFormat::kText};

// The sink is read on every emitted record but replaced rarely; a mutex
// around a shared std::function keeps replacement race-free without an
// atomic shared_ptr dance (logging is not on any hot path).
std::mutex g_sink_mutex;
LogSink g_sink;  // empty = default stderr sink

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

bool ParseLogLevel(const std::string& name, LogLevel* level) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower += (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
  }
  if (lower == "debug") {
    *level = LogLevel::kDebug;
  } else if (lower == "info") {
    *level = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn") {
    *level = LogLevel::kWarning;
  } else if (lower == "error") {
    *level = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

const char* LogLevelName(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void SetLogFormat(LogFormat format) { g_format.store(format); }
LogFormat GetLogFormat() { return g_format.load(); }

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = std::move(sink);
}

std::string FormatLogRecord(LogFormat format, LogLevel level,
                            const char* file, int line,
                            const std::string& message) {
  if (format == LogFormat::kJson) {
    std::string out = "{\"level\":\"";
    out += LogLevelName(level);
    out += "\",\"file\":\"";
    out += JsonEscape(file);
    out += "\",\"line\":";
    out += std::to_string(line);
    out += ",\"msg\":\"";
    out += JsonEscape(message);
    out += "\"}";
    return out;
  }
  std::string out = "[";
  out += LogLevelName(level);
  out += " ";
  out += file;
  out += ":";
  out += std::to_string(line);
  out += "] ";
  out += message;
  return out;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {
  // Keep only the basename to reduce noise.
  for (const char* p = file; *p; ++p) {
    if (*p == '/') file_ = p + 1;
  }
}

LogMessage::~LogMessage() {
  const std::string message = stream_.str();
  {
    std::lock_guard<std::mutex> lock(g_sink_mutex);
    if (g_sink) {
      g_sink(level_, file_, line_, message);
      return;
    }
  }
  const std::string record =
      FormatLogRecord(GetLogFormat(), level_, file_, line_, message);
  std::fputs(record.c_str(), stderr);
  std::fputc('\n', stderr);
}

}  // namespace internal
}  // namespace pghive
