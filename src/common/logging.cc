#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace pghive {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Keep only the basename to reduce noise.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::fputs(stream_.str().c_str(), stderr);
  std::fputc('\n', stderr);
}

}  // namespace internal
}  // namespace pghive
