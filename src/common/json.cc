#include "common/json.h"

#include <cmath>
#include <cstdio>

namespace pghive {

namespace {
const JsonValue& NullSentinel() {
  static const JsonValue* kNull = new JsonValue();
  return *kNull;
}
}  // namespace

const JsonValue& JsonValue::operator[](const std::string& key) const {
  if (kind_ != Kind::kObject) return NullSentinel();
  auto it = object_.find(key);
  return it == object_.end() ? NullSentinel() : it->second;
}

Result<bool> JsonValue::GetBool(const std::string& key) const {
  const JsonValue& v = (*this)[key];
  if (!v.is_bool()) return Status::NotFound("missing bool member: " + key);
  return v.AsBool();
}

Result<int64_t> JsonValue::GetInt(const std::string& key) const {
  const JsonValue& v = (*this)[key];
  if (!v.is_number()) return Status::NotFound("missing number member: " + key);
  return v.AsInt();
}

Result<double> JsonValue::GetDouble(const std::string& key) const {
  const JsonValue& v = (*this)[key];
  if (!v.is_number()) return Status::NotFound("missing number member: " + key);
  return v.AsDouble();
}

Result<std::string> JsonValue::GetString(const std::string& key) const {
  const JsonValue& v = (*this)[key];
  if (!v.is_string()) return Status::NotFound("missing string member: " + key);
  return v.AsString();
}

bool JsonValue::operator==(const JsonValue& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNull:
      return true;
    case Kind::kBool:
      return bool_ == other.bool_;
    case Kind::kNumber:
      return number_ == other.number_;
    case Kind::kString:
      return string_ == other.string_;
    case Kind::kArray:
      return array_ == other.array_;
    case Kind::kObject:
      return object_ == other.object_;
  }
  return false;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

void WriteNumber(std::string* out, double d) {
  // Exact integers print without a fractional part.
  if (std::isfinite(d) && d == std::floor(d) && std::abs(d) < 9e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    *out += buf;
    return;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  *out += buf;
}

void Newline(std::string* out, int indent, int depth) {
  if (indent <= 0) return;
  *out += '\n';
  out->append(static_cast<size_t>(indent * depth), ' ');
}

}  // namespace

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber:
      WriteNumber(out, number_);
      return;
    case Kind::kString:
      *out += '"';
      *out += JsonEscape(string_);
      *out += '"';
      return;
    case Kind::kArray: {
      if (array_.empty()) {
        *out += "[]";
        return;
      }
      *out += '[';
      bool first = true;
      for (const auto& v : array_) {
        if (!first) *out += ',';
        first = false;
        Newline(out, indent, depth + 1);
        v.DumpTo(out, indent, depth + 1);
      }
      Newline(out, indent, depth);
      *out += ']';
      return;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        *out += "{}";
        return;
      }
      *out += '{';
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) *out += ',';
        first = false;
        Newline(out, indent, depth + 1);
        *out += '"';
        *out += JsonEscape(k);
        *out += indent > 0 ? "\": " : "\":";
        v.DumpTo(out, indent, depth + 1);
      }
      Newline(out, indent, depth);
      *out += '}';
      return;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out, 0, 0);
  return out;
}

std::string JsonValue::Pretty() const {
  std::string out;
  DumpTo(&out, 2, 0);
  return out;
}

// ---------- parser ----------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    SkipWhitespace();
    PGHIVE_ASSIGN_OR_RETURN(JsonValue v, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 128;

  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at offset " + std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      PGHIVE_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue(std::move(s));
    }
    if (ConsumeLiteral("true")) return JsonValue(true);
    if (ConsumeLiteral("false")) return JsonValue(false);
    if (ConsumeLiteral("null")) return JsonValue();
    return ParseNumber();
  }

  Result<JsonValue> ParseObject(int depth) {
    Consume('{');
    JsonObject obj;
    SkipWhitespace();
    if (Consume('}')) return JsonValue(std::move(obj));
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      PGHIVE_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      PGHIVE_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      obj.emplace(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return JsonValue(std::move(obj));
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    Consume('[');
    JsonArray arr;
    SkipWhitespace();
    if (Consume(']')) return JsonValue(std::move(arr));
    for (;;) {
      PGHIVE_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      arr.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return JsonValue(std::move(arr));
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    Consume('"');
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("bad hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogates passed through as
          // replacement-free sequential encodes; schema data is ASCII).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("unknown escape sequence");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("invalid JSON value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Error("malformed number '" + token + "'");
    }
    return JsonValue(d);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace pghive
