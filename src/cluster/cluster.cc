#include "cluster/cluster.h"

#include <algorithm>

namespace pghive {

double JaccardSimilarity(const std::set<std::string>& a,
                         const std::set<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t intersection = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia == *ib) {
      ++intersection;
      ++ia;
      ++ib;
    } else if (*ia < *ib) {
      ++ia;
    } else {
      ++ib;
    }
  }
  size_t uni = a.size() + b.size() - intersection;
  return static_cast<double>(intersection) / static_cast<double>(uni);
}

}  // namespace pghive
