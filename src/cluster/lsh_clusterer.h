// LSH-collision clustering (paper §4.2).
//
// Elements that share a bucket key in at least one hash table (ELSH) or
// band (MinHash) — the OR rule — are placed in the same candidate cluster
// via union-find. This realizes the paper's P_{b,T}(d) collision analysis
// with a single O(N * T) pass and no pairwise comparisons.

#ifndef PGHIVE_CLUSTER_LSH_CLUSTERER_H_
#define PGHIVE_CLUSTER_LSH_CLUSTERER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pghive {

/// Groups elements whose per-table bucket-key vectors collide in >= 1
/// position. `keys[i]` holds the bucket keys of element i; all elements must
/// have the same number of keys. Returns member-index groups.
std::vector<std::vector<size_t>> ClusterByBucketKeys(
    const std::vector<std::vector<uint64_t>>& keys);

}  // namespace pghive

#endif  // PGHIVE_CLUSTER_LSH_CLUSTERER_H_
