// LSH-collision clustering (paper §4.2).
//
// Elements that share a bucket key in at least one hash table (ELSH) or
// band (MinHash) — the OR rule — are placed in the same candidate cluster
// via union-find. This realizes the paper's P_{b,T}(d) collision analysis
// with a single O(N * T) pass and no pairwise comparisons.

#ifndef PGHIVE_CLUSTER_LSH_CLUSTERER_H_
#define PGHIVE_CLUSTER_LSH_CLUSTERER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pghive {

/// Groups elements whose per-table bucket-key vectors collide in >= 1
/// position. `keys[i]` holds the bucket keys of element i; all elements must
/// have the same number of keys. Returns member-index groups.
std::vector<std::vector<size_t>> ClusterByBucketKeys(
    const std::vector<std::vector<uint64_t>>& keys);

/// Hot path: the same clustering at SIGNATURE-GROUP level. rep_keys[r] holds
/// the bucket keys of signature group r's representative; sig_of[i] maps
/// element slot i to its group (EncodedElements). Merging runs a
/// rank-compressed union-find over the ~|groups| representatives instead of
/// the |elements| fanned-out rows, then fans only the component ids out.
///
/// Byte-identical to ClusterByBucketKeys over fanned per-element keys:
/// members of a group share identical keys, so the element partition is the
/// group partition fanned out; components are numbered by minimal group
/// index (== minimal member slot, since groups are created in first-member
/// slot order) and members are emitted in ascending slot order — exactly
/// UnionFind::Components()'s documented order on the element-level path.
std::vector<std::vector<size_t>> ClusterGroupsByRepKeys(
    const std::vector<std::vector<uint64_t>>& rep_keys,
    const std::vector<size_t>& sig_of);

/// Single-key-per-representative variant (the MinHash whole-signature rule).
std::vector<std::vector<size_t>> ClusterGroupsByRepKey(
    const std::vector<uint64_t>& rep_key, const std::vector<size_t>& sig_of);

}  // namespace pghive

#endif  // PGHIVE_CLUSTER_LSH_CLUSTERER_H_
