// Cluster representation: a group of structurally similar elements plus its
// representative pattern (paper §4.2, "Cluster representative").

#ifndef PGHIVE_CLUSTER_CLUSTER_H_
#define PGHIVE_CLUSTER_CLUSTER_H_

#include <cstddef>
#include <set>
#include <string>
#include <vector>

namespace pghive {

/// A candidate type emerging from LSH clustering. `members` are indices into
/// the clustered element population (global NodeId/EdgeId values when the
/// population is a batch of the graph). The representative pattern is the
/// union of labels / property keys / endpoint labels over the members
/// (paper: rep(C) = (L, K, R)).
struct Cluster {
  std::vector<size_t> members;
  std::set<std::string> labels;          // L
  std::set<std::string> property_keys;   // K
  std::set<std::string> source_labels;   // R.first  (edges only)
  std::set<std::string> target_labels;   // R.second (edges only)

  bool labeled() const { return !labels.empty(); }
  size_t size() const { return members.size(); }
};

/// Jaccard similarity of two string sets; 1.0 when both are empty (two
/// property-less clusters are structurally identical).
double JaccardSimilarity(const std::set<std::string>& a,
                         const std::set<std::string>& b);

}  // namespace pghive

#endif  // PGHIVE_CLUSTER_CLUSTER_H_
