#include "cluster/lsh_clusterer.h"

#include <limits>
#include <unordered_map>

#include "common/union_find.h"

namespace pghive {

std::vector<std::vector<size_t>> ClusterByBucketKeys(
    const std::vector<std::vector<uint64_t>>& keys) {
  size_t n = keys.size();
  UnionFind uf(n);
  // Map each bucket key to the first element that produced it; later
  // elements with the same key union with that anchor. Keys already encode
  // the table index (see EuclideanLsh::Hash / MinHashLsh::BandKeys), so one
  // flat map suffices.
  std::unordered_map<uint64_t, size_t> first_seen;
  if (n > 0) first_seen.reserve(n * keys[0].size());
  for (size_t i = 0; i < n; ++i) {
    for (uint64_t key : keys[i]) {
      auto [it, inserted] = first_seen.emplace(key, i);
      if (!inserted) uf.Union(i, it->second);
    }
  }
  return uf.Components();
}

namespace {

/// Unions groups sharing a key, then numbers components by minimal group
/// index and fans element slots out in ascending order (the equivalence
/// argument is in the header). KeysOf(r) yields group r's keys.
template <typename KeysOf>
std::vector<std::vector<size_t>> ClusterGroups(size_t num_reps,
                                               size_t keys_per_rep,
                                               KeysOf keys_of,
                                               const std::vector<size_t>& sig_of) {
  UnionFind uf(num_reps);
  std::unordered_map<uint64_t, size_t> first_seen;
  first_seen.reserve(num_reps * keys_per_rep);
  for (size_t r = 0; r < num_reps; ++r) {
    for (uint64_t key : keys_of(r)) {
      auto [it, inserted] = first_seen.emplace(key, r);
      if (!inserted) uf.Union(r, it->second);
    }
  }

  constexpr size_t kUnset = std::numeric_limits<size_t>::max();
  std::vector<size_t> comp_of_root(num_reps, kUnset);
  std::vector<size_t> comp_of_rep(num_reps, 0);
  size_t num_components = 0;
  for (size_t r = 0; r < num_reps; ++r) {
    const size_t root = uf.Find(r);
    if (comp_of_root[root] == kUnset) comp_of_root[root] = num_components++;
    comp_of_rep[r] = comp_of_root[root];
  }
  std::vector<std::vector<size_t>> groups(num_components);
  for (size_t i = 0; i < sig_of.size(); ++i) {
    groups[comp_of_rep[sig_of[i]]].push_back(i);
  }
  return groups;
}

struct SingleKeyRange {
  uint64_t key;
  const uint64_t* begin() const { return &key; }
  const uint64_t* end() const { return &key + 1; }
};

}  // namespace

std::vector<std::vector<size_t>> ClusterGroupsByRepKeys(
    const std::vector<std::vector<uint64_t>>& rep_keys,
    const std::vector<size_t>& sig_of) {
  const size_t keys_per_rep = rep_keys.empty() ? 0 : rep_keys[0].size();
  return ClusterGroups(
      rep_keys.size(), keys_per_rep,
      [&](size_t r) -> const std::vector<uint64_t>& { return rep_keys[r]; },
      sig_of);
}

std::vector<std::vector<size_t>> ClusterGroupsByRepKey(
    const std::vector<uint64_t>& rep_key, const std::vector<size_t>& sig_of) {
  return ClusterGroups(
      rep_key.size(), 1,
      [&](size_t r) { return SingleKeyRange{rep_key[r]}; }, sig_of);
}

}  // namespace pghive
