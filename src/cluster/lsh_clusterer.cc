#include "cluster/lsh_clusterer.h"

#include <unordered_map>

#include "common/union_find.h"

namespace pghive {

std::vector<std::vector<size_t>> ClusterByBucketKeys(
    const std::vector<std::vector<uint64_t>>& keys) {
  size_t n = keys.size();
  UnionFind uf(n);
  // Map each bucket key to the first element that produced it; later
  // elements with the same key union with that anchor. Keys already encode
  // the table index (see EuclideanLsh::Hash / MinHashLsh::BandKeys), so one
  // flat map suffices.
  std::unordered_map<uint64_t, size_t> first_seen;
  if (n > 0) first_seen.reserve(n * keys[0].size());
  for (size_t i = 0; i < n; ++i) {
    for (uint64_t key : keys[i]) {
      auto [it, inserted] = first_seen.emplace(key, i);
      if (!inserted) uf.Union(i, it->second);
    }
  }
  return uf.Components();
}

}  // namespace pghive
