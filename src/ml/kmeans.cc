#include "ml/kmeans.h"

#include <cmath>
#include <limits>

#include "common/random.h"

namespace pghive {

namespace {

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double sq = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    sq += d * d;
  }
  return sq;
}

// k-means++: first centroid uniform, then proportional to D^2.
std::vector<std::vector<double>> InitPlusPlus(
    const std::vector<std::vector<double>>& points, int k, Rng* rng) {
  std::vector<std::vector<double>> centroids;
  centroids.reserve(k);
  centroids.push_back(
      points[rng->UniformU32(static_cast<uint32_t>(points.size()))]);
  std::vector<double> d2(points.size(),
                         std::numeric_limits<double>::infinity());
  while (static_cast<int>(centroids.size()) < k) {
    double total = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      d2[i] = std::min(d2[i], SquaredDistance(points[i], centroids.back()));
      total += d2[i];
    }
    if (total <= 0.0) {
      // All points coincide with centroids; duplicate one.
      centroids.push_back(points[0]);
      continue;
    }
    double r = rng->UniformDouble() * total;
    double cum = 0.0;
    size_t chosen = points.size() - 1;
    for (size_t i = 0; i < points.size(); ++i) {
      cum += d2[i];
      if (cum >= r) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

}  // namespace

Result<KMeansResult> KMeans(const std::vector<std::vector<double>>& points,
                            int k, const KMeansOptions& options) {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (points.empty()) return Status::InvalidArgument("no points");
  size_t dim = points[0].size();
  for (const auto& p : points) {
    if (p.size() != dim) return Status::InvalidArgument("ragged input");
  }
  k = std::min<int>(k, static_cast<int>(points.size()));

  Rng rng(options.seed, 0x6b6d);
  KMeansResult result;
  result.centroids = InitPlusPlus(points, k, &rng);
  result.assignments.assign(points.size(), 0);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step.
    result.inertia = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_c = 0;
      for (int c = 0; c < k; ++c) {
        double d = SquaredDistance(points[i], result.centroids[c]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      result.assignments[i] = best_c;
      result.inertia += best;
    }
    // Update step.
    std::vector<std::vector<double>> sums(k, std::vector<double>(dim, 0.0));
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < points.size(); ++i) {
      int c = result.assignments[i];
      ++counts[c];
      for (size_t d = 0; d < dim; ++d) sums[c][d] += points[i][d];
    }
    double shift = 0.0;
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point.
        sums[c] = points[rng.UniformU32(static_cast<uint32_t>(points.size()))];
        counts[c] = 1;
      }
      for (size_t d = 0; d < dim; ++d) {
        sums[c][d] /= static_cast<double>(counts[c]);
      }
      shift += std::sqrt(SquaredDistance(sums[c], result.centroids[c]));
      result.centroids[c] = std::move(sums[c]);
    }
    if (shift < options.tolerance) break;
  }
  return result;
}

}  // namespace pghive
