// Basic descriptive statistics used by the ML substrate and evaluation.

#ifndef PGHIVE_ML_STATS_H_
#define PGHIVE_ML_STATS_H_

#include <cstddef>
#include <vector>

namespace pghive {

double Mean(const std::vector<double>& xs);
double Variance(const std::vector<double>& xs);  // population variance
double StdDev(const std::vector<double>& xs);

/// Sample median (average of middle two for even n); 0 for empty input.
double Median(std::vector<double> xs);

/// log(sum_i exp(x_i)) computed stably; -inf for empty input.
double LogSumExp(const std::vector<double>& xs);

/// Average rank of each column over rows (1 = best = largest value), with
/// ties sharing the mean of the tied rank positions. Rows are test cases,
/// columns are methods. Used by the Friedman/Nemenyi analysis (Figure 3),
/// where methods are ranked by F1* per case.
std::vector<double> AverageRanks(const std::vector<std::vector<double>>& rows);

}  // namespace pghive

#endif  // PGHIVE_ML_STATS_H_
