#include "ml/gmm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ml/kmeans.h"
#include "ml/stats.h"

namespace pghive {

namespace {

// log N(x | mean, diag(var)).
double LogGaussian(const std::vector<double>& x,
                   const std::vector<double>& mean,
                   const std::vector<double>& var) {
  double ll = 0.0;
  for (size_t d = 0; d < x.size(); ++d) {
    double diff = x[d] - mean[d];
    ll += -0.5 * (std::log(2.0 * M_PI * var[d]) + diff * diff / var[d]);
  }
  return ll;
}

}  // namespace

std::vector<double> GmmModel::Responsibilities(
    const std::vector<double>& x) const {
  int k = num_components();
  std::vector<double> logp(k);
  for (int c = 0; c < k; ++c) {
    logp[c] = std::log(std::max(weights[c], 1e-300)) +
              LogGaussian(x, means[c], variances[c]);
  }
  double lse = LogSumExp(logp);
  std::vector<double> resp(k);
  for (int c = 0; c < k; ++c) resp[c] = std::exp(logp[c] - lse);
  return resp;
}

int GmmModel::Predict(const std::vector<double>& x) const {
  int k = num_components();
  double best = -std::numeric_limits<double>::infinity();
  int best_c = 0;
  for (int c = 0; c < k; ++c) {
    double lp = std::log(std::max(weights[c], 1e-300)) +
                LogGaussian(x, means[c], variances[c]);
    if (lp > best) {
      best = lp;
      best_c = c;
    }
  }
  return best_c;
}

double GmmModel::Bic(size_t n) const {
  if (means.empty()) return std::numeric_limits<double>::infinity();
  size_t dim = means[0].size();
  // Free parameters: k-1 weights + k*dim means + k*dim variances.
  double params = static_cast<double>(num_components()) *
                      (2.0 * static_cast<double>(dim)) +
                  (num_components() - 1);
  return -2.0 * log_likelihood +
         params * std::log(static_cast<double>(std::max<size_t>(n, 1)));
}

Result<GmmModel> FitGmm(const std::vector<std::vector<double>>& points, int k,
                        const GmmOptions& options) {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (points.empty()) return Status::InvalidArgument("no points");
  size_t n = points.size();
  size_t dim = points[0].size();
  for (const auto& p : points) {
    if (p.size() != dim) return Status::InvalidArgument("ragged input");
  }
  k = std::min<int>(k, static_cast<int>(n));

  // Initialize from k-means.
  KMeansOptions km_opt;
  km_opt.seed = options.seed;
  PGHIVE_ASSIGN_OR_RETURN(KMeansResult km, KMeans(points, k, km_opt));
  k = static_cast<int>(km.centroids.size());

  GmmModel model;
  model.weights.assign(k, 0.0);
  model.means = km.centroids;
  model.variances.assign(k, std::vector<double>(dim, options.min_variance));

  // Moment-match each k-means cluster for the starting point.
  std::vector<size_t> counts(k, 0);
  for (size_t i = 0; i < n; ++i) ++counts[km.assignments[i]];
  for (int c = 0; c < k; ++c) {
    model.weights[c] =
        std::max(1e-6, static_cast<double>(counts[c]) / static_cast<double>(n));
  }
  for (size_t i = 0; i < n; ++i) {
    int c = km.assignments[i];
    for (size_t d = 0; d < dim; ++d) {
      double diff = points[i][d] - model.means[c][d];
      model.variances[c][d] += diff * diff / std::max<size_t>(counts[c], 1);
    }
  }

  // EM iterations.
  std::vector<std::vector<double>> resp(n, std::vector<double>(k, 0.0));
  double prev_ll = -std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    model.iterations = iter + 1;
    // E-step.
    double ll = 0.0;
    std::vector<double> logp(k);
    for (size_t i = 0; i < n; ++i) {
      for (int c = 0; c < k; ++c) {
        logp[c] = std::log(std::max(model.weights[c], 1e-300)) +
                  LogGaussian(points[i], model.means[c], model.variances[c]);
      }
      double lse = LogSumExp(logp);
      ll += lse;
      for (int c = 0; c < k; ++c) resp[i][c] = std::exp(logp[c] - lse);
    }
    model.log_likelihood = ll;

    // M-step.
    for (int c = 0; c < k; ++c) {
      double nk = 0.0;
      for (size_t i = 0; i < n; ++i) nk += resp[i][c];
      nk = std::max(nk, 1e-10);
      model.weights[c] = nk / static_cast<double>(n);
      for (size_t d = 0; d < dim; ++d) {
        double m = 0.0;
        for (size_t i = 0; i < n; ++i) m += resp[i][c] * points[i][d];
        m /= nk;
        double v = 0.0;
        for (size_t i = 0; i < n; ++i) {
          double diff = points[i][d] - m;
          v += resp[i][c] * diff * diff;
        }
        model.means[c][d] = m;
        model.variances[c][d] = std::max(v / nk, options.min_variance);
      }
    }

    if (std::abs(ll - prev_ll) < options.tolerance * std::abs(ll)) break;
    prev_ll = ll;
  }
  return model;
}

Result<GmmModel> FitGmmBic(const std::vector<std::vector<double>>& points,
                           int k_min, int k_max, const GmmOptions& options) {
  if (k_min <= 0 || k_max < k_min) {
    return Status::InvalidArgument("invalid k range");
  }
  GmmModel best;
  double best_bic = std::numeric_limits<double>::infinity();
  bool have = false;
  for (int k = k_min; k <= k_max; ++k) {
    auto fitted = FitGmm(points, k, options);
    if (!fitted.ok()) return fitted.status();
    double bic = fitted->Bic(points.size());
    if (!have || bic < best_bic) {
      best = std::move(fitted).value();
      best_bic = bic;
      have = true;
    }
  }
  return best;
}

}  // namespace pghive
