// Gaussian Mixture Model with diagonal covariance, fit by EM.
//
// Substrate for the GMMSchema baseline (Bonifati et al., EDBT 2022), which
// clusters node property-distribution vectors with a GMM. Model order can be
// selected by BIC over a range of k.

#ifndef PGHIVE_ML_GMM_H_
#define PGHIVE_ML_GMM_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace pghive {

struct GmmOptions {
  int max_iterations = 60;
  double tolerance = 1e-4;       // stop on log-likelihood improvement below
  double min_variance = 1e-4;    // variance floor for numerical stability
  uint64_t seed = 17;
};

/// A fitted mixture of k diagonal Gaussians.
struct GmmModel {
  std::vector<double> weights;                // k
  std::vector<std::vector<double>> means;     // k x dim
  std::vector<std::vector<double>> variances; // k x dim (diagonal)
  double log_likelihood = 0.0;
  int iterations = 0;

  int num_components() const { return static_cast<int>(weights.size()); }

  /// Index of the most probable component for a point.
  int Predict(const std::vector<double>& x) const;

  /// Posterior responsibilities for a point (size k, sums to 1).
  std::vector<double> Responsibilities(const std::vector<double>& x) const;

  /// Bayesian Information Criterion: -2*LL + params*ln(n). Lower is better.
  double Bic(size_t n) const;
};

/// Fits a k-component GMM with EM, initialized from k-means++. Fails with
/// InvalidArgument on k <= 0 or empty/ragged input; k is capped at n.
Result<GmmModel> FitGmm(const std::vector<std::vector<double>>& points, int k,
                        const GmmOptions& options = {});

/// Fits GMMs for k in [k_min, k_max] and returns the one with the lowest
/// BIC. This is how GMMSchema chooses the number of sub-clusters per label
/// group without supervision.
Result<GmmModel> FitGmmBic(const std::vector<std::vector<double>>& points,
                           int k_min, int k_max,
                           const GmmOptions& options = {});

}  // namespace pghive

#endif  // PGHIVE_ML_GMM_H_
