#include "ml/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace pghive {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double m = Mean(xs);
  double sq = 0.0;
  for (double x : xs) sq += (x - m) * (x - m);
  return sq / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double Median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + mid, xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  double lo = *std::max_element(xs.begin(), xs.begin() + mid);
  return (lo + hi) / 2.0;
}

double LogSumExp(const std::vector<double>& xs) {
  if (xs.empty()) return -std::numeric_limits<double>::infinity();
  double mx = *std::max_element(xs.begin(), xs.end());
  if (!std::isfinite(mx)) return mx;
  double sum = 0.0;
  for (double x : xs) sum += std::exp(x - mx);
  return mx + std::log(sum);
}

std::vector<double> AverageRanks(
    const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return {};
  size_t k = rows[0].size();
  std::vector<double> rank_sum(k, 0.0);
  for (const auto& row : rows) {
    // Sort column indices by value descending (rank 1 = largest).
    std::vector<size_t> order(k);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) { return row[a] > row[b]; });
    // Assign mean ranks to ties.
    size_t i = 0;
    while (i < k) {
      size_t j = i;
      while (j + 1 < k && row[order[j + 1]] == row[order[i]]) ++j;
      double mean_rank = (static_cast<double>(i + 1) +
                          static_cast<double>(j + 1)) / 2.0;
      for (size_t t = i; t <= j; ++t) rank_sum[order[t]] += mean_rank;
      i = j + 1;
    }
  }
  for (auto& r : rank_sum) r /= static_cast<double>(rows.size());
  return rank_sum;
}

}  // namespace pghive
