// k-means with k-means++ seeding; used to initialize the GMM (EM) fit.

#ifndef PGHIVE_ML_KMEANS_H_
#define PGHIVE_ML_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace pghive {

struct KMeansOptions {
  int max_iterations = 50;
  double tolerance = 1e-4;  // stop when centroid shift falls below this
  uint64_t seed = 13;
};

struct KMeansResult {
  /// k centroids, each of the input dimension.
  std::vector<std::vector<double>> centroids;
  /// Cluster index per input point.
  std::vector<int> assignments;
  /// Sum of squared distances to assigned centroids.
  double inertia = 0.0;
  int iterations = 0;
};

/// Lloyd's algorithm with k-means++ initialization. Fails with
/// InvalidArgument for k <= 0 or an empty/ragged input. If k > n, k is
/// reduced to n.
Result<KMeansResult> KMeans(const std::vector<std::vector<double>>& points,
                            int k, const KMeansOptions& options = {});

}  // namespace pghive

#endif  // PGHIVE_ML_KMEANS_H_
