// In-memory property graph store (Definition 3.1), interned + deduplicated.
//
// A property graph G = (V, E, rho, lambda, pi): nodes and edges carry a
// (possibly empty) set of labels and a set of key->Value properties; each
// edge maps to an ordered (source, target) node pair.
//
// This store replaces the Neo4j + Spark substrate of the paper (see
// DESIGN.md §1): PG-HIVE's algorithms only ever consume full scans of nodes
// and edges, which the store provides as contiguous vectors, plus batch
// views for the incremental pipeline.
//
// Representation (DESIGN.md "Interned graph core"): labels and property
// keys are interned to dense uint32 ids in a GraphSymbols context shared by
// the graph and all its copies. Each element stores only
//   - its LabelSetId / KeySetId (canonical set ids; one per distinct set),
//   - its SignatureId — the distinct (label-set, key-set) pattern of
//     Definitions 3.5/3.6,
//   - a shared row of property VALUES aligned with the canonical
//     (lexicographic) key order of its key set,
// so two of the graph's hot currencies — set comparison and set hashing —
// collapse to single-integer operations, and each distinct label/key set is
// materialized exactly once. `labels` and `properties` remain public fields
// of Node/Edge but are now lightweight views (LabelSetView/PropertyMapView)
// over the pooled canonical sets: read sites keep the std::set/std::map
// idioms (iteration in the same lexicographic order as before, find/count/
// at, implicit conversion to const std::set<std::string>&). Mutation goes
// through the PropertyGraph::Set* API, which re-interns (rows are
// copy-on-write: graph copies share rows until one of them mutates).
//
// Ground truth: elements optionally carry a `truth_type` annotation set by
// the dataset generators. Discovery algorithms never read it; only the
// evaluation harness does (majority-F1*, §5 of the paper).

#ifndef PGHIVE_GRAPH_PROPERTY_GRAPH_H_
#define PGHIVE_GRAPH_PROPERTY_GRAPH_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "graph/symbols.h"
#include "graph/value.h"

namespace pghive {

using NodeId = uint64_t;
using EdgeId = uint64_t;

/// Read-only view of a pool-owned canonical label set. Converts implicitly
/// to const std::set<std::string>& (the pooled set is materialized once per
/// distinct content and outlives every element that references it).
class LabelSetView {
 public:
  LabelSetView() : set_(&EmptySet()) {}
  explicit LabelSetView(const std::set<std::string>* set) : set_(set) {}

  operator const std::set<std::string>&() const { return *set_; }
  const std::set<std::string>& get() const { return *set_; }

  auto begin() const { return set_->begin(); }
  auto end() const { return set_->end(); }
  size_t size() const { return set_->size(); }
  bool empty() const { return set_->empty(); }
  size_t count(const std::string& s) const { return set_->count(s); }

  friend bool operator==(const LabelSetView& a, const LabelSetView& b) {
    return a.set_ == b.set_ || *a.set_ == *b.set_;
  }
  friend bool operator!=(const LabelSetView& a, const LabelSetView& b) {
    return !(a == b);
  }
  // std::set's operator== is a template and cannot deduce through the view's
  // conversion, so mixed comparisons need explicit overloads (C++20
  // synthesizes the reversed and != forms).
  friend bool operator==(const LabelSetView& a, const std::set<std::string>& b) {
    return *a.set_ == b;
  }

 private:
  static const std::set<std::string>& EmptySet();
  const std::set<std::string>* set_;
};

/// Read-only map-like view over an element's properties: canonical key ids
/// from the pool + the element's value row. Iterates in the same
/// lexicographic key order as the std::map it replaces, yielding
/// pair<const std::string&, const Value&>.
class PropertyMapView {
 public:
  using value_type = std::pair<const std::string&, const Value&>;

  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = PropertyMapView::value_type;
    using difference_type = std::ptrdiff_t;

    iterator() = default;
    iterator(const SymbolTable* table, const std::vector<SymbolId>* keys,
             const std::vector<Value>* values, size_t i)
        : table_(table), keys_(keys), values_(values), i_(i) {}

    value_type operator*() const {
      return {table_->name((*keys_)[i_]), (*values_)[i_]};
    }

    // Proxy so `it->first` / `it->second` work; the references inside point
    // at pool/row storage, not at the proxy.
    struct ArrowProxy {
      value_type ref;
      const value_type* operator->() const { return &ref; }
    };
    ArrowProxy operator->() const { return ArrowProxy{**this}; }

    iterator& operator++() {
      ++i_;
      return *this;
    }
    iterator operator++(int) {
      iterator tmp = *this;
      ++i_;
      return tmp;
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.i_ == b.i_ && a.keys_ == b.keys_;
    }
    friend bool operator!=(const iterator& a, const iterator& b) {
      return !(a == b);
    }

   private:
    const SymbolTable* table_ = nullptr;
    const std::vector<SymbolId>* keys_ = nullptr;
    const std::vector<Value>* values_ = nullptr;
    size_t i_ = 0;
  };

  PropertyMapView() = default;
  PropertyMapView(const SymbolTable* table, const std::vector<SymbolId>* keys,
                  const std::vector<Value>* values)
      : table_(table), keys_(keys), values_(values) {}

  iterator begin() const { return {table_, keys_, values_, 0}; }
  iterator end() const { return {table_, keys_, values_, size()}; }
  size_t size() const { return keys_ == nullptr ? 0 : keys_->size(); }
  bool empty() const { return size() == 0; }

  /// Binary search over the name-ordered key ids.
  iterator find(const std::string& key) const;
  size_t count(const std::string& key) const {
    return FindIndex(key) == kNotFound ? 0 : 1;
  }
  /// Throws std::out_of_range when absent (std::map::at semantics).
  const Value& at(const std::string& key) const;
  /// nullptr when absent — the cheap non-throwing lookup for hot paths.
  const Value* FindValue(const std::string& key) const {
    size_t i = FindIndex(key);
    return i == kNotFound ? nullptr : &(*values_)[i];
  }

  /// Key name at position `i` in canonical order.
  const std::string& key_at(size_t i) const { return table_->name((*keys_)[i]); }
  const Value& value_at(size_t i) const { return (*values_)[i]; }

  /// Materializes an owning copy (conversion kept implicit so call sites
  /// passing `const std::map<...>&` still compile; cold paths only).
  operator std::map<std::string, Value>() const { return ToMap(); }
  std::map<std::string, Value> ToMap() const;

  friend bool operator==(const PropertyMapView& a, const PropertyMapView& b);
  friend bool operator!=(const PropertyMapView& a, const PropertyMapView& b) {
    return !(a == b);
  }
  friend bool operator==(const PropertyMapView& a,
                         const std::map<std::string, Value>& b);

 private:
  static constexpr size_t kNotFound = static_cast<size_t>(-1);
  size_t FindIndex(const std::string& key) const;

  const SymbolTable* table_ = nullptr;
  const std::vector<SymbolId>* keys_ = nullptr;
  const std::vector<Value>* values_ = nullptr;
};

/// A node: labels (lambda), properties (pi) and an evaluation-only ground
/// truth tag. `label_set`/`key_set`/`signature` are the interned identities
/// (valid within the owning graph's symbol context); `labels`/`properties`
/// are views over the pooled canonical data.
struct Node {
  NodeId id = 0;
  LabelSetId label_set = SymbolSetPool::kEmpty;
  KeySetId key_set = SymbolSetPool::kEmpty;
  SignatureId signature = 0;
  LabelSetView labels;
  PropertyMapView properties;
  /// Ground-truth type name; empty when unknown. Not consumed by discovery.
  std::string truth_type;

  bool HasProperty(const std::string& key) const {
    return properties.count(key) > 0;
  }

 private:
  friend class PropertyGraph;
  // Keeps the value row alive; `properties` points into it. Shared between
  // graph copies (rows are immutable; mutation swaps in a fresh row).
  std::shared_ptr<const std::vector<Value>> values_;
};

/// An edge: ordered endpoints (rho), labels, properties, ground truth tag.
struct Edge {
  EdgeId id = 0;
  NodeId source = 0;
  NodeId target = 0;
  LabelSetId label_set = SymbolSetPool::kEmpty;
  KeySetId key_set = SymbolSetPool::kEmpty;
  SignatureId signature = 0;
  LabelSetView labels;
  PropertyMapView properties;
  std::string truth_type;

  bool HasProperty(const std::string& key) const {
    return properties.count(key) > 0;
  }

 private:
  friend class PropertyGraph;
  std::shared_ptr<const std::vector<Value>> values_;
};

/// Owning, symbol-free element data: the transit format for codecs, stream
/// batches and anything that builds elements before a graph exists.
struct NodeData {
  NodeId id = 0;
  std::set<std::string> labels;
  std::map<std::string, Value> properties;
  std::string truth_type;
};

struct EdgeData {
  EdgeId id = 0;
  NodeId source = 0;
  NodeId target = 0;
  std::set<std::string> labels;
  std::map<std::string, Value> properties;
  std::string truth_type;
};

NodeData ToData(const Node& n);
EdgeData ToData(const Edge& e);

/// Directed multigraph with labeled, propertied nodes and edges.
///
/// NodeIds/EdgeIds are dense indices assigned in insertion order, which makes
/// batch slicing for the incremental pipeline trivial.
///
/// Copies share the symbol context (append-only) and the immutable value
/// rows, so copying is O(elements) over small structs rather than
/// O(strings). Copies sharing a context must not be MUTATED concurrently
/// from different threads; concurrent reads are safe.
class PropertyGraph {
 public:
  PropertyGraph();

  /// Constructs an empty graph over an existing symbol context (the
  /// columnar snapshot decode path re-interns the persisted symbol tables
  /// once, then appends elements by id through AddNodeInterned/
  /// AddEdgeInterned). `symbols` must be non-null.
  explicit PropertyGraph(std::shared_ptr<GraphSymbols> symbols);

  PropertyGraph(const PropertyGraph&) = default;
  PropertyGraph& operator=(const PropertyGraph&) = default;
  PropertyGraph(PropertyGraph&&) = default;
  PropertyGraph& operator=(PropertyGraph&&) = default;

  /// Adds a node; returns its id.
  NodeId AddNode(std::set<std::string> labels,
                 std::map<std::string, Value> properties,
                 std::string truth_type = "");

  /// Adds an edge between existing nodes. Fails with InvalidArgument if an
  /// endpoint does not exist.
  Result<EdgeId> AddEdge(NodeId source, NodeId target,
                         std::set<std::string> labels,
                         std::map<std::string, Value> properties,
                         std::string truth_type = "");

  // --- Interned fast path (snapshot/journal decode) ----------------------

  /// Adds a node by pre-interned set ids from THIS graph's symbol context;
  /// `values` must be aligned with the key set's canonical (lexicographic)
  /// key order. Fails with InvalidArgument on out-of-range ids or a
  /// mismatched row length.
  Result<NodeId> AddNodeInterned(LabelSetId label_set, KeySetId key_set,
                                 std::vector<Value> values,
                                 std::string truth_type = "");
  Result<EdgeId> AddEdgeInterned(NodeId source, NodeId target,
                                 LabelSetId label_set, KeySetId key_set,
                                 std::vector<Value> values,
                                 std::string truth_type = "");

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_edges() const { return edges_.size(); }

  const Node& node(NodeId id) const { return nodes_[id]; }
  const Edge& edge(EdgeId id) const { return edges_[id]; }

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Edge>& edges() const { return edges_; }

  // --- Mutation (re-interns; replaces mutable_node/mutable_edge) ---------

  void SetNodeLabels(NodeId id, const std::set<std::string>& labels);
  void SetEdgeLabels(EdgeId id, const std::set<std::string>& labels);
  void SetNodeProperties(NodeId id, const std::map<std::string, Value>& props);
  void SetEdgeProperties(EdgeId id, const std::map<std::string, Value>& props);

  // --- Interning context -------------------------------------------------

  /// The shared symbol context (labels/keys tables, canonical set pools,
  /// signature pools). Read-only from outside; ids stored on elements index
  /// into it.
  const GraphSymbols& symbols() const { return *symbols_; }

  /// All distinct property keys over nodes, sorted (the global set K_n of
  /// §4.1 that defines the binary indicator dimensions).
  std::vector<std::string> NodePropertyKeys() const;

  /// All distinct property keys over edges, sorted (K_e of §4.1).
  std::vector<std::string> EdgePropertyKeys() const;

  /// All distinct node label tokens (sorted-concatenated label sets are NOT
  /// applied here; these are individual labels), sorted.
  std::vector<std::string> NodeLabels() const;
  std::vector<std::string> EdgeLabels() const;

  // --- Signature index ---------------------------------------------------

  /// One distinct (label-set, key-set) signature with its member element
  /// ids, in id order.
  struct SignatureGroup {
    SignatureId signature = 0;
    std::vector<uint64_t> members;
  };

  /// Distinct node signatures present in the graph with their members, in
  /// first-seen order. Built incrementally; rebuilt lazily after mutation
  /// (call from a single thread).
  const std::vector<SignatureGroup>& NodeSignatureGroups() const;
  const std::vector<SignatureGroup>& EdgeSignatureGroups() const;

  /// Number of distinct node patterns (Def. 3.5): distinct (label set,
  /// property key set) pairs.
  size_t CountNodePatterns() const;

  /// Number of distinct edge patterns (Def. 3.6): distinct (label set,
  /// property key set, (source labels, target labels)) triples.
  size_t CountEdgePatterns() const;

  /// Approximate heap footprint of the graph (symbol context + element
  /// spines + value rows), for the obs gauges and micro-benches.
  size_t ApproxBytes() const;

 private:
  void InternNode(Node* n, const std::set<std::string>& labels,
                  const std::map<std::string, Value>& properties);
  void InternEdge(Edge* e, const std::set<std::string>& labels,
                  const std::map<std::string, Value>& properties);
  void RebuildSignatureIndex() const;
  static void AppendToIndex(std::vector<SignatureGroup>* groups,
                            std::vector<int32_t>* pos, SignatureId sig,
                            uint64_t member);

  std::shared_ptr<GraphSymbols> symbols_;
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;

  // Signature index: groups in first-seen order; pos maps SignatureId ->
  // index in groups (-1 when absent). Mutations mark it dirty; the next
  // accessor call rebuilds.
  mutable std::vector<SignatureGroup> node_sig_groups_;
  mutable std::vector<SignatureGroup> edge_sig_groups_;
  mutable std::vector<int32_t> node_sig_pos_;
  mutable std::vector<int32_t> edge_sig_pos_;
  mutable bool sig_index_dirty_ = false;
};

/// A half-open slice of a graph's node/edge index space; the unit of work of
/// the incremental pipeline (one batch Gs_i of Algorithm 1).
struct GraphBatch {
  const PropertyGraph* graph = nullptr;
  size_t node_begin = 0;
  size_t node_end = 0;  // exclusive
  size_t edge_begin = 0;
  size_t edge_end = 0;  // exclusive

  size_t num_nodes() const { return node_end - node_begin; }
  size_t num_edges() const { return edge_end - edge_begin; }
};

/// Structural equality of two graphs: same node/edge sequences with equal
/// ids, labels, properties (typed values) and ground-truth tags. Used by the
/// CSV and binary-store round-trip guarantees. Graphs sharing a symbol
/// context compare by interned ids; otherwise by canonical content.
bool GraphsEqual(const PropertyGraph& a, const PropertyGraph& b);

/// A batch covering the whole graph (the static, non-incremental case).
GraphBatch FullBatch(const PropertyGraph& g);

/// Splits the graph into `num_batches` near-equal contiguous batches over
/// both nodes and edges (the paper's incremental evaluation splits each
/// graph into 10 batches). Returns fewer batches if the graph is tiny.
std::vector<GraphBatch> SplitIntoBatches(const PropertyGraph& g,
                                         size_t num_batches);

}  // namespace pghive

#endif  // PGHIVE_GRAPH_PROPERTY_GRAPH_H_
