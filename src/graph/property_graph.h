// In-memory property graph store (Definition 3.1).
//
// A property graph G = (V, E, rho, lambda, pi): nodes and edges carry a
// (possibly empty) set of labels and a set of key->Value properties; each
// edge maps to an ordered (source, target) node pair.
//
// This store replaces the Neo4j + Spark substrate of the paper (see
// DESIGN.md §1): PG-HIVE's algorithms only ever consume full scans of nodes
// and edges, which the store provides as contiguous vectors, plus batch
// views for the incremental pipeline.
//
// Ground truth: elements optionally carry a `truth_type` annotation set by
// the dataset generators. Discovery algorithms never read it; only the
// evaluation harness does (majority-F1*, §5 of the paper).

#ifndef PGHIVE_GRAPH_PROPERTY_GRAPH_H_
#define PGHIVE_GRAPH_PROPERTY_GRAPH_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "graph/value.h"

namespace pghive {

using NodeId = uint64_t;
using EdgeId = uint64_t;

/// A node: labels (lambda), properties (pi) and an evaluation-only ground
/// truth tag.
struct Node {
  NodeId id = 0;
  std::set<std::string> labels;
  std::map<std::string, Value> properties;
  /// Ground-truth type name; empty when unknown. Not consumed by discovery.
  std::string truth_type;

  bool HasProperty(const std::string& key) const {
    return properties.count(key) > 0;
  }
};

/// An edge: ordered endpoints (rho), labels, properties, ground truth tag.
struct Edge {
  EdgeId id = 0;
  NodeId source = 0;
  NodeId target = 0;
  std::set<std::string> labels;
  std::map<std::string, Value> properties;
  std::string truth_type;

  bool HasProperty(const std::string& key) const {
    return properties.count(key) > 0;
  }
};

/// Directed multigraph with labeled, propertied nodes and edges.
///
/// NodeIds/EdgeIds are dense indices assigned in insertion order, which makes
/// batch slicing for the incremental pipeline trivial.
class PropertyGraph {
 public:
  PropertyGraph() = default;

  PropertyGraph(const PropertyGraph&) = default;
  PropertyGraph& operator=(const PropertyGraph&) = default;
  PropertyGraph(PropertyGraph&&) = default;
  PropertyGraph& operator=(PropertyGraph&&) = default;

  /// Adds a node; returns its id.
  NodeId AddNode(std::set<std::string> labels,
                 std::map<std::string, Value> properties,
                 std::string truth_type = "");

  /// Adds an edge between existing nodes. Fails with InvalidArgument if an
  /// endpoint does not exist.
  Result<EdgeId> AddEdge(NodeId source, NodeId target,
                         std::set<std::string> labels,
                         std::map<std::string, Value> properties,
                         std::string truth_type = "");

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_edges() const { return edges_.size(); }

  const Node& node(NodeId id) const { return nodes_[id]; }
  Node& mutable_node(NodeId id) { return nodes_[id]; }
  const Edge& edge(EdgeId id) const { return edges_[id]; }
  Edge& mutable_edge(EdgeId id) { return edges_[id]; }

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// All distinct property keys over nodes, sorted (the global set K_n of
  /// §4.1 that defines the binary indicator dimensions).
  std::vector<std::string> NodePropertyKeys() const;

  /// All distinct property keys over edges, sorted (K_e of §4.1).
  std::vector<std::string> EdgePropertyKeys() const;

  /// All distinct node label tokens (sorted-concatenated label sets are NOT
  /// applied here; these are individual labels), sorted.
  std::vector<std::string> NodeLabels() const;
  std::vector<std::string> EdgeLabels() const;

  /// Number of distinct node patterns (Def. 3.5): distinct (label set,
  /// property key set) pairs.
  size_t CountNodePatterns() const;

  /// Number of distinct edge patterns (Def. 3.6): distinct (label set,
  /// property key set, (source labels, target labels)) triples.
  size_t CountEdgePatterns() const;

 private:
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
};

/// A half-open slice of a graph's node/edge index space; the unit of work of
/// the incremental pipeline (one batch Gs_i of Algorithm 1).
struct GraphBatch {
  const PropertyGraph* graph = nullptr;
  size_t node_begin = 0;
  size_t node_end = 0;  // exclusive
  size_t edge_begin = 0;
  size_t edge_end = 0;  // exclusive

  size_t num_nodes() const { return node_end - node_begin; }
  size_t num_edges() const { return edge_end - edge_begin; }
};

/// Structural equality of two graphs: same node/edge sequences with equal
/// ids, labels, properties (typed values) and ground-truth tags. Used by the
/// CSV and binary-store round-trip guarantees.
bool GraphsEqual(const PropertyGraph& a, const PropertyGraph& b);

/// A batch covering the whole graph (the static, non-incremental case).
GraphBatch FullBatch(const PropertyGraph& g);

/// Splits the graph into `num_batches` near-equal contiguous batches over
/// both nodes and edges (the paper's incremental evaluation splits each
/// graph into 10 batches). Returns fewer batches if the graph is tiny.
std::vector<GraphBatch> SplitIntoBatches(const PropertyGraph& g,
                                         size_t num_batches);

}  // namespace pghive

#endif  // PGHIVE_GRAPH_PROPERTY_GRAPH_H_
