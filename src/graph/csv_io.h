// Property graph import/export in a Neo4j-admin-style CSV dialect.
//
// Node file header:  id,labels,truth,<prop1>,<prop2>,...
// Edge file header:  src,tgt,labels,truth,<prop1>,...
// `labels` is a ';'-separated label list; empty cells mean "property
// absent". Values are parsed with the priority rules of
// graph/value.h::ParseValue.

#ifndef PGHIVE_GRAPH_CSV_IO_H_
#define PGHIVE_GRAPH_CSV_IO_H_

#include <string>

#include "common/result.h"
#include "graph/property_graph.h"

namespace pghive {

/// Serializes the nodes of `g` to CSV text.
std::string NodesToCsv(const PropertyGraph& g);

/// Serializes the edges of `g` to CSV text.
std::string EdgesToCsv(const PropertyGraph& g);

/// Parses a graph from node + edge CSV text produced by the exporters (or
/// hand-written in the same dialect). Node ids in the files must be dense
/// 0..n-1 in row order.
Result<PropertyGraph> GraphFromCsv(const std::string& nodes_csv,
                                   const std::string& edges_csv);

/// Convenience: writes both files next to each other (`<prefix>.nodes.csv`,
/// `<prefix>.edges.csv`).
Status SaveGraphCsv(const PropertyGraph& g, const std::string& prefix);

/// Loads a graph previously written by SaveGraphCsv.
Result<PropertyGraph> LoadGraphCsv(const std::string& prefix);

}  // namespace pghive

#endif  // PGHIVE_GRAPH_CSV_IO_H_
