// Symbol interning for the graph core.
//
// Schema-relevant structure lives in a SMALL set of distinct strings and
// string sets: label tokens, property keys, label sets, property-key sets,
// and (label-set, key-set) signatures (Definitions 3.5/3.6 — PG-Schema and
// Wu's property-graph type system make the same observation). The interner
// maps each to a dense uint32 id so the hot paths (feature encoding, LSH
// key computation, pattern counting, type extraction) compare and hash
// single integers instead of re-hashing raw strings, and so each distinct
// set is materialized exactly once.
//
// Layout guarantees the PropertyGraph views rely on:
//   * Interned strings and sets live in std::deques — their addresses are
//     stable under growth, so views handed out earlier never dangle.
//   * Set ids are canonical: one id per distinct content, with the member
//     ids ordered by symbol NAME (lexicographically — exactly the iteration
//     order of the std::set<std::string> they replace), so everything
//     downstream observes the same deterministic order as the pre-interning
//     row storage.
//   * Interning is append-only; ids are assigned in first-seen order.
//
// Thread-safety: interning mutates; concurrent readers of already-interned
// ids are safe (append-only deques), concurrent Intern calls are not. The
// discovery pipeline interns during single-threaded graph construction and
// only reads from its parallel stages.

#ifndef PGHIVE_GRAPH_SYMBOLS_H_
#define PGHIVE_GRAPH_SYMBOLS_H_

#include <cstdint>
#include <deque>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace pghive {

/// Dense id of one interned string (label token or property key).
using SymbolId = uint32_t;
/// Dense id of one canonical interned symbol set.
using SymbolSetId = uint32_t;
using LabelSetId = SymbolSetId;
using KeySetId = SymbolSetId;
/// Dense id of one distinct (label-set, key-set) signature.
using SignatureId = uint32_t;

/// Interns strings to dense uint32 ids (one namespace per table; the graph
/// keeps separate tables for labels and property keys).
class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Returns the id of `s`, interning it on first sight.
  SymbolId Intern(std::string_view s);

  /// Id of `s` if already interned, nullptr otherwise. Never interns.
  const SymbolId* Find(std::string_view s) const;

  const std::string& name(SymbolId id) const { return names_[id]; }
  size_t size() const { return names_.size(); }
  /// Approximate heap footprint (strings + index), for the obs gauges.
  size_t ApproxBytes() const;

 private:
  std::deque<std::string> names_;  // deque: stable addresses under growth
  // Keys view into names_ entries (stable), so each string is stored once.
  std::unordered_map<std::string_view, SymbolId> index_;
};

/// Pool of canonical symbol-id sets: each distinct set content is stored
/// once and identified by a dense SymbolSetId; comparisons collapse to an
/// integer compare. Also owns the ONE materialized std::set<std::string>
/// per distinct set (what LabelSetView / PropertyMapView hand out) and the
/// canonical "&"-joined token used by the feature encoding (§4.1).
class SymbolSetPool {
 public:
  /// Id 0 is always the empty set.
  explicit SymbolSetPool(SymbolTable* symbols);
  SymbolSetPool(const SymbolSetPool&) = delete;
  SymbolSetPool& operator=(const SymbolSetPool&) = delete;

  static constexpr SymbolSetId kEmpty = 0;

  /// Interns the canonical form of `strings` (std::set iteration order IS
  /// the canonical lexicographic order).
  SymbolSetId Intern(const std::set<std::string>& strings);

  /// Same, for names already in sorted order (hot call sites avoid building
  /// a temporary std::set). Behavior is undefined if `sorted` is not
  /// strictly ascending.
  SymbolSetId InternSorted(const std::vector<std::string_view>& sorted);

  /// Member ids, ordered by symbol name (lexicographic).
  const std::vector<SymbolId>& ids(SymbolSetId id) const { return ids_[id]; }

  /// The canonical materialized string set — stable address for the
  /// lifetime of the pool.
  const std::set<std::string>& strings(SymbolSetId id) const {
    return strings_[id];
  }

  /// CanonicalLabelToken of the set ("A&B&C"), computed once per distinct
  /// set. Empty string for the empty set.
  const std::string& token(SymbolSetId id) const { return tokens_[id]; }

  size_t set_size(SymbolSetId id) const { return ids_[id].size(); }
  /// Number of distinct sets interned (including the empty set).
  size_t size() const { return ids_.size(); }
  size_t ApproxBytes() const;

 private:
  SymbolTable* symbols_;  // not owned
  std::deque<std::vector<SymbolId>> ids_;
  std::deque<std::set<std::string>> strings_;
  std::deque<std::string> tokens_;
  // Content hash of the id sequence -> candidate set ids (hash collisions
  // resolved by comparing the sequences).
  std::unordered_map<uint64_t, std::vector<SymbolSetId>> index_;
};

/// Pool of distinct (label-set, key-set) signatures. Two u32 components
/// pack into an exact u64 key, so lookups need no collision handling.
/// Structure-of-arrays: the two components live in parallel vectors, so the
/// hot per-signature scans (shard routing, encoder grouping) that touch only
/// one component stream a dense u32 array instead of striding pairs.
class SignaturePool {
 public:
  SignaturePool() = default;
  SignaturePool(const SignaturePool&) = delete;
  SignaturePool& operator=(const SignaturePool&) = delete;

  SignatureId Intern(SymbolSetId label_set, SymbolSetId key_set);

  SymbolSetId label_set(SignatureId id) const { return label_sets_[id]; }
  SymbolSetId key_set(SignatureId id) const { return key_sets_[id]; }

  /// Packed content identity of a signature — the same u64 the intern
  /// index keys on. Set ids are canonical per distinct content, so this is
  /// stable under re-interning order within one symbol context; it is the
  /// value ShardPlan::ShardOf hashes to place the signature on a shard.
  uint64_t shard_key(SignatureId id) const {
    return (static_cast<uint64_t>(label_sets_[id]) << 32) |
           static_cast<uint64_t>(key_sets_[id]);
  }
  size_t size() const { return label_sets_.size(); }
  size_t ApproxBytes() const;

 private:
  std::vector<SymbolSetId> label_sets_;
  std::vector<SymbolSetId> key_sets_;
  std::unordered_map<uint64_t, SignatureId> index_;
};

/// The complete interning context of one PropertyGraph. Shared (via
/// shared_ptr) between a graph and its copies: interning is append-only, so
/// a copy appending new symbols never disturbs the originals, and views
/// into the pools outlive any individual graph copy. Copies sharing a
/// context must not be mutated from different threads concurrently.
struct GraphSymbols {
  SymbolTable labels;
  SymbolTable keys;
  SymbolSetPool label_sets{&labels};
  SymbolSetPool key_sets{&keys};
  SignaturePool node_signatures;
  SignaturePool edge_signatures;

  size_t ApproxBytes() const;
};

}  // namespace pghive

#endif  // PGHIVE_GRAPH_SYMBOLS_H_
