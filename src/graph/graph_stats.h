// Dataset statistics in the shape of Table 2 of the paper.

#ifndef PGHIVE_GRAPH_GRAPH_STATS_H_
#define PGHIVE_GRAPH_GRAPH_STATS_H_

#include <cstddef>
#include <string>

#include "graph/property_graph.h"

namespace pghive {

/// One row of Table 2: structural statistics of a dataset.
struct GraphStats {
  std::string name;
  size_t nodes = 0;
  size_t edges = 0;
  size_t node_types = 0;    // distinct ground-truth node types
  size_t edge_types = 0;    // distinct ground-truth edge types
  size_t node_labels = 0;   // distinct individual node labels
  size_t edge_labels = 0;   // distinct individual edge labels
  size_t node_patterns = 0; // distinct (labels, property-keys) pairs
  size_t edge_patterns = 0; // distinct (labels, keys, endpoints) triples
};

/// Computes Table-2 statistics for a graph. Type counts come from the
/// ground-truth annotations (empty truth types are ignored).
GraphStats ComputeGraphStats(const PropertyGraph& g, const std::string& name);

/// Renders a GraphStats row as a fixed-width table line; `header` renders
/// the column captions instead.
std::string FormatStatsHeader();
std::string FormatStatsRow(const GraphStats& s);

/// Publishes the interned-core gauges for `g` to the global metrics
/// registry (pghive.graph.*): distinct node/edge signatures, interned
/// symbol and canonical-set counts, and the approximate heap footprint.
/// Point-in-time values — the last published graph wins.
void PublishGraphGauges(const PropertyGraph& g);

}  // namespace pghive

#endif  // PGHIVE_GRAPH_GRAPH_STATS_H_
