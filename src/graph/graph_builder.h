// Fluent construction helpers for small graphs (tests, examples).

#ifndef PGHIVE_GRAPH_GRAPH_BUILDER_H_
#define PGHIVE_GRAPH_GRAPH_BUILDER_H_

#include <initializer_list>
#include <string>
#include <utility>

#include "graph/property_graph.h"

namespace pghive {

/// Builds a PropertyGraph with terse call sites:
///
///   GraphBuilder b;
///   auto alice = b.Node({"Person"}, {{"name", Value::String("Alice")}});
///   auto acme  = b.Node({"Organization"}, {{"name", Value::String("ACME")}});
///   b.Edge(alice, acme, "WORKS_AT", {{"from", Value::Int(2019)}});
///   PropertyGraph g = std::move(b).Build();
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Adds a node with the given labels and properties.
  NodeId Node(std::initializer_list<std::string> labels,
              std::initializer_list<std::pair<std::string, Value>> props = {},
              std::string truth_type = "");

  /// Adds a single-labeled edge. Endpoints must already exist.
  EdgeId Edge(NodeId src, NodeId tgt, const std::string& label,
              std::initializer_list<std::pair<std::string, Value>> props = {},
              std::string truth_type = "");

  /// Adds an unlabeled edge.
  EdgeId UnlabeledEdge(
      NodeId src, NodeId tgt,
      std::initializer_list<std::pair<std::string, Value>> props = {},
      std::string truth_type = "");

  const PropertyGraph& graph() const { return graph_; }

  PropertyGraph Build() && { return std::move(graph_); }

 private:
  PropertyGraph graph_;
};

/// Returns the example graph of Figure 1 of the paper: Person / Organization
/// / Post / Place nodes with KNOWS / LIKES / WORKS_AT / LOCATED_IN edges,
/// including the unlabeled "Alice" node. Used by tests and the quickstart.
PropertyGraph MakeFigure1Graph();

}  // namespace pghive

#endif  // PGHIVE_GRAPH_GRAPH_BUILDER_H_
