#include "graph/value.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace pghive {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kInt:
      return "Int";
    case DataType::kDouble:
      return "Double";
    case DataType::kBool:
      return "Bool";
    case DataType::kDate:
      return "Date";
    case DataType::kTimestamp:
      return "Timestamp";
    case DataType::kString:
      return "String";
  }
  return "?";
}

const char* DataTypeGqlName(DataType t) {
  switch (t) {
    case DataType::kInt:
      return "INT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kBool:
      return "BOOLEAN";
    case DataType::kDate:
      return "DATE";
    case DataType::kTimestamp:
      return "TIMESTAMP";
    case DataType::kString:
      return "STRING";
  }
  return "?";
}

const char* DataTypeXsdName(DataType t) {
  switch (t) {
    case DataType::kInt:
      return "xs:integer";
    case DataType::kDouble:
      return "xs:double";
    case DataType::kBool:
      return "xs:boolean";
    case DataType::kDate:
      return "xs:date";
    case DataType::kTimestamp:
      return "xs:dateTime";
    case DataType::kString:
      return "xs:string";
  }
  return "?";
}

DataType GeneralizeDataType(DataType a, DataType b) {
  if (a == b) return a;
  // Int widens to Double.
  if ((a == DataType::kInt && b == DataType::kDouble) ||
      (a == DataType::kDouble && b == DataType::kInt)) {
    return DataType::kDouble;
  }
  // Date widens to Timestamp (a date is a truncated timestamp lexically).
  if ((a == DataType::kDate && b == DataType::kTimestamp) ||
      (a == DataType::kTimestamp && b == DataType::kDate)) {
    return DataType::kTimestamp;
  }
  return DataType::kString;
}

DataType Value::type() const {
  if (std::holds_alternative<int64_t>(data_)) return DataType::kInt;
  if (std::holds_alternative<double>(data_)) return DataType::kDouble;
  if (std::holds_alternative<bool>(data_)) return DataType::kBool;
  if (std::holds_alternative<Str>(data_)) return std::get<Str>(data_).tag;
  return DataType::kString;
}

std::string Value::ToText() const {
  if (std::holds_alternative<int64_t>(data_)) {
    return std::to_string(std::get<int64_t>(data_));
  }
  if (std::holds_alternative<double>(data_)) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", std::get<double>(data_));
    return buf;
  }
  if (std::holds_alternative<bool>(data_)) {
    return std::get<bool>(data_) ? "true" : "false";
  }
  if (std::holds_alternative<Str>(data_)) return std::get<Str>(data_).text;
  return "";
}

bool Value::operator==(const Value& other) const { return data_ == other.data_; }

namespace {

bool AllDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

// YYYY-MM-DD
bool LooksLikeIsoDate(std::string_view s) {
  return s.size() == 10 && AllDigits(s.substr(0, 4)) && s[4] == '-' &&
         AllDigits(s.substr(5, 2)) && s[7] == '-' && AllDigits(s.substr(8, 2));
}

// YYYY-MM-DDTHH:MM:SS with optional fraction / zone suffix.
bool LooksLikeIsoTimestamp(std::string_view s) {
  if (s.size() < 19) return false;
  if (!LooksLikeIsoDate(s.substr(0, 10))) return false;
  if (s[10] != 'T' && s[10] != ' ') return false;
  return AllDigits(s.substr(11, 2)) && s[13] == ':' &&
         AllDigits(s.substr(14, 2)) && s[16] == ':' &&
         AllDigits(s.substr(17, 2));
}

}  // namespace

DataType InferDataTypeFromText(std::string_view text) {
  if (text.empty()) return DataType::kString;
  // Integer?
  {
    int64_t v = 0;
    auto [ptr, ec] = std::from_chars(text.begin(), text.end(), v);
    if (ec == std::errc() && ptr == text.end()) return DataType::kInt;
  }
  // Float? (from_chars for double: GCC 11+ supports it)
  {
    double v = 0;
    auto [ptr, ec] = std::from_chars(text.begin(), text.end(), v);
    if (ec == std::errc() && ptr == text.end()) return DataType::kDouble;
  }
  if (text == "true" || text == "false" || text == "TRUE" || text == "FALSE") {
    return DataType::kBool;
  }
  if (LooksLikeIsoTimestamp(text)) return DataType::kTimestamp;
  if (LooksLikeIsoDate(text)) return DataType::kDate;
  return DataType::kString;
}

Value ParseValue(std::string_view text) {
  switch (InferDataTypeFromText(text)) {
    case DataType::kInt: {
      int64_t v = 0;
      std::from_chars(text.begin(), text.end(), v);
      return Value::Int(v);
    }
    case DataType::kDouble: {
      double v = 0;
      std::from_chars(text.begin(), text.end(), v);
      return Value::Double(v);
    }
    case DataType::kBool:
      return Value::Bool(text == "true" || text == "TRUE");
    case DataType::kDate:
      return Value::Date(std::string(text));
    case DataType::kTimestamp:
      return Value::Timestamp(std::string(text));
    case DataType::kString:
      break;
  }
  return Value::String(std::string(text));
}

}  // namespace pghive
