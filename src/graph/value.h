// Typed property values for property graphs.
//
// PG-Schema uses GQL's predefined data types; PG-HIVE works with the
// extended set {STRING, BOOLEAN, INT, DOUBLE, TIMESTAMP, DATE} (paper §3).
// Value is the dynamically-typed runtime representation; DataType is the
// schema-level type tag inferred by core/datatype_inference.

#ifndef PGHIVE_GRAPH_VALUE_H_
#define PGHIVE_GRAPH_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

namespace pghive {

/// Schema-level property data types, ordered by inference priority
/// (paper §4.4: integer, float, boolean, date/time, default string).
enum class DataType {
  kInt = 0,
  kDouble,
  kBool,
  kDate,
  kTimestamp,
  kString,
};

const char* DataTypeName(DataType t);

/// GQL-style name used in PG-Schema serialization (INT, DOUBLE, ...).
const char* DataTypeGqlName(DataType t);

/// XSD type name used in XML Schema serialization (xs:integer, ...).
const char* DataTypeXsdName(DataType t);

/// Least upper bound of two datatypes in the inference hierarchy:
/// Int ⊔ Double = Double; everything else incompatible generalizes to String.
DataType GeneralizeDataType(DataType a, DataType b);

/// A dynamically-typed property value. Dates and timestamps are stored as
/// their ISO-8601 string plus the type tag (schema discovery only needs the
/// lexical form).
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  static Value Int(int64_t v) { return Value(v); }
  static Value Double(double v) { return Value(v); }
  static Value Bool(bool v) { return Value(v); }
  static Value String(std::string v) { return Value(std::move(v), DataType::kString); }
  static Value Date(std::string iso) { return Value(std::move(iso), DataType::kDate); }
  static Value Timestamp(std::string iso) {
    return Value(std::move(iso), DataType::kTimestamp);
  }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }

  /// The runtime type of this value; String for null.
  DataType type() const;

  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  bool AsBool() const { return std::get<bool>(data_); }
  const std::string& AsString() const { return std::get<Str>(data_).text; }

  /// Lexical form: what the value would look like in a CSV export.
  std::string ToText() const;

  bool operator==(const Value& other) const;

 private:
  struct Str {
    std::string text;
    DataType tag;
    bool operator==(const Str& o) const {
      return tag == o.tag && text == o.text;
    }
  };

  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(bool v) : data_(v) {}
  Value(std::string s, DataType tag) : data_(Str{std::move(s), tag}) {}

  std::variant<std::monostate, int64_t, double, bool, Str> data_;
};

/// Classifies a lexical form with the paper's priority-based inference:
/// integer, then float, then boolean (true/false), then ISO date
/// (YYYY-MM-DD) / timestamp (YYYY-MM-DDTHH:MM:SS[...]), defaulting to string.
DataType InferDataTypeFromText(std::string_view text);

/// Parses a lexical form into a typed Value using InferDataTypeFromText.
Value ParseValue(std::string_view text);

}  // namespace pghive

#endif  // PGHIVE_GRAPH_VALUE_H_
