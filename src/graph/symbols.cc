#include "graph/symbols.h"

#include "common/hash.h"
#include "common/string_util.h"

namespace pghive {

SymbolId SymbolTable::Intern(std::string_view s) {
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(s);
  index_.emplace(std::string_view(names_.back()), id);
  return id;
}

const SymbolId* SymbolTable::Find(std::string_view s) const {
  auto it = index_.find(s);
  return it == index_.end() ? nullptr : &it->second;
}

size_t SymbolTable::ApproxBytes() const {
  size_t bytes = names_.size() * sizeof(std::string);
  for (const std::string& s : names_) bytes += s.capacity();
  bytes += index_.size() *
           (sizeof(std::string_view) + sizeof(SymbolId) + sizeof(void*));
  return bytes;
}

SymbolSetPool::SymbolSetPool(SymbolTable* symbols) : symbols_(symbols) {
  // Pre-intern the empty set as id 0 so "no labels" / "no properties" never
  // needs a lookup.
  ids_.emplace_back();
  strings_.emplace_back();
  tokens_.emplace_back();
  index_[HashSequence({})].push_back(kEmpty);
}

namespace {

uint64_t HashIdSequence(const std::vector<SymbolId>& ids) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (SymbolId id : ids) h = HashCombine(h, id);
  return h;
}

}  // namespace

SymbolSetId SymbolSetPool::Intern(const std::set<std::string>& strings) {
  std::vector<std::string_view> sorted;
  sorted.reserve(strings.size());
  for (const std::string& s : strings) sorted.push_back(s);
  return InternSorted(sorted);
}

SymbolSetId SymbolSetPool::InternSorted(
    const std::vector<std::string_view>& sorted) {
  // The input is in lexicographic (canonical) order, so the id vector below
  // is the canonical name-ordered form by construction.
  std::vector<SymbolId> ids;
  ids.reserve(sorted.size());
  for (std::string_view s : sorted) ids.push_back(symbols_->Intern(s));

  const uint64_t h = HashIdSequence(ids);
  std::vector<SymbolSetId>& bucket = index_[h];
  for (SymbolSetId candidate : bucket) {
    if (ids_[candidate] == ids) return candidate;
  }
  SymbolSetId id = static_cast<SymbolSetId>(ids_.size());
  std::set<std::string> materialized;
  for (std::string_view s : sorted) materialized.emplace_hint(
      materialized.end(), s);
  tokens_.push_back(CanonicalLabelToken(materialized));
  ids_.push_back(std::move(ids));
  strings_.push_back(std::move(materialized));
  bucket.push_back(id);
  return id;
}

size_t SymbolSetPool::ApproxBytes() const {
  size_t bytes = 0;
  for (const auto& v : ids_) bytes += sizeof(v) + v.capacity() * sizeof(SymbolId);
  for (const auto& s : strings_) {
    bytes += sizeof(s);
    for (const std::string& m : s) bytes += sizeof(m) + m.capacity() + 32;
  }
  for (const std::string& t : tokens_) bytes += sizeof(t) + t.capacity();
  bytes += index_.size() * (sizeof(uint64_t) + sizeof(std::vector<SymbolSetId>) +
                            sizeof(void*));
  return bytes;
}

SignatureId SignaturePool::Intern(SymbolSetId label_set, SymbolSetId key_set) {
  const uint64_t key =
      (static_cast<uint64_t>(label_set) << 32) | static_cast<uint64_t>(key_set);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  SignatureId id = static_cast<SignatureId>(label_sets_.size());
  label_sets_.push_back(label_set);
  key_sets_.push_back(key_set);
  index_.emplace(key, id);
  return id;
}

size_t SignaturePool::ApproxBytes() const {
  return (label_sets_.capacity() + key_sets_.capacity()) * sizeof(SymbolSetId) +
         index_.size() * (sizeof(uint64_t) + sizeof(SignatureId) + sizeof(void*));
}

size_t GraphSymbols::ApproxBytes() const {
  return labels.ApproxBytes() + keys.ApproxBytes() + label_sets.ApproxBytes() +
         key_sets.ApproxBytes() + node_signatures.ApproxBytes() +
         edge_signatures.ApproxBytes();
}

}  // namespace pghive
