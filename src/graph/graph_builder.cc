#include "graph/graph_builder.h"

namespace pghive {

namespace {
std::map<std::string, Value> ToMap(
    std::initializer_list<std::pair<std::string, Value>> props) {
  std::map<std::string, Value> m;
  for (const auto& [k, v] : props) m.emplace(k, v);
  return m;
}
}  // namespace

NodeId GraphBuilder::Node(
    std::initializer_list<std::string> labels,
    std::initializer_list<std::pair<std::string, Value>> props,
    std::string truth_type) {
  return graph_.AddNode(std::set<std::string>(labels), ToMap(props),
                        std::move(truth_type));
}

EdgeId GraphBuilder::Edge(
    NodeId src, NodeId tgt, const std::string& label,
    std::initializer_list<std::pair<std::string, Value>> props,
    std::string truth_type) {
  auto r = graph_.AddEdge(src, tgt, {label}, ToMap(props),
                          std::move(truth_type));
  // Endpoints come from this builder, so this cannot fail.
  return r.value();
}

EdgeId GraphBuilder::UnlabeledEdge(
    NodeId src, NodeId tgt,
    std::initializer_list<std::pair<std::string, Value>> props,
    std::string truth_type) {
  auto r = graph_.AddEdge(src, tgt, {}, ToMap(props), std::move(truth_type));
  return r.value();
}

PropertyGraph MakeFigure1Graph() {
  GraphBuilder b;
  // Node patterns T_Np1..T_Np6 of Example 2.
  NodeId bob = b.Node({"Person"},
                      {{"name", Value::String("Bob")},
                       {"gender", Value::String("m")},
                       {"bday", Value::Date("1988-04-02")}},
                      "Person");
  NodeId john = b.Node({"Person"},
                       {{"name", Value::String("John")},
                        {"gender", Value::String("m")},
                        {"bday", Value::Date("1991-11-23")}},
                       "Person");
  // Alice appears without a label (unlabeled instance of Person).
  NodeId alice = b.Node({},
                        {{"name", Value::String("Alice")},
                         {"gender", Value::String("f")},
                         {"bday", Value::Date("1999-12-19")}},
                        "Person");
  NodeId org = b.Node({"Organization"},
                      {{"name", Value::String("FORTH")},
                       {"url", Value::String("https://www.ics.forth.gr")}},
                      "Organization");
  NodeId post1 = b.Node({"Post"}, {{"imgFile", Value::String("photo.jpg")}},
                        "Post");
  NodeId post2 = b.Node({"Post"}, {{"content", Value::String("hello world")}},
                        "Post");
  NodeId place = b.Node({"Place"}, {{"name", Value::String("Heraklion")}},
                        "Place");

  // Edge patterns T_Ep1..T_Ep6 of Example 2.
  b.Edge(alice, john, "KNOWS", {{"since", Value::Date("2015-06-01")}},
         "KNOWS");
  b.Edge(bob, john, "KNOWS", {}, "KNOWS");
  b.Edge(alice, post1, "LIKES", {}, "LIKES");
  b.Edge(john, post2, "LIKES", {}, "LIKES");
  b.Edge(bob, org, "WORKS_AT", {{"from", Value::Int(2019)}}, "WORKS_AT");
  b.Edge(alice, place, "LOCATED_IN", {}, "LOCATED_IN");
  return std::move(b).Build();
}

}  // namespace pghive
