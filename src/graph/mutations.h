// Mutation vocabulary for streamed graphs: a batch is no longer just an
// append of nodes and edges — it may also retract or rewrite elements that
// arrived in earlier batches.
//
// Semantics (shared by the journal codec, the incremental engine, and the
// serving daemon's wire format):
//
//  * delete_nodes / delete_edges name elements by the id the store assigned
//    at insert time. Deleting an unknown or already-deleted id is an error
//    (InvalidArgument) — mutation streams are exact, not best-effort.
//  * update_nodes / update_edges are modeled as delete-then-reinsert: the
//    old element (by id) is retracted and the new data is appended with a
//    fresh id in the same batch. In-place rewrites are deliberately not
//    supported — they would make a mutation stream unreplayable as an
//    insert-only stream of its net surviving elements, which is the
//    equivalence invariant drift_equivalence_test pins.
//  * Endpoint closure: deleting (or updating) a node requires every edge
//    incident to it to be deleted/updated in the same batch. This mirrors
//    the insert-side closure contract of MakeStreamBatches and is a
//    documented precondition, not a validated one (validation would cost
//    O(graph) per batch).
//
// Within one batch the canonical apply order is: retract edges, retract the
// old data of updated edges, retract nodes, retract the old data of updated
// nodes, then append update_nodes' new data, nodes, update_edges' new data,
// edges. drift::ApplyMutationBatch is the single implementation of this
// order.

#ifndef PGHIVE_GRAPH_MUTATIONS_H_
#define PGHIVE_GRAPH_MUTATIONS_H_

#include <vector>

#include "graph/property_graph.h"

namespace pghive {

/// Replacement payload for one node: retract `id`, append `data` fresh.
struct NodeUpdate {
  NodeId id = 0;
  NodeData data;
};

/// Replacement payload for one edge. `data.source`/`data.target` are the
/// endpoints of the replacement edge (they may differ from the old edge's).
struct EdgeUpdate {
  EdgeId id = 0;
  EdgeData data;
};

/// The retract/rewrite half of a batch.
struct GraphMutations {
  std::vector<NodeId> delete_nodes;
  std::vector<EdgeId> delete_edges;
  std::vector<NodeUpdate> update_nodes;
  std::vector<EdgeUpdate> update_edges;

  bool empty() const {
    return delete_nodes.empty() && delete_edges.empty() &&
           update_nodes.empty() && update_edges.empty();
  }
};

/// One streamed batch: inserts plus mutations. A batch with an empty
/// `mutations` member is exactly the pre-mutation append-only payload, and
/// the journal keeps encoding it in the pre-mutation segment format.
struct MutationBatch {
  std::vector<NodeData> nodes;
  std::vector<EdgeData> edges;
  GraphMutations mutations;
};

}  // namespace pghive

#endif  // PGHIVE_GRAPH_MUTATIONS_H_
