#include "graph/graph_stats.h"

#include <cstdio>
#include <set>

#include "obs/metrics.h"

namespace pghive {

GraphStats ComputeGraphStats(const PropertyGraph& g, const std::string& name) {
  GraphStats s;
  s.name = name;
  s.nodes = g.num_nodes();
  s.edges = g.num_edges();

  std::set<std::string> node_types, edge_types;
  for (const auto& n : g.nodes()) {
    if (!n.truth_type.empty()) node_types.insert(n.truth_type);
  }
  for (const auto& e : g.edges()) {
    if (!e.truth_type.empty()) edge_types.insert(e.truth_type);
  }
  s.node_types = node_types.size();
  s.edge_types = edge_types.size();
  s.node_labels = g.NodeLabels().size();
  s.edge_labels = g.EdgeLabels().size();
  s.node_patterns = g.CountNodePatterns();
  s.edge_patterns = g.CountEdgePatterns();
  return s;
}

std::string FormatStatsHeader() {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-10s %10s %10s %6s %6s %7s %7s %6s %6s",
                "Dataset", "Nodes", "Edges", "NTyp", "ETyp", "NLab", "ELab",
                "NPat", "EPat");
  return buf;
}

void PublishGraphGauges(const PropertyGraph& g) {
  auto& reg = obs::MetricsRegistry::Global();
  const GraphSymbols& sym = g.symbols();
  reg.GetGauge("pghive.graph.node_signatures")
      ->Set(static_cast<int64_t>(g.NodeSignatureGroups().size()));
  reg.GetGauge("pghive.graph.edge_signatures")
      ->Set(static_cast<int64_t>(g.EdgeSignatureGroups().size()));
  reg.GetGauge("pghive.graph.interned_labels")
      ->Set(static_cast<int64_t>(sym.labels.size()));
  reg.GetGauge("pghive.graph.interned_keys")
      ->Set(static_cast<int64_t>(sym.keys.size()));
  reg.GetGauge("pghive.graph.label_sets")
      ->Set(static_cast<int64_t>(sym.label_sets.size()));
  reg.GetGauge("pghive.graph.key_sets")
      ->Set(static_cast<int64_t>(sym.key_sets.size()));
  reg.GetGauge("pghive.graph.approx_bytes")
      ->Set(static_cast<int64_t>(g.ApproxBytes()));
}

std::string FormatStatsRow(const GraphStats& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-10s %10zu %10zu %6zu %6zu %7zu %7zu %6zu %6zu",
                s.name.c_str(), s.nodes, s.edges, s.node_types, s.edge_types,
                s.node_labels, s.edge_labels, s.node_patterns,
                s.edge_patterns);
  return buf;
}

}  // namespace pghive
