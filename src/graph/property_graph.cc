#include "graph/property_graph.h"

#include <algorithm>
#include <unordered_set>

#include "common/hash.h"
#include "common/string_util.h"

namespace pghive {

NodeId PropertyGraph::AddNode(std::set<std::string> labels,
                              std::map<std::string, Value> properties,
                              std::string truth_type) {
  Node n;
  n.id = nodes_.size();
  n.labels = std::move(labels);
  n.properties = std::move(properties);
  n.truth_type = std::move(truth_type);
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

Result<EdgeId> PropertyGraph::AddEdge(NodeId source, NodeId target,
                                      std::set<std::string> labels,
                                      std::map<std::string, Value> properties,
                                      std::string truth_type) {
  if (source >= nodes_.size() || target >= nodes_.size()) {
    return Status::InvalidArgument("edge endpoint does not exist");
  }
  Edge e;
  e.id = edges_.size();
  e.source = source;
  e.target = target;
  e.labels = std::move(labels);
  e.properties = std::move(properties);
  e.truth_type = std::move(truth_type);
  edges_.push_back(std::move(e));
  return edges_.back().id;
}

namespace {

template <typename Elems>
std::vector<std::string> CollectPropertyKeys(const Elems& elems) {
  std::set<std::string> keys;
  for (const auto& e : elems) {
    for (const auto& [k, v] : e.properties) keys.insert(k);
  }
  return {keys.begin(), keys.end()};
}

template <typename Elems>
std::vector<std::string> CollectLabels(const Elems& elems) {
  std::set<std::string> labels;
  for (const auto& e : elems) {
    labels.insert(e.labels.begin(), e.labels.end());
  }
  return {labels.begin(), labels.end()};
}

template <typename Elem>
uint64_t PatternSignature(const Elem& e) {
  uint64_t h = 0x12345;
  for (const auto& l : e.labels) h = HashCombine(h, HashString(l));
  h = HashCombine(h, 0xdeadbeefULL);
  for (const auto& [k, v] : e.properties) h = HashCombine(h, HashString(k));
  return h;
}

}  // namespace

std::vector<std::string> PropertyGraph::NodePropertyKeys() const {
  return CollectPropertyKeys(nodes_);
}

std::vector<std::string> PropertyGraph::EdgePropertyKeys() const {
  return CollectPropertyKeys(edges_);
}

std::vector<std::string> PropertyGraph::NodeLabels() const {
  return CollectLabels(nodes_);
}

std::vector<std::string> PropertyGraph::EdgeLabels() const {
  return CollectLabels(edges_);
}

size_t PropertyGraph::CountNodePatterns() const {
  std::unordered_set<uint64_t> sigs;
  sigs.reserve(nodes_.size());
  for (const auto& n : nodes_) sigs.insert(PatternSignature(n));
  return sigs.size();
}

size_t PropertyGraph::CountEdgePatterns() const {
  std::unordered_set<uint64_t> sigs;
  sigs.reserve(edges_.size());
  for (const auto& e : edges_) {
    uint64_t h = PatternSignature(e);
    // Edge patterns additionally include source/target label sets (Def 3.6).
    for (const auto& l : nodes_[e.source].labels) {
      h = HashCombine(h, HashString(l) ^ 0x1111);
    }
    h = HashCombine(h, 0x2222ULL);
    for (const auto& l : nodes_[e.target].labels) {
      h = HashCombine(h, HashString(l) ^ 0x3333);
    }
    sigs.insert(h);
  }
  return sigs.size();
}

namespace {

template <typename Elem>
bool ElementsEqual(const Elem& a, const Elem& b) {
  return a.id == b.id && a.labels == b.labels &&
         a.properties == b.properties && a.truth_type == b.truth_type;
}

}  // namespace

bool GraphsEqual(const PropertyGraph& a, const PropertyGraph& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges()) {
    return false;
  }
  for (size_t i = 0; i < a.num_nodes(); ++i) {
    if (!ElementsEqual(a.node(i), b.node(i))) return false;
  }
  for (size_t i = 0; i < a.num_edges(); ++i) {
    const Edge& ea = a.edge(i);
    const Edge& eb = b.edge(i);
    if (ea.source != eb.source || ea.target != eb.target ||
        !ElementsEqual(ea, eb)) {
      return false;
    }
  }
  return true;
}

GraphBatch FullBatch(const PropertyGraph& g) {
  return GraphBatch{&g, 0, g.num_nodes(), 0, g.num_edges()};
}

std::vector<GraphBatch> SplitIntoBatches(const PropertyGraph& g,
                                         size_t num_batches) {
  if (num_batches == 0) num_batches = 1;
  size_t nb = std::min(num_batches, std::max<size_t>(g.num_nodes(), 1));
  std::vector<GraphBatch> batches;
  batches.reserve(nb);
  for (size_t i = 0; i < nb; ++i) {
    GraphBatch b;
    b.graph = &g;
    b.node_begin = g.num_nodes() * i / nb;
    b.node_end = g.num_nodes() * (i + 1) / nb;
    b.edge_begin = g.num_edges() * i / nb;
    b.edge_end = g.num_edges() * (i + 1) / nb;
    batches.push_back(b);
  }
  return batches;
}

}  // namespace pghive
