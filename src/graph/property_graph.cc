#include "graph/property_graph.h"

#include <algorithm>
#include <stdexcept>
#include <tuple>

namespace pghive {

const std::set<std::string>& LabelSetView::EmptySet() {
  static const std::set<std::string> empty;
  return empty;
}

size_t PropertyMapView::FindIndex(const std::string& key) const {
  if (keys_ == nullptr) return kNotFound;
  // Key ids are ordered by name; binary search on the names.
  size_t lo = 0, hi = keys_->size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    const std::string& name = table_->name((*keys_)[mid]);
    if (name < key) {
      lo = mid + 1;
    } else if (key < name) {
      hi = mid;
    } else {
      return mid;
    }
  }
  return kNotFound;
}

PropertyMapView::iterator PropertyMapView::find(const std::string& key) const {
  size_t i = FindIndex(key);
  return {table_, keys_, values_, i == kNotFound ? size() : i};
}

const Value& PropertyMapView::at(const std::string& key) const {
  size_t i = FindIndex(key);
  if (i == kNotFound) {
    throw std::out_of_range("PropertyMapView::at: no key '" + key + "'");
  }
  return (*values_)[i];
}

std::map<std::string, Value> PropertyMapView::ToMap() const {
  std::map<std::string, Value> out;
  for (size_t i = 0; i < size(); ++i) {
    out.emplace_hint(out.end(), key_at(i), value_at(i));
  }
  return out;
}

bool operator==(const PropertyMapView& a,
                const std::map<std::string, Value>& b) {
  if (a.size() != b.size()) return false;
  size_t i = 0;
  for (const auto& [k, v] : b) {
    if (a.key_at(i) != k || !(a.value_at(i) == v)) return false;
    ++i;
  }
  return true;
}

bool operator==(const PropertyMapView& a, const PropertyMapView& b) {
  const size_t n = a.size();
  if (n != b.size()) return false;
  // Same table + same canonical key-id vector => identical keys.
  const bool same_keys = a.keys_ == b.keys_ && a.table_ == b.table_;
  for (size_t i = 0; i < n; ++i) {
    if (!same_keys && a.key_at(i) != b.key_at(i)) return false;
    if (!(a.value_at(i) == b.value_at(i))) return false;
  }
  return true;
}

PropertyGraph::PropertyGraph() : symbols_(std::make_shared<GraphSymbols>()) {}

PropertyGraph::PropertyGraph(std::shared_ptr<GraphSymbols> symbols)
    : symbols_(std::move(symbols)) {}

void PropertyGraph::InternNode(Node* n, const std::set<std::string>& labels,
                               const std::map<std::string, Value>& properties) {
  n->label_set = symbols_->label_sets.Intern(labels);
  std::vector<std::string_view> keys;
  keys.reserve(properties.size());
  for (const auto& [k, v] : properties) keys.push_back(k);
  n->key_set = symbols_->key_sets.InternSorted(keys);
  n->signature = symbols_->node_signatures.Intern(n->label_set, n->key_set);

  auto row = std::make_shared<std::vector<Value>>();
  row->reserve(properties.size());
  for (const auto& [k, v] : properties) row->push_back(v);
  n->values_ = std::move(row);

  n->labels = LabelSetView(&symbols_->label_sets.strings(n->label_set));
  n->properties = PropertyMapView(&symbols_->keys,
                                  &symbols_->key_sets.ids(n->key_set),
                                  n->values_.get());
}

void PropertyGraph::InternEdge(Edge* e, const std::set<std::string>& labels,
                               const std::map<std::string, Value>& properties) {
  e->label_set = symbols_->label_sets.Intern(labels);
  std::vector<std::string_view> keys;
  keys.reserve(properties.size());
  for (const auto& [k, v] : properties) keys.push_back(k);
  e->key_set = symbols_->key_sets.InternSorted(keys);
  e->signature = symbols_->edge_signatures.Intern(e->label_set, e->key_set);

  auto row = std::make_shared<std::vector<Value>>();
  row->reserve(properties.size());
  for (const auto& [k, v] : properties) row->push_back(v);
  e->values_ = std::move(row);

  e->labels = LabelSetView(&symbols_->label_sets.strings(e->label_set));
  e->properties = PropertyMapView(&symbols_->keys,
                                  &symbols_->key_sets.ids(e->key_set),
                                  e->values_.get());
}

void PropertyGraph::AppendToIndex(std::vector<SignatureGroup>* groups,
                                  std::vector<int32_t>* pos, SignatureId sig,
                                  uint64_t member) {
  if (sig >= pos->size()) pos->resize(sig + 1, -1);
  int32_t& p = (*pos)[sig];
  if (p < 0) {
    p = static_cast<int32_t>(groups->size());
    groups->push_back(SignatureGroup{sig, {}});
  }
  (*groups)[p].members.push_back(member);
}

NodeId PropertyGraph::AddNode(std::set<std::string> labels,
                              std::map<std::string, Value> properties,
                              std::string truth_type) {
  Node n;
  n.id = nodes_.size();
  n.truth_type = std::move(truth_type);
  InternNode(&n, labels, properties);
  if (!sig_index_dirty_) {
    AppendToIndex(&node_sig_groups_, &node_sig_pos_, n.signature, n.id);
  }
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

Result<EdgeId> PropertyGraph::AddEdge(NodeId source, NodeId target,
                                      std::set<std::string> labels,
                                      std::map<std::string, Value> properties,
                                      std::string truth_type) {
  if (source >= nodes_.size() || target >= nodes_.size()) {
    return Status::InvalidArgument("edge endpoint does not exist");
  }
  Edge e;
  e.id = edges_.size();
  e.source = source;
  e.target = target;
  e.truth_type = std::move(truth_type);
  InternEdge(&e, labels, properties);
  if (!sig_index_dirty_) {
    AppendToIndex(&edge_sig_groups_, &edge_sig_pos_, e.signature, e.id);
  }
  edges_.push_back(std::move(e));
  return edges_.back().id;
}

Result<NodeId> PropertyGraph::AddNodeInterned(LabelSetId label_set,
                                              KeySetId key_set,
                                              std::vector<Value> values,
                                              std::string truth_type) {
  if (label_set >= symbols_->label_sets.size() ||
      key_set >= symbols_->key_sets.size()) {
    return Status::InvalidArgument("interned set id out of range");
  }
  if (values.size() != symbols_->key_sets.set_size(key_set)) {
    return Status::InvalidArgument(
        "value row length does not match the key set");
  }
  Node n;
  n.id = nodes_.size();
  n.truth_type = std::move(truth_type);
  n.label_set = label_set;
  n.key_set = key_set;
  n.signature = symbols_->node_signatures.Intern(label_set, key_set);
  n.values_ = std::make_shared<std::vector<Value>>(std::move(values));
  n.labels = LabelSetView(&symbols_->label_sets.strings(label_set));
  n.properties = PropertyMapView(&symbols_->keys,
                                 &symbols_->key_sets.ids(key_set),
                                 n.values_.get());
  if (!sig_index_dirty_) {
    AppendToIndex(&node_sig_groups_, &node_sig_pos_, n.signature, n.id);
  }
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

Result<EdgeId> PropertyGraph::AddEdgeInterned(NodeId source, NodeId target,
                                              LabelSetId label_set,
                                              KeySetId key_set,
                                              std::vector<Value> values,
                                              std::string truth_type) {
  if (source >= nodes_.size() || target >= nodes_.size()) {
    return Status::InvalidArgument("edge endpoint does not exist");
  }
  if (label_set >= symbols_->label_sets.size() ||
      key_set >= symbols_->key_sets.size()) {
    return Status::InvalidArgument("interned set id out of range");
  }
  if (values.size() != symbols_->key_sets.set_size(key_set)) {
    return Status::InvalidArgument(
        "value row length does not match the key set");
  }
  Edge e;
  e.id = edges_.size();
  e.source = source;
  e.target = target;
  e.truth_type = std::move(truth_type);
  e.label_set = label_set;
  e.key_set = key_set;
  e.signature = symbols_->edge_signatures.Intern(label_set, key_set);
  e.values_ = std::make_shared<std::vector<Value>>(std::move(values));
  e.labels = LabelSetView(&symbols_->label_sets.strings(label_set));
  e.properties = PropertyMapView(&symbols_->keys,
                                 &symbols_->key_sets.ids(key_set),
                                 e.values_.get());
  if (!sig_index_dirty_) {
    AppendToIndex(&edge_sig_groups_, &edge_sig_pos_, e.signature, e.id);
  }
  edges_.push_back(std::move(e));
  return edges_.back().id;
}

void PropertyGraph::SetNodeLabels(NodeId id, const std::set<std::string>& labels) {
  Node& n = nodes_[id];
  n.label_set = symbols_->label_sets.Intern(labels);
  n.signature = symbols_->node_signatures.Intern(n.label_set, n.key_set);
  n.labels = LabelSetView(&symbols_->label_sets.strings(n.label_set));
  sig_index_dirty_ = true;
}

void PropertyGraph::SetEdgeLabels(EdgeId id, const std::set<std::string>& labels) {
  Edge& e = edges_[id];
  e.label_set = symbols_->label_sets.Intern(labels);
  e.signature = symbols_->edge_signatures.Intern(e.label_set, e.key_set);
  e.labels = LabelSetView(&symbols_->label_sets.strings(e.label_set));
  sig_index_dirty_ = true;
}

void PropertyGraph::SetNodeProperties(NodeId id,
                                      const std::map<std::string, Value>& props) {
  Node& n = nodes_[id];
  std::vector<std::string_view> keys;
  keys.reserve(props.size());
  for (const auto& [k, v] : props) keys.push_back(k);
  n.key_set = symbols_->key_sets.InternSorted(keys);
  n.signature = symbols_->node_signatures.Intern(n.label_set, n.key_set);
  auto row = std::make_shared<std::vector<Value>>();
  row->reserve(props.size());
  for (const auto& [k, v] : props) row->push_back(v);
  n.values_ = std::move(row);
  n.properties = PropertyMapView(&symbols_->keys,
                                 &symbols_->key_sets.ids(n.key_set),
                                 n.values_.get());
  sig_index_dirty_ = true;
}

void PropertyGraph::SetEdgeProperties(EdgeId id,
                                      const std::map<std::string, Value>& props) {
  Edge& e = edges_[id];
  std::vector<std::string_view> keys;
  keys.reserve(props.size());
  for (const auto& [k, v] : props) keys.push_back(k);
  e.key_set = symbols_->key_sets.InternSorted(keys);
  e.signature = symbols_->edge_signatures.Intern(e.label_set, e.key_set);
  auto row = std::make_shared<std::vector<Value>>();
  row->reserve(props.size());
  for (const auto& [k, v] : props) row->push_back(v);
  e.values_ = std::move(row);
  e.properties = PropertyMapView(&symbols_->keys,
                                 &symbols_->key_sets.ids(e.key_set),
                                 e.values_.get());
  sig_index_dirty_ = true;
}

void PropertyGraph::RebuildSignatureIndex() const {
  node_sig_groups_.clear();
  edge_sig_groups_.clear();
  node_sig_pos_.assign(symbols_->node_signatures.size(), -1);
  edge_sig_pos_.assign(symbols_->edge_signatures.size(), -1);
  for (const Node& n : nodes_) {
    AppendToIndex(&node_sig_groups_, &node_sig_pos_, n.signature, n.id);
  }
  for (const Edge& e : edges_) {
    AppendToIndex(&edge_sig_groups_, &edge_sig_pos_, e.signature, e.id);
  }
  sig_index_dirty_ = false;
}

const std::vector<PropertyGraph::SignatureGroup>&
PropertyGraph::NodeSignatureGroups() const {
  if (sig_index_dirty_) RebuildSignatureIndex();
  return node_sig_groups_;
}

const std::vector<PropertyGraph::SignatureGroup>&
PropertyGraph::EdgeSignatureGroups() const {
  if (sig_index_dirty_) RebuildSignatureIndex();
  return edge_sig_groups_;
}

namespace {

// Collects the union of pooled sets over the distinct set ids present,
// visiting each distinct set once.
template <typename Elems, typename GetSetId>
std::vector<std::string> CollectDistinct(const Elems& elems,
                                         const SymbolSetPool& pool,
                                         GetSetId get) {
  std::vector<char> seen(pool.size(), 0);
  std::set<std::string> out;
  for (const auto& e : elems) {
    SymbolSetId id = get(e);
    if (seen[id]) continue;
    seen[id] = 1;
    const std::set<std::string>& s = pool.strings(id);
    out.insert(s.begin(), s.end());
  }
  return {out.begin(), out.end()};
}

}  // namespace

std::vector<std::string> PropertyGraph::NodePropertyKeys() const {
  return CollectDistinct(nodes_, symbols_->key_sets,
                         [](const Node& n) { return n.key_set; });
}

std::vector<std::string> PropertyGraph::EdgePropertyKeys() const {
  return CollectDistinct(edges_, symbols_->key_sets,
                         [](const Edge& e) { return e.key_set; });
}

std::vector<std::string> PropertyGraph::NodeLabels() const {
  return CollectDistinct(nodes_, symbols_->label_sets,
                         [](const Node& n) { return n.label_set; });
}

std::vector<std::string> PropertyGraph::EdgeLabels() const {
  return CollectDistinct(edges_, symbols_->label_sets,
                         [](const Edge& e) { return e.label_set; });
}

size_t PropertyGraph::CountNodePatterns() const {
  return NodeSignatureGroups().size();
}

size_t PropertyGraph::CountEdgePatterns() const {
  // Edge patterns additionally include source/target label sets (Def 3.6);
  // interned ids make the count exact (no hashing).
  std::set<std::tuple<SignatureId, LabelSetId, LabelSetId>> distinct;
  for (const Edge& e : edges_) {
    distinct.emplace(e.signature, nodes_[e.source].label_set,
                     nodes_[e.target].label_set);
  }
  return distinct.size();
}

size_t PropertyGraph::ApproxBytes() const {
  size_t bytes = symbols_->ApproxBytes();
  bytes += nodes_.capacity() * sizeof(Node);
  bytes += edges_.capacity() * sizeof(Edge);
  for (const Node& n : nodes_) {
    bytes += n.truth_type.capacity();
    if (n.values_) bytes += n.values_->capacity() * sizeof(Value);
  }
  for (const Edge& e : edges_) {
    bytes += e.truth_type.capacity();
    if (e.values_) bytes += e.values_->capacity() * sizeof(Value);
  }
  return bytes;
}

NodeData ToData(const Node& n) {
  NodeData d;
  d.id = n.id;
  d.labels = n.labels;
  d.properties = n.properties.ToMap();
  d.truth_type = n.truth_type;
  return d;
}

EdgeData ToData(const Edge& e) {
  EdgeData d;
  d.id = e.id;
  d.source = e.source;
  d.target = e.target;
  d.labels = e.labels;
  d.properties = e.properties.ToMap();
  d.truth_type = e.truth_type;
  return d;
}

namespace {

// Shared-context fast path: identical interned ids => identical label/key
// sets; only rows and truth tags need comparing.
bool SameContext(const PropertyGraph& a, const PropertyGraph& b) {
  return &a.symbols() == &b.symbols();
}

template <typename Elem>
bool ElementsEqual(const Elem& a, const Elem& b, bool same_context) {
  if (a.id != b.id || a.truth_type != b.truth_type) return false;
  if (same_context) {
    if (a.label_set != b.label_set || a.key_set != b.key_set) return false;
  } else {
    if (!(a.labels == b.labels)) return false;
  }
  return a.properties == b.properties;
}

}  // namespace

bool GraphsEqual(const PropertyGraph& a, const PropertyGraph& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges()) {
    return false;
  }
  const bool same = SameContext(a, b);
  for (size_t i = 0; i < a.num_nodes(); ++i) {
    if (!ElementsEqual(a.node(i), b.node(i), same)) return false;
  }
  for (size_t i = 0; i < a.num_edges(); ++i) {
    const Edge& ea = a.edge(i);
    const Edge& eb = b.edge(i);
    if (ea.source != eb.source || ea.target != eb.target ||
        !ElementsEqual(ea, eb, same)) {
      return false;
    }
  }
  return true;
}

GraphBatch FullBatch(const PropertyGraph& g) {
  return GraphBatch{&g, 0, g.num_nodes(), 0, g.num_edges()};
}

std::vector<GraphBatch> SplitIntoBatches(const PropertyGraph& g,
                                         size_t num_batches) {
  if (num_batches == 0) num_batches = 1;
  size_t nb = std::min(num_batches, std::max<size_t>(g.num_nodes(), 1));
  std::vector<GraphBatch> batches;
  batches.reserve(nb);
  for (size_t i = 0; i < nb; ++i) {
    GraphBatch b;
    b.graph = &g;
    b.node_begin = g.num_nodes() * i / nb;
    b.node_end = g.num_nodes() * (i + 1) / nb;
    b.edge_begin = g.num_edges() * i / nb;
    b.edge_end = g.num_edges() * (i + 1) / nb;
    batches.push_back(b);
  }
  return batches;
}

}  // namespace pghive
