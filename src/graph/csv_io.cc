#include "graph/csv_io.h"

#include <algorithm>

#include "common/csv.h"
#include "common/string_util.h"

namespace pghive {

namespace {

std::string LabelsCell(const std::set<std::string>& labels) {
  return Join(labels, ";");
}

std::set<std::string> ParseLabelsCell(const std::string& cell) {
  std::set<std::string> labels;
  if (cell.empty()) return labels;
  for (auto& part : Split(cell, ';')) {
    if (!part.empty()) labels.insert(part);
  }
  return labels;
}

}  // namespace

std::string NodesToCsv(const PropertyGraph& g) {
  std::vector<std::string> keys = g.NodePropertyKeys();
  std::string out;
  std::vector<std::string> header = {"id", "labels", "truth"};
  header.insert(header.end(), keys.begin(), keys.end());
  out += FormatCsvRow(header);
  for (const auto& n : g.nodes()) {
    std::vector<std::string> row = {std::to_string(n.id),
                                    LabelsCell(n.labels), n.truth_type};
    for (const auto& k : keys) {
      auto it = n.properties.find(k);
      row.push_back(it == n.properties.end() ? "" : it->second.ToText());
    }
    out += FormatCsvRow(row);
  }
  return out;
}

std::string EdgesToCsv(const PropertyGraph& g) {
  std::vector<std::string> keys = g.EdgePropertyKeys();
  std::string out;
  std::vector<std::string> header = {"src", "tgt", "labels", "truth"};
  header.insert(header.end(), keys.begin(), keys.end());
  out += FormatCsvRow(header);
  for (const auto& e : g.edges()) {
    std::vector<std::string> row = {std::to_string(e.source),
                                    std::to_string(e.target),
                                    LabelsCell(e.labels), e.truth_type};
    for (const auto& k : keys) {
      auto it = e.properties.find(k);
      row.push_back(it == e.properties.end() ? "" : it->second.ToText());
    }
    out += FormatCsvRow(row);
  }
  return out;
}

Result<PropertyGraph> GraphFromCsv(const std::string& nodes_csv,
                                   const std::string& edges_csv) {
  PGHIVE_ASSIGN_OR_RETURN(auto node_rows, ParseCsv(nodes_csv));
  PGHIVE_ASSIGN_OR_RETURN(auto edge_rows, ParseCsv(edges_csv));
  if (node_rows.empty() || edge_rows.empty()) {
    return Status::ParseError("missing CSV header row");
  }

  PropertyGraph g;
  const auto& nheader = node_rows[0];
  if (nheader.size() < 3 || nheader[0] != "id" || nheader[1] != "labels" ||
      nheader[2] != "truth") {
    return Status::ParseError("bad node CSV header");
  }
  for (size_t r = 1; r < node_rows.size(); ++r) {
    const auto& row = node_rows[r];
    if (row.size() != nheader.size()) {
      return Status::ParseError("node row " + std::to_string(r) +
                                " has wrong field count");
    }
    std::map<std::string, Value> props;
    for (size_t c = 3; c < row.size(); ++c) {
      if (!row[c].empty()) props.emplace(nheader[c], ParseValue(row[c]));
    }
    NodeId id = g.AddNode(ParseLabelsCell(row[1]), std::move(props), row[2]);
    if (std::to_string(id) != row[0]) {
      return Status::ParseError("node ids must be dense 0..n-1 in row order");
    }
  }

  const auto& eheader = edge_rows[0];
  if (eheader.size() < 4 || eheader[0] != "src" || eheader[1] != "tgt" ||
      eheader[2] != "labels" || eheader[3] != "truth") {
    return Status::ParseError("bad edge CSV header");
  }
  for (size_t r = 1; r < edge_rows.size(); ++r) {
    const auto& row = edge_rows[r];
    if (row.size() != eheader.size()) {
      return Status::ParseError("edge row " + std::to_string(r) +
                                " has wrong field count");
    }
    std::map<std::string, Value> props;
    for (size_t c = 4; c < row.size(); ++c) {
      if (!row[c].empty()) props.emplace(eheader[c], ParseValue(row[c]));
    }
    NodeId src = 0, tgt = 0;
    try {
      src = std::stoull(row[0]);
      tgt = std::stoull(row[1]);
    } catch (...) {
      return Status::ParseError("bad edge endpoint id in row " +
                                std::to_string(r));
    }
    auto added = g.AddEdge(src, tgt, ParseLabelsCell(row[2]), std::move(props),
                           row[3]);
    if (!added.ok()) return added.status();
  }
  return g;
}

Status SaveGraphCsv(const PropertyGraph& g, const std::string& prefix) {
  PGHIVE_RETURN_NOT_OK(WriteFile(prefix + ".nodes.csv", NodesToCsv(g)));
  return WriteFile(prefix + ".edges.csv", EdgesToCsv(g));
}

Result<PropertyGraph> LoadGraphCsv(const std::string& prefix) {
  PGHIVE_ASSIGN_OR_RETURN(auto nodes, ReadFile(prefix + ".nodes.csv"));
  PGHIVE_ASSIGN_OR_RETURN(auto edges, ReadFile(prefix + ".edges.csv"));
  return GraphFromCsv(nodes, edges);
}

}  // namespace pghive
