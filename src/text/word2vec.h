// Skip-gram Word2Vec with negative sampling (Mikolov et al., 2013).
//
// PG-HIVE trains a Word2Vec model on the label "corpus" of the dataset
// (paper §4.1): each node contributes its label set as a sentence, each edge
// contributes the sentence (source-token, edge-token, target-token), so
// labels that appear in similar structural contexts obtain nearby vectors.
// Vectors are L2-normalized after training so embedding distances are
// bounded and comparable with the binary property block.

#ifndef PGHIVE_TEXT_WORD2VEC_H_
#define PGHIVE_TEXT_WORD2VEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "text/vocabulary.h"

namespace pghive {

struct Word2VecOptions {
  /// Embedding dimensionality d (paper uses a fixed small d; default 16).
  int dimension = 16;
  /// Skip-gram context window radius.
  int window = 4;
  /// Negative samples per positive pair.
  int negative_samples = 5;
  /// Initial learning rate, decayed linearly to 1/10 of this.
  double learning_rate = 0.05;
  /// Full passes over the corpus.
  int epochs = 10;
  /// Seed for initialization and sampling.
  uint64_t seed = 42;
};

/// Trained skip-gram embeddings over a token vocabulary.
class Word2Vec {
 public:
  explicit Word2Vec(Word2VecOptions options = {});

  /// Trains on sentences (token sequences). Fails with InvalidArgument for a
  /// non-positive dimension or an empty corpus.
  Status Train(const std::vector<std::vector<std::string>>& sentences);

  /// True once Train succeeded.
  bool trained() const { return trained_; }

  int dimension() const { return options_.dimension; }
  const Vocabulary& vocabulary() const { return vocab_; }

  /// The (L2-normalized) vector for a token; zero vector for unknown tokens.
  std::vector<float> Embed(const std::string& token) const;

  /// Cosine similarity of two tokens; 0 when either is unknown.
  double Similarity(const std::string& a, const std::string& b) const;

 private:
  void TrainPair(int32_t center, int32_t context, double lr, Rng* rng);
  int32_t SampleNegative(Rng* rng) const;

  Word2VecOptions options_;
  Vocabulary vocab_;
  std::vector<float> input_;   // vocab x dim (the embeddings)
  std::vector<float> output_;  // vocab x dim (context weights)
  std::vector<int32_t> negative_table_;
  bool trained_ = false;
};

}  // namespace pghive

#endif  // PGHIVE_TEXT_WORD2VEC_H_
