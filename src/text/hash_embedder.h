// Deterministic hash-projection embeddings.
//
// A training-free alternative to Word2Vec: each token's vector is a unit
// vector on the d-sphere derived deterministically from the token's hash.
// Distinct tokens get (near-)orthogonal vectors in expectation, identical
// tokens get identical vectors — exactly the property the PG-HIVE encoding
// needs when no semantic structure is available or training is undesirable.

#ifndef PGHIVE_TEXT_HASH_EMBEDDER_H_
#define PGHIVE_TEXT_HASH_EMBEDDER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pghive {

class HashEmbedder {
 public:
  /// `dimension` must be positive; `seed` varies the projection family.
  explicit HashEmbedder(int dimension, uint64_t seed = 0);

  int dimension() const { return dimension_; }

  /// Unit-norm vector for `token`; deterministic in (token, seed, dim).
  std::vector<float> Embed(const std::string& token) const;

 private:
  int dimension_;
  uint64_t seed_;
};

}  // namespace pghive

#endif  // PGHIVE_TEXT_HASH_EMBEDDER_H_
