#include "text/vocabulary.h"

namespace pghive {

int32_t Vocabulary::Add(std::string_view token) {
  auto it = index_.find(std::string(token));
  if (it != index_.end()) {
    ++counts_[it->second];
    ++total_count_;
    return it->second;
  }
  int32_t id = static_cast<int32_t>(tokens_.size());
  index_.emplace(std::string(token), id);
  tokens_.emplace_back(token);
  counts_.push_back(1);
  ++total_count_;
  return id;
}

int32_t Vocabulary::Lookup(std::string_view token) const {
  auto it = index_.find(std::string(token));
  return it == index_.end() ? kUnknown : it->second;
}

}  // namespace pghive
