#include "text/label_embedder.h"

#include "common/string_util.h"
#include "graph/property_graph.h"

namespace pghive {

LabelEmbedder::LabelEmbedder(LabelEmbedderOptions options)
    : options_(options), hash_(options.dimension, options.seed) {
  if (options_.backend == EmbeddingBackend::kWord2Vec) {
    Word2VecOptions w2v = options_.word2vec;
    w2v.dimension = options_.dimension;
    w2v.seed = options_.seed;
    word2vec_ = std::make_unique<Word2Vec>(w2v);
  }
}

Status LabelEmbedder::Train(
    const std::vector<std::vector<std::string>>& sentences) {
  if (options_.backend == EmbeddingBackend::kHash) return Status::OK();
  if (sentences.empty()) {
    // Fully unlabeled graph: nothing to train on; hash vectors are never
    // queried for real tokens anyway, but keep the embedder functional.
    use_hash_fallback_ = true;
    return Status::OK();
  }
  return word2vec_->Train(sentences);
}

std::vector<float> LabelEmbedder::EmbedLabels(
    const std::set<std::string>& labels) const {
  if (labels.empty()) return std::vector<float>(options_.dimension, 0.0f);
  return EmbedToken(CanonicalLabelToken(labels));
}

std::vector<float> LabelEmbedder::EmbedToken(const std::string& token) const {
  if (token.empty()) return std::vector<float>(options_.dimension, 0.0f);
  if (options_.backend == EmbeddingBackend::kHash || use_hash_fallback_) {
    return hash_.Embed(token);
  }
  if (word2vec_->trained() &&
      word2vec_->vocabulary().Lookup(token) != Vocabulary::kUnknown) {
    return word2vec_->Embed(token);
  }
  // Unknown token (e.g. a label combination first seen in a later batch):
  // fall back to the deterministic hash vector so the embedding stays
  // consistent across batches.
  return hash_.Embed(token);
}

std::vector<std::vector<std::string>> BuildLabelCorpus(
    const PropertyGraph& g) {
  std::vector<std::vector<std::string>> corpus;
  corpus.reserve(g.num_nodes() + g.num_edges());
  for (const auto& n : g.nodes()) {
    if (n.labels.empty()) continue;
    corpus.push_back({CanonicalLabelToken(n.labels)});
  }
  for (const auto& e : g.edges()) {
    std::vector<std::string> sent;
    const auto& src = g.node(e.source);
    const auto& tgt = g.node(e.target);
    if (!src.labels.empty()) sent.push_back(CanonicalLabelToken(src.labels));
    if (!e.labels.empty()) sent.push_back(CanonicalLabelToken(e.labels));
    if (!tgt.labels.empty()) sent.push_back(CanonicalLabelToken(tgt.labels));
    if (sent.size() >= 2) corpus.push_back(std::move(sent));
  }
  return corpus;
}

}  // namespace pghive
