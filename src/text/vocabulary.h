// Token <-> id mapping with frequency counts, shared by the embedders.

#ifndef PGHIVE_TEXT_VOCABULARY_H_
#define PGHIVE_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace pghive {

/// Dense token ids in insertion order, with occurrence counts (used for the
/// negative-sampling distribution in word2vec).
class Vocabulary {
 public:
  static constexpr int32_t kUnknown = -1;

  /// Registers (or re-counts) a token; returns its id.
  int32_t Add(std::string_view token);

  /// Id of a token, or kUnknown.
  int32_t Lookup(std::string_view token) const;

  const std::string& token(int32_t id) const { return tokens_[id]; }
  uint64_t count(int32_t id) const { return counts_[id]; }

  size_t size() const { return tokens_.size(); }
  uint64_t total_count() const { return total_count_; }

 private:
  std::unordered_map<std::string, int32_t> index_;
  std::vector<std::string> tokens_;
  std::vector<uint64_t> counts_;
  uint64_t total_count_ = 0;
};

}  // namespace pghive

#endif  // PGHIVE_TEXT_VOCABULARY_H_
