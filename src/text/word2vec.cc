#include "text/word2vec.h"

#include <algorithm>
#include <cmath>

namespace pghive {

namespace {

// Fast logistic; input clamped to [-6, 6] as in the original word2vec code.
inline double Sigmoid(double x) {
  if (x > 6.0) return 1.0;
  if (x < -6.0) return 0.0;
  return 1.0 / (1.0 + std::exp(-x));
}

constexpr size_t kNegativeTableSize = 1 << 16;

}  // namespace

Word2Vec::Word2Vec(Word2VecOptions options) : options_(options) {}

Status Word2Vec::Train(
    const std::vector<std::vector<std::string>>& sentences) {
  if (options_.dimension <= 0) {
    return Status::InvalidArgument("word2vec dimension must be positive");
  }
  if (sentences.empty()) {
    return Status::InvalidArgument("word2vec corpus is empty");
  }

  // Build vocabulary and the id-encoded corpus.
  std::vector<std::vector<int32_t>> corpus;
  corpus.reserve(sentences.size());
  for (const auto& sent : sentences) {
    std::vector<int32_t> ids;
    ids.reserve(sent.size());
    for (const auto& tok : sent) ids.push_back(vocab_.Add(tok));
    corpus.push_back(std::move(ids));
  }
  if (vocab_.size() == 0) {
    return Status::InvalidArgument("word2vec corpus has no tokens");
  }

  const int dim = options_.dimension;
  Rng rng(options_.seed);

  // Initialize embeddings uniformly in [-0.5/d, 0.5/d]; context weights zero
  // (the original word2vec initialization).
  input_.assign(vocab_.size() * dim, 0.0f);
  output_.assign(vocab_.size() * dim, 0.0f);
  for (auto& w : input_) {
    w = static_cast<float>((rng.UniformDouble() - 0.5) / dim);
  }

  // Unigram^(3/4) negative-sampling table.
  negative_table_.resize(kNegativeTableSize);
  double norm = 0.0;
  for (size_t i = 0; i < vocab_.size(); ++i) {
    norm += std::pow(static_cast<double>(vocab_.count(static_cast<int32_t>(i))),
                     0.75);
  }
  {
    size_t i = 0;
    double cum = std::pow(static_cast<double>(vocab_.count(0)), 0.75) / norm;
    for (size_t t = 0; t < kNegativeTableSize; ++t) {
      negative_table_[t] = static_cast<int32_t>(i);
      double frac = static_cast<double>(t + 1) / kNegativeTableSize;
      while (frac > cum && i + 1 < vocab_.size()) {
        ++i;
        cum += std::pow(
            static_cast<double>(vocab_.count(static_cast<int32_t>(i))), 0.75) /
               norm;
      }
    }
  }

  // SGD over (center, context) pairs.
  const double lr0 = options_.learning_rate;
  const double lr_min = lr0 * 0.1;
  size_t total_steps =
      std::max<size_t>(1, static_cast<size_t>(options_.epochs) * corpus.size());
  size_t step = 0;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    for (const auto& sent : corpus) {
      double progress = static_cast<double>(step++) / total_steps;
      double lr = std::max(lr_min, lr0 * (1.0 - progress));
      for (size_t i = 0; i < sent.size(); ++i) {
        int lo = static_cast<int>(i) - options_.window;
        int hi = static_cast<int>(i) + options_.window;
        for (int j = std::max(lo, 0);
             j <= std::min(hi, static_cast<int>(sent.size()) - 1); ++j) {
          if (j == static_cast<int>(i)) continue;
          TrainPair(sent[i], sent[j], lr, &rng);
        }
      }
    }
  }

  // L2-normalize the embedding rows.
  for (size_t v = 0; v < vocab_.size(); ++v) {
    float* row = &input_[v * dim];
    double sq = 0.0;
    for (int k = 0; k < dim; ++k) sq += row[k] * row[k];
    if (sq > 1e-12) {
      float inv = static_cast<float>(1.0 / std::sqrt(sq));
      for (int k = 0; k < dim; ++k) row[k] *= inv;
    }
  }
  trained_ = true;
  return Status::OK();
}

void Word2Vec::TrainPair(int32_t center, int32_t context, double lr,
                         Rng* rng) {
  const int dim = options_.dimension;
  float* v_in = &input_[static_cast<size_t>(center) * dim];
  std::vector<float> grad_in(dim, 0.0f);

  // One positive target plus `negative_samples` negatives.
  for (int s = 0; s < options_.negative_samples + 1; ++s) {
    int32_t target;
    double label;
    if (s == 0) {
      target = context;
      label = 1.0;
    } else {
      target = SampleNegative(rng);
      if (target == context) continue;
      label = 0.0;
    }
    float* v_out = &output_[static_cast<size_t>(target) * dim];
    double dot = 0.0;
    for (int k = 0; k < dim; ++k) dot += v_in[k] * v_out[k];
    double g = (label - Sigmoid(dot)) * lr;
    for (int k = 0; k < dim; ++k) {
      grad_in[k] += static_cast<float>(g) * v_out[k];
      v_out[k] += static_cast<float>(g) * v_in[k];
    }
  }
  for (int k = 0; k < dim; ++k) v_in[k] += grad_in[k];
}

int32_t Word2Vec::SampleNegative(Rng* rng) const {
  return negative_table_[rng->UniformU32(kNegativeTableSize)];
}

std::vector<float> Word2Vec::Embed(const std::string& token) const {
  std::vector<float> v(options_.dimension, 0.0f);
  int32_t id = vocab_.Lookup(token);
  if (id == Vocabulary::kUnknown || !trained_) return v;
  const float* row = &input_[static_cast<size_t>(id) * options_.dimension];
  std::copy(row, row + options_.dimension, v.begin());
  return v;
}

double Word2Vec::Similarity(const std::string& a, const std::string& b) const {
  auto va = Embed(a);
  auto vb = Embed(b);
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t k = 0; k < va.size(); ++k) {
    dot += va[k] * vb[k];
    na += va[k] * va[k];
    nb += vb[k] * vb[k];
  }
  if (na < 1e-12 || nb < 1e-12) return 0.0;
  return dot / std::sqrt(na * nb);
}

}  // namespace pghive
