// Label-set embedding facade (paper §4.1).
//
// Converts a node's or edge's label set into a fixed-dimension vector:
//   - absent labels -> the zero vector,
//   - multiple labels -> sorted alphabetically and concatenated into one
//     token, so identical label sets share an embedding and different sets
//     (even overlapping ones) get distinct embeddings,
//   - the per-token vector comes from either a Word2Vec model trained on the
//     label corpus of the dataset or a deterministic hash projection.

#ifndef PGHIVE_TEXT_LABEL_EMBEDDER_H_
#define PGHIVE_TEXT_LABEL_EMBEDDER_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "text/hash_embedder.h"
#include "text/word2vec.h"

namespace pghive {

enum class EmbeddingBackend {
  /// Skip-gram Word2Vec trained on the observed label sentences.
  kWord2Vec,
  /// Deterministic hash projection; no training pass.
  kHash,
};

struct LabelEmbedderOptions {
  EmbeddingBackend backend = EmbeddingBackend::kWord2Vec;
  /// Embedding width d. Label separation relies on distinct tokens mapping
  /// to near-orthogonal unit vectors; cosine spread between random vectors
  /// shrinks as 1/sqrt(d), so label-rich datasets (IYP has 86 label
  /// combinations) need d large enough that no two tokens land close.
  int dimension = 24;
  uint64_t seed = 42;
  Word2VecOptions word2vec;  // dimension/seed overridden by the above
};

/// Embeds canonical label tokens. Train() must be called before Embed() when
/// the backend is Word2Vec; the hash backend needs no training.
class LabelEmbedder {
 public:
  explicit LabelEmbedder(LabelEmbedderOptions options = {});

  /// Trains the Word2Vec backend on label sentences (one sentence per node
  /// label set, one (src, edge, tgt) sentence per edge). A no-op for the
  /// hash backend. An empty corpus silently degrades to hash embeddings so
  /// fully-unlabeled graphs still work.
  Status Train(const std::vector<std::vector<std::string>>& sentences);

  int dimension() const { return options_.dimension; }

  /// Embedding of a label set; zero vector when `labels` is empty.
  std::vector<float> EmbedLabels(const std::set<std::string>& labels) const;

  /// Embedding of a pre-canonicalized token ("A&B" form); zero for "".
  std::vector<float> EmbedToken(const std::string& token) const;

 private:
  LabelEmbedderOptions options_;
  std::unique_ptr<Word2Vec> word2vec_;
  HashEmbedder hash_;
  bool use_hash_fallback_ = false;
};

/// Builds the label corpus of a graph: node label-set tokens and edge
/// (source-token, edge-token, target-token) sentences, as described in
/// §4.1. Unlabeled elements contribute nothing.
class PropertyGraph;  // forward decl (graph/property_graph.h)
std::vector<std::vector<std::string>> BuildLabelCorpus(
    const PropertyGraph& g);

}  // namespace pghive

#endif  // PGHIVE_TEXT_LABEL_EMBEDDER_H_
