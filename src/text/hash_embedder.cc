#include "text/hash_embedder.h"

#include <cassert>
#include <cmath>

#include "common/hash.h"
#include "common/random.h"

namespace pghive {

HashEmbedder::HashEmbedder(int dimension, uint64_t seed)
    : dimension_(dimension), seed_(seed) {
  assert(dimension > 0);
}

std::vector<float> HashEmbedder::Embed(const std::string& token) const {
  // Gaussian entries seeded by the token hash, then normalized: a uniform
  // point on the unit sphere, deterministic per token.
  Rng rng(HashString(token) ^ Mix64(seed_), 0x5eed);
  std::vector<float> v(dimension_);
  double sq = 0.0;
  for (int k = 0; k < dimension_; ++k) {
    double x = rng.Normal();
    v[k] = static_cast<float>(x);
    sq += x * x;
  }
  if (sq > 1e-12) {
    float inv = static_cast<float>(1.0 / std::sqrt(sq));
    for (auto& x : v) x *= inv;
  }
  return v;
}

}  // namespace pghive
