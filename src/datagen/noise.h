// Noise injection (paper §5, "Noise injection").
//
// The evaluation stresses schema discovery by (a) randomly removing
// 0-40% of node/edge properties and (b) limiting label availability to
// 100% / 50% / 0% (labels removed from a random subset of elements).
// Ground-truth annotations are left untouched.

#ifndef PGHIVE_DATAGEN_NOISE_H_
#define PGHIVE_DATAGEN_NOISE_H_

#include <cstdint>

#include "common/result.h"
#include "graph/property_graph.h"

namespace pghive {

struct NoiseOptions {
  /// Probability of dropping each individual property instance (0-0.4 in
  /// the paper's grid).
  double property_removal = 0.0;
  /// Fraction of elements that KEEP their labels (1.0, 0.5, 0.0 in the
  /// paper). Elements that lose labels lose the whole label set.
  double label_availability = 1.0;
  uint64_t seed = 99;
};

/// Returns a noisy copy of `g`. Fails with InvalidArgument if the options
/// are outside [0, 1].
Result<PropertyGraph> InjectNoise(const PropertyGraph& g,
                                  const NoiseOptions& options);

}  // namespace pghive

#endif  // PGHIVE_DATAGEN_NOISE_H_
