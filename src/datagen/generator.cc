#include "datagen/generator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <unordered_map>

#include "common/random.h"

namespace pghive {

namespace {

const char* const kWordPool[] = {
    "alpha", "beta",  "gamma", "delta", "epsilon", "zeta",  "eta",
    "theta", "iota",  "kappa", "lambda", "mu",     "nu",    "xi",
    "omikron", "pi",  "rho",   "sigma", "tau",     "upsilon"};

std::string RandomWord(Rng* rng) {
  return kWordPool[rng->UniformU32(std::size(kWordPool))];
}

std::string RandomDate(Rng* rng) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d",
                static_cast<int>(rng->UniformInt(1970, 2025)),
                static_cast<int>(rng->UniformInt(1, 12)),
                static_cast<int>(rng->UniformInt(1, 28)));
  return buf;
}

std::string RandomTimestamp(Rng* rng) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%sT%02d:%02d:%02d",
                RandomDate(rng).c_str(),
                static_cast<int>(rng->UniformInt(0, 23)),
                static_cast<int>(rng->UniformInt(0, 59)),
                static_cast<int>(rng->UniformInt(0, 59)));
  return buf;
}

// Draws a type index proportionally to weights using a precomputed CDF.
size_t DrawIndex(const std::vector<double>& cdf, Rng* rng) {
  double r = rng->UniformDouble() * cdf.back();
  auto it = std::lower_bound(cdf.begin(), cdf.end(), r);
  return std::min<size_t>(static_cast<size_t>(it - cdf.begin()),
                          cdf.size() - 1);
}

std::vector<double> BuildCdf(const std::vector<double>& weights) {
  std::vector<double> cdf(weights.size());
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    cdf[i] = acc;
  }
  return cdf;
}

std::map<std::string, Value> RealizeProperties(
    const std::vector<PropertySpec>& props, Rng* rng) {
  std::map<std::string, Value> out;
  for (const auto& p : props) {
    if (p.presence < 1.0 && !rng->Bernoulli(p.presence)) continue;
    DataType t = p.type;
    if (p.outlier_rate > 0.0 && rng->Bernoulli(p.outlier_rate)) {
      t = p.outlier_type;
    }
    out.emplace(p.key, GenerateValue(t, rng));
  }
  return out;
}

}  // namespace

Value GenerateValue(DataType type, Rng* rng) {
  switch (type) {
    case DataType::kInt:
      return Value::Int(rng->UniformInt(0, 1000000));
    case DataType::kDouble:
      // Force a fractional part so the lexical form stays a double.
      return Value::Double(rng->UniformDouble(0.0, 1000.0) + 0.5);
    case DataType::kBool:
      return Value::Bool(rng->Bernoulli(0.5));
    case DataType::kDate:
      return Value::Date(RandomDate(rng));
    case DataType::kTimestamp:
      return Value::Timestamp(RandomTimestamp(rng));
    case DataType::kString:
      return Value::String(RandomWord(rng) + "_" +
                           std::to_string(rng->UniformInt(0, 9999)));
  }
  return Value::String("?");
}

Result<PropertyGraph> GenerateGraph(const DatasetSpec& spec,
                                    const GenerateOptions& options) {
  PGHIVE_RETURN_NOT_OK(spec.Validate());
  size_t num_nodes = options.num_nodes ? options.num_nodes : spec.default_nodes;
  size_t num_edges = options.num_edges ? options.num_edges : spec.default_edges;
  Rng rng(options.seed, 0x9e9);

  // --- Nodes ---
  std::vector<double> node_weights;
  node_weights.reserve(spec.node_types.size());
  for (const auto& nt : spec.node_types) node_weights.push_back(nt.weight);
  std::vector<double> node_cdf = BuildCdf(node_weights);

  // Decide the type of every node first (guaranteeing >=1 instance per type
  // when the graph is large enough), then optionally shuffle.
  std::vector<size_t> node_type_of(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    node_type_of[i] = i < spec.node_types.size() && num_nodes >= spec.node_types.size()
                          ? i
                          : DrawIndex(node_cdf, &rng);
  }
  if (options.shuffle) rng.Shuffle(&node_type_of);

  PropertyGraph g;
  std::unordered_map<std::string, std::vector<NodeId>> pool;  // type -> ids
  for (size_t i = 0; i < num_nodes; ++i) {
    const NodeTypeSpec& nt = spec.node_types[node_type_of[i]];
    NodeId id = g.AddNode(nt.labels, RealizeProperties(nt.properties, &rng),
                          nt.name);
    pool[nt.name].push_back(id);
  }

  // --- Edges ---
  if (spec.edge_types.empty() || num_edges == 0) return g;
  std::vector<double> edge_weights;
  edge_weights.reserve(spec.edge_types.size());
  for (const auto& et : spec.edge_types) edge_weights.push_back(et.weight);
  std::vector<double> edge_cdf = BuildCdf(edge_weights);

  std::vector<size_t> edge_type_of(num_edges);
  for (size_t i = 0; i < num_edges; ++i) {
    edge_type_of[i] = i < spec.edge_types.size() && num_edges >= spec.edge_types.size()
                          ? i
                          : DrawIndex(edge_cdf, &rng);
  }
  if (options.shuffle) rng.Shuffle(&edge_type_of);

  // Per edge type, a "next source" cursor implements the cardinality class:
  //   1:1  -> fresh source, fresh target
  //   N:1  -> fresh source, target drawn from a small reused subset
  //   1:N  -> source drawn from a small reused subset, fresh target
  //   M:N  -> both drawn at random (reuse expected)
  struct Cursor {
    size_t next_src = 0;
    size_t next_tgt = 0;
  };
  std::unordered_map<std::string, Cursor> cursors;

  for (size_t i = 0; i < num_edges; ++i) {
    const EdgeTypeSpec& et = spec.edge_types[edge_type_of[i]];
    auto& srcs = pool[et.source_type];
    auto& tgts = pool[et.target_type];
    if (srcs.empty() || tgts.empty()) continue;  // undersized graph
    Cursor& cur = cursors[et.name];

    auto fresh = [&](std::vector<NodeId>& v, size_t* next) {
      NodeId id = v[*next % v.size()];
      ++*next;
      return id;
    };
    auto reused = [&](std::vector<NodeId>& v) {
      // Small hub subset: first ~sqrt(|v|) ids.
      size_t hubs = std::max<size_t>(1, static_cast<size_t>(
                                            std::sqrt(double(v.size()))));
      return v[rng.UniformU32(static_cast<uint32_t>(hubs))];
    };

    NodeId s = 0, t = 0;
    switch (et.cardinality) {
      case CardinalityClass::kOneToOne:
        s = fresh(srcs, &cur.next_src);
        t = fresh(tgts, &cur.next_tgt);
        break;
      case CardinalityClass::kManyToOne:
        s = fresh(srcs, &cur.next_src);
        t = reused(tgts);
        break;
      case CardinalityClass::kOneToMany:
        s = reused(srcs);
        t = fresh(tgts, &cur.next_tgt);
        break;
      case CardinalityClass::kManyToMany:
        s = srcs[rng.UniformU32(static_cast<uint32_t>(srcs.size()))];
        t = tgts[rng.UniformU32(static_cast<uint32_t>(tgts.size()))];
        break;
    }
    std::set<std::string> labels;
    if (!et.label.empty()) labels.insert(et.label);
    auto added = g.AddEdge(s, t, std::move(labels),
                           RealizeProperties(et.properties, &rng), et.name);
    if (!added.ok()) return added.status();
  }
  return g;
}

}  // namespace pghive
