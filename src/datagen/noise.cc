#include "datagen/noise.h"

#include <map>
#include <set>
#include <string>

#include "common/random.h"

namespace pghive {

namespace {

// One Bernoulli draw per property key in canonical (lexicographic) order,
// then one draw for label availability — the exact RNG call sequence of the
// pre-interning implementation, so noisy graphs are bit-identical.
template <typename Elem>
struct NoiseDecision {
  bool drop_properties = false;
  bool clear_labels = false;
  std::map<std::string, Value> kept;
};

template <typename Elem>
NoiseDecision<Elem> DecideNoise(const Elem& e, const NoiseOptions& options,
                                Rng* rng) {
  NoiseDecision<Elem> d;
  if (options.property_removal > 0.0 && !e.properties.empty()) {
    for (const auto& [k, v] : e.properties) {
      if (rng->Bernoulli(options.property_removal)) {
        d.drop_properties = true;
      } else {
        d.kept.emplace_hint(d.kept.end(), k, v);
      }
    }
  }
  if (options.label_availability < 1.0 && !e.labels.empty()) {
    if (!rng->Bernoulli(options.label_availability)) d.clear_labels = true;
  }
  return d;
}

}  // namespace

Result<PropertyGraph> InjectNoise(const PropertyGraph& g,
                                  const NoiseOptions& options) {
  if (options.property_removal < 0.0 || options.property_removal > 1.0) {
    return Status::InvalidArgument("property_removal out of [0,1]");
  }
  if (options.label_availability < 0.0 || options.label_availability > 1.0) {
    return Status::InvalidArgument("label_availability out of [0,1]");
  }
  PropertyGraph noisy = g;
  Rng rng(options.seed, 0x401);
  const std::set<std::string> no_labels;
  for (size_t i = 0; i < noisy.num_nodes(); ++i) {
    auto d = DecideNoise(noisy.node(i), options, &rng);
    if (d.drop_properties) noisy.SetNodeProperties(i, d.kept);
    if (d.clear_labels) noisy.SetNodeLabels(i, no_labels);
  }
  for (size_t i = 0; i < noisy.num_edges(); ++i) {
    auto d = DecideNoise(noisy.edge(i), options, &rng);
    if (d.drop_properties) noisy.SetEdgeProperties(i, d.kept);
    if (d.clear_labels) noisy.SetEdgeLabels(i, no_labels);
  }
  return noisy;
}

}  // namespace pghive
