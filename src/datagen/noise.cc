#include "datagen/noise.h"

#include "common/random.h"

namespace pghive {

namespace {

template <typename Elem>
void ApplyNoiseToElement(Elem* e, const NoiseOptions& options, Rng* rng) {
  if (options.property_removal > 0.0 && !e->properties.empty()) {
    for (auto it = e->properties.begin(); it != e->properties.end();) {
      if (rng->Bernoulli(options.property_removal)) {
        it = e->properties.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (options.label_availability < 1.0 && !e->labels.empty()) {
    if (!rng->Bernoulli(options.label_availability)) e->labels.clear();
  }
}

}  // namespace

Result<PropertyGraph> InjectNoise(const PropertyGraph& g,
                                  const NoiseOptions& options) {
  if (options.property_removal < 0.0 || options.property_removal > 1.0) {
    return Status::InvalidArgument("property_removal out of [0,1]");
  }
  if (options.label_availability < 0.0 || options.label_availability > 1.0) {
    return Status::InvalidArgument("label_availability out of [0,1]");
  }
  PropertyGraph noisy = g;
  Rng rng(options.seed, 0x401);
  for (size_t i = 0; i < noisy.num_nodes(); ++i) {
    ApplyNoiseToElement(&noisy.mutable_node(i), options, &rng);
  }
  for (size_t i = 0; i < noisy.num_edges(); ++i) {
    ApplyNoiseToElement(&noisy.mutable_edge(i), options, &rng);
  }
  return noisy;
}

}  // namespace pghive
