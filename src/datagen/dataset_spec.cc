#include "datagen/dataset_spec.h"

#include <unordered_set>

namespace pghive {

const char* CardinalityClassName(CardinalityClass c) {
  switch (c) {
    case CardinalityClass::kOneToOne:
      return "1:1";
    case CardinalityClass::kManyToOne:
      return "N:1";
    case CardinalityClass::kOneToMany:
      return "1:N";
    case CardinalityClass::kManyToMany:
      return "M:N";
  }
  return "?";
}

namespace {

Status ValidateProperties(const std::vector<PropertySpec>& props,
                          const std::string& owner) {
  std::unordered_set<std::string> keys;
  for (const auto& p : props) {
    if (p.key.empty()) {
      return Status::InvalidArgument(owner + ": empty property key");
    }
    if (!keys.insert(p.key).second) {
      return Status::InvalidArgument(owner + ": duplicate property key " +
                                     p.key);
    }
    if (p.presence < 0.0 || p.presence > 1.0) {
      return Status::InvalidArgument(owner + "." + p.key +
                                     ": presence out of [0,1]");
    }
    if (p.outlier_rate < 0.0 || p.outlier_rate > 1.0) {
      return Status::InvalidArgument(owner + "." + p.key +
                                     ": outlier_rate out of [0,1]");
    }
  }
  return Status::OK();
}

}  // namespace

Status DatasetSpec::Validate() const {
  if (node_types.empty()) {
    return Status::InvalidArgument(name + ": no node types");
  }
  std::unordered_set<std::string> node_type_names;
  for (const auto& nt : node_types) {
    if (nt.name.empty()) {
      return Status::InvalidArgument(name + ": node type with empty name");
    }
    if (!node_type_names.insert(nt.name).second) {
      return Status::InvalidArgument(name + ": duplicate node type " +
                                     nt.name);
    }
    if (nt.weight <= 0.0) {
      return Status::InvalidArgument(name + "." + nt.name +
                                     ": non-positive weight");
    }
    PGHIVE_RETURN_NOT_OK(ValidateProperties(nt.properties, name + "." + nt.name));
  }
  std::unordered_set<std::string> edge_type_names;
  for (const auto& et : edge_types) {
    if (et.name.empty()) {
      return Status::InvalidArgument(name + ": edge type with empty name");
    }
    if (!edge_type_names.insert(et.name).second) {
      return Status::InvalidArgument(name + ": duplicate edge type " +
                                     et.name);
    }
    if (!node_type_names.count(et.source_type)) {
      return Status::InvalidArgument(name + "." + et.name +
                                     ": unknown source type " +
                                     et.source_type);
    }
    if (!node_type_names.count(et.target_type)) {
      return Status::InvalidArgument(name + "." + et.name +
                                     ": unknown target type " +
                                     et.target_type);
    }
    if (et.weight <= 0.0) {
      return Status::InvalidArgument(name + "." + et.name +
                                     ": non-positive weight");
    }
    PGHIVE_RETURN_NOT_OK(ValidateProperties(et.properties, name + "." + et.name));
  }
  return Status::OK();
}

}  // namespace pghive
