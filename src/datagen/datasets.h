// The eight benchmark dataset specifications of the paper (Table 2).
//
// Each spec mirrors the published structural characteristics of its
// namesake: ground-truth node/edge type counts, distinct label counts
// (including the multi-label structure of MB6/FIB25/IYP and the extra
// integration labels of HET.IO/LDBC), property heterogeneity (pattern
// counts) and edge endpoint structure. Instance counts are scaled down to
// laptop size (DESIGN.md §1); the paper-scale counts are retained in the
// spec for reporting.

#ifndef PGHIVE_DATAGEN_DATASETS_H_
#define PGHIVE_DATAGEN_DATASETS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "datagen/dataset_spec.h"

namespace pghive {

/// POLE: crime investigation graph (Person-Object-Location-Event).
/// 11 node types / 17 edge types, flat single-label structure.
DatasetSpec MakePoleSpec();

/// MB6: fruit-fly mushroom-body connectome. 4 node types defined by
/// co-occurring label sets over 10 labels; heavy structural variation.
DatasetSpec MakeMb6Spec();

/// HET.IO: integrated biomedical knowledge graph. 11 node types / 24 edge
/// types; every node carries an extra HetionetNode integration label.
DatasetSpec MakeHetioSpec();

/// FIB25: fruit-fly medulla connectome; sibling of MB6.
DatasetSpec MakeFib25Spec();

/// ICIJ: offshore-leaks graph; few types but extremely heterogeneous
/// properties (hundreds of structural patterns).
DatasetSpec MakeIcijSpec();

/// CORD19: COVID-19 knowledge graph; 16 node and edge types.
DatasetSpec MakeCord19Spec();

/// LDBC SNB: social network benchmark; 7 node types / 17 edge types with a
/// Message superclass label shared by Post and Comment.
DatasetSpec MakeLdbcSpec();

/// IYP: Internet Yellow Pages; 86 node types formed by combinations of 33
/// labels, the hardest integration scenario.
DatasetSpec MakeIypSpec();

/// All eight specs in Table-2 order (POLE, MB6, HET.IO, FIB25, ICIJ,
/// CORD19, LDBC, IYP).
std::vector<DatasetSpec> AllDatasetSpecs();

/// Looks a spec up by its Table-2 name (case-sensitive).
Result<DatasetSpec> DatasetSpecByName(const std::string& name);

}  // namespace pghive

#endif  // PGHIVE_DATAGEN_DATASETS_H_
