// Graph generation engine: instantiates a DatasetSpec into a PropertyGraph.
//
// Nodes are drawn per type proportionally to type weights; each instance
// realizes its properties according to the per-property presence
// probability and gets typed values (with optional outlier types). Edges
// sample endpoints from their (source, target) node-type pools respecting
// the declared cardinality class, so the cardinality-inference step has
// recoverable ground truth.

#ifndef PGHIVE_DATAGEN_GENERATOR_H_
#define PGHIVE_DATAGEN_GENERATOR_H_

#include <cstdint>

#include "common/random.h"
#include "common/result.h"
#include "datagen/dataset_spec.h"
#include "graph/property_graph.h"

namespace pghive {

struct GenerateOptions {
  /// Total nodes/edges to generate; 0 = use the spec defaults.
  size_t num_nodes = 0;
  size_t num_edges = 0;
  uint64_t seed = 1234;
  /// Shuffle node/edge insertion order so incremental batches see a mix of
  /// types (the paper splits graphs into batches randomly).
  bool shuffle = true;
};

/// Generates a graph from a spec. Fails if the spec does not Validate().
Result<PropertyGraph> GenerateGraph(const DatasetSpec& spec,
                                    const GenerateOptions& options = {});

/// Generates a single property value of the given data type (deterministic
/// in the Rng state). Exposed for tests and the Figure-8 harness.
Value GenerateValue(DataType type, Rng* rng);

}  // namespace pghive

#endif  // PGHIVE_DATAGEN_GENERATOR_H_
