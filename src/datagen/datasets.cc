#include "datagen/datasets.h"

#include <cstdio>

#include "common/hash.h"
#include "common/string_util.h"

namespace pghive {

namespace {

using CC = CardinalityClass;
using DT = DataType;

PropertySpec P(std::string key, DT type, double presence = 1.0) {
  PropertySpec p;
  p.key = std::move(key);
  p.type = type;
  p.presence = presence;
  return p;
}

/// Property whose values occasionally come from a different datatype; these
/// heterogeneous populations drive the Figure-8 sampling-error experiment.
PropertySpec POut(std::string key, DT type, double presence,
                  double outlier_rate, DT outlier_type) {
  PropertySpec p = P(std::move(key), type, presence);
  p.outlier_rate = outlier_rate;
  p.outlier_type = outlier_type;
  return p;
}

NodeTypeSpec NT(std::string name, std::set<std::string> labels,
                std::vector<PropertySpec> props, double weight = 1.0) {
  NodeTypeSpec nt;
  nt.name = std::move(name);
  nt.labels = std::move(labels);
  nt.properties = std::move(props);
  nt.weight = weight;
  return nt;
}

EdgeTypeSpec ET(std::string name, std::string label, std::string src,
                std::string tgt, CC card,
                std::vector<PropertySpec> props = {}, double weight = 1.0) {
  EdgeTypeSpec et;
  et.name = std::move(name);
  et.label = std::move(label);
  et.source_type = std::move(src);
  et.target_type = std::move(tgt);
  et.cardinality = card;
  et.properties = std::move(props);
  et.weight = weight;
  return et;
}

}  // namespace

DatasetSpec MakePoleSpec() {
  DatasetSpec s;
  s.name = "POLE";
  s.real = false;
  s.paper_nodes = 61521;
  s.paper_edges = 105840;
  s.default_nodes = 3000;
  s.default_edges = 5200;

  s.node_types = {
      NT("Person", {"Person"},
         {P("name", DT::kString), P("surname", DT::kString),
          P("nhs_no", DT::kString), P("nickname", DT::kString, 0.4)},
         8),
      NT("Officer", {"Officer"},
         {P("name", DT::kString), P("rank", DT::kString),
          P("badge_no", DT::kInt)},
         1),
      NT("Object", {"Object"},
         {P("description", DT::kString), P("found_on", DT::kDate)}, 2),
      NT("Location", {"Location"},
         {P("address", DT::kString), P("latitude", DT::kDouble),
          P("longitude", DT::kDouble)},
         4),
      NT("Event", {"Event"},
         {P("event_type", DT::kString), P("date", DT::kDate)}, 2),
      NT("Crime", {"Crime"},
         {P("crime_type", DT::kString), P("date", DT::kDate),
          P("last_outcome", DT::kString), P("note", DT::kString, 0.3)},
         3),
      NT("Vehicle", {"Vehicle"},
         {P("make", DT::kString), P("model", DT::kString),
          P("reg", DT::kString), P("year", DT::kInt, 0.7)},
         1.5),
      NT("Area", {"Area"}, {P("area_code", DT::kString)}, 0.8),
      NT("PhoneCall", {"PhoneCall"},
         {P("call_date", DT::kDate), P("call_time", DT::kString),
          P("call_duration", DT::kInt), P("call_type", DT::kString)},
         3),
      NT("Phone", {"Phone"}, {P("phoneNo", DT::kString)}, 2),
      NT("PostCode", {"PostCode"}, {P("code", DT::kString)}, 1),
  };

  s.edge_types = {
      ET("KNOWS", "KNOWS", "Person", "Person", CC::kManyToMany, {}, 4),
      ET("KNOWS_LW", "KNOWS_LW", "Person", "Person", CC::kManyToMany, {}, 1),
      ET("KNOWS_SN", "KNOWS_SN", "Person", "Person", CC::kManyToMany, {}, 1),
      ET("KNOWS_PHONE", "KNOWS_PHONE", "Person", "Person", CC::kManyToMany,
         {}, 1),
      ET("FAMILY_REL", "FAMILY_REL", "Person", "Person", CC::kManyToMany,
         {P("rel_type", DT::kString)}, 1),
      ET("CURRENT_ADDRESS", "CURRENT_ADDRESS", "Person", "Location",
         CC::kManyToOne, {}, 2),
      ET("HAS_PHONE", "HAS_PHONE", "Person", "Phone", CC::kOneToOne, {}, 1.5),
      ET("PARTY_TO", "PARTY_TO", "Person", "Crime", CC::kManyToMany, {}, 2),
      ET("INVESTIGATED_BY", "INVESTIGATED_BY", "Crime", "Officer",
         CC::kManyToOne, {}, 1),
      ET("OCCURRED_AT", "OCCURRED_AT", "Crime", "Location", CC::kManyToOne,
         {}, 1),
      ET("INVOLVED_IN", "INVOLVED_IN", "Object", "Crime", CC::kManyToOne, {},
         1),
      ET("HAS_POSTCODE", "HAS_POSTCODE", "Location", "PostCode",
         CC::kManyToOne, {}, 1.2),
      ET("HAS_POSTCODE_AREA", "HAS_POSTCODE", "Area", "PostCode",
         CC::kManyToOne, {}, 0.5),
      ET("LOCATION_IN_AREA", "LOCATION_IN_AREA", "Location", "Area",
         CC::kManyToOne, {}, 1),
      ET("CALLER", "CALLER", "PhoneCall", "Phone", CC::kManyToOne, {}, 1.5),
      ET("CALLED", "CALLED", "PhoneCall", "Phone", CC::kManyToOne, {}, 1.5),
      ET("REGISTERED_TO", "REGISTERED_TO", "Vehicle", "Person",
         CC::kManyToOne, {}, 0.8),
  };
  return s;
}

namespace {

/// MB6 and FIB25 share the connectome shape: 4 node types defined by
/// co-occurring label sets over 10 individual labels, 5 edge types over 3
/// labels, heavy per-type structural variation from optional properties.
DatasetSpec MakeConnectomeSpec(const std::string& name, size_t paper_nodes,
                               size_t paper_edges, size_t gen_nodes,
                               size_t gen_edges, double optional_presence) {
  DatasetSpec s;
  s.name = name;
  s.real = false;
  s.paper_nodes = paper_nodes;
  s.paper_edges = paper_edges;
  s.default_nodes = gen_nodes;
  s.default_edges = gen_edges;

  s.node_types = {
      NT("Neuron", {"Neuron", "Cell", "Traced", "Region"},
         {P("bodyId", DT::kInt), P("name", DT::kString, optional_presence),
          P("status", DT::kString, 0.8),
          P("pre", DT::kInt, optional_presence),
          P("post", DT::kInt, optional_presence),
          P("size", DT::kInt, 0.9)},
         3),
      NT("Segment", {"Segment", "Cell", "Element", "Region"},
         {P("bodyId", DT::kInt), P("size", DT::kInt, 0.9),
          P("status", DT::kString, optional_presence)},
         4),
      NT("SynapsePre", {"Synapse", "Pre", "Site", "Region"},
         {P("location", DT::kString), P("confidence", DT::kDouble),
          P("type", DT::kString, optional_presence)},
         2),
      NT("SynapsePost", {"Synapse", "Post", "Site", "Region"},
         {P("location", DT::kString), P("confidence", DT::kDouble),
          P("roi", DT::kString, optional_presence)},
         2),
  };

  s.edge_types = {
      ET("ConnectsToNeuron", "ConnectsTo", "Neuron", "Neuron",
         CC::kManyToMany, {P("weight", DT::kInt, 0.8)}, 3),
      ET("ConnectsToSegment", "ConnectsTo", "Segment", "Segment",
         CC::kManyToMany, {P("weight", DT::kInt, 0.8)}, 2),
      ET("SynapsesTo", "SynapsesTo", "SynapsePre", "SynapsePost",
         CC::kManyToMany, {}, 3),
      ET("ContainsNeuron", "Contains", "Neuron", "SynapsePre", CC::kOneToMany,
         {}, 1.5),
      ET("ContainsSegment", "Contains", "Segment", "SynapsePost",
         CC::kOneToMany, {}, 1.5),
  };
  return s;
}

}  // namespace

DatasetSpec MakeMb6Spec() {
  // Higher optional-property variance than FIB25 (52 vs 31 paper patterns).
  return MakeConnectomeSpec("MB6", 486267, 961571, 5000, 9800, 0.55);
}

DatasetSpec MakeFib25Spec() {
  return MakeConnectomeSpec("FIB25", 802473, 1625428, 6000, 12000, 0.75);
}

DatasetSpec MakeHetioSpec() {
  DatasetSpec s;
  s.name = "HET.IO";
  s.real = true;
  s.paper_nodes = 47031;
  s.paper_edges = 2250197;
  s.default_nodes = 2600;
  s.default_edges = 26000;

  // Every node carries the extra HetionetNode integration label (paper §5.1,
  // "HET.IO has assigned to all its nodes an extra HetionetNode label").
  auto HN = [](std::string name, std::vector<PropertySpec> props,
               double weight) {
    return NT(name, {name, "HetionetNode"}, std::move(props), weight);
  };
  // Each type keeps the shared (identifier, name) core of the real dataset
  // but also carries its source-specific metadata properties (the real
  // Hetionet stores per-source provenance fields), so types remain
  // structurally distinguishable even when labels are stripped.
  s.node_types = {
      HN("Gene",
         {P("identifier", DT::kInt), P("name", DT::kString),
          P("chromosome", DT::kString, 0.8), P("description", DT::kString, 0.6)},
         6),
      HN("Disease",
         {P("identifier", DT::kString), P("name", DT::kString),
          P("mesh_terms", DT::kString, 0.7)},
         1),
      HN("Compound",
         {P("identifier", DT::kString), P("name", DT::kString),
          P("inchikey", DT::kString, 0.9), P("inchi", DT::kString, 0.8)},
         2),
      HN("Anatomy",
         {P("identifier", DT::kString), P("name", DT::kString),
          P("uberon_id", DT::kString)},
         1),
      HN("BiologicalProcess",
         {P("identifier", DT::kString), P("name", DT::kString),
          P("go_domain", DT::kString, 0.9)},
         3),
      HN("CellularComponent",
         {P("identifier", DT::kString), P("name", DT::kString),
          P("go_component", DT::kString, 0.9)},
         1),
      HN("MolecularFunction",
         {P("identifier", DT::kString), P("name", DT::kString),
          P("go_function", DT::kString, 0.9)},
         1),
      HN("Pathway",
         {P("identifier", DT::kString), P("name", DT::kString),
          P("pathway_source", DT::kString), P("n_genes", DT::kInt, 0.8)},
         1),
      HN("PharmacologicClass",
         {P("identifier", DT::kString), P("name", DT::kString),
          P("class_type", DT::kString)},
         0.5),
      HN("SideEffect",
         {P("identifier", DT::kString), P("name", DT::kString),
          P("umls_id", DT::kString, 0.9)},
         1.5),
      HN("Symptom",
         {P("identifier", DT::kString), P("name", DT::kString),
          P("mesh_id", DT::kString, 0.9)},
         0.5),
  };

  struct E {
    const char* label;
    const char* src;
    const char* tgt;
    double w;
    bool props;  // some HET.IO edges carry provenance properties
  };
  const E edges[] = {
      {"ASSOCIATES_DaG", "Disease", "Gene", 2, true},
      {"BINDS_CbG", "Compound", "Gene", 2, true},
      {"CAUSES_CcSE", "Compound", "SideEffect", 2, false},
      {"COVARIES_GcG", "Gene", "Gene", 1, false},
      {"DOWNREGULATES_AdG", "Anatomy", "Gene", 1.5, false},
      {"DOWNREGULATES_CdG", "Compound", "Gene", 1, true},
      {"DOWNREGULATES_DdG", "Disease", "Gene", 1, false},
      {"EXPRESSES_AeG", "Anatomy", "Gene", 3, false},
      {"INCLUDES_PCiC", "PharmacologicClass", "Compound", 0.5, false},
      {"INTERACTS_GiG", "Gene", "Gene", 2, true},
      {"LOCALIZES_DlA", "Disease", "Anatomy", 1, false},
      {"PALLIATES_CpD", "Compound", "Disease", 0.5, true},
      {"PARTICIPATES_GpBP", "Gene", "BiologicalProcess", 3, false},
      {"PARTICIPATES_GpCC", "Gene", "CellularComponent", 1, false},
      {"PARTICIPATES_GpMF", "Gene", "MolecularFunction", 1, false},
      {"PARTICIPATES_GpPW", "Gene", "Pathway", 1, false},
      {"PRESENTS_DpS", "Disease", "Symptom", 0.5, false},
      {"REGULATES_GrG", "Gene", "Gene", 1.5, false},
      {"RESEMBLES_CrC", "Compound", "Compound", 0.5, false},
      {"RESEMBLES_DrD", "Disease", "Disease", 0.3, false},
      {"TREATS_CtD", "Compound", "Disease", 0.5, true},
      {"UPREGULATES_AuG", "Anatomy", "Gene", 1.5, false},
      {"UPREGULATES_CuG", "Compound", "Gene", 1, true},
      {"UPREGULATES_DuG", "Disease", "Gene", 1, false},
  };
  for (const E& e : edges) {
    std::vector<PropertySpec> props;
    if (e.props) {
      props = {P("sources", DT::kString, 0.8),
               P("unbiased", DT::kBool, 0.5),
               P("z_score", DT::kDouble, 0.4)};
    }
    s.edge_types.push_back(ET(e.label, e.label, e.src, e.tgt, CC::kManyToMany,
                              std::move(props), e.w));
  }
  return s;
}

DatasetSpec MakeIcijSpec() {
  DatasetSpec s;
  s.name = "ICIJ";
  s.real = true;
  s.paper_nodes = 2016523;
  s.paper_edges = 3339267;
  s.default_nodes = 8000;
  s.default_edges = 13200;

  // Few types, extreme property heterogeneity (208 paper node patterns):
  // most properties are optional with mid-range presence, and several
  // properties have mixed value types (driving Figure 8 sampling errors).
  s.node_types = {
      NT("Entity", {"Entity"},
         {P("name", DT::kString),
          P("jurisdiction", DT::kString, 0.6),
          P("incorporation_date", DT::kDate, 0.5),
          P("inactivation_date", DT::kDate, 0.3),
          P("status", DT::kString, 0.6),
          P("service_provider", DT::kString, 0.4),
          POut("ibcRUC", DT::kInt, 0.5, 0.12, DT::kString),
          P("country_codes", DT::kString, 0.5),
          P("note", DT::kString, 0.15)},
         6),
      NT("Officer", {"Officer"},
         {P("name", DT::kString),
          P("country_codes", DT::kString, 0.55),
          P("valid_until", DT::kString, 0.4),
          POut("icij_id", DT::kString, 0.6, 0.0, DT::kString)},
         5),
      NT("Intermediary", {"Intermediary"},
         {P("name", DT::kString),
          P("address", DT::kString, 0.5),
          P("country_codes", DT::kString, 0.5),
          P("status", DT::kString, 0.45),
          P("internal_id", DT::kInt, 0.5)},
         1.5),
      NT("Address", {"Address"},
         {P("address", DT::kString),
          P("country_codes", DT::kString, 0.7),
          POut("postcode", DT::kInt, 0.5, 0.2, DT::kString),
          P("valid_until", DT::kString, 0.35)},
         3),
      NT("Other", {"Other", "Misc"},
         {P("name", DT::kString),
          P("closed_date", DT::kDate, 0.4),
          P("note", DT::kString, 0.4),
          P("type", DT::kString, 0.6)},
         0.8),
  };

  struct E {
    const char* label;
    const char* src;
    const char* tgt;
    double w;
    CC card;
  };
  const E edges[] = {
      {"officer_of", "Officer", "Entity", 4, CC::kManyToMany},
      {"intermediary_of", "Intermediary", "Entity", 2, CC::kOneToMany},
      {"registered_address", "Entity", "Address", 3, CC::kManyToOne},
      {"registered_address_officer", "Officer", "Address", 1, CC::kManyToOne},
      {"connected_to", "Entity", "Entity", 1, CC::kManyToMany},
      {"similar", "Entity", "Entity", 0.5, CC::kManyToMany},
      {"same_name_as", "Officer", "Officer", 0.5, CC::kManyToMany},
      {"same_id_as", "Entity", "Entity", 0.3, CC::kOneToOne},
      {"underlying", "Entity", "Other", 0.4, CC::kManyToOne},
      {"shareholder_of", "Officer", "Entity", 1.5, CC::kManyToMany},
      {"director_of", "Officer", "Entity", 1.5, CC::kManyToMany},
      {"beneficiary_of", "Officer", "Entity", 1, CC::kManyToMany},
      {"secretary_of", "Officer", "Entity", 0.5, CC::kManyToMany},
      {"trustee_of", "Officer", "Entity", 0.3, CC::kManyToMany},
  };
  for (const E& e : edges) {
    // Registration edges carry sparse validity properties -> many edge
    // patterns (42 in the paper).
    std::vector<PropertySpec> props = {P("valid_until", DT::kString, 0.4),
                                       P("start_date", DT::kDate, 0.35),
                                       P("end_date", DT::kDate, 0.2)};
    const bool is_same_edge = std::string(e.label).rfind("same_", 0) == 0;
    if (is_same_edge) props.clear();
    s.edge_types.push_back(
        ET(e.label, e.label, e.src, e.tgt, e.card, std::move(props), e.w));
  }
  // One duplicate-label edge type distinguishes by endpoints (label reuse).
  return s;
}

DatasetSpec MakeCord19Spec() {
  DatasetSpec s;
  s.name = "CORD19";
  s.real = true;
  s.paper_nodes = 5485296;
  s.paper_edges = 5720776;
  s.default_nodes = 10000;
  s.default_edges = 10400;

  struct N {
    const char* name;
    double w;
  };
  const N core[] = {{"Paper", 5},          {"Author", 6},
                    {"Affiliation", 2},    {"Journal", 0.5},
                    {"Gene", 3},           {"Protein", 3},
                    {"Disease", 1},        {"Chemical", 2},
                    {"Species", 0.5},      {"CellType", 0.5},
                    {"Tissue", 0.5},       {"Pathway", 0.7},
                    {"ClinicalTrial", 0.5}, {"PatentFamily", 0.3},
                    {"BodyText", 4},       {"Abstract", 3}};
  for (const N& n : core) {
    // Entity types carry namespaced identifiers (gene_id, disease_id, ...)
    // as in the real CovidGraph, keeping them structurally distinct.
    std::string id_key = ToLower(n.name) + "_id";
    std::vector<PropertySpec> props = {P(id_key, DT::kString),
                                       P("name", DT::kString, 0.9)};
    if (std::string(n.name) == "Paper") {
      props = {P("cord_uid", DT::kString),
               P("title", DT::kString),
               P("publish_time", DT::kDate, 0.8),
               POut("year", DT::kInt, 0.7, 0.1, DT::kString),
               P("doi", DT::kString, 0.6),
               P("journal_name", DT::kString, 0.5)};
    } else if (std::string(n.name) == "Author") {
      props = {P("first", DT::kString, 0.9), P("last", DT::kString),
               P("email", DT::kString, 0.3)};
    } else if (std::string(n.name) == "BodyText" ||
               std::string(n.name) == "Abstract") {
      props = {P("text", DT::kString), P("section", DT::kString, 0.6),
               POut("position", DT::kInt, 0.8, 0.05, DT::kDouble)};
    }
    s.node_types.push_back(NT(n.name, {n.name}, std::move(props), n.w));
  }

  struct E {
    const char* label;
    const char* src;
    const char* tgt;
    double w;
    CC card;
  };
  const E edges[] = {
      {"WROTE", "Author", "Paper", 5, CC::kManyToMany},
      {"AFFILIATED_WITH", "Author", "Affiliation", 3, CC::kManyToOne},
      {"PUBLISHED_IN", "Paper", "Journal", 2, CC::kManyToOne},
      {"MENTIONS_GENE", "Paper", "Gene", 2, CC::kManyToMany},
      {"MENTIONS_DISEASE", "Paper", "Disease", 2, CC::kManyToMany},
      {"MENTIONS_CHEMICAL", "Paper", "Chemical", 2, CC::kManyToMany},
      {"CODES_FOR", "Gene", "Protein", 1, CC::kOneToOne},
      {"ASSOCIATED_WITH", "Gene", "Disease", 1, CC::kManyToMany},
      {"INTERACTS_WITH", "Protein", "Protein", 1, CC::kManyToMany},
      {"PART_OF_PATHWAY", "Protein", "Pathway", 1, CC::kManyToOne},
      {"OCCURS_IN", "Disease", "Species", 0.5, CC::kManyToMany},
      {"HAS_BODYTEXT", "Paper", "BodyText", 3, CC::kOneToMany},
      {"HAS_ABSTRACT", "Paper", "Abstract", 2, CC::kOneToOne},
      {"CITES", "Paper", "Paper", 2, CC::kManyToMany},
      {"TESTED_IN", "Chemical", "ClinicalTrial", 0.5, CC::kManyToMany},
      {"PATENTED_IN", "Chemical", "PatentFamily", 0.3, CC::kManyToOne},
  };
  for (const E& e : edges) {
    std::vector<PropertySpec> props;
    if (std::string(e.label).rfind("MENTIONS", 0) == 0) {
      props = {P("count", DT::kInt, 0.9), P("score", DT::kDouble, 0.5)};
    }
    s.edge_types.push_back(
        ET(e.label, e.label, e.src, e.tgt, e.card, std::move(props), e.w));
  }
  return s;
}

DatasetSpec MakeLdbcSpec() {
  DatasetSpec s;
  s.name = "LDBC";
  s.real = false;
  s.paper_nodes = 3181724;
  s.paper_edges = 12505476;
  s.default_nodes = 9000;
  s.default_edges = 35000;

  s.node_types = {
      NT("Person", {"Person"},
         {P("firstName", DT::kString), P("lastName", DT::kString),
          P("gender", DT::kString), P("birthday", DT::kDate),
          P("creationDate", DT::kTimestamp), P("locationIP", DT::kString),
          P("browserUsed", DT::kString), P("email", DT::kString, 0.7)},
         4),
      NT("Forum", {"Forum"},
         {P("title", DT::kString), P("creationDate", DT::kTimestamp)}, 1.5),
      // Post and Comment share the Message superclass label.
      NT("Post", {"Message", "Post"},
         {P("creationDate", DT::kTimestamp), P("locationIP", DT::kString),
          P("browserUsed", DT::kString), P("content", DT::kString, 0.8),
          P("language", DT::kString, 0.6), P("imageFile", DT::kString, 0.3)},
         5),
      NT("Comment", {"Comment", "Message"},
         {P("creationDate", DT::kTimestamp), P("locationIP", DT::kString),
          P("browserUsed", DT::kString), P("content", DT::kString)},
         6),
      NT("Place", {"Place"},
         {P("name", DT::kString), P("url", DT::kString),
          P("placeType", DT::kString)},
         0.5),
      NT("Organisation", {"Organisation"},
         {P("name", DT::kString), P("url", DT::kString),
          P("orgType", DT::kString)},
         0.5),
      NT("Tag", {"Tag"}, {P("name", DT::kString), P("url", DT::kString)}, 1),
  };

  s.edge_types = {
      ET("KNOWS", "KNOWS", "Person", "Person", CC::kManyToMany,
         {P("creationDate", DT::kTimestamp)}, 4),
      ET("HAS_CREATOR_POST", "HAS_CREATOR", "Post", "Person", CC::kManyToOne,
         {}, 3),
      ET("HAS_CREATOR_COMMENT", "HAS_CREATOR", "Comment", "Person",
         CC::kManyToOne, {}, 3.5),
      ET("LIKES", "LIKES", "Person", "Post", CC::kManyToMany,
         {P("creationDate", DT::kTimestamp)}, 2.5),
      ET("FORUM_HAS_TAG", "FORUM_HAS_TAG", "Forum", "Tag", CC::kManyToMany,
         {}, 1.5),
      ET("HAS_MEMBER", "HAS_MEMBER", "Forum", "Person", CC::kManyToMany,
         {P("joinDate", DT::kTimestamp)}, 3),
      ET("HAS_MODERATOR", "HAS_MODERATOR", "Forum", "Person", CC::kManyToOne,
         {}, 0.7),
      ET("CONTAINER_OF", "CONTAINER_OF", "Forum", "Post", CC::kOneToMany, {},
         2.5),
      ET("REPLY_OF_POST", "REPLY_OF", "Comment", "Post", CC::kManyToOne, {},
         2.5),
      ET("REPLY_OF_COMMENT", "REPLY_OF", "Comment", "Comment", CC::kManyToOne,
         {}, 2),
      ET("HAS_TAG", "HAS_TAG", "Post", "Tag", CC::kManyToMany, {}, 2),
      ET("HAS_INTEREST", "HAS_INTEREST", "Person", "Tag", CC::kManyToMany, {},
         1.5),
      ET("IS_LOCATED_IN", "IS_LOCATED_IN", "Person", "Place", CC::kManyToOne,
         {}, 1.5),
      ET("STUDY_AT", "STUDY_AT", "Person", "Organisation", CC::kManyToOne,
         {P("classYear", DT::kInt)}, 0.7),
      ET("WORK_AT", "WORK_AT", "Person", "Organisation", CC::kManyToMany,
         {P("workFrom", DT::kInt)}, 1),
      ET("IS_PART_OF", "IS_PART_OF", "Place", "Place", CC::kManyToOne, {},
         0.3),
      ET("ORG_LOCATED_IN", "ORG_LOCATED_IN", "Organisation", "Place",
         CC::kManyToOne, {}, 0.4),
  };
  return s;
}

DatasetSpec MakeIypSpec() {
  DatasetSpec s;
  s.name = "IYP";
  s.real = true;
  s.paper_nodes = 44539999;
  s.paper_edges = 251432812;
  s.default_nodes = 12000;
  s.default_edges = 60000;

  // 86 node types built from 33 labels: 11 base entity labels on their own
  // (11 single-label types) plus combinations of base labels with "source"
  // category labels (integration scenario: the same entity class annotated
  // by different measurement sources).
  const char* bases[] = {"AS",        "Prefix",   "IP",      "DomainName",
                         "HostName",  "IXP",      "Organization",
                         "Country",   "Facility", "AtlasProbe", "URL"};
  const char* sources[] = {"RIPE",   "CAIDA",     "BGPKIT", "PeeringDB",
                           "Cisco",  "OpenINTEL", "Tranco"};
  // 11 bases + 7 sources + 15 tag labels = 33 labels.
  const char* tags[] = {"Tag", "Ranking", "Name", "OpaqueID", "PeeringLAN",
                        "Estimate", "Geoloc", "Registry", "Route", "Measurement",
                        "Resolver", "Authoritative", "Anycast", "Cloud", "CDN"};

  // Shared property pool; each type samples a subset -> structural overlap
  // between types (the paper's "structurally heterogeneous" case).
  const PropertySpec pool[] = {
      P("asn", DT::kInt, 0.9),
      P("prefix", DT::kString, 0.8),
      P("ip", DT::kString, 0.8),
      P("name", DT::kString, 0.7),
      P("country_code", DT::kString, 0.6),
      POut("reference_time", DT::kTimestamp, 0.6, 0.1, DT::kString),
      P("reference_org", DT::kString, 0.5),
      P("reference_url", DT::kString, 0.5),
      POut("rank", DT::kInt, 0.5, 0.08, DT::kDouble),
      P("value", DT::kDouble, 0.5),
      P("af", DT::kInt, 0.6),
      P("registered", DT::kDate, 0.4),
      P("domain", DT::kString, 0.7),
      P("hostname", DT::kString, 0.7),
      P("org_name", DT::kString, 0.6),
      P("probe_id", DT::kInt, 0.8),
  };
  const size_t pool_size = std::size(pool);

  size_t type_idx = 0;
  auto add_type = [&](std::set<std::string> labels, double weight) {
    // Each type samples a pseudo-random 3-6-property subset of the shared
    // pool, keyed by its label set: heavy structural overlap between types
    // (the integrated-dataset scenario) while nearly all subsets stay
    // distinct. This mirrors IYP's 1210 observed node patterns for 86 types.
    std::string label_key;
    for (const auto& l : labels) label_key += l + "|";
    uint64_t h = HashString(label_key);
    size_t count = 3 + (h % 4);
    std::set<std::string> seen;
    std::vector<PropertySpec> props;
    uint64_t state = h;
    while (props.size() < count) {
      state = Mix64(state);
      const PropertySpec& p = pool[state % pool_size];
      if (seen.insert(p.key).second) props.push_back(p);
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "T%02zu", type_idx);
    std::string name = buf;
    for (const auto& l : labels) name += "_" + l;
    s.node_types.push_back(NT(name, std::move(labels), std::move(props),
                              weight));
    ++type_idx;
  };

  // 11 single-base types.
  for (const char* b : bases) add_type({b}, 2.0);
  // 11 x 7 = 77 would exceed 86-11=75; take the first 75 (base, source)
  // pairs -> 86 types total.
  size_t pairs = 0;
  for (const char* b : bases) {
    for (const char* src : sources) {
      if (pairs >= 75) break;
      add_type({b, src}, 0.5);
      ++pairs;
    }
  }
  // Tag labels appear as additional labels on a rotating subset of the pair
  // types so all 33 labels are observed, without creating new types: we fold
  // them into the label sets of the last few types instead.
  size_t ti = s.node_types.size() - std::size(tags);
  for (size_t k = 0; k < std::size(tags); ++k) {
    s.node_types[ti + k].labels.insert(tags[k]);
  }

  // 25 edge types over 25 labels connecting rotating type pairs.
  const char* edge_labels[] = {
      "MEMBER_OF",    "ORIGINATE",   "DEPENDS_ON",  "PEERS_WITH",
      "MANAGED_BY",   "LOCATED_IN",  "RESOLVES_TO", "ALIAS_OF",
      "PART_OF",      "CATEGORIZED", "RANK",        "COUNTRY",
      "WEBSITE",      "NAME",        "EXTERNAL_ID", "ASSIGNED",
      "ROUTE_ORIGIN", "QUERIED_FROM", "TARGET",     "HOSTED_BY",
      "SIBLING_OF",   "UPSTREAM",    "DOWNSTREAM",  "AVAILABLE",
      "CENSORED"};
  for (size_t k = 0; k < std::size(edge_labels); ++k) {
    const auto& src = s.node_types[(k * 7) % s.node_types.size()].name;
    const auto& tgt = s.node_types[(k * 11 + 3) % s.node_types.size()].name;
    std::vector<PropertySpec> props = {
        P("reference_org", DT::kString, 0.7),
        P("reference_time", DT::kTimestamp, 0.5)};
    if (k % 3 == 0) props.push_back(POut("count", DT::kInt, 0.5, 0.06, DT::kDouble));
    s.edge_types.push_back(ET(edge_labels[k], edge_labels[k], src, tgt,
                              k % 4 == 0 ? CC::kManyToOne : CC::kManyToMany,
                              std::move(props), 1.0));
  }
  return s;
}

std::vector<DatasetSpec> AllDatasetSpecs() {
  return {MakePoleSpec(),   MakeMb6Spec(),    MakeHetioSpec(),
          MakeFib25Spec(),  MakeIcijSpec(),   MakeCord19Spec(),
          MakeLdbcSpec(),   MakeIypSpec()};
}

Result<DatasetSpec> DatasetSpecByName(const std::string& name) {
  for (auto& spec : AllDatasetSpecs()) {
    if (spec.name == name) return spec;
  }
  return Status::NotFound("unknown dataset: " + name);
}

}  // namespace pghive
