// Evolution scenarios: deterministic mutation streams for drift testing.
//
// Each scenario is a hand-shaped stream of MutationBatch-es exercising one
// drift pattern a live graph produces — and that the monotone insert-only
// chain never could:
//
//   label-churn            a whole labeled cohort appears, lives for a few
//                          batches and is retired wholesale; a new cohort
//                          takes its place (types added AND removed).
//   property-deprecation   a property is phased out via update waves until
//                          no survivor carries it (removed_properties), and
//                          another becomes universal (became_mandatory).
//   type-split             every member of one type is re-labeled into two
//                          successor types via a full-update wave (the old
//                          type retires, two appear).
//   type-merge             two types collapse into one the same way.
//   mixed                  churn + deprecation + a cardinality downgrade
//                          (parallel edges added then deleted) + a datatype
//                          narrowing (the only Double value retires).
//
// Shape rules (why discovery of a stream equals discovery of its survivors,
// the drift_equivalence_test invariant):
//   * every surviving type keeps >=1 never-deleted member from its first
//     batch, so the type exists on both sides with a sticky name;
//   * each intended type carries exactly ONE label set and a property-key
//     vocabulary unique to it (no cross-type containment), so clustering
//     resolves identically stream-side and replay-side;
//   * node deletions/updates take their incident edges along in the same
//     batch (the endpoint-closure contract of graph/mutations.h).
//
// Everything is deterministic — no RNG — so failures reproduce exactly.

#ifndef PGHIVE_DATAGEN_EVOLUTION_H_
#define PGHIVE_DATAGEN_EVOLUTION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "graph/mutations.h"

namespace pghive {

struct EvolutionScenario {
  std::string name;
  std::vector<MutationBatch> stream;
};

/// The scenario names above, in a stable order.
std::vector<std::string> EvolutionScenarioNames();

/// Builds one scenario by name; InvalidArgument for an unknown name.
Result<EvolutionScenario> MakeEvolutionScenario(const std::string& name);

/// All scenarios, in EvolutionScenarioNames() order.
std::vector<EvolutionScenario> AllEvolutionScenarios();

/// A steady-state mutation stream for benchmarking: `num_batches` batches
/// over a fixed type population; each batch inserts ~`per_batch` elements
/// and deletes/updates a slice of the PREVIOUS batch's inserts (first-batch
/// members are never touched). Per-batch work is constant, so mutation-
/// batch cost must stay flat as the stream grows — the micro_drift gate.
std::vector<MutationBatch> MakeSteadyMutationStream(size_t num_batches,
                                                    size_t per_batch);

}  // namespace pghive

#endif  // PGHIVE_DATAGEN_EVOLUTION_H_
