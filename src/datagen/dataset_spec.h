// Declarative dataset specifications for the synthetic benchmark graphs.
//
// Each of the paper's eight datasets (Table 2) is described by a
// DatasetSpec: the ground-truth node/edge types, their label sets, their
// property inventories (with per-property presence probabilities that create
// the multiple structural patterns per type the paper reports), endpoint
// types and target cardinalities for edges, and mixed-value-type "outlier"
// rates that drive the datatype-sampling experiment (Figure 8).

#ifndef PGHIVE_DATAGEN_DATASET_SPEC_H_
#define PGHIVE_DATAGEN_DATASET_SPEC_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/value.h"

namespace pghive {

/// Target cardinality class for an edge type; controls endpoint sampling so
/// the cardinality-inference experiment has ground truth to recover.
enum class CardinalityClass {
  kOneToOne,   // (1, 1)
  kManyToOne,  // (>1, 1): each source has one target, targets reused
  kOneToMany,  // (1, >1)
  kManyToMany, // (>1, >1)
};

const char* CardinalityClassName(CardinalityClass c);

/// One property of a type.
struct PropertySpec {
  std::string key;
  DataType type = DataType::kString;
  /// Probability an instance of the type carries this property at all
  /// (structural variation independent of injected noise). 1.0 = intrinsic
  /// mandatory property.
  double presence = 1.0;
  /// Probability a present value is generated with `outlier_type` instead of
  /// `type` (creates the heterogeneous value populations of ICIJ/CORD19/IYP
  /// that make sampled datatype inference err, Figure 8).
  double outlier_rate = 0.0;
  DataType outlier_type = DataType::kString;
};

/// Ground-truth node type.
struct NodeTypeSpec {
  std::string name;                // truth type id
  std::set<std::string> labels;    // label set written on instances
  std::vector<PropertySpec> properties;
  double weight = 1.0;             // relative share of nodes
};

/// Ground-truth edge type.
struct EdgeTypeSpec {
  std::string name;
  std::string label;               // edge label (empty = unlabeled type)
  std::vector<PropertySpec> properties;
  std::string source_type;         // NodeTypeSpec::name
  std::string target_type;
  double weight = 1.0;             // relative share of edges
  CardinalityClass cardinality = CardinalityClass::kManyToMany;
};

/// A complete dataset description.
struct DatasetSpec {
  std::string name;
  std::vector<NodeTypeSpec> node_types;
  std::vector<EdgeTypeSpec> edge_types;
  /// Element counts of the original dataset (Table 2), for reporting.
  size_t paper_nodes = 0;
  size_t paper_edges = 0;
  /// Default generated size (scaled-down, see DESIGN.md §1).
  size_t default_nodes = 4000;
  size_t default_edges = 8000;
  bool real = false;  // R/S column of Table 2

  /// Fails with InvalidArgument when the spec is inconsistent (duplicate
  /// type names, edges referencing unknown node types, bad probabilities).
  Status Validate() const;
};

}  // namespace pghive

#endif  // PGHIVE_DATAGEN_DATASET_SPEC_H_
