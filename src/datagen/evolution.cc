#include "datagen/evolution.h"

#include <cassert>
#include <utility>

#include "graph/value.h"

namespace pghive {

namespace {

/// Builds a mutation stream batch by batch, tracking the stream ids the
/// canonical apply order (drift::ApplyMutationBatch) will assign.
///
/// Discipline: within one batch, Update* calls must precede Add* calls of
/// the same kind — replacement elements are appended before plain inserts,
/// so ids are only predictable in that order (asserted).
class StreamBuilder {
 public:
  NodeId AddNode(std::set<std::string> labels,
                 std::map<std::string, Value> props) {
    added_nodes_ = true;
    NodeData d;
    d.labels = std::move(labels);
    d.properties = std::move(props);
    cur_.nodes.push_back(std::move(d));
    return next_node_++;
  }

  NodeId UpdateNode(NodeId old_id, std::set<std::string> labels,
                    std::map<std::string, Value> props) {
    assert(!added_nodes_ && "updates must precede adds within a batch");
    NodeUpdate u;
    u.id = old_id;
    u.data.labels = std::move(labels);
    u.data.properties = std::move(props);
    cur_.mutations.update_nodes.push_back(std::move(u));
    return next_node_++;
  }

  void DeleteNode(NodeId id) { cur_.mutations.delete_nodes.push_back(id); }

  EdgeId AddEdge(NodeId source, NodeId target, std::set<std::string> labels,
                 std::map<std::string, Value> props) {
    added_edges_ = true;
    EdgeData d;
    d.source = source;
    d.target = target;
    d.labels = std::move(labels);
    d.properties = std::move(props);
    cur_.edges.push_back(std::move(d));
    return next_edge_++;
  }

  EdgeId UpdateEdge(EdgeId old_id, NodeId source, NodeId target,
                    std::set<std::string> labels,
                    std::map<std::string, Value> props) {
    assert(!added_edges_ && "updates must precede adds within a batch");
    EdgeUpdate u;
    u.id = old_id;
    u.data.source = source;
    u.data.target = target;
    u.data.labels = std::move(labels);
    u.data.properties = std::move(props);
    cur_.mutations.update_edges.push_back(std::move(u));
    return next_edge_++;
  }

  void DeleteEdge(EdgeId id) { cur_.mutations.delete_edges.push_back(id); }

  void EndBatch() {
    stream_.push_back(std::move(cur_));
    cur_ = MutationBatch();
    added_nodes_ = added_edges_ = false;
  }

  std::vector<MutationBatch> Take() { return std::move(stream_); }

 private:
  MutationBatch cur_;
  std::vector<MutationBatch> stream_;
  NodeId next_node_ = 0;
  EdgeId next_edge_ = 0;
  bool added_nodes_ = false;
  bool added_edges_ = false;
};

using Props = std::map<std::string, Value>;

Props Person(int i) {
  return {{"p_name", Value::String("person-" + std::to_string(i))},
          {"p_age", Value::Int(20 + i % 50)}};
}

Props Device(int i) {
  return {{"d_mac", Value::String("mac-" + std::to_string(i))},
          {"d_os", Value::String(i % 2 == 0 ? "linux" : "bsd")}};
}

std::vector<MutationBatch> LabelChurnStream() {
  StreamBuilder b;
  // b0: steady Person/Device population + the doomed Legacy cohort.
  std::vector<NodeId> persons, legacy;
  for (int i = 0; i < 4; ++i) persons.push_back(b.AddNode({"Person"}, Person(i)));
  for (int i = 0; i < 3; ++i) b.AddNode({"Device"}, Device(i));
  for (int i = 0; i < 4; ++i) {
    legacy.push_back(
        b.AddNode({"Legacy"}, {{"lg_tag", Value::String("t" + std::to_string(i))},
                               {"lg_val", Value::Int(i)}}));
  }
  b.AddEdge(persons[0], persons[1], {"KNOWS"}, {{"k_since", Value::Int(2019)}});
  b.AddEdge(persons[2], persons[3], {"KNOWS"}, {{"k_since", Value::Int(2021)}});
  b.EndBatch();
  // b1: growth on every type.
  for (int i = 4; i < 6; ++i) persons.push_back(b.AddNode({"Person"}, Person(i)));
  std::vector<NodeId> legacy2;
  for (int i = 4; i < 6; ++i) {
    legacy2.push_back(
        b.AddNode({"Legacy"}, {{"lg_tag", Value::String("t" + std::to_string(i))},
                               {"lg_val", Value::Int(i)}}));
  }
  b.AddNode({"Device"}, Device(3));
  b.AddEdge(persons[4], persons[0], {"KNOWS"}, {{"k_since", Value::Int(2023)}});
  b.EndBatch();
  // b2: the newest Legacy members churn out first...
  for (NodeId id : legacy2) b.DeleteNode(id);
  b.EndBatch();
  // b3: ...then the whole cohort retires; Person keeps growing.
  for (NodeId id : legacy) b.DeleteNode(id);
  persons.push_back(b.AddNode({"Person"}, Person(6)));
  b.EndBatch();
  // b4: a new cohort appears.
  std::vector<NodeId> gadgets;
  for (int i = 0; i < 3; ++i) {
    gadgets.push_back(
        b.AddNode({"Gadget"}, {{"g_sku", Value::String("sku" + std::to_string(i))},
                               {"g_ver", Value::Int(i + 1)}}));
  }
  b.EndBatch();
  // b5: steady growth.
  NodeId transient = b.AddNode({"Person"}, Person(7));
  b.AddNode({"Gadget"}, {{"g_sku", Value::String("sku3")},
                         {"g_ver", Value::Int(4)}});
  b.AddEdge(persons[5], persons[1], {"KNOWS"}, {{"k_since", Value::Int(2024)}});
  b.EndBatch();
  // b6: an edge-free member churns (Person survives via its b0 members).
  b.DeleteNode(transient);
  b.EndBatch();
  // b7: quiet tail batch.
  b.AddNode({"Device"}, Device(4));
  b.EndBatch();
  return b.Take();
}

std::vector<MutationBatch> PropertyDeprecationStream() {
  StreamBuilder b;
  auto article = [](int i, bool views, bool legacy) {
    Props p{{"a_title", Value::String("a" + std::to_string(i))}};
    if (views) p["a_views"] = Value::Int(100 * i);
    if (legacy) p["a_legacy"] = Value::String("old" + std::to_string(i));
    return p;
  };
  // b0: a0 is the never-touched survivor carrying the final shape; a3 has
  // no a_views (so a_views starts OPTIONAL and later becomes MANDATORY).
  NodeId a0 = b.AddNode({"Article"}, article(0, true, false));
  NodeId a1 = b.AddNode({"Article"}, article(1, true, true));
  NodeId a2 = b.AddNode({"Article"}, article(2, true, true));
  NodeId a3 = b.AddNode({"Article"}, article(3, false, false));
  (void)a0;
  b.EndBatch();
  // b1: the deprecated shape still trickles in.
  NodeId a4 = b.AddNode({"Article"}, article(4, true, true));
  b.EndBatch();
  // b2-b4: update waves strip a_legacy; the no-views straggler churns out.
  b.UpdateNode(a1, {"Article"}, article(1, true, false));
  b.EndBatch();
  b.UpdateNode(a2, {"Article"}, article(2, true, false));
  b.DeleteNode(a3);
  b.EndBatch();
  b.UpdateNode(a4, {"Article"}, article(4, true, false));
  b.EndBatch();
  // b5: new members arrive already in the final shape.
  b.AddNode({"Article"}, article(5, true, false));
  b.EndBatch();
  return b.Take();
}

std::vector<MutationBatch> TypeSplitStream() {
  StreamBuilder b;
  auto media = [](int i) {
    return Props{{"m_title", Value::String("m" + std::to_string(i))},
                 {"m_format", Value::String(i % 2 == 0 ? "print" : "reel")}};
  };
  auto book = [](int i) {
    return Props{{"b_isbn", Value::String("isbn-" + std::to_string(i))},
                 {"b_pages", Value::Int(100 + i)}};
  };
  auto film = [](int i) {
    return Props{{"f_runtime", Value::Int(90 + i)},
                 {"f_rating", Value::Double(6.5 + 0.1 * i)}};
  };
  // b0: anchor population + the type that will split.
  b.AddNode({"Person"}, Person(0));
  b.AddNode({"Person"}, Person(1));
  std::vector<NodeId> medias;
  for (int i = 0; i < 6; ++i) medias.push_back(b.AddNode({"Media"}, media(i)));
  b.EndBatch();
  // b1: growth before the split.
  for (int i = 6; i < 8; ++i) medias.push_back(b.AddNode({"Media"}, media(i)));
  b.EndBatch();
  // b2: first half becomes Book.
  for (int i = 0; i < 4; ++i) b.UpdateNode(medias[i], {"Book"}, book(i));
  b.EndBatch();
  // b3: second half becomes Film — Media retires here.
  for (int i = 4; i < 8; ++i) b.UpdateNode(medias[i], {"Film"}, film(i));
  b.EndBatch();
  // b4: the successors keep growing.
  b.AddNode({"Book"}, book(8));
  b.AddNode({"Film"}, film(9));
  b.EndBatch();
  return b.Take();
}

std::vector<MutationBatch> TypeMergeStream() {
  StreamBuilder b;
  auto car = [](int i) {
    return Props{{"c_plate", Value::String("c" + std::to_string(i))},
                 {"c_seats", Value::Int(4 + i % 3)}};
  };
  auto truck = [](int i) {
    return Props{{"t_load", Value::Int(1000 * (i + 1))},
                 {"t_axles", Value::Int(2 + i % 2)}};
  };
  auto vehicle = [](int i) {
    return Props{{"v_vin", Value::String("vin-" + std::to_string(i))},
                 {"v_wheels", Value::Int(4 + 2 * (i % 3))}};
  };
  b.AddNode({"Person"}, Person(0));
  b.AddNode({"Person"}, Person(1));
  std::vector<NodeId> cars, trucks;
  for (int i = 0; i < 4; ++i) cars.push_back(b.AddNode({"Car"}, car(i)));
  for (int i = 0; i < 4; ++i) trucks.push_back(b.AddNode({"Truck"}, truck(i)));
  b.EndBatch();
  cars.push_back(b.AddNode({"Car"}, car(4)));
  trucks.push_back(b.AddNode({"Truck"}, truck(4)));
  b.EndBatch();
  // b2/b3: both types collapse into Vehicle, one wave each.
  for (size_t i = 0; i < cars.size(); ++i) {
    b.UpdateNode(cars[i], {"Vehicle"}, vehicle(static_cast<int>(i)));
  }
  b.EndBatch();
  for (size_t i = 0; i < trucks.size(); ++i) {
    b.UpdateNode(trucks[i], {"Vehicle"}, vehicle(static_cast<int>(10 + i)));
  }
  b.EndBatch();
  b.AddNode({"Vehicle"}, vehicle(20));
  b.EndBatch();
  return b.Take();
}

std::vector<MutationBatch> MixedStream() {
  StreamBuilder b;
  auto mixed = [](int i, bool dbl) {
    return Props{{"mx_key", Value::String("k" + std::to_string(i))},
                 {"mx_score", dbl ? Value::Double(0.5 + i)
                                  : Value::Int(10 * i)}};
  };
  // b0: Person anchors with KNOWS edges, a Mixed population (all-Int
  // scores) and the doomed Relic cohort.
  std::vector<NodeId> persons;
  for (int i = 0; i < 4; ++i) persons.push_back(b.AddNode({"Person"}, Person(i)));
  std::vector<NodeId> mixeds;
  for (int i = 0; i < 3; ++i) {
    mixeds.push_back(b.AddNode({"Mixed"}, mixed(i, false)));
  }
  std::vector<NodeId> relics;
  for (int i = 0; i < 3; ++i) {
    relics.push_back(
        b.AddNode({"Relic"}, {{"r_tag", Value::String("r" + std::to_string(i))}}));
  }
  b.AddEdge(persons[0], persons[1], {"KNOWS"}, {{"k_since", Value::Int(2018)}});
  b.AddEdge(persons[2], persons[3], {"KNOWS"}, {{"k_since", Value::Int(2020)}});
  b.EndBatch();
  // b1: a Double score widens mx_score; extra KNOWS edges push max_out to 3.
  NodeId dbl_node = b.AddNode({"Mixed"}, mixed(3, true));
  NodeId spare = b.AddNode({"Person"}, Person(4));
  EdgeId extra1 =
      b.AddEdge(persons[0], persons[2], {"KNOWS"}, {{"k_since", Value::Int(2022)}});
  EdgeId extra2 =
      b.AddEdge(persons[0], persons[3], {"KNOWS"}, {{"k_since", Value::Int(2023)}});
  b.EndBatch();
  // b2: the extra edges retract — cardinality downgrades.
  b.DeleteEdge(extra1);
  b.DeleteEdge(extra2);
  b.EndBatch();
  // b3: the only Double carrier retires — mx_score narrows back to Int.
  b.DeleteNode(dbl_node);
  b.EndBatch();
  // b4: the Relic cohort retires wholesale.
  for (NodeId id : relics) b.DeleteNode(id);
  b.EndBatch();
  // b5: an edge-free Person gains a new property via update.
  Props enriched = Person(4);
  enriched["p_email"] = Value::String("p4@example.org");
  b.UpdateNode(spare, {"Person"}, std::move(enriched));
  b.EndBatch();
  // b6: growth.
  NodeId p5 = b.AddNode({"Person"}, Person(5));
  b.AddEdge(p5, persons[0], {"KNOWS"}, {{"k_since", Value::Int(2025)}});
  b.EndBatch();
  // b7: quiet tail.
  b.AddNode({"Mixed"}, mixed(6, false));
  b.EndBatch();
  return b.Take();
}

}  // namespace

std::vector<std::string> EvolutionScenarioNames() {
  return {"label-churn", "property-deprecation", "type-split", "type-merge",
          "mixed"};
}

Result<EvolutionScenario> MakeEvolutionScenario(const std::string& name) {
  EvolutionScenario s;
  s.name = name;
  if (name == "label-churn") {
    s.stream = LabelChurnStream();
  } else if (name == "property-deprecation") {
    s.stream = PropertyDeprecationStream();
  } else if (name == "type-split") {
    s.stream = TypeSplitStream();
  } else if (name == "type-merge") {
    s.stream = TypeMergeStream();
  } else if (name == "mixed") {
    s.stream = MixedStream();
  } else {
    return Status::InvalidArgument("unknown evolution scenario '" + name +
                                   "' (try: label-churn, "
                                   "property-deprecation, type-split, "
                                   "type-merge, mixed)");
  }
  return s;
}

std::vector<EvolutionScenario> AllEvolutionScenarios() {
  std::vector<EvolutionScenario> all;
  for (const std::string& name : EvolutionScenarioNames()) {
    all.push_back(std::move(MakeEvolutionScenario(name)).value());
  }
  return all;
}

std::vector<MutationBatch> MakeSteadyMutationStream(size_t num_batches,
                                                    size_t per_batch) {
  StreamBuilder b;
  struct Pair {
    NodeId person;
    NodeId device;
    EdgeId owns;
  };
  std::vector<Pair> prev;
  int serial = 0;
  for (size_t batch = 0; batch < num_batches; ++batch) {
    // Mutate the PREVIOUS batch's inserts only (constant work per batch;
    // first-batch members are permanent, keeping every type alive).
    std::vector<Pair> kept;
    if (batch > 1) {
      for (size_t j = 0; j < prev.size(); ++j) {
        if (j % 2 == 0) {
          b.DeleteEdge(prev[j].owns);
          b.DeleteNode(prev[j].person);
          b.DeleteNode(prev[j].device);
        } else if (j % 4 == 1) {
          Props p{{"k_year", Value::Int(2000 + static_cast<int>(batch))}};
          prev[j].owns = b.UpdateEdge(prev[j].owns, prev[j].person,
                                      prev[j].device, {"OWNS"}, std::move(p));
          kept.push_back(prev[j]);
        } else {
          kept.push_back(prev[j]);
        }
      }
    } else if (batch == 1) {
      kept = prev;
    }
    std::vector<Pair> fresh;
    for (size_t j = 0; j < per_batch; ++j) {
      Pair p;
      p.person = b.AddNode({"Person"}, Person(serial));
      p.device = b.AddNode({"Device"}, Device(serial));
      p.owns = b.AddEdge(p.person, p.device, {"OWNS"},
                         {{"k_year", Value::Int(1990 + serial % 30)}});
      ++serial;
      fresh.push_back(p);
    }
    b.EndBatch();
    prev = std::move(fresh);
  }
  return b.Take();
}

}  // namespace pghive
