#include "eval/ranking.h"

#include <cmath>

#include "ml/stats.h"

namespace pghive {

double NemenyiQAlpha05(size_t k) {
  // Demsar (2006), Table 5(a): critical values for the two-tailed Nemenyi
  // test at alpha = 0.05 (already divided by sqrt(2)).
  static const double kTable[] = {0.0,   0.0,   1.960, 2.343, 2.569, 2.728,
                                  2.850, 2.949, 3.031, 3.102, 3.164};
  if (k < 2) return 0.0;
  if (k <= 10) return kTable[k];
  // Conservative extension for k > 10.
  return kTable[10] + 0.05 * static_cast<double>(k - 10);
}

bool RankingResult::SignificantlyDifferent(size_t i, size_t j) const {
  return std::abs(average_ranks[i] - average_ranks[j]) >= critical_difference;
}

Result<RankingResult> NemenyiAnalysis(
    const std::vector<std::string>& methods,
    const std::vector<std::vector<double>>& scores) {
  size_t k = methods.size();
  if (k < 2) return Status::InvalidArgument("need at least 2 methods");
  if (scores.empty()) return Status::InvalidArgument("no test cases");
  for (const auto& row : scores) {
    if (row.size() != k) {
      return Status::InvalidArgument("scores row does not match methods");
    }
  }
  size_t n = scores.size();

  RankingResult result;
  result.methods = methods;
  result.num_cases = n;
  result.average_ranks = AverageRanks(scores);

  // Friedman chi-square with the tie-agnostic classical formula.
  double sum_sq = 0.0;
  for (double r : result.average_ranks) sum_sq += r * r;
  double kd = static_cast<double>(k);
  double nd = static_cast<double>(n);
  result.friedman_chi2 =
      (12.0 * nd / (kd * (kd + 1.0))) *
      (sum_sq - kd * (kd + 1.0) * (kd + 1.0) / 4.0);

  result.critical_difference =
      NemenyiQAlpha05(k) * std::sqrt(kd * (kd + 1.0) / (6.0 * nd));
  return result;
}

}  // namespace pghive
