// Plain-text table / series rendering for the benchmark harnesses. Each
// bench prints the same rows/series its paper figure plots.

#ifndef PGHIVE_EVAL_REPORT_H_
#define PGHIVE_EVAL_REPORT_H_

#include <string>
#include <vector>

namespace pghive {

/// A simple column-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Renders with column widths fitted to content, space-separated.
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders an ASCII bar for a value in [0, 1] ("#####....." style), used to
/// make F1 series readable in terminal output.
std::string AsciiBar(double value, size_t width = 20);

/// Section banner ("== Figure 4: ... ==").
std::string Banner(const std::string& title);

}  // namespace pghive

#endif  // PGHIVE_EVAL_REPORT_H_
