#include "eval/ground_truth.h"

namespace pghive {

std::set<std::string> TrueNodeTypes(const PropertyGraph& g) {
  std::set<std::string> types;
  for (const auto& n : g.nodes()) {
    if (!n.truth_type.empty()) types.insert(n.truth_type);
  }
  return types;
}

std::set<std::string> TrueEdgeTypes(const PropertyGraph& g) {
  std::set<std::string> types;
  for (const auto& e : g.edges()) {
    if (!e.truth_type.empty()) types.insert(e.truth_type);
  }
  return types;
}

bool HasCompleteGroundTruth(const PropertyGraph& g) {
  for (const auto& n : g.nodes()) {
    if (n.truth_type.empty()) return false;
  }
  for (const auto& e : g.edges()) {
    if (e.truth_type.empty()) return false;
  }
  return true;
}

}  // namespace pghive
