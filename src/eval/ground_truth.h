// Ground-truth access for the evaluation harness.

#ifndef PGHIVE_EVAL_GROUND_TRUTH_H_
#define PGHIVE_EVAL_GROUND_TRUTH_H_

#include <set>
#include <string>

#include "graph/property_graph.h"

namespace pghive {

/// Distinct ground-truth node type names (empty annotations skipped).
std::set<std::string> TrueNodeTypes(const PropertyGraph& g);

/// Distinct ground-truth edge type names.
std::set<std::string> TrueEdgeTypes(const PropertyGraph& g);

/// True iff every node and edge carries a ground-truth annotation.
bool HasCompleteGroundTruth(const PropertyGraph& g);

}  // namespace pghive

#endif  // PGHIVE_EVAL_GROUND_TRUTH_H_
