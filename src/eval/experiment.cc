#include "eval/experiment.h"

#include <algorithm>

#include "common/timer.h"

namespace pghive {

const char* MethodName(Method m) {
  switch (m) {
    case Method::kPgHiveElsh:
      return "PG-HIVE-ELSH";
    case Method::kPgHiveMinHash:
      return "PG-HIVE-MinHash";
    case Method::kGmmSchema:
      return "GMMSchema";
    case Method::kSchemI:
      return "SchemI";
  }
  return "?";
}

const std::vector<Method>& AllMethods() {
  static const std::vector<Method> kMethods = {
      Method::kPgHiveElsh, Method::kPgHiveMinHash, Method::kGmmSchema,
      Method::kSchemI};
  return kMethods;
}

bool MethodSupportsLabelAvailability(Method m, double label_availability) {
  switch (m) {
    case Method::kPgHiveElsh:
    case Method::kPgHiveMinHash:
      return true;
    case Method::kGmmSchema:
    case Method::kSchemI:
      return label_availability >= 1.0;
  }
  return false;
}

Result<PropertyGraph> GenerateForExperiment(const DatasetSpec& spec,
                                            const ExperimentConfig& config) {
  GenerateOptions opt;
  opt.num_nodes = std::max<size_t>(
      spec.node_types.size(),
      static_cast<size_t>(spec.default_nodes * config.size_scale));
  opt.num_edges = std::max<size_t>(
      spec.edge_types.size(),
      static_cast<size_t>(spec.default_edges * config.size_scale));
  opt.seed = config.seed;
  return GenerateGraph(spec, opt);
}

ExperimentResult RunMethod(const PropertyGraph& g, Method method,
                           const ExperimentConfig& config) {
  ExperimentResult result;
  Timer timer;
  SchemaGraph schema;
  switch (method) {
    case Method::kPgHiveElsh:
    case Method::kPgHiveMinHash: {
      PipelineOptions opt = config.pipeline;
      opt.method = method == Method::kPgHiveElsh ? ClusteringMethod::kElsh
                                                 : ClusteringMethod::kMinHash;
      opt.post_process = false;  // Figure-5 boundary: type discovery only
      PgHivePipeline pipeline(opt);
      auto discovered = pipeline.DiscoverSchema(g);
      if (!discovered.ok()) {
        result.failure = discovered.status().ToString();
        return result;
      }
      schema = std::move(discovered).value();
      result.has_edge_types = true;
      break;
    }
    case Method::kGmmSchema: {
      auto discovered = RunGmmSchema(g, config.gmm);
      if (!discovered.ok()) {
        result.failure = discovered.status().ToString();
        return result;
      }
      schema = std::move(discovered).value();
      result.has_edge_types = false;
      break;
    }
    case Method::kSchemI: {
      auto discovered = RunSchemI(g, config.schemi);
      if (!discovered.ok()) {
        result.failure = discovered.status().ToString();
        return result;
      }
      schema = std::move(discovered).value();
      result.has_edge_types = true;
      break;
    }
  }
  result.seconds = timer.ElapsedSeconds();
  result.ran = true;
  result.node_types = schema.node_types.size();
  result.edge_types = schema.edge_types.size();
  result.node_f1 = MajorityF1Nodes(g, schema);
  if (result.has_edge_types) {
    result.edge_f1 = MajorityF1Edges(g, schema);
  }
  return result;
}

}  // namespace pghive
