#include "eval/f1.h"

#include <algorithm>
#include <unordered_map>

namespace pghive {

F1Result MajorityF1(const std::vector<std::vector<size_t>>& clusters,
                    const std::function<const std::string&(size_t)>& truth_of,
                    std::vector<PerTypeF1>* per_type) {
  F1Result result;
  result.clusters = clusters.size();

  // Majority true type per cluster.
  std::vector<std::string> majority(clusters.size());
  for (size_t c = 0; c < clusters.size(); ++c) {
    std::unordered_map<std::string, size_t> counts;
    for (size_t id : clusters[c]) {
      const std::string& t = truth_of(id);
      if (!t.empty()) ++counts[t];
    }
    size_t best = 0;
    for (const auto& [t, n] : counts) {
      // Deterministic tie-break on the type name.
      if (n > best || (n == best && (majority[c].empty() || t < majority[c]))) {
        best = n;
        majority[c] = t;
      }
    }
  }

  // Per-true-type tallies.
  struct Tally {
    size_t tp = 0;  // instances of t inside clusters with majority t
    size_t fp = 0;  // other instances inside clusters with majority t
    size_t fn = 0;  // instances of t inside clusters with other majority
  };
  std::unordered_map<std::string, Tally> tallies;
  size_t correct = 0;
  size_t total = 0;
  for (size_t c = 0; c < clusters.size(); ++c) {
    for (size_t id : clusters[c]) {
      const std::string& truth = truth_of(id);
      if (truth.empty()) continue;
      ++total;
      if (truth == majority[c]) {
        ++tallies[truth].tp;
        ++correct;
      } else {
        ++tallies[truth].fn;
        ++tallies[majority[c]].fp;
      }
    }
  }
  result.instances = total;
  result.accuracy = total ? static_cast<double>(correct) / total : 0.0;

  // Instance-weighted averages over true types.
  double p_sum = 0.0, r_sum = 0.0, f_sum = 0.0;
  size_t support_sum = 0;
  if (per_type) per_type->clear();
  for (const auto& [type, t] : tallies) {
    size_t support = t.tp + t.fn;
    if (support == 0) continue;
    double p = (t.tp + t.fp) ? static_cast<double>(t.tp) / (t.tp + t.fp) : 0.0;
    double r = static_cast<double>(t.tp) / support;
    double f = (p + r > 0) ? 2.0 * p * r / (p + r) : 0.0;
    p_sum += p * support;
    r_sum += r * support;
    f_sum += f * support;
    support_sum += support;
    if (per_type) {
      per_type->push_back({type, support, p, r, f});
    }
  }
  if (support_sum > 0) {
    result.precision = p_sum / support_sum;
    result.recall = r_sum / support_sum;
    result.f1 = f_sum / support_sum;
  }
  if (per_type) {
    std::sort(per_type->begin(), per_type->end(),
              [](const PerTypeF1& a, const PerTypeF1& b) {
                return a.support > b.support;
              });
  }
  return result;
}

F1Result MajorityF1Nodes(const PropertyGraph& g, const SchemaGraph& schema,
                         std::vector<PerTypeF1>* per_type) {
  std::vector<std::vector<size_t>> clusters;
  clusters.reserve(schema.node_types.size());
  for (const auto& t : schema.node_types) {
    clusters.emplace_back(t.instances.begin(), t.instances.end());
  }
  return MajorityF1(
      clusters,
      [&](size_t id) -> const std::string& { return g.node(id).truth_type; },
      per_type);
}

F1Result MajorityF1Edges(const PropertyGraph& g, const SchemaGraph& schema,
                         std::vector<PerTypeF1>* per_type) {
  std::vector<std::vector<size_t>> clusters;
  clusters.reserve(schema.edge_types.size());
  for (const auto& t : schema.edge_types) {
    clusters.emplace_back(t.instances.begin(), t.instances.end());
  }
  return MajorityF1(
      clusters,
      [&](size_t id) -> const std::string& { return g.edge(id).truth_type; },
      per_type);
}

}  // namespace pghive
