// Friedman test and Nemenyi post-hoc analysis (Figure 3).
//
// Methods are ranked per test case by F1* (rank 1 = best); the Friedman
// statistic tests whether the methods differ at all, and the Nemenyi
// critical difference tells which average-rank gaps are significant at
// alpha = 0.05 (Demsar 2006; the paper uses the autorank package).

#ifndef PGHIVE_EVAL_RANKING_H_
#define PGHIVE_EVAL_RANKING_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace pghive {

struct RankingResult {
  std::vector<std::string> methods;
  std::vector<double> average_ranks;  // parallel to methods, 1 = best
  double friedman_chi2 = 0.0;
  double critical_difference = 0.0;   // Nemenyi CD at alpha = 0.05
  size_t num_cases = 0;

  /// True iff |rank_i - rank_j| >= CD (significant difference).
  bool SignificantlyDifferent(size_t i, size_t j) const;
};

/// `scores[case][method]` holds the F1* of each method per test case (higher
/// is better). Fails with InvalidArgument on ragged input, < 2 methods or
/// zero cases.
Result<RankingResult> NemenyiAnalysis(
    const std::vector<std::string>& methods,
    const std::vector<std::vector<double>>& scores);

/// Studentized-range quantile q_{0.05}(k) / sqrt(2) used by the Nemenyi CD
/// for k = 2..10 methods.
double NemenyiQAlpha05(size_t k);

}  // namespace pghive

#endif  // PGHIVE_EVAL_RANKING_H_
