// Majority-based F1* score (paper §5, "Evaluation metrics").
//
// Each discovered type (cluster) is assigned the majority ground-truth type
// of its members; an instance's placement is correct iff its true type
// matches its cluster's majority type. Per-true-type precision/recall/F1 are
// combined into an instance-weighted average — the F1*-score plotted in
// Figures 3, 4 and 6.

#ifndef PGHIVE_EVAL_F1_H_
#define PGHIVE_EVAL_F1_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/schema.h"
#include "graph/property_graph.h"

namespace pghive {

struct F1Result {
  double precision = 0.0;  // instance-weighted over true types
  double recall = 0.0;
  double f1 = 0.0;
  double accuracy = 0.0;   // micro: fraction of correctly placed instances
  size_t clusters = 0;     // number of discovered types evaluated
  size_t instances = 0;    // instances covered by the clusters
};

/// Per-type breakdown for diagnostics.
struct PerTypeF1 {
  std::string type;
  size_t support = 0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Evaluates an arbitrary clustering: `clusters[i]` lists instance ids and
/// `truth_of(id)` returns the ground-truth type of an instance. Ids with an
/// empty truth are ignored.
F1Result MajorityF1(const std::vector<std::vector<size_t>>& clusters,
                    const std::function<const std::string&(size_t)>& truth_of,
                    std::vector<PerTypeF1>* per_type = nullptr);

/// F1* over the node types of a discovered schema.
F1Result MajorityF1Nodes(const PropertyGraph& g, const SchemaGraph& schema,
                         std::vector<PerTypeF1>* per_type = nullptr);

/// F1* over the edge types of a discovered schema.
F1Result MajorityF1Edges(const PropertyGraph& g, const SchemaGraph& schema,
                         std::vector<PerTypeF1>* per_type = nullptr);

}  // namespace pghive

#endif  // PGHIVE_EVAL_F1_H_
