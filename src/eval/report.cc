#include "eval/report.h"

#include <algorithm>

namespace pghive {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += "  ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    // Trim trailing spaces.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = render_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out += std::string(total > 2 ? total - 2 : 0, '-') + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string AsciiBar(double value, size_t width) {
  value = std::clamp(value, 0.0, 1.0);
  size_t filled = static_cast<size_t>(value * static_cast<double>(width) + 0.5);
  std::string bar(filled, '#');
  bar.append(width - filled, '.');
  return bar;
}

std::string Banner(const std::string& title) {
  std::string line(title.size() + 6, '=');
  return line + "\n== " + title + " ==\n" + line + "\n";
}

}  // namespace pghive
