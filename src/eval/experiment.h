// Experiment runner: executes a schema-discovery method on a (dataset,
// noise, label-availability) case and measures quality + runtime. This is
// the engine behind Figures 3-7.

#ifndef PGHIVE_EVAL_EXPERIMENT_H_
#define PGHIVE_EVAL_EXPERIMENT_H_

#include <string>
#include <vector>

#include "baselines/gmm_schema.h"
#include "baselines/schemi.h"
#include "core/pipeline.h"
#include "datagen/datasets.h"
#include "datagen/generator.h"
#include "datagen/noise.h"
#include "eval/f1.h"

namespace pghive {

/// The four compared methods (paper §5 "Baselines").
enum class Method {
  kPgHiveElsh = 0,
  kPgHiveMinHash,
  kGmmSchema,
  kSchemI,
};

const char* MethodName(Method m);
const std::vector<Method>& AllMethods();

/// True when the method can run on a graph with the given label
/// availability (GMMSchema / SchemI need 100%).
bool MethodSupportsLabelAvailability(Method m, double label_availability);

struct ExperimentResult {
  bool ran = false;            // false when the method refused the input
  std::string failure;         // refusal reason when !ran
  F1Result node_f1;
  F1Result edge_f1;            // zero/empty for GMMSchema (nodes only)
  bool has_edge_types = false;
  double seconds = 0.0;        // time until type discovery (paper Fig. 5)
  size_t node_types = 0;
  size_t edge_types = 0;
};

/// Scale factor applied to every dataset's default size; lets benches trade
/// fidelity for runtime uniformly.
struct ExperimentConfig {
  double size_scale = 1.0;
  uint64_t seed = 2026;
  /// PG-HIVE pipeline template (method field overridden per run).
  PipelineOptions pipeline;
  GmmSchemaOptions gmm;
  SchemIOptions schemi;
};

/// Generates the (clean) graph of a spec at the configured scale.
Result<PropertyGraph> GenerateForExperiment(const DatasetSpec& spec,
                                            const ExperimentConfig& config);

/// Runs one method on an already-noised graph. Type discovery only (no
/// post-processing), matching the paper's Figure-5 timing boundary.
ExperimentResult RunMethod(const PropertyGraph& g, Method method,
                           const ExperimentConfig& config);

}  // namespace pghive

#endif  // PGHIVE_EVAL_EXPERIMENT_H_
