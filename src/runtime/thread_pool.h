// Fixed-size worker pool behind the task-parallel execution runtime.
//
// The pool owns N worker threads pulling std::function tasks off a single
// locked queue. It is a deliberately small substrate: all scheduling policy
// (chunking, ordering, exception routing, determinism) lives in the helpers
// of runtime/parallel.h, which submit plain tasks here. The paper ran these
// stages data-parallel on a 4-node Spark cluster; this pool is the
// single-process stand-in for that substrate.
//
// Thread-count resolution convention used across the code base:
//   n > 0   use exactly n threads,
//   n == 0  use the hardware concurrency.
// A resolved count of 1 means "sequential": callers skip pool creation
// entirely and run the original loops, so seeded behaviour is preserved
// bit-for-bit by construction.

#ifndef PGHIVE_RUNTIME_THREAD_POOL_H_
#define PGHIVE_RUNTIME_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace pghive {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Tasks must not throw across this boundary: the
  /// parallel helpers wrap user callables and capture exceptions into an
  /// std::exception_ptr that is rethrown on the calling thread.
  void Submit(std::function<void()> task);

  /// Number of concurrent hardware threads (>= 1 even when unknown).
  static int HardwareConcurrency();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;

  // Registry-owned instruments (pghive.runtime.*): queue depth tracks
  // submitted-but-not-started tasks; the latency histogram is only fed when
  // obs::MetricsEnabled() (it needs two clock reads per task).
  obs::Gauge* queue_depth_;
  obs::Counter* tasks_total_;
  obs::Histogram* task_seconds_;
};

/// Applies the thread-count convention: n > 0 -> n, n == 0 -> hardware.
int ResolveThreadCount(int requested);

/// Reads the PGHIVE_THREADS environment variable (the CLI fallback when no
/// --threads flag is given). Returns `fallback` when unset or unparsable;
/// "0" means hardware concurrency, as everywhere else.
int ThreadCountFromEnv(int fallback);

}  // namespace pghive

#endif  // PGHIVE_RUNTIME_THREAD_POOL_H_
