// Chunked data-parallel helpers over a ThreadPool, with a deterministic
// ordered reduction.
//
// Determinism contract (relied on by the pipeline's 1-vs-N-thread
// invariant): work is split into chunks whose boundaries are a pure
// function of (n, grain) — never of the thread count — and
// ParallelReduceOrdered merges per-chunk partial results strictly in
// ascending chunk order on the calling thread. Running the same call with a
// null pool, a 1-thread pool or an 8-thread pool therefore performs the
// exact same sequence of merges on the exact same partials, so results are
// bit-identical regardless of parallelism. When the per-chunk fold and the
// merge compose to the plain left fold (true for every associative
// operation: list append, min/max, counter sums, type-lattice joins), the
// result also equals the straight sequential loop.
//
// Exceptions thrown by user callables are captured per chunk and the one
// from the lowest-indexed failing chunk is rethrown on the calling thread
// after all chunks finish.

#ifndef PGHIVE_RUNTIME_PARALLEL_H_
#define PGHIVE_RUNTIME_PARALLEL_H_

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <limits>
#include <mutex>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "runtime/thread_pool.h"

namespace pghive {

/// Default elements per chunk. Small enough to load-balance the pipeline's
/// per-element work (hashing, encoding), large enough that queue overhead
/// is negligible.
inline constexpr size_t kDefaultGrain = 256;

namespace runtime_internal {

/// Traced invocation of one chunk. The span costs one relaxed atomic
/// branch when tracing is off; attributes are only materialized when a
/// trace is actually being recorded.
template <typename Fn>
void RunChunk(Fn& fn, size_t chunk, size_t begin, size_t end) {
  obs::ScopedSpan span("runtime.chunk");
  if (span.recording()) {
    span.AddAttr("chunk", static_cast<uint64_t>(chunk));
    span.AddAttr("items", static_cast<uint64_t>(end - begin));
  }
  fn(chunk, begin, end);
}

/// Completion latch for one batch of chunk tasks; keeps the exception of
/// the lowest-indexed failing chunk so the rethrow is deterministic.
class TaskGroup {
 public:
  explicit TaskGroup(size_t total) : pending_(total) {}

  void Finish(size_t chunk_index, std::exception_ptr error) {
    std::lock_guard<std::mutex> lock(mu_);
    if (error && chunk_index < error_chunk_) {
      error_chunk_ = chunk_index;
      error_ = std::move(error);
    }
    if (--pending_ == 0) cv_.notify_all();
  }

  /// Blocks until every chunk finished, then rethrows the stored exception
  /// (if any) on the calling thread.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return pending_ == 0; });
    if (error_) std::rethrow_exception(error_);
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t pending_;
  size_t error_chunk_ = std::numeric_limits<size_t>::max();
  std::exception_ptr error_;
};

}  // namespace runtime_internal

/// Invokes fn(chunk_index, begin, end) for every chunk of [0, n), chunk c
/// covering [c*grain, min(n, (c+1)*grain)). Runs inline (in chunk order)
/// when `pool` is null or single-threaded; otherwise chunks run
/// concurrently and this call blocks until all complete.
template <typename Fn>
void ParallelForChunks(ThreadPool* pool, size_t n, size_t grain, Fn&& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const size_t num_chunks = (n + grain - 1) / grain;
  if (pool == nullptr || pool->num_threads() <= 1 || num_chunks == 1) {
    for (size_t c = 0; c < num_chunks; ++c) {
      runtime_internal::RunChunk(fn, c, c * grain,
                                 std::min(n, (c + 1) * grain));
    }
    return;
  }
  runtime_internal::TaskGroup group(num_chunks);
  for (size_t c = 0; c < num_chunks; ++c) {
    pool->Submit([&fn, &group, c, grain, n] {
      std::exception_ptr error;
      try {
        runtime_internal::RunChunk(fn, c, c * grain,
                                   std::min(n, (c + 1) * grain));
      } catch (...) {
        error = std::current_exception();
      }
      group.Finish(c, std::move(error));
    });
  }
  group.Wait();
}

/// Invokes fn(i) for every i in [0, n), exactly once each.
template <typename Fn>
void ParallelFor(ThreadPool* pool, size_t n, Fn&& fn,
                 size_t grain = kDefaultGrain) {
  ParallelForChunks(pool, n, grain,
                    [&fn](size_t /*chunk*/, size_t begin, size_t end) {
                      for (size_t i = begin; i < end; ++i) fn(i);
                    });
}

/// Maps fn over [0, n) into a vector with out[i] == fn(i); element order is
/// index order by construction (each slot is written by exactly one task).
/// The element type must be default-constructible.
template <typename Fn>
auto ParallelMap(ThreadPool* pool, size_t n, Fn&& fn,
                 size_t grain = kDefaultGrain)
    -> std::vector<std::decay_t<decltype(fn(size_t{0}))>> {
  std::vector<std::decay_t<decltype(fn(size_t{0}))>> out(n);
  ParallelFor(
      pool, n, [&fn, &out](size_t i) { out[i] = fn(i); }, grain);
  return out;
}

/// Deterministic ordered reduction: chunk_fn(begin, end) folds one chunk
/// into a partial (computed in parallel), then merge_fn(&acc, partial) is
/// applied in ascending chunk order on the calling thread, starting from
/// `init`. See the file comment for the determinism contract. The partial
/// type must be default-constructible.
template <typename Acc, typename ChunkFn, typename MergeFn>
Acc ParallelReduceOrdered(ThreadPool* pool, size_t n, Acc init,
                          ChunkFn&& chunk_fn, MergeFn&& merge_fn,
                          size_t grain = kDefaultGrain) {
  if (n == 0) return init;
  if (grain == 0) grain = 1;
  const size_t num_chunks = (n + grain - 1) / grain;
  using Partial = std::decay_t<decltype(chunk_fn(size_t{0}, size_t{0}))>;
  std::vector<Partial> partials(num_chunks);
  ParallelForChunks(pool, n, grain,
                    [&chunk_fn, &partials](size_t c, size_t begin,
                                           size_t end) {
                      partials[c] = chunk_fn(begin, end);
                    });
  Acc acc = std::move(init);
  for (auto& p : partials) merge_fn(&acc, std::move(p));
  return acc;
}

/// Deterministic per-shard fold: shard_fn(shard) builds one shard's partial
/// (shards run concurrently, one chunk each, so shard-count >
/// thread-count simply queues the excess), then merge_fn(&acc, shard,
/// std::move(partial)) is applied in ascending shard order on the calling
/// thread, starting from `init`. The shard index reaches the merge so
/// callers can keep per-shard provenance (e.g. shard-tagged accumulators).
/// Exceptions follow the ParallelForChunks contract: with grain 1 the chunk
/// index IS the shard index, so the lowest-indexed failing shard's
/// exception is the one rethrown here. The partial type must be
/// default-constructible.
template <typename Acc, typename ShardFn, typename MergeFn>
Acc ParallelShardFold(ThreadPool* pool, size_t num_shards, Acc init,
                      ShardFn&& shard_fn, MergeFn&& merge_fn) {
  if (num_shards == 0) return init;
  using Partial = std::decay_t<decltype(shard_fn(size_t{0}))>;
  std::vector<Partial> partials(num_shards);
  ParallelForChunks(pool, num_shards, /*grain=*/1,
                    [&shard_fn, &partials](size_t shard, size_t /*begin*/,
                                           size_t /*end*/) {
                      partials[shard] = shard_fn(shard);
                    });
  Acc acc = std::move(init);
  for (size_t shard = 0; shard < num_shards; ++shard) {
    merge_fn(&acc, shard, std::move(partials[shard]));
  }
  return acc;
}

}  // namespace pghive

#endif  // PGHIVE_RUNTIME_PARALLEL_H_
