#include "runtime/thread_pool.h"

#include <cstdlib>
#include <string>

#include "obs/trace.h"

namespace pghive {

ThreadPool::ThreadPool(int num_threads)
    : queue_depth_(obs::MetricsRegistry::Global().GetGauge(
          "pghive.runtime.queue_depth")),
      tasks_total_(obs::MetricsRegistry::Global().GetCounter(
          "pghive.runtime.tasks_total")),
      task_seconds_(obs::MetricsRegistry::Global().GetHistogram(
          "pghive.runtime.task_seconds")) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  queue_depth_->Add(1);
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain the queue before honouring shutdown so tasks submitted
      // before the destructor never get dropped.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    queue_depth_->Add(-1);
    tasks_total_->Add(1);
    if (obs::MetricsEnabled()) {
      const uint64_t start_ns = obs::TraceNowNs();
      task();
      task_seconds_->Observe(
          static_cast<double>(obs::TraceNowNs() - start_ns) * 1e-9);
    } else {
      task();
    }
  }
}

int ThreadPool::HardwareConcurrency() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int ResolveThreadCount(int requested) {
  if (requested > 0) return requested;
  return ThreadPool::HardwareConcurrency();
}

int ThreadCountFromEnv(int fallback) {
  const char* env = std::getenv("PGHIVE_THREADS");
  if (!env || *env == '\0') return fallback;
  char* end = nullptr;
  long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v < 0) return fallback;
  return static_cast<int>(v);
}

}  // namespace pghive
