// Tiny argument parser for the pghive CLI: positional arguments plus
// --flag / --flag=value / --flag value options.

#ifndef PGHIVE_CLI_ARGS_H_
#define PGHIVE_CLI_ARGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace pghive {

class Args {
 public:
  /// Parses argv[1..]; flags start with "--". "--k=v", "--k v" and bare
  /// "--k" (value "true") are accepted.
  static Args Parse(int argc, const char* const* argv);

  const std::vector<std::string>& positional() const { return positional_; }

  bool Has(const std::string& flag) const { return flags_.count(flag) > 0; }

  std::string GetString(const std::string& flag,
                        const std::string& fallback = "") const;
  double GetDouble(const std::string& flag, double fallback) const;
  int64_t GetInt(const std::string& flag, int64_t fallback) const;
  bool GetBool(const std::string& flag, bool fallback = false) const;

  /// Flags the program never consumed; used to report typos.
  std::vector<std::string> UnknownFlags(
      const std::vector<std::string>& known) const;

  /// Worker-thread count for the execution runtime: the --threads flag when
  /// present, else the PGHIVE_THREADS environment variable, else 1
  /// (sequential). 0 means "hardware concurrency"; negative values are
  /// rejected as InvalidArgument.
  Result<int> GetThreads() const;

  /// Signature-shard count for the sharded incremental Feed path: the
  /// --feed-shards flag when present, else the PGHIVE_FEED_SHARDS
  /// environment variable, else 1 (unsharded). Values < 1 or above
  /// ShardPlan::kMaxShards are rejected as InvalidArgument. Output-neutral:
  /// any accepted value yields a bit-identical schema.
  Result<int> GetFeedShards() const;

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> flags_;
};

}  // namespace pghive

#endif  // PGHIVE_CLI_ARGS_H_
