#include "cli/commands.h"

#include <csignal>
#include <cstdlib>
#include <chrono>
#include <iostream>
#include <sstream>
#include <thread>

#include <unordered_set>

#include "common/csv.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/deletions.h"
#include "core/incremental.h"
#include "drift/drift_tracker.h"
#include "core/label_alias.h"
#include "core/pipeline.h"
#include "core/schema_diff.h"
#include "core/shard_plan.h"
#include "core/pgschema_parser.h"
#include "core/schema_json.h"
#include "core/serialization.h"
#include "core/validation.h"
#include "datagen/datasets.h"
#include "datagen/generator.h"
#include "datagen/noise.h"
#include "eval/f1.h"
#include "graph/csv_io.h"
#include "graph/graph_stats.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "store/state_store.h"

namespace pghive {

namespace {

/// Where to export observability data after the command ran. Resolved from
/// --metrics-out / --trace-out, falling back to the PGHIVE_METRICS /
/// PGHIVE_TRACE environment variables (same meaning, for wrappers that
/// cannot edit the argv).
struct ObsConfig {
  std::string metrics_out;
  std::string trace_out;
  obs::MetricsFormat metrics_format = obs::MetricsFormat::kJsonl;
};

Result<ObsConfig> ConfigureObservability(const Args& args) {
  if (args.Has("log-level")) {
    LogLevel level = LogLevel::kWarning;
    const std::string name = args.GetString("log-level");
    if (!ParseLogLevel(name, &level)) {
      return Status::InvalidArgument("unknown --log-level '" + name +
                                     "' (debug|info|warning|error)");
    }
    SetLogLevel(level);
  }
  if (args.GetBool("log-json", false)) SetLogFormat(LogFormat::kJson);

  ObsConfig config;
  config.metrics_out = args.GetString("metrics-out");
  config.trace_out = args.GetString("trace-out");
  if (config.metrics_out.empty()) {
    if (const char* env = std::getenv("PGHIVE_METRICS")) {
      config.metrics_out = env;
    }
  }
  if (config.trace_out.empty()) {
    if (const char* env = std::getenv("PGHIVE_TRACE")) {
      config.trace_out = env;
    }
  }
  if (args.Has("metrics-format")) {
    PGHIVE_ASSIGN_OR_RETURN(
        config.metrics_format,
        obs::ParseMetricsFormat(args.GetString("metrics-format")));
  }
  // Either output turns full collection on: the metrics JSONL embeds
  // span_stats lines, so metrics-only still needs spans recorded.
  if (!config.metrics_out.empty() || !config.trace_out.empty()) {
    obs::SetMetricsEnabled(true);
    obs::Tracer::Global().SetEnabled(true);
  }
  return config;
}

/// Runs after the command, even when it failed (a trace of a failed run is
/// exactly what one wants to look at). The command's status wins; export
/// failures surface only when the command itself succeeded.
Status ExportObservability(const ObsConfig& config) {
  Status status = Status::OK();
  if (!config.metrics_out.empty()) {
    Status s = obs::WriteMetricsFile(config.metrics_out,
                                     config.metrics_format);
    if (status.ok()) status = s;
  }
  if (!config.trace_out.empty()) {
    Status s = obs::WriteChromeTrace(config.trace_out);
    if (status.ok()) status = s;
  }
  return status;
}

Result<PropertyGraph> LoadPrefix(const std::string& prefix) {
  auto g = LoadGraphCsv(prefix);
  if (!g.ok()) {
    return Status(g.status().code(),
                  "cannot load graph '" + prefix + "': " +
                      g.status().message());
  }
  return g;
}

// Applies a --aliases file (alias=canonical lines) to the loaded graph, so
// inconsistent label vocabularies integrate before discovery. When
// `applied` is non-null, the raw entries are recorded there (durable runs
// persist them in snapshots for provenance).
Status MaybeApplyAliases(
    const Args& args, PropertyGraph* g,
    std::vector<std::pair<std::string, std::string>>* applied = nullptr) {
  if (!args.Has("aliases")) return Status::OK();
  PGHIVE_ASSIGN_OR_RETURN(std::string text,
                          ReadFile(args.GetString("aliases")));
  PGHIVE_ASSIGN_OR_RETURN(AliasTable table, AliasTable::FromText(text));
  if (applied != nullptr) {
    applied->assign(table.entries().begin(), table.entries().end());
  }
  PGHIVE_ASSIGN_OR_RETURN(PropertyGraph aliased, ApplyAliases(*g, table));
  *g = std::move(aliased);
  return Status::OK();
}

Result<PipelineOptions> PipelineOptionsFromArgs(const Args& args) {
  PipelineOptions opt;
  std::string method = ToLower(args.GetString("method", "elsh"));
  if (method == "elsh") {
    opt.method = ClusteringMethod::kElsh;
  } else if (method == "minhash") {
    opt.method = ClusteringMethod::kMinHash;
  } else {
    return Status::InvalidArgument("unknown --method '" + method +
                                   "' (elsh|minhash)");
  }
  double theta = args.GetDouble("theta", 0.9);
  if (theta < 0.0 || theta > 1.0) {
    return Status::InvalidArgument("--theta must be in [0,1]");
  }
  opt.extraction.jaccard_threshold = theta;
  opt.post_process = !args.GetBool("no-post", false);
  opt.aggregate_post_process = !args.GetBool("no-aggregates", false);
  opt.datatypes.sample = args.GetBool("sample-datatypes", false);
  opt.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  PGHIVE_ASSIGN_OR_RETURN(opt.num_threads, args.GetThreads());
  PGHIVE_ASSIGN_OR_RETURN(opt.feed_shards, args.GetFeedShards());
  if (args.Has("bucket")) {
    opt.adaptive_parameters = false;
    opt.elsh.bucket_length = args.GetDouble("bucket", 1.0);
    opt.elsh.num_tables = static_cast<int>(args.GetInt("tables", 20));
  }
  return opt;
}

Result<SchemaGraph> DiscoverFromArgs(const Args& args,
                                     const PropertyGraph& g) {
  PGHIVE_ASSIGN_OR_RETURN(PipelineOptions opt, PipelineOptionsFromArgs(args));
  int64_t batches = args.GetInt("incremental", 0);
  const bool progress = args.GetBool("progress", false);
  if (batches > 1) {
    IncrementalOptions inc;
    inc.pipeline = opt;
    IncrementalDiscoverer discoverer(inc);
    const auto splits = SplitIntoBatches(g, static_cast<size_t>(batches));
    size_t fed = 0;
    for (const auto& batch : splits) {
      PGHIVE_RETURN_NOT_OK(discoverer.Feed(batch));
      ++fed;
      if (progress) {
        // Progress goes to stderr so --format json on stdout stays clean.
        std::cerr << "batch " << fed << "/" << splits.size() << "  nodes="
                  << batch.num_nodes() << " edges=" << batch.num_edges()
                  << "  types=" << discoverer.schema().node_types.size()
                  << "n/" << discoverer.schema().edge_types.size() << "e  "
                  << FormatDouble(discoverer.batch_seconds().back(), 3)
                  << "s\n";
      }
    }
    return discoverer.Finish(g);
  }
  PgHivePipeline pipeline(opt);
  return pipeline.DiscoverSchema(g);
}

void PrintSchemaSummary(const SchemaGraph& schema, const PropertyGraph& g,
                        std::ostream& out) {
  out << "discovered " << SchemaSummary(schema) << "\n\n";
  for (const auto& t : schema.node_types) {
    out << "node type " << t.name << "  instances=" << t.instances.size()
        << "\n";
    for (const auto& [key, c] : t.constraints) {
      out << "    " << key << " " << DataTypeName(c.type)
          << (c.mandatory ? " MANDATORY" : " OPTIONAL") << "\n";
    }
  }
  for (const auto& t : schema.edge_types) {
    out << "edge type " << t.name << "  (" << Join(t.source_labels, "|")
        << ")->(" << Join(t.target_labels, "|") << ")  cardinality "
        << SchemaCardinalityName(t.cardinality)
        << "  instances=" << t.instances.size() << "\n";
  }
  // Report quality when the input carries ground truth.
  F1Result node_f1 = MajorityF1Nodes(g, schema);
  if (node_f1.instances > 0) {
    F1Result edge_f1 = MajorityF1Edges(g, schema);
    out << "\nground truth present: node F1*=" << FormatDouble(node_f1.f1, 3)
        << " edge F1*=" << FormatDouble(edge_f1.f1, 3) << "\n";
  }
}

/// Shared by `discover --state-dir` and `resume`: opens (recovering if
/// needed) the durable store, feeds the graph's not-yet-applied stream
/// batches, and finishes. The batch count must match across runs of the
/// same state directory, or the stream slicing diverges.
Result<SchemaGraph> DurableDiscoverFromArgs(const Args& args,
                                            const PropertyGraph& g,
                                            const std::string& state_dir,
                                            std::ostream& out) {
  store::StoreOptions sopt;
  PGHIVE_ASSIGN_OR_RETURN(sopt.incremental.pipeline,
                          PipelineOptionsFromArgs(args));
  int64_t batches = args.GetInt("incremental", 10);
  if (batches < 1) {
    return Status::InvalidArgument(
        "--state-dir requires --incremental N with N >= 1");
  }
  sopt.checkpoint_every_batches =
      static_cast<uint64_t>(args.GetInt("checkpoint-every", 16));
  sopt.fsync = !args.GetBool("no-fsync", false);
  sopt.allow_options_mismatch = args.GetBool("force-options", false);
  if (args.Has("aliases")) {
    PGHIVE_ASSIGN_OR_RETURN(std::string text,
                            ReadFile(args.GetString("aliases")));
    PGHIVE_ASSIGN_OR_RETURN(AliasTable table, AliasTable::FromText(text));
    sopt.aliases.assign(table.entries().begin(), table.entries().end());
  }

  store::RecoveryReport report;
  PGHIVE_ASSIGN_OR_RETURN(
      std::unique_ptr<store::DurableDiscoverer> store,
      store::DurableDiscoverer::OpenOrRecover(state_dir, sopt, &report));
  out << "state: " << report.ToString() << "\n";

  std::vector<store::BatchPayload> payloads =
      store::MakeStreamBatches(g, static_cast<size_t>(batches));
  if (store->batches_applied() > payloads.size()) {
    return Status::FailedPrecondition(
        "state directory contains " +
        std::to_string(store->batches_applied()) +
        " applied batches but the input splits into only " +
        std::to_string(payloads.size()) +
        " — wrong graph or --incremental count?");
  }
  const bool progress = args.GetBool("progress", false);
  for (size_t i = store->batches_applied(); i < payloads.size(); ++i) {
    PGHIVE_RETURN_NOT_OK(store->Feed(payloads[i]));
    if (progress) {
      std::cerr << "batch " << store->batches_applied() << "/"
                << payloads.size() << "  types="
                << store->schema().node_types.size() << "n/"
                << store->schema().edge_types.size() << "e  "
                << FormatDouble(store->batch_seconds().back(), 3) << "s\n";
    }
  }
  out << "applied " << store->batches_applied() << "/" << payloads.size()
      << " batches, state in " << store->dir() << "\n";
  return store->Finish();
}

/// Parses a --deletions file: one `node <id>` or `edge <id>` per line,
/// blank lines and `#` comments ignored.
Status ParseDeletionsFile(const std::string& path,
                          std::unordered_set<NodeId>* nodes,
                          std::unordered_set<EdgeId>* edges) {
  PGHIVE_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  std::istringstream in(text);
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string kind;
    if (!(fields >> kind)) continue;  // blank / comment-only line
    uint64_t id = 0;
    if ((kind != "node" && kind != "edge") || !(fields >> id)) {
      return Status::InvalidArgument(
          path + ":" + std::to_string(lineno) +
          ": expected 'node <id>' or 'edge <id>', got '" + line + "'");
    }
    (kind == "node" ? nodes : edges)->insert(id);
  }
  return Status::OK();
}

}  // namespace

Status CmdDiscover(const Args& args, std::ostream& out) {
  if (args.positional().size() < 2) {
    return Status::InvalidArgument(
        "usage: pghive discover <graph-prefix> [--method elsh|minhash] "
        "[--theta 0.9] [--incremental N] [--state-dir DIR] "
        "[--checkpoint-every N] [--no-fsync] [--force-options] "
        "[--format summary|pgschema|xsd|json] [--mode strict|loose] "
        "[--deletions file (post-hoc `node <id>`/`edge <id>` lines; not "
        "with --state-dir)] "
        "[--save-schema file.json] [--aliases aliases.txt] [--no-post] "
        "[--no-aggregates (rescan post-processing instead of delta "
        "aggregates)] "
        "[--sample-datatypes] [--seed N] [--bucket B --tables T] "
        "[--threads N (0 = all cores; PGHIVE_THREADS env fallback)] "
        "[--feed-shards N (signature shards per feed batch; output is "
        "byte-identical at any value; PGHIVE_FEED_SHARDS env fallback)] "
        "[--metrics-out m.jsonl] [--trace-out trace.json] [--progress] "
        "[--log-level debug|info|warning|error] [--log-json]");
  }
  PGHIVE_ASSIGN_OR_RETURN(PropertyGraph g, LoadPrefix(args.positional()[1]));
  PGHIVE_RETURN_NOT_OK(MaybeApplyAliases(args, &g));
  SchemaGraph schema;
  if (args.Has("state-dir")) {
    if (args.Has("deletions")) {
      // Durable feeds reorder edges into stream batches, so the schema's
      // edge ids no longer match the input CSV's — a post-hoc deletion file
      // would name the wrong elements. Durable runs retract through the
      // journaled mutation path instead.
      return Status::InvalidArgument(
          "--deletions does not combine with --state-dir; durable runs "
          "apply deletions as journaled mutation batches (see src/drift/)");
    }
    PGHIVE_ASSIGN_OR_RETURN(
        schema,
        DurableDiscoverFromArgs(args, g, args.GetString("state-dir"), out));
  } else {
    PGHIVE_ASSIGN_OR_RETURN(schema, DiscoverFromArgs(args, g));
  }

  if (args.Has("deletions")) {
    std::unordered_set<NodeId> del_nodes;
    std::unordered_set<EdgeId> del_edges;
    PGHIVE_RETURN_NOT_OK(ParseDeletionsFile(args.GetString("deletions"),
                                            &del_nodes, &del_edges));
    const DeletionStats stats =
        ApplyDeletions(g, del_nodes, del_edges, DeletionOptions{}, &schema);
    out << "deletions: removed " << stats.nodes_removed << " node(s)/"
        << stats.edges_removed << " edge(s), dropped "
        << stats.node_types_dropped << " node type(s)/"
        << stats.edge_types_dropped << " edge type(s), retired "
        << stats.properties_retired << " property key(s)\n";
  }

  if (args.Has("save-schema")) {
    const std::string path = args.GetString("save-schema");
    PGHIVE_RETURN_NOT_OK(SaveSchemaJson(schema, path));
    out << "saved schema to " << path << "\n";
  }

  std::string format = ToLower(args.GetString("format", "summary"));
  std::string mode_str = ToLower(args.GetString("mode", "strict"));
  PgSchemaMode mode =
      mode_str == "loose" ? PgSchemaMode::kLoose : PgSchemaMode::kStrict;
  if (format == "summary") {
    PrintSchemaSummary(schema, g, out);
  } else if (format == "pgschema") {
    out << ToPgSchema(schema, args.positional()[1], mode);
  } else if (format == "xsd") {
    out << ToXsd(schema);
  } else if (format == "json") {
    out << SchemaToJson(schema);
  } else {
    return Status::InvalidArgument("unknown --format '" + format +
                                   "' (summary|pgschema|xsd|json)");
  }
  return Status::OK();
}

Status CmdResume(const Args& args, std::ostream& out) {
  if (args.positional().size() < 2 || !args.Has("state-dir")) {
    return Status::InvalidArgument(
        "usage: pghive resume <graph-prefix> --state-dir DIR "
        "[discovery flags as passed to the original `discover` run]\n"
        "recovers the durable state (replaying any journaled batches a "
        "crash left unapplied), feeds the remaining batches of the graph "
        "and finishes the schema. Discovery options and --incremental "
        "count must match the original run.");
  }
  PGHIVE_ASSIGN_OR_RETURN(PropertyGraph g, LoadPrefix(args.positional()[1]));
  PGHIVE_RETURN_NOT_OK(MaybeApplyAliases(args, &g));
  PGHIVE_ASSIGN_OR_RETURN(
      SchemaGraph schema,
      DurableDiscoverFromArgs(args, g, args.GetString("state-dir"), out));

  if (args.Has("save-schema")) {
    const std::string path = args.GetString("save-schema");
    PGHIVE_RETURN_NOT_OK(SaveSchemaJson(schema, path));
    out << "saved schema to " << path << "\n";
  }
  std::string format = ToLower(args.GetString("format", "summary"));
  if (format == "summary") {
    PrintSchemaSummary(schema, g, out);
  } else if (format == "json") {
    out << SchemaToJson(schema);
  } else if (format == "pgschema") {
    out << ToPgSchema(schema, args.positional()[1], PgSchemaMode::kStrict);
  } else {
    return Status::InvalidArgument("unknown --format '" + format +
                                   "' (summary|pgschema|json)");
  }
  return Status::OK();
}

Status CmdInspectState(const Args& args, std::ostream& out) {
  if (args.positional().size() < 2) {
    return Status::InvalidArgument(
        "usage: pghive inspect-state <state-dir>\n"
        "reports every snapshot (per-section sizes and CRC verdicts) and "
        "journal segment (record counts, torn tails) of a durable state "
        "directory without modifying it.");
  }
  const std::string& dir = args.positional()[1];
  const std::vector<std::string> snapshots = store::ListSnapshotFiles(dir);
  const std::vector<std::string> journals = store::ListJournalFiles(dir);
  if (snapshots.empty() && journals.empty()) {
    out << "no durable state in '" << dir << "'\n";
    return Status::OK();
  }

  // One scan feeds both the report and the metrics registry, so this text
  // and a --metrics-out export of the same invocation cannot disagree.
  const store::StateDirMetrics metrics = store::CollectStateDirMetrics(dir);
  store::PublishStateDirMetrics(metrics);
  out << metrics.ToString() << "\n";

  for (const std::string& path : snapshots) {
    PGHIVE_ASSIGN_OR_RETURN(std::string bytes, ReadFile(path));
    out << "snapshot " << path << "  (" << bytes.size() << " bytes)\n";
    Result<store::SnapshotInfo> info = store::InspectSnapshot(bytes);
    if (!info.ok()) {
      out << "  unreadable: " << info.status().message() << "\n";
      continue;
    }
    out << "  format version " << info->format_version << ", header "
        << (info->header_ok ? "ok" : "CORRUPT") << "\n";
    for (const auto& s : info->sections) {
      out << "  section " << s.name << "  size=" << s.size << "  crc="
          << (s.crc_ok ? "ok" : "MISMATCH") << "\n";
    }
    Result<store::StoreSnapshot> snap = store::DecodeSnapshot(bytes);
    if (snap.ok()) {
      out << "  applied_batches=" << snap->applied_batches << "  graph="
          << snap->graph.num_nodes() << " nodes/" << snap->graph.num_edges()
          << " edges  schema=" << snap->schema.node_types.size()
          << " node types/" << snap->schema.edge_types.size()
          << " edge types\n"
          << "  options: " << snap->options_summary << "\n";
      if (snap->shard_plan_fingerprint != 0) {
        char fp[24];
        std::snprintf(
            fp, sizeof(fp), "%016llx",
            static_cast<unsigned long long>(snap->shard_plan_fingerprint));
        out << "  shard plan: feed_shards=" << snap->feed_shards
            << "  fingerprint=" << fp << "\n";
        if (snap->feed_shards > 1) {
          // Per-shard instance counts, reconstructed from the persisted
          // graph under the persisted layout — shows how evenly the
          // signature hash spreads this dataset across feed shards.
          const ShardPlan plan(static_cast<int>(snap->feed_shards));
          const GraphSymbols& sym = snap->graph.symbols();
          std::vector<uint64_t> node_counts(plan.num_shards(), 0);
          std::vector<uint64_t> edge_counts(plan.num_shards(), 0);
          for (size_t i = 0; i < snap->graph.num_nodes(); ++i) {
            ++node_counts[plan.ShardOf(sym.node_signatures.shard_key(
                snap->graph.node(i).signature))];
          }
          for (size_t i = 0; i < snap->graph.num_edges(); ++i) {
            ++edge_counts[plan.ShardOf(sym.edge_signatures.shard_key(
                snap->graph.edge(i).signature))];
          }
          for (size_t s = 0; s < plan.num_shards(); ++s) {
            out << "    shard " << s << ": " << node_counts[s]
                << " node instance(s), " << edge_counts[s]
                << " edge instance(s)\n";
          }
        }
      } else {
        out << "  shard plan: none (pre-shard snapshot)\n";
      }
    } else {
      out << "  not loadable: " << snap.status().message() << "\n";
    }
  }

  for (const std::string& path : journals) {
    out << "journal " << path << "\n";
    Result<store::JournalReadResult> read = store::ReadJournalSegment(path);
    if (!read.ok()) {
      out << "  unreadable: " << read.status().message() << "\n";
      continue;
    }
    out << "  " << read->records.size() << " record(s)";
    if (!read->records.empty()) {
      out << "  batches " << read->records.front().batch_id << ".."
          << read->records.back().batch_id;
    }
    out << "\n";
    if (read->torn_tail) {
      out << "  torn tail: " << read->tail_error
          << " (recovery truncates to " << read->valid_bytes << " bytes)\n";
    }
  }
  return Status::OK();
}

Status CmdDrift(const Args& args, std::ostream& out) {
  if (args.positional().size() < 2) {
    return Status::InvalidArgument(
        "usage: pghive drift <state-dir> [--since N] [--format summary|json]\n"
        "reports the versioned schema-drift history of a durable state\n"
        "directory as of its newest checkpoint: cumulative counters plus\n"
        "the per-epoch diff records a mutation stream produced. --since N\n"
        "filters the history to epochs > N. Read-only (batches journaled\n"
        "after the last checkpoint are not included — a live daemon serves\n"
        "them at GET /v1/graphs/{g}/drift).");
  }
  const std::string& dir = args.positional()[1];
  const std::vector<std::string> snapshots = store::ListSnapshotFiles(dir);
  if (snapshots.empty()) {
    return Status::NotFound("no snapshot in '" + dir + "'");
  }
  PGHIVE_ASSIGN_OR_RETURN(std::string bytes, ReadFile(snapshots.front()));
  PGHIVE_ASSIGN_OR_RETURN(store::StoreSnapshot snap,
                          store::DecodeSnapshot(bytes));
  if (!snap.has_drift) {
    return Status::NotFound(
        "'" + snapshots.front() +
        "' carries no drift history (pre-v4 snapshot, or the run had drift "
        "tracking off)");
  }
  drift::DriftTracker tracker;
  PGHIVE_RETURN_NOT_OK(tracker.Restore(snap.drift_history));
  const auto since = static_cast<uint64_t>(args.GetInt("since", 0));
  const std::string format = ToLower(args.GetString("format", "summary"));
  if (format == "json") {
    out << drift::DriftToJson(tracker, since).Dump() << "\n";
    return Status::OK();
  }
  if (format != "summary") {
    return Status::InvalidArgument("unknown --format '" + format +
                                   "' (summary|json)");
  }
  const drift::DriftCounters& c = tracker.counters();
  out << "drift history of " << snapshots.front() << " (epoch "
      << tracker.last_epoch() << ")\n"
      << "epochs observed:  " << c.epochs_observed << " (" << c.epochs_changed
      << " with schema changes)\n"
      << "node types:       +" << c.node_types_added << " / -"
      << c.node_types_retired << "\n"
      << "edge types:       +" << c.edge_types_added << " / -"
      << c.edge_types_retired << "\n"
      << "properties:       +" << c.properties_added << " / -"
      << c.properties_removed << "\n"
      << "constraints:      " << c.properties_became_mandatory
      << " became mandatory, " << c.properties_became_optional
      << " became optional\n"
      << "datatype changes: " << c.datatypes_changed << "\n"
      << "cardinality:      " << c.cardinality_changes << " change(s)\n";
  size_t shown = 0;
  for (const drift::DriftRecord& rec : tracker.history()) {
    if (rec.epoch <= since) continue;
    out << "\nepoch " << rec.epoch << ":\n" << rec.diff.ToString();
    ++shown;
  }
  if (shown == 0) out << "\nno recorded diffs after epoch " << since << "\n";
  return Status::OK();
}

Status CmdGenerate(const Args& args, std::ostream& out) {
  if (args.positional().size() < 3) {
    return Status::InvalidArgument(
        "usage: pghive generate <dataset> <output-prefix> [--nodes N] "
        "[--edges M] [--seed S] [--noise 0..1] [--labels 0..1]");
  }
  PGHIVE_ASSIGN_OR_RETURN(DatasetSpec spec,
                          DatasetSpecByName(args.positional()[1]));
  GenerateOptions gen;
  gen.num_nodes = static_cast<size_t>(args.GetInt("nodes", 0));
  gen.num_edges = static_cast<size_t>(args.GetInt("edges", 0));
  gen.seed = static_cast<uint64_t>(args.GetInt("seed", 1234));
  PGHIVE_ASSIGN_OR_RETURN(PropertyGraph g, GenerateGraph(spec, gen));

  double noise = args.GetDouble("noise", 0.0);
  double labels = args.GetDouble("labels", 1.0);
  if (noise > 0.0 || labels < 1.0) {
    NoiseOptions nopt;
    nopt.property_removal = noise;
    nopt.label_availability = labels;
    nopt.seed = gen.seed + 1;
    PGHIVE_ASSIGN_OR_RETURN(g, InjectNoise(g, nopt));
  }
  const std::string& prefix = args.positional()[2];
  PGHIVE_RETURN_NOT_OK(SaveGraphCsv(g, prefix));
  out << "wrote " << prefix << ".nodes.csv (" << g.num_nodes()
      << " nodes) and " << prefix << ".edges.csv (" << g.num_edges()
      << " edges)\n";
  return Status::OK();
}

Status CmdStats(const Args& args, std::ostream& out) {
  if (args.positional().size() < 2) {
    return Status::InvalidArgument("usage: pghive stats <graph-prefix>");
  }
  PGHIVE_ASSIGN_OR_RETURN(PropertyGraph g, LoadPrefix(args.positional()[1]));
  GraphStats s = ComputeGraphStats(g, args.positional()[1]);
  out << FormatStatsHeader() << "\n" << FormatStatsRow(s) << "\n";
  return Status::OK();
}

Status CmdValidate(const Args& args, std::ostream& out) {
  const bool from_file = args.Has("schema");
  if (args.positional().size() < (from_file ? 2u : 3u)) {
    return Status::InvalidArgument(
        "usage: pghive validate <schema-graph-prefix> <data-graph-prefix> "
        "[--strict] [--max-violations N], or pghive validate "
        "<data-graph-prefix> --schema <schema.json|schema.pgs> (saved by "
        "discover --save-schema, or a PG-Schema document)");
  }
  SchemaGraph schema;
  std::string data_prefix;
  if (from_file) {
    const std::string path = args.GetString("schema");
    if (EndsWith(path, ".pgs") || EndsWith(path, ".pgschema")) {
      PGHIVE_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
      PGHIVE_ASSIGN_OR_RETURN(ParsedPgSchema parsed, ParsePgSchema(text));
      schema = std::move(parsed.schema);
    } else {
      PGHIVE_ASSIGN_OR_RETURN(schema, LoadSchemaJson(path));
    }
    data_prefix = args.positional()[1];
  } else {
    PGHIVE_ASSIGN_OR_RETURN(PropertyGraph reference,
                            LoadPrefix(args.positional()[1]));
    PGHIVE_ASSIGN_OR_RETURN(schema, DiscoverFromArgs(args, reference));
    data_prefix = args.positional()[2];
  }
  PGHIVE_ASSIGN_OR_RETURN(PropertyGraph data, LoadPrefix(data_prefix));

  ValidationOptions vopt;
  vopt.mode = args.GetBool("strict", false) ? ValidationMode::kStrict
                                            : ValidationMode::kLoose;
  vopt.max_violations =
      static_cast<size_t>(args.GetInt("max-violations", 50));
  ValidationReport report = ValidateGraph(data, schema, vopt);
  out << report.Summary() << "\n";
  if (!report.valid()) {
    return Status::FailedPrecondition("validation found violations");
  }
  return Status::OK();
}

Status CmdDiff(const Args& args, std::ostream& out) {
  if (args.positional().size() < 3) {
    return Status::InvalidArgument(
        "usage: pghive diff <graph-prefix-a> <graph-prefix-b> "
        "(discovers both schemas and reports the drift a -> b)");
  }
  PGHIVE_ASSIGN_OR_RETURN(PropertyGraph a, LoadPrefix(args.positional()[1]));
  PGHIVE_ASSIGN_OR_RETURN(PropertyGraph b, LoadPrefix(args.positional()[2]));
  PGHIVE_ASSIGN_OR_RETURN(SchemaGraph sa, DiscoverFromArgs(args, a));
  PGHIVE_ASSIGN_OR_RETURN(SchemaGraph sb, DiscoverFromArgs(args, b));
  out << DiffSchemas(sa, sb).ToString();
  return Status::OK();
}

Status CmdDatasets(const Args&, std::ostream& out) {
  out << "built-in benchmark datasets (Table 2 of the paper):\n";
  for (const auto& spec : AllDatasetSpecs()) {
    out << "  " << spec.name << "  " << spec.node_types.size()
        << " node types, " << spec.edge_types.size() << " edge types, "
        << "defaults " << spec.default_nodes << " nodes / "
        << spec.default_edges << " edges  (original: "
        << WithThousands(spec.paper_nodes) << " / "
        << WithThousands(spec.paper_edges) << ")\n";
  }
  return Status::OK();
}

namespace {

// The serving daemon stop hook: SIGINT/SIGTERM handlers may only touch
// async-signal-safe state, and SchemaServer::RequestStop is a single
// write(2) to its self-pipe, so a plain global pointer suffices.
serve::SchemaServer* g_serving = nullptr;

void ServeSignalHandler(int) {
  if (g_serving != nullptr) g_serving->RequestStop();
}

Result<store::StoreOptions> StoreOptionsFromArgs(const Args& args) {
  store::StoreOptions sopt;
  PGHIVE_ASSIGN_OR_RETURN(sopt.incremental.pipeline,
                          PipelineOptionsFromArgs(args));
  sopt.checkpoint_every_batches =
      static_cast<uint64_t>(args.GetInt("checkpoint-every", 16));
  sopt.fsync = !args.GetBool("no-fsync", false);
  sopt.allow_options_mismatch = args.GetBool("force-options", false);
  return sopt;
}

/// Resolves the daemon port for the ingest client: --port wins, else
/// --port-file (written by `serve` — the rendezvous for --port 0 runs).
Result<uint16_t> IngestPortFromArgs(const Args& args) {
  if (args.Has("port")) {
    return static_cast<uint16_t>(args.GetInt("port", 0));
  }
  if (!args.Has("port-file")) {
    return Status::InvalidArgument("need --port or --port-file");
  }
  PGHIVE_ASSIGN_OR_RETURN(std::string text,
                          ReadFile(args.GetString("port-file")));
  const long port = std::strtol(std::string(Trim(text)).c_str(), nullptr, 10);
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument("port file '" +
                                   args.GetString("port-file") +
                                   "' does not contain a port");
  }
  return static_cast<uint16_t>(port);
}

}  // namespace

Status CmdServe(const Args& args, std::ostream& out) {
  if (args.positional().size() < 2) {
    return Status::InvalidArgument(
        "usage: pghive serve <name>=<state-dir> [<name2>=<dir2> ...] "
        "[--host 127.0.0.1] [--port 8090 (0 = ephemeral)] "
        "[--port-file FILE (write the bound port)] "
        "[--workers N (0 = all cores)] [--queue-capacity 64] "
        "[--retain-epochs 8] [--checkpoint-every N] [--no-fsync] "
        "[--alert-rules FILE (drift/metric alert rules, served at "
        "/v1/graphs/<name>/alerts)] "
        "[--access-log FILE (per-request JSONL)] "
        "[--metrics-format jsonl|prometheus (default GET /metrics format)] "
        "[--force-options] [discovery flags as for `discover`, incl. "
        "--feed-shards N for sharded ingest folds]\n"
        "hosts each state directory as /v1/graphs/<name>, ingesting batches "
        "over HTTP and serving epoch-snapshot schema reads until SIGINT/"
        "SIGTERM, then drains and checkpoints every graph.");
  }
  serve::ServeOptions sopt;
  sopt.host = args.GetString("host", "127.0.0.1");
  sopt.port = static_cast<uint16_t>(args.GetInt("port", 8090));
  sopt.num_workers = static_cast<int>(args.GetInt("workers", 0));
  sopt.graph.queue_capacity =
      static_cast<size_t>(args.GetInt("queue-capacity", 64));
  sopt.graph.retain_epochs =
      static_cast<size_t>(args.GetInt("retain-epochs", 8));
  sopt.graph.alert_rules_path = args.GetString("alert-rules");
  sopt.access_log_path = args.GetString("access-log");
  if (args.Has("metrics-format")) {
    PGHIVE_ASSIGN_OR_RETURN(
        sopt.metrics_format,
        obs::ParseMetricsFormat(args.GetString("metrics-format")));
  }
  PGHIVE_ASSIGN_OR_RETURN(sopt.graph.store, StoreOptionsFromArgs(args));

  serve::SchemaServer server(std::move(sopt));
  for (size_t i = 1; i < args.positional().size(); ++i) {
    const std::string& spec = args.positional()[i];
    const size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
      return Status::InvalidArgument("graph spec '" + spec +
                                     "' must be <name>=<state-dir>");
    }
    PGHIVE_RETURN_NOT_OK(
        server.AddGraph(spec.substr(0, eq), spec.substr(eq + 1)));
  }
  PGHIVE_RETURN_NOT_OK(server.Start());
  if (args.Has("port-file")) {
    PGHIVE_RETURN_NOT_OK(WriteFile(args.GetString("port-file"),
                                   std::to_string(server.port()) + "\n"));
  }
  out << "serving " << (args.positional().size() - 1) << " graph(s) on "
      << server.options().host << ":" << server.port() << "\n";
  out.flush();

  g_serving = &server;
  auto prev_int = std::signal(SIGINT, ServeSignalHandler);
  auto prev_term = std::signal(SIGTERM, ServeSignalHandler);
  const Status status = server.Wait();
  std::signal(SIGINT, prev_int);
  std::signal(SIGTERM, prev_term);
  g_serving = nullptr;

  out << "drained and checkpointed, exiting\n";
  return status;
}

Status CmdIngest(const Args& args, std::ostream& out) {
  if (args.positional().size() < 2 || !args.Has("graph")) {
    return Status::InvalidArgument(
        "usage: pghive ingest <graph-prefix> --graph NAME "
        "(--port P | --port-file FILE) [--host 127.0.0.1] "
        "[--incremental N (default 10; must match the discover run being "
        "compared against)] [--schema-out FILE (save the served schema "
        "body verbatim once every batch is applied)] "
        "[--timeout-seconds 120] [--aliases aliases.txt]\n"
        "slices the CSV graph with the same endpoint-closed stream slicing "
        "as `discover --incremental N --state-dir` and POSTs each batch to "
        "a running `pghive serve`, honouring 429 backpressure.");
  }
  const std::string graph_name = args.GetString("graph");
  const std::string host = args.GetString("host", "127.0.0.1");
  PGHIVE_ASSIGN_OR_RETURN(uint16_t port, IngestPortFromArgs(args));
  const int64_t batches = args.GetInt("incremental", 10);
  if (batches < 1) {
    return Status::InvalidArgument("--incremental must be >= 1");
  }
  const double timeout_seconds =
      args.GetDouble("timeout-seconds", 120.0);

  PGHIVE_ASSIGN_OR_RETURN(PropertyGraph g, LoadPrefix(args.positional()[1]));
  PGHIVE_RETURN_NOT_OK(MaybeApplyAliases(args, &g));
  const std::vector<store::BatchPayload> payloads =
      store::MakeStreamBatches(g, static_cast<size_t>(batches));

  const std::string target = "/v1/graphs/" + graph_name + "/batches";
  const Timer deadline;
  uint64_t last_batch_id = 0;
  for (size_t i = 0; i < payloads.size(); ++i) {
    const std::string body = serve::BatchToJson(payloads[i]).Dump();
    for (;;) {
      if (deadline.ElapsedSeconds() > timeout_seconds) {
        return Status::IoError("ingest timed out after " +
                               FormatDouble(timeout_seconds, 1) + "s");
      }
      PGHIVE_ASSIGN_OR_RETURN(
          serve::HttpResponse resp,
          serve::HttpCall(host, port, "POST", target, body,
                          "application/json"));
      if (resp.status == 202) {
        PGHIVE_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(resp.body));
        PGHIVE_ASSIGN_OR_RETURN(int64_t id, doc.GetInt("batch_id"));
        last_batch_id = static_cast<uint64_t>(id);
        break;
      }
      if (resp.status == 429) {
        // Backpressure: the daemon's queue is full. Retry-After is in
        // seconds but the writer drains in fractions of one, so poll at
        // 50ms against the overall deadline instead of sleeping it out.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;
      }
      return Status::IoError("batch " + std::to_string(i + 1) + "/" +
                             std::to_string(payloads.size()) +
                             " rejected: HTTP " +
                             std::to_string(resp.status) + " " + resp.body);
    }
  }

  // Admission is asynchronous; wait until the served epoch covers the last
  // admitted batch before declaring the stream applied.
  const std::string detail = "/v1/graphs/" + graph_name;
  uint64_t epoch = 0;
  for (;;) {
    PGHIVE_ASSIGN_OR_RETURN(serve::HttpResponse resp,
                            serve::HttpCall(host, port, "GET", detail));
    if (resp.status != 200) {
      return Status::IoError("GET " + detail + " failed: HTTP " +
                             std::to_string(resp.status));
    }
    PGHIVE_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(resp.body));
    PGHIVE_ASSIGN_OR_RETURN(int64_t e, doc.GetInt("epoch"));
    epoch = static_cast<uint64_t>(e);
    if (epoch >= last_batch_id) break;
    if (deadline.ElapsedSeconds() > timeout_seconds) {
      return Status::IoError("daemon did not apply batch " +
                             std::to_string(last_batch_id) + " within " +
                             FormatDouble(timeout_seconds, 1) + "s");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  out << "ingested " << payloads.size() << " batch(es) into '" << graph_name
      << "', epoch " << epoch << "\n";

  if (args.Has("schema-out")) {
    PGHIVE_ASSIGN_OR_RETURN(
        serve::HttpResponse resp,
        serve::HttpCall(host, port, "GET", detail + "/schema"));
    if (resp.status != 200) {
      return Status::IoError("GET " + detail + "/schema failed: HTTP " +
                             std::to_string(resp.status));
    }
    const std::string path = args.GetString("schema-out");
    PGHIVE_RETURN_NOT_OK(WriteFile(path, resp.body));
    out << "saved served schema (epoch " << resp.headers["x-pghive-epoch"]
        << ") to " << path << "\n";
  }
  return Status::OK();
}

std::string HelpText() {
  std::ostringstream out;
  out << "pghive — hybrid incremental schema discovery for property graphs\n"
      << "\n"
      << "commands:\n"
      << "  discover <prefix>            discover the schema of a CSV graph\n"
      << "                               (--state-dir DIR = durable run)\n"
      << "  resume <prefix>              continue a durable run after a\n"
      << "                               stop or crash (--state-dir DIR)\n"
      << "  inspect-state <dir>          report snapshots/journal health\n"
      << "  drift <dir>                  schema-drift history of a durable\n"
      << "                               run (counters + per-epoch diffs)\n"
      << "  generate <dataset> <prefix>  generate a benchmark graph as CSV\n"
      << "  stats <prefix>               structural statistics (Table 2)\n"
      << "  validate <ref> <data>        validate data against ref's schema\n"
      << "  diff <a> <b>                 schema drift between two graphs\n"
      << "  datasets                     list built-in dataset specs\n"
      << "  serve <name>=<state-dir>...  HTTP daemon: epoch-snapshot schema\n"
      << "                               reads + backpressured batch ingest\n"
      << "  ingest <prefix> --graph G    stream a CSV graph into a daemon\n"
      << "  help                         this text\n"
      << "\n"
      << "graphs are stored as <prefix>.nodes.csv / <prefix>.edges.csv\n"
      << "(see graph/csv_io.h for the dialect). Run a command without\n"
      << "arguments for its flags.\n"
      << "\n"
      << "observability (every command):\n"
      << "  --metrics-out FILE   write metrics + span aggregates\n"
      << "  --metrics-format F   jsonl (default) | prometheus — wire format\n"
      << "                       of --metrics-out and of the daemon's\n"
      << "                       GET /metrics\n"
      << "  --trace-out FILE     write a Chrome trace (chrome://tracing,\n"
      << "                       https://ui.perfetto.dev)\n"
      << "  --progress           per-batch progress lines on stderr\n"
      << "  --log-level LEVEL    debug|info|warning|error (default warning)\n"
      << "  --log-json           log records as JSON lines\n"
      << "  PGHIVE_METRICS / PGHIVE_TRACE env vars = the two --*-out flags\n"
      << "\n"
      << "parallelism (discover/resume/serve):\n"
      << "  --threads N          worker threads (0 = all cores;\n"
      << "                       PGHIVE_THREADS env fallback)\n"
      << "  --feed-shards N      signature shards per feed batch; output is\n"
      << "                       byte-identical at any shard/thread count\n"
      << "                       (PGHIVE_FEED_SHARDS env fallback)\n";
  return out.str();
}

namespace {

Status DispatchCommand(const Args& args, std::ostream& out) {
  const std::string& cmd = args.positional()[0];
  if (cmd == "discover") return CmdDiscover(args, out);
  if (cmd == "resume") return CmdResume(args, out);
  if (cmd == "inspect-state") return CmdInspectState(args, out);
  if (cmd == "drift") return CmdDrift(args, out);
  if (cmd == "generate") return CmdGenerate(args, out);
  if (cmd == "stats") return CmdStats(args, out);
  if (cmd == "validate") return CmdValidate(args, out);
  if (cmd == "diff") return CmdDiff(args, out);
  if (cmd == "datasets") return CmdDatasets(args, out);
  if (cmd == "serve") return CmdServe(args, out);
  if (cmd == "ingest") return CmdIngest(args, out);
  if (cmd == "help" || cmd == "--help") {
    out << HelpText();
    return Status::OK();
  }
  return Status::InvalidArgument("unknown command '" + cmd +
                                 "'; run `pghive help`");
}

}  // namespace

Status RunCliCommand(const Args& args, std::ostream& out) {
  if (args.positional().empty()) {
    out << HelpText();
    return Status::OK();
  }
  ObsConfig obs_config;
  PGHIVE_ASSIGN_OR_RETURN(obs_config, ConfigureObservability(args));
  Status status = DispatchCommand(args, out);
  Status exported = ExportObservability(obs_config);
  if (status.ok()) status = exported;
  return status;
}

}  // namespace pghive
