// The pghive command-line interface, as a testable library.
//
// Subcommands (see HelpText() for flags):
//   discover       CSV graph -> discovered schema (summary/PG-Schema/XSD);
//                  --state-dir makes the incremental run durable;
//                  --deletions applies a post-hoc deletion file (superseded
//                  by mutation streams for durable runs — see src/drift/)
//   resume         continue a durable run after a stop or crash
//   inspect-state  report snapshots/journal of a state directory
//   drift          report the schema-drift history of a state directory
//   generate       synthetic benchmark dataset -> CSV graph (+noise)
//   stats          Table-2-style statistics of a CSV graph
//   validate       validate one CSV graph against the schema of another
//   diff           schema drift between two CSV graphs
//   datasets       list the built-in benchmark dataset specs
//   serve          long-lived multi-graph schema-serving HTTP daemon
//   ingest         HTTP client: stream a CSV graph into a serving daemon
//
// Each command writes human-readable output to `out` and returns a Status;
// main() maps that to exit codes. Graphs are read/written in the
// graph/csv_io.h dialect (<prefix>.nodes.csv / <prefix>.edges.csv).

#ifndef PGHIVE_CLI_COMMANDS_H_
#define PGHIVE_CLI_COMMANDS_H_

#include <ostream>
#include <string>

#include "cli/args.h"
#include "common/status.h"

namespace pghive {

/// Top-level dispatch: args.positional()[0] selects the subcommand.
/// Returns InvalidArgument with usage info for unknown commands/flags.
Status RunCliCommand(const Args& args, std::ostream& out);

/// Full usage text.
std::string HelpText();

// Individual commands (exposed for unit tests).
Status CmdDiscover(const Args& args, std::ostream& out);
Status CmdResume(const Args& args, std::ostream& out);
Status CmdInspectState(const Args& args, std::ostream& out);
Status CmdDrift(const Args& args, std::ostream& out);
Status CmdGenerate(const Args& args, std::ostream& out);
Status CmdStats(const Args& args, std::ostream& out);
Status CmdValidate(const Args& args, std::ostream& out);
Status CmdDiff(const Args& args, std::ostream& out);
Status CmdDatasets(const Args& args, std::ostream& out);
Status CmdServe(const Args& args, std::ostream& out);
Status CmdIngest(const Args& args, std::ostream& out);

}  // namespace pghive

#endif  // PGHIVE_CLI_COMMANDS_H_
