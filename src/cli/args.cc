#include "cli/args.h"

#include <cstdlib>

#include "common/string_util.h"
#include "core/shard_plan.h"
#include "runtime/thread_pool.h"

namespace pghive {

Args Args::Parse(int argc, const char* const* argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      args.positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      args.flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--k v" when the next token is not itself a flag; bare "--k" = true.
    if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      args.flags_[body] = argv[++i];
    } else {
      args.flags_[body] = "true";
    }
  }
  return args;
}

std::string Args::GetString(const std::string& flag,
                            const std::string& fallback) const {
  auto it = flags_.find(flag);
  return it == flags_.end() ? fallback : it->second;
}

double Args::GetDouble(const std::string& flag, double fallback) const {
  auto it = flags_.find(flag);
  return it == flags_.end() ? fallback : std::atof(it->second.c_str());
}

int64_t Args::GetInt(const std::string& flag, int64_t fallback) const {
  auto it = flags_.find(flag);
  return it == flags_.end() ? fallback : std::atoll(it->second.c_str());
}

bool Args::GetBool(const std::string& flag, bool fallback) const {
  auto it = flags_.find(flag);
  if (it == flags_.end()) return fallback;
  return it->second != "false" && it->second != "0" && it->second != "no";
}

Result<int> Args::GetThreads() const {
  int64_t threads = GetInt("threads", ThreadCountFromEnv(/*fallback=*/1));
  if (threads < 0) {
    return Status::InvalidArgument(
        "--threads must be >= 0 (0 = hardware concurrency)");
  }
  return static_cast<int>(threads);
}

namespace {

int64_t FeedShardsFromEnv(int64_t fallback) {
  const char* v = std::getenv("PGHIVE_FEED_SHARDS");
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoll(v);
}

}  // namespace

Result<int> Args::GetFeedShards() const {
  int64_t shards = GetInt("feed-shards", FeedShardsFromEnv(/*fallback=*/1));
  if (shards < 1 || shards > ShardPlan::kMaxShards) {
    return Status::InvalidArgument(
        "--feed-shards must be in [1, " +
        std::to_string(ShardPlan::kMaxShards) + "]");
  }
  return static_cast<int>(shards);
}

std::vector<std::string> Args::UnknownFlags(
    const std::vector<std::string>& known) const {
  std::vector<std::string> unknown;
  for (const auto& [flag, value] : flags_) {
    bool found = false;
    for (const auto& k : known) {
      if (k == flag) {
        found = true;
        break;
      }
    }
    if (!found) unknown.push_back(flag);
  }
  return unknown;
}

}  // namespace pghive
