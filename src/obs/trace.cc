#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace pghive {
namespace obs {

std::atomic<bool> g_trace_enabled{false};

namespace {

// Per-thread nesting state. parent/depth describe the innermost *recording*
// span open on this thread.
thread_local uint64_t tls_current_span = 0;
thread_local uint32_t tls_depth = 0;

// The buffer this thread records into; registered with the tracer on first
// use and kept alive by the registry after thread exit.
std::shared_ptr<internal::ThreadSpanBuffer>& ThisThreadBuffer() {
  thread_local std::shared_ptr<internal::ThreadSpanBuffer> buffer =
      Tracer::Global().RegisterThreadBuffer();
  return buffer;
}

}  // namespace

uint64_t TraceNowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::SetEnabled(bool enabled) {
  g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

std::shared_ptr<internal::ThreadSpanBuffer> Tracer::RegisterThreadBuffer() {
  auto buffer = std::make_shared<internal::ThreadSpanBuffer>();
  std::lock_guard<std::mutex> lock(mu_);
  buffer->thread_index = next_thread_index_++;
  buffers_.push_back(buffer);
  return buffer;
}

std::vector<SpanEvent> Tracer::CollectSpans() const {
  std::vector<std::shared_ptr<internal::ThreadSpanBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
  }
  std::vector<SpanEvent> all;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    all.insert(all.end(), buffer->events.begin(), buffer->events.end());
  }
  std::sort(all.begin(), all.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.id < b.id;
            });
  return all;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->events.clear();
  }
  next_id_.store(1, std::memory_order_relaxed);
}

size_t Tracer::SpanCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    n += buffer->events.size();
  }
  return n;
}

void ScopedSpan::Begin(const char* name, double* out_seconds) {
  armed_ = true;
  name_ = name;
  out_seconds_ = out_seconds;
  recording_ = TraceEnabled();
  if (recording_) {
    id_ = Tracer::Global().NextSpanId();
    parent_ = tls_current_span;
    depth_ = tls_depth;
    tls_current_span = id_;
    ++tls_depth;
  }
  // Clock read last, so setup cost is excluded from the measured region.
  start_ns_ = TraceNowNs();
}

void ScopedSpan::End() {
  const uint64_t end_ns = TraceNowNs();
  const uint64_t dur_ns = end_ns > start_ns_ ? end_ns - start_ns_ : 0;
  if (out_seconds_ != nullptr) {
    *out_seconds_ = static_cast<double>(dur_ns) * 1e-9;
  }
  if (recording_) {
    tls_current_span = parent_;
    if (tls_depth > 0) --tls_depth;
    SpanEvent event;
    event.name = name_;
    event.id = id_;
    event.parent = parent_;
    event.depth = depth_;
    event.start_ns = start_ns_;
    event.dur_ns = dur_ns;
    event.attrs = std::move(attrs_);
    auto& buffer = ThisThreadBuffer();
    event.thread = buffer->thread_index;
    std::lock_guard<std::mutex> lock(buffer->mu);
    buffer->events.push_back(std::move(event));
  }
}

void EmitSpan(const char* name, uint64_t start_ns, uint64_t dur_ns,
              std::vector<std::pair<std::string, std::string>> attrs) {
  if (!TraceEnabled()) return;
  SpanEvent event;
  event.name = name;
  event.id = Tracer::Global().NextSpanId();
  event.parent = tls_current_span;
  event.depth = tls_current_span != 0 ? tls_depth : 0;
  event.start_ns = start_ns;
  event.dur_ns = dur_ns;
  event.attrs = std::move(attrs);
  auto& buffer = ThisThreadBuffer();
  event.thread = buffer->thread_index;
  std::lock_guard<std::mutex> lock(buffer->mu);
  buffer->events.push_back(std::move(event));
}

void ScopedSpan::AddAttr(const char* key, std::string value) {
  if (!recording_) return;
  attrs_.emplace_back(key, std::move(value));
}

void ScopedSpan::AddAttr(const char* key, uint64_t value) {
  if (!recording_) return;
  attrs_.emplace_back(key, std::to_string(value));
}

void ScopedSpan::AddAttr(const char* key, double value) {
  if (!recording_) return;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  attrs_.emplace_back(key, buf);
}

}  // namespace obs
}  // namespace pghive
