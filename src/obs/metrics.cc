#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace pghive {
namespace obs {

std::atomic<bool> g_metrics_enabled{false};

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

namespace internal {

size_t ShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local size_t index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

}  // namespace internal

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), shards_(kMetricShards) {
  std::sort(bounds_.begin(), bounds_.end());
  for (Shard& s : shards_) {
    s.buckets = std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
    s.min.store(std::numeric_limits<double>::infinity(),
                std::memory_order_relaxed);
    s.max.store(-std::numeric_limits<double>::infinity(),
                std::memory_order_relaxed);
  }
}

void Histogram::Observe(double value) {
  Shard& s = shards_[internal::ShardIndex() % kMetricShards];
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  s.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  internal::AtomicAddDouble(&s.sum, value);
  internal::AtomicMinDouble(&s.min, value);
  internal::AtomicMaxDouble(&s.max, value);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.buckets.assign(bounds_.size() + 1, 0);
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  for (const Shard& s : shards_) {
    for (size_t i = 0; i < s.buckets.size(); ++i) {
      snap.buckets[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
    snap.count += s.count.load(std::memory_order_relaxed);
    snap.sum += s.sum.load(std::memory_order_relaxed);
    min = std::min(min, s.min.load(std::memory_order_relaxed));
    max = std::max(max, s.max.load(std::memory_order_relaxed));
  }
  if (snap.count > 0) {
    snap.min = min;
    snap.max = max;
  }
  return snap;
}

void Histogram::Reset() {
  for (Shard& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0.0, std::memory_order_relaxed);
    s.min.store(std::numeric_limits<double>::infinity(),
                std::memory_order_relaxed);
    s.max.store(-std::numeric_limits<double>::infinity(),
                std::memory_order_relaxed);
  }
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  uint64_t cum = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cum + in_bucket) >= target) {
      // Interpolate within [lo, hi]; the open-ended extremes are clamped to
      // the observed min/max so quantiles never leave the data range.
      const double lo = i == 0 ? min : std::max(min, bounds[i - 1]);
      const double hi = i < bounds.size() ? std::min(max, bounds[i]) : max;
      const double into =
          (target - static_cast<double>(cum)) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::clamp(into, 0.0, 1.0);
    }
    cum += in_bucket;
  }
  return max;
}

const std::vector<double>& DefaultLatencyBoundsSeconds() {
  static const std::vector<double> kBounds = [] {
    std::vector<double> b;
    for (double decade = 1e-6; decade < 20.0; decade *= 10.0) {
      b.push_back(decade);
      b.push_back(2 * decade);
      b.push_back(5 * decade);
    }
    return b;
  }();
  return kBounds;
}

bool MetricNameFollowsConvention(const std::string& name) {
  static const char* kPrefix = "pghive.";
  if (name.compare(0, 7, kPrefix) != 0) return true;  // tests, embedders
  static const char* kLayers[] = {"runtime", "pipeline", "incremental",
                                  "aggregates", "store", "cli",
                                  "serve", "drift", "graph", "alerts"};
  const size_t layer_end = name.find('.', 7);
  if (layer_end == std::string::npos || layer_end + 1 >= name.size()) {
    return false;
  }
  const std::string layer = name.substr(7, layer_end - 7);
  for (const char* known : kLayers) {
    if (layer == known) return true;
  }
  return false;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  assert(MetricNameFollowsConvention(name) && "metric name breaks pghive.<layer>.<name> convention");
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  assert(MetricNameFollowsConvention(name) && "metric name breaks pghive.<layer>.<name> convention");
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  assert(MetricNameFollowsConvention(name) && "metric name breaks pghive.<layer>.<name> convention");
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(
        bounds.empty() ? DefaultLatencyBoundsSeconds() : bounds);
  }
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->Value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->Value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->Snapshot());
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace obs
}  // namespace pghive
