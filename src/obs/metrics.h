// Process-wide, thread-safe metrics registry: counters, gauges and
// fixed-boundary histograms.
//
// Hot-path writes are lock-free: counters and histograms keep per-thread
// shards (cache-line-padded relaxed atomics, threads hash onto a fixed
// shard array), merged only when a snapshot is read. Registration hands out
// stable pointers, so call sites cache them in a function-local static and
// pay one relaxed atomic add per update.
//
// Naming convention: `pghive.<layer>.<name>` with `<layer>` in {runtime,
// pipeline, incremental, aggregates, store, cli, serve, drift, graph,
// alerts}, seconds/bytes suffixes spelled out (`fsync_seconds`,
// `journal_bytes`), and optional instance suffixes after the base name
// (`pghive.serve.queue_depth.<graph>`). Debug builds assert the convention
// at registration (MetricNameFollowsConvention); names outside the
// `pghive.` prefix (tests, embedders) are exempt.
//
// MetricsEnabled() gates only the instruments whose *measurement* costs
// something (clock reads around task execution, fsync latency); plain
// counter/gauge updates are cheap enough to stay always-on.

#ifndef PGHIVE_OBS_METRICS_H_
#define PGHIVE_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace pghive {
namespace obs {

/// Number of write shards per counter/histogram. Threads map onto shards by
/// a sequential thread index, so up to kShards writers never contend.
inline constexpr size_t kMetricShards = 16;

namespace internal {

/// Sequential per-thread index (assigned on first use), folded onto the
/// shard array.
size_t ShardIndex();

/// fetch_add for atomic<double> via CAS (portable across libstdc++ levels).
inline void AtomicAddDouble(std::atomic<double>* a, double delta) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + delta,
                                   std::memory_order_relaxed)) {
  }
}

inline void AtomicMinDouble(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v < cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

inline void AtomicMaxDouble(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v > cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace internal

/// Gates measurement-bearing instrumentation (clock reads). Single relaxed
/// atomic load; set by the CLI when --metrics-out/--trace-out (or the
/// PGHIVE_METRICS/PGHIVE_TRACE environment variables) are present.
extern std::atomic<bool> g_metrics_enabled;
inline bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}
void SetMetricsEnabled(bool enabled);

/// Monotonically increasing event count (sharded, merged on read).
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    shards_[internal::ShardIndex() % kMetricShards].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  uint64_t Value() const;
  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  Shard shards_[kMetricShards];
};

/// Point-in-time signed value (queue depth, bytes on disk).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Merged view of a histogram at one instant; quantiles are interpolated
/// within the containing bucket.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // 0 when count == 0
  double max = 0.0;
  std::vector<double> bounds;     // upper bounds, ascending
  std::vector<uint64_t> buckets;  // bounds.size() + 1 (last = overflow)

  double Quantile(double q) const;
  double p50() const { return Quantile(0.50); }
  double p95() const { return Quantile(0.95); }
  double p99() const { return Quantile(0.99); }
};

/// Fixed-boundary histogram (sharded bucket counts, merged on read).
class Histogram {
 public:
  /// `bounds` are ascending upper bucket boundaries; a value lands in the
  /// first bucket whose bound is >= value, or the overflow bucket.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);
  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  struct alignas(64) Shard {
    std::vector<std::atomic<uint64_t>> buckets;
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{0.0};  // re-initialized to +inf in ctor
    std::atomic<double> max{0.0};  // re-initialized to -inf in ctor
  };

  std::vector<double> bounds_;
  std::vector<Shard> shards_;
};

/// 1-2-5 decades from 1us to 10s — the default for latency-in-seconds
/// histograms (task execution, fsync).
const std::vector<double>& DefaultLatencyBoundsSeconds();

/// True when `name` follows the registry convention above: either it does
/// not claim the `pghive.` prefix at all, or it is
/// `pghive.<known-layer>.<non-empty rest>`. Debug builds assert this on
/// every registration so a typo'd layer never ships silently.
bool MetricNameFollowsConvention(const std::string& name);

/// Everything the registry holds, merged, name-sorted (deterministic).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// Name -> metric registry. Get* registers on first use and returns a
/// pointer that stays valid for the process lifetime, so call sites do:
///
///   static obs::Counter* c =
///       obs::MetricsRegistry::Global().GetCounter("pghive.layer.name");
///   c->Add(n);
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// Empty `bounds` selects DefaultLatencyBoundsSeconds(). The bounds of
  /// the first registration win.
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& bounds = {});

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric without invalidating handed-out
  /// pointers (tests and bench reruns).
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace pghive

#endif  // PGHIVE_OBS_METRICS_H_
