#include "obs/alerts.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/csv.h"

namespace pghive {
namespace obs {

namespace {

const char* const kDriftEvents[] = {
    "type_added",        "type_retired",     "added_property",
    "removed_property",  "became_mandatory", "became_optional",
    "datatype_changed",  "cardinality_changed",
};

bool IsDriftEvent(const std::string& event) {
  for (const char* known : kDriftEvents) {
    if (event == known) return true;
  }
  return false;
}

bool IsComparisonOp(const std::string& op) {
  return op == ">" || op == ">=" || op == "<" || op == "<=" || op == "==" ||
         op == "!=";
}

bool Compare(double lhs, const std::string& op, double rhs) {
  if (op == ">") return lhs > rhs;
  if (op == ">=") return lhs >= rhs;
  if (op == "<") return lhs < rhs;
  if (op == "<=") return lhs <= rhs;
  if (op == "==") return lhs == rhs;
  return lhs != rhs;  // "!="
}

std::vector<std::string> SplitTokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

Status LineError(size_t line_no, const std::string& msg) {
  return Status::ParseError("alert rules line " + std::to_string(line_no) +
                            ": " + msg);
}

/// The property named by a datatype_changes entry ("age: Int->Double").
std::string DatatypeChangeProperty(const std::string& entry) {
  const size_t colon = entry.find(':');
  return colon == std::string::npos ? entry : entry.substr(0, colon);
}

/// One matched drift event, used for the state detail string.
struct DriftMatch {
  bool matched = false;
  std::string detail;
};

void Consider(DriftMatch* match, const AlertRule& rule,
              const std::string& type_name, const std::string& property,
              const std::string& detail) {
  if (match->matched) return;
  if (!GlobMatch(rule.type_glob, type_name)) return;
  if (!GlobMatch(rule.property_glob, property)) return;
  match->matched = true;
  match->detail = detail;
}

DriftMatch MatchDriftRule(const AlertRule& rule, const SchemaDiff& diff) {
  DriftMatch match;
  if (rule.event == "type_added" || rule.event == "type_retired") {
    const bool added = rule.event == "type_added";
    const auto& node_types =
        added ? diff.added_node_types : diff.removed_node_types;
    const auto& edge_types =
        added ? diff.added_edge_types : diff.removed_edge_types;
    const char* verb = added ? "added" : "retired";
    for (const std::string& name : node_types) {
      Consider(&match, rule, name, "",
               "node type " + name + " " + verb);
    }
    for (const std::string& name : edge_types) {
      Consider(&match, rule, name, "",
               "edge type " + name + " " + verb);
    }
    return match;
  }
  for (const TypeChange& tc : diff.changed_types) {
    if (rule.event == "added_property") {
      for (const std::string& p : tc.added_properties) {
        Consider(&match, rule, tc.name, p, tc.name + ": property " + p +
                                               " added");
      }
    } else if (rule.event == "removed_property") {
      for (const std::string& p : tc.removed_properties) {
        Consider(&match, rule, tc.name, p, tc.name + ": property " + p +
                                               " removed");
      }
    } else if (rule.event == "became_mandatory") {
      for (const std::string& p : tc.became_mandatory) {
        Consider(&match, rule, tc.name, p,
                 tc.name + ": " + p + " became mandatory");
      }
    } else if (rule.event == "became_optional") {
      for (const std::string& p : tc.became_optional) {
        Consider(&match, rule, tc.name, p,
                 tc.name + ": " + p + " became optional");
      }
    } else if (rule.event == "datatype_changed") {
      for (const std::string& entry : tc.datatype_changes) {
        Consider(&match, rule, tc.name, DatatypeChangeProperty(entry),
                 tc.name + ": datatype " + entry);
      }
    } else if (rule.event == "cardinality_changed") {
      if (!tc.cardinality_change.empty()) {
        Consider(&match, rule, tc.name, tc.cardinality_change,
                 tc.name + ": cardinality " + tc.cardinality_change);
      }
    }
    if (match.matched) break;
  }
  return match;
}

/// Looks up a metric rule's subject in the snapshot. Histogram stats are
/// addressed as `<histogram>.count|.sum|.p50|.p95|.p99`.
bool LookupMetric(const MetricsSnapshot& metrics, const std::string& name,
                  double* out) {
  for (const auto& [n, v] : metrics.counters) {
    if (n == name) {
      *out = static_cast<double>(v);
      return true;
    }
  }
  for (const auto& [n, v] : metrics.gauges) {
    if (n == name) {
      *out = static_cast<double>(v);
      return true;
    }
  }
  const size_t dot = name.rfind('.');
  if (dot == std::string::npos) return false;
  const std::string stem = name.substr(0, dot);
  const std::string stat = name.substr(dot + 1);
  for (const auto& [n, h] : metrics.histograms) {
    if (n != stem) continue;
    if (stat == "count") {
      *out = static_cast<double>(h.count);
    } else if (stat == "sum") {
      *out = h.sum;
    } else if (stat == "p50") {
      *out = h.p50();
    } else if (stat == "p95") {
      *out = h.p95();
    } else if (stat == "p99") {
      *out = h.p99();
    } else {
      return false;
    }
    return true;
  }
  return false;
}

std::string FormatThreshold(double v) {
  char buf[40];
  if (v == static_cast<double>(static_cast<long long>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%g", v);
  }
  return buf;
}

}  // namespace

bool GlobMatch(const std::string& pattern, const std::string& text) {
  // Iterative two-pointer match with single-star backtracking.
  size_t p = 0, t = 0;
  size_t star = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::string AlertRule::Spec() const {
  std::string out = "alert " + name;
  if (kind == AlertKind::kDrift) {
    out += " drift " + event;
    if (type_glob != "*") out += " type=" + type_glob;
    if (property_glob != "*") out += " property=" + property_glob;
    if (resolve_after != 1) {
      out += " resolve_after=" + std::to_string(resolve_after);
    }
  } else {
    out += " metric " + metric + " " + op + " " + FormatThreshold(threshold);
    if (resolve_after != 1) {
      out += " resolve_after=" + std::to_string(resolve_after);
    }
  }
  return out;
}

Result<std::vector<AlertRule>> ParseAlertRules(const std::string& text) {
  std::vector<AlertRule> rules;
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::vector<std::string> tokens = SplitTokens(line);
    if (tokens.empty()) continue;
    if (tokens[0] != "alert" || tokens.size() < 4) {
      return LineError(line_no,
                       "expected `alert <name> drift|metric ...`, got '" +
                           line + "'");
    }
    AlertRule rule;
    rule.name = tokens[1];
    for (const AlertRule& existing : rules) {
      if (existing.name == rule.name) {
        return LineError(line_no, "duplicate rule name '" + rule.name + "'");
      }
    }
    size_t next = 4;
    if (tokens[2] == "drift") {
      rule.kind = AlertKind::kDrift;
      rule.event = tokens[3];
      if (!IsDriftEvent(rule.event)) {
        return LineError(line_no, "unknown drift event '" + rule.event + "'");
      }
    } else if (tokens[2] == "metric") {
      rule.kind = AlertKind::kMetric;
      if (tokens.size() < 6) {
        return LineError(line_no,
                         "expected `metric <name> <op> <value>`");
      }
      rule.metric = tokens[3];
      rule.op = tokens[4];
      if (!IsComparisonOp(rule.op)) {
        return LineError(line_no, "unknown operator '" + rule.op + "'");
      }
      char* end = nullptr;
      rule.threshold = std::strtod(tokens[5].c_str(), &end);
      if (end == tokens[5].c_str() || *end != '\0') {
        return LineError(line_no,
                         "threshold '" + tokens[5] + "' is not a number");
      }
      next = 6;
    } else {
      return LineError(line_no, "unknown rule kind '" + tokens[2] +
                                    "' (expected drift or metric)");
    }
    for (size_t i = next; i < tokens.size(); ++i) {
      const size_t eq = tokens[i].find('=');
      if (eq == std::string::npos) {
        return LineError(line_no, "expected key=value, got '" + tokens[i] +
                                      "'");
      }
      const std::string key = tokens[i].substr(0, eq);
      const std::string value = tokens[i].substr(eq + 1);
      if (key == "type" && rule.kind == AlertKind::kDrift) {
        rule.type_glob = value;
      } else if (key == "property" && rule.kind == AlertKind::kDrift) {
        rule.property_glob = value;
      } else if (key == "resolve_after") {
        char* end = nullptr;
        const unsigned long long n = std::strtoull(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0' || n == 0) {
          return LineError(line_no, "resolve_after '" + value +
                                        "' is not a positive integer");
        }
        rule.resolve_after = static_cast<uint64_t>(n);
      } else {
        return LineError(line_no, "unknown option '" + key + "'");
      }
    }
    rules.push_back(std::move(rule));
  }
  return rules;
}

Result<std::vector<AlertRule>> LoadAlertRules(const std::string& path) {
  PGHIVE_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  auto rules = ParseAlertRules(text);
  if (!rules.ok()) {
    return Status(rules.status().code(),
                  path + ": " + rules.status().message());
  }
  return rules;
}

AlertEngine::AlertEngine(std::vector<AlertRule> rules)
    : rules_(std::move(rules)) {
  states_.resize(rules_.size());
  for (size_t i = 0; i < rules_.size(); ++i) {
    states_[i].rule = rules_[i].name;
  }
}

bool AlertEngine::ObserveEpoch(uint64_t epoch, const SchemaDiff* diff,
                               const MetricsSnapshot& metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  bool changed = false;
  for (size_t i = 0; i < rules_.size(); ++i) {
    const AlertRule& rule = rules_[i];
    if (rule.kind != AlertKind::kDrift) continue;
    AlertState& state = states_[i];
    DriftMatch match;
    if (diff != nullptr) match = MatchDriftRule(rule, *diff);
    if (match.matched) {
      state.last_match_epoch = epoch;
      state.last_detail = match.detail;
      if (!state.firing) {
        state.firing = true;
        state.fired_epoch = epoch;
        ++state.fire_count;
        changed = true;
      }
    } else if (state.firing &&
               epoch >= state.last_match_epoch + rule.resolve_after) {
      state.firing = false;
      state.resolved_epoch = epoch;
      changed = true;
    }
  }
  changed |= EvaluateMetricRulesLocked(epoch, metrics);
  return changed;
}

bool AlertEngine::EvaluateMetricRules(uint64_t epoch,
                                      const MetricsSnapshot& metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  return EvaluateMetricRulesLocked(epoch, metrics);
}

bool AlertEngine::EvaluateMetricRulesLocked(uint64_t epoch,
                                            const MetricsSnapshot& metrics) {
  bool changed = false;
  for (size_t i = 0; i < rules_.size(); ++i) {
    const AlertRule& rule = rules_[i];
    if (rule.kind != AlertKind::kMetric) continue;
    AlertState& state = states_[i];
    double value = 0.0;
    const bool held = LookupMetric(metrics, rule.metric, &value) &&
                      Compare(value, rule.op, rule.threshold);
    if (held) {
      state.last_match_epoch = epoch;
      state.last_detail =
          rule.metric + " = " + FormatThreshold(value) + " (" + rule.op +
          " " + FormatThreshold(rule.threshold) + ")";
      if (!state.firing) {
        state.firing = true;
        state.fired_epoch = epoch;
        ++state.fire_count;
        changed = true;
      }
    } else if (state.firing &&
               epoch >= state.last_match_epoch + rule.resolve_after) {
      state.firing = false;
      state.resolved_epoch = epoch;
      changed = true;
    }
  }
  return changed;
}

std::vector<AlertState> AlertEngine::States() const {
  std::lock_guard<std::mutex> lock(mu_);
  return states_;
}

std::vector<std::string> AlertEngine::FiringNames() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const AlertState& state : states_) {
      if (state.firing) names.push_back(state.rule);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

void AlertEngine::PublishGauges(const std::string& graph) const {
  auto& registry = MetricsRegistry::Global();
  int64_t firing = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < rules_.size(); ++i) {
    registry
        .GetGauge("pghive.alerts.state." + graph + "." + rules_[i].name)
        ->Set(states_[i].firing ? 1 : 0);
    if (states_[i].firing) ++firing;
  }
  registry.GetGauge("pghive.alerts.firing." + graph)->Set(firing);
  registry.GetGauge("pghive.alerts.rules." + graph)
      ->Set(static_cast<int64_t>(rules_.size()));
}

JsonValue AlertEngine::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonArray rules;
  int64_t firing = 0;
  for (size_t i = 0; i < rules_.size(); ++i) {
    const AlertRule& rule = rules_[i];
    const AlertState& state = states_[i];
    JsonObject entry;
    entry.emplace("name", rule.name);
    entry.emplace("kind",
                  rule.kind == AlertKind::kDrift ? "drift" : "metric");
    entry.emplace("spec", rule.Spec());
    entry.emplace("firing", state.firing);
    entry.emplace("fired_epoch", static_cast<int64_t>(state.fired_epoch));
    entry.emplace("resolved_epoch",
                  static_cast<int64_t>(state.resolved_epoch));
    entry.emplace("fire_count", static_cast<int64_t>(state.fire_count));
    entry.emplace("last_match_epoch",
                  static_cast<int64_t>(state.last_match_epoch));
    entry.emplace("last_detail", state.last_detail);
    rules.push_back(JsonValue(std::move(entry)));
    if (state.firing) ++firing;
  }
  JsonObject out;
  out.emplace("firing", firing);
  out.emplace("rules", JsonValue(std::move(rules)));
  return JsonValue(std::move(out));
}

std::string AlertEngine::SerializeState() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonArray states;
  for (const AlertState& state : states_) {
    JsonObject entry;
    entry.emplace("rule", state.rule);
    entry.emplace("firing", state.firing);
    entry.emplace("fired_epoch", static_cast<int64_t>(state.fired_epoch));
    entry.emplace("resolved_epoch",
                  static_cast<int64_t>(state.resolved_epoch));
    entry.emplace("fire_count", static_cast<int64_t>(state.fire_count));
    entry.emplace("last_match_epoch",
                  static_cast<int64_t>(state.last_match_epoch));
    entry.emplace("last_detail", state.last_detail);
    states.push_back(JsonValue(std::move(entry)));
  }
  JsonObject out;
  out.emplace("states", JsonValue(std::move(states)));
  out.emplace("version", 1);
  return JsonValue(std::move(out)).Dump();
}

Status AlertEngine::RestoreState(const std::string& json) {
  auto doc = ParseJson(json);
  if (!doc.ok()) return doc.status();
  const JsonValue& states = (*doc)["states"];
  if (!states.is_array()) {
    return Status::ParseError("alert state: missing states array");
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const JsonValue& entry : states.AsArray()) {
    const std::string rule = entry["rule"].AsString();
    for (size_t i = 0; i < rules_.size(); ++i) {
      if (rules_[i].name != rule) continue;
      AlertState& state = states_[i];
      state.firing = entry["firing"].AsBool();
      state.fired_epoch =
          static_cast<uint64_t>(entry["fired_epoch"].AsInt());
      state.resolved_epoch =
          static_cast<uint64_t>(entry["resolved_epoch"].AsInt());
      state.fire_count = static_cast<uint64_t>(entry["fire_count"].AsInt());
      state.last_match_epoch =
          static_cast<uint64_t>(entry["last_match_epoch"].AsInt());
      state.last_detail = entry["last_detail"].AsString();
      break;
    }
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace pghive
