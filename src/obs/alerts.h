// Declarative alert rules over schema-drift records and metric thresholds.
//
// Operators write a small rule file (one rule per line, `#` comments):
//
//   # fire when any property of any Person-like type becomes mandatory
//   alert person_mandatory drift became_mandatory type=Person* resolve_after=2
//   # fire when a node or edge type disappears from the schema
//   alert retired drift type_retired
//   # fire while the ingest queue for graph `pole` is deeper than 32
//   alert queue_deep metric pghive.serve.queue_depth.pole > 32
//
// Drift rules are evaluated at batch boundaries against the SchemaDiff the
// DriftTracker recorded for that epoch; metric rules are additionally
// re-evaluated at scrape time against a fresh registry snapshot. Each rule
// carries firing/resolved state: a drift rule fires on the epoch its event
// matches and resolves after `resolve_after` consecutive non-matching
// epochs (default 1); a metric rule fires while its predicate holds.
//
// Drift event names: type_added, type_retired, added_property,
// removed_property, became_mandatory, became_optional, datatype_changed,
// cardinality_changed. `type=` and `property=` accept `*`/`?` globs and
// default to `*`. Metric predicates name a registered counter or gauge —
// or a histogram with a `.count`, `.sum`, `.p50`, `.p95` or `.p99` suffix —
// with one of `> >= < <= == !=`; an unregistered metric never fires.
//
// The engine is thread-safe (one mutex): the serving daemon's writer thread
// calls ObserveEpoch while HTTP workers snapshot state and re-evaluate
// metric rules. State round-trips through JSON (SerializeState /
// RestoreState) so firing alerts survive a daemon restart.

#ifndef PGHIVE_OBS_ALERTS_H_
#define PGHIVE_OBS_ALERTS_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "common/status.h"
#include "core/schema_diff.h"
#include "obs/metrics.h"

namespace pghive {
namespace obs {

/// Which side of the system a rule predicates over.
enum class AlertKind {
  kDrift,   // SchemaDiff events at batch boundaries
  kMetric,  // counter/gauge/histogram-stat thresholds
};

/// One parsed rule line.
struct AlertRule {
  std::string name;
  AlertKind kind = AlertKind::kDrift;

  // Drift rules.
  std::string event;             // one of the documented event names
  std::string type_glob = "*";   // matched against the changed type's name
  std::string property_glob = "*";
  uint64_t resolve_after = 1;    // consecutive clean epochs before resolving

  // Metric rules.
  std::string metric;
  std::string op;                // > >= < <= == !=
  double threshold = 0.0;

  /// The rule re-rendered in file syntax (docs, /alerts endpoint).
  std::string Spec() const;
};

/// Firing/resolved state of one rule.
struct AlertState {
  std::string rule;
  bool firing = false;
  uint64_t fired_epoch = 0;       // epoch of the most recent fire transition
  uint64_t resolved_epoch = 0;    // epoch of the most recent resolve
  uint64_t fire_count = 0;        // total fire transitions
  uint64_t last_match_epoch = 0;  // epoch the predicate last matched
  std::string last_detail;        // e.g. "Person: age became mandatory"
};

/// Glob match with `*` (any run) and `?` (any one char); everything else
/// literal. Exposed for tests.
bool GlobMatch(const std::string& pattern, const std::string& text);

/// Parses a rule file body. Errors name the offending line.
Result<std::vector<AlertRule>> ParseAlertRules(const std::string& text);

/// Reads and parses a rule file from disk.
Result<std::vector<AlertRule>> LoadAlertRules(const std::string& path);

class AlertEngine {
 public:
  explicit AlertEngine(std::vector<AlertRule> rules);

  const std::vector<AlertRule>& rules() const { return rules_; }

  /// Batch-boundary evaluation: drift rules against `diff` (null = nothing
  /// changed this epoch, which still advances resolve counters) and metric
  /// rules against `metrics`. Returns true when any rule changed state —
  /// callers use that to wake long-pollers and persist state.
  bool ObserveEpoch(uint64_t epoch, const SchemaDiff* diff,
                    const MetricsSnapshot& metrics);

  /// Scrape-time evaluation of the metric rules only (drift state is owned
  /// by the batch boundary). Returns true when any rule changed state.
  bool EvaluateMetricRules(uint64_t epoch, const MetricsSnapshot& metrics);

  /// Current state per rule, in rule order.
  std::vector<AlertState> States() const;

  /// Names of currently-firing rules, sorted.
  std::vector<std::string> FiringNames() const;

  /// Publishes `pghive.alerts.*` gauges for this engine's graph:
  /// alerts.firing.<graph>, alerts.rules.<graph> and a 0/1
  /// alerts.state.<graph>.<rule> per rule.
  void PublishGauges(const std::string& graph) const;

  /// {"rules":[{name,kind,spec,firing,...}]} — the /alerts endpoint body.
  JsonValue ToJson() const;

  /// Persistence: deterministic JSON blob of per-rule state. RestoreState
  /// matches entries by rule name and ignores rules that no longer exist,
  /// so the rule file can change between runs.
  std::string SerializeState() const;
  Status RestoreState(const std::string& json);

 private:
  bool EvaluateMetricRulesLocked(uint64_t epoch,
                                 const MetricsSnapshot& metrics);

  std::vector<AlertRule> rules_;
  mutable std::mutex mu_;
  std::vector<AlertState> states_;  // parallel to rules_
};

}  // namespace obs
}  // namespace pghive

#endif  // PGHIVE_OBS_ALERTS_H_
