// Exporters for the observability layer.
//
// Two formats, one source of truth:
//
//  * JSONL — one JSON object per line, machine-diffable, the schema shared
//    by the CLI (--metrics-out), the bench harnesses and tests. Line kinds
//    (discriminated by "type"): "counter", "gauge", "histogram" (count /
//    sum / min / max / mean / p50 / p95 / p99), "span_stats" (per-span-name
//    count + total_seconds aggregates) and "span" (raw events).
//
//  * Chrome trace-event JSON — an array of complete ("ph":"X") duration
//    events, loadable in chrome://tracing or https://ui.perfetto.dev
//    (--trace-out).
//
//  * Prometheus text exposition (version 0.0.4) — counters, gauges and
//    histograms with CUMULATIVE `le` buckets, names sanitized to the
//    Prometheus charset (dots become underscores). Spans have no exposition
//    equivalent and are omitted. Selected with --metrics-format=prometheus
//    or `GET /metrics?format=prometheus`; JSONL stays the default and is
//    byte-compatible with every earlier release.

#ifndef PGHIVE_OBS_EXPORT_H_
#define PGHIVE_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pghive {
namespace obs {

/// One JSONL line in the shared metric schema: `fields` plus
/// "type": `type` and "name": `name`, keys sorted, no trailing newline.
/// Benches use this directly so every produced file diffs uniformly.
std::string JsonlLine(const std::string& type, const std::string& name,
                      JsonObject fields);

/// Renders a metrics snapshot plus span aggregates/events as JSONL
/// (counters, gauges, histograms, span_stats, then spans; each group
/// name-sorted or time-ordered). Deterministic given its inputs.
std::string MetricsToJsonl(const MetricsSnapshot& metrics,
                           const std::vector<SpanEvent>& spans);

/// Renders spans as a Chrome trace-event JSON array of "ph":"X" events.
std::string SpansToChromeTrace(const std::vector<SpanEvent>& spans);

/// Wire format for a metrics dump. kJsonl is the default everywhere a
/// format is optional.
enum class MetricsFormat {
  kJsonl,
  kPrometheus,
};

/// Parses "jsonl" / "prometheus" (ASCII case-insensitive). Errors on
/// anything else, naming the offending value.
Result<MetricsFormat> ParseMetricsFormat(const std::string& text);

/// MIME type for HTTP responses carrying the format. Prometheus requires
/// `text/plain; version=0.0.4`; JSONL is newline-delimited JSON.
const char* MetricsFormatContentType(MetricsFormat format);

/// Maps a registry metric name onto the Prometheus name charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`: every invalid byte becomes '_' and a
/// leading digit gets a '_' prefix. Empty input becomes "_".
std::string SanitizePrometheusName(const std::string& name);

/// Renders a metrics snapshot as Prometheus text exposition format 0.0.4:
/// `# TYPE` comment per family, counters as `<name>_total`, gauges bare,
/// histograms as cumulative `<name>_bucket{le="..."}` series (always ending
/// in le="+Inf") plus `<name>_sum` / `<name>_count`. Deterministic given
/// the (name-sorted) snapshot.
std::string MetricsToPrometheus(const MetricsSnapshot& metrics);

/// Snapshot the global registry + tracer and write the JSONL file.
Status WriteMetricsJsonl(const std::string& path);

/// Snapshot the global registry (+ tracer for JSONL) and write `path` in
/// the requested format.
Status WriteMetricsFile(const std::string& path, MetricsFormat format);

/// Collect the global tracer's spans and write the Chrome trace file.
Status WriteChromeTrace(const std::string& path);

}  // namespace obs
}  // namespace pghive

#endif  // PGHIVE_OBS_EXPORT_H_
