// Exporters for the observability layer.
//
// Two formats, one source of truth:
//
//  * JSONL — one JSON object per line, machine-diffable, the schema shared
//    by the CLI (--metrics-out), the bench harnesses and tests. Line kinds
//    (discriminated by "type"): "counter", "gauge", "histogram" (count /
//    sum / min / max / mean / p50 / p95 / p99), "span_stats" (per-span-name
//    count + total_seconds aggregates) and "span" (raw events).
//
//  * Chrome trace-event JSON — an array of complete ("ph":"X") duration
//    events, loadable in chrome://tracing or https://ui.perfetto.dev
//    (--trace-out).

#ifndef PGHIVE_OBS_EXPORT_H_
#define PGHIVE_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pghive {
namespace obs {

/// One JSONL line in the shared metric schema: `fields` plus
/// "type": `type` and "name": `name`, keys sorted, no trailing newline.
/// Benches use this directly so every produced file diffs uniformly.
std::string JsonlLine(const std::string& type, const std::string& name,
                      JsonObject fields);

/// Renders a metrics snapshot plus span aggregates/events as JSONL
/// (counters, gauges, histograms, span_stats, then spans; each group
/// name-sorted or time-ordered). Deterministic given its inputs.
std::string MetricsToJsonl(const MetricsSnapshot& metrics,
                           const std::vector<SpanEvent>& spans);

/// Renders spans as a Chrome trace-event JSON array of "ph":"X" events.
std::string SpansToChromeTrace(const std::vector<SpanEvent>& spans);

/// Snapshot the global registry + tracer and write the JSONL file.
Status WriteMetricsJsonl(const std::string& path);

/// Collect the global tracer's spans and write the Chrome trace file.
Status WriteChromeTrace(const std::string& path);

}  // namespace obs
}  // namespace pghive

#endif  // PGHIVE_OBS_EXPORT_H_
