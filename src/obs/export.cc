#include "obs/export.h"

#include <map>

#include "common/csv.h"

namespace pghive {
namespace obs {

namespace {

double NsToUs(uint64_t ns) { return static_cast<double>(ns) * 1e-3; }

JsonObject AttrsToJson(
    const std::vector<std::pair<std::string, std::string>>& attrs) {
  JsonObject args;
  for (const auto& [key, value] : attrs) args.emplace(key, value);
  return args;
}

}  // namespace

std::string JsonlLine(const std::string& type, const std::string& name,
                      JsonObject fields) {
  fields.emplace("type", type);
  fields.emplace("name", name);
  return JsonValue(std::move(fields)).Dump();
}

std::string MetricsToJsonl(const MetricsSnapshot& metrics,
                           const std::vector<SpanEvent>& spans) {
  std::string out;
  for (const auto& [name, value] : metrics.counters) {
    JsonObject fields;
    fields.emplace("value", static_cast<int64_t>(value));
    out += JsonlLine("counter", name, std::move(fields));
    out += '\n';
  }
  for (const auto& [name, value] : metrics.gauges) {
    JsonObject fields;
    fields.emplace("value", value);
    out += JsonlLine("gauge", name, std::move(fields));
    out += '\n';
  }
  for (const auto& [name, h] : metrics.histograms) {
    JsonObject fields;
    fields.emplace("count", static_cast<int64_t>(h.count));
    fields.emplace("sum", h.sum);
    fields.emplace("min", h.min);
    fields.emplace("max", h.max);
    fields.emplace("mean",
                   h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0);
    fields.emplace("p50", h.p50());
    fields.emplace("p95", h.p95());
    fields.emplace("p99", h.p99());
    out += JsonlLine("histogram", name, std::move(fields));
    out += '\n';
  }
  // Per-name aggregates first (what benches and the acceptance check read),
  // then the raw events.
  std::map<std::string, std::pair<uint64_t, uint64_t>> by_name;  // count, ns
  for (const SpanEvent& s : spans) {
    auto& [count, total_ns] = by_name[s.name];
    ++count;
    total_ns += s.dur_ns;
  }
  for (const auto& [name, agg] : by_name) {
    JsonObject fields;
    fields.emplace("count", static_cast<int64_t>(agg.first));
    fields.emplace("total_seconds", static_cast<double>(agg.second) * 1e-9);
    out += JsonlLine("span_stats", name, std::move(fields));
    out += '\n';
  }
  for (const SpanEvent& s : spans) {
    JsonObject fields;
    fields.emplace("id", static_cast<int64_t>(s.id));
    fields.emplace("parent", static_cast<int64_t>(s.parent));
    fields.emplace("tid", static_cast<int64_t>(s.thread));
    fields.emplace("depth", static_cast<int64_t>(s.depth));
    fields.emplace("ts_us", NsToUs(s.start_ns));
    fields.emplace("dur_us", NsToUs(s.dur_ns));
    if (!s.attrs.empty()) fields.emplace("args", AttrsToJson(s.attrs));
    out += JsonlLine("span", s.name, std::move(fields));
    out += '\n';
  }
  return out;
}

std::string SpansToChromeTrace(const std::vector<SpanEvent>& spans) {
  JsonArray events;
  events.reserve(spans.size());
  for (const SpanEvent& s : spans) {
    JsonObject event;
    event.emplace("name", s.name);
    event.emplace("cat", "pghive");
    event.emplace("ph", "X");
    event.emplace("ts", NsToUs(s.start_ns));
    event.emplace("dur", NsToUs(s.dur_ns));
    event.emplace("pid", 1);
    event.emplace("tid", static_cast<int64_t>(s.thread));
    if (!s.attrs.empty()) event.emplace("args", AttrsToJson(s.attrs));
    events.push_back(JsonValue(std::move(event)));
  }
  return JsonValue(std::move(events)).Dump();
}

Status WriteMetricsJsonl(const std::string& path) {
  return WriteFile(path,
                   MetricsToJsonl(MetricsRegistry::Global().Snapshot(),
                                  Tracer::Global().CollectSpans()));
}

Status WriteChromeTrace(const std::string& path) {
  return WriteFile(path,
                   SpansToChromeTrace(Tracer::Global().CollectSpans()) + "\n");
}

}  // namespace obs
}  // namespace pghive
