#include "obs/export.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "common/csv.h"

namespace pghive {
namespace obs {

namespace {

double NsToUs(uint64_t ns) { return static_cast<double>(ns) * 1e-3; }

// Prometheus sample values: integral doubles print without an exponent or
// fraction (matching how the registry's uint64 counters read), everything
// else as the shortest decimal that round-trips (so a 1e-06 bucket bound
// reads "1e-06", not a 17-digit expansion).
std::string PromValue(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void AppendPromSample(std::string* out, const std::string& name,
                      const std::string& labels, double value) {
  *out += name;
  *out += labels;
  *out += ' ';
  *out += PromValue(value);
  *out += '\n';
}

JsonObject AttrsToJson(
    const std::vector<std::pair<std::string, std::string>>& attrs) {
  JsonObject args;
  for (const auto& [key, value] : attrs) args.emplace(key, value);
  return args;
}

}  // namespace

std::string JsonlLine(const std::string& type, const std::string& name,
                      JsonObject fields) {
  fields.emplace("type", type);
  fields.emplace("name", name);
  return JsonValue(std::move(fields)).Dump();
}

std::string MetricsToJsonl(const MetricsSnapshot& metrics,
                           const std::vector<SpanEvent>& spans) {
  std::string out;
  for (const auto& [name, value] : metrics.counters) {
    JsonObject fields;
    fields.emplace("value", static_cast<int64_t>(value));
    out += JsonlLine("counter", name, std::move(fields));
    out += '\n';
  }
  for (const auto& [name, value] : metrics.gauges) {
    JsonObject fields;
    fields.emplace("value", value);
    out += JsonlLine("gauge", name, std::move(fields));
    out += '\n';
  }
  for (const auto& [name, h] : metrics.histograms) {
    JsonObject fields;
    fields.emplace("count", static_cast<int64_t>(h.count));
    fields.emplace("sum", h.sum);
    fields.emplace("min", h.min);
    fields.emplace("max", h.max);
    fields.emplace("mean",
                   h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0);
    fields.emplace("p50", h.p50());
    fields.emplace("p95", h.p95());
    fields.emplace("p99", h.p99());
    out += JsonlLine("histogram", name, std::move(fields));
    out += '\n';
  }
  // Per-name aggregates first (what benches and the acceptance check read),
  // then the raw events.
  std::map<std::string, std::pair<uint64_t, uint64_t>> by_name;  // count, ns
  for (const SpanEvent& s : spans) {
    auto& [count, total_ns] = by_name[s.name];
    ++count;
    total_ns += s.dur_ns;
  }
  for (const auto& [name, agg] : by_name) {
    JsonObject fields;
    fields.emplace("count", static_cast<int64_t>(agg.first));
    fields.emplace("total_seconds", static_cast<double>(agg.second) * 1e-9);
    out += JsonlLine("span_stats", name, std::move(fields));
    out += '\n';
  }
  for (const SpanEvent& s : spans) {
    JsonObject fields;
    fields.emplace("id", static_cast<int64_t>(s.id));
    fields.emplace("parent", static_cast<int64_t>(s.parent));
    fields.emplace("tid", static_cast<int64_t>(s.thread));
    fields.emplace("depth", static_cast<int64_t>(s.depth));
    fields.emplace("ts_us", NsToUs(s.start_ns));
    fields.emplace("dur_us", NsToUs(s.dur_ns));
    if (!s.attrs.empty()) fields.emplace("args", AttrsToJson(s.attrs));
    out += JsonlLine("span", s.name, std::move(fields));
    out += '\n';
  }
  return out;
}

std::string SpansToChromeTrace(const std::vector<SpanEvent>& spans) {
  JsonArray events;
  events.reserve(spans.size());
  for (const SpanEvent& s : spans) {
    JsonObject event;
    event.emplace("name", s.name);
    event.emplace("cat", "pghive");
    event.emplace("ph", "X");
    event.emplace("ts", NsToUs(s.start_ns));
    event.emplace("dur", NsToUs(s.dur_ns));
    event.emplace("pid", 1);
    event.emplace("tid", static_cast<int64_t>(s.thread));
    if (!s.attrs.empty()) event.emplace("args", AttrsToJson(s.attrs));
    events.push_back(JsonValue(std::move(event)));
  }
  return JsonValue(std::move(events)).Dump();
}

Result<MetricsFormat> ParseMetricsFormat(const std::string& text) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower += static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "jsonl") return MetricsFormat::kJsonl;
  if (lower == "prometheus") return MetricsFormat::kPrometheus;
  return Status::InvalidArgument("unknown metrics format '" + text +
                                 "' (expected jsonl or prometheus)");
}

const char* MetricsFormatContentType(MetricsFormat format) {
  switch (format) {
    case MetricsFormat::kPrometheus:
      return "text/plain; version=0.0.4; charset=utf-8";
    case MetricsFormat::kJsonl:
      break;
  }
  return "application/x-ndjson; charset=utf-8";
}

std::string SanitizePrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += valid ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string MetricsToPrometheus(const MetricsSnapshot& metrics) {
  std::string out;
  for (const auto& [name, value] : metrics.counters) {
    // The _total suffix is the exposition-format convention for counters;
    // the sanitized registry name is the family stem.
    const std::string prom = SanitizePrometheusName(name) + "_total";
    out += "# TYPE " + prom + " counter\n";
    AppendPromSample(&out, prom, "", static_cast<double>(value));
  }
  for (const auto& [name, value] : metrics.gauges) {
    const std::string prom = SanitizePrometheusName(name);
    out += "# TYPE " + prom + " gauge\n";
    AppendPromSample(&out, prom, "", static_cast<double>(value));
  }
  for (const auto& [name, h] : metrics.histograms) {
    const std::string prom = SanitizePrometheusName(name);
    out += "# TYPE " + prom + " histogram\n";
    // Registry buckets are per-bucket counts; Prometheus buckets are
    // cumulative ("everything <= le"), ending with the +Inf catch-all that
    // must equal _count.
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.buckets[i];
      AppendPromSample(&out, prom + "_bucket",
                       "{le=\"" + PromValue(h.bounds[i]) + "\"}",
                       static_cast<double>(cumulative));
    }
    AppendPromSample(&out, prom + "_bucket", "{le=\"+Inf\"}",
                     static_cast<double>(h.count));
    AppendPromSample(&out, prom + "_sum", "", h.sum);
    AppendPromSample(&out, prom + "_count", "",
                     static_cast<double>(h.count));
  }
  return out;
}

Status WriteMetricsJsonl(const std::string& path) {
  return WriteFile(path,
                   MetricsToJsonl(MetricsRegistry::Global().Snapshot(),
                                  Tracer::Global().CollectSpans()));
}

Status WriteMetricsFile(const std::string& path, MetricsFormat format) {
  if (format == MetricsFormat::kPrometheus) {
    return WriteFile(path,
                     MetricsToPrometheus(MetricsRegistry::Global().Snapshot()));
  }
  return WriteMetricsJsonl(path);
}

Status WriteChromeTrace(const std::string& path) {
  return WriteFile(path,
                   SpansToChromeTrace(Tracer::Global().CollectSpans()) + "\n");
}

}  // namespace obs
}  // namespace pghive
