// Hierarchical span tracing with RAII scopes and per-thread buffers.
//
// A ScopedSpan measures one region on one thread: monotonic-clock start +
// duration, a parent/child chain tracked through a thread-local stack (so
// nesting is per-thread, matching how Chrome's trace viewer renders rows),
// and optional key=value attributes. Finished spans are appended to the
// recording thread's buffer (uncontended mutex per push); exporters merge
// all buffers under the tracer's registry lock.
//
// Overhead when tracing is disabled is ONE relaxed atomic load and branch
// per span — the constructor bails before touching the clock. The only
// exception is the `out_seconds` form used to keep StageTimings /
// BatchDiagnostics populated: that variant must measure time regardless,
// exactly what the Timer it replaced cost.

#ifndef PGHIVE_OBS_TRACE_H_
#define PGHIVE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace pghive {
namespace obs {

/// One finished span. Timestamps are nanoseconds on the steady clock,
/// relative to the tracer's process-wide epoch (first instrumented event).
struct SpanEvent {
  std::string name;
  uint64_t id = 0;
  uint64_t parent = 0;  // 0 = no parent (root on its thread)
  uint32_t thread = 0;  // sequential tracer thread index
  uint32_t depth = 0;   // nesting depth on the recording thread
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  std::vector<std::pair<std::string, std::string>> attrs;
};

namespace internal {

/// Per-thread buffer of finished spans. Owned jointly by the recording
/// thread (thread_local) and the tracer's registry, so spans survive worker
/// threads that exit before export.
struct ThreadSpanBuffer {
  std::mutex mu;
  uint32_t thread_index = 0;
  std::vector<SpanEvent> events;
};

}  // namespace internal

extern std::atomic<bool> g_trace_enabled;
/// The single relaxed load every disabled span pays.
inline bool TraceEnabled() {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

/// Process-wide tracer: owns the thread-buffer registry and the span id
/// counter. Spans are recorded through ScopedSpan, never directly.
class Tracer {
 public:
  static Tracer& Global();

  void SetEnabled(bool enabled);

  /// Merges every thread buffer into one list sorted by (start_ns, id).
  /// Does not clear; spans recorded while this runs may or may not appear.
  std::vector<SpanEvent> CollectSpans() const;

  /// Drops all recorded spans and restarts span ids from 1 (tests, bench
  /// reruns). Must not race with active spans.
  void Clear();

  size_t SpanCount() const;

  // Internal: registry access for the thread-local buffer holder.
  std::shared_ptr<internal::ThreadSpanBuffer> RegisterThreadBuffer();
  uint64_t NextSpanId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<internal::ThreadSpanBuffer>> buffers_;
  std::atomic<uint64_t> next_id_{1};
  uint32_t next_thread_index_ = 0;
};

/// RAII span. The plain form costs one relaxed branch when tracing is
/// disabled; the `out_seconds` form additionally writes its wall-clock
/// duration (in seconds) on destruction whether or not tracing is on,
/// replacing the hand-rolled Timer reads that used to fill StageTimings.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, double* out_seconds = nullptr) {
    if (out_seconds == nullptr && !TraceEnabled()) return;
    Begin(name, out_seconds);
  }
  ~ScopedSpan() {
    if (armed_) End();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// True when this span will be emitted to the trace buffer (lets callers
  /// skip attribute formatting work entirely when not recording).
  bool recording() const { return recording_; }

  void AddAttr(const char* key, std::string value);
  void AddAttr(const char* key, uint64_t value);
  void AddAttr(const char* key, double value);

 private:
  void Begin(const char* name, double* out_seconds);
  void End();

  bool armed_ = false;      // destructor has work (recording or out_seconds)
  bool recording_ = false;  // a SpanEvent will be emitted
  const char* name_ = nullptr;
  double* out_seconds_ = nullptr;
  uint64_t id_ = 0;
  uint64_t parent_ = 0;
  uint32_t depth_ = 0;
  uint64_t start_ns_ = 0;
  std::vector<std::pair<std::string, std::string>> attrs_;
};

/// Nanoseconds since the tracer epoch (monotonic).
uint64_t TraceNowNs();

/// Records one already-measured span with explicit timestamps. This is the
/// escape hatch for durations that cross threads — e.g. the serving daemon's
/// queue-wait, whose start is stamped by the HTTP worker that enqueued the
/// batch and whose end happens on the writer thread. The span lands in the
/// CALLING thread's buffer, parented to the caller's innermost open
/// recording span. No-op when tracing is disabled.
void EmitSpan(const char* name, uint64_t start_ns, uint64_t dur_ns,
              std::vector<std::pair<std::string, std::string>> attrs = {});

}  // namespace obs
}  // namespace pghive

#endif  // PGHIVE_OBS_TRACE_H_
