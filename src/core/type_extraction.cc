#include "core/type_extraction.h"

#include <algorithm>

#include "common/string_util.h"
#include "common/union_find.h"

namespace pghive {

namespace {

// Union the second set into the first.
void UnionInto(std::set<std::string>* dst, const std::set<std::string>& src) {
  dst->insert(src.begin(), src.end());
}

std::string AbstractName(size_t ordinal) {
  return "ABSTRACT_" + std::to_string(ordinal);
}

// Next free ABSTRACT_<n> ordinal. Counting existing abstract types is not
// enough: deletions may retire ABSTRACT_0 while ABSTRACT_1 survives, and a
// count-based ordinal would then collide with it.
template <typename TypeVec>
size_t NextAbstractOrdinal(const TypeVec& types) {
  size_t next = 0;
  for (const auto& t : types) {
    if (!t.is_abstract) continue;
    if (StartsWith(t.name, "ABSTRACT_")) {
      size_t ordinal = 0;
      const char* digits = t.name.c_str() + 9;
      while (*digits >= '0' && *digits <= '9') {
        ordinal = ordinal * 10 + static_cast<size_t>(*digits - '0');
        ++digits;
      }
      next = std::max(next, ordinal + 1);
    }
  }
  return next;
}

}  // namespace

std::vector<Cluster> BuildNodeClusters(
    const PropertyGraph& g, const std::vector<size_t>& ids,
    const std::vector<std::vector<size_t>>& groups) {
  // Members sharing an interned set contribute identical strings, so the
  // union runs once per distinct set id instead of once per member.
  const GraphSymbols& sym = g.symbols();
  std::vector<Cluster> clusters;
  clusters.reserve(groups.size());
  for (const auto& group : groups) {
    Cluster c;
    c.members.reserve(group.size());
    std::set<LabelSetId> label_sets;
    std::set<KeySetId> key_sets;
    for (size_t local : group) {
      size_t id = ids[local];
      c.members.push_back(id);
      const Node& n = g.node(id);
      label_sets.insert(n.label_set);
      key_sets.insert(n.key_set);
    }
    for (LabelSetId ls : label_sets) {
      UnionInto(&c.labels, sym.label_sets.strings(ls));
    }
    for (KeySetId ks : key_sets) {
      UnionInto(&c.property_keys, sym.key_sets.strings(ks));
    }
    clusters.push_back(std::move(c));
  }
  return clusters;
}

std::vector<Cluster> BuildEdgeClusters(
    const PropertyGraph& g, const std::vector<size_t>& ids,
    const std::vector<std::vector<size_t>>& groups,
    const std::unordered_map<size_t, std::set<std::string>>&
        endpoint_labels) {
  const GraphSymbols& sym = g.symbols();
  std::vector<Cluster> clusters;
  clusters.reserve(groups.size());
  // Labeled endpoints dedupe by interned label-set id; unlabeled ones by
  // node id (their tokens come from the discovered-type map).
  auto endpoint_sets = [&](const Node& n, std::set<LabelSetId>* set_ids,
                           std::set<size_t>* unlabeled) {
    if (!n.labels.empty()) {
      set_ids->insert(n.label_set);
    } else {
      unlabeled->insert(n.id);
    }
  };
  auto union_endpoints = [&](const std::set<LabelSetId>& set_ids,
                             const std::set<size_t>& unlabeled,
                             std::set<std::string>* out) {
    for (LabelSetId ls : set_ids) UnionInto(out, sym.label_sets.strings(ls));
    for (size_t id : unlabeled) {
      auto it = endpoint_labels.find(id);
      if (it != endpoint_labels.end()) UnionInto(out, it->second);
    }
  };
  for (const auto& group : groups) {
    Cluster c;
    c.members.reserve(group.size());
    std::set<LabelSetId> label_sets, src_sets, tgt_sets;
    std::set<KeySetId> key_sets;
    std::set<size_t> src_unlabeled, tgt_unlabeled;
    for (size_t local : group) {
      size_t id = ids[local];
      c.members.push_back(id);
      const Edge& e = g.edge(id);
      label_sets.insert(e.label_set);
      key_sets.insert(e.key_set);
      endpoint_sets(g.node(e.source), &src_sets, &src_unlabeled);
      endpoint_sets(g.node(e.target), &tgt_sets, &tgt_unlabeled);
    }
    for (LabelSetId ls : label_sets) {
      UnionInto(&c.labels, sym.label_sets.strings(ls));
    }
    for (KeySetId ks : key_sets) {
      UnionInto(&c.property_keys, sym.key_sets.strings(ks));
    }
    union_endpoints(src_sets, src_unlabeled, &c.source_labels);
    union_endpoints(tgt_sets, tgt_unlabeled, &c.target_labels);
    clusters.push_back(std::move(c));
  }
  return clusters;
}

namespace {

// The structural fingerprint Algorithm 2's Jaccard comparisons run on: the
// property keys, extended for edges with prefixed endpoint tokens so that
// property-less edge clusters with different endpoints do not all look
// identical (J(∅, ∅) = 1 would merge them).
std::set<std::string> SimilaritySet(const std::set<std::string>& props,
                                    const std::set<std::string>& src,
                                    const std::set<std::string>& tgt) {
  std::set<std::string> out = props;
  for (const auto& s : src) out.insert("s:" + s);
  for (const auto& t : tgt) out.insert("t:" + t);
  return out;
}

// Shared implementation of Algorithm 2 over node or edge types. Merging of
// cluster `c` into schema type `t` is delegated so node/edge differences
// (endpoint sets) stay local to the callers; `type_sim` extracts the
// similarity fingerprint of an existing schema type.
// True when one set contains the other (or either is empty). Merely sharing
// a label is not enough: LDBC's LIKES targets {Message, Post} and
// {Comment, Message} share "Message" but are different endpoint types,
// while the same type seen across batches yields nested unions (e.g.
// {Person} then {Person, ~ABSTRACT_1}).
bool SetsCompatible(const std::set<std::string>& a,
                    const std::set<std::string>& b) {
  if (a.empty() || b.empty()) return true;
  const std::set<std::string>& small = a.size() <= b.size() ? a : b;
  const std::set<std::string>& big = a.size() <= b.size() ? b : a;
  return std::includes(big.begin(), big.end(), small.begin(), small.end());
}

template <typename TypeVec, typename MergeFn, typename NewTypeFn,
          typename TypeSimFn, typename MatchFn>
void ExtractTypesImpl(const std::vector<Cluster>& clusters,
                      const TypeExtractionOptions& options, TypeVec* types,
                      MergeFn merge_into, NewTypeFn make_type,
                      TypeSimFn type_sim, MatchFn labeled_match) {
  // Phase 1 (Algorithm 2 lines 2-7): labeled clusters merge by identical
  // label set; unseen label sets found new types.
  std::vector<const Cluster*> unlabeled;
  for (const auto& c : clusters) {
    // Truly empty clusters carry no information; clusters with labels or
    // properties but no members (schema-with-schema merges) still count.
    if (c.members.empty() && c.labels.empty() && c.property_keys.empty()) {
      continue;
    }
    if (c.labeled()) {
      int idx = -1;
      for (size_t i = 0; i < types->size(); ++i) {
        if (labeled_match(c, (*types)[i])) {
          idx = static_cast<int>(i);
          break;
        }
      }
      if (idx >= 0) {
        merge_into(c, &(*types)[idx]);
      } else {
        types->push_back(make_type(c, /*is_abstract=*/false));
      }
    } else {
      unlabeled.push_back(&c);
    }
  }

  // Phase 2 (lines 8-11): each unlabeled cluster merges into the labeled
  // type with the highest fingerprint Jaccard >= theta.
  std::vector<const Cluster*> still_unmatched;
  for (const Cluster* c : unlabeled) {
    std::set<std::string> c_sim =
        SimilaritySet(c->property_keys, c->source_labels, c->target_labels);
    int best = -1;
    double best_sim = options.jaccard_threshold;
    for (size_t i = 0; i < types->size(); ++i) {
      if ((*types)[i].labels.empty()) continue;  // labeled candidates only
      double sim = JaccardSimilarity(c_sim, type_sim((*types)[i]));
      if (sim >= best_sim) {
        best_sim = sim;
        best = static_cast<int>(i);
      }
    }
    if (best >= 0) {
      merge_into(*c, &(*types)[best]);
    } else {
      still_unmatched.push_back(c);
    }
  }

  // Phase 2b: remaining unlabeled clusters may extend an existing ABSTRACT
  // type discovered in an earlier batch (incremental mode, §4.6).
  std::vector<const Cluster*> fresh;
  for (const Cluster* c : still_unmatched) {
    std::set<std::string> c_sim =
        SimilaritySet(c->property_keys, c->source_labels, c->target_labels);
    int best = -1;
    double best_sim = options.jaccard_threshold;
    for (size_t i = 0; i < types->size(); ++i) {
      if (!(*types)[i].is_abstract) continue;
      double sim = JaccardSimilarity(c_sim, type_sim((*types)[i]));
      if (sim >= best_sim) {
        best_sim = sim;
        best = static_cast<int>(i);
      }
    }
    if (best >= 0) {
      merge_into(*c, &(*types)[best]);
    } else {
      fresh.push_back(c);
    }
  }

  // Phase 3 (lines 12-14): pairwise merge among the fresh unlabeled
  // clusters, then append the survivors as new ABSTRACT types.
  std::vector<std::set<std::string>> fresh_sim;
  fresh_sim.reserve(fresh.size());
  for (const Cluster* c : fresh) {
    fresh_sim.push_back(
        SimilaritySet(c->property_keys, c->source_labels, c->target_labels));
  }
  UnionFind uf(fresh.size());
  for (size_t i = 0; i < fresh.size(); ++i) {
    for (size_t j = i + 1; j < fresh.size(); ++j) {
      if (JaccardSimilarity(fresh_sim[i], fresh_sim[j]) >=
          options.jaccard_threshold) {
        uf.Union(i, j);
      }
    }
  }
  for (const auto& component : uf.Components()) {
    Cluster combined;
    for (size_t local : component) {
      const Cluster& c = *fresh[local];
      combined.members.insert(combined.members.end(), c.members.begin(),
                              c.members.end());
      UnionInto(&combined.property_keys, c.property_keys);
      UnionInto(&combined.source_labels, c.source_labels);
      UnionInto(&combined.target_labels, c.target_labels);
    }
    types->push_back(make_type(combined, /*is_abstract=*/true));
  }
}

}  // namespace

void ExtractNodeTypes(const std::vector<Cluster>& clusters,
                      const TypeExtractionOptions& options,
                      SchemaGraph* schema) {
  size_t abstract_ordinal = NextAbstractOrdinal(schema->node_types);
  auto merge_into = [](const Cluster& c, SchemaNodeType* t) {
    t->labels.insert(c.labels.begin(), c.labels.end());
    t->property_keys.insert(c.property_keys.begin(), c.property_keys.end());
    t->instances.insert(t->instances.end(), c.members.begin(),
                        c.members.end());
  };
  auto make_type = [&](const Cluster& c, bool is_abstract) {
    SchemaNodeType t;
    t.labels = c.labels;
    t.property_keys = c.property_keys;
    t.instances.assign(c.members.begin(), c.members.end());
    t.is_abstract = is_abstract;
    t.name = is_abstract ? AbstractName(abstract_ordinal++)
                         : CanonicalLabelToken(c.labels);
    return t;
  };
  auto type_sim = [](const SchemaNodeType& t) { return t.property_keys; };
  // Labeled node clusters merge on the identical label set (Algorithm 2).
  auto labeled_match = [](const Cluster& c, const SchemaNodeType& t) {
    return t.labels == c.labels;
  };
  ExtractTypesImpl(clusters, options, &schema->node_types, merge_into,
                   make_type, type_sim, labeled_match);
}

void ExtractEdgeTypes(const std::vector<Cluster>& clusters,
                      const TypeExtractionOptions& options,
                      SchemaGraph* schema) {
  size_t abstract_ordinal = NextAbstractOrdinal(schema->edge_types);
  auto merge_into = [](const Cluster& c, SchemaEdgeType* t) {
    t->labels.insert(c.labels.begin(), c.labels.end());
    t->property_keys.insert(c.property_keys.begin(), c.property_keys.end());
    t->source_labels.insert(c.source_labels.begin(), c.source_labels.end());
    t->target_labels.insert(c.target_labels.begin(), c.target_labels.end());
    t->instances.insert(t->instances.end(), c.members.begin(),
                        c.members.end());
  };
  auto make_type = [&](const Cluster& c, bool is_abstract) {
    SchemaEdgeType t;
    t.labels = c.labels;
    t.property_keys = c.property_keys;
    t.source_labels = c.source_labels;
    t.target_labels = c.target_labels;
    t.instances.assign(c.members.begin(), c.members.end());
    t.is_abstract = is_abstract;
    std::string base = is_abstract ? AbstractName(abstract_ordinal++)
                                   : CanonicalLabelToken(c.labels);
    // Same-label edge types with different endpoints coexist; keep their
    // names unique for serialization.
    std::string name = base;
    int suffix = 2;
    auto taken = [&](const std::string& n) {
      for (const auto& existing : schema->edge_types) {
        if (existing.name == n) return true;
      }
      return false;
    };
    while (taken(name)) name = base + "_" + std::to_string(suffix++);
    t.name = name;
    return t;
  };
  auto type_sim = [](const SchemaEdgeType& t) {
    return SimilaritySet(t.property_keys, t.source_labels, t.target_labels);
  };
  // Labeled edge clusters merge on the identical label set AND compatible
  // endpoints: an edge type is (lambda_e, ..., rho_e) per Def. 3.3, so the
  // same label between different endpoint types is a different type (e.g.
  // HAS_POSTCODE from Location vs from Area). Endpoint sets are compatible
  // when they share a token or one side carries no endpoint evidence.
  auto labeled_match = [](const Cluster& c, const SchemaEdgeType& t) {
    return t.labels == c.labels &&
           SetsCompatible(c.source_labels, t.source_labels) &&
           SetsCompatible(c.target_labels, t.target_labels);
  };
  ExtractTypesImpl(clusters, options, &schema->edge_types, merge_into,
                   make_type, type_sim, labeled_match);
}

}  // namespace pghive
