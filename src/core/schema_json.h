// Schema persistence: SchemaGraph <-> JSON.
//
// A machine-readable companion to the PG-Schema / XSD exports (§4.5): the
// JSON document round-trips losslessly (labels, property keys, constraints,
// endpoints, cardinalities, abstract flags, and optionally instance
// assignments), so a discovered schema can be saved once and reused by the
// CLI's validate/diff commands or by external tooling.

#ifndef PGHIVE_CORE_SCHEMA_JSON_H_
#define PGHIVE_CORE_SCHEMA_JSON_H_

#include <string>

#include "common/json.h"
#include "common/result.h"
#include "core/schema.h"

namespace pghive {

struct SchemaJsonOptions {
  /// Instance id lists make the file large and are only needed to resume
  /// evaluation; off by default.
  bool include_instances = false;
  bool pretty = true;
};

/// Serializes a schema to a JSON document string.
std::string SchemaToJson(const SchemaGraph& schema,
                         const SchemaJsonOptions& options = {});

/// Parses a schema back. Fails with ParseError on malformed JSON and with
/// InvalidArgument on structurally invalid documents (unknown datatype or
/// cardinality names, missing required members).
Result<SchemaGraph> SchemaFromJson(const std::string& text);

/// File convenience wrappers.
Status SaveSchemaJson(const SchemaGraph& schema, const std::string& path,
                      const SchemaJsonOptions& options = {});
Result<SchemaGraph> LoadSchemaJson(const std::string& path);

}  // namespace pghive

#endif  // PGHIVE_CORE_SCHEMA_JSON_H_
