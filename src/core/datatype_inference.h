// Property datatype inference (paper §4.4, "Property data types").
//
// For each (type, property) pair the observed values are classified with the
// priority hierarchy int -> double -> bool -> date/timestamp -> string, and
// the per-value types are folded with GeneralizeDataType so the result is
// always compatible with every observed value (§4.7). A sampling mode
// classifies only a random subset (default: 10% of the values, at least
// 1000), trading a small error (measured in Figure 8) for a large speedup.

#ifndef PGHIVE_CORE_DATATYPE_INFERENCE_H_
#define PGHIVE_CORE_DATATYPE_INFERENCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/schema.h"
#include "graph/property_graph.h"
#include "runtime/thread_pool.h"

namespace pghive {

struct DataTypeInferenceOptions {
  /// When true, classify a sample instead of all values.
  bool sample = false;
  /// Sampling fraction (paper default 10%).
  double sample_fraction = 0.10;
  /// Lower bound on the sample size (paper: at least 1000 values).
  size_t min_sample = 1000;
  uint64_t seed = 7071;
};

/// Fills the `type` field of every property constraint of every schema type
/// (creating entries where missing). `pool` (optional) parallelizes the
/// per-property value scans; the result is identical at any thread count —
/// values are collected per instance-chunk and concatenated in chunk order,
/// and the sampling RNG is only consumed on the calling thread, in the same
/// (type, key) order as the sequential scan.
void InferDataTypes(const PropertyGraph& g,
                    const DataTypeInferenceOptions& options,
                    SchemaGraph* schema, ThreadPool* pool = nullptr);

/// Folds a list of runtime values into the most specific compatible
/// DataType (String for an empty list). Exposed for tests / Figure 8.
DataType FoldValueTypes(const std::vector<const Value*>& values);

}  // namespace pghive

#endif  // PGHIVE_CORE_DATATYPE_INFERENCE_H_
