#include "core/value_stats.h"

#include <algorithm>
#include <unordered_map>

#include "common/string_util.h"
#include "runtime/parallel.h"

namespace pghive {

namespace {

template <typename TypeT, typename GetElem>
TypeValueStats StatsForType(const TypeT& t, GetElem get,
                            const ValueStatsOptions& options) {
  TypeValueStats out;
  for (const auto& key : t.property_keys) {
    PropertyStats stats;
    std::unordered_map<std::string, size_t> counts;
    for (auto id : t.instances) {
      const auto& props = get(id).properties;
      auto it = props.find(key);
      if (it == props.end()) {
        ++stats.absent;
        continue;
      }
      ++stats.observed;
      const Value& v = it->second;
      std::string text = v.ToText();
      ++counts[text];
      if (stats.observed == 1 || text < stats.lexical_min) {
        stats.lexical_min = text;
      }
      if (stats.observed == 1 || text > stats.lexical_max) {
        stats.lexical_max = text;
      }
      double numeric = 0.0;
      bool is_numeric = false;
      if (v.type() == DataType::kInt) {
        numeric = static_cast<double>(v.AsInt());
        is_numeric = true;
      } else if (v.type() == DataType::kDouble) {
        numeric = v.AsDouble();
        is_numeric = true;
      }
      if (is_numeric) {
        if (stats.numeric_count == 0) {
          stats.numeric_min = stats.numeric_max = numeric;
        } else {
          stats.numeric_min = std::min(stats.numeric_min, numeric);
          stats.numeric_max = std::max(stats.numeric_max, numeric);
        }
        ++stats.numeric_count;
      }
    }
    stats.distinct = counts.size();

    // Top-k by count (desc), value (asc) for determinism.
    std::vector<std::pair<std::string, size_t>> ranked(counts.begin(),
                                                       counts.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    if (ranked.size() > options.top_k) ranked.resize(options.top_k);
    stats.top_values = std::move(ranked);

    stats.enum_candidate =
        stats.observed >= options.min_enum_support &&
        stats.distinct <= options.max_enum_size &&
        static_cast<double>(stats.distinct) <=
            options.enum_support_ratio * static_cast<double>(stats.observed);
    if (stats.enum_candidate) {
      stats.enum_domain.reserve(counts.size());
      for (const auto& [value, n] : counts) stats.enum_domain.push_back(value);
      std::sort(stats.enum_domain.begin(), stats.enum_domain.end());
    }
    out.emplace(key, std::move(stats));
  }
  return out;
}

}  // namespace

SchemaValueStats ComputeValueStats(const PropertyGraph& g,
                                   const SchemaGraph& schema,
                                   const ValueStatsOptions& options,
                                   ThreadPool* pool) {
  SchemaValueStats out;
  out.node_types = ParallelMap(pool, schema.node_types.size(), [&](size_t i) {
    return StatsForType(
        schema.node_types[i],
        [&](NodeId id) -> const Node& { return g.node(id); }, options);
  });
  out.edge_types = ParallelMap(pool, schema.edge_types.size(), [&](size_t i) {
    return StatsForType(
        schema.edge_types[i],
        [&](EdgeId id) -> const Edge& { return g.edge(id); }, options);
  });
  return out;
}

std::string FormatPropertyStats(const PropertyStats& stats) {
  std::string out = "observed=" + std::to_string(stats.observed) +
                    " absent=" + std::to_string(stats.absent) +
                    " distinct=" + std::to_string(stats.distinct);
  if (stats.numeric_count > 0) {
    out += " range=[" + FormatDouble(stats.numeric_min, 2) + ", " +
           FormatDouble(stats.numeric_max, 2) + "]";
  }
  if (stats.enum_candidate) {
    out += " ENUM{" + Join(stats.enum_domain, ", ") + "}";
  }
  return out;
}

}  // namespace pghive
