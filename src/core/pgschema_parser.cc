#include "core/pgschema_parser.h"

#include <cctype>

#include "common/string_util.h"

namespace pghive {

namespace {

// ---------- tokenizer ----------

enum class TokenKind {
  kIdentifier,  // [A-Za-z0-9_.~]+ (identifiers; GQL keywords resolved later)
  kPunct,       // single-character punctuation ( ) [ ] { } , : & |
  kArrow,       // ->
  kComment,     // /* ... */ (cardinality annotations)
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  size_t offset = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '.' || c == '~') {
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_' || text_[pos_] == '.' ||
                text_[pos_] == '~')) {
          ++pos_;
        }
        tokens.push_back({TokenKind::kIdentifier,
                          text_.substr(start, pos_ - start), start});
        continue;
      }
      if (c == '-' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
        tokens.push_back({TokenKind::kArrow, "->", pos_});
        pos_ += 2;
        continue;
      }
      if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '*') {
        size_t start = pos_;
        size_t end = text_.find("*/", pos_ + 2);
        if (end == std::string::npos) {
          return Status::ParseError("unterminated comment at offset " +
                                    std::to_string(start));
        }
        tokens.push_back({TokenKind::kComment,
                          text_.substr(start + 2, end - start - 2), start});
        pos_ = end + 2;
        continue;
      }
      if (std::string("()[]{},:&|-").find(c) != std::string::npos) {
        tokens.push_back({TokenKind::kPunct, std::string(1, c), pos_});
        ++pos_;
        continue;
      }
      return Status::ParseError(std::string("unexpected character '") + c +
                                "' at offset " + std::to_string(pos_));
    }
    tokens.push_back({TokenKind::kEnd, "", text_.size()});
    return tokens;
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

// ---------- parser ----------

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedPgSchema> Parse() {
    ParsedPgSchema out;
    PGHIVE_RETURN_NOT_OK(ExpectIdentifier("CREATE"));
    PGHIVE_RETURN_NOT_OK(ExpectIdentifier("GRAPH"));
    PGHIVE_RETURN_NOT_OK(ExpectIdentifier("TYPE"));
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error("expected graph type name");
    }
    out.graph_name = Next().text;
    if (Peek().kind != TokenKind::kIdentifier ||
        (Peek().text != "STRICT" && Peek().text != "LOOSE")) {
      return Error("expected STRICT or LOOSE");
    }
    out.mode = Next().text == "LOOSE" ? PgSchemaMode::kLoose
                                      : PgSchemaMode::kStrict;
    PGHIVE_RETURN_NOT_OK(ExpectPunct("{"));
    if (!PeekPunct("}")) {
      for (;;) {
        PGHIVE_RETURN_NOT_OK(ParseDeclaration(&out));
        if (PeekPunct(",")) {
          Next();
          continue;
        }
        break;
      }
    }
    PGHIVE_RETURN_NOT_OK(ExpectPunct("}"));
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing content after schema body");
    }
    return out;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Next() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at offset " +
                              std::to_string(Peek().offset));
  }

  bool PeekPunct(const std::string& p, size_t ahead = 0) const {
    return Peek(ahead).kind == TokenKind::kPunct && Peek(ahead).text == p;
  }

  Status ExpectPunct(const std::string& p) {
    if (!PeekPunct(p)) return Error("expected '" + p + "'");
    Next();
    return Status::OK();
  }

  Status ExpectIdentifier(const std::string& word) {
    if (Peek().kind != TokenKind::kIdentifier || Peek().text != word) {
      return Error("expected '" + word + "'");
    }
    Next();
    return Status::OK();
  }

  static std::string RecoverTypeName(const std::string& identifier) {
    if (EndsWith(identifier, "Type") && identifier.size() > 4) {
      return identifier.substr(0, identifier.size() - 4);
    }
    return identifier;
  }

  // "Label & Label & ..." -> set.
  Result<std::set<std::string>> ParseLabelConjunction() {
    std::set<std::string> labels;
    for (;;) {
      if (Peek().kind != TokenKind::kIdentifier) {
        return Error("expected label");
      }
      labels.insert(Next().text);
      if (PeekPunct("&")) {
        Next();
        continue;
      }
      return labels;
    }
  }

  // "Label | Label | ..." -> set (edge endpoint alternatives).
  Result<std::set<std::string>> ParseLabelDisjunction() {
    std::set<std::string> labels;
    for (;;) {
      if (Peek().kind != TokenKind::kIdentifier) {
        return Error("expected endpoint label");
      }
      labels.insert(Next().text);
      if (PeekPunct("|")) {
        Next();
        continue;
      }
      return labels;
    }
  }

  // "{key [OPTIONAL] [GQLTYPE], ...}"; LOOSE bodies omit type/optionality.
  Status ParsePropertyBlock(std::set<std::string>* keys,
                            std::map<std::string, PropertyConstraint>* cs) {
    PGHIVE_RETURN_NOT_OK(ExpectPunct("{"));
    if (PeekPunct("}")) {
      Next();
      return Status::OK();
    }
    for (;;) {
      if (Peek().kind != TokenKind::kIdentifier) {
        return Error("expected property key");
      }
      std::string key = Next().text;
      keys->insert(key);
      bool optional = false;
      if (Peek().kind == TokenKind::kIdentifier && Peek().text == "OPTIONAL") {
        Next();
        optional = true;
      }
      if (Peek().kind == TokenKind::kIdentifier) {
        auto type = GqlNameToDataType(Peek().text);
        if (!type.ok()) {
          return Error("unknown datatype '" + Peek().text + "'");
        }
        Next();
        (*cs)[key] = {*type, !optional};
      } else if (optional) {
        // "key OPTIONAL" without a type still records optionality.
        (*cs)[key] = {DataType::kString, false};
      }
      if (PeekPunct(",")) {
        Next();
        continue;
      }
      return ExpectPunct("}");
    }
  }

  static Result<DataType> GqlNameToDataType(const std::string& name) {
    for (DataType t : {DataType::kInt, DataType::kDouble, DataType::kBool,
                       DataType::kDate, DataType::kTimestamp,
                       DataType::kString}) {
      if (name == DataTypeGqlName(t)) return t;
    }
    return Status::InvalidArgument("unknown GQL type " + name);
  }

  static Result<SchemaCardinality> ParseCardinalityComment(
      const std::string& body) {
    std::string trimmed(Trim(body));
    if (!StartsWith(trimmed, "cardinality ")) {
      return Status::InvalidArgument("not a cardinality comment");
    }
    std::string name(Trim(trimmed.substr(12)));
    for (SchemaCardinality c :
         {SchemaCardinality::kZeroOrOne, SchemaCardinality::kManyToOne,
          SchemaCardinality::kOneToMany, SchemaCardinality::kManyToMany}) {
      if (name == SchemaCardinalityName(c)) return c;
    }
    return Status::InvalidArgument("unknown cardinality " + name);
  }

  // One "(...)" node declaration or "(...)-[...]->(...)" edge declaration.
  Status ParseDeclaration(ParsedPgSchema* out) {
    PGHIVE_RETURN_NOT_OK(ExpectPunct("("));

    // Edge declarations start with an endpoint spec: ")" (empty) or
    // ": Label..."; node declarations start with the type identifier.
    bool is_edge =
        PeekPunct(")") ||
        (PeekPunct(":") );
    if (is_edge) return ParseEdgeTail(out);

    SchemaNodeType t;
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error("expected node type identifier");
    }
    t.name = RecoverTypeName(Next().text);
    if (Peek().kind == TokenKind::kIdentifier && Peek().text == "ABSTRACT") {
      Next();
      t.is_abstract = true;
    }
    if (PeekPunct(":")) {
      Next();
      PGHIVE_ASSIGN_OR_RETURN(t.labels, ParseLabelConjunction());
    } else {
      t.is_abstract = true;  // label-less node type is abstract by definition
    }
    if (PeekPunct("{")) {
      PGHIVE_RETURN_NOT_OK(ParsePropertyBlock(&t.property_keys,
                                              &t.constraints));
    }
    PGHIVE_RETURN_NOT_OK(ExpectPunct(")"));
    out->schema.node_types.push_back(std::move(t));
    return Status::OK();
  }

  // Continues after "(" of an edge: endpoints, -[decl]->, endpoints.
  Status ParseEdgeTail(ParsedPgSchema* out) {
    SchemaEdgeType t;
    if (PeekPunct(":")) {
      Next();
      PGHIVE_ASSIGN_OR_RETURN(t.source_labels, ParseLabelDisjunction());
    }
    PGHIVE_RETURN_NOT_OK(ExpectPunct(")"));
    PGHIVE_RETURN_NOT_OK(ExpectPunct("-"));
    PGHIVE_RETURN_NOT_OK(ExpectPunct("["));
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error("expected edge type identifier");
    }
    t.name = RecoverTypeName(Next().text);
    if (PeekPunct(":")) {
      Next();
      PGHIVE_ASSIGN_OR_RETURN(t.labels, ParseLabelConjunction());
    } else {
      t.is_abstract = true;
    }
    if (PeekPunct("{")) {
      PGHIVE_RETURN_NOT_OK(ParsePropertyBlock(&t.property_keys,
                                              &t.constraints));
    }
    PGHIVE_RETURN_NOT_OK(ExpectPunct("]"));
    if (Peek().kind != TokenKind::kArrow) return Error("expected '->'");
    Next();
    PGHIVE_RETURN_NOT_OK(ExpectPunct("("));
    if (PeekPunct(":")) {
      Next();
      PGHIVE_ASSIGN_OR_RETURN(t.target_labels, ParseLabelDisjunction());
    }
    PGHIVE_RETURN_NOT_OK(ExpectPunct(")"));
    if (Peek().kind == TokenKind::kComment) {
      auto card = ParseCardinalityComment(Peek().text);
      if (card.ok()) t.cardinality = *card;
      Next();  // unknown comments are ignored
    }
    out->schema.edge_types.push_back(std::move(t));
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ParsedPgSchema> ParsePgSchema(const std::string& text) {
  PGHIVE_ASSIGN_OR_RETURN(auto tokens, Lexer(text).Tokenize());
  return Parser(std::move(tokens)).Parse();
}

}  // namespace pghive
