#include "core/shard_plan.h"

#include "common/hash.h"

namespace pghive {

uint64_t ShardPlan::Fingerprint() const {
  const uint32_t words[2] = {kVersion, static_cast<uint32_t>(num_shards_)};
  return Fnv1a64(reinterpret_cast<const char*>(words), sizeof(words));
}

}  // namespace pghive
