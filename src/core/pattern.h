// Node and edge patterns (Definitions 3.5 / 3.6).
//
// A pattern is the structural fingerprint of an instance: its label set and
// property-key set (plus source/target label sets for edges). Types are
// associated with one or more patterns; pattern extraction is used by the
// evaluation (Table 2 pattern counts) and by tests.

#ifndef PGHIVE_CORE_PATTERN_H_
#define PGHIVE_CORE_PATTERN_H_

#include <set>
#include <string>
#include <vector>

#include "graph/property_graph.h"

namespace pghive {

/// T_Np = (L, K).
struct NodePattern {
  std::set<std::string> labels;
  std::set<std::string> property_keys;

  bool operator==(const NodePattern& o) const = default;
  bool operator<(const NodePattern& o) const {
    if (labels != o.labels) return labels < o.labels;
    return property_keys < o.property_keys;
  }
};

/// T_Ep = (L, K, R) with R = (source labels, target labels).
struct EdgePattern {
  std::set<std::string> labels;
  std::set<std::string> property_keys;
  std::set<std::string> source_labels;
  std::set<std::string> target_labels;

  bool operator==(const EdgePattern& o) const = default;
  bool operator<(const EdgePattern& o) const {
    if (labels != o.labels) return labels < o.labels;
    if (property_keys != o.property_keys)
      return property_keys < o.property_keys;
    if (source_labels != o.source_labels)
      return source_labels < o.source_labels;
    return target_labels < o.target_labels;
  }
};

/// Pattern of a single node.
NodePattern PatternOf(const Node& n);

/// Pattern of a single edge within its graph (endpoint labels resolved).
EdgePattern PatternOf(const PropertyGraph& g, const Edge& e);

/// All distinct node patterns of a graph, sorted.
std::vector<NodePattern> DistinctNodePatterns(const PropertyGraph& g);

/// All distinct edge patterns of a graph, sorted.
std::vector<EdgePattern> DistinctEdgePatterns(const PropertyGraph& g);

}  // namespace pghive

#endif  // PGHIVE_CORE_PATTERN_H_
