// Delta-maintained post-processing aggregates (paper §4.4 made incremental).
//
// Every output of the post-processing passes — MANDATORY/OPTIONAL property
// constraints, property datatypes and edge cardinalities — is a *mergeable
// aggregate* over a type's assigned instances:
//
//   constraints    key-presence histogram per interned key set: the count of
//                  instances carrying key k is the sum of the histogram over
//                  the key sets containing k, and k is MANDATORY iff that sum
//                  equals the instance count.
//   datatypes      per-(type, key) tally over the six DataTypes. The
//                  sequential pass folds observed value types with
//                  GeneralizeDataType, which is the join of a semilattice
//                  (commutative, associative, idempotent: Int⊔Double=Double,
//                  Date⊔Timestamp=Timestamp, mixed=String), so joining the
//                  DISTINCT observed types from the tally reproduces the
//                  sequential left fold exactly. Numeric value-stats partials
//                  (count/min/max) ride along for the snapshot statistics.
//   cardinalities  per-(edge type, endpoint) distinct-neighbour sets with a
//                  running maximum, updated whenever a set grows. Set growth
//                  is monotone, so the running maximum equals the maximum
//                  over the final set sizes — exact, not approximate.
//
// Because type extraction only ever APPENDS instances to a type (stable type
// indices, each instance assigned exactly once — see core/type_extraction.h),
// the incremental pipeline folds just the instances appended since the last
// fold: O(batch) per batch instead of the O(accumulated graph) rescan, which
// turned a k-batch stream into O(k·N). Finalization (writing constraints /
// datatypes / cardinalities into the schema) is then independent of the
// number of instances.
//
// The one-shot pipeline builds the same aggregates in a single chunked
// ParallelReduceOrdered pass. All components are integer counts, map unions
// and monotone maxima, so the merged aggregate content — and therefore the
// finalized schema — is bit-identical at any thread count and identical to
// the sequential rescan passes (guarded by tests/golden_equivalence_test).
//
// NOT delta-maintainable: the datatype sampling mode (the RNG consumes draws
// in (type, key) order over the concrete value list, which the tally cannot
// reproduce) and the full value statistics (top-k values, distinct counts,
// enum domains). Both fall back to their rescan implementations.
//
// Retraction (mutation streams): every component is a counted histogram, so
// elements SUBTRACT as cleanly as they add — key-set counts, per-key
// presence, datatype tallies and the counted degree maps all decrement, and
// map entries are erased when their count reaches zero (so retracted state
// is bit-identical to a fresh fold of the survivors). Two components are
// not directly invertible and carry explicit recovery paths:
//
//   * numeric min/max partials — retracting a value equal to the running
//     extremum invalidates it; Retract*Element reports the affected keys
//     and the caller rescans the type's surviving instances for just those
//     keys (Rescan*NumericExtrema).
//   * datatype joins — the JOIN itself is not invertible, but the TALLY is:
//     FinalizeDataTypes re-joins the distinct surviving datatypes through
//     the GeneralizeDataType semilattice, so narrowing (e.g. the last
//     Double retires and the key becomes Int again) falls out for free.
//
// Any underflow (retracting something never folded) flips RetractOutcome::ok
// to false; the caller rebuilds the whole type accumulator from its
// surviving instances (Rebuild*Aggregate).
//
// Contract: aggregates track the schema's instance lists exactly — grow via
// FoldNew, shrink ONLY through the Retract*Element path (core/retraction.h
// drives it). External schema surgery (core/deletions.h) invalidates them;
// ConsistentWith detects the mismatch and callers fall back to the rescan
// passes.

#ifndef PGHIVE_CORE_AGGREGATES_H_
#define PGHIVE_CORE_AGGREGATES_H_

#include <array>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/schema.h"
#include "core/shard_plan.h"
#include "graph/property_graph.h"
#include "runtime/thread_pool.h"

namespace pghive {

/// Number of DataType enum values (tally array width).
inline constexpr size_t kNumDataTypes = 6;

/// Mergeable accumulator for one (type, property key) pair.
struct PropertyAggregate {
  /// Instances of the type whose key set contains the key (== the
  /// CountWithKey sum of the rescan pass).
  uint64_t present = 0;
  /// Observed value count per DataType (indexed by the enum value).
  std::array<uint64_t, kNumDataTypes> type_counts{};
  /// Numeric value-stats partials: count/min/max over Int and Double values.
  uint64_t numeric_count = 0;
  double numeric_min = 0.0;
  double numeric_max = 0.0;

  void Merge(const PropertyAggregate& other);

  bool operator==(const PropertyAggregate&) const = default;
};

/// Mergeable, retractable accumulator for one schema type (node or edge;
/// the endpoint/degree state stays empty for node types).
struct TypeAggregate {
  /// Instances folded so far — the delta-fold watermark into the type's
  /// instance list, and the denominator of the MANDATORY test.
  uint64_t folded = 0;
  /// Key-presence histogram: interned key set -> instance count. Ordered
  /// map so serialization is canonical without a sort.
  std::map<KeySetId, uint64_t> key_set_counts;
  /// Label-set histogram: interned label set -> instance count. The
  /// retraction path recomputes the type's `labels` from the sets still
  /// carrying a nonzero count.
  std::map<LabelSetId, uint64_t> label_set_counts;
  /// Per-key tallies, keyed by interned key symbol.
  std::map<SymbolId, PropertyAggregate> keys;

  // Edge-only endpoint state. src/tgt label-set histograms back the
  // recomputation of source_labels/target_labels on retraction (unlabeled
  // endpoints count under the empty label set and contribute no strings).
  std::map<LabelSetId, uint64_t> src_set_counts;
  std::map<LabelSetId, uint64_t> tgt_set_counts;
  // Counted degree maps: edge multiplicity per (source, target) — distinct
  // neighbour degree is the inner map's size, and an entry only disappears
  // when its LAST parallel edge retracts. The degree histograms (distinct
  // degree -> endpoint count) are maintained alongside so the maxima stay
  // exact under retraction (the new max is the histogram's last key).
  std::unordered_map<NodeId, std::unordered_map<NodeId, uint64_t>> out_counts;
  std::unordered_map<NodeId, std::unordered_map<NodeId, uint64_t>> in_counts;
  std::map<uint64_t, uint64_t> out_degree_hist;
  std::map<uint64_t, uint64_t> in_degree_hist;

  /// Exact maximum distinct out-/in-degree over the CURRENT edge multiset
  /// (not a running high-water mark — retraction lowers it).
  uint64_t max_out() const {
    return out_degree_hist.empty() ? 0 : out_degree_hist.rbegin()->first;
  }
  uint64_t max_in() const {
    return in_degree_hist.empty() ? 0 : in_degree_hist.rbegin()->first;
  }

  void Merge(const TypeAggregate& other);

  bool operator==(const TypeAggregate&) const = default;
};

/// Aggregate state for a whole schema: one TypeAggregate per schema type,
/// parallel to schema.node_types / schema.edge_types by index (extraction
/// keeps type indices stable).
struct SchemaAggregates {
  std::vector<TypeAggregate> node_types;
  std::vector<TypeAggregate> edge_types;

  /// True when every type's folded count matches its instance count (so
  /// finalization from this state equals the rescan passes). False after
  /// external instance-list surgery or for a freshly restored schema whose
  /// aggregates were never built.
  bool ConsistentWith(const SchemaGraph& schema) const;

  /// Folds every instance appended to `schema`'s types since the last fold
  /// (all of them, for a fresh aggregate). O(new instances). Returns false
  /// when an instance list SHRANK below its watermark (external deletion) —
  /// the aggregates are then unusable until rebuilt.
  bool FoldNew(const PropertyGraph& g, const SchemaGraph& schema);

  /// Sharded FoldNew — the aggregate leg of the sharded Feed path. The new
  /// instances are partitioned by signature shard (each element's stored
  /// signature through plan.ShardOf), per-shard partial accumulators are
  /// folded by the pool's workers, and partials merge in ascending shard
  /// order. Content-identical to FoldNew: every component is a commutative
  /// counted structure or a monotone extremum, so the merged state — and
  /// everything finalized or serialized from it — matches the sequential
  /// fold byte for byte. Falls back to FoldNew when the plan is unsharded.
  bool FoldNewSharded(const PropertyGraph& g, const SchemaGraph& schema,
                      const ShardPlan& plan, ThreadPool* pool);

  /// Index-wise merge for the parallel one-shot build (counts add, maps
  /// union, maxima update on set growth).
  void Merge(const SchemaAggregates& other);

  void Clear();

  uint64_t FoldedInstances() const;
  /// Distinct (type, key) tally entries / degree-map endpoint entries —
  /// the pghive.aggregates.* gauge sources.
  uint64_t KeyEntries() const;
  uint64_t DegreeEntries() const;
  /// Approximate heap footprint for the obs gauges.
  uint64_t ApproxBytes() const;

  bool operator==(const SchemaAggregates&) const = default;
};

/// Builds aggregates for `schema`'s current instance assignment in one
/// chunked pass over the flattened (type, instance) space; per-chunk
/// partials merge in ascending chunk order (deterministic content at any
/// thread count). Null pool = sequential.
SchemaAggregates BuildAggregates(const PropertyGraph& g,
                                 const SchemaGraph& schema,
                                 ThreadPool* pool = nullptr);

// --- Per-element fold/retract primitives (the mutation path,
// core/retraction.h, drives these; FoldNew/BuildAggregates fold through the
// same code). ---

/// Folds one element into its type accumulator. The edge variant also folds
/// endpoint label sets and the counted degree state (hence the graph).
void FoldNodeElement(const GraphSymbols& sym, const Node& n,
                     TypeAggregate* agg);
void FoldEdgeElement(const PropertyGraph& g, const Edge& e,
                     TypeAggregate* agg);

/// What a retraction could not undo exactly.
struct RetractOutcome {
  /// False when any count underflowed — the element was never folded into
  /// this accumulator, so its state is unusable until rebuilt.
  bool ok = true;
  /// Keys whose retracted numeric value equalled the running min or max;
  /// the caller must Rescan*NumericExtrema them over the survivors.
  std::vector<SymbolId> rescan_keys;
};

/// Retracts one previously folded element (inverse of Fold*Element).
void RetractNodeElement(const GraphSymbols& sym, const Node& n,
                        TypeAggregate* agg, RetractOutcome* out);
void RetractEdgeElement(const PropertyGraph& g, const Edge& e,
                        TypeAggregate* agg, RetractOutcome* out);

/// Recomputes the numeric min/max partials of (type, key) over the type's
/// CURRENT instance list (call after the list has been compacted to the
/// survivors). numeric_count is maintained by retraction and untouched.
void RescanNodeNumericExtrema(const PropertyGraph& g, const SchemaNodeType& t,
                              SymbolId key, PropertyAggregate* pa);
void RescanEdgeNumericExtrema(const PropertyGraph& g, const SchemaEdgeType& t,
                              SymbolId key, PropertyAggregate* pa);

/// Fresh fold of a single type's surviving instances — the rebuild path for
/// retraction underflow.
TypeAggregate RebuildNodeAggregate(const PropertyGraph& g,
                                   const SchemaNodeType& t);
TypeAggregate RebuildEdgeAggregate(const PropertyGraph& g,
                                   const SchemaEdgeType& t);

// --- Finalization: write aggregate state into the schema. Each function
// reproduces its rescan counterpart bit-for-bit (given ConsistentWith);
// `pool` parallelizes over types. ---

/// InferPropertyConstraints from the key-set histograms.
void FinalizeConstraints(const GraphSymbols& sym, const SchemaAggregates& agg,
                         SchemaGraph* schema, ThreadPool* pool = nullptr);

/// InferDataTypes (full-scan semantics) from the datatype tallies. The
/// sampling mode is NOT reproducible from tallies — callers must use
/// InferDataTypes when options.sample is set.
void FinalizeDataTypes(const GraphSymbols& sym, const SchemaAggregates& agg,
                       SchemaGraph* schema, ThreadPool* pool = nullptr);

/// ComputeCardinalities from the degree maxima.
void FinalizeCardinalities(const SchemaAggregates& agg, SchemaGraph* schema,
                           ThreadPool* pool = nullptr);

/// Mirrors the aggregate footprint into the pghive.aggregates.* gauges.
void PublishAggregateGauges(const SchemaAggregates& agg);

}  // namespace pghive

#endif  // PGHIVE_CORE_AGGREGATES_H_
