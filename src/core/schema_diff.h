// Schema diffing: what changed between two discovered schemas.
//
// The incremental mode (§4.6) evolves a schema monotonically batch by
// batch; DiffSchemas reports that evolution — newly appeared types, widened
// property sets, constraints that relaxed (a property that used to be
// mandatory observed missing in new data), cardinality upgrades (N:1
// becoming M:N) — which is the information a data steward watches when a
// live graph drifts.

#ifndef PGHIVE_CORE_SCHEMA_DIFF_H_
#define PGHIVE_CORE_SCHEMA_DIFF_H_

#include <set>
#include <string>
#include <vector>

#include "core/schema.h"

namespace pghive {

/// Change record for one type present on both sides.
struct TypeChange {
  std::string name;  // the `to`-side name
  bool is_edge = false;
  std::set<std::string> added_labels;
  std::set<std::string> removed_labels;
  std::set<std::string> added_properties;
  std::set<std::string> removed_properties;
  /// Properties whose MANDATORY flag flipped (true entry = became optional,
  /// the direction monotone growth produces).
  std::vector<std::string> became_optional;
  std::vector<std::string> became_mandatory;
  /// Properties whose declared datatype widened/changed ("age: Int->Double").
  std::vector<std::string> datatype_changes;
  /// Cardinality transition, empty if unchanged ("N:1 -> M:N").
  std::string cardinality_change;
  /// Endpoint label-set growth (edges).
  std::set<std::string> added_source_labels;
  std::set<std::string> added_target_labels;

  bool Empty() const;
};

struct SchemaDiff {
  std::vector<std::string> added_node_types;
  std::vector<std::string> removed_node_types;
  std::vector<std::string> added_edge_types;
  std::vector<std::string> removed_edge_types;
  std::vector<TypeChange> changed_types;

  bool Empty() const;

  /// Human-readable multi-line rendering; "no changes" when empty.
  std::string ToString() const;
};

/// Computes the change set from `from` to `to`. Labeled types are matched
/// by identical label set (edges additionally by compatible endpoints when
/// labels are ambiguous); abstract types are matched by name.
SchemaDiff DiffSchemas(const SchemaGraph& from, const SchemaGraph& to);

}  // namespace pghive

#endif  // PGHIVE_CORE_SCHEMA_DIFF_H_
