// Instance retraction: the shrink half of mutation streams.
//
// Type extraction only ever APPENDS instances to schema types, so the
// delta-maintained aggregates (core/aggregates.h) track instance lists with
// a simple per-type watermark. Deletions break that invariant; this module
// restores it by retracting elements from both halves at once — the schema's
// instance lists AND the aggregates — so that after a retraction the state
// is bit-identical to what a fresh run over only the surviving elements
// would have produced for the same type assignment:
//
//   * instance lists compact order-preservingly (survivors keep their
//     relative order, exactly as if the deleted ids were never assigned);
//   * aggregates subtract per element (Retract*Element), falling back to a
//     single-type rebuild on underflow and to targeted extremum rescans for
//     numeric min/max invalidation;
//   * a type's derived sets (labels, property_keys, endpoint label sets)
//     are recomputed from the aggregate's count-map keys — the union over
//     the label/key sets still carried by at least one survivor — and
//     constraints entries for vanished keys are erased;
//   * a type whose last instance retracts is RETIRED: erased from the
//     schema (and its aggregate slot with it). Abstract-name ordinals are
//     allocated above the maximum LIVE ordinal, so retiring ABSTRACT_k can
//     recycle the name — consumers identify epochs, not eternal type ids.
//
// RetractionIndex answers "which type owns element id X" in O(1). It is
// maintained lazily: Sync() walks only the instances appended since the
// last sync (per-type watermark) and is called by the mutation path before
// each retraction; retirement fixups are O(#types). The index holds type
// INDICES behind a slot indirection so a retirement does not touch the
// per-element map.
//
// Deletion semantics are exact, not best-effort: deleting an id that no
// live type owns (never inserted, or already deleted) is an InvalidArgument
// error, as is a dangling edge left behind by a node deletion (callers must
// delete or update a node's incident edges in the same batch — see
// graph/mutations.h).

#ifndef PGHIVE_CORE_RETRACTION_H_
#define PGHIVE_CORE_RETRACTION_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/aggregates.h"
#include "core/schema.h"
#include "core/shard_plan.h"
#include "graph/property_graph.h"

namespace pghive {

/// O(1) element-id -> owning-type lookup over a schema's instance lists.
class RetractionIndex {
 public:
  /// Discards everything and re-indexes `schema` from scratch.
  void Rebuild(const SchemaGraph& schema);

  /// Indexes types and instances appended since the last Rebuild/Sync
  /// (O(new instances)). Instance lists must only have GROWN in between —
  /// shrinking goes through RetractInstances, which maintains the index
  /// itself.
  void Sync(const SchemaGraph& schema);

  /// Index of the node/edge type owning `id`, or -1 when no live type does.
  int NodeTypeOf(NodeId id) const { return TypeOf(nodes_, id); }
  int EdgeTypeOf(EdgeId id) const { return TypeOf(edges_, id); }

  void EraseNode(NodeId id) { nodes_.slot_of_id.erase(id); }
  void EraseEdge(EdgeId id) { edges_.slot_of_id.erase(id); }

  /// Records that the type's instance list was compacted to `count`
  /// survivors (all of them already indexed).
  void SetNodeWatermark(size_t type_index, uint64_t count) {
    nodes_.slots[nodes_.slot_of_type[type_index]].indexed = count;
  }
  void SetEdgeWatermark(size_t type_index, uint64_t count) {
    edges_.slots[edges_.slot_of_type[type_index]].indexed = count;
  }

  /// Removes a (now empty) type from the index and shifts the indices of
  /// every later type down by one — call in DESCENDING index order when
  /// retiring several, mirroring the schema-vector erases.
  void RetireNodeType(size_t type_index) { RetireType(&nodes_, type_index); }
  void RetireEdgeType(size_t type_index) { RetireType(&edges_, type_index); }

 private:
  static constexpr uint32_t kDeadSlot = UINT32_MAX;

  struct Kind {
    // A slot is a stable handle for one type; retirement rewrites only the
    // slot table, never the per-element map.
    struct Slot {
      uint32_t type_index = 0;  // kDeadSlot once retired
      uint64_t indexed = 0;     // instance-list watermark
    };
    std::vector<Slot> slots;
    std::vector<uint32_t> slot_of_type;  // type index -> slot
    std::unordered_map<uint64_t, uint32_t> slot_of_id;
  };

  template <typename TypeVec>
  static void SyncKind(Kind* k, const TypeVec& types) {
    for (size_t t = k->slot_of_type.size(); t < types.size(); ++t) {
      k->slot_of_type.push_back(static_cast<uint32_t>(k->slots.size()));
      k->slots.push_back({static_cast<uint32_t>(t), 0});
    }
    for (size_t t = 0; t < types.size(); ++t) {
      const uint32_t slot = k->slot_of_type[t];
      Kind::Slot& s = k->slots[slot];
      const auto& inst = types[t].instances;
      for (size_t i = s.indexed; i < inst.size(); ++i) {
        k->slot_of_id[inst[i]] = slot;
      }
      s.indexed = inst.size();
    }
  }

  static int TypeOf(const Kind& k, uint64_t id) {
    auto it = k.slot_of_id.find(id);
    if (it == k.slot_of_id.end()) return -1;
    const uint32_t t = k.slots[it->second].type_index;
    return t == kDeadSlot ? -1 : static_cast<int>(t);
  }

  static void RetireType(Kind* k, size_t type_index) {
    k->slots[k->slot_of_type[type_index]].type_index = kDeadSlot;
    k->slot_of_type.erase(k->slot_of_type.begin() +
                          static_cast<ptrdiff_t>(type_index));
    for (size_t t = type_index; t < k->slot_of_type.size(); ++t) {
      --k->slots[k->slot_of_type[t]].type_index;
    }
  }

  Kind nodes_;
  Kind edges_;
};

/// What one retraction pass did (obs + test introspection).
struct RetractionStats {
  uint64_t nodes_retracted = 0;
  uint64_t edges_retracted = 0;
  uint64_t node_types_retired = 0;
  uint64_t edge_types_retired = 0;
  /// Types whose accumulator underflowed and was rebuilt from survivors.
  uint64_t aggregate_rebuilds = 0;
  /// (type, key) numeric min/max partials recomputed over survivors.
  uint64_t extremum_rescans = 0;
};

/// Retracts the given elements from `schema` + `aggregates` (see file
/// comment for the exact guarantees). `index` must be synced with `schema`;
/// it is maintained through the retraction. On error the state may be
/// partially retracted — callers treat any failure as fatal for the stream.
Status RetractInstances(const PropertyGraph& g,
                        const std::vector<NodeId>& deleted_nodes,
                        const std::vector<EdgeId>& deleted_edges,
                        SchemaGraph* schema, SchemaAggregates* aggregates,
                        RetractionIndex* index, RetractionStats* stats);

/// Sharded retraction — the mutation leg of the sharded Feed path. Deleted
/// ids are routed to their element's signature shard (plan + the stored
/// signature) and each shard's subset is retracted through RetractInstances
/// in ascending shard order. The shard sub-batches behave exactly like
/// consecutive sequential batches: compaction is order-preserving, an
/// extremum rescan that lands on a later shard's still-pending element is
/// re-triggered when that element retracts, rebuild-then-retract composes
/// to a survivors-only fold, and a type retires when its LAST instance goes
/// regardless of which shard carried it — so the final schema + aggregate
/// state is identical to one unsharded call (drift_equivalence_test pins
/// this across shard counts). Same-id double deletes stay detected because
/// equal ids share a signature and therefore a shard. The sub-calls are
/// deliberately SERIAL: schema types span signatures, so the per-type
/// accumulators are shared across shards and concurrent mutation would
/// race; sharding buys deterministic routing here, not parallelism.
/// RetractionStats may apportion rebuilds/rescans differently than the
/// unsharded call (observational only). Falls back to a single
/// RetractInstances call when the plan is unsharded.
Status RetractInstancesSharded(const PropertyGraph& g,
                               const std::vector<NodeId>& deleted_nodes,
                               const std::vector<EdgeId>& deleted_edges,
                               const ShardPlan& plan, SchemaGraph* schema,
                               SchemaAggregates* aggregates,
                               RetractionIndex* index,
                               RetractionStats* stats);

}  // namespace pghive

#endif  // PGHIVE_CORE_RETRACTION_H_
