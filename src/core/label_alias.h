// Label alignment for integration scenarios (paper §6 future work (c):
// "support integration scenarios when label semantics are not consistent
// (e.g., labels in different languages)" — implemented here as a manual
// alias table; the paper envisions LLM-derived alignments, which would
// simply populate the same table).
//
// An AliasTable maps synonymous labels onto a canonical label (e.g.
// Company -> Organization, Organisation -> Organization, Firma ->
// Organization). ApplyAliases rewrites a graph's node and edge labels
// before discovery, so instances of the same conceptual type integrate into
// one schema type even when their sources disagree on naming.

#ifndef PGHIVE_CORE_LABEL_ALIAS_H_
#define PGHIVE_CORE_LABEL_ALIAS_H_

#include <map>
#include <string>

#include "common/result.h"
#include "graph/property_graph.h"

namespace pghive {

class AliasTable {
 public:
  AliasTable() = default;

  /// Declares `alias` to mean `canonical`. Chains are allowed (a->b, b->c
  /// resolves a to c); cycles fail at Resolve time. Self-aliases are no-ops.
  void Add(const std::string& alias, const std::string& canonical);

  /// Canonical form of a label (itself when unaliased). Fails with
  /// FailedPrecondition on an alias cycle.
  Result<std::string> Resolve(const std::string& label) const;

  size_t size() const { return aliases_.size(); }
  bool empty() const { return aliases_.empty(); }

  /// The raw alias -> canonical entries (unresolved chains), e.g. for
  /// recording provenance in durable-state snapshots.
  const std::map<std::string, std::string>& entries() const {
    return aliases_;
  }

  /// Parses "alias=canonical" lines (comments with '#', blank lines
  /// skipped) — the file format the CLI accepts via --aliases.
  static Result<AliasTable> FromText(const std::string& text);

 private:
  std::map<std::string, std::string> aliases_;
};

/// Returns a copy of `g` with every node and edge label resolved through
/// the table. Ground-truth annotations are untouched. Fails if any label
/// resolves through a cycle.
Result<PropertyGraph> ApplyAliases(const PropertyGraph& g,
                                   const AliasTable& table);

}  // namespace pghive

#endif  // PGHIVE_CORE_LABEL_ALIAS_H_
