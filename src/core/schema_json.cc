#include "core/schema_json.h"

#include <string>

#include "common/csv.h"

namespace pghive {

namespace {

JsonValue SetToJson(const std::set<std::string>& set) {
  JsonArray arr;
  arr.reserve(set.size());
  for (const auto& s : set) arr.emplace_back(s);
  return arr;
}

Result<std::set<std::string>> SetFromJson(const JsonValue& v,
                                          const std::string& what) {
  if (v.is_null()) return std::set<std::string>{};
  if (!v.is_array()) return Status::InvalidArgument(what + " must be array");
  std::set<std::string> out;
  for (const auto& item : v.AsArray()) {
    if (!item.is_string()) {
      return Status::InvalidArgument(what + " entries must be strings");
    }
    out.insert(item.AsString());
  }
  return out;
}

Result<DataType> DataTypeFromName(const std::string& name) {
  for (DataType t : {DataType::kInt, DataType::kDouble, DataType::kBool,
                     DataType::kDate, DataType::kTimestamp,
                     DataType::kString}) {
    if (name == DataTypeName(t)) return t;
  }
  return Status::InvalidArgument("unknown datatype name: " + name);
}

Result<SchemaCardinality> CardinalityFromName(const std::string& name) {
  for (SchemaCardinality c :
       {SchemaCardinality::kUnknown, SchemaCardinality::kZeroOrOne,
        SchemaCardinality::kManyToOne, SchemaCardinality::kOneToMany,
        SchemaCardinality::kManyToMany}) {
    if (name == SchemaCardinalityName(c)) return c;
  }
  return Status::InvalidArgument("unknown cardinality name: " + name);
}

JsonValue ConstraintsToJson(
    const std::map<std::string, PropertyConstraint>& constraints) {
  JsonObject obj;
  for (const auto& [key, c] : constraints) {
    JsonObject entry;
    entry.emplace("type", DataTypeName(c.type));
    entry.emplace("mandatory", c.mandatory);
    obj.emplace(key, std::move(entry));
  }
  return obj;
}

Status ConstraintsFromJson(const JsonValue& v,
                           std::map<std::string, PropertyConstraint>* out) {
  if (v.is_null()) return Status::OK();
  if (!v.is_object()) {
    return Status::InvalidArgument("constraints must be an object");
  }
  for (const auto& [key, entry] : v.AsObject()) {
    PGHIVE_ASSIGN_OR_RETURN(std::string type_name, entry.GetString("type"));
    PGHIVE_ASSIGN_OR_RETURN(DataType type, DataTypeFromName(type_name));
    PGHIVE_ASSIGN_OR_RETURN(bool mandatory, entry.GetBool("mandatory"));
    (*out)[key] = {type, mandatory};
  }
  return Status::OK();
}

template <typename IdT>
JsonValue InstancesToJson(const std::vector<IdT>& instances) {
  JsonArray arr;
  arr.reserve(instances.size());
  for (IdT id : instances) arr.emplace_back(static_cast<size_t>(id));
  return arr;
}

template <typename IdT>
Status InstancesFromJson(const JsonValue& v, std::vector<IdT>* out) {
  if (v.is_null()) return Status::OK();
  if (!v.is_array()) {
    return Status::InvalidArgument("instances must be an array");
  }
  for (const auto& item : v.AsArray()) {
    if (!item.is_number()) {
      return Status::InvalidArgument("instance ids must be numbers");
    }
    out->push_back(static_cast<IdT>(item.AsInt()));
  }
  return Status::OK();
}

}  // namespace

std::string SchemaToJson(const SchemaGraph& schema,
                         const SchemaJsonOptions& options) {
  JsonArray node_types;
  for (const auto& t : schema.node_types) {
    JsonObject obj;
    obj.emplace("name", t.name);
    obj.emplace("labels", SetToJson(t.labels));
    obj.emplace("properties", SetToJson(t.property_keys));
    obj.emplace("constraints", ConstraintsToJson(t.constraints));
    obj.emplace("abstract", t.is_abstract);
    if (options.include_instances) {
      obj.emplace("instances", InstancesToJson(t.instances));
    }
    node_types.emplace_back(std::move(obj));
  }
  JsonArray edge_types;
  for (const auto& t : schema.edge_types) {
    JsonObject obj;
    obj.emplace("name", t.name);
    obj.emplace("labels", SetToJson(t.labels));
    obj.emplace("properties", SetToJson(t.property_keys));
    obj.emplace("constraints", ConstraintsToJson(t.constraints));
    obj.emplace("source_labels", SetToJson(t.source_labels));
    obj.emplace("target_labels", SetToJson(t.target_labels));
    obj.emplace("cardinality",
                std::string(SchemaCardinalityName(t.cardinality)));
    obj.emplace("max_out_degree", t.max_out_degree);
    obj.emplace("max_in_degree", t.max_in_degree);
    obj.emplace("abstract", t.is_abstract);
    if (options.include_instances) {
      obj.emplace("instances", InstancesToJson(t.instances));
    }
    edge_types.emplace_back(std::move(obj));
  }
  JsonObject root;
  root.emplace("format", "pghive-schema");
  root.emplace("version", 1);
  root.emplace("node_types", std::move(node_types));
  root.emplace("edge_types", std::move(edge_types));
  JsonValue doc(std::move(root));
  return options.pretty ? doc.Pretty() + "\n" : doc.Dump();
}

Result<SchemaGraph> SchemaFromJson(const std::string& text) {
  PGHIVE_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(text));
  if (!doc.is_object()) {
    return Status::InvalidArgument("schema document must be a JSON object");
  }
  PGHIVE_ASSIGN_OR_RETURN(std::string format, doc.GetString("format"));
  if (format != "pghive-schema") {
    return Status::InvalidArgument("not a pghive-schema document");
  }

  SchemaGraph schema;
  const JsonValue& node_types = doc["node_types"];
  if (!node_types.is_array()) {
    return Status::InvalidArgument("node_types must be an array");
  }
  for (const auto& obj : node_types.AsArray()) {
    SchemaNodeType t;
    PGHIVE_ASSIGN_OR_RETURN(t.name, obj.GetString("name"));
    PGHIVE_ASSIGN_OR_RETURN(t.labels, SetFromJson(obj["labels"], "labels"));
    PGHIVE_ASSIGN_OR_RETURN(t.property_keys,
                            SetFromJson(obj["properties"], "properties"));
    PGHIVE_RETURN_NOT_OK(ConstraintsFromJson(obj["constraints"],
                                             &t.constraints));
    t.is_abstract = obj["abstract"].is_bool() && obj["abstract"].AsBool();
    PGHIVE_RETURN_NOT_OK(InstancesFromJson(obj["instances"], &t.instances));
    schema.node_types.push_back(std::move(t));
  }

  const JsonValue& edge_types = doc["edge_types"];
  if (!edge_types.is_array()) {
    return Status::InvalidArgument("edge_types must be an array");
  }
  for (const auto& obj : edge_types.AsArray()) {
    SchemaEdgeType t;
    PGHIVE_ASSIGN_OR_RETURN(t.name, obj.GetString("name"));
    PGHIVE_ASSIGN_OR_RETURN(t.labels, SetFromJson(obj["labels"], "labels"));
    PGHIVE_ASSIGN_OR_RETURN(t.property_keys,
                            SetFromJson(obj["properties"], "properties"));
    PGHIVE_RETURN_NOT_OK(ConstraintsFromJson(obj["constraints"],
                                             &t.constraints));
    PGHIVE_ASSIGN_OR_RETURN(
        t.source_labels, SetFromJson(obj["source_labels"], "source_labels"));
    PGHIVE_ASSIGN_OR_RETURN(
        t.target_labels, SetFromJson(obj["target_labels"], "target_labels"));
    PGHIVE_ASSIGN_OR_RETURN(std::string card, obj.GetString("cardinality"));
    PGHIVE_ASSIGN_OR_RETURN(t.cardinality, CardinalityFromName(card));
    t.max_out_degree = static_cast<size_t>(
        obj["max_out_degree"].is_number() ? obj["max_out_degree"].AsInt()
                                          : 0);
    t.max_in_degree = static_cast<size_t>(
        obj["max_in_degree"].is_number() ? obj["max_in_degree"].AsInt() : 0);
    t.is_abstract = obj["abstract"].is_bool() && obj["abstract"].AsBool();
    PGHIVE_RETURN_NOT_OK(InstancesFromJson(obj["instances"], &t.instances));
    schema.edge_types.push_back(std::move(t));
  }
  return schema;
}

Status SaveSchemaJson(const SchemaGraph& schema, const std::string& path,
                      const SchemaJsonOptions& options) {
  return WriteFile(path, SchemaToJson(schema, options));
}

Result<SchemaGraph> LoadSchemaJson(const std::string& path) {
  PGHIVE_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return SchemaFromJson(text);
}

}  // namespace pghive
