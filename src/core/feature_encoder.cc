#include "core/feature_encoder.h"

#include <array>
#include <map>
#include <set>

#include "common/string_util.h"
#include "runtime/parallel.h"

namespace pghive {

namespace {

/// Dense index over the distinct property keys of a batch slice. Visits
/// each distinct interned key set once instead of every element's map.
template <typename GetKeySet>
std::unordered_map<std::string, size_t> BuildKeyIndex(const SymbolSetPool& pool,
                                                      size_t begin, size_t end,
                                                      GetKeySet get) {
  std::vector<char> seen(pool.size(), 0);
  std::set<std::string> keys;
  for (size_t i = begin; i < end; ++i) {
    const KeySetId ks = get(i);
    if (seen[ks]) continue;
    seen[ks] = 1;
    const std::set<std::string>& s = pool.strings(ks);
    keys.insert(s.begin(), s.end());
  }
  std::unordered_map<std::string, size_t> index;
  index.reserve(keys.size());
  size_t slot = 0;
  for (const auto& k : keys) index.emplace(k, slot++);
  return index;
}

void AppendScaled(std::vector<float>* out, const std::vector<float>& block,
                  double scale) {
  for (float v : block) out->push_back(static_cast<float>(v * scale));
}

}  // namespace

FeatureEncoder::FeatureEncoder(const LabelEmbedder* embedder,
                               FeatureEncoderOptions options, ThreadPool* pool)
    : embedder_(embedder), options_(options), pool_(pool) {}

EncodedElements FeatureEncoder::EncodeNodes(const GraphBatch& batch) const {
  const PropertyGraph& g = *batch.graph;
  auto key_index =
      BuildKeyIndex(g.symbols().key_sets, batch.node_begin, batch.node_end,
                    [&](size_t i) { return g.node(i).key_set; });
  const size_t K = key_index.size();
  const size_t d = static_cast<size_t>(embedder_->dimension());

  // A node's encoding is a pure function of its (label-set, key-set)
  // signature (plus the shared key index), so each distinct signature is
  // encoded once and fanned out to its members — value-identical to
  // per-element encoding, so everything downstream is bit-identical.
  EncodedElements out;
  const size_t count = batch.num_nodes();
  out.ids.resize(count);
  out.vectors.resize(count);
  out.token_sets.resize(count);
  out.sig_of.resize(count);
  std::vector<int32_t> pos(g.symbols().node_signatures.size(), -1);
  for (size_t slot = 0; slot < count; ++slot) {
    const size_t i = batch.node_begin + slot;
    out.ids[slot] = i;
    int32_t& p = pos[g.node(i).signature];
    if (p < 0) {
      p = static_cast<int32_t>(out.reps.size());
      out.reps.push_back(slot);
    }
    out.sig_of[slot] = static_cast<size_t>(p);
  }

  // Representatives write only their own slot; the embedder and key index
  // are read-only, so the parallel loops are race-free and
  // order-independent.
  std::vector<std::vector<float>> rep_vecs(out.reps.size());
  std::vector<std::vector<std::string>> rep_tokens(out.reps.size());
  ParallelFor(pool_, out.reps.size(), [&](size_t r) {
    const Node& n = g.node(batch.node_begin + out.reps[r]);

    std::vector<float> vec;
    vec.reserve(d + K);
    AppendScaled(&vec, embedder_->EmbedLabels(n.labels), options_.label_weight);
    vec.resize(d + K, 0.0f);
    std::vector<std::string> tokens;
    tokens.reserve(n.properties.size() + options_.minhash_label_copies);
    if (!n.labels.empty()) {
      const std::string token = CanonicalLabelToken(n.labels);
      for (int c = 0; c < options_.minhash_label_copies; ++c) {
        tokens.push_back("label" + std::to_string(c) + ":" + token);
      }
    }
    for (const auto& [k, v] : n.properties) {
      vec[d + key_index.at(k)] = 1.0f;
      tokens.push_back("prop:" + k);
    }
    rep_vecs[r] = std::move(vec);
    rep_tokens[r] = std::move(tokens);
  });
  ParallelFor(pool_, count, [&](size_t slot) {
    const size_t r = out.sig_of[slot];
    out.vectors[slot] = rep_vecs[r];
    out.token_sets[slot] = rep_tokens[r];
  });
  return out;
}

std::string FeatureEncoder::EndpointToken(
    const Node& node, const EndpointLabelMap& endpoint_labels) {
  if (!node.labels.empty()) return CanonicalLabelToken(node.labels);
  auto it = endpoint_labels.find(node.id);
  return it == endpoint_labels.end() ? std::string()
                                     : CanonicalLabelToken(it->second);
}

EncodedElements FeatureEncoder::EncodeEdges(
    const GraphBatch& batch, const EndpointLabelMap& endpoint_labels) const {
  const PropertyGraph& g = *batch.graph;
  auto key_index =
      BuildKeyIndex(g.symbols().key_sets, batch.edge_begin, batch.edge_end,
                    [&](size_t i) { return g.edge(i).key_set; });
  const size_t Q = key_index.size();
  const size_t d = static_cast<size_t>(embedder_->dimension());

  // An edge's encoding is a pure function of (label-set, key-set, source
  // token, target token). Labeled endpoints read their canonical token from
  // the pool (precomputed once per distinct label set); unlabeled ones are
  // memoized per node id.
  const SymbolSetPool& label_pool = g.symbols().label_sets;
  std::unordered_map<NodeId, std::string> unlabeled_memo;
  auto token_ref = [&](const Node& n) -> const std::string& {
    if (!n.labels.empty()) return label_pool.token(n.label_set);
    auto it = unlabeled_memo.find(n.id);
    if (it == unlabeled_memo.end()) {
      it = unlabeled_memo.emplace(n.id, EndpointToken(n, endpoint_labels))
               .first;
    }
    return it->second;
  };
  // Token CONTENT keys the grouping (views point into the pool and memo,
  // both address-stable).
  std::unordered_map<std::string_view, uint32_t> token_ids;
  auto token_id = [&](const std::string& s) -> uint32_t {
    return token_ids.emplace(s, static_cast<uint32_t>(token_ids.size()))
        .first->second;
  };

  EncodedElements out;
  const size_t count = batch.num_edges();
  out.ids.resize(count);
  out.vectors.resize(count);
  out.token_sets.resize(count);
  out.sig_of.resize(count);
  std::map<std::array<uint32_t, 3>, int32_t> group_pos;
  std::vector<const std::string*> rep_src, rep_tgt;
  for (size_t slot = 0; slot < count; ++slot) {
    const size_t i = batch.edge_begin + slot;
    out.ids[slot] = i;
    const Edge& e = g.edge(i);
    const std::string& src_token = token_ref(g.node(e.source));
    const std::string& tgt_token = token_ref(g.node(e.target));
    auto [it, fresh] = group_pos.try_emplace(
        {e.signature, token_id(src_token), token_id(tgt_token)},
        static_cast<int32_t>(out.reps.size()));
    if (fresh) {
      out.reps.push_back(slot);
      rep_src.push_back(&src_token);
      rep_tgt.push_back(&tgt_token);
    }
    out.sig_of[slot] = static_cast<size_t>(it->second);
  }

  std::vector<std::vector<float>> rep_vecs(out.reps.size());
  std::vector<std::vector<std::string>> rep_tokens(out.reps.size());
  ParallelFor(pool_, out.reps.size(), [&](size_t r) {
    const Edge& e = g.edge(batch.edge_begin + out.reps[r]);
    const std::string& src_token = *rep_src[r];
    const std::string& tgt_token = *rep_tgt[r];

    std::vector<float> vec;
    vec.reserve(3 * d + Q);
    AppendScaled(&vec, embedder_->EmbedLabels(e.labels), options_.label_weight);
    AppendScaled(&vec, embedder_->EmbedToken(src_token),
                 options_.label_weight);
    AppendScaled(&vec, embedder_->EmbedToken(tgt_token),
                 options_.label_weight);
    vec.resize(3 * d + Q, 0.0f);

    std::vector<std::string> tokens;
    tokens.reserve(e.properties.size() + 3 * options_.minhash_label_copies);
    if (!e.labels.empty()) {
      const std::string token = CanonicalLabelToken(e.labels);
      for (int c = 0; c < options_.minhash_label_copies; ++c) {
        tokens.push_back("label" + std::to_string(c) + ":" + token);
      }
    }
    if (!src_token.empty()) {
      for (int c = 0; c < options_.minhash_label_copies; ++c) {
        tokens.push_back("src" + std::to_string(c) + ":" + src_token);
      }
    }
    if (!tgt_token.empty()) {
      for (int c = 0; c < options_.minhash_label_copies; ++c) {
        tokens.push_back("tgt" + std::to_string(c) + ":" + tgt_token);
      }
    }
    for (const auto& [k, v] : e.properties) {
      vec[3 * d + key_index.at(k)] = 1.0f;
      tokens.push_back("prop:" + k);
    }
    rep_vecs[r] = std::move(vec);
    rep_tokens[r] = std::move(tokens);
  });
  ParallelFor(pool_, count, [&](size_t slot) {
    const size_t r = out.sig_of[slot];
    out.vectors[slot] = rep_vecs[r];
    out.token_sets[slot] = rep_tokens[r];
  });
  return out;
}

}  // namespace pghive
