#include "core/feature_encoder.h"

#include <map>
#include <set>

#include "common/string_util.h"
#include "runtime/parallel.h"

namespace pghive {

namespace {

/// Dense index over the distinct property keys of a batch slice.
template <typename GetElem>
std::unordered_map<std::string, size_t> BuildKeyIndex(size_t begin, size_t end,
                                                      GetElem get) {
  std::set<std::string> keys;
  for (size_t i = begin; i < end; ++i) {
    for (const auto& [k, v] : get(i).properties) keys.insert(k);
  }
  std::unordered_map<std::string, size_t> index;
  index.reserve(keys.size());
  size_t slot = 0;
  for (const auto& k : keys) index.emplace(k, slot++);
  return index;
}

void AppendScaled(std::vector<float>* out, const std::vector<float>& block,
                  double scale) {
  for (float v : block) out->push_back(static_cast<float>(v * scale));
}

}  // namespace

FeatureEncoder::FeatureEncoder(const LabelEmbedder* embedder,
                               FeatureEncoderOptions options, ThreadPool* pool)
    : embedder_(embedder), options_(options), pool_(pool) {}

EncodedElements FeatureEncoder::EncodeNodes(const GraphBatch& batch) const {
  const PropertyGraph& g = *batch.graph;
  auto key_index = BuildKeyIndex(batch.node_begin, batch.node_end,
                                 [&](size_t i) -> const Node& {
                                   return g.node(i);
                                 });
  const size_t K = key_index.size();
  const size_t d = static_cast<size_t>(embedder_->dimension());

  // Every element writes only its own slot; the embedder and key index are
  // read-only, so the parallel loop is race-free and order-independent.
  EncodedElements out;
  out.ids.resize(batch.num_nodes());
  out.vectors.resize(batch.num_nodes());
  out.token_sets.resize(batch.num_nodes());
  ParallelFor(pool_, batch.num_nodes(), [&](size_t slot) {
    const size_t i = batch.node_begin + slot;
    const Node& n = g.node(i);
    out.ids[slot] = i;

    std::vector<float> vec;
    vec.reserve(d + K);
    AppendScaled(&vec, embedder_->EmbedLabels(n.labels), options_.label_weight);
    vec.resize(d + K, 0.0f);
    std::vector<std::string> tokens;
    tokens.reserve(n.properties.size() + options_.minhash_label_copies);
    if (!n.labels.empty()) {
      const std::string token = CanonicalLabelToken(n.labels);
      for (int c = 0; c < options_.minhash_label_copies; ++c) {
        tokens.push_back("label" + std::to_string(c) + ":" + token);
      }
    }
    for (const auto& [k, v] : n.properties) {
      vec[d + key_index.at(k)] = 1.0f;
      tokens.push_back("prop:" + k);
    }
    out.vectors[slot] = std::move(vec);
    out.token_sets[slot] = std::move(tokens);
  });
  return out;
}

std::string FeatureEncoder::EndpointToken(
    const Node& node, const EndpointLabelMap& endpoint_labels) {
  if (!node.labels.empty()) return CanonicalLabelToken(node.labels);
  auto it = endpoint_labels.find(node.id);
  return it == endpoint_labels.end() ? std::string()
                                     : CanonicalLabelToken(it->second);
}

EncodedElements FeatureEncoder::EncodeEdges(
    const GraphBatch& batch, const EndpointLabelMap& endpoint_labels) const {
  const PropertyGraph& g = *batch.graph;
  auto key_index = BuildKeyIndex(batch.edge_begin, batch.edge_end,
                                 [&](size_t i) -> const Edge& {
                                   return g.edge(i);
                                 });
  const size_t Q = key_index.size();
  const size_t d = static_cast<size_t>(embedder_->dimension());

  EncodedElements out;
  out.ids.resize(batch.num_edges());
  out.vectors.resize(batch.num_edges());
  out.token_sets.resize(batch.num_edges());
  ParallelFor(pool_, batch.num_edges(), [&](size_t slot) {
    const size_t i = batch.edge_begin + slot;
    const Edge& e = g.edge(i);
    const Node& src = g.node(e.source);
    const Node& tgt = g.node(e.target);
    const std::string src_token = EndpointToken(src, endpoint_labels);
    const std::string tgt_token = EndpointToken(tgt, endpoint_labels);
    out.ids[slot] = i;

    std::vector<float> vec;
    vec.reserve(3 * d + Q);
    AppendScaled(&vec, embedder_->EmbedLabels(e.labels), options_.label_weight);
    AppendScaled(&vec, embedder_->EmbedToken(src_token),
                 options_.label_weight);
    AppendScaled(&vec, embedder_->EmbedToken(tgt_token),
                 options_.label_weight);
    vec.resize(3 * d + Q, 0.0f);

    std::vector<std::string> tokens;
    tokens.reserve(e.properties.size() + 3 * options_.minhash_label_copies);
    if (!e.labels.empty()) {
      const std::string token = CanonicalLabelToken(e.labels);
      for (int c = 0; c < options_.minhash_label_copies; ++c) {
        tokens.push_back("label" + std::to_string(c) + ":" + token);
      }
    }
    if (!src_token.empty()) {
      for (int c = 0; c < options_.minhash_label_copies; ++c) {
        tokens.push_back("src" + std::to_string(c) + ":" + src_token);
      }
    }
    if (!tgt_token.empty()) {
      for (int c = 0; c < options_.minhash_label_copies; ++c) {
        tokens.push_back("tgt" + std::to_string(c) + ":" + tgt_token);
      }
    }
    for (const auto& [k, v] : e.properties) {
      vec[3 * d + key_index.at(k)] = 1.0f;
      tokens.push_back("prop:" + k);
    }
    out.vectors[slot] = std::move(vec);
    out.token_sets[slot] = std::move(tokens);
  });
  return out;
}

}  // namespace pghive
