#include "core/feature_encoder.h"

#include <array>
#include <map>
#include <set>

#include "common/hash.h"
#include "common/string_util.h"
#include "obs/trace.h"
#include "runtime/parallel.h"

namespace pghive {

namespace {

/// Dense index over the distinct property keys of a batch slice, plus the
/// pre-hashed "prop:<key>" MinHash token per key slot (computed once per
/// distinct key instead of once per element). Visits each distinct interned
/// key set once instead of every element's map.
struct KeyIndex {
  std::unordered_map<std::string, size_t> slots;
  std::vector<uint64_t> prop_hash;  // slot -> HashString("prop:" + key)
};

template <typename GetKeySet>
KeyIndex BuildKeyIndex(const SymbolSetPool& pool, size_t begin, size_t end,
                       GetKeySet get) {
  std::vector<char> seen(pool.size(), 0);
  std::set<std::string> keys;
  for (size_t i = begin; i < end; ++i) {
    const KeySetId ks = get(i);
    if (seen[ks]) continue;
    seen[ks] = 1;
    const std::set<std::string>& s = pool.strings(ks);
    keys.insert(s.begin(), s.end());
  }
  KeyIndex index;
  index.slots.reserve(keys.size());
  index.prop_hash.reserve(keys.size());
  size_t slot = 0;
  for (const auto& k : keys) {
    index.slots.emplace(k, slot++);
    index.prop_hash.push_back(HashString("prop:" + k));
  }
  return index;
}

/// Appends the `copies` duplicated weighted-MinHash tokens for one label /
/// endpoint token ("<prefix><c>:<token>"), pre-hashed.
uint64_t* AppendCopyTokens(uint64_t* out, const char* prefix,
                           const std::string& token, int copies) {
  for (int c = 0; c < copies; ++c) {
    *out++ = HashString(prefix + std::to_string(c) + ":" + token);
  }
  return out;
}

}  // namespace

std::vector<float> EncodedElements::VectorOf(size_t slot) const {
  const float* row = features.row(sig_of[slot]);
  return std::vector<float>(row, row + dim);
}

std::vector<uint64_t> EncodedElements::TokensOf(size_t slot) const {
  const size_t g = sig_of[slot];
  return std::vector<uint64_t>(token_hashes.begin() + token_begin[g],
                               token_hashes.begin() + token_begin[g + 1]);
}

FeatureEncoder::FeatureEncoder(const LabelEmbedder* embedder,
                               FeatureEncoderOptions options, ThreadPool* pool)
    : embedder_(embedder), options_(options), pool_(pool) {}

EncodedElements FeatureEncoder::EncodeNodes(const GraphBatch& batch) const {
  const PropertyGraph& g = *batch.graph;
  auto key_index =
      BuildKeyIndex(g.symbols().key_sets, batch.node_begin, batch.node_end,
                    [&](size_t i) { return g.node(i).key_set; });
  const size_t K = key_index.slots.size();
  const size_t d = static_cast<size_t>(embedder_->dimension());

  // A node's encoding is a pure function of its (label-set, key-set)
  // signature (plus the shared key index), so each distinct signature is
  // encoded once — into its own aligned feature row and token-pool slice —
  // and members reach it through sig_of. Value-identical to per-element
  // encoding, so everything downstream is bit-identical.
  EncodedElements out;
  const size_t count = batch.num_nodes();
  out.ids.resize(count);
  out.sig_of.resize(count);
  out.dim = d + K;
  std::vector<int32_t> pos(g.symbols().node_signatures.size(), -1);
  for (size_t slot = 0; slot < count; ++slot) {
    const size_t i = batch.node_begin + slot;
    out.ids[slot] = i;
    int32_t& p = pos[g.node(i).signature];
    if (p < 0) {
      p = static_cast<int32_t>(out.reps.size());
      out.reps.push_back(slot);
    }
    out.sig_of[slot] = static_cast<size_t>(p);
  }

  obs::ScopedSpan embed_span("pipeline.encode_nodes.embed",
                             &out.embed_seconds);
  // Per-group token counts are knowable upfront (label copies + key-set
  // size), so the flat token pool is sized by prefix sums and each group
  // fills exactly its own slice — race-free and order-independent, like the
  // feature rows.
  const GraphSymbols& sym = g.symbols();
  out.token_begin.resize(out.reps.size() + 1, 0);
  for (size_t r = 0; r < out.reps.size(); ++r) {
    const Node& n = g.node(batch.node_begin + out.reps[r]);
    const size_t labels =
        n.label_set == SymbolSetPool::kEmpty ? 0 : options_.minhash_label_copies;
    out.token_begin[r + 1] = out.token_begin[r] +
                             static_cast<uint32_t>(
                                 labels + sym.key_sets.set_size(n.key_set));
  }
  out.token_hashes.resize(out.token_begin.back());
  out.features.Reset(out.reps.size(), out.dim);

  ParallelFor(pool_, out.reps.size(), [&](size_t r) {
    const Node& n = g.node(batch.node_begin + out.reps[r]);
    float* row = out.features.row(r);
    const std::vector<float> wl = embedder_->EmbedLabels(n.labels);
    for (size_t i = 0; i < d; ++i) {
      row[i] = static_cast<float>(wl[i] * options_.label_weight);
    }
    uint64_t* tok = out.token_hashes.data() + out.token_begin[r];
    if (!n.labels.empty()) {
      tok = AppendCopyTokens(tok, "label", sym.label_sets.token(n.label_set),
                             options_.minhash_label_copies);
    }
    for (const auto& [k, v] : n.properties) {
      const size_t s = key_index.slots.at(k);
      row[d + s] = 1.0f;
      *tok++ = key_index.prop_hash[s];
    }
  });
  return out;
}

std::string FeatureEncoder::EndpointToken(
    const Node& node, const EndpointLabelMap& endpoint_labels) {
  if (!node.labels.empty()) return CanonicalLabelToken(node.labels);
  auto it = endpoint_labels.find(node.id);
  return it == endpoint_labels.end() ? std::string()
                                     : CanonicalLabelToken(it->second);
}

EncodedElements FeatureEncoder::EncodeEdges(
    const GraphBatch& batch, const EndpointLabelMap& endpoint_labels) const {
  const PropertyGraph& g = *batch.graph;
  auto key_index =
      BuildKeyIndex(g.symbols().key_sets, batch.edge_begin, batch.edge_end,
                    [&](size_t i) { return g.edge(i).key_set; });
  const size_t Q = key_index.slots.size();
  const size_t d = static_cast<size_t>(embedder_->dimension());

  // An edge's encoding is a pure function of (label-set, key-set, source
  // token, target token). Labeled endpoints read their canonical token from
  // the pool (precomputed once per distinct label set); unlabeled ones are
  // memoized per node id.
  const SymbolSetPool& label_pool = g.symbols().label_sets;
  std::unordered_map<NodeId, std::string> unlabeled_memo;
  auto token_ref = [&](const Node& n) -> const std::string& {
    if (!n.labels.empty()) return label_pool.token(n.label_set);
    auto it = unlabeled_memo.find(n.id);
    if (it == unlabeled_memo.end()) {
      it = unlabeled_memo.emplace(n.id, EndpointToken(n, endpoint_labels))
               .first;
    }
    return it->second;
  };
  // Token CONTENT keys the grouping (views point into the pool and memo,
  // both address-stable).
  std::unordered_map<std::string_view, uint32_t> token_ids;
  auto token_id = [&](const std::string& s) -> uint32_t {
    return token_ids.emplace(s, static_cast<uint32_t>(token_ids.size()))
        .first->second;
  };

  EncodedElements out;
  const size_t count = batch.num_edges();
  out.ids.resize(count);
  out.sig_of.resize(count);
  out.dim = 3 * d + Q;
  std::map<std::array<uint32_t, 3>, int32_t> group_pos;
  std::vector<const std::string*> rep_src, rep_tgt;
  for (size_t slot = 0; slot < count; ++slot) {
    const size_t i = batch.edge_begin + slot;
    out.ids[slot] = i;
    const Edge& e = g.edge(i);
    const std::string& src_token = token_ref(g.node(e.source));
    const std::string& tgt_token = token_ref(g.node(e.target));
    auto [it, fresh] = group_pos.try_emplace(
        {e.signature, token_id(src_token), token_id(tgt_token)},
        static_cast<int32_t>(out.reps.size()));
    if (fresh) {
      out.reps.push_back(slot);
      rep_src.push_back(&src_token);
      rep_tgt.push_back(&tgt_token);
    }
    out.sig_of[slot] = static_cast<size_t>(it->second);
  }

  obs::ScopedSpan embed_span("pipeline.encode_edges.embed",
                             &out.embed_seconds);
  const GraphSymbols& sym = g.symbols();
  const size_t copies = static_cast<size_t>(options_.minhash_label_copies);
  out.token_begin.resize(out.reps.size() + 1, 0);
  for (size_t r = 0; r < out.reps.size(); ++r) {
    const Edge& e = g.edge(batch.edge_begin + out.reps[r]);
    size_t n = sym.key_sets.set_size(e.key_set);
    if (e.label_set != SymbolSetPool::kEmpty) n += copies;
    if (!rep_src[r]->empty()) n += copies;
    if (!rep_tgt[r]->empty()) n += copies;
    out.token_begin[r + 1] = out.token_begin[r] + static_cast<uint32_t>(n);
  }
  out.token_hashes.resize(out.token_begin.back());
  out.features.Reset(out.reps.size(), out.dim);

  ParallelFor(pool_, out.reps.size(), [&](size_t r) {
    const Edge& e = g.edge(batch.edge_begin + out.reps[r]);
    const std::string& src_token = *rep_src[r];
    const std::string& tgt_token = *rep_tgt[r];

    float* row = out.features.row(r);
    const std::vector<float> we = embedder_->EmbedLabels(e.labels);
    const std::vector<float> ws = embedder_->EmbedToken(src_token);
    const std::vector<float> wt = embedder_->EmbedToken(tgt_token);
    for (size_t i = 0; i < d; ++i) {
      row[i] = static_cast<float>(we[i] * options_.label_weight);
      row[d + i] = static_cast<float>(ws[i] * options_.label_weight);
      row[2 * d + i] = static_cast<float>(wt[i] * options_.label_weight);
    }

    uint64_t* tok = out.token_hashes.data() + out.token_begin[r];
    if (!e.labels.empty()) {
      tok = AppendCopyTokens(tok, "label", label_pool.token(e.label_set),
                             options_.minhash_label_copies);
    }
    if (!src_token.empty()) {
      tok = AppendCopyTokens(tok, "src", src_token,
                             options_.minhash_label_copies);
    }
    if (!tgt_token.empty()) {
      tok = AppendCopyTokens(tok, "tgt", tgt_token,
                             options_.minhash_label_copies);
    }
    for (const auto& [k, v] : e.properties) {
      const size_t s = key_index.slots.at(k);
      row[3 * d + s] = 1.0f;
      *tok++ = key_index.prop_hash[s];
    }
  });
  return out;
}

}  // namespace pghive
