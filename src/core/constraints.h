// Property-constraint inference (paper §4.4, "Property constraints").
//
// A property p is MANDATORY for a type T iff it appears in every assigned
// instance of T (frequency f_T(p) = 1), OPTIONAL otherwise. Soundness: every
// property marked mandatory is indeed present in all instances (§4.7).

#ifndef PGHIVE_CORE_CONSTRAINTS_H_
#define PGHIVE_CORE_CONSTRAINTS_H_

#include "core/schema.h"
#include "graph/property_graph.h"
#include "runtime/thread_pool.h"

namespace pghive {

/// Fills the `mandatory` flag of every property constraint of every type in
/// `schema`, creating constraint entries (with default String datatype) for
/// properties that do not have one yet. Types without instances keep all
/// properties optional. Types are independent, so `pool` fans the per-type
/// scans out (null = sequential; output identical either way).
void InferPropertyConstraints(const PropertyGraph& g, SchemaGraph* schema,
                              ThreadPool* pool = nullptr);

/// Frequency f_T(p): fraction of the type's instances carrying property p.
/// Exposed for tests. Returns 0 for an instance-less type.
double NodePropertyFrequency(const PropertyGraph& g, const SchemaNodeType& t,
                             const std::string& key);
double EdgePropertyFrequency(const PropertyGraph& g, const SchemaEdgeType& t,
                             const std::string& key);

}  // namespace pghive

#endif  // PGHIVE_CORE_CONSTRAINTS_H_
