// Property value statistics and enumeration detection (paper §6 future
// work: "for enumerations and value semantics, we should leverage the
// property values, along with additional schema constraints" — implemented
// here as an optional post-processing pass).
//
// For every (type, property) pair the pass collects per-value statistics
// over the assigned instances: observed count, null/absent count, distinct
// count, numeric min/max, lexical min/max, and the most frequent values.
// Properties whose distinct value set is small relative to their support
// are flagged as enumeration candidates, with the value domain recorded —
// the "enumerated types and bounded ranges" the paper defers.

#ifndef PGHIVE_CORE_VALUE_STATS_H_
#define PGHIVE_CORE_VALUE_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/schema.h"
#include "graph/property_graph.h"
#include "runtime/thread_pool.h"

namespace pghive {

/// Statistics of one property within one type.
struct PropertyStats {
  size_t observed = 0;        // instances carrying the property
  size_t absent = 0;          // instances of the type without it
  size_t distinct = 0;        // distinct lexical values
  /// Numeric range (valid when numeric_count > 0).
  size_t numeric_count = 0;
  double numeric_min = 0.0;
  double numeric_max = 0.0;
  /// Lexicographic range over the lexical forms (valid when observed > 0).
  std::string lexical_min;
  std::string lexical_max;
  /// Most frequent lexical values, descending by count (ties by value).
  std::vector<std::pair<std::string, size_t>> top_values;
  /// True when the property looks like an enumeration: distinct values are
  /// few in absolute terms and relative to support (see ValueStatsOptions).
  bool enum_candidate = false;
  /// The full value domain when enum_candidate (sorted).
  std::vector<std::string> enum_domain;
};

struct ValueStatsOptions {
  /// How many of the most frequent values to keep per property.
  size_t top_k = 5;
  /// A property is an enumeration candidate when distinct <= max_enum_size
  /// and distinct <= enum_support_ratio * observed, with at least
  /// min_enum_support observations.
  size_t max_enum_size = 8;
  double enum_support_ratio = 0.2;
  size_t min_enum_support = 10;
};

/// Per-type property statistics, keyed by property name.
using TypeValueStats = std::map<std::string, PropertyStats>;

/// The stats of every node and edge type, parallel to the schema's type
/// vectors.
struct SchemaValueStats {
  std::vector<TypeValueStats> node_types;
  std::vector<TypeValueStats> edge_types;
};

/// Computes value statistics for every (type, property) of the schema over
/// the instances assigned in it. `pool` (optional) distributes the
/// per-type scans across workers; each type's statistics are computed by
/// exactly the sequential code, so the result does not depend on the
/// thread count.
SchemaValueStats ComputeValueStats(const PropertyGraph& g,
                                   const SchemaGraph& schema,
                                   const ValueStatsOptions& options = {},
                                   ThreadPool* pool = nullptr);

/// Renders one property's statistics on a single line ("observed=40
/// distinct=3 ENUM{a, b, c}").
std::string FormatPropertyStats(const PropertyStats& stats);

}  // namespace pghive

#endif  // PGHIVE_CORE_VALUE_STATS_H_
