#include "core/schema.h"

#include <algorithm>

namespace pghive {

const char* SchemaCardinalityName(SchemaCardinality c) {
  switch (c) {
    case SchemaCardinality::kUnknown:
      return "?";
    case SchemaCardinality::kZeroOrOne:
      return "0:1";
    case SchemaCardinality::kManyToOne:
      return "N:1";
    case SchemaCardinality::kOneToMany:
      return "0:N";
    case SchemaCardinality::kManyToMany:
      return "M:N";
  }
  return "?";
}

int SchemaGraph::FindNodeTypeByLabels(
    const std::set<std::string>& labels) const {
  for (size_t i = 0; i < node_types.size(); ++i) {
    if (node_types[i].labels == labels) return static_cast<int>(i);
  }
  return -1;
}

int SchemaGraph::FindEdgeTypeByLabels(
    const std::set<std::string>& labels) const {
  for (size_t i = 0; i < edge_types.size(); ++i) {
    if (edge_types[i].labels == labels) return static_cast<int>(i);
  }
  return -1;
}

namespace {

bool IsSubset(const std::set<std::string>& sub,
              const std::set<std::string>& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

}  // namespace

bool SchemaCovers(const SchemaGraph& super, const SchemaGraph& sub) {
  for (const auto& t : sub.node_types) {
    bool covered = false;
    for (const auto& s : super.node_types) {
      if (IsSubset(t.labels, s.labels) &&
          IsSubset(t.property_keys, s.property_keys)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  for (const auto& t : sub.edge_types) {
    bool covered = false;
    for (const auto& s : super.edge_types) {
      if (IsSubset(t.labels, s.labels) &&
          IsSubset(t.property_keys, s.property_keys) &&
          IsSubset(t.source_labels, s.source_labels) &&
          IsSubset(t.target_labels, s.target_labels)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

std::string SchemaSummary(const SchemaGraph& schema) {
  size_t abstract_nodes = 0;
  for (const auto& t : schema.node_types) {
    if (t.is_abstract) ++abstract_nodes;
  }
  std::string out = std::to_string(schema.node_types.size()) +
                    " node types (" + std::to_string(abstract_nodes) +
                    " abstract), " + std::to_string(schema.edge_types.size()) +
                    " edge types";
  return out;
}

}  // namespace pghive
