#include "core/constraints.h"

#include <unordered_map>

#include "runtime/parallel.h"

namespace pghive {

namespace {

// Histogram of interned key-set ids over a type's instances. All
// key-presence questions reduce to "does key k appear in key set ks",
// answered once per distinct set instead of once per instance.
template <typename GetKeySet>
std::unordered_map<KeySetId, size_t> KeySetCounts(
    const std::vector<size_t>& instances, GetKeySet get_ks) {
  std::unordered_map<KeySetId, size_t> counts;
  for (auto id : instances) ++counts[get_ks(id)];
  return counts;
}

size_t CountWithKey(const GraphSymbols& sym,
                    const std::unordered_map<KeySetId, size_t>& ks_counts,
                    const std::string& key) {
  size_t count = 0;
  for (const auto& [ks, n] : ks_counts) {
    if (sym.key_sets.strings(ks).count(key)) count += n;
  }
  return count;
}

// Flips the mandatory bit for keys present in every instance.
template <typename TypeT, typename GetKeySet>
void InferForType(const GraphSymbols& sym, TypeT* t, GetKeySet get_ks) {
  auto ks_counts = KeySetCounts(t->instances, get_ks);
  for (const auto& key : t->property_keys) {
    PropertyConstraint& c = t->constraints[key];  // default-insert
    c.mandatory = !t->instances.empty() &&
                  CountWithKey(sym, ks_counts, key) == t->instances.size();
  }
}

template <typename TypeT, typename GetKeySet>
double Frequency(const GraphSymbols& sym, const TypeT& t,
                 const std::string& key, GetKeySet get_ks) {
  if (t.instances.empty()) return 0.0;
  auto ks_counts = KeySetCounts(t.instances, get_ks);
  return static_cast<double>(CountWithKey(sym, ks_counts, key)) /
         static_cast<double>(t.instances.size());
}

}  // namespace

void InferPropertyConstraints(const PropertyGraph& g, SchemaGraph* schema,
                              ThreadPool* pool) {
  // Each type only touches its own constraint map, so the per-type scans
  // run independently (grain 1: instance counts vary wildly across types).
  ParallelFor(
      pool, schema->node_types.size(),
      [&](size_t i) {
        InferForType(g.symbols(), &schema->node_types[i],
                     [&](NodeId id) { return g.node(id).key_set; });
      },
      /*grain=*/1);
  ParallelFor(
      pool, schema->edge_types.size(),
      [&](size_t i) {
        InferForType(g.symbols(), &schema->edge_types[i],
                     [&](EdgeId id) { return g.edge(id).key_set; });
      },
      /*grain=*/1);
}

double NodePropertyFrequency(const PropertyGraph& g, const SchemaNodeType& t,
                             const std::string& key) {
  return Frequency(g.symbols(), t, key,
                   [&](NodeId id) { return g.node(id).key_set; });
}

double EdgePropertyFrequency(const PropertyGraph& g, const SchemaEdgeType& t,
                             const std::string& key) {
  return Frequency(g.symbols(), t, key,
                   [&](EdgeId id) { return g.edge(id).key_set; });
}

}  // namespace pghive
