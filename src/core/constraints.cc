#include "core/constraints.h"

#include <unordered_map>

namespace pghive {

namespace {

// Counts key occurrences over instances and flips the mandatory bit for
// keys present in all of them.
template <typename TypeT, typename GetElem>
void InferForType(TypeT* t, GetElem get) {
  std::unordered_map<std::string, size_t> counts;
  for (auto id : t->instances) {
    for (const auto& [k, v] : get(id).properties) ++counts[k];
  }
  for (const auto& key : t->property_keys) {
    PropertyConstraint& c = t->constraints[key];  // default-insert
    auto it = counts.find(key);
    c.mandatory = !t->instances.empty() && it != counts.end() &&
                  it->second == t->instances.size();
  }
}

template <typename TypeT, typename GetElem>
double Frequency(const PropertyGraph&, const TypeT& t, const std::string& key,
                 GetElem get) {
  if (t.instances.empty()) return 0.0;
  size_t count = 0;
  for (auto id : t.instances) {
    if (get(id).properties.count(key)) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(t.instances.size());
}

}  // namespace

void InferPropertyConstraints(const PropertyGraph& g, SchemaGraph* schema) {
  for (auto& t : schema->node_types) {
    InferForType(&t, [&](NodeId id) -> const Node& { return g.node(id); });
  }
  for (auto& t : schema->edge_types) {
    InferForType(&t, [&](EdgeId id) -> const Edge& { return g.edge(id); });
  }
}

double NodePropertyFrequency(const PropertyGraph& g, const SchemaNodeType& t,
                             const std::string& key) {
  return Frequency(g, t, key,
                   [&](NodeId id) -> const Node& { return g.node(id); });
}

double EdgePropertyFrequency(const PropertyGraph& g, const SchemaEdgeType& t,
                             const std::string& key) {
  return Frequency(g, t, key,
                   [&](EdgeId id) -> const Edge& { return g.edge(id); });
}

}  // namespace pghive
