// Schema validation: checking a property graph against a discovered schema.
//
// PG-Schema distinguishes STRICT and LOOSE typing (paper §3 "Schema
// constraint level" and §4.5): a STRICT schema requires every element to
// match a type exactly — labels, mandatory properties, datatypes,
// endpoints, cardinalities — while a LOOSE schema only requires that each
// element is *covered* by some type (its labels and properties are a subset
// of a type's). Validation is the flip side of discovery: a schema
// discovered from a graph must validate that same graph (tested as an
// invariant), and newly arriving data can be screened against the schema
// before ingestion.

#ifndef PGHIVE_CORE_VALIDATION_H_
#define PGHIVE_CORE_VALIDATION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/schema.h"
#include "graph/property_graph.h"

namespace pghive {

enum class ValidationMode { kLoose, kStrict };

/// What went wrong for one element.
enum class ViolationKind {
  kNoMatchingType,        // no type covers the element
  kMissingMandatory,      // a MANDATORY property is absent (STRICT)
  kDatatypeMismatch,      // value incompatible with the declared type (STRICT)
  kUndeclaredProperty,    // property not in the matched type (STRICT)
  kEndpointMismatch,      // edge endpoints outside the type's rho_e (STRICT)
  kCardinalityExceeded,   // fan-out/in above the declared class (STRICT)
};

const char* ViolationKindName(ViolationKind kind);

struct Violation {
  ViolationKind kind;
  bool is_edge = false;
  size_t element_id = 0;       // NodeId or EdgeId
  std::string type_name;       // matched (or best-candidate) type, if any
  std::string detail;          // human-readable specifics

  std::string ToString() const;
};

struct ValidationReport {
  ValidationMode mode = ValidationMode::kLoose;
  size_t elements_checked = 0;
  size_t elements_valid = 0;
  std::vector<Violation> violations;

  bool valid() const { return violations.empty(); }
  double validity_ratio() const {
    return elements_checked
               ? static_cast<double>(elements_valid) / elements_checked
               : 1.0;
  }

  /// Multi-line summary ("3 violations: ...").
  std::string Summary() const;
};

struct ValidationOptions {
  ValidationMode mode = ValidationMode::kLoose;
  /// Stop collecting after this many violations (0 = unlimited).
  size_t max_violations = 0;
};

/// Validates every node and edge of `g` against `schema`.
///
/// LOOSE: an element is valid iff some type's label set contains the
/// element's labels and the type's property keys contain the element's
/// keys (edges additionally need endpoint-label containment).
///
/// STRICT: the element must additionally carry every MANDATORY property of
/// the matched type with a datatype-compatible value, carry no undeclared
/// properties, and — for edges — respect the type's cardinality class.
ValidationReport ValidateGraph(const PropertyGraph& g,
                               const SchemaGraph& schema,
                               const ValidationOptions& options = {});

/// True iff `observed` can be stored under declared type `declared`
/// (Int fits Double, Date fits Timestamp, everything fits String).
bool DataTypeAccepts(DataType declared, DataType observed);

}  // namespace pghive

#endif  // PGHIVE_CORE_VALIDATION_H_
