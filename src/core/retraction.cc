#include "core/retraction.h"

#include <algorithm>
#include <functional>
#include <unordered_set>

#include "graph/symbols.h"

namespace pghive {

void RetractionIndex::Rebuild(const SchemaGraph& schema) {
  nodes_ = Kind();
  edges_ = Kind();
  Sync(schema);
}

void RetractionIndex::Sync(const SchemaGraph& schema) {
  SyncKind(&nodes_, schema.node_types);
  SyncKind(&edges_, schema.edge_types);
}

namespace {

void UnionInto(std::set<std::string>* out, const std::set<std::string>& in) {
  out->insert(in.begin(), in.end());
}

/// Recomputes a type's derived string sets from the count maps: the union
/// over every interned set still carried by >=1 survivor — exactly what
/// extraction's merges accumulated, minus what retraction removed.
template <typename SchemaType>
void RecomputeDerivedSets(const GraphSymbols& sym, const TypeAggregate& agg,
                          SchemaType* type) {
  type->labels.clear();
  for (const auto& [ls, n] : agg.label_set_counts) {
    UnionInto(&type->labels, sym.label_sets.strings(ls));
  }
  type->property_keys.clear();
  for (const auto& [ks, n] : agg.key_set_counts) {
    UnionInto(&type->property_keys, sym.key_sets.strings(ks));
  }
  // Constraints for keys no survivor carries are stale — post-processing
  // only ever overwrites live keys, it never erases.
  for (auto it = type->constraints.begin(); it != type->constraints.end();) {
    if (type->property_keys.count(it->first) == 0) {
      it = type->constraints.erase(it);
    } else {
      ++it;
    }
  }
  if constexpr (std::is_same_v<SchemaType, SchemaEdgeType>) {
    // Unlabeled endpoints count under the empty label set, whose string set
    // is empty — they drop out of the union on their own. Endpoint labels
    // contributed by the discovered-type fallback of BuildEdgeClusters
    // (unlabeled endpoint nodes) are NOT reproducible from the histograms
    // and are conservatively dropped here; fully labeled graphs are exact.
    type->source_labels.clear();
    for (const auto& [ls, n] : agg.src_set_counts) {
      UnionInto(&type->source_labels, sym.label_sets.strings(ls));
    }
    type->target_labels.clear();
    for (const auto& [ls, n] : agg.tgt_set_counts) {
      UnionInto(&type->target_labels, sym.label_sets.strings(ls));
    }
  }
}

/// Shared per-kind driver. `retract_one` subtracts one element from the
/// aggregate; `rescan` recomputes one (type, key) extremum; `rebuild`
/// refolds the whole type from survivors.
template <typename TypeVec, typename Id, typename TypeOfFn, typename EraseFn,
          typename RetractFn, typename RescanFn, typename RebuildFn>
Status RetractKind(const std::vector<Id>& deleted,
                   const char* what, TypeVec* types,
                   std::vector<TypeAggregate>* aggs,
                   std::unordered_map<uint64_t, std::vector<Id>>* by_type_out,
                   const TypeOfFn& type_of, const EraseFn& erase_id,
                   const RetractFn& retract_one, const RescanFn& rescan,
                   const RebuildFn& rebuild, uint64_t* retracted,
                   uint64_t* rebuilds, uint64_t* rescans) {
  // Group by owning type, consuming the index entries as we go so a
  // double-delete inside one batch fails the lookup like any unknown id.
  std::unordered_map<uint64_t, std::vector<Id>>& by_type = *by_type_out;
  for (Id id : deleted) {
    const int t = type_of(id);
    if (t < 0) {
      return Status::InvalidArgument(std::string("cannot delete ") + what +
                                     " " + std::to_string(id) +
                                     ": unknown or already deleted");
    }
    by_type[static_cast<uint64_t>(t)].push_back(id);
    erase_id(id);
  }

  for (auto& [t, ids] : by_type) {
    auto& type = (*types)[t];
    TypeAggregate& agg = (*aggs)[t];
    // Compact the instance list FIRST: extremum rescans and underflow
    // rebuilds must see only survivors.
    const std::unordered_set<uint64_t> dead(ids.begin(), ids.end());
    size_t w = 0;
    for (size_t r = 0; r < type.instances.size(); ++r) {
      if (dead.count(type.instances[r])) continue;
      type.instances[w++] = type.instances[r];
    }
    if (type.instances.size() - w != dead.size()) {
      return Status::Internal(std::string("retraction index out of sync: ") +
                              what + " ids missing from type '" + type.name +
                              "' instance list");
    }
    type.instances.resize(w);

    RetractOutcome out;
    for (Id id : ids) retract_one(id, &agg, &out);
    if (!out.ok) {
      agg = rebuild(type);
      ++*rebuilds;
    } else if (!out.rescan_keys.empty()) {
      std::sort(out.rescan_keys.begin(), out.rescan_keys.end());
      out.rescan_keys.erase(
          std::unique(out.rescan_keys.begin(), out.rescan_keys.end()),
          out.rescan_keys.end());
      for (SymbolId key : out.rescan_keys) {
        // The key's last carrier may have retracted, erasing the entry.
        auto it = agg.keys.find(key);
        if (it == agg.keys.end()) continue;
        rescan(type, key, &it->second);
        ++*rescans;
      }
    }
    *retracted += ids.size();
  }
  return Status::OK();
}

}  // namespace

Status RetractInstances(const PropertyGraph& g,
                        const std::vector<NodeId>& deleted_nodes,
                        const std::vector<EdgeId>& deleted_edges,
                        SchemaGraph* schema, SchemaAggregates* aggregates,
                        RetractionIndex* index, RetractionStats* stats) {
  const GraphSymbols& sym = g.symbols();

  // Edges first: retiring edge types never disturbs node-type indices, and
  // an edge's endpoint data stays readable either way (the graph itself is
  // append-only — deletion is a schema-membership fact).
  std::unordered_map<uint64_t, std::vector<EdgeId>> edges_by_type;
  PGHIVE_RETURN_NOT_OK(RetractKind(
      deleted_edges, "edge", &schema->edge_types, &aggregates->edge_types,
      &edges_by_type, [&](EdgeId id) { return index->EdgeTypeOf(id); },
      [&](EdgeId id) { index->EraseEdge(id); },
      [&](EdgeId id, TypeAggregate* agg, RetractOutcome* out) {
        RetractEdgeElement(g, g.edge(id), agg, out);
      },
      [&](const SchemaEdgeType& t, SymbolId key, PropertyAggregate* pa) {
        RescanEdgeNumericExtrema(g, t, key, pa);
      },
      [&](const SchemaEdgeType& t) { return RebuildEdgeAggregate(g, t); },
      &stats->edges_retracted, &stats->aggregate_rebuilds,
      &stats->extremum_rescans));

  std::unordered_map<uint64_t, std::vector<NodeId>> nodes_by_type;
  PGHIVE_RETURN_NOT_OK(RetractKind(
      deleted_nodes, "node", &schema->node_types, &aggregates->node_types,
      &nodes_by_type, [&](NodeId id) { return index->NodeTypeOf(id); },
      [&](NodeId id) { index->EraseNode(id); },
      [&](NodeId id, TypeAggregate* agg, RetractOutcome* out) {
        RetractNodeElement(sym, g.node(id), agg, out);
      },
      [&](const SchemaNodeType& t, SymbolId key, PropertyAggregate* pa) {
        RescanNodeNumericExtrema(g, t, key, pa);
      },
      [&](const SchemaNodeType& t) { return RebuildNodeAggregate(g, t); },
      &stats->nodes_retracted, &stats->aggregate_rebuilds,
      &stats->extremum_rescans));

  // Dangling-edge check: a deleted node must not survive as an endpoint of
  // a live edge. Checking only the touched edges' endpoints would miss
  // edges of untouched types, so check deleted nodes against the index via
  // the edges of every touched NODE's id — cheapest exact check is per
  // deleted node over its incident edges, which the graph does not index;
  // instead the equivalence contract is enforced where edges are applied
  // (drift::ApplyMutationBatch validates endpoint closure with the batch's
  // deletion sets in hand).

  // Survivor bookkeeping + retirement, per kind, descending index so the
  // erases don't shift pending indices.
  std::vector<size_t> retired;
  for (const auto& [t, ids] : edges_by_type) {
    if (schema->edge_types[t].instances.empty()) {
      retired.push_back(t);
    } else {
      RecomputeDerivedSets(sym, aggregates->edge_types[t],
                           &schema->edge_types[t]);
    }
    index->SetEdgeWatermark(t, schema->edge_types[t].instances.size());
  }
  std::sort(retired.rbegin(), retired.rend());
  for (size_t t : retired) {
    schema->edge_types.erase(schema->edge_types.begin() +
                             static_cast<ptrdiff_t>(t));
    aggregates->edge_types.erase(aggregates->edge_types.begin() +
                                 static_cast<ptrdiff_t>(t));
    index->RetireEdgeType(t);
    ++stats->edge_types_retired;
  }

  retired.clear();
  for (const auto& [t, ids] : nodes_by_type) {
    if (schema->node_types[t].instances.empty()) {
      retired.push_back(t);
    } else {
      RecomputeDerivedSets(sym, aggregates->node_types[t],
                           &schema->node_types[t]);
    }
    index->SetNodeWatermark(t, schema->node_types[t].instances.size());
  }
  std::sort(retired.rbegin(), retired.rend());
  for (size_t t : retired) {
    schema->node_types.erase(schema->node_types.begin() +
                             static_cast<ptrdiff_t>(t));
    aggregates->node_types.erase(aggregates->node_types.begin() +
                                 static_cast<ptrdiff_t>(t));
    index->RetireNodeType(t);
    ++stats->node_types_retired;
  }
  return Status::OK();
}

Status RetractInstancesSharded(const PropertyGraph& g,
                               const std::vector<NodeId>& deleted_nodes,
                               const std::vector<EdgeId>& deleted_edges,
                               const ShardPlan& plan, SchemaGraph* schema,
                               SchemaAggregates* aggregates,
                               RetractionIndex* index,
                               RetractionStats* stats) {
  if (!plan.sharded()) {
    return RetractInstances(g, deleted_nodes, deleted_edges, schema,
                            aggregates, index, stats);
  }
  const GraphSymbols& sym = g.symbols();
  const size_t num_shards = plan.num_shards();
  std::vector<std::vector<NodeId>> nodes_of(num_shards);
  std::vector<std::vector<EdgeId>> edges_of(num_shards);
  // Ids outside the (append-only) graph can never be owned by a type; fail
  // them here with the unsharded path's error rather than reading their
  // signature out of bounds.
  for (NodeId id : deleted_nodes) {
    if (id >= g.num_nodes()) {
      return Status::InvalidArgument("cannot delete node " +
                                     std::to_string(id) +
                                     ": unknown or already deleted");
    }
    nodes_of[plan.ShardOf(sym.node_signatures.shard_key(g.node(id).signature))]
        .push_back(id);
  }
  for (EdgeId id : deleted_edges) {
    if (id >= g.num_edges()) {
      return Status::InvalidArgument("cannot delete edge " +
                                     std::to_string(id) +
                                     ": unknown or already deleted");
    }
    edges_of[plan.ShardOf(sym.edge_signatures.shard_key(g.edge(id).signature))]
        .push_back(id);
  }
  // Ascending shard order, serially — each sub-call is a consecutive
  // sequential retraction batch (see the header's equivalence argument).
  for (size_t shard = 0; shard < num_shards; ++shard) {
    if (nodes_of[shard].empty() && edges_of[shard].empty()) continue;
    PGHIVE_RETURN_NOT_OK(RetractInstances(g, nodes_of[shard], edges_of[shard],
                                          schema, aggregates, index, stats));
  }
  return Status::OK();
}

}  // namespace pghive
