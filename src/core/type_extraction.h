// Type extraction and merging (paper §4.3, Algorithm 2).
//
// Candidate clusters from LSH are refined into schema types:
//   1. labeled clusters merge with the schema type carrying the identical
//      label set (or found a new type),
//   2. unlabeled clusters merge into the labeled type with the highest
//      property-set Jaccard similarity >= theta,
//   3. remaining unlabeled clusters merge with existing ABSTRACT types, then
//      with each other, under the same Jaccard rule,
//   4. whatever is left becomes a new ABSTRACT type.
// All merges take unions (Lemmas 1-2), so no label, property or endpoint is
// ever lost — the monotonicity the incremental mode relies on (§4.6).

#ifndef PGHIVE_CORE_TYPE_EXTRACTION_H_
#define PGHIVE_CORE_TYPE_EXTRACTION_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.h"
#include "core/schema.h"
#include "graph/property_graph.h"

namespace pghive {

struct TypeExtractionOptions {
  /// theta: minimum Jaccard similarity for merging an unlabeled cluster
  /// (paper sets 0.9; lowering raises recall but mixes types).
  double jaccard_threshold = 0.9;
};

/// Materializes Cluster objects (with union representatives) from the
/// member groups produced by the LSH clusterer. `ids` maps group-local
/// positions to global NodeIds.
std::vector<Cluster> BuildNodeClusters(
    const PropertyGraph& g, const std::vector<size_t>& ids,
    const std::vector<std::vector<size_t>>& groups);

/// Edge flavour: also unions endpoint label sets into the representative;
/// unlabeled endpoints fall back to their discovered type's endpoint label
/// set from `endpoint_labels` (see FeatureEncoder::EndpointLabelMap).
std::vector<Cluster> BuildEdgeClusters(
    const PropertyGraph& g, const std::vector<size_t>& ids,
    const std::vector<std::vector<size_t>>& groups,
    const std::unordered_map<size_t, std::set<std::string>>& endpoint_labels);

/// Algorithm 2 for node clusters: merges `clusters` into `schema` in place.
void ExtractNodeTypes(const std::vector<Cluster>& clusters,
                      const TypeExtractionOptions& options,
                      SchemaGraph* schema);

/// Algorithm 2 for edge clusters. Labeled edge clusters merge by label set
/// only (the paper merges edges by label and unions the endpoint sets to
/// define rho_s).
void ExtractEdgeTypes(const std::vector<Cluster>& clusters,
                      const TypeExtractionOptions& options,
                      SchemaGraph* schema);

}  // namespace pghive

#endif  // PGHIVE_CORE_TYPE_EXTRACTION_H_
