// Deletion support for the incremental schema (paper §4.6: "Handling
// updates and deletions is left for future work" — implemented here as an
// extension).
//
// Deletions break the monotone-chain guarantee by design: removing the last
// instance of a pattern may retire a type, demote a property, or tighten a
// constraint. ApplyDeletions removes the given elements from the schema's
// instance assignments, drops types that lost all instances, shrinks each
// type's property-key set to what its remaining instances actually carry,
// and (optionally) re-runs post-processing so constraints and cardinalities
// reflect the surviving data.

#ifndef PGHIVE_CORE_DELETIONS_H_
#define PGHIVE_CORE_DELETIONS_H_

#include <unordered_set>

#include "common/status.h"
#include "core/schema.h"
#include "graph/property_graph.h"

namespace pghive {

struct DeletionOptions {
  /// Recompute constraints / datatypes / cardinalities over the surviving
  /// instances (requires the graph the surviving ids refer to).
  bool refresh_constraints = true;
  /// Drop types whose instance list becomes empty. When false, emptied
  /// types are kept as (instance-less) declarations.
  bool drop_empty_types = true;
};

struct DeletionStats {
  size_t nodes_removed = 0;
  size_t edges_removed = 0;
  size_t node_types_dropped = 0;
  size_t edge_types_dropped = 0;
  size_t properties_retired = 0;  // keys no longer observed in any instance
};

/// Removes deleted elements from `schema`. `deleted_nodes` / `deleted_edges`
/// are ids in `g`'s id space; deleting a node does NOT implicitly delete its
/// incident edges — pass those explicitly (the caller knows its deletion
/// semantics). Ids never assigned to any type are ignored.
DeletionStats ApplyDeletions(const PropertyGraph& g,
                             const std::unordered_set<NodeId>& deleted_nodes,
                             const std::unordered_set<EdgeId>& deleted_edges,
                             const DeletionOptions& options,
                             SchemaGraph* schema);

}  // namespace pghive

#endif  // PGHIVE_CORE_DELETIONS_H_
