#include "core/deletions.h"

#include <algorithm>

#include "core/cardinality.h"
#include "core/constraints.h"
#include "core/datatype_inference.h"

namespace pghive {

namespace {

// Removes deleted ids from one type vector; returns per-type bookkeeping.
template <typename TypeT, typename IdT, typename GetElem>
void ProcessTypes(std::vector<TypeT>* types,
                  const std::unordered_set<IdT>& deleted, GetElem get,
                  const DeletionOptions& options, size_t* removed,
                  size_t* dropped, size_t* retired) {
  std::vector<TypeT> kept;
  kept.reserve(types->size());
  for (auto& t : *types) {
    size_t before = t.instances.size();
    t.instances.erase(
        std::remove_if(t.instances.begin(), t.instances.end(),
                       [&](IdT id) { return deleted.count(id) > 0; }),
        t.instances.end());
    *removed += before - t.instances.size();

    if (t.instances.empty() && before > 0 && options.drop_empty_types) {
      ++*dropped;
      continue;
    }

    if (before != t.instances.size() && !t.instances.empty()) {
      // Shrink the property-key set to what survivors actually carry; the
      // union semantics of merging only ever grows it, so after deletions
      // it may overstate the data.
      std::set<std::string> observed;
      for (IdT id : t.instances) {
        for (const auto& [k, v] : get(id).properties) observed.insert(k);
      }
      for (auto it = t.property_keys.begin(); it != t.property_keys.end();) {
        if (!observed.count(*it)) {
          t.constraints.erase(*it);
          it = t.property_keys.erase(it);
          ++*retired;
        } else {
          ++it;
        }
      }
    }
    kept.push_back(std::move(t));
  }
  *types = std::move(kept);
}

}  // namespace

DeletionStats ApplyDeletions(const PropertyGraph& g,
                             const std::unordered_set<NodeId>& deleted_nodes,
                             const std::unordered_set<EdgeId>& deleted_edges,
                             const DeletionOptions& options,
                             SchemaGraph* schema) {
  DeletionStats stats;
  ProcessTypes(&schema->node_types, deleted_nodes,
               [&](NodeId id) -> const Node& { return g.node(id); }, options,
               &stats.nodes_removed, &stats.node_types_dropped,
               &stats.properties_retired);
  ProcessTypes(&schema->edge_types, deleted_edges,
               [&](EdgeId id) -> const Edge& { return g.edge(id); }, options,
               &stats.edges_removed, &stats.edge_types_dropped,
               &stats.properties_retired);

  if (options.refresh_constraints) {
    InferPropertyConstraints(g, schema);
    InferDataTypes(g, {}, schema);
    ComputeCardinalities(g, schema);
  }
  return stats;
}

}  // namespace pghive
